# Standard entry points for building and verifying the CMAP reproduction.
#
#   make build      compile every package and command
#   make test       fast, deterministic tier (go test -short) — CI default
#   make test-full  full-fidelity test scale (slower)
#   make race       race-detector pass over the concurrent packages
#   make bench      benchmark trajectory, one iteration per benchmark
#   make check      build + test, the tier-1 gate
#   make vet        static analysis
#   make golden     golden-trace regression tier (bit-exact behaviour pin)
#   make alloc-check  allocation-regression gate (0 allocs/frame in steady state)
#   make bench-json machine-readable scaling benchmarks → BENCH_<sha>.json
#   make ci         the full gate: vet + race short tier + alloc gate + golden tier

GO ?= go

.PHONY: build test test-full race bench check vet golden alloc-check bench-json ci

build:
	$(GO) build ./...

test:
	$(GO) test -short ./...

test-full:
	$(GO) test ./...

race:
	$(GO) test -race -short ./internal/runner ./internal/experiments ./internal/core ./internal/sim

bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

check: build test

vet:
	$(GO) vet ./...

golden:
	$(GO) test -run 'TestGolden|TestSparseDense' ./internal/experiments

alloc-check:
	$(GO) test -count=1 -run 'ZeroAllocs' -v ./internal/medium

bench-json:
	$(GO) run ./cmd/cmapbench -benchjson

ci: build vet
	$(GO) test -race -short ./...
	$(MAKE) alloc-check
	$(MAKE) golden
