# Standard entry points for building and verifying the CMAP reproduction.
#
#   make build      compile every package and command
#   make test       fast, deterministic tier (go test -short) — CI default
#   make test-full  full-fidelity test scale (slower)
#   make race       race-detector pass over the concurrent packages
#   make bench      benchmark trajectory, one iteration per benchmark
#   make check      build + test, the tier-1 gate
#   make vet        static analysis
#   make golden     golden-trace regression tier (bit-exact behaviour pin)
#   make alloc-check  allocation-regression gate (0 allocs/frame in steady state)
#   make bench-json machine-readable scaling benchmarks → BENCH_<sha>.json
#   make profile    CPU+heap pprof of the scaling benchmarks → cpu.pprof/mem.pprof
#   make bench-smoke  one-iteration steady-state benchmark (compile-level perf canary)
#   make docs-check documentation gate: gofmt diff, vet, package-comment
#                   guard over internal/, markdown link check
#   make ci         the full gate: vet + race short tier + alloc gate + golden tier
#                   + bench smoke + docs check

GO ?= go

.PHONY: build test test-full race bench check vet golden alloc-check bench-json profile bench-smoke docs-check ci

build:
	$(GO) build ./...

test:
	$(GO) test -short ./...

test-full:
	$(GO) test ./...

race:
	$(GO) test -race -short ./internal/runner ./internal/experiments ./internal/core ./internal/sim

bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

check: build test

vet:
	$(GO) vet ./...

golden:
	$(GO) test -run 'TestGolden|TestSparseDense' ./internal/experiments

alloc-check:
	$(GO) test -count=1 -run 'ZeroAllocs' -v ./internal/medium ./internal/traffic

bench-json:
	$(GO) run ./cmd/cmapbench -benchjson

profile:
	$(GO) run ./cmd/cmapbench -benchjson -cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "inspect with: go tool pprof cpu.pprof   (or mem.pprof)"

# One iteration of the steady-state benchmark: catches a perf-path
# regression that changes the compile-level shape of the hot path (e.g.
# table construction leaking onto it) without paying for a full
# benchmark run.
bench-smoke:
	$(GO) test -run XXX -bench 'SaturatedSteadyState' -benchtime 1x ./internal/experiments

# Documentation gate: formatting drift, vet, a package comment on every
# internal/ package (doc.go), and no dead relative links in the
# top-level markdown.
docs-check:
	@fmtdiff="$$(gofmt -l .)"; if [ -n "$$fmtdiff" ]; then \
		echo "gofmt drift in:"; echo "$$fmtdiff"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/docscheck README.md ARCHITECTURE.md ROADMAP.md examples/README.md

ci: build vet
	$(GO) test -race -short ./...
	$(MAKE) alloc-check
	$(MAKE) golden
	$(MAKE) bench-smoke
	$(MAKE) docs-check
