# Standard entry points for building and verifying the CMAP reproduction.
#
#   make build      compile every package and command
#   make test       fast, deterministic tier (go test -short) — CI default
#   make test-full  full-fidelity test scale (slower)
#   make race       race-detector pass over the concurrent packages
#   make bench      benchmark trajectory, one iteration per benchmark
#   make check      build + test, the tier-1 gate
#   make vet        static analysis
#   make golden     golden-trace regression tier (bit-exact behaviour pin)
#   make alloc-check  allocation-regression gate (0 allocs/frame in steady state)
#   make bench-json machine-readable scaling benchmarks → BENCH_<sha>.json
#   make profile    CPU+heap pprof of the scaling benchmarks → cpu.pprof/mem.pprof
#   make bench-smoke  one-iteration steady-state benchmark (compile-level perf canary)
#   make docs-check documentation gate: gofmt diff, vet, package-comment
#                   guard over internal/, markdown link check
#   make fuzz-smoke short randomized pass of the checked-in fuzzers
#                   (scheduler agenda, CMAP defer table, grid
#                   re-bucketing, delivery-list patching) beyond their
#                   seed corpora
#   make conformance  the shared MAC conformance suite (every registered
#                   arm: allocation, determinism, worker-equivalence and
#                   conservation contracts) under the race detector
#   make shard-conformance  the sharded-engine matrix under the race
#                   detector: shards=1 bit-identity vs serial,
#                   determinism and figure-level equivalence at 2–4
#                   shards, end-to-end through experiments
#   make bench-guard  compare the two newest checked-in BENCH_*.json and
#                   fail on >20% ns/op regression in SaturatedSteadyState
#                   or IncrementalUpdate (BENCHDIFF_SKIP=1 accepts a
#                   deliberate one)
#   make mobility-conformance  the mobility tier: mobility unit tests,
#                   every arm's mobile determinism/worker-equivalence/
#                   conservation contracts, the incremental-vs-rebuild
#                   medium equivalence, the mobile golden traces, the
#                   staleness-sweep properties and the mobile
#                   checkpoint/resume bit-identity cases
#   make checkpoint-conformance  the checkpoint/resume bit-identity
#                   matrix (every golden scenario × every registered MAC
#                   arm × shards 1/2/4: resume-at-midpoint must equal an
#                   uninterrupted run in results and checkpoint bytes)
#                   plus the envelope damage table and the scheduler
#                   round-trip unit tier
#   make cover      coverage profile over every package (coverage.out)
#                   with hard floors on internal/analytic, internal/mac
#                   and internal/mobility
#   make ci         the full gate: vet + race short tier + alloc gate + golden tier
#                   + conformance + shard conformance + checkpoint conformance
#                   + mobility conformance + bench guard + bench smoke
#                   + docs check + fuzz smoke + coverage floor

GO ?= go

# Every go test invocation carries an explicit -timeout so a hung
# simulation (e.g. a scheduler that stops draining after a bad restore)
# fails the gate loudly instead of stalling CI until the runner's own
# cutoff.
TEST_TIMEOUT ?= 10m

# Coverage floor for the analytic oracle: the cross-validation tier leans
# on it, so untested solver/extractor branches are a correctness risk.
ANALYTIC_COVER_FLOOR ?= 85

# Coverage floor for the MAC arm registry: every experiment and command
# resolves protocols through it, so its lookup/family/error paths must
# stay exercised.
MAC_COVER_FLOOR ?= 85

# Coverage floor for the mobility subsystem: trajectories feed the
# incremental medium and the checkpoint codec, so untested movement or
# shadowing branches silently skew every mobile figure.
MOBILITY_COVER_FLOOR ?= 85

.PHONY: build test test-full race bench check vet golden alloc-check bench-json profile bench-smoke docs-check fuzz-smoke conformance shard-conformance checkpoint-conformance mobility-conformance bench-guard cover ci

build:
	$(GO) build ./...

test:
	$(GO) test -timeout $(TEST_TIMEOUT) -short ./...

test-full:
	$(GO) test -timeout $(TEST_TIMEOUT) ./...

race:
	$(GO) test -timeout $(TEST_TIMEOUT) -race -short ./internal/runner ./internal/experiments ./internal/core ./internal/sim

bench:
	$(GO) test -timeout $(TEST_TIMEOUT) -run XXX -bench . -benchtime 1x ./...

check: build test

vet:
	$(GO) vet ./...

golden:
	$(GO) test -timeout $(TEST_TIMEOUT) -run 'TestGolden|TestSparseDense' ./internal/experiments

alloc-check:
	$(GO) test -timeout $(TEST_TIMEOUT) -count=1 -run 'ZeroAllocs' -v ./internal/medium ./internal/traffic

bench-json:
	$(GO) run ./cmd/cmapbench -benchjson

profile:
	$(GO) run ./cmd/cmapbench -benchjson -cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "inspect with: go tool pprof cpu.pprof   (or mem.pprof)"

# One iteration of the steady-state benchmark: catches a perf-path
# regression that changes the compile-level shape of the hot path (e.g.
# table construction leaking onto it) without paying for a full
# benchmark run.
bench-smoke:
	$(GO) test -timeout $(TEST_TIMEOUT) -run XXX -bench 'SaturatedSteadyState' -benchtime 1x ./internal/experiments

# Documentation gate: formatting drift, vet, a package comment on every
# internal/ package (doc.go), and no dead relative links in the
# top-level markdown.
docs-check:
	@fmtdiff="$$(gofmt -l .)"; if [ -n "$$fmtdiff" ]; then \
		echo "gofmt drift in:"; echo "$$fmtdiff"; exit 1; fi
	$(GO) vet ./...
	$(GO) run ./cmd/docscheck README.md ARCHITECTURE.md ROADMAP.md examples/README.md

# Short randomized fuzzing beyond the seed corpora: a few seconds per
# fuzzer is enough to catch a freshly introduced ordering or expiry bug
# without turning CI into a fuzzing farm.
fuzz-smoke:
	$(GO) test -timeout $(TEST_TIMEOUT) -run='^$$' -fuzz=FuzzScheduler -fuzztime=5s ./internal/sim
	$(GO) test -timeout $(TEST_TIMEOUT) -run='^$$' -fuzz=FuzzDeferTable -fuzztime=5s ./internal/core
	$(GO) test -timeout $(TEST_TIMEOUT) -run='^$$' -fuzz=FuzzGridRebucket -fuzztime=5s ./internal/geo
	$(GO) test -timeout $(TEST_TIMEOUT) -run='^$$' -fuzz=FuzzDeliveryPatch -fuzztime=5s ./internal/medium

# The shared MAC conformance suite under the race detector: every
# registered arm's allocation (skipped under race), determinism,
# worker-equivalence and backlog-conservation contracts, plus the
# registry round-trip and topology sanity bounds.
conformance:
	$(GO) test -timeout $(TEST_TIMEOUT) -race -count=1 ./internal/mac/conformance

# The sharded engine's conformance matrix under the race detector:
# shards=1 bit-identical to the serial engine (the golden guarantee),
# determinism at fixed shard counts, figure-level equivalence at 2 and
# 4 shards, plus the same contracts through experiments.Options.Shards.
shard-conformance:
	$(GO) test -timeout $(TEST_TIMEOUT) -race -count=1 -run 'TestShard|TestPartition|TestEngine' ./internal/shard ./internal/geo
	$(GO) test -timeout $(TEST_TIMEOUT) -race -count=1 -run 'TestSharded' ./internal/experiments

# Bench regression guard: the two most recently committed BENCH_*.json
# are diffed; >20% ns/op growth in SaturatedSteadyState or
# IncrementalUpdate fails the gate. BENCHDIFF_SKIP=1 accepts a
# deliberate regression (say why in the PR).
bench-guard:
	$(GO) run ./cmd/benchdiff -auto

# The mobility tier: the mobility package's own unit tests (models,
# channel, checkpoint codec), every registered arm's mobile
# determinism / worker-equivalence / conservation contracts under the
# race detector, the incremental-vs-rebuild delivery-list equivalence,
# the mobile golden traces, the staleness-sweep figure properties, the
# churn × mobility interplay, and the mobile checkpoint/resume
# bit-identity cases.
mobility-conformance:
	$(GO) test -timeout $(TEST_TIMEOUT) -count=1 ./internal/mobility
	$(GO) test -timeout $(TEST_TIMEOUT) -race -count=1 -run 'TestConformance/.*/Mobile' ./internal/mac/conformance
	$(GO) test -timeout $(TEST_TIMEOUT) -count=1 -run 'TestIncrementalMatchesRebuild' ./internal/medium
	$(GO) test -timeout $(TEST_TIMEOUT) -count=1 -run 'TestGoldenMobileTraces|TestStalenessSweep|TestMobilityChurnInterplay|TestCheckpointResumeBitIdentical/.*mobile' ./internal/experiments

# Checkpoint/resume bit-identity: FlowSim must reproduce the batch
# runners exactly, and checkpoint-at-midpoint-then-resume must match an
# uninterrupted run in both FlowResults (IEEE-754 bit patterns) and
# end-of-run checkpoint bytes, across every golden scenario × every
# registered MAC arm × shards 1/2/4. The second line is the envelope
# damage table (truncation/corruption/version/config typed errors) and
# the scheduler/RNG round-trip unit tier.
checkpoint-conformance:
	$(GO) test -timeout $(TEST_TIMEOUT) -count=1 -run 'TestFlowSimMatchesRunFlows|TestCheckpointResumeBitIdentical|TestCheckpointConfigHashGuard' ./internal/experiments
	$(GO) test -timeout $(TEST_TIMEOUT) -count=1 ./internal/checkpoint
	$(GO) test -timeout $(TEST_TIMEOUT) -count=1 -run 'TestScheduler|TestRNGState' ./internal/sim

# Coverage profile over the whole module plus hard floors on the
# analytic oracle (its numbers gate the cross-validation tier) and the
# MAC arm registry (every experiment resolves protocols through it).
cover:
	$(GO) test -timeout $(TEST_TIMEOUT) -short -coverprofile=coverage.out ./...
	@$(GO) tool cover -func=coverage.out | tail -1
	@pct=$$($(GO) test -timeout $(TEST_TIMEOUT) -cover ./internal/analytic | grep -o '[0-9.]*%' | tr -d '%'); \
	echo "internal/analytic coverage: $$pct% (floor $(ANALYTIC_COVER_FLOOR)%)"; \
	awk "BEGIN{exit !($$pct >= $(ANALYTIC_COVER_FLOOR))}" || \
		{ echo "internal/analytic coverage $$pct% below floor $(ANALYTIC_COVER_FLOOR)%"; exit 1; }
	@pct=$$($(GO) test -timeout $(TEST_TIMEOUT) -cover ./internal/mac | grep -o '[0-9.]*%' | tr -d '%'); \
	echo "internal/mac coverage: $$pct% (floor $(MAC_COVER_FLOOR)%)"; \
	awk "BEGIN{exit !($$pct >= $(MAC_COVER_FLOOR))}" || \
		{ echo "internal/mac coverage $$pct% below floor $(MAC_COVER_FLOOR)%"; exit 1; }
	@pct=$$($(GO) test -timeout $(TEST_TIMEOUT) -cover ./internal/mobility | grep -o '[0-9.]*%' | tr -d '%'); \
	echo "internal/mobility coverage: $$pct% (floor $(MOBILITY_COVER_FLOOR)%)"; \
	awk "BEGIN{exit !($$pct >= $(MOBILITY_COVER_FLOOR))}" || \
		{ echo "internal/mobility coverage $$pct% below floor $(MOBILITY_COVER_FLOOR)%"; exit 1; }

ci: build vet
	$(GO) test -timeout $(TEST_TIMEOUT) -race -short ./...
	$(MAKE) alloc-check
	$(MAKE) golden
	$(MAKE) conformance
	$(MAKE) shard-conformance
	$(MAKE) checkpoint-conformance
	$(MAKE) mobility-conformance
	$(MAKE) bench-guard
	$(MAKE) bench-smoke
	$(MAKE) docs-check
	$(MAKE) fuzz-smoke
	$(MAKE) cover
