# Standard entry points for building and verifying the CMAP reproduction.
#
#   make build      compile every package and command
#   make test       fast, deterministic tier (go test -short) — CI default
#   make test-full  full-fidelity test scale (slower)
#   make race       race-detector pass over the concurrent packages
#   make bench      benchmark trajectory, one iteration per benchmark
#   make check      build + test, the tier-1 gate

GO ?= go

.PHONY: build test test-full race bench check

build:
	$(GO) build ./...

test:
	$(GO) test -short ./...

test-full:
	$(GO) test ./...

race:
	$(GO) test -race -short ./internal/runner ./internal/experiments ./internal/core ./internal/sim

bench:
	$(GO) test -run XXX -bench . -benchtime 1x ./...

check: build test
