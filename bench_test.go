package cmap

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (run with -benchtime=1x: each iteration is one full
// experiment at a reduced scale) and reports the figure's headline
// numbers as custom metrics. cmd/cmapbench runs the same experiments at
// paper scale; EXPERIMENTS.md records a frozen comparison.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/csma"
	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/medium"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// benchOptions is the per-iteration experiment scale.
func benchOptions(seed uint64) experiments.Options {
	opt := experiments.Quick(seed)
	opt.Duration = 10 * sim.Second
	opt.Warmup = 5 * sim.Second
	opt.Pairs = 6
	opt.Triples = 30
	opt.APRuns = 2
	opt.Meshes = 4
	return opt
}

var benchTestbed = topo.NewTestbed(50, 1)

// BenchmarkTestbedCensus regenerates the §5.1 link census table.
func BenchmarkTestbedCensus(b *testing.B) {
	var c topo.Census
	for i := 0; i < b.N; i++ {
		tb := topo.NewTestbed(50, uint64(i+1))
		c = tb.Census()
	}
	b.ReportMetric(100*c.FracLow, "%PRR<0.1")
	b.ReportMetric(100*c.FracFull, "%PRR=1")
	b.ReportMetric(c.MeanDegree, "mean-degree")
}

// BenchmarkSingleLinkCalibration regenerates §4.2's single-link table
// (paper: CMAP 5.04 vs 802.11 5.07 Mb/s).
func BenchmarkSingleLinkCalibration(b *testing.B) {
	var cal experiments.Calibration
	for i := 0; i < b.N; i++ {
		cal = experiments.RunCalibration(benchTestbed, benchOptions(uint64(i+1)))
	}
	b.ReportMetric(cal.CMAPMbps, "cmap-Mbps")
	b.ReportMetric(cal.Dot11Mbps, "dot11-Mbps")
}

// BenchmarkFig12ExposedTerminals regenerates Figure 12 (paper: CMAP ≈2×
// the status quo; window 1 ≈1.5×).
func BenchmarkFig12ExposedTerminals(b *testing.B) {
	var ex *experiments.PairExperiment
	for i := 0; i < b.N; i++ {
		ex = experiments.ExposedTerminals(benchTestbed, benchOptions(uint64(i+1)))
	}
	b.ReportMetric(ex.Gain(experiments.CMAP, experiments.CSMAOn), "gain-x")
	b.ReportMetric(ex.Median(experiments.CMAP), "cmap-median-Mbps")
	b.ReportMetric(ex.Median(experiments.CSMAOn), "cs-median-Mbps")
}

// BenchmarkFig13InRangeSenders regenerates Figure 13.
func BenchmarkFig13InRangeSenders(b *testing.B) {
	var ex *experiments.PairExperiment
	for i := 0; i < b.N; i++ {
		ex = experiments.InRangeSenders(benchTestbed, benchOptions(uint64(i+1)))
	}
	b.ReportMetric(ex.Median(experiments.CMAP), "cmap-median-Mbps")
	b.ReportMetric(ex.Median(experiments.CSMAOn), "cs-median-Mbps")
	b.ReportMetric(ex.Dists[experiments.CMAP].Percentile(90), "cmap-p90-Mbps")
}

// BenchmarkFig14HiddenInterferers regenerates Figure 14 and §5.4's
// numbers (paper: 8% hidden, expected CMAP throughput 0.896).
func BenchmarkFig14HiddenInterferers(b *testing.B) {
	var res *experiments.HiddenInterfererResult
	for i := 0; i < b.N; i++ {
		res = experiments.HiddenInterferers(benchTestbed, benchOptions(uint64(i+1)))
	}
	b.ReportMetric(res.HiddenFrac, "hidden-frac")
	b.ReportMetric(res.ExpectedCMAP, "expected-cmap")
}

// BenchmarkFig15HiddenTerminals regenerates Figure 15 (paper: CMAP
// comparable to the status quo).
func BenchmarkFig15HiddenTerminals(b *testing.B) {
	var ex *experiments.PairExperiment
	for i := 0; i < b.N; i++ {
		ex = experiments.HiddenTerminals(benchTestbed, benchOptions(uint64(i+1)))
	}
	b.ReportMetric(ex.Dists[experiments.CMAP].Mean(), "cmap-mean-Mbps")
	b.ReportMetric(ex.Dists[experiments.CSMAOn].Mean(), "cs-mean-Mbps")
}

// BenchmarkFig16HeaderTrailer regenerates Figure 16's salvage CDFs.
func BenchmarkFig16HeaderTrailer(b *testing.B) {
	var h *experiments.HeaderTrailerCDFs
	for i := 0; i < b.N; i++ {
		opt := benchOptions(uint64(i + 1))
		inr := experiments.InRangeSenders(benchTestbed, opt)
		hid := experiments.HiddenTerminals(benchTestbed, opt)
		h = experiments.HeaderTrailer(inr, hid)
	}
	b.ReportMetric(h.InRangeEither.Median(), "inrange-hdrtrl-median")
	b.ReportMetric(h.HiddenEither.Median(), "hidden-hdrtrl-median")
	b.ReportMetric(h.HiddenHeader.Median(), "hidden-hdr-median")
}

// BenchmarkFig17AccessPoint regenerates Figure 17 (paper: +21%…+47%).
func BenchmarkFig17AccessPoint(b *testing.B) {
	var res *experiments.APResult
	for i := 0; i < b.N; i++ {
		res = experiments.AccessPoint(benchTestbed, benchOptions(uint64(i+1)))
	}
	var gain float64
	var n int
	for _, k := range res.Ns {
		if cs := res.Mean[experiments.CSMAOn][k]; cs > 0 {
			gain += res.Mean[experiments.CMAP][k] / cs
			n++
		}
	}
	b.ReportMetric(gain/float64(n), "mean-gain-x")
}

// BenchmarkFig18PerSender regenerates Figure 18 (paper: median 1.8×).
func BenchmarkFig18PerSender(b *testing.B) {
	var res *experiments.APResult
	for i := 0; i < b.N; i++ {
		res = experiments.AccessPoint(benchTestbed, benchOptions(uint64(i+1)))
	}
	cs := res.PerSender[experiments.CSMAOn].Median()
	if cs > 0 {
		b.ReportMetric(res.PerSender[experiments.CMAP].Median()/cs, "median-gain-x")
	}
}

// BenchmarkFig19HeaderTrailerSweep regenerates Figure 19.
func BenchmarkFig19HeaderTrailerSweep(b *testing.B) {
	var pts []experiments.SenderSweepPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.HeaderTrailerVsSenders(benchTestbed, benchOptions(uint64(i+1)))
	}
	b.ReportMetric(pts[0].Median, "k2-median")
	b.ReportMetric(pts[len(pts)-1].Median, "k7-median")
	b.ReportMetric(pts[len(pts)-1].P10, "k7-p10")
}

// BenchmarkFig20VariableBitRates regenerates Figure 20 (paper: gains
// persist at 12 and 18 Mb/s).
func BenchmarkFig20VariableBitRates(b *testing.B) {
	var series []experiments.RateSeries
	for i := 0; i < b.N; i++ {
		opt := benchOptions(uint64(i + 1))
		opt.Pairs = 4
		series = experiments.VariableBitRates(benchTestbed, opt)
	}
	for _, rs := range series {
		name := map[phy.RateID]string{
			phy.Rate6Mbps: "gain6-x", phy.Rate12Mbps: "gain12-x", phy.Rate18Mbps: "gain18-x",
		}[rs.Rate]
		b.ReportMetric(rs.Ex.Gain(experiments.CMAP, experiments.CSMAOn), name)
	}
}

// BenchmarkMeshTopology regenerates §5.7 (paper: +52%).
func BenchmarkMeshTopology(b *testing.B) {
	var res *experiments.MeshResult
	for i := 0; i < b.N; i++ {
		res = experiments.Mesh(benchTestbed, benchOptions(uint64(i+1)))
	}
	b.ReportMetric(res.Gain(), "gain-x")
}

// ---------------------------------------------------------------------------
// Ablation benches for the design choices DESIGN.md calls out.

// ackLossTopology shadows the sender's ACKs with an interferer that the
// receiver cannot hear — the exposed-sender pathology the windowed
// protocol is designed for.
var ackLossTopology = [][]float64{
	{0, 68, 72, 300},
	{68, 0, 300, 300},
	{72, 300, 0, 68},
	{300, 300, 68, 0},
}

// runAckLossFlow measures one CMAP flow under ACK loss with cfg.
func runAckLossFlow(cfg core.Config, seed uint64) float64 {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	m := medium.New(sched, phy.DefaultParams(), &radio.Matrix{LossDB: ackLossTopology},
		make([]geo.Point, 4), rng.Stream(1))
	s := core.New(0, cfg, m, rng.Stream(10))
	r := core.New(1, cfg, m, rng.Stream(11))
	i := core.New(2, cfg, m, rng.Stream(12))
	core.New(3, cfg, m, rng.Stream(13))
	dur := 10 * sim.Second
	r.Meter = &stats.Meter{Start: dur / 3, End: dur}
	s.SetSaturated(1)
	i.SetSaturated(3)
	sched.Run(dur)
	return r.Meter.Mbps()
}

// BenchmarkAblationWindowSize sweeps Nwindow (the Figure 12 win=1
// comparison generalised): goodput under ACK loss per window size.
func BenchmarkAblationWindowSize(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8, 16} {
		out := 0.0
		for i := 0; i < b.N; i++ {
			cfg := core.DefaultConfig()
			cfg.Nwindow = w
			out = runAckLossFlow(cfg, uint64(i+1))
		}
		switch w {
		case 1:
			b.ReportMetric(out, "win1-Mbps")
		case 8:
			b.ReportMetric(out, "win8-Mbps")
		case 16:
			b.ReportMetric(out, "win16-Mbps")
		}
	}
}

// BenchmarkAblationTrailers compares full virtual packets against
// header-only ones under interference (the Figure 16 design rationale:
// trailers salvage virtual-packet identification and trigger ACKs).
func BenchmarkAblationTrailers(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		with = runAckLossFlow(cfg, uint64(i+1))
		cfg.DisableTrailers = true
		without = runAckLossFlow(cfg, uint64(i+1))
	}
	b.ReportMetric(with, "with-trailers-Mbps")
	b.ReportMetric(without, "without-trailers-Mbps")
}

// conflictTopology is two flows whose cross links are strong: concurrent
// transmissions destroy each other, so deferring is the right answer and
// the interference threshold decides how eagerly conflicts are declared.
var conflictTopology = [][]float64{
	{0, 68, 72, 71},
	{68, 0, 70, 300},
	{72, 70, 0, 68},
	{71, 300, 68, 0},
}

// BenchmarkAblationLossThreshold sweeps l_interf (§3.1 argues 0.5 is the
// throughput-optimal threshold): aggregate goodput of a conflicting pair
// per threshold.
func BenchmarkAblationLossThreshold(b *testing.B) {
	results := map[float64]float64{}
	for i := 0; i < b.N; i++ {
		for _, th := range []float64{0.25, 0.5, 0.75} {
			sched := sim.NewScheduler()
			rng := sim.NewRNG(uint64(i + 1))
			m := medium.New(sched, phy.DefaultParams(), &radio.Matrix{LossDB: conflictTopology},
				make([]geo.Point, 4), rng.Stream(1))
			cfg := core.DefaultConfig()
			cfg.LossInterf = th
			cfg.BroadcastPeriod = 250 * sim.Millisecond
			s1 := core.New(0, cfg, m, rng.Stream(10))
			r1 := core.New(1, cfg, m, rng.Stream(11))
			s2 := core.New(2, cfg, m, rng.Stream(12))
			r2 := core.New(3, cfg, m, rng.Stream(13))
			dur := 15 * sim.Second
			r1.Meter = &stats.Meter{Start: dur / 2, End: dur}
			r2.Meter = &stats.Meter{Start: dur / 2, End: dur}
			s1.SetSaturated(1)
			s2.SetSaturated(3)
			sched.Run(dur)
			results[th] = r1.Meter.Mbps() + r2.Meter.Mbps()
		}
	}
	b.ReportMetric(results[0.25], "linterf25-Mbps")
	b.ReportMetric(results[0.5], "linterf50-Mbps")
	b.ReportMetric(results[0.75], "linterf75-Mbps")
}

// BenchmarkAblationBackoff compares loss-based against 802.11-style
// (missing-ACK) contention-window growth under ACK loss (§3.4).
func BenchmarkAblationBackoff(b *testing.B) {
	var lossBased, ackBased float64
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultConfig()
		lossBased = runAckLossFlow(cfg, uint64(i+1))
		cfg.BackoffOnMissingAck = true
		ackBased = runAckLossFlow(cfg, uint64(i+1))
	}
	b.ReportMetric(lossBased, "loss-based-Mbps")
	b.ReportMetric(ackBased, "ack-based-Mbps")
}

// BenchmarkAblationNvpkt sweeps the virtual-packet batching factor that
// amortises the software MAC's latency (§4.1).
func BenchmarkAblationNvpkt(b *testing.B) {
	results := map[int]float64{}
	for i := 0; i < b.N; i++ {
		for _, nv := range []int{8, 16, 32, 64} {
			sched := sim.NewScheduler()
			rng := sim.NewRNG(uint64(i + 1))
			m := medium.New(sched, phy.DefaultParams(), &radio.Matrix{LossDB: [][]float64{
				{0, 70},
				{70, 0},
			}}, make([]geo.Point, 2), rng.Stream(1))
			cfg := core.DefaultConfig()
			cfg.Nvpkt = nv
			tx := core.New(0, cfg, m, rng.Stream(10))
			rx := core.New(1, cfg, m, rng.Stream(11))
			dur := 8 * sim.Second
			rx.Meter = &stats.Meter{Start: dur / 4, End: dur}
			tx.SetSaturated(1)
			sched.Run(dur)
			results[nv] = rx.Meter.Mbps()
		}
	}
	b.ReportMetric(results[8], "nvpkt8-Mbps")
	b.ReportMetric(results[32], "nvpkt32-Mbps")
	b.ReportMetric(results[64], "nvpkt64-Mbps")
}

// BenchmarkSimulatorEventRate measures raw simulator throughput: events
// per second of a saturated DCF pair (engine-level performance).
func BenchmarkSimulatorEventRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sched := sim.NewScheduler()
		rng := sim.NewRNG(uint64(i + 1))
		m := medium.New(sched, phy.DefaultParams(), &radio.Matrix{LossDB: [][]float64{
			{0, 70},
			{70, 0},
		}}, make([]geo.Point, 2), rng.Stream(1))
		cfg := csma.DefaultConfig()
		tx := csma.New(0, cfg, m, rng.Stream(10))
		csma.New(1, cfg, m, rng.Stream(11))
		tx.SetSaturated(1)
		sched.Run(2 * sim.Second)
		b.ReportMetric(float64(sched.Fired()), "events/iter")
	}
}

// BenchmarkPerDestQueues measures the §3.2 per-destination-queue
// optimisation. A saturated interferer x destroys S→A (so S's conflict
// map learns to defer that flow) while S→B is clean. With per-destination
// queues, B's 100 packets finish almost immediately; emulating a single
// shared queue (B strictly behind A), B waits for A to trickle through
// x's gaps first.
func BenchmarkPerDestQueues(b *testing.B) {
	topology := [][]float64{
		// S(0) A(1) B(2) x(3) y(4)
		{0, 70, 72, 70, 300},
		{70, 0, 80, 70, 300},
		{72, 80, 0, 95, 300},
		{70, 70, 95, 0, 68},
		{300, 300, 300, 68, 0},
	}
	run := func(seed uint64, headOfLine bool) float64 {
		sched := sim.NewScheduler()
		rng := sim.NewRNG(seed)
		m := medium.New(sched, phy.DefaultParams(), &radio.Matrix{LossDB: topology},
			make([]geo.Point, 5), rng.Stream(1))
		cfg := core.DefaultConfig()
		cfg.Nvpkt = 8
		cfg.MinInterfSamples = 8
		cfg.BroadcastPeriod = 250 * sim.Millisecond
		cfg.PerDestQueues = true
		s := core.New(0, cfg, m, rng.Stream(10))
		a := core.New(1, cfg, m, rng.Stream(11))
		bn := core.New(2, cfg, m, rng.Stream(12))
		x := core.New(3, cfg, m, rng.Stream(13))
		core.New(4, cfg, m, rng.Stream(14))
		x.SetSaturated(4)
		// Let the conflict map converge: S sends to A under x's
		// interference until A's interferer list reaches S.
		s.Enqueue(1, 100)
		sched.Run(8 * sim.Second)
		var bDone sim.Time
		bn.OnDeliver = func(_ int, seq uint32, now sim.Time) {
			if seq == 99 {
				bDone = now
			}
		}
		startAt := sched.Now()
		s.Enqueue(1, 100)
		if headOfLine {
			// Single-queue emulation: B strictly behind A.
			a.OnDeliver = func(_ int, seq uint32, _ sim.Time) {
				if seq == 199 {
					s.Enqueue(2, 100)
				}
			}
		} else {
			s.Enqueue(2, 100)
		}
		sched.Run(startAt + 120*sim.Second)
		if bDone == 0 {
			return 120
		}
		return (bDone - startAt).Seconds()
	}
	var multi, single float64
	for i := 0; i < b.N; i++ {
		multi = run(uint64(i+1), false)
		single = run(uint64(i+1), true)
	}
	b.ReportMetric(multi, "b-done-multi-s")
	b.ReportMetric(single, "b-done-headofline-s")
}
