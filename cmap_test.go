package cmap

import (
	"testing"
	"time"
)

// exposedLoss is the canonical Figure 1 exposed-terminal loss matrix:
// S1(0)→R1(1), S2(2)→R2(3); senders hear each other, cross links are
// below sensitivity.
var exposedLoss = [][]float64{
	{0, 68, 75, 108},
	{68, 0, 108, 300},
	{75, 108, 0, 68},
	{108, 300, 68, 0},
}

func TestPublicAPIExposedTerminals(t *testing.T) {
	nw := NewLossNetwork(exposedLoss, 1)
	s1 := nw.AddCMAP(0)
	r1 := nw.AddCMAP(1)
	s2 := nw.AddCMAP(2)
	r2 := nw.AddCMAP(3)
	r1.Measure(4*time.Second, 12*time.Second)
	r2.Measure(4*time.Second, 12*time.Second)
	s1.Saturate(1)
	s2.Saturate(3)
	nw.Run(12 * time.Second)
	agg := r1.GoodputMbps() + r2.GoodputMbps()
	if agg < 9.0 {
		t.Errorf("CMAP exposed aggregate = %.2f Mb/s, want ≈2× single link", agg)
	}
	if s1.Stats().Defers != 0 {
		t.Error("exposed sender deferred")
	}
}

func TestPublicAPIDCFBaseline(t *testing.T) {
	nw := NewLossNetwork(exposedLoss, 2)
	s1 := nw.AddDCF(0)
	r1 := nw.AddDCF(1)
	s2 := nw.AddDCF(2)
	r2 := nw.AddDCF(3)
	r1.Measure(2*time.Second, 8*time.Second)
	r2.Measure(2*time.Second, 8*time.Second)
	s1.Saturate(1)
	s2.Saturate(3)
	nw.Run(8 * time.Second)
	agg := r1.GoodputMbps() + r2.GoodputMbps()
	// Carrier sense serialises the exposed senders.
	if agg > 7.0 {
		t.Errorf("DCF exposed aggregate = %.2f Mb/s, expected serialisation near 5.5", agg)
	}
	if agg < 4.0 {
		t.Errorf("DCF exposed aggregate = %.2f Mb/s, too low", agg)
	}
}

func TestPublicAPIOptions(t *testing.T) {
	nw := NewLossNetwork(exposedLoss, 3)
	s := nw.AddCMAP(0, WithRate(12), WithPayload(1000), WithVirtualPacket(16), WithWindow(4))
	r := nw.AddDCF(1, WithCarrierSense(false), WithLinkACKs(false))
	_ = r
	if s.ID() != 0 {
		t.Error("ID mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid rate did not panic")
		}
	}()
	nw.AddCMAP(2, WithRate(7))
}

func TestPublicAPIFiniteTrafficAndDelivery(t *testing.T) {
	nw := NewLossNetwork([][]float64{
		{0, 70},
		{70, 0},
	}, 4)
	tx := nw.AddCMAP(0)
	rx := nw.AddCMAP(1)
	var got int
	rx.OnDeliver(func(src int, _ uint32, _ time.Duration) {
		if src == 0 {
			got++
		}
	})
	tx.Send(1, 100)
	nw.Run(5 * time.Second)
	if got != 100 {
		t.Errorf("delivered %d of 100", got)
	}
	if !tx.Idle() {
		t.Error("sender not idle after drain")
	}
	if rx.Stats().Delivered != 100 {
		t.Errorf("Stats().Delivered = %d", rx.Stats().Delivered)
	}
}

func TestPublicAPITestbedNetwork(t *testing.T) {
	nw := NewTestbedNetwork(50, 7)
	if nw.NodeCount() != 50 {
		t.Fatalf("NodeCount = %d", nw.NodeCount())
	}
	tb := nw.Testbed()
	if tb == nil {
		t.Fatal("Testbed() nil")
	}
	// Drive one saturated flow over the strongest link.
	best, bestRSS := [2]int{-1, -1}, -1000.0
	for a := 0; a < 50; a++ {
		for b := 0; b < 50; b++ {
			if tb.PotentialLink(a, b) && tb.RSS[a][b] > bestRSS {
				bestRSS, best = tb.RSS[a][b], [2]int{a, b}
			}
		}
	}
	tx := nw.AddCMAP(best[0])
	rx := nw.AddCMAP(best[1])
	rx.Measure(2*time.Second, 6*time.Second)
	tx.Saturate(best[1])
	nw.Run(6 * time.Second)
	if g := rx.GoodputMbps(); g < 4.5 {
		t.Errorf("testbed best-link goodput = %.2f Mb/s", g)
	}
	if nw.RxPowerDBm(best[0], best[1]) != bestRSS {
		t.Error("RxPowerDBm disagrees with testbed measurement")
	}
}

func TestPublicAPIGeometricNetwork(t *testing.T) {
	nw := NewNetwork([]Point{{0, 0}, {5, 0}, {40, 0}, {45, 0}}, 9)
	if nw.NodeCount() != 4 {
		t.Fatal("NodeCount wrong")
	}
	tx := nw.AddCMAP(0)
	rx := nw.AddCMAP(1)
	rx.Measure(time.Second, 4*time.Second)
	tx.Saturate(1)
	nw.Run(4 * time.Second)
	if rx.GoodputMbps() < 4.0 {
		t.Errorf("5 m link goodput = %.2f Mb/s", rx.GoodputMbps())
	}
}

func TestPublicAPIBroadcast(t *testing.T) {
	nw := NewLossNetwork([][]float64{
		{0, 68, 70},
		{68, 0, 80},
		{70, 80, 0},
	}, 11)
	src := nw.AddCMAP(0)
	a := nw.AddCMAP(1)
	b := nw.AddCMAP(2)
	a.Measure(time.Second, 4*time.Second)
	b.Measure(time.Second, 4*time.Second)
	src.BroadcastTo([]int{1, 2}, true, 0)
	nw.Run(4 * time.Second)
	if a.GoodputMbps() < 4 || b.GoodputMbps() < 4 {
		t.Errorf("broadcast goodput %.2f / %.2f", a.GoodputMbps(), b.GoodputMbps())
	}
}

func TestPublicAPIGuards(t *testing.T) {
	nw := NewLossNetwork(exposedLoss, 13)
	nw.AddCMAP(0)
	for _, fn := range []func(){
		func() { nw.AddCMAP(0) },  // duplicate
		func() { nw.AddCMAP(99) }, // out of range
		func() { nw.AddDCF(-1) },  // negative
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	if nw.Station(0) == nil || nw.Station(3) != nil {
		t.Error("Station lookup wrong")
	}
}

func TestPublicAPIWindowOptionChangesBehaviour(t *testing.T) {
	// Smoke: WithWindow(1) builds a station whose window really is one
	// virtual packet (observable via sustained single-link goodput still
	// working — stop-and-wait at vpkt granularity).
	nw := NewLossNetwork([][]float64{
		{0, 70},
		{70, 0},
	}, 15)
	tx := nw.AddCMAP(0, WithWindow(1))
	rx := nw.AddCMAP(1)
	rx.Measure(time.Second, 5*time.Second)
	tx.Saturate(1)
	nw.Run(5 * time.Second)
	if rx.GoodputMbps() < 4.0 {
		t.Errorf("win=1 clean-link goodput = %.2f", rx.GoodputMbps())
	}
}

func TestPublicAPIDeterminism(t *testing.T) {
	run := func() (float64, float64) {
		nw := NewLossNetwork(exposedLoss, 21)
		s1 := nw.AddCMAP(0)
		r1 := nw.AddCMAP(1)
		s2 := nw.AddCMAP(2)
		r2 := nw.AddCMAP(3)
		r1.Measure(2*time.Second, 6*time.Second)
		r2.Measure(2*time.Second, 6*time.Second)
		s1.Saturate(1)
		s2.Saturate(3)
		nw.Run(6 * time.Second)
		return r1.GoodputMbps(), r2.GoodputMbps()
	}
	a1, a2 := run()
	b1, b2 := run()
	if a1 != b1 || a2 != b2 {
		t.Errorf("same seed produced different results: (%v,%v) vs (%v,%v)", a1, a2, b1, b2)
	}
	// A different seed must (generically) differ somewhere in the run.
	nw := NewLossNetwork(exposedLoss, 22)
	s1 := nw.AddCMAP(0)
	r1 := nw.AddCMAP(1)
	r1.Measure(2*time.Second, 6*time.Second)
	s1.Saturate(1)
	nw.Run(6 * time.Second)
	if nw.Now() != 6*time.Second {
		t.Errorf("Now() = %v, want 6s", nw.Now())
	}
}
