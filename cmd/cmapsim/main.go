// Command cmapsim runs a single two-flow scenario on the generated
// testbed and prints per-flow goodput and protocol counters — a
// microscope for one topology rather than a whole figure.
//
// Usage:
//
//	cmapsim [-seed N] [-topology exposed|inrange|hidden] [-protocol cmap|cmap1|dcf|dcf-nocs|dcf-nocs-noack] [-duration 30s] [-index 0]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/csma"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/trace"
)

func main() {
	seed := flag.Uint64("seed", 1, "master seed")
	topology := flag.String("topology", "exposed", "exposed | inrange | hidden")
	protocol := flag.String("protocol", "cmap", "cmap | cmap1 | dcf | dcf-nocs | dcf-nocs-noack")
	duration := flag.Duration("duration", 30*time.Second, "virtual run time")
	index := flag.Int("index", 0, "which sampled topology to run")
	traceN := flag.Int("trace", 0, "print the last N link-layer events of the first flow's endpoints")
	flag.Parse()

	tb := topo.NewTestbed(50, *seed)
	rng := sim.NewRNG(*seed * 31)
	var pairs []topo.LinkPair
	switch *topology {
	case "exposed":
		pairs = tb.ExposedPairs(rng, *index+1)
	case "inrange":
		pairs = tb.InRangePairs(rng, *index+1)
	case "hidden":
		pairs = tb.HiddenPairs(rng, *index+1)
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topology)
		os.Exit(2)
	}
	if *index >= len(pairs) {
		fmt.Fprintf(os.Stderr, "only %d %s topologies available\n", len(pairs), *topology)
		os.Exit(1)
	}
	pair := pairs[*index]
	fmt.Printf("topology %s[%d]: S1=%d→R1=%d  S2=%d→R2=%d\n",
		*topology, *index, pair.A.Src, pair.A.Dst, pair.B.Src, pair.B.Dst)
	fmt.Printf("links: S1→R1 %.0f dBm (PRR %.2f)  S2→R2 %.0f dBm (PRR %.2f)  S2@S1 %.0f dBm\n",
		tb.RSS[pair.A.Src][pair.A.Dst], tb.PRR[pair.A.Src][pair.A.Dst],
		tb.RSS[pair.B.Src][pair.B.Dst], tb.PRR[pair.B.Src][pair.B.Dst],
		tb.RSS[pair.B.Src][pair.A.Src])

	sched := sim.NewScheduler()
	m := tb.Build(sched, rng.Stream(1))
	d := sim.Duration(*duration)
	warm := d * 2 / 5
	meters := [2]*stats.Meter{
		{Start: warm, End: d},
		{Start: warm, End: d},
	}
	flows := [2]topo.Link{pair.A, pair.B}
	var tracer *trace.Tracer
	if *traceN > 0 {
		tracer = trace.New(*traceN)
	}

	switch *protocol {
	case "cmap", "cmap1":
		cfg := core.DefaultConfig()
		if *protocol == "cmap1" {
			cfg.Nwindow = 1
		}
		var senders [2]*core.Node
		for i, f := range flows {
			senders[i] = core.New(f.Src, cfg, m, rng.Stream(uint64(100+i)))
			rx := core.New(f.Dst, cfg, m, rng.Stream(uint64(200+i)))
			rx.Meter = meters[i]
			if tracer != nil && i == 0 {
				m.Radio(f.Src).SetHandler(tracer.Wrap(f.Src, senders[i], sched))
				m.Radio(f.Dst).SetHandler(tracer.Wrap(f.Dst, rx, sched))
			}
			senders[i].SetSaturated(f.Dst)
		}
		sched.Run(d)
		for i, f := range flows {
			st := senders[i].Stats()
			fmt.Printf("flow %d→%d: %.2f Mb/s  vpkts=%d defers=%d backoffs=%d acks=%d ackMiss=%d retxTO=%d deferTab=%d\n",
				f.Src, f.Dst, meters[i].Mbps(), st.VpktsSent, st.Defers, st.Backoffs,
				st.AcksReceived, st.AckWaitExpired, st.RetxTimeouts, senders[i].DeferTableSize())
		}
	case "dcf", "dcf-nocs", "dcf-nocs-noack":
		cfg := csma.DefaultConfig()
		cfg.CarrierSense = *protocol == "dcf"
		cfg.LinkACKs = *protocol != "dcf-nocs-noack"
		var senders [2]*csma.Node
		for i, f := range flows {
			senders[i] = csma.New(f.Src, cfg, m, rng.Stream(uint64(100+i)))
			rx := csma.New(f.Dst, cfg, m, rng.Stream(uint64(200+i)))
			rx.Meter = meters[i]
			senders[i].SetSaturated(f.Dst)
		}
		sched.Run(d)
		for i, f := range flows {
			st := senders[i].Stats()
			fmt.Printf("flow %d→%d: %.2f Mb/s  sent=%d ackTO=%d dropped=%d\n",
				f.Src, f.Dst, meters[i].Mbps(), st.Sent, st.AckTimeout, st.Dropped)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *protocol)
		os.Exit(2)
	}
	total := meters[0].Mbps() + meters[1].Mbps()
	fmt.Printf("aggregate: %.2f Mb/s\n", total)
	if tracer != nil {
		fmt.Printf("\nlast %d link-layer events of flow 0's endpoints:\n%s", tracer.Len(), tracer.Dump())
	}
}
