// Command cmapsim runs a single two-flow scenario on the generated
// testbed and prints per-flow goodput and protocol counters — a
// microscope for one topology rather than a whole figure.
//
// Usage:
//
//	cmapsim [-seed N] [-topology exposed|inrange|hidden] [-protocol cmap|cmap1|dcf|dcf-nocs|dcf-nocs-noack] [-duration 30s] [-index 0] [-trials 1] [-parallel 0]
//	cmapsim -scenario gridcity|clusters|disk [-nodes 200] ...
//
// With -trials above one, the same topology is replayed under
// independently seeded channel/protocol randomness and the per-trial
// aggregates are summarised; trials fan out across -parallel worker
// goroutines (default all CPUs) with bit-identical results at any count.
//
// -scenario swaps the paper's office floor for one of the large-scale
// generated layouts (sized by -nodes) and picks the experiment pair with
// the same link-selection methodology on top of it; the underlying
// medium is the sparse, grid-constructed one either way.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/csma"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/trace"
)

// trialResult is one replication's measured goodput.
type trialResult struct {
	flows [2]float64
	agg   float64
}

// runTrial replays the scenario once from the given seed. detail turns on
// the verbose per-flow counter report and optional tracing (single-trial
// mode only).
func runTrial(tb *topo.Testbed, pair topo.LinkPair, protocol string, d sim.Time, seed uint64, detail bool, traceN int) trialResult {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	m := tb.Build(sched, rng.Stream(1))
	warm := d * 2 / 5
	meters := [2]*stats.Meter{
		{Start: warm, End: d},
		{Start: warm, End: d},
	}
	flows := [2]topo.Link{pair.A, pair.B}
	var tracer *trace.Tracer
	if detail && traceN > 0 {
		tracer = trace.New(traceN)
	}

	switch protocol {
	case "cmap", "cmap1":
		cfg := core.DefaultConfig()
		if protocol == "cmap1" {
			cfg.Nwindow = 1
		}
		var senders [2]*core.Node
		for i, f := range flows {
			senders[i] = core.New(f.Src, cfg, m, rng.Stream(uint64(100+i)))
			rx := core.New(f.Dst, cfg, m, rng.Stream(uint64(200+i)))
			rx.Meter = meters[i]
			if tracer != nil && i == 0 {
				m.Radio(f.Src).SetHandler(tracer.Wrap(f.Src, senders[i], sched))
				m.Radio(f.Dst).SetHandler(tracer.Wrap(f.Dst, rx, sched))
			}
			senders[i].SetSaturated(f.Dst)
		}
		sched.Run(d)
		if detail {
			for i, f := range flows {
				st := senders[i].Stats()
				fmt.Printf("flow %d→%d: %.2f Mb/s  vpkts=%d defers=%d backoffs=%d acks=%d ackMiss=%d retxTO=%d deferTab=%d\n",
					f.Src, f.Dst, meters[i].Mbps(), st.VpktsSent, st.Defers, st.Backoffs,
					st.AcksReceived, st.AckWaitExpired, st.RetxTimeouts, senders[i].DeferTableSize())
			}
		}
	case "dcf", "dcf-nocs", "dcf-nocs-noack":
		cfg := csma.DefaultConfig()
		cfg.CarrierSense = protocol == "dcf"
		cfg.LinkACKs = protocol != "dcf-nocs-noack"
		var senders [2]*csma.Node
		for i, f := range flows {
			senders[i] = csma.New(f.Src, cfg, m, rng.Stream(uint64(100+i)))
			rx := csma.New(f.Dst, cfg, m, rng.Stream(uint64(200+i)))
			rx.Meter = meters[i]
			senders[i].SetSaturated(f.Dst)
		}
		sched.Run(d)
		if detail {
			for i, f := range flows {
				st := senders[i].Stats()
				fmt.Printf("flow %d→%d: %.2f Mb/s  sent=%d ackTO=%d dropped=%d\n",
					f.Src, f.Dst, meters[i].Mbps(), st.Sent, st.AckTimeout, st.Dropped)
			}
		}
	default:
		panic(fmt.Sprintf("unvalidated protocol %q", protocol))
	}
	res := trialResult{flows: [2]float64{meters[0].Mbps(), meters[1].Mbps()}}
	res.agg = res.flows[0] + res.flows[1]
	if tracer != nil {
		fmt.Printf("\nlast %d link-layer events of flow 0's endpoints:\n%s", tracer.Len(), tracer.Dump())
	}
	return res
}

// buildTestbed realises the chosen layout and, for the generated
// scenarios, runs the link-measurement pass over it so the Figure 11
// topology pickers work on top. The pass is O(n²) — cmapsim sizes are
// CLI-scale, not the 1000-node benchmark regime.
func buildTestbed(scenario string, nodes int, seed uint64) (*topo.Testbed, error) {
	switch scenario {
	case "testbed":
		if nodes <= 0 {
			nodes = 50
		}
		return topo.NewTestbed(nodes, seed), nil
	case "gridcity":
		// Blocks of 300 m keep same-block links inside the strong-signal
		// range of the urban model, so potential transmission links exist.
		const perBlock = 6
		if nodes <= 0 {
			nodes = 216
		}
		side := 1
		for side*side*perBlock < nodes {
			side++
		}
		return topo.GridCity(side, side, perBlock, 300, seed).Testbed(), nil
	case "clusters":
		// Tight hotspot cells a block apart: in-cell links are strong,
		// neighbouring cells interact only through carrier sense.
		const clients = 10
		if nodes <= 0 {
			nodes = 132
		}
		cells := (nodes + clients) / (clients + 1)
		if cells < 1 {
			cells = 1
		}
		return topo.ClusteredAPs(cells, clients, 400, 12, seed).Testbed(), nil
	case "disk":
		if nodes <= 0 {
			nodes = 200
		}
		return topo.UniformDisk(nodes, 200, seed).Testbed(), nil
	}
	return nil, fmt.Errorf("unknown scenario %q", scenario)
}

func main() {
	seed := flag.Uint64("seed", 1, "master seed")
	topology := flag.String("topology", "exposed", "exposed | inrange | hidden")
	protocol := flag.String("protocol", "cmap", "cmap | cmap1 | dcf | dcf-nocs | dcf-nocs-noack")
	duration := flag.Duration("duration", 30*time.Second, "virtual run time")
	index := flag.Int("index", 0, "which sampled topology to run")
	traceN := flag.Int("trace", 0, "print the last N link-layer events of the first flow's endpoints (single trial only)")
	trials := flag.Int("trials", 1, "independent replications of the scenario")
	parallel := flag.Int("parallel", 0, "worker goroutines for -trials (0 = all CPUs, 1 = serial)")
	scenario := flag.String("scenario", "testbed", "testbed | gridcity | clusters | disk")
	nodes := flag.Int("nodes", 0, "scenario size (0 = scenario default; testbed default 50)")
	flag.Parse()

	switch *protocol {
	case "cmap", "cmap1", "dcf", "dcf-nocs", "dcf-nocs-noack":
	default:
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *protocol)
		os.Exit(2)
	}

	tb, err := buildTestbed(*scenario, *nodes, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	rng := sim.NewRNG(*seed * 31)
	var pairs []topo.LinkPair
	switch *topology {
	case "exposed":
		pairs = tb.ExposedPairs(rng, *index+1)
	case "inrange":
		pairs = tb.InRangePairs(rng, *index+1)
	case "hidden":
		pairs = tb.HiddenPairs(rng, *index+1)
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topology)
		os.Exit(2)
	}
	if *index >= len(pairs) {
		fmt.Fprintf(os.Stderr, "only %d %s topologies available\n", len(pairs), *topology)
		os.Exit(1)
	}
	pair := pairs[*index]
	fmt.Printf("topology %s[%d]: S1=%d→R1=%d  S2=%d→R2=%d\n",
		*topology, *index, pair.A.Src, pair.A.Dst, pair.B.Src, pair.B.Dst)
	fmt.Printf("links: S1→R1 %.0f dBm (PRR %.2f)  S2→R2 %.0f dBm (PRR %.2f)  S2@S1 %.0f dBm\n",
		tb.RSS[pair.A.Src][pair.A.Dst], tb.PRR[pair.A.Src][pair.A.Dst],
		tb.RSS[pair.B.Src][pair.B.Dst], tb.PRR[pair.B.Src][pair.B.Dst],
		tb.RSS[pair.B.Src][pair.A.Src])

	d := sim.Duration(*duration)
	if *trials <= 1 {
		// The original single-run microscope: channel randomness comes
		// from the same master-seed stream as the topology sampling.
		res := runTrial(tb, pair, *protocol, d, rng.Uint64(), true, *traceN)
		fmt.Printf("aggregate: %.2f Mb/s\n", res.agg)
		return
	}

	// Replications: each trial's seed is a pure function of the master
	// seed and the trial index, so any -parallel value reproduces the
	// same numbers in the same order.
	results := runner.Map(runner.Config{Workers: *parallel}, *trials, func(i int) trialResult {
		return runTrial(tb, pair, *protocol, d, *seed+uint64(i)*0x9e37+1, false, 0)
	})
	var agg, a, b stats.Dist
	for i, r := range results {
		fmt.Printf("trial %2d: flow1 %.2f  flow2 %.2f  aggregate %.2f Mb/s\n", i, r.flows[0], r.flows[1], r.agg)
		a.Add(r.flows[0])
		b.Add(r.flows[1])
		agg.Add(r.agg)
	}
	fmt.Printf("aggregate over %d trials: mean %.2f  median %.2f  std %.2f  min %.2f  max %.2f Mb/s\n",
		*trials, agg.Mean(), agg.Median(), agg.Std(), agg.Min(), agg.Max())
	fmt.Printf("flow1 mean %.2f Mb/s  flow2 mean %.2f Mb/s\n", a.Mean(), b.Mean())
}
