// Command cmapsim runs a single two-flow scenario on the generated
// testbed and prints per-flow goodput and protocol counters — a
// microscope for one topology rather than a whole figure.
//
// Usage:
//
//	cmapsim [-seed N] [-topology exposed|inrange|hidden] [-protocol cmap|cmap1|dcf|dcf-nocs|dcf-nocs-noack]
//	        [-arm csma|rtscts|cs@-82|...] [-duration 30s] [-index 0] [-trace N] [-trials 1] [-parallel 0]
//	        [-traffic cbr|poisson|onoff] [-load 2.0] [-churn 500ms] [-predict] [-shards N]
//	        [-mobility waypoint@3|walk@1.5|vehicular@20]
//	cmapsim -scenario gridcity|clusters|disk|highway [-nodes 200] ...
//
// -arm runs any arm of the internal/mac registry by name — including
// family members like cs@-82 (CSMA with a −82 dBm carrier-sense
// threshold) — and overrides -protocol; `-arm list` prints every
// registered name. The legacy -protocol flag keeps its richer per-flow
// counter report for the protocols it names. When neither flag is set
// and the -scenario suggests arms, the first suggestion runs.
//
// -predict prints the analytic oracle's per-flow saturated-goodput
// prediction (internal/analytic: conflict-graph extraction plus the
// mean-field fixed point) next to the simulated numbers, for the
// protocols the oracle models (cmap, cmap1, dcf).
//
// With -trials above one, the same topology is replayed under
// independently seeded channel/protocol randomness and the per-trial
// aggregates are summarised; trials fan out across -parallel worker
// goroutines (default all CPUs) with bit-identical results at any count.
//
// -traffic replaces the default saturated (always-backlogged) senders
// with an arrival process at -load Mb/s of payload per flow; the
// per-flow report then includes tail drops and per-packet delivery
// latency percentiles measured past the warm-up. -churn makes flows
// alternate between live sessions and silent gaps of the given mean
// duration. Left empty, -traffic falls back to the scenario's suggested
// workload (saturated for all built-in layouts).
//
// -mobility moves the nodes while the flows run: "<model>@<speed m/s>"
// with an optional roam radius third field ("waypoint@3@15"), models
// waypoint | walk | vehicular, on the registry -arm path (serial
// engine only — it is incompatible with -shards). The medium patches
// per-node delivery lists incrementally as nodes move. Left empty, the
// scenario's suggested motion applies (static for every built-in
// layout except highway, which streams vehicles at 20 m/s).
//
// -shards partitions the single simulation across N shard goroutines
// (the internal/shard engine) on the registry -arm path. Each flow's
// endpoints are co-sharded; interference between the two flows crosses
// the shard border with the engine's lookahead-window latency. -shards 1
// is serial (bit-identical numbers). Larger counts are deterministic,
// but note the microscope is the engine's worst case: a pair chosen for
// strong cross-flow carrier-sense coupling puts the whole interaction
// on the border, so the deviation is far above what network-scale
// aggregates see — useful for inspecting exactly what the window
// perturbs, not for quoting goodput.
//
// -scenario swaps the paper's office floor for one of the large-scale
// generated layouts (sized by -nodes) and picks the experiment pair with
// the same link-selection methodology on top of it; the underlying
// medium is the sparse, grid-constructed one either way.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/analytic"
	"repro/internal/core"
	"repro/internal/csma"
	"repro/internal/experiments"
	"repro/internal/mac"
	"repro/internal/medium"
	"repro/internal/mobility"
	"repro/internal/phy"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// simNet is the engine surface runTrialArm needs: a per-node network
// attachment point, a per-node scheduler, and a clock to drive. The
// serial medium and the sharded engine both provide it, so -shards is a
// wiring choice rather than a separate code path.
type simNet interface {
	Network(id int) mac.Network
	SchedulerOf(id int) *sim.Scheduler
	Run(until sim.Time)
}

// serialNet adapts the serial medium + scheduler pair to simNet.
type serialNet struct {
	m     *medium.Medium
	sched *sim.Scheduler
}

func (s serialNet) Network(int) mac.Network        { return s.m }
func (s serialNet) SchedulerOf(int) *sim.Scheduler { return s.sched }
func (s serialNet) Run(until sim.Time)             { s.sched.Run(until) }

// predictPair runs the analytic oracle over the selected pair and prints
// its per-flow saturated prediction, or explains why the protocol has no
// analytic model. The extraction medium is built read-only from the same
// testbed the simulation uses, so both read identical gains. Registry
// arm names work too: "csma" maps to the CSMA model and "cs@<dBm>"
// additionally overrides the sensing threshold in the extraction.
func predictPair(tb *topo.Testbed, pair topo.LinkPair, protocol string, seed uint64) {
	var arm analytic.Arm
	var cfg analytic.ExtractConfig
	switch {
	case protocol == "dcf" || protocol == "csma":
		arm = analytic.ArmCSMA
	case protocol == "cmap" || protocol == "cmap1":
		arm = analytic.ArmCMAP
	case strings.HasPrefix(protocol, "cs@"):
		thr, err := strconv.ParseFloat(strings.TrimPrefix(protocol, "cs@"), 64)
		if err != nil {
			fmt.Printf("predict: bad cs@ threshold in %q\n", protocol)
			return
		}
		arm = analytic.ArmCSMA
		cfg.CSThresholdDBm = thr
	default:
		fmt.Printf("predict: no analytic model for protocol %q\n", protocol)
		return
	}
	m := tb.Build(sim.NewScheduler(), sim.NewRNG(seed).Stream(1))
	g, err := analytic.Extract(m, []topo.Link{pair.A, pair.B}, cfg)
	if err != nil {
		fmt.Printf("predict: %v\n", err)
		return
	}
	r := analytic.Solve(g, analytic.Options{Arm: arm})
	if !r.Converged {
		fmt.Printf("predict: %v fixed point did not converge (residual %.2e after %d iterations)\n",
			arm, r.Residual, r.Iterations)
		return
	}
	fmt.Printf("predict (%v, saturated): flow1 %.2f  flow2 %.2f  aggregate %.2f Mb/s  (occupancy %.2f/%.2f, %d iterations)\n",
		arm, r.FlowMbps[0], r.FlowMbps[1], r.AggregateMbps(), r.Occupancy[0], r.Occupancy[1], r.Iterations)
}

// trialResult is one replication's measured goodput (plus arrival-mode
// latency and drop counters when a traffic spec is active).
type trialResult struct {
	flows [2]float64
	agg   float64
	lats  [2]*stats.Latency
	drops uint64
}

// runTrial replays the scenario once from the given seed. detail turns on
// the verbose per-flow counter report and optional tracing (single-trial
// mode only). A non-saturated spec replaces the backlogged senders with
// arrival processes and measures per-packet latency past the warm-up.
func runTrial(tb *topo.Testbed, pair topo.LinkPair, protocol string, spec traffic.Spec, d sim.Time, seed uint64, detail bool, traceN int) trialResult {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	m := tb.Build(sched, rng.Stream(1))
	warm := d * 2 / 5
	meters := [2]*stats.Meter{
		{Start: warm, End: d},
		{Start: warm, End: d},
	}
	flows := [2]topo.Link{pair.A, pair.B}
	var tracer *trace.Tracer
	if detail && traceN > 0 {
		tracer = trace.New(traceN)
	}
	res := trialResult{}
	var sources [2]*traffic.Source

	// drive points flow i's workload at the sender: saturated directly,
	// arrival processes through a traffic.Source with latency mapping at
	// the receiver.
	drive := func(i int, sat func(), q traffic.Enqueuer, setDeliver func(func(int, uint32, sim.Time)), window int) {
		if spec.Kind == traffic.Saturated {
			sat()
			return
		}
		f := flows[i]
		res.lats[i] = &stats.Latency{W: stats.Window{Start: warm, End: d}}
		src := traffic.NewSource(sched, rng.Stream(uint64(300+i)), spec, q, f.Dst)
		src.EnableLatency(window)
		sources[i] = src
		lat := res.lats[i]
		setDeliver(func(from int, seq uint32, now sim.Time) {
			if from != f.Src {
				return
			}
			if at, ok := src.ArrivalTime(seq); ok {
				lat.Record(now, now-at)
			}
		})
		src.Start()
	}

	switch protocol {
	case "cmap", "cmap1":
		cfg := core.DefaultConfig()
		if protocol == "cmap1" {
			cfg.Nwindow = 1
		}
		var senders [2]*core.Node
		for i, f := range flows {
			senders[i] = core.New(f.Src, cfg, m, rng.Stream(uint64(100+i)))
			rx := core.New(f.Dst, cfg, m, rng.Stream(uint64(200+i)))
			rx.Meter = meters[i]
			if tracer != nil && i == 0 {
				m.Radio(f.Src).SetHandler(tracer.Wrap(f.Src, senders[i], sched))
				m.Radio(f.Dst).SetHandler(tracer.Wrap(f.Dst, rx, sched))
			}
			tx := senders[i]
			drive(i, func() { tx.SetSaturated(f.Dst) }, tx,
				func(fn func(int, uint32, sim.Time)) { rx.OnDeliver = fn },
				cfg.Nwindow*cfg.Nvpkt)
		}
		sched.Run(d)
		if detail {
			for i, f := range flows {
				st := senders[i].Stats()
				fmt.Printf("flow %d→%d: %.2f Mb/s  vpkts=%d defers=%d backoffs=%d acks=%d ackMiss=%d retxTO=%d deferTab=%d\n",
					f.Src, f.Dst, meters[i].Mbps(), st.VpktsSent, st.Defers, st.Backoffs,
					st.AcksReceived, st.AckWaitExpired, st.RetxTimeouts, senders[i].DeferTableSize())
			}
		}
	case "dcf", "dcf-nocs", "dcf-nocs-noack":
		cfg := csma.DefaultConfig()
		cfg.CarrierSense = protocol == "dcf"
		cfg.LinkACKs = protocol != "dcf-nocs-noack"
		var senders [2]*csma.Node
		for i, f := range flows {
			senders[i] = csma.New(f.Src, cfg, m, rng.Stream(uint64(100+i)))
			rx := csma.New(f.Dst, cfg, m, rng.Stream(uint64(200+i)))
			rx.Meter = meters[i]
			tx := senders[i]
			drive(i, func() { tx.SetSaturated(f.Dst) }, tx,
				func(fn func(int, uint32, sim.Time)) { rx.OnDeliver = fn }, 16)
		}
		sched.Run(d)
		if detail {
			for i, f := range flows {
				st := senders[i].Stats()
				fmt.Printf("flow %d→%d: %.2f Mb/s  sent=%d ackTO=%d dropped=%d\n",
					f.Src, f.Dst, meters[i].Mbps(), st.Sent, st.AckTimeout, st.Dropped)
			}
		}
	default:
		panic(fmt.Sprintf("unvalidated protocol %q", protocol))
	}
	res.flows = [2]float64{meters[0].Mbps(), meters[1].Mbps()}
	res.agg = res.flows[0] + res.flows[1]
	for i, src := range sources {
		if src == nil {
			continue
		}
		st := src.Stats()
		res.drops += st.Dropped
		if detail {
			fmt.Printf("flow %d→%d arrivals: offered=%d accepted=%d dropped=%d  latency p50=%.2fms p95=%.2fms p99=%.2fms (n=%d)\n",
				flows[i].Src, flows[i].Dst, st.Offered, st.Accepted, st.Dropped,
				res.lats[i].P50(), res.lats[i].P95(), res.lats[i].P99(), res.lats[i].N())
		}
	}
	if tracer != nil {
		fmt.Printf("\nlast %d link-layer events of flow 0's endpoints:\n%s", tracer.Len(), tracer.Dump())
	}
	return res
}

// resolveArm validates an -arm flag value against the internal/mac
// registry, so a typo is a CLI error that lists every registered name
// instead of a panic deep in a trial.
func resolveArm(name string) (mac.Arm, error) {
	return mac.Lookup(name)
}

// trialFlowSim builds the registry-arm microscope as a held-open
// experiments.FlowSim: the Trial wiring reproduces the historical
// per-flow RNG stream labels (100+i / 200+i stations, 300+i sources),
// so the numbers match the pre-FlowSim microscope bit-exactly — and
// the simulation can be checkpointed and resumed mid-run.
func trialFlowSim(tb *topo.Testbed, pair topo.LinkPair, armName string, spec traffic.Spec, mob mobility.Spec, d sim.Time, seed uint64, shards int) (*experiments.FlowSim, error) {
	return experiments.NewFlowSim(tb, experiments.FlowSimConfig{
		Arm:      experiments.Protocol(armName),
		Flows:    []topo.Link{pair.A, pair.B},
		Duration: d,
		Warmup:   d * 2 / 5,
		Rate:     phy.Rate6Mbps,
		Traffic:  spec,
		Mobility: mob,
		Shards:   shards,
		Trial:    true,
		Seed:     seed,
	})
}

// reportTrialArm extracts the per-flow outcome (and prints the detail
// report) from a finished registry-arm simulation.
func reportTrialArm(fs *experiments.FlowSim, pair topo.LinkPair, detail bool) trialResult {
	flows := [2]topo.Link{pair.A, pair.B}
	res := trialResult{}
	if detail {
		for i, f := range flows {
			fmt.Printf("flow %d→%d: %.2f Mb/s  macDropped=%d\n",
				f.Src, f.Dst, fs.Meter(i).Mbps(), fs.Sender(i).MacDropped())
		}
	}
	res.flows = [2]float64{fs.Meter(0).Mbps(), fs.Meter(1).Mbps()}
	res.agg = res.flows[0] + res.flows[1]
	for i := range flows {
		src := fs.Source(i)
		if src == nil {
			continue
		}
		res.lats[i] = fs.Lat(i)
		st := src.Stats()
		res.drops += st.Dropped
		if detail {
			fmt.Printf("flow %d→%d arrivals: offered=%d accepted=%d dropped=%d  latency p50=%.2fms p95=%.2fms p99=%.2fms (n=%d)\n",
				flows[i].Src, flows[i].Dst, st.Offered, st.Accepted, st.Dropped,
				res.lats[i].P50(), res.lats[i].P95(), res.lats[i].P99(), res.lats[i].N())
		}
	}
	return res
}

// runTrialArm is runTrial for registry arms: the same scenario replay,
// but the stations are built through the internal/mac registry by name,
// so every registered arm — RTS/CTS, the cs@<dBm> family, and anything
// registered later — gets the microscope without a bespoke case. The
// detail report sticks to the arm-independent surface (goodput and MAC
// drops); the legacy -protocol path keeps its protocol-specific
// counters.
func runTrialArm(tb *topo.Testbed, pair topo.LinkPair, armName string, spec traffic.Spec, mob mobility.Spec, d sim.Time, seed uint64, shards int, detail bool) trialResult {
	fs, err := trialFlowSim(tb, pair, armName, spec, mob, d, seed, shards)
	if err != nil {
		panic(err) // arm names are validated at the CLI boundary
	}
	fs.Run(d)
	return reportTrialArm(fs, pair, detail)
}

// runTrialArmCheckpointed is the crash-tolerant single-trial path:
// -checkpoint writes the complete simulation state to a file every
// -checkpoint-every of virtual time (atomically, so a kill -9 leaves at
// worst the previous checkpoint), and -resume rebuilds the skeleton
// from the identical flags and continues from the file — bit-identical
// to a run that was never interrupted. Progress notes go to stderr so
// stdout stays comparable between interrupted and uninterrupted runs.
func runTrialArmCheckpointed(tb *topo.Testbed, pair topo.LinkPair, armName string, spec traffic.Spec, mob mobility.Spec, d sim.Time, seed uint64, shards int, ckptPath string, every sim.Time, resumePath string) trialResult {
	fs, err := trialFlowSim(tb, pair, armName, spec, mob, d, seed, shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if resumePath != "" {
		if err := fs.ResumeFile(resumePath); err != nil {
			fmt.Fprintf(os.Stderr, "resume: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "resumed %s at t=%v\n", resumePath, time.Duration(fs.Now()))
	}
	if ckptPath == "" || every <= 0 {
		fs.Run(d)
	} else {
		for fs.Now() < d {
			// Multi-shard engines checkpoint only at window edges; align
			// each cut up to the next legal instant.
			next := fs.AlignCheckpoint(fs.Now() + every)
			if next >= d {
				fs.Run(d)
				break
			}
			fs.Run(next)
			if err := fs.SaveFile(ckptPath); err != nil {
				fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "checkpoint: %s at t=%v\n", ckptPath, time.Duration(next))
		}
	}
	return reportTrialArm(fs, pair, true)
}

// buildTestbed realises the chosen layout and, for the generated
// scenarios, runs the link-measurement pass over it so the Figure 11
// topology pickers work on top. The pass is O(n²) — cmapsim sizes are
// CLI-scale, not the 1000-node benchmark regime. The later results
// are the scenario's suggested workload, MAC arm set and motion model
// (saturated, driver-default and static unless the layout says
// otherwise), which the -traffic, -arm/-protocol and -mobility flags
// override.
func buildTestbed(scenario string, nodes int, seed uint64) (*topo.Testbed, traffic.Spec, []string, mobility.Spec, error) {
	switch scenario {
	case "testbed":
		if nodes <= 0 {
			nodes = 50
		}
		return topo.NewTestbed(nodes, seed), traffic.Saturate(), nil, mobility.Spec{}, nil
	case "highway":
		// Three lanes of through traffic at motorway speed; the strip is
		// long enough that the measured pair sees a steady stream of
		// vehicles passing through its neighbourhood.
		if nodes <= 0 {
			nodes = 120
		}
		sc := topo.Highway(nodes, 3, 600, 8, 20, seed)
		return sc.Testbed(), sc.Traffic, sc.Arms, sc.Mobility, nil
	case "gridcity":
		// Blocks of 300 m keep same-block links inside the strong-signal
		// range of the urban model, so potential transmission links exist.
		const perBlock = 6
		if nodes <= 0 {
			nodes = 216
		}
		side := 1
		for side*side*perBlock < nodes {
			side++
		}
		sc := topo.GridCity(side, side, perBlock, 300, seed)
		return sc.Testbed(), sc.Traffic, sc.Arms, sc.Mobility, nil
	case "clusters":
		// Tight hotspot cells a block apart: in-cell links are strong,
		// neighbouring cells interact only through carrier sense.
		const clients = 10
		if nodes <= 0 {
			nodes = 132
		}
		cells := (nodes + clients) / (clients + 1)
		if cells < 1 {
			cells = 1
		}
		sc := topo.ClusteredAPs(cells, clients, 400, 12, seed)
		return sc.Testbed(), sc.Traffic, sc.Arms, sc.Mobility, nil
	case "disk":
		if nodes <= 0 {
			nodes = 200
		}
		sc := topo.UniformDisk(nodes, 200, seed)
		return sc.Testbed(), sc.Traffic, sc.Arms, sc.Mobility, nil
	}
	return nil, traffic.Spec{}, nil, mobility.Spec{}, fmt.Errorf("unknown scenario %q", scenario)
}

func main() {
	seed := flag.Uint64("seed", 1, "master seed")
	topology := flag.String("topology", "exposed", "exposed | inrange | hidden")
	protocol := flag.String("protocol", "cmap", "cmap | cmap1 | dcf | dcf-nocs | dcf-nocs-noack")
	armFlag := flag.String("arm", "", "registry MAC arm name (e.g. rtscts, cs@-82); overrides -protocol; \"list\" prints all arms")
	duration := flag.Duration("duration", 30*time.Second, "virtual run time")
	index := flag.Int("index", 0, "which sampled topology to run")
	traceN := flag.Int("trace", 0, "print the last N link-layer events of the first flow's endpoints (single trial only)")
	trials := flag.Int("trials", 1, "independent replications of the scenario")
	parallel := flag.Int("parallel", 0, "worker goroutines for -trials (0 = all CPUs, 1 = serial)")
	scenario := flag.String("scenario", "testbed", "testbed | gridcity | clusters | disk")
	nodes := flag.Int("nodes", 0, "scenario size (0 = scenario default; testbed default 50)")
	trafficKind := flag.String("traffic", "", "arrival model: saturated | cbr | poisson | onoff (empty = scenario default)")
	load := flag.Float64("load", 2.0, "per-flow offered load in Mb/s of payload (non-saturated -traffic only)")
	churn := flag.Duration("churn", 0, "mean session up/down duration for flow churn (0 = no churn)")
	mobilityFlag := flag.String("mobility", "", "node motion: <model>@<speed m/s>[@roamM] with model waypoint|walk|vehicular, or none (empty = scenario default)")
	predict := flag.Bool("predict", false, "also print the analytic oracle's saturated per-flow prediction")
	shards := flag.Int("shards", 0, "partition the simulation across N shard goroutines (registry -arm path only; <=1 = serial)")
	ckptPath := flag.String("checkpoint", "", "write the full simulation state to this file every -checkpoint-every of virtual time (registry -arm single-trial path)")
	ckptEvery := flag.Duration("checkpoint-every", 5*time.Second, "virtual-time interval between auto-checkpoints")
	resumePath := flag.String("resume", "", "resume a single-trial -arm run from a checkpoint file written under identical flags")
	flag.Parse()

	if *armFlag == "list" {
		for _, name := range mac.Names() {
			fmt.Println(name)
		}
		return
	}
	if *armFlag != "" {
		if _, err := resolveArm(*armFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		switch *protocol {
		case "cmap", "cmap1", "dcf", "dcf-nocs", "dcf-nocs-noack":
		default:
			fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *protocol)
			os.Exit(2)
		}
	}

	tb, spec, suggested, mob, err := buildTestbed(*scenario, *nodes, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *mobilityFlag != "" {
		mob, err = mobility.ParseSpec(*mobilityFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	// With neither -arm nor -protocol chosen explicitly, a scenario that
	// suggests arms picks the station type (mirroring how an unset
	// -traffic falls back to the scenario's suggested workload).
	if *armFlag == "" && len(suggested) > 0 {
		protocolSet := false
		flag.Visit(func(f *flag.Flag) { protocolSet = protocolSet || f.Name == "protocol" })
		if !protocolSet {
			*armFlag = suggested[0]
			fmt.Printf("arm: %s (scenario suggestion; override with -arm or -protocol)\n", *armFlag)
		}
	}
	if *trafficKind != "" {
		kind, err := traffic.ParseKind(*trafficKind)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		spec.Kind = kind
	}
	if spec.Kind != traffic.Saturated {
		// !(load > 0) also rejects NaN. Validate here so a bad flag is a
		// CLI error, not a panic from inside traffic.NewSource.
		if !(*load > 0) || *load > 1e6 {
			fmt.Fprintf(os.Stderr, "-load %v: want a positive Mb/s value\n", *load)
			os.Exit(2)
		}
		if *churn > 0 {
			spec.UpMean = sim.Duration(*churn)
			spec.DownMean = sim.Duration(*churn)
		}
		// The -load flag (or its default) sets the long-run offered rate
		// unless the scenario suggested a workload with its own rate and
		// the user did not override it.
		loadSet := false
		flag.Visit(func(f *flag.Flag) { loadSet = loadSet || f.Name == "load" })
		if loadSet || spec.PacketsPerSec <= 0 {
			spec = spec.WithOfferedMbps(*load, 1400)
		}
		fmt.Printf("traffic: %v at %.2f Mb/s offered per flow (%.0f pkt/s peak)\n",
			spec.Kind, spec.OfferedMbps(1400), spec.PacketsPerSec)
	}
	rng := sim.NewRNG(*seed * 31)
	var pairs []topo.LinkPair
	switch *topology {
	case "exposed":
		pairs = tb.ExposedPairs(rng, *index+1)
	case "inrange":
		pairs = tb.InRangePairs(rng, *index+1)
	case "hidden":
		pairs = tb.HiddenPairs(rng, *index+1)
	default:
		fmt.Fprintf(os.Stderr, "unknown topology %q\n", *topology)
		os.Exit(2)
	}
	if *index >= len(pairs) {
		fmt.Fprintf(os.Stderr, "only %d %s topologies available\n", len(pairs), *topology)
		os.Exit(1)
	}
	pair := pairs[*index]
	fmt.Printf("topology %s[%d]: S1=%d→R1=%d  S2=%d→R2=%d\n",
		*topology, *index, pair.A.Src, pair.A.Dst, pair.B.Src, pair.B.Dst)
	fmt.Printf("links: S1→R1 %.0f dBm (PRR %.2f)  S2→R2 %.0f dBm (PRR %.2f)  S2@S1 %.0f dBm\n",
		tb.RSS[pair.A.Src][pair.A.Dst], tb.PRR[pair.A.Src][pair.A.Dst],
		tb.RSS[pair.B.Src][pair.B.Dst], tb.PRR[pair.B.Src][pair.B.Dst],
		tb.RSS[pair.B.Src][pair.A.Src])
	if *predict {
		name := *protocol
		if *armFlag != "" {
			name = *armFlag
		}
		predictPair(tb, pair, name, *seed)
	}

	if mob.Active() {
		if *armFlag == "" {
			fmt.Fprintln(os.Stderr, "-mobility needs the registry path: pass -arm (e.g. -arm cmap)")
			os.Exit(2)
		}
		if *shards > 1 {
			fmt.Fprintln(os.Stderr, "-mobility needs the serial engine; drop -shards")
			os.Exit(2)
		}
		fmt.Printf("mobility: %s\n", mob)
	}
	if *shards > 1 && *armFlag == "" {
		// The legacy -protocol microscope is serial-only; sharding runs
		// through the registry wiring.
		fmt.Fprintln(os.Stderr, "-shards needs the registry path: pass -arm (e.g. -arm cmap)")
		os.Exit(2)
	}
	if *ckptPath != "" || *resumePath != "" {
		if *armFlag == "" {
			fmt.Fprintln(os.Stderr, "-checkpoint/-resume need the registry path: pass -arm (e.g. -arm cmap)")
			os.Exit(2)
		}
		if *trials > 1 {
			fmt.Fprintln(os.Stderr, "-checkpoint/-resume apply to the single-trial microscope, not -trials replications")
			os.Exit(2)
		}
	}

	// trial dispatches one replay: through the registry for -arm, through
	// the protocol-specific microscope for the legacy -protocol names.
	trial := func(seed uint64, detail bool, traceN int) trialResult {
		if *armFlag != "" {
			return runTrialArm(tb, pair, *armFlag, spec, mob, sim.Duration(*duration), seed, *shards, detail)
		}
		return runTrial(tb, pair, *protocol, spec, sim.Duration(*duration), seed, detail, traceN)
	}
	if *trials <= 1 {
		// The original single-run microscope: channel randomness comes
		// from the same master-seed stream as the topology sampling.
		trialSeed := rng.Uint64()
		var res trialResult
		if *ckptPath != "" || *resumePath != "" {
			res = runTrialArmCheckpointed(tb, pair, *armFlag, spec, mob, sim.Duration(*duration),
				trialSeed, *shards, *ckptPath, sim.Duration(*ckptEvery), *resumePath)
		} else {
			res = trial(trialSeed, true, *traceN)
		}
		fmt.Printf("aggregate: %.2f Mb/s\n", res.agg)
		return
	}

	// Replications: each trial's seed is a pure function of the master
	// seed and the trial index, so any -parallel value reproduces the
	// same numbers in the same order.
	results := runner.Map(runner.Config{Workers: *parallel}, *trials, func(i int) trialResult {
		return trial(*seed+uint64(i)*0x9e37+1, false, 0)
	})
	var agg, a, b stats.Dist
	var pooled stats.Latency
	var drops uint64
	for i, r := range results {
		fmt.Printf("trial %2d: flow1 %.2f  flow2 %.2f  aggregate %.2f Mb/s\n", i, r.flows[0], r.flows[1], r.agg)
		a.Add(r.flows[0])
		b.Add(r.flows[1])
		agg.Add(r.agg)
		pooled.Merge(r.lats[0])
		pooled.Merge(r.lats[1])
		drops += r.drops
	}
	fmt.Printf("aggregate over %d trials: mean %.2f  median %.2f  std %.2f  min %.2f  max %.2f Mb/s\n",
		*trials, agg.Mean(), agg.Median(), agg.Std(), agg.Min(), agg.Max())
	fmt.Printf("flow1 mean %.2f Mb/s  flow2 mean %.2f Mb/s\n", a.Mean(), b.Mean())
	if spec.Kind != traffic.Saturated {
		fmt.Printf("latency pooled over trials: p50 %.2f  p95 %.2f  p99 %.2f ms (n=%d); tail drops %d\n",
			pooled.P50(), pooled.P95(), pooled.P99(), pooled.N(), drops)
	}
}
