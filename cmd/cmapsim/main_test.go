package main

import (
	"strings"
	"testing"
)

// The -arm flag resolves through the internal/mac registry, so a typo
// must die at flag validation with the full menu of registered names,
// not deep inside a trial.
func TestResolveArmUnknown(t *testing.T) {
	_, err := resolveArm("bogus")
	if err == nil {
		t.Fatal("resolveArm accepted an unregistered arm")
	}
	for _, name := range []string{"bogus", "csma", "cmap", "rtscts", "cs@<dBm>"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention %q", err, name)
		}
	}
}

func TestResolveArmFamilyMember(t *testing.T) {
	arm, err := resolveArm("cs@-82")
	if err != nil {
		t.Fatalf("resolveArm(cs@-82): %v", err)
	}
	if got := arm.Name(); got != "cs@-82" {
		t.Errorf("arm.Name() = %q, want cs@-82", got)
	}
}

func TestResolveArmMalformedFamilyMember(t *testing.T) {
	_, err := resolveArm("cs@junk")
	if err == nil {
		t.Fatal("resolveArm accepted a malformed cs@ member")
	}
	if !strings.Contains(err.Error(), "cs@junk") {
		t.Errorf("error %q does not name the malformed member", err)
	}
}
