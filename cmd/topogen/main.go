// Command topogen generates a simulated testbed and reports its link
// census against the paper's §5.1 numbers, plus the availability of
// every experiment topology class.
//
// Usage:
//
//	topogen [-n 50] [-seed 1] [-positions]
package main

import (
	"flag"
	"fmt"

	"repro/internal/sim"
	"repro/internal/topo"
)

func main() {
	n := flag.Int("n", 50, "node count")
	seed := flag.Uint64("seed", 1, "topology seed")
	positions := flag.Bool("positions", false, "print node coordinates")
	flag.Parse()

	tb := topo.NewTestbed(*n, *seed)
	c := tb.Census()
	fmt.Printf("testbed: %d nodes on %.0f×%.0f m (seed %d)\n",
		tb.N, tb.Bounds.Width(), tb.Bounds.Height(), *seed)
	fmt.Printf("connected ordered pairs: %d        (paper: 2162)\n", c.ConnectedPairs)
	fmt.Printf("PRR < 0.1        : %5.1f%%        (paper: 68%%)\n", 100*c.FracLow)
	fmt.Printf("0.1 ≤ PRR < 1    : %5.1f%%        (paper: 12%%)\n", 100*c.FracMid)
	fmt.Printf("PRR = 1          : %5.1f%%        (paper: 20%%)\n", 100*c.FracFull)
	fmt.Printf("mean degree      : %5.1f         (paper: 15.2)\n", c.MeanDegree)
	fmt.Printf("median degree    : %5.1f         (paper: 17)\n", c.MedianDegree)
	fmt.Printf("signal percentiles: p10 %.1f dBm, p90 %.1f dBm\n\n", tb.SignalP10(), tb.SignalP90())

	rng := sim.NewRNG(*seed * 977)
	fmt.Printf("experiment topology availability:\n")
	fmt.Printf("  exposed pairs (Fig. 11a): %d/50\n", len(tb.ExposedPairs(rng, 50)))
	fmt.Printf("  in-range pairs (Fig. 11b): %d/50\n", len(tb.InRangePairs(rng, 50)))
	fmt.Printf("  hidden pairs (Fig. 11c): %d/50\n", len(tb.HiddenPairs(rng, 50)))
	fmt.Printf("  interferer triples (§5.4): %d/500\n", len(tb.HiddenInterfererTriples(rng, 500)))
	fmt.Printf("  AP cells (§5.6): %d/6\n", len(tb.APRegions()))
	fmt.Printf("  meshes (Fig. 11d): %d/10\n", len(tb.MeshTopologies(rng, 10, 3)))

	if *positions {
		fmt.Printf("\nnode positions (m):\n")
		for i, p := range tb.Pos {
			fmt.Printf("  %2d: %s\n", i, p)
		}
	}
}
