// Command topogen generates a simulated testbed and reports its link
// census against the paper's §5.1 numbers, plus the availability of
// every experiment topology class. With -scenario it instead generates
// one of the large-scale layouts (grid city, clustered APs, uniform
// disk) and reports sparse-medium statistics: audible-neighbour degree
// and delivery-list population versus the dense n² pair count.
//
// Usage:
//
//	topogen [-n 50] [-seed 1] [-positions]
//	topogen -scenario gridcity [-blocks 8] [-perblock 6] [-blockm 400]
//	topogen -scenario clusters [-cells 12] [-clients 10] [-side 2500] [-cellradius 40]
//	topogen -scenario disk [-n 1000] [-density 50]
//	        [-census] runs the O(n²) measurement pass and prints the link census
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/topo"
)

func main() {
	n := flag.Int("n", 50, "node count (testbed, disk)")
	seed := flag.Uint64("seed", 1, "topology seed")
	positions := flag.Bool("positions", false, "print node coordinates")
	scenario := flag.String("scenario", "testbed", "testbed | gridcity | clusters | disk")
	blocks := flag.Int("blocks", 8, "gridcity: blocks per side")
	perBlock := flag.Int("perblock", 6, "gridcity: nodes per block")
	blockM := flag.Float64("blockm", 400, "gridcity: block edge in metres")
	cells := flag.Int("cells", 12, "clusters: AP cell count")
	clients := flag.Int("clients", 10, "clusters: clients per cell")
	side := flag.Float64("side", 2500, "clusters: area edge in metres")
	cellRadius := flag.Float64("cellradius", 40, "clusters: client disk radius in metres")
	density := flag.Float64("density", 50, "disk: nodes per km²")
	census := flag.Bool("census", false, "scenario modes: also run the O(n²) measurement pass")
	flag.Parse()

	if *scenario == "testbed" {
		printTestbed(topo.NewTestbed(*n, *seed), *seed, *positions)
		return
	}

	var s *topo.Scenario
	switch *scenario {
	case "gridcity":
		s = topo.GridCity(*blocks, *blocks, *perBlock, *blockM, *seed)
	case "clusters":
		s = topo.ClusteredAPs(*cells, *clients, *side, *cellRadius, *seed)
	case "disk":
		s = topo.UniformDisk(*n, *density, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(2)
	}

	if s.N() < 2 {
		fmt.Fprintf(os.Stderr, "scenario %s has %d nodes; need at least 2\n", s.Name, s.N())
		os.Exit(1)
	}

	start := time.Now()
	m := s.Build(sim.NewScheduler(), sim.NewRNG(*seed))
	elapsed := time.Since(start)

	degrees := make([]int, s.N())
	total := 0
	for i := range degrees {
		degrees[i] = m.NeighborCount(i)
		total += degrees[i]
	}
	sort.Ints(degrees)
	construction := "exhaustive pairs"
	if m.GridBacked() {
		construction = "spatial grid"
	}
	fmt.Printf("scenario %s: %d nodes on %.0f×%.0f m (seed %d)\n",
		s.Name, s.N(), s.Bounds.Width(), s.Bounds.Height(), *seed)
	fmt.Printf("medium construction: %s, %v\n", construction, elapsed.Round(time.Microsecond))
	fmt.Printf("delivery-list entries: %d of %d ordered pairs (%.1f%%)\n",
		total, s.N()*(s.N()-1), 100*float64(total)/float64(s.N()*(s.N()-1)))
	fmt.Printf("audible degree: mean %.1f  median %d  min %d  max %d\n",
		float64(total)/float64(s.N()), degrees[len(degrees)/2], degrees[0], degrees[len(degrees)-1])
	if len(s.APs) > 0 {
		fmt.Printf("designated APs: %d\n", len(s.APs))
	}

	if *census {
		tb := s.Testbed()
		c := tb.Census()
		fmt.Printf("\nlink census (O(n²) measurement pass):\n")
		fmt.Printf("connected ordered pairs: %d\n", c.ConnectedPairs)
		fmt.Printf("PRR < 0.1: %.1f%%   0.1 ≤ PRR < 1: %.1f%%   PRR = 1: %.1f%%\n",
			100*c.FracLow, 100*c.FracMid, 100*c.FracFull)
		fmt.Printf("mean degree %.1f, median %.1f (PRR ≥ 0.1 neighbours)\n", c.MeanDegree, c.MedianDegree)
	}

	if *positions {
		fmt.Printf("\nnode positions (m):\n")
		for i, p := range s.Pos {
			fmt.Printf("  %4d: %s\n", i, p)
		}
	}
}

func printTestbed(tb *topo.Testbed, seed uint64, positions bool) {
	c := tb.Census()
	fmt.Printf("testbed: %d nodes on %.0f×%.0f m (seed %d)\n",
		tb.N, tb.Bounds.Width(), tb.Bounds.Height(), seed)
	fmt.Printf("connected ordered pairs: %d        (paper: 2162)\n", c.ConnectedPairs)
	fmt.Printf("PRR < 0.1        : %5.1f%%        (paper: 68%%)\n", 100*c.FracLow)
	fmt.Printf("0.1 ≤ PRR < 1    : %5.1f%%        (paper: 12%%)\n", 100*c.FracMid)
	fmt.Printf("PRR = 1          : %5.1f%%        (paper: 20%%)\n", 100*c.FracFull)
	fmt.Printf("mean degree      : %5.1f         (paper: 15.2)\n", c.MeanDegree)
	fmt.Printf("median degree    : %5.1f         (paper: 17)\n", c.MedianDegree)
	fmt.Printf("signal percentiles: p10 %.1f dBm, p90 %.1f dBm\n\n", tb.SignalP10(), tb.SignalP90())

	rng := sim.NewRNG(seed * 977)
	fmt.Printf("experiment topology availability:\n")
	fmt.Printf("  exposed pairs (Fig. 11a): %d/50\n", len(tb.ExposedPairs(rng, 50)))
	fmt.Printf("  in-range pairs (Fig. 11b): %d/50\n", len(tb.InRangePairs(rng, 50)))
	fmt.Printf("  hidden pairs (Fig. 11c): %d/50\n", len(tb.HiddenPairs(rng, 50)))
	fmt.Printf("  interferer triples (§5.4): %d/500\n", len(tb.HiddenInterfererTriples(rng, 500)))
	fmt.Printf("  AP cells (§5.6): %d/6\n", len(tb.APRegions()))
	fmt.Printf("  meshes (Fig. 11d): %d/10\n", len(tb.MeshTopologies(rng, 10, 3)))

	if positions {
		fmt.Printf("\nnode positions (m):\n")
		for i, p := range tb.Pos {
			fmt.Printf("  %2d: %s\n", i, p)
		}
	}
}
