package main

import (
	"os"
	"testing"
)

// autoPair's contract: with fewer than two BENCH_*.json files the gate
// reports nothing-to-compare (ok=false) instead of failing, and with
// two or more it yields a deterministic (old, new) ordering. The test
// directories are not git repositories, so every file counts as
// uncommitted (newest) and the tie breaks on path name — the ordering
// the doc comment promises.

func writeBench(t *testing.T, name string) {
	t.Helper()
	if err := os.WriteFile(name, []byte(`{"commit":"x","benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestAutoPairFewerThanTwoFiles(t *testing.T) {
	t.Chdir(t.TempDir())
	if _, _, ok := autoPair(); ok {
		t.Fatal("empty dir: autoPair reported a pair")
	}
	writeBench(t, "BENCH_aaaa.json")
	if _, _, ok := autoPair(); ok {
		t.Fatal("one file: autoPair reported a pair")
	}
}

func TestAutoPairOrdering(t *testing.T) {
	t.Chdir(t.TempDir())
	writeBench(t, "BENCH_cccc.json")
	writeBench(t, "BENCH_aaaa.json")
	writeBench(t, "BENCH_bbbb.json")
	oldPath, newPath, ok := autoPair()
	if !ok {
		t.Fatal("three files: autoPair found nothing")
	}
	// All uncommitted → newest-last by path; the two newest are b and c.
	if oldPath != "BENCH_bbbb.json" || newPath != "BENCH_cccc.json" {
		t.Fatalf("pair = (%s, %s), want (BENCH_bbbb.json, BENCH_cccc.json)", oldPath, newPath)
	}
}

func TestGuardedByPrefixList(t *testing.T) {
	cases := []struct {
		name, guard string
		want        bool
	}{
		{"SaturatedSteadyState/n=200", "SaturatedSteadyState,IncrementalUpdate", true},
		{"IncrementalUpdate/n=1000", "SaturatedSteadyState,IncrementalUpdate", true},
		{"DeliveryRebuild/n=1000", "SaturatedSteadyState,IncrementalUpdate", false},
		{"MediumConstruct/n=50", "SaturatedSteadyState", false},
		{"IncrementalUpdate/n=50", " SaturatedSteadyState , IncrementalUpdate ", true},
		{"anything", ",,", false},
	}
	for _, c := range cases {
		if got := guardedBy(c.name, c.guard); got != c.want {
			t.Errorf("guardedBy(%q, %q) = %v, want %v", c.name, c.guard, got, c.want)
		}
	}
}

func TestLoadRejectsBadJSON(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/BENCH_bad.json"
	if err := os.WriteFile(path, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := load(path); err == nil {
		t.Fatal("load of invalid JSON succeeded")
	}
	if _, err := load(dir + "/missing.json"); err == nil {
		t.Fatal("load of missing file succeeded")
	}
}
