// Command benchdiff compares two BENCH_<sha>.json trajectory files
// (written by cmapbench -benchjson) and fails on ns/op regressions in
// the guarded benchmark families, so a perf-sensitive change cannot
// land a silently slower steady state.
//
// Usage:
//
//	benchdiff [-threshold 0.20] [-guard SaturatedSteadyState,IncrementalUpdate] old.json new.json
//	benchdiff -auto
//
// -auto discovers the BENCH_*.json files in the current directory and
// compares the two most recently committed ones (ordered by the commit
// date each file was added; an uncommitted file counts as newest). With
// fewer than two files -auto passes trivially, so the gate arms itself
// the first time a second trajectory file lands.
//
// Every benchmark present in both files is reported with its ns/op
// delta. Only benchmarks whose name starts with one of the
// comma-separated -guard prefixes can fail the run, and only when
// ns/op grew by more than -threshold (default 20%). Setting
// BENCHDIFF_SKIP=1 reports the same table but always exits 0 — the
// escape hatch for a deliberate, explained regression; the variable
// name shows up in CI logs, which is the point.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// benchRecord mirrors one benchmark row of cmapbench's BENCH schema.
type benchRecord struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_op"`
}

// benchFile mirrors the parts of the BENCH_<sha>.json schema the diff
// needs; unknown fields pass through unharmed.
type benchFile struct {
	Commit     string        `json:"commit"`
	NumCPU     int           `json:"num_cpu"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

func load(path string) (benchFile, error) {
	var f benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %v", path, err)
	}
	return f, nil
}

// addedUnix returns the unix time of the commit that added path, or 0
// when git does not know the file (never committed → newest).
func addedUnix(path string) int64 {
	out, err := exec.Command("git", "log", "--diff-filter=A", "--format=%ct", "-1", "--", path).Output()
	if err != nil {
		return 0
	}
	s := strings.TrimSpace(string(out))
	if s == "" {
		return 0
	}
	t, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0
	}
	return t
}

// autoPair picks (old, new) from the BENCH_*.json files present,
// ordered by when each entered git history; uncommitted files sort
// newest. The second result is false when fewer than two files exist.
func autoPair() (string, string, bool) {
	files, _ := filepath.Glob("BENCH_*.json")
	if len(files) < 2 {
		return "", "", false
	}
	type entry struct {
		path  string
		added int64
	}
	entries := make([]entry, 0, len(files))
	for _, f := range files {
		entries = append(entries, entry{f, addedUnix(f)})
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i].added, entries[j].added
		if a == 0 {
			a = 1<<63 - 1
		}
		if b == 0 {
			b = 1<<63 - 1
		}
		if a != b {
			return a < b
		}
		return entries[i].path < entries[j].path
	})
	return entries[len(entries)-2].path, entries[len(entries)-1].path, true
}

// guardedBy reports whether name starts with any of the comma-separated
// prefixes in guard (empty prefixes are ignored).
func guardedBy(name, guard string) bool {
	for _, g := range strings.Split(guard, ",") {
		if g = strings.TrimSpace(g); g != "" && strings.HasPrefix(name, g) {
			return true
		}
	}
	return false
}

func main() {
	threshold := flag.Float64("threshold", 0.20, "fractional ns/op growth in a guarded benchmark that fails the diff")
	guard := flag.String("guard", "SaturatedSteadyState,IncrementalUpdate",
		"comma-separated benchmark name prefixes the failure gate applies to")
	auto := flag.Bool("auto", false, "compare the two most recently committed BENCH_*.json in the current directory")
	flag.Parse()

	var oldPath, newPath string
	switch {
	case *auto:
		var ok bool
		oldPath, newPath, ok = autoPair()
		if !ok {
			fmt.Println("benchdiff: fewer than two BENCH_*.json files — nothing to compare")
			return
		}
	case flag.NArg() == 2:
		oldPath, newPath = flag.Arg(0), flag.Arg(1)
	default:
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold F] [-guard PREFIX] old.json new.json | benchdiff -auto")
		os.Exit(2)
	}

	oldF, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newF, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fmt.Printf("benchdiff: %s (%s) → %s (%s)\n", oldPath, oldF.Commit, newPath, newF.Commit)
	if oldF.NumCPU != newF.NumCPU {
		fmt.Printf("note: num_cpu differs (%d → %d); wall-clock deltas are not apples to apples\n",
			oldF.NumCPU, newF.NumCPU)
	}

	oldBy := map[string]float64{}
	for _, b := range oldF.Benchmarks {
		oldBy[b.Name] = b.NsPerOp
	}
	var regressions []string
	for _, b := range newF.Benchmarks {
		was, ok := oldBy[b.Name]
		if !ok {
			fmt.Printf("  %-44s %12.0f ns/op   (new)\n", b.Name, b.NsPerOp)
			continue
		}
		delete(oldBy, b.Name)
		delta := (b.NsPerOp - was) / was
		marker := ""
		if guardedBy(b.Name, *guard) && delta > *threshold {
			marker = "  ← REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f → %.0f ns/op (%+.1f%%)", b.Name, was, b.NsPerOp, 100*delta))
		}
		fmt.Printf("  %-44s %12.0f ns/op   %+7.1f%%%s\n", b.Name, b.NsPerOp, 100*delta, marker)
	}
	for name := range oldBy {
		fmt.Printf("  %-44s %12s            (dropped)\n", name, "—")
	}

	if len(regressions) == 0 {
		fmt.Printf("guard %q: no regression above %.0f%%\n", *guard, 100**threshold)
		return
	}
	fmt.Printf("\n%d guarded benchmark(s) regressed more than %.0f%% ns/op:\n", len(regressions), 100**threshold)
	for _, r := range regressions {
		fmt.Println("  " + r)
	}
	if os.Getenv("BENCHDIFF_SKIP") != "" {
		fmt.Println("BENCHDIFF_SKIP set — accepting the regression (leave a justification in the PR)")
		return
	}
	fmt.Println("set BENCHDIFF_SKIP=1 to accept a deliberate regression")
	os.Exit(1)
}
