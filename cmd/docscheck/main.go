// Command docscheck is the documentation gate behind `make docs-check`:
// it fails the build when the docs drift from the code.
//
// Two checks run:
//
//   - Package comments: every package under internal/ (and the root
//     package) must carry a Go package comment — the godoc contract
//     this repo maintains per package in doc.go files.
//   - Markdown links: every relative link target in the given markdown
//     files must exist on disk, so README/ARCHITECTURE/ROADMAP cannot
//     reference files that were renamed or deleted. External http(s)
//     links are not fetched (CI must not depend on the network).
//
// Usage:
//
//	docscheck [-root .] [markdown files...]
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root")
	flag.Parse()

	fail := false
	report := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
		fail = true
	}

	checkPackageComments(*root, report)
	for _, md := range flag.Args() {
		checkMarkdownLinks(*root, md, report)
	}
	if fail {
		os.Exit(1)
	}
	fmt.Printf("docscheck: package comments and markdown links OK\n")
}

// checkPackageComments walks internal/ and the repo root and requires a
// package comment in every non-test package.
func checkPackageComments(root string, report func(string, ...any)) {
	var dirs []string
	dirs = append(dirs, root)
	internal := filepath.Join(root, "internal")
	entries, err := os.ReadDir(internal)
	if err != nil {
		report("docscheck: reading %s: %v", internal, err)
		return
	}
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join(internal, e.Name()))
		}
	}
	for _, dir := range dirs {
		if !hasPackageComment(dir, report) {
			report("docscheck: package in %s has no package comment (add a doc.go)", dir)
		}
	}
}

// hasPackageComment reports whether any non-test Go file in dir carries
// a package comment.
func hasPackageComment(dir string, report func(string, ...any)) bool {
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		return true // not a Go package directory
	}
	fset := token.NewFileSet()
	sawGo := false
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		sawGo = true
		parsed, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			report("docscheck: parsing %s: %v", f, err)
			continue
		}
		if parsed.Doc != nil && strings.TrimSpace(parsed.Doc.Text()) != "" {
			return true
		}
	}
	return !sawGo
}

// mdLink matches inline markdown link targets: [text](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdownLinks verifies every relative link in md resolves to an
// existing file or directory under root.
func checkMarkdownLinks(root, md string, report func(string, ...any)) {
	data, err := os.ReadFile(filepath.Join(root, md))
	if err != nil {
		report("docscheck: %v", err)
		return
	}
	for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
		target := m[1]
		if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
			strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
			continue
		}
		target = strings.SplitN(target, "#", 2)[0]
		if target == "" {
			continue
		}
		resolved := filepath.Join(root, filepath.Dir(md), target)
		if _, err := os.Stat(resolved); err != nil {
			report("docscheck: %s links to %q which does not exist", md, m[1])
		}
	}
}
