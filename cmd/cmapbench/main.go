// Command cmapbench regenerates every table and figure of the paper's
// evaluation (§4.2, §5.2–§5.8) and prints paper-expected versus measured
// values. It is the source of EXPERIMENTS.md.
//
// Usage:
//
//	cmapbench [-seed N] [-scale quick|mid|paper] [-only fig12,mesh,loadsweep,cssweep,staleness,...] [-parallel W] [-trials N] [-progress]
//	          [-arms csma,cmap,rtscts,cs@-82,...] [-traffic cbr|poisson|onoff] [-load 0.5,1,2,4,8] [-shards N]
//	          [-mobility waypoint@3|walk@1.5|vehicular@20]
//
// -shards runs every figure's flow simulations on the sharded engine
// (internal/shard) with N shards per run — deterministic, figure-level
// equivalent to serial, and a whole-simulation parallelism axis that
// composes with the -parallel trial fan-out.
//
// "paper" runs the full 100-second, 50-topology methodology (slow);
// "mid" is the EXPERIMENTS.md scale (30 s runs); "quick" is CI-sized.
//
// -arms overrides the arm set of every protocol-comparison figure with
// a comma-separated list of internal/mac registry names — any
// registered arm qualifies, including cs@<dBm> carrier-sense-threshold
// family members; `-arms list` prints every name. Figures keep their
// paper-default arms when the flag is unset. The cssweep section (its
// own figure, beyond the paper) sweeps the cs@<dBm> family across
// exposed and hidden pairs and flags the threshold knee.
//
// -mobility moves every flow figure's nodes with the given motion
// model ("<model>@<speed m/s>[@roamM]", models waypoint | walk |
// vehicular) on the serial engine (incompatible with -shards); the
// medium patches per-node delivery lists incrementally as nodes move.
// The staleness section (-only staleness, its own figure beyond the
// paper) ignores the flag and sweeps waypoint speed itself: goodput
// versus node speed for CMAP against csma and rtscts on the exposed
// pairs, showing conflict-map staleness erode CMAP's advantage.
//
// -traffic replaces the saturated senders of every flow-based figure
// (calibration, the pair figures, interferers, APs, sender sweep,
// bit-rates) with the given arrival process at the first -load value
// Mb/s per flow; the §5.7 mesh keeps its phase-controlled batch
// workload and says so. The load-sweep figure (-only loadsweep) always
// runs the whole -load list, Poisson by default, on exposed and hidden
// pairs.
//
// Trials fan out across -parallel worker goroutines (default: all CPUs);
// the numbers are bit-identical at every worker count, so -parallel only
// changes wall-clock time. -trials overrides every per-experiment
// topology/run count (Pairs, Triples, APRuns, Meshes) for custom sweeps.
//
// -analytic skips the figure suite and screens the standard
// (scenario × load) grid through the analytic conflict-graph oracle
// (internal/analytic) in milliseconds, tagging the points that merit
// full simulation; -analytic-verify additionally simulates the whole
// grid to report the oracle's agreement and wall-clock advantage.
//
// -benchjson skips the figure suite, runs the node-count scaling
// benchmarks instead, and writes BENCH_<git-short-sha>.json (ns/op,
// B/op, allocs/op per benchmark) so the perf trajectory stays
// machine-readable across PRs.
//
// -cpuprofile/-memprofile write pprof profiles covering whatever the
// invocation runs (the figure suite or, with -benchjson, the scaling
// benchmarks), so a perf investigation starts from `go tool pprof`
// instead of guesswork; `make profile` is the canonical invocation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/experiments"
	"repro/internal/mac"
	"repro/internal/mobility"
	"repro/internal/phy"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// resolveArms validates the -arms flag against the MAC registry, so a
// typo is a CLI error listing every registered name rather than a panic
// mid-figure.
func resolveArms(s string) ([]experiments.Protocol, error) {
	return experiments.ParseArms(s)
}

// parseLoads parses the comma-separated -load list of Mb/s values.
func parseLoads(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		// !(v > 0) also rejects NaN, which v <= 0 would let through.
		if err != nil || !(v > 0) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("bad -load entry %q (want positive finite Mb/s values)", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	seed := flag.Uint64("seed", 1, "master seed (same seed → identical numbers)")
	scale := flag.String("scale", "mid", "quick | mid | paper")
	only := flag.String("only", "", "comma-separated subset: census,calibration,fig12,fig13,fig14,fig15,fig16,fig17,fig19,fig20,mesh,loadsweep,cssweep,staleness")
	armList := flag.String("arms", "", "override figure arm sets with registry names (e.g. csma,cmap,rtscts,cs@-82); \"list\" prints all arms")
	trafficKind := flag.String("traffic", "", "arrival model for every figure: saturated | cbr | poisson | onoff (default saturated)")
	loadList := flag.String("load", "0.5,1,2,4,8", "per-flow offered loads in Mb/s: the sweep uses the list, other figures the first value")
	parallel := flag.Int("parallel", 0, "worker goroutines per experiment (0 = all CPUs, 1 = serial)")
	trials := flag.Int("trials", 0, "override per-experiment trial counts (Pairs/Triples/APRuns/Meshes); 0 keeps the scale's defaults")
	progress := flag.Bool("progress", false, "report per-experiment trial progress on stderr")
	analyticScreen := flag.Bool("analytic", false, "screen the standard (scenario × load) grid through the analytic oracle and exit")
	analyticVerify := flag.Bool("analytic-verify", false, "with -analytic: also simulate the full grid and report agreement and speedup")
	benchJSON := flag.Bool("benchjson", false, "run the scaling benchmarks, write BENCH_<git-short-sha>.json, and exit")
	shards := flag.Int("shards", 0, "run every figure's simulations on the sharded engine with N shards (<=1 = serial)")
	mobilityFlag := flag.String("mobility", "", "move every figure's nodes: <model>@<speed m/s>[@roamM] with model waypoint|walk|vehicular (serial engine only)")
	resumeDir := flag.String("resume", "", "campaign directory: record section and load-sweep-point completion there and resume a killed run")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		// Report-and-continue on failure: os.Exit here would skip the
		// CPU-profile defers and truncate cpu.pprof too.
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise the steady-state live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	if *benchJSON {
		if err := writeBenchJSON(); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *armList == "list" {
		for _, name := range mac.Names() {
			fmt.Println(name)
		}
		return
	}

	var opt experiments.Options
	switch *scale {
	case "quick":
		opt = experiments.Quick(*seed)
	case "mid":
		opt = experiments.Defaults(*seed)
		opt.Duration = 30 * sim.Second
		opt.Warmup = 12 * sim.Second
		opt.Pairs = 30
		opt.Triples = 200
		opt.APRuns = 6
		opt.Meshes = 10
	case "paper":
		opt = experiments.Defaults(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	opt.Workers = *parallel
	opt.Shards = *shards
	if *mobilityFlag != "" {
		mob, err := mobility.ParseSpec(*mobilityFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if mob.Active() && *shards > 1 {
			fmt.Fprintln(os.Stderr, "-mobility needs the serial engine; drop -shards")
			os.Exit(2)
		}
		opt.Mobility = mob
	}
	if *trials > 0 {
		opt.Pairs = *trials
		opt.Triples = *trials
		opt.APRuns = *trials
		opt.Meshes = *trials
	}
	if *progress {
		opt.Progress = func(done, total int) {
			fmt.Fprintf(os.Stderr, "\r%d/%d trials", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	if *armList != "" {
		arms, err := resolveArms(*armList)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opt.Arms = arms
	}

	loads, err := parseLoads(*loadList)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *trafficKind != "" {
		kind, err := traffic.ParseKind(*trafficKind)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if kind != traffic.Saturated {
			// 1400-byte payloads: both MAC defaults. WithOfferedMbps makes
			// -load mean long-run offered load for duty-cycled kinds too.
			opt.Traffic = traffic.Spec{Kind: kind}.WithOfferedMbps(loads[0], 1400)
			fmt.Printf("traffic: %v arrivals at %.2f Mb/s offered per flow\n",
				kind, opt.Traffic.OfferedMbps(1400))
		}
	}

	if *analyticScreen {
		screenLoads := loads
		loadSet := false
		flag.Visit(func(f *flag.Flag) { loadSet = loadSet || f.Name == "load" })
		if !loadSet {
			// The screen is near-free, so default to a denser sweep than
			// the simulated figures use: 16 loads × the 7 standard
			// scenarios ≈ a 112-point grid.
			screenLoads = []float64{0.25, 0.5, 0.75, 1, 1.5, 2, 2.5, 3, 4, 5, 6, 7, 8, 10, 12, 16}
		}
		if err := runAnalyticScreen(opt, screenLoads, *analyticVerify); err != nil {
			fmt.Fprintf(os.Stderr, "analytic: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *resumeDir != "" {
		c, err := checkpoint.OpenCampaign(*resumeDir, checkpoint.ConfigHash(campaignCfg(opt, loads)))
		if err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			os.Exit(1)
		}
		camp = c
	}

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }

	fmt.Printf("cmapbench — CMAP (NSDI 2008) evaluation reproduction\n")
	fmt.Printf("seed=%d scale=%s duration=%v pairs=%d workers=%d\n\n",
		*seed, *scale, time.Duration(opt.Duration), opt.Pairs,
		runner.Config{Workers: opt.Workers}.EffectiveWorkers())
	if camp != nil {
		if n := len(camp.Keys()); n > 0 {
			fmt.Fprintf(os.Stderr, "campaign %s: %d recorded points, finished work replays from the manifest\n", camp.Dir(), n)
		}
	}

	tb := topo.NewTestbed(opt.Nodes, opt.Seed)

	if sel("census") {
		c := tb.Census()
		fmt.Printf("== §5.1 testbed census ==\n")
		fmt.Printf("connected ordered pairs: %d (paper: 2162)\n", c.ConnectedPairs)
		fmt.Printf("PRR<0.1: %.0f%% (paper 68%%)   0.1≤PRR<1: %.0f%% (paper 12%%)   PRR=1: %.0f%% (paper 20%%)\n",
			100*c.FracLow, 100*c.FracMid, 100*c.FracFull)
		fmt.Printf("degree over usable links: mean %.1f median %.1f (paper 15.2 / 17)\n\n", c.MeanDegree, c.MedianDegree)
	}

	if sel("calibration") {
		step("§4.2 single-link calibration", func() {
			cal := experiments.RunCalibration(tb, opt)
			fmt.Printf("CMAP %.2f Mb/s vs 802.11 %.2f Mb/s (paper: 5.04 vs 5.07)\n",
				cal.CMAPMbps, cal.Dot11Mbps)
		})
	}

	var fig13, fig15 *experiments.PairExperiment

	if sel("fig12") {
		step("Figure 12 — exposed terminals", func() {
			ex := experiments.ExposedTerminals(tb, opt)
			fmt.Print(ex.Format())
			if ex.Ran(experiments.CMAP, experiments.CMAPWin1, experiments.CSMAOn) {
				fmt.Printf("median gain CMAP/CS = %.2fx (paper ≈2x); CMAP win=1 / CS = %.2fx (paper ≈1.5x)\n",
					ex.Gain(experiments.CMAP, experiments.CSMAOn),
					ex.Gain(experiments.CMAPWin1, experiments.CSMAOn))
			}
		})
	}

	if sel("fig13") || sel("fig16") {
		step("Figure 13 — senders in range", func() {
			fig13 = experiments.InRangeSenders(tb, opt)
			fmt.Print(fig13.Format())
		})
	}

	if sel("fig14") {
		step("Figure 14 / §5.4 — hidden interferers", func() {
			res := experiments.HiddenInterferers(tb, opt)
			fmt.Printf("%d (S,R,I) triples; bottom-left-quadrant fraction = %.3f (paper 0.08)\n",
				len(res.Points), res.HiddenFrac)
			fmt.Printf("expected CMAP normalised throughput = %.3f (paper 0.896)\n", res.ExpectedCMAP)
		})
	}

	if sel("fig15") || sel("fig16") {
		step("Figure 15 — hidden terminals", func() {
			fig15 = experiments.HiddenTerminals(tb, opt)
			fmt.Print(fig15.Format())
		})
	}

	if sel("fig16") && fig13 != nil && fig15 != nil {
		if fig13.Ran(experiments.CMAP) && fig15.Ran(experiments.CMAP) {
			step("Figure 16 — header/trailer salvage", func() {
				fmt.Print(experiments.HeaderTrailer(fig13, fig15).Format())
			})
		} else {
			fmt.Println("(fig16 skipped: needs the cmap arm in figures 13 and 15; add cmap to -arms)")
		}
	}

	if sel("fig17") {
		step("Figures 17+18 — access-point topology", func() {
			res := experiments.AccessPoint(tb, opt)
			fmt.Print(res.Format())
			for _, n := range res.Ns {
				cs, cm := res.Mean[experiments.CSMAOn][n], res.Mean[experiments.CMAP][n]
				if cs > 0 && cm > 0 {
					fmt.Printf("N=%d aggregate gain CMAP/CS = %.2fx (paper 1.21–1.47x)\n", n, cm/cs)
				}
			}
			if csd, cmd := res.PerSender[experiments.CSMAOn], res.PerSender[experiments.CMAP]; csd != nil && cmd != nil && csd.Median() > 0 {
				fmt.Printf("per-sender median gain = %.2fx (paper 1.8x)\n", cmd.Median()/csd.Median())
			}
		})
	}

	if sel("fig19") {
		step("Figure 19 — header/trailer vs concurrent senders", func() {
			fmt.Printf("%3s %8s %8s %8s %8s %8s %8s\n", "k", "mean", "p10", "p25", "median", "p75", "p90")
			for _, p := range experiments.HeaderTrailerVsSenders(tb, opt) {
				fmt.Printf("%3d %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
					p.Senders, p.Mean, p.P10, p.P25, p.Median, p.P75, p.P90)
			}
			fmt.Println("(paper: median ≈flat, 10th percentile drops sharply)")
		})
	}

	if sel("fig20") {
		step("Figure 20 — variable bit-rates", func() {
			for _, rs := range experiments.VariableBitRates(tb, opt) {
				if !rs.Ex.Ran(experiments.CSMAOn, experiments.CMAP) {
					fmt.Print(rs.Ex.Format())
					continue
				}
				fmt.Printf("@%g Mb/s: CS median %.2f, CMAP median %.2f → %.2fx\n",
					phy.RateByID(rs.Rate).Mbps,
					rs.Ex.Median(experiments.CSMAOn), rs.Ex.Median(experiments.CMAP),
					rs.Ex.Gain(experiments.CMAP, experiments.CSMAOn))
			}
			fmt.Println("(paper: CMAP keeps winning at 12 and 18 Mb/s)")
		})
	}

	if sel("mesh") {
		step("§5.7 — content-dissemination mesh", func() {
			if opt.Traffic.Kind != traffic.Saturated {
				// The mesh runs the paper's phase-controlled batch
				// dissemination, not per-flow arrival processes; say so
				// rather than mislabel saturated numbers as unsaturated.
				fmt.Println("(note: -traffic does not apply to the §5.7 batch workload; mesh runs saturated batches)")
			}
			meshOpt := opt
			meshOpt.Traffic = traffic.Saturate()
			res := experiments.Mesh(tb, meshOpt)
			fmt.Printf("CMAP %.2f Mb/s vs CSMA %.2f Mb/s → gain %.2fx (paper 1.52x)\n",
				res.CMAP.Mean(), res.CSMA.Mean(), res.Gain())
		})
	}

	if sel("cssweep") {
		step("CS-threshold sweep — goodput vs carrier-sense threshold (beyond the paper)", func() {
			res := experiments.CSThresholdSweep(tb, opt, nil)
			fmt.Print(res.Format())
		})
	}

	if sel("staleness") {
		step("Staleness sweep — goodput vs node speed (beyond the paper)", func() {
			res := experiments.StalenessSweep(tb, opt, nil)
			fmt.Print(res.Format())
		})
	}

	if sel("loadsweep") {
		step("Load sweep — goodput/latency vs offered load (beyond the paper)", func() {
			// Under -resume the sweep additionally records every
			// (topology × arm × load × pair) trial in the campaign
			// manifest as it completes, so a kill mid-sweep loses at most
			// one trial rather than the whole figure.
			for _, class := range []string{"exposed", "hidden"} {
				sweep, err := experiments.OfferedLoadCampaign(tb, class, loads, opt, camp)
				if err != nil {
					fmt.Fprintf(os.Stderr, "loadsweep: %v\n", err)
					os.Exit(1)
				}
				fmt.Print(sweep.Format())
			}
			fmt.Println("(expected: goodput tracks load below saturation; past the knee CMAP" +
				" out-delivers carrier sense on exposed pairs and matches it on hidden ones)")
		})
	}
}

// camp is the open campaign of a -resume run (nil otherwise). Sections
// record their rendered output under "section/<title>" when they
// finish; a resumed run replays recorded sections from the manifest and
// re-runs only the rest.
var camp *checkpoint.Campaign

// campaignConfig is the subset of the configuration that determines
// results — what the campaign's config hash covers. Workers and
// Progress are deliberately absent (results are bit-identical at every
// worker count), and the -only selection is absent too: completion is
// recorded per section, so a resumed run may narrow or widen the
// selection.
type campaignConfig struct {
	Seed                           uint64
	Nodes                          int
	Duration, Warmup               sim.Time
	Pairs, Triples, APRuns, Meshes int
	Rate                           phy.RateID
	Traffic                        traffic.Spec
	Arms                           []experiments.Protocol
	Shards                         int
	Mobility                       mobility.Spec
	Loads                          []float64
}

func campaignCfg(opt experiments.Options, loads []float64) campaignConfig {
	return campaignConfig{
		Seed:     opt.Seed,
		Nodes:    opt.Nodes,
		Duration: opt.Duration,
		Warmup:   opt.Warmup,
		Pairs:    opt.Pairs,
		Triples:  opt.Triples,
		APRuns:   opt.APRuns,
		Meshes:   opt.Meshes,
		Rate:     opt.Rate,
		Traffic:  opt.Traffic,
		Arms:     opt.Arms,
		Shards:   opt.Shards,
		Mobility: opt.Mobility,
		Loads:    loads,
	}
}

// captureStdout runs fn with os.Stdout teed into a buffer and returns
// what it printed (also forwarding it to the real stdout), so a
// finished section's rendering can be recorded verbatim in the
// campaign manifest.
func captureStdout(fn func()) string {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		fn() // uncachable, but the run itself must not die for it
		return ""
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	func() {
		defer func() {
			os.Stdout = old
			w.Close()
		}()
		fn()
	}()
	out := <-done
	r.Close()
	fmt.Print(out)
	return out
}

// runAnalyticScreen is the -analytic mode: evaluate the standard
// (scenario × load) grid through the conflict-graph oracle, print the
// screen, and — with -analytic-verify — simulate the identical grid to
// measure the oracle's agreement and wall-clock advantage.
func runAnalyticScreen(opt experiments.Options, loads []float64, verify bool) error {
	scens := experiments.StandardScreenScenarios(opt.Seed)
	fmt.Printf("== analytic screen — %d scenarios × %d loads ==\n", len(scens), len(loads))
	screen, err := experiments.AnalyticScreen(scens, loads, opt)
	if err != nil {
		return err
	}
	fmt.Print(screen.Format())
	if !verify {
		return nil
	}

	fmt.Printf("\nsimulating the same %d-point grid (duration %v per point per arm)...\n",
		len(screen.Points), time.Duration(opt.Duration))
	simulated, simElapsed, err := experiments.SimulateScreenGrid(scens, loads, opt)
	if err != nil {
		return err
	}
	type cell struct {
		pred func(p experiments.ScreenPoint) float64
		arm  experiments.Protocol
	}
	cells := []cell{
		{func(p experiments.ScreenPoint) float64 { return p.PredCSMA }, experiments.CSMAOn},
		{func(p experiments.ScreenPoint) float64 { return p.PredCMAP }, experiments.CMAP},
	}
	var flaggedErr, clearErr, worst float64
	var flaggedN, clearN int
	var worstAt string
	for _, p := range screen.Points {
		for _, c := range cells {
			sim := simulated[p.Scenario][p.LoadMbps][c.arm]
			if sim <= 0 {
				continue
			}
			rel := math.Abs(c.pred(p)-sim) / sim
			if p.Simulate {
				flaggedErr += rel
				flaggedN++
			} else {
				clearErr += rel
				clearN++
			}
			if rel > worst {
				worst = rel
				worstAt = fmt.Sprintf("%s load=%.2g %v", p.Scenario, p.LoadMbps, c.arm)
			}
		}
	}
	if clearN > 0 {
		fmt.Printf("screen-decided points: mean |rel err| = %.1f%% over %d arm-points\n",
			100*clearErr/float64(clearN), clearN)
	}
	if flaggedN > 0 {
		fmt.Printf("flagged points:        mean |rel err| = %.1f%% over %d arm-points (that is why they are flagged)\n",
			100*flaggedErr/float64(flaggedN), flaggedN)
	}
	fmt.Printf("worst point: %s (%.1f%%)\n", worstAt, 100*worst)
	speedup := float64(simElapsed) / float64(screen.Elapsed)
	fmt.Printf("wall clock: screen %v vs simulation %v → %.0f× faster\n",
		screen.Elapsed.Round(time.Millisecond), simElapsed.Round(time.Millisecond), speedup)
	return nil
}

// step runs one benchmark section. Under -resume, a section that
// already finished in a prior run replays its recorded text from the
// campaign manifest instead of re-simulating, and a section that
// completes now is recorded for the next restart. The loadsweep section
// is additionally resumable at trial granularity inside the section.
func step(title string, fn func()) {
	fmt.Printf("== %s ==\n", title)
	t0 := time.Now()
	if camp != nil {
		key := "section/" + title
		if raw, ok := camp.Done(key); ok {
			var text string
			if err := json.Unmarshal(raw, &text); err == nil {
				fmt.Print(text)
				fmt.Printf("[cached]\n\n")
				return
			}
		}
		text := captureStdout(fn)
		if err := camp.Complete(key, text); err != nil {
			fmt.Fprintf(os.Stderr, "campaign: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[%.1fs]\n\n", time.Since(t0).Seconds())
		return
	}
	fn()
	fmt.Printf("[%.1fs]\n\n", time.Since(t0).Seconds())
}

// benchRecord is one benchmark's result in the JSON trajectory file.
type benchRecord struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_op"`
	BytesPerOp  int64   `json:"b_op"`
	AllocsPerOp int64   `json:"allocs_op"`
}

// benchFile is the BENCH_<sha>.json schema.
type benchFile struct {
	Commit     string        `json:"commit"`
	GoVersion  string        `json:"go_version"`
	NumCPU     int           `json:"num_cpu"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

// gitShortSHA resolves the current commit, falling back to the binary's
// embedded VCS stamp and then to "dev" outside any repository.
func gitShortSHA() string {
	if out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
		if sha := strings.TrimSpace(string(out)); sha != "" {
			return sha
		}
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 7 {
				return s.Value[:7]
			}
		}
	}
	return "dev"
}

// writeBenchJSON runs the scaling suite through testing.Benchmark and
// writes the machine-readable trajectory file.
func writeBenchJSON() error {
	out := benchFile{
		Commit:    gitShortSHA(),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
	}
	for _, sb := range experiments.ScaleBenchmarks() {
		fmt.Fprintf(os.Stderr, "bench %s...\n", sb.Name)
		r := testing.Benchmark(sb.Run)
		out.Benchmarks = append(out.Benchmarks, benchRecord{
			Name:        sb.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	path := fmt.Sprintf("BENCH_%s.json", out.Commit)
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(out.Benchmarks))
	return nil
}
