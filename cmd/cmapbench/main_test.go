package main

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

// The -arms flag is the registry seam of the figure suite: a typo must
// surface as a CLI error that lists the registered names, never as a
// panic inside a half-finished figure.
func TestResolveArmsUnknown(t *testing.T) {
	_, err := resolveArms("csma,bogus")
	if err == nil {
		t.Fatal("resolveArms accepted an unregistered arm")
	}
	if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error %q does not name the bad arm", err)
	}
	if !strings.Contains(err.Error(), "csma") {
		t.Errorf("error %q does not list the registered arms", err)
	}
}

func TestResolveArmsEmpty(t *testing.T) {
	if _, err := resolveArms(" , "); err == nil {
		t.Fatal("resolveArms accepted a list with no arms")
	}
}

func TestResolveArmsKeepsOrder(t *testing.T) {
	arms, err := resolveArms("rtscts, csma ,cs@-82")
	if err != nil {
		t.Fatalf("resolveArms: %v", err)
	}
	want := []experiments.Protocol{"rtscts", "csma", "cs@-82"}
	if len(arms) != len(want) {
		t.Fatalf("resolveArms returned %v, want %v", arms, want)
	}
	for i := range want {
		if arms[i] != want[i] {
			t.Errorf("arm %d = %q, want %q", i, arms[i], want[i])
		}
	}
}
