// apnetwork: the paper's §5.6 motivating workload — a multi-cell wireless
// LAN where clients of adjacent access points are frequently exposed
// terminals with respect to one another.
//
// The example generates the calibrated 50-node testbed, carves it into
// access-point regions, runs one saturated flow per cell (random
// direction, as in the paper), and compares 802.11 against CMAP.
package main

import (
	"fmt"
	"time"

	cmap "repro"
)

const (
	cells    = 4
	duration = 20 * time.Second
	warmup   = 8 * time.Second
	seed     = 7
)

type flow struct{ src, dst int }

func pickFlows() []flow {
	// Use the testbed's AP partition; deterministically alternate
	// directions (AP→client, client→AP).
	nw := cmap.NewTestbedNetwork(50, seed)
	tb := nw.Testbed()
	var flows []flow
	for i, cell := range tb.APRegions() {
		if i == cells {
			break
		}
		client := cell.Clients[i%len(cell.Clients)]
		if i%2 == 0 {
			flows = append(flows, flow{src: cell.AP, dst: client})
		} else {
			flows = append(flows, flow{src: client, dst: cell.AP})
		}
	}
	return flows
}

func run(name string, flows []flow, attach func(nw *cmap.Network, id int) *cmap.Station) float64 {
	nw := cmap.NewTestbedNetwork(50, seed)
	var rxs []*cmap.Station
	for _, f := range flows {
		tx := attach(nw, f.src)
		rx := attach(nw, f.dst)
		rx.Measure(warmup, duration)
		tx.Saturate(f.dst)
		rxs = append(rxs, rx)
	}
	nw.Run(duration)
	var agg float64
	fmt.Printf("%-18s", name)
	for i, rx := range rxs {
		fmt.Printf("  cell%d %5.2f", i, rx.GoodputMbps())
		agg += rx.GoodputMbps()
	}
	fmt.Printf("  | aggregate %5.2f Mb/s\n", agg)
	return agg
}

func main() {
	flows := pickFlows()
	fmt.Printf("WLAN with %d access-point cells, one saturated flow each:\n", len(flows))
	for i, f := range flows {
		fmt.Printf("  cell%d: node %d → node %d\n", i, f.src, f.dst)
	}
	fmt.Println()
	dcf := run("802.11 (CS, acks)", flows, func(nw *cmap.Network, id int) *cmap.Station {
		return nw.AddDCF(id)
	})
	cm := run("CMAP", flows, func(nw *cmap.Network, id int) *cmap.Station {
		return nw.AddCMAP(id)
	})
	fmt.Printf("\naggregate gain: %.2fx (the paper's Figure 17 reports 1.21–1.47x)\n", cm/dcf)
}
