// meshcast: the paper's §5.7 two-hop content-dissemination mesh.
//
// A source broadcasts batches of packets to three relays; the relays then
// forward concurrently, each to its own leaf. The relays hear one another
// (so 802.11 serialises them) but their leaves are spatially separated —
// the forwarding phase is a set of exposed terminals, which CMAP exploits.
package main

import (
	"fmt"
	"time"

	cmap "repro"
)

const (
	seed     = 3
	batch    = 320
	duration = 24 * time.Second
	warmup   = 8 * time.Second
)

func run(name string, useCMAP bool) float64 {
	nw := cmap.NewTestbedNetwork(50, seed)
	tb := nw.Testbed()
	meshes := tb.MeshTopologies(nw.Rand(0xbeef), 1, 3)
	if len(meshes) == 0 {
		panic("no mesh topology available")
	}
	msh := meshes[0]

	attach := func(id int) *cmap.Station {
		if useCMAP {
			return nw.AddCMAP(id)
		}
		return nw.AddDCF(id)
	}
	src := attach(msh.Source)
	relays := make([]*cmap.Station, 3)
	leaves := make([]*cmap.Station, 3)
	pending := make([]int, 3)
	for i := range msh.Relays {
		i := i
		relays[i] = attach(msh.Relays[i])
		leaves[i] = attach(msh.Leaves[i])
		leaves[i].Measure(warmup, duration)
		relays[i].OnDeliver(func(from int, _ uint32, _ time.Duration) {
			if from == msh.Source {
				pending[i]++
			}
		})
	}

	// Source broadcasts in batches; relays forward between batches.
	if useCMAP {
		src.BroadcastTo(msh.Relays, false, batch)
	} else {
		src.Send(cmap.Broadcast, batch)
	}
	srcPhase := true
	deadline := time.Duration(0)
	for deadline < duration {
		deadline += 20 * time.Millisecond
		nw.Run(20 * time.Millisecond)
		if srcPhase && src.Idle() {
			srcPhase = false
			for i := range relays {
				if pending[i] > 0 {
					relays[i].Send(msh.Leaves[i], pending[i])
					pending[i] = 0
				}
			}
		} else if !srcPhase {
			done := true
			for _, r := range relays {
				if !r.Idle() {
					done = false
					break
				}
			}
			if done {
				srcPhase = true
				src.Send(cmap.Broadcast, batch)
			}
		}
	}

	var agg float64
	fmt.Printf("%-18s", name)
	for i, leaf := range leaves {
		fmt.Printf("  B%d %5.2f", i, leaf.GoodputMbps())
		agg += leaf.GoodputMbps()
	}
	fmt.Printf("  | aggregate %5.2f Mb/s\n", agg)
	return agg
}

func main() {
	fmt.Println("Two-hop content dissemination (Figure 11d), batched phases:")
	dcf := run("802.11 (CS, acks)", false)
	cm := run("CMAP", true)
	fmt.Printf("\naggregate gain: %.2fx (the paper reports 1.52x)\n", cm/dcf)
}
