// Quickstart: the paper's Figure 1 in forty lines.
//
// Two flows S→R and ES→ER form an exposed-terminal pair: the senders hear
// each other, but each receiver is far enough from the other sender that
// both transmissions succeed concurrently. 802.11's carrier sense makes
// the senders take turns; CMAP learns there is no conflict and lets them
// overlap, doubling aggregate throughput.
package main

import (
	"fmt"
	"time"

	cmap "repro"
)

// Loss matrix in dB between S(0), R(1), ES(2), ER(3): senders hear each
// other (75 dB ≈ -65 dBm), each sender→own-receiver link is strong
// (68 dB), and the cross links are below the radios' sensitivity.
var figure1 = [][]float64{
	{0, 68, 75, 108},
	{68, 0, 108, 300},
	{75, 108, 0, 68},
	{108, 300, 68, 0},
}

func run(name string, attach func(nw *cmap.Network, id int) *cmap.Station) float64 {
	nw := cmap.NewLossNetwork(figure1, 42)
	s := attach(nw, 0)
	r := attach(nw, 1)
	es := attach(nw, 2)
	er := attach(nw, 3)

	r.Measure(4*time.Second, 12*time.Second)
	er.Measure(4*time.Second, 12*time.Second)
	s.Saturate(1)
	es.Saturate(3)
	nw.Run(12 * time.Second)

	agg := r.GoodputMbps() + er.GoodputMbps()
	fmt.Printf("%-18s S→R %5.2f Mb/s   ES→ER %5.2f Mb/s   aggregate %5.2f Mb/s\n",
		name, r.GoodputMbps(), er.GoodputMbps(), agg)
	return agg
}

func main() {
	fmt.Println("Exposed terminals (Figure 1), saturated 1400-byte flows at 6 Mb/s:")
	dcf := run("802.11 (CS, acks)", func(nw *cmap.Network, id int) *cmap.Station {
		return nw.AddDCF(id)
	})
	cm := run("CMAP", func(nw *cmap.Network, id int) *cmap.Station {
		return nw.AddCMAP(id)
	})
	fmt.Printf("\nCMAP/802.11 gain: %.2fx (the paper's Figure 12 reports ≈2x)\n", cm/dcf)
}
