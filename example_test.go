package cmap_test

import (
	"fmt"
	"time"

	cmap "repro"
)

// Example reproduces the paper's Figure 1 in miniature: two exposed
// flows that 802.11 would serialise run concurrently under CMAP.
func Example() {
	nw := cmap.NewLossNetwork([][]float64{
		{0, 68, 75, 108},
		{68, 0, 108, 300},
		{75, 108, 0, 68},
		{108, 300, 68, 0},
	}, 1)

	s := nw.AddCMAP(0)
	r := nw.AddCMAP(1)
	es := nw.AddCMAP(2)
	er := nw.AddCMAP(3)

	r.Measure(4*time.Second, 12*time.Second)
	er.Measure(4*time.Second, 12*time.Second)
	s.Saturate(1)
	es.Saturate(3)
	nw.Run(12 * time.Second)

	agg := r.GoodputMbps() + er.GoodputMbps()
	fmt.Printf("concurrent flows: %v, aggregate ≈ 2x single link: %v\n",
		s.Stats().Defers == 0 && es.Stats().Defers == 0, agg > 9)
	// Output: concurrent flows: true, aggregate ≈ 2x single link: true
}

// ExampleNetwork_testbed drives one flow over the generated 50-node
// testbed using its link measurements to pick a good link.
func ExampleNetwork_testbed() {
	nw := cmap.NewTestbedNetwork(50, 1)
	tb := nw.Testbed()

	// Pick any potential transmission link (§5.1): PRR > 0.9 both ways.
	var src, dst int
	for a := 0; a < tb.N && src == dst; a++ {
		for b := 0; b < tb.N; b++ {
			if tb.PotentialLink(a, b) {
				src, dst = a, b
				break
			}
		}
	}
	tx := nw.AddCMAP(src)
	rx := nw.AddCMAP(dst)
	rx.Measure(2*time.Second, 6*time.Second)
	tx.Saturate(dst)
	nw.Run(6 * time.Second)
	fmt.Printf("goodput within 10%% of link capacity: %v\n", rx.GoodputMbps() > 4.5)
	// Output: goodput within 10% of link capacity: true
}
