// Package cmap is a Go implementation of CMAP (Conflict Maps), the
// reactive wireless link layer of "Harnessing Exposed Terminals in
// Wireless Networks" (Vutukuru, Jamieson, Balakrishnan — NSDI 2008),
// together with everything needed to run it: an 802.11a PHY/medium
// simulator with SINR-based reception and capture, the 802.11 DCF
// baseline the paper compares against, a calibrated 50-node indoor
// testbed generator, and the paper's full evaluation harness.
//
// The public API builds wireless networks and attaches stations:
//
//	nw := cmap.NewTestbedNetwork(50, 1)
//	tx := nw.AddCMAP(3)
//	rx := nw.AddCMAP(9)
//	rx.Measure(4*time.Second, 10*time.Second)
//	tx.Saturate(9)
//	nw.Run(10 * time.Second)
//	fmt.Printf("%.2f Mb/s\n", rx.GoodputMbps())
//
// Stations speak either CMAP (AddCMAP) or the 802.11 DCF baseline
// (AddDCF), with options to disable carrier sense or link ACKs, change
// bit-rate, or resize CMAP's virtual packets and send window — the knobs
// the paper's evaluation turns.
//
// The paper's full evaluation lives in internal/experiments; its trials
// fan out across a worker pool (internal/runner) with hierarchically
// derived seeds, so experiment results are bit-identical at every
// worker count. See README.md for the figure suite and the -parallel /
// -trials flags of cmd/cmapbench and cmd/cmapsim.
package cmap

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/csma"
	"repro/internal/frame"
	"repro/internal/geo"
	"repro/internal/medium"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Broadcast addresses a transmission to every station in range.
const Broadcast = csma.BroadcastDst

// Point is a node position on the floor plan, in metres.
type Point struct{ X, Y float64 }

// Network is a simulated radio environment plus the stations attached to
// it. Create one with NewNetwork, NewTestbedNetwork or NewLossNetwork,
// attach stations, inject traffic, then Run.
type Network struct {
	sched    *sim.Scheduler
	med      *medium.Medium
	rng      *sim.RNG
	tb       *topo.Testbed
	stations map[int]*Station
}

// NewNetwork builds a network over explicit node positions using the
// calibrated indoor propagation model. seed drives both the channel's
// shadowing and all protocol randomness.
func NewNetwork(positions []Point, seed uint64) *Network {
	pts := make([]geo.Point, len(positions))
	for i, p := range positions {
		pts[i] = geo.Point{X: p.X, Y: p.Y}
	}
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	med := medium.New(sched, phy.DefaultParams(), radio.DefaultIndoor5GHz(seed), pts, rng.Stream(1))
	return &Network{sched: sched, med: med, rng: rng, stations: map[int]*Station{}}
}

// NewTestbedNetwork generates the paper-calibrated n-node office testbed
// (§5.1) and builds a network over it. Testbed link measurements are
// available through Testbed.
func NewTestbedNetwork(n int, seed uint64) *Network {
	tb := topo.NewTestbed(n, seed)
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	return &Network{
		sched:    sched,
		med:      tb.Build(sched, rng.Stream(1)),
		rng:      rng,
		tb:       tb,
		stations: map[int]*Station{},
	}
}

// NewLossNetwork builds a network from an explicit pairwise path-loss
// matrix in dB — exact control over who hears whom, for controlled
// experiments (the Figure 1 style topologies).
func NewLossNetwork(lossDB [][]float64, seed uint64) *Network {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	med := medium.New(sched, phy.DefaultParams(), &radio.Matrix{LossDB: lossDB},
		make([]geo.Point, len(lossDB)), rng.Stream(1))
	return &Network{sched: sched, med: med, rng: rng, stations: map[int]*Station{}}
}

// NodeCount returns the number of radio positions in the network.
func (nw *Network) NodeCount() int { return nw.med.NodeCount() }

// Testbed exposes the generated testbed's link measurements (nil for
// networks not built by NewTestbedNetwork).
func (nw *Network) Testbed() *topo.Testbed { return nw.tb }

// Run advances virtual time by d.
func (nw *Network) Run(d time.Duration) {
	nw.sched.Run(nw.sched.Now() + sim.Duration(d))
}

// Now returns the current virtual time.
func (nw *Network) Now() time.Duration { return time.Duration(nw.sched.Now()) }

// RxPowerDBm reports the received power of from's transmissions at to.
func (nw *Network) RxPowerDBm(from, to int) float64 { return nw.med.RxPowerDBm(from, to) }

// Rand derives a deterministic random stream from the network seed, for
// the testbed's topology-sampling helpers.
func (nw *Network) Rand(label uint64) *sim.RNG { return nw.rng.Stream(label) }

// Option configures a station at attach time.
type Option func(*stationConfig)

type stationConfig struct {
	rate         phy.RateID
	payload      int
	carrierSense bool
	linkACKs     bool
	nvpkt        int
	nwindow      int
	perDest      bool
}

// WithRate selects the data bit-rate in Mb/s (6, 9, 12, 18, 24, 36, 48 or
// 54). Invalid values panic.
func WithRate(mbps float64) Option {
	return func(c *stationConfig) {
		for _, r := range phy.Rates() {
			if r.Mbps == mbps {
				c.rate = r.ID
				return
			}
		}
		panic(fmt.Sprintf("cmap: no 802.11a rate %v Mb/s", mbps))
	}
}

// WithPayload sets the application payload per packet in bytes.
func WithPayload(bytes int) Option {
	return func(c *stationConfig) { c.payload = bytes }
}

// WithCarrierSense toggles physical carrier sense (DCF stations only).
func WithCarrierSense(on bool) Option {
	return func(c *stationConfig) { c.carrierSense = on }
}

// WithLinkACKs toggles link-layer ACKs and retransmission (DCF stations
// only).
func WithLinkACKs(on bool) Option {
	return func(c *stationConfig) { c.linkACKs = on }
}

// WithVirtualPacket sets CMAP's data packets per virtual packet (§4.1,
// default 32).
func WithVirtualPacket(n int) Option {
	return func(c *stationConfig) { c.nvpkt = n }
}

// WithWindow sets CMAP's send window in virtual packets (§3.3, default 8).
func WithWindow(n int) Option {
	return func(c *stationConfig) { c.nwindow = n }
}

// WithPerDestQueues enables the §3.2 optimisation on a CMAP station:
// per-destination queues scheduled round-robin, so a conflicted
// destination does not head-of-line block the others. Send may then be
// called with multiple destinations.
func WithPerDestQueues() Option {
	return func(c *stationConfig) { c.perDest = true }
}

// Station is one attached node speaking either CMAP or 802.11 DCF.
type Station struct {
	nw    *Network
	id    int
	cm    *core.Node
	dcf   *csma.Node
	meter *stats.Meter
}

func (nw *Network) newConfig() stationConfig {
	return stationConfig{
		rate:         phy.Rate6Mbps,
		payload:      1400,
		carrierSense: true,
		linkACKs:     true,
		nvpkt:        0,
		nwindow:      0,
	}
}

// AddCMAP attaches a CMAP station to node id.
func (nw *Network) AddCMAP(id int, opts ...Option) *Station {
	nw.checkID(id)
	c := nw.newConfig()
	for _, o := range opts {
		o(&c)
	}
	cfg := core.DefaultConfig()
	cfg.Rate = c.rate
	cfg.PayloadBytes = c.payload
	if c.nvpkt > 0 {
		cfg.Nvpkt = c.nvpkt
	}
	if c.nwindow > 0 {
		cfg.Nwindow = c.nwindow
	}
	cfg.PerDestQueues = c.perDest
	st := &Station{nw: nw, id: id, cm: core.New(id, cfg, nw.med, nw.rng.Stream(uint64(0xA000+id)))}
	nw.stations[id] = st
	return st
}

// AddDCF attaches an 802.11 DCF baseline station to node id.
func (nw *Network) AddDCF(id int, opts ...Option) *Station {
	nw.checkID(id)
	c := nw.newConfig()
	for _, o := range opts {
		o(&c)
	}
	cfg := csma.DefaultConfig()
	cfg.Rate = c.rate
	cfg.PayloadBytes = c.payload
	cfg.CarrierSense = c.carrierSense
	cfg.LinkACKs = c.linkACKs
	st := &Station{nw: nw, id: id, dcf: csma.New(id, cfg, nw.med, nw.rng.Stream(uint64(0xA000+id)))}
	nw.stations[id] = st
	return st
}

func (nw *Network) checkID(id int) {
	if id < 0 || id >= nw.med.NodeCount() {
		panic(fmt.Sprintf("cmap: node %d outside network of %d nodes", id, nw.med.NodeCount()))
	}
	if _, dup := nw.stations[id]; dup {
		panic(fmt.Sprintf("cmap: node %d already has a station", id))
	}
}

// Station returns the station attached to id, or nil.
func (nw *Network) Station(id int) *Station { return nw.stations[id] }

// ID returns the node index this station occupies.
func (s *Station) ID() int { return s.id }

// Saturate makes the station a backlogged source towards dst (or
// Broadcast for a CMAP/DCF broadcast flow to everyone in range).
func (s *Station) Saturate(dst int) {
	switch {
	case s.cm != nil && dst == Broadcast:
		s.cm.SetBroadcast(s.broadcastTargets(), true, 0)
	case s.cm != nil:
		s.cm.SetSaturated(dst)
	default:
		s.dcf.SetSaturated(dst)
	}
}

// Send queues count packets towards dst. For a CMAP station already in
// broadcast mode (after BroadcastTo), Send(Broadcast, n) queues the next
// dissemination batch.
func (s *Station) Send(dst int, count int) {
	switch {
	case s.cm != nil && dst == Broadcast:
		s.cm.EnqueueBroadcast(count)
	case s.cm != nil:
		s.cm.Enqueue(dst, count)
	default:
		s.dcf.Enqueue(dst, count)
	}
}

// BroadcastTo starts a CMAP broadcast flow towards the given targets
// (§3.6): count queued packets, or a saturated flow when saturated is
// true. DCF stations broadcast with Saturate(Broadcast)/Send(Broadcast,n).
func (s *Station) BroadcastTo(targets []int, saturated bool, count int) {
	if s.cm == nil {
		panic("cmap: BroadcastTo requires a CMAP station")
	}
	s.cm.SetBroadcast(targets, saturated, count)
}

// broadcastTargets defaults to every other attached station.
func (s *Station) broadcastTargets() []int {
	var out []int
	for id := range s.nw.stations {
		if id != s.id {
			out = append(out, id)
		}
	}
	return out
}

// Measure arms the goodput meter over the virtual-time window
// [start, end] — the paper measures [40 s, 100 s] of 100-second runs.
func (s *Station) Measure(start, end time.Duration) {
	s.meter = &stats.Meter{Start: sim.Duration(start), End: sim.Duration(end)}
	if s.cm != nil {
		s.cm.Meter = s.meter
	} else {
		s.dcf.Meter = s.meter
	}
}

// GoodputMbps returns the measured goodput; zero before Measure.
func (s *Station) GoodputMbps() float64 {
	if s.meter == nil {
		return 0
	}
	return s.meter.Mbps()
}

// OnDeliver registers a callback for every non-duplicate packet this
// station receives (used to chain forwarding, as in the §5.7 mesh).
func (s *Station) OnDeliver(fn func(src int, seq uint32, at time.Duration)) {
	wrap := func(src int, seq uint32, now sim.Time) { fn(src, seq, time.Duration(now)) }
	if s.cm != nil {
		s.cm.OnDeliver = core.DeliverFunc(wrap)
	} else {
		s.dcf.OnDeliver = csma.DeliverFunc(wrap)
	}
}

// Idle reports whether the station's sender has drained all queued and
// unacknowledged traffic (always false for saturated senders).
func (s *Station) Idle() bool {
	if s.cm != nil {
		return s.cm.Idle()
	}
	return s.dcf.Idle()
}

// Stats is the protocol-agnostic subset of station counters.
type Stats struct {
	Delivered  uint64 // non-duplicate packets received for this station
	Duplicates uint64
	// CMAP-only counters (zero on DCF stations).
	VirtualPacketsSent uint64
	Defers             uint64 // conflict-map deferrals
	DeferTableEntries  int
	InterfererEntries  int
}

// Stats snapshots the station's counters.
func (s *Station) Stats() Stats {
	if s.cm != nil {
		st := s.cm.Stats()
		return Stats{
			Delivered:          st.Delivered,
			Duplicates:         st.Duplicates,
			VirtualPacketsSent: st.VpktsSent,
			Defers:             st.Defers,
			DeferTableEntries:  s.cm.DeferTableSize(),
			InterfererEntries:  s.cm.InterfererListLen(),
		}
	}
	st := s.dcf.Stats()
	return Stats{Delivered: st.Delivered, Duplicates: st.Duplicates}
}

// Addr returns the station's link-layer address.
func (s *Station) Addr() frame.Addr { return frame.AddrFromID(s.id) }
