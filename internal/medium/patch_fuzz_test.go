package medium

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
)

// FuzzDeliveryPatch drives random move sequences — zero-length moves,
// cell-boundary crossings, and far out-of-arena jumps — through
// MoveNode and checks after every move that the patched delivery lists
// are bit-identical to both the sparse grid build and the dense O(n²)
// reference over the current positions.
func FuzzDeliveryPatch(f *testing.F) {
	f.Add([]byte{6, 10, 20, 60, 90, 120, 5, 40, 80, 15, 33, 77, 0, 1, 0, 0, 1, 0, 120, 120, 2, 1, 9})
	f.Add([]byte("delivery-patch-seed: shuffle everyone around"))
	f.Add([]byte{4, 0, 0, 50, 0, 0, 50, 50, 50, 0, 0, 0, 0, 1, 1, 255, 255, 2, 0, 128, 3, 64, 64})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		n := 4 + int(data[0])%10
		data = data[1:]
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		params := phy.DefaultParams()
		model := &radio.LogDistance{RefLossDB: 50, Exponent: 3.2, ShadowSigmaDB: 3, Seed: 0xf022}
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{X: float64(next()), Y: float64(next())}
		}
		m := NewWithWorkers(sim.NewScheduler(), params, model, pts, sim.NewRNG(1), 1)
		verify := func() {
			sparse, _ := BuildDeliveries(params, model, m.positions, 1)
			dense := denseDeliveries(params, model, m.positions)
			for _, oracle := range []struct {
				name  string
				lists [][]Delivery
			}{{"sparse", sparse}, {"dense", dense}} {
				for i := range oracle.lists {
					got, want := m.deliveries[i], oracle.lists[i]
					if (got == nil) != (want == nil) || len(got) != len(want) {
						t.Fatalf("%s oracle: node %d list len %d (nil=%v), want %d (nil=%v)",
							oracle.name, i, len(got), got == nil, len(want), want == nil)
					}
					for k := range want {
						if got[k].Dst != want[k].Dst ||
							math.Float64bits(got[k].GainMW) != math.Float64bits(want[k].GainMW) {
							t.Fatalf("%s oracle: node %d entry %d = {%d,%x}, want {%d,%x}",
								oracle.name, i, k,
								got[k].Dst, math.Float64bits(got[k].GainMW),
								want[k].Dst, math.Float64bits(want[k].GainMW))
						}
					}
				}
			}
		}
		verify()
		for len(data) >= 3 {
			i := int(next()) % n
			var p geo.Point
			switch next() % 4 {
			case 0: // zero-length move
				p = m.positions[i]
			case 1: // far out of the construction bounds (edge-cell clamp)
				p = geo.Point{X: float64(next())*50 - 3000, Y: float64(next())*50 - 3000}
			default: // local jitter, crossing cell boundaries
				p = geo.Point{
					X: m.positions[i].X + float64(int8(next()))/2,
					Y: m.positions[i].Y + float64(int8(next()))/2,
				}
			}
			m.MoveNode(i, p)
			verify()
		}
	})
}
