package medium

import (
	"math"
	"testing"

	"repro/internal/frame"
	"repro/internal/geo"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
)

// recorder is a phy.Handler that logs every upcall.
type recorder struct {
	frames  []frame.Frame
	infos   []phy.RxInfo
	corrupt []phy.RxInfo
	txDone  []frame.Frame
	carrier []bool
	hookTx  func(f frame.Frame)
}

func (r *recorder) OnFrame(f frame.Frame, info phy.RxInfo) {
	r.frames = append(r.frames, f)
	r.infos = append(r.infos, info)
}
func (r *recorder) OnCorrupt(info phy.RxInfo) { r.corrupt = append(r.corrupt, info) }
func (r *recorder) OnTxDone(f frame.Frame) {
	r.txDone = append(r.txDone, f)
	if r.hookTx != nil {
		r.hookTx(f)
	}
}
func (r *recorder) OnCarrier(busy bool) { r.carrier = append(r.carrier, busy) }

// testMedium builds a medium over n nodes with an explicit loss matrix and
// returns it along with one recorder per node.
func testMedium(t *testing.T, lossDB [][]float64) (*Medium, []*recorder, *sim.Scheduler) {
	t.Helper()
	n := len(lossDB)
	sched := sim.NewScheduler()
	positions := make([]geo.Point, n)
	m := New(sched, phy.DefaultParams(), &radio.Matrix{LossDB: lossDB}, positions, sim.NewRNG(1))
	recs := make([]*recorder, n)
	for i := 0; i < n; i++ {
		recs[i] = &recorder{}
		m.Radio(i).SetHandler(recs[i])
	}
	return m, recs, sched
}

// loss value that keeps rx power far below the delivery floor.
const offAir = 300.0

func sym(vals [][]float64) [][]float64 { return vals }

func dataFrame(src, dst int) *frame.Dot11Data {
	return &frame.Dot11Data{Src: frame.AddrFromID(src), Dst: frame.AddrFromID(dst), PayloadLen: 1400}
}

func TestCleanDelivery(t *testing.T) {
	// A(0) → B(1): loss 70 dB → rx -60 dBm, SNR 29 dB effective: certain decode.
	m, recs, sched := testMedium(t, sym([][]float64{
		{0, 70},
		{70, 0},
	}))
	f := dataFrame(0, 1)
	m.Radio(0).Transmit(f, phy.RateByID(phy.Rate6Mbps))
	sched.RunAll()

	if len(recs[1].frames) != 1 {
		t.Fatalf("B decoded %d frames, want 1", len(recs[1].frames))
	}
	if recs[1].frames[0] != f {
		t.Error("B decoded a different frame")
	}
	info := recs[1].infos[0]
	if info.From != 0 {
		t.Errorf("info.From = %d, want 0", info.From)
	}
	if math.Abs(info.PowerDBm-(-60)) > 1e-9 {
		t.Errorf("info.PowerDBm = %v, want -60", info.PowerDBm)
	}
	if len(recs[0].txDone) != 1 {
		t.Errorf("A got %d OnTxDone, want 1", len(recs[0].txDone))
	}
	if want := phy.Airtime(phy.RateByID(phy.Rate6Mbps), f.WireSize()); info.End-info.Start != want {
		t.Errorf("airtime = %v, want %v", info.End-info.Start, want)
	}
}

func TestOutOfRangeSilent(t *testing.T) {
	m, recs, sched := testMedium(t, sym([][]float64{
		{0, offAir},
		{offAir, 0},
	}))
	m.Radio(0).Transmit(dataFrame(0, 1), phy.RateByID(phy.Rate6Mbps))
	sched.RunAll()
	if len(recs[1].frames)+len(recs[1].corrupt)+len(recs[1].carrier) != 0 {
		t.Error("out-of-range receiver observed the transmission")
	}
}

func TestPromiscuousDelivery(t *testing.T) {
	// A(0) → B(1), but C(2) also hears it and must get the frame too.
	m, recs, sched := testMedium(t, sym([][]float64{
		{0, 70, 75},
		{70, 0, 80},
		{75, 80, 0},
	}))
	m.Radio(0).Transmit(dataFrame(0, 1), phy.RateByID(phy.Rate6Mbps))
	sched.RunAll()
	if len(recs[2].frames) != 1 {
		t.Errorf("overhearing node decoded %d frames, want 1 (promiscuous)", len(recs[2].frames))
	}
}

func TestCollisionCorrupts(t *testing.T) {
	// A(0) and C(2) transmit simultaneously with equal power at B(1):
	// SINR ≈ 0 dB → B locks neither or corrupts. They cannot hear each other.
	m, recs, sched := testMedium(t, sym([][]float64{
		{0, 70, offAir},
		{70, 0, 70},
		{offAir, 70, 0},
	}))
	m.Radio(0).Transmit(dataFrame(0, 1), phy.RateByID(phy.Rate6Mbps))
	m.Radio(2).Transmit(dataFrame(2, 1), phy.RateByID(phy.Rate6Mbps))
	sched.RunAll()
	if len(recs[1].frames) != 0 {
		t.Errorf("B decoded %d frames from an equal-power collision, want 0", len(recs[1].frames))
	}
}

func TestCaptureStrongFirstFrame(t *testing.T) {
	// A strong (-55 dBm at B), C weak (-85 dBm at B): B locks A's frame
	// first and decodes it despite C (SINR ≈ 30 dB).
	m, recs, sched := testMedium(t, sym([][]float64{
		{0, 65, offAir},
		{65, 0, 95},
		{offAir, 95, 0},
	}))
	m.Radio(0).Transmit(dataFrame(0, 1), phy.RateByID(phy.Rate6Mbps))
	sched.After(50*sim.Microsecond, func() {
		m.Radio(2).Transmit(dataFrame(2, 1), phy.RateByID(phy.Rate6Mbps))
	})
	sched.RunAll()
	if len(recs[1].frames) != 1 {
		t.Fatalf("B decoded %d frames, want 1 (capture)", len(recs[1].frames))
	}
	if recs[1].infos[0].From != 0 {
		t.Errorf("B captured frame from %d, want 0", recs[1].infos[0].From)
	}
}

func TestLateStrongFrameCapturesLocked(t *testing.T) {
	// B locks the weak frame from C first; A's much stronger frame arrives
	// mid-way. OFDM sync restart (capture) steals the lock: the weak frame
	// is reported corrupted, the strong one decodes.
	m, recs, sched := testMedium(t, sym([][]float64{
		{0, 65, offAir},
		{65, 0, 90},
		{offAir, 90, 0},
	}))
	m.Radio(2).Transmit(dataFrame(2, 1), phy.RateByID(phy.Rate6Mbps))
	sched.After(200*sim.Microsecond, func() {
		m.Radio(0).Transmit(dataFrame(0, 1), phy.RateByID(phy.Rate6Mbps))
	})
	sched.RunAll()
	if len(recs[1].frames) != 1 || recs[1].infos[0].From != 0 {
		t.Errorf("B decoded %d frames (want 1, captured from node 0)", len(recs[1].frames))
	}
	if len(recs[1].corrupt) != 1 || recs[1].corrupt[0].From != 2 {
		t.Errorf("B corrupt events = %+v, want 1 truncated frame from node 2", recs[1].corrupt)
	}
	if m.Radio(1).Stats().Captures != 1 {
		t.Errorf("Captures = %d, want 1", m.Radio(1).Stats().Captures)
	}
}

func TestNoCaptureBetweenComparableFrames(t *testing.T) {
	// A later frame only ~3 dB stronger must NOT capture the lock.
	m, recs, sched := testMedium(t, sym([][]float64{
		{0, 65, offAir},
		{65, 0, 68},
		{offAir, 68, 0},
	}))
	m.Radio(2).Transmit(dataFrame(2, 1), phy.RateByID(phy.Rate6Mbps))
	sched.After(200*sim.Microsecond, func() {
		m.Radio(0).Transmit(dataFrame(0, 1), phy.RateByID(phy.Rate6Mbps))
	})
	sched.RunAll()
	if m.Radio(1).Stats().Captures != 0 {
		t.Errorf("Captures = %d, want 0 for a 3 dB difference", m.Radio(1).Stats().Captures)
	}
	if len(recs[1].frames) != 0 {
		t.Errorf("B decoded %d frames from a near-equal collision, want 0", len(recs[1].frames))
	}
}

func TestCarrierSenseEdges(t *testing.T) {
	m, recs, sched := testMedium(t, sym([][]float64{
		{0, 70},
		{70, 0},
	}))
	if m.Radio(1).CarrierBusy() {
		t.Error("carrier busy before any transmission")
	}
	m.Radio(0).Transmit(dataFrame(0, 1), phy.RateByID(phy.Rate6Mbps))
	if !m.Radio(1).CarrierBusy() {
		t.Error("carrier idle during transmission at -60 dBm")
	}
	sched.RunAll()
	if m.Radio(1).CarrierBusy() {
		t.Error("carrier busy after transmission ended")
	}
	if len(recs[1].carrier) != 2 || recs[1].carrier[0] != true || recs[1].carrier[1] != false {
		t.Errorf("carrier edges = %v, want [true false]", recs[1].carrier)
	}
	// The transmitter itself is busy while sending.
	m2, _, sched2 := testMedium(t, sym([][]float64{{0, 70}, {70, 0}}))
	m2.Radio(0).Transmit(dataFrame(0, 1), phy.RateByID(phy.Rate6Mbps))
	if !m2.Radio(0).CarrierBusy() {
		t.Error("transmitter's own carrier not busy")
	}
	sched2.RunAll()
}

func TestWeakSignalBelowCSThreshold(t *testing.T) {
	// rx power -88 dBm: above delivery floor and sensitivity, below the
	// -82 dBm carrier-sense threshold. The receiver can still lock
	// (preamble decodable) but a third party with no lock would not see
	// carrier. Here node 1 locks, so its carrier IS busy; node 2 hears the
	// signal below CS threshold and cannot lock (below its sensitivity of
	// -92? -88 is above -92, so it locks too...). Use -96 dBm at node 2:
	// below sensitivity → no lock, no carrier.
	m, recs, sched := testMedium(t, sym([][]float64{
		{0, 98, 106},
		{98, 0, 80},
		{106, 80, 0},
	}))
	m.Radio(0).Transmit(dataFrame(0, 1), phy.RateByID(phy.Rate6Mbps))
	if m.Radio(2).CarrierBusy() {
		t.Error("node 2 carrier busy on a -96 dBm signal")
	}
	sched.RunAll()
	if len(recs[2].frames) != 0 {
		t.Error("node 2 decoded a signal below sensitivity")
	}
	_ = recs
}

func TestHalfDuplexTxAbortsRx(t *testing.T) {
	m, recs, sched := testMedium(t, sym([][]float64{
		{0, 70},
		{70, 0},
	}))
	m.Radio(0).Transmit(dataFrame(0, 1), phy.RateByID(phy.Rate6Mbps))
	// Mid-reception, B transmits: its reception of A's frame must abort.
	sched.After(100*sim.Microsecond, func() {
		m.Radio(1).Transmit(dataFrame(1, 0), phy.RateByID(phy.Rate6Mbps))
	})
	sched.RunAll()
	if len(recs[1].frames) != 0 {
		t.Error("B decoded a frame while transmitting over it (half-duplex violated)")
	}
	if m.Radio(1).Stats().AbortedRx != 1 {
		t.Errorf("AbortedRx = %d, want 1", m.Radio(1).Stats().AbortedRx)
	}
	// A, busy transmitting at the time B's frame started, must not decode it.
	if len(recs[0].frames) != 0 {
		t.Error("A decoded a frame that arrived while it was transmitting")
	}
}

func TestBackToBackFrames(t *testing.T) {
	// A sends two frames with zero gap (chained from OnTxDone): B must
	// decode both — the pattern CMAP virtual packets rely on.
	m, recs, sched := testMedium(t, sym([][]float64{
		{0, 70},
		{70, 0},
	}))
	second := dataFrame(0, 1)
	sent := 0
	recs[0].hookTx = func(frame.Frame) {
		if sent == 0 {
			sent++
			m.Radio(0).Transmit(second, phy.RateByID(phy.Rate6Mbps))
		}
	}
	m.Radio(0).Transmit(dataFrame(0, 1), phy.RateByID(phy.Rate6Mbps))
	sched.RunAll()
	if len(recs[1].frames) != 2 {
		t.Fatalf("B decoded %d back-to-back frames, want 2", len(recs[1].frames))
	}
}

func TestHiddenTerminalCollision(t *testing.T) {
	// Classic hidden terminals: A(0) and C(2) cannot hear each other, both
	// reach B(1) strongly. Simultaneous saturation destroys most frames.
	m, recs, sched := testMedium(t, sym([][]float64{
		{0, 72, offAir},
		{72, 0, 73},
		{offAir, 73, 0},
	}))
	rate := phy.RateByID(phy.Rate6Mbps)
	// Both send 20 frames back-to-back.
	for _, id := range []int{0, 2} {
		id := id
		count := 0
		recs[id].hookTx = func(frame.Frame) {
			count++
			if count < 20 {
				m.Radio(id).Transmit(dataFrame(id, 1), rate)
			}
		}
	}
	m.Radio(0).Transmit(dataFrame(0, 1), rate)
	sched.After(300*sim.Microsecond, func() {
		m.Radio(2).Transmit(dataFrame(2, 1), rate)
	})
	sched.RunAll()
	if got := len(recs[1].frames); got > 3 {
		t.Errorf("B decoded %d of 40 overlapping frames, want near-total loss", got)
	}
}

func TestExposedTerminalConcurrency(t *testing.T) {
	// Exposed terminals: A(0)→B(1) and C(2)→D(3); senders hear each other
	// (-65 dBm) but each cross link sender→other-receiver arrives at
	// -98 dBm: below preamble sensitivity (no false locks) yet still
	// counted as interference. Concurrent transmissions both succeed.
	m, recs, sched := testMedium(t, sym([][]float64{
		{0, 68, 75, 108},
		{68, 0, 108, offAir},
		{75, 108, 0, 68},
		{108, offAir, 68, 0},
	}))
	rate := phy.RateByID(phy.Rate6Mbps)
	m.Radio(0).Transmit(dataFrame(0, 1), rate)
	m.Radio(2).Transmit(dataFrame(2, 3), rate)
	sched.RunAll()
	if len(recs[1].frames) != 1 {
		t.Errorf("B decoded %d frames, want 1 (exposed-terminal success)", len(recs[1].frames))
	}
	if len(recs[3].frames) != 1 {
		t.Errorf("D decoded %d frames, want 1 (exposed-terminal success)", len(recs[3].frames))
	}
}

func TestRxPowerAndIsolationPRR(t *testing.T) {
	m, _, _ := testMedium(t, sym([][]float64{
		{0, 70},
		{70, 0},
	}))
	if got := m.RxPowerDBm(0, 1); math.Abs(got-(-60)) > 1e-9 {
		t.Errorf("RxPowerDBm = %v, want -60", got)
	}
	if !math.IsInf(m.RxPowerDBm(0, 0), -1) {
		t.Error("self rx power should be -inf")
	}
	want := phy.IsolationPRR(m.Params(), phy.RateByID(phy.Rate6Mbps), -60, 1424)
	if got := m.IsolationPRR(0, 1, phy.RateByID(phy.Rate6Mbps), 1424); got != want {
		t.Errorf("IsolationPRR = %v, want %v", got, want)
	}
	if m.IsolationPRR(0, 0, phy.RateByID(phy.Rate6Mbps), 1424) != 0 {
		t.Error("self PRR should be 0")
	}
}

func TestMarginalLinkLossy(t *testing.T) {
	// rx power at the PER waterfall: repeated frames should see partial loss.
	p := phy.DefaultParams()
	r := phy.RateByID(phy.Rate6Mbps)
	// Find a power with isolation PRR ≈ 0.5.
	lo, hi := p.SensitivityDBm, -60.0
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if phy.IsolationPRR(p, r, mid, 1424) < 0.5 {
			lo = mid
		} else {
			hi = mid
		}
	}
	power := (lo + hi) / 2
	loss := p.TxPowerDBm - power
	m, recs, sched := testMedium(t, sym([][]float64{
		{0, loss},
		{loss, 0},
	}))
	const n = 400
	count := 0
	recs[0].hookTx = func(frame.Frame) {
		count++
		if count < n {
			// Small gap so each frame is an independent reception.
			sched.After(10*sim.Microsecond, func() {
				m.Radio(0).Transmit(dataFrame(0, 1), r)
			})
		}
	}
	m.Radio(0).Transmit(dataFrame(0, 1), r)
	sched.RunAll()
	got := float64(len(recs[1].frames)) / n
	if got < 0.35 || got > 0.65 {
		t.Errorf("marginal link PRR = %v, want ≈0.5", got)
	}
}

func TestTransmissionsCounter(t *testing.T) {
	m, _, sched := testMedium(t, sym([][]float64{{0, 70}, {70, 0}}))
	m.Radio(0).Transmit(dataFrame(0, 1), phy.RateByID(phy.Rate6Mbps))
	sched.RunAll()
	if m.Transmissions != 1 {
		t.Errorf("Transmissions = %d, want 1", m.Transmissions)
	}
	if m.NodeCount() != 2 {
		t.Errorf("NodeCount = %d, want 2", m.NodeCount())
	}
}
