package medium

import (
	"math"
	"runtime"
	"slices"
	"sync"

	"repro/internal/geo"
	"repro/internal/phy"
	"repro/internal/radio"
)

// Delivery is one audible receiver of a node's transmissions: the
// receiver index and the power it hears, in mW, at the common transmit
// power. Delivery lists are the medium's ground truth — Transmit fans
// out over them, the analytic extractor reads them back through GainMW,
// and the sharded engine partitions them — so they are built in exactly
// one place, here. The struct itself lives in phy so an in-flight
// Transmission can snapshot its list without an import cycle.
type Delivery = phy.Delivery

// BuildDeliveries computes, for every node, the receivers that hear it
// above the delivery floor, in ascending receiver order, with the power
// each receives. When the model bounds its range the candidate set is
// enumerated through a spatial grid and the per-node computation fans
// out across workers goroutines (workers <= 0 means GOMAXPROCS); the
// output is bit-identical at any worker count because each node's list
// is an independent pure computation written to a disjoint slot, and
// every model in internal/radio is a pure function of its arguments
// (deterministic per-pair shadowing, no internal state), which makes
// concurrent Loss calls safe. Without a range bound the exhaustive
// O(n²) reference scan runs serially. The second result reports whether
// the grid path was taken.
func BuildDeliveries(params phy.Params, model radio.Model, positions []geo.Point, workers int) ([][]Delivery, bool) {
	var maxRange float64 = math.Inf(1)
	if rb, ok := model.(radio.RangeBounder); ok {
		maxRange = rb.MaxRange(params.TxPowerDBm - params.DeliveryFloorDBm)
	}
	if !(maxRange > 0) || math.IsInf(maxRange, 1) || math.IsNaN(maxRange) {
		return denseDeliveries(params, model, positions), false
	}

	n := len(positions)
	lists := make([][]Delivery, n)
	floorMW := radio.DBmToMW(params.DeliveryFloorDBm)
	grid := geo.NewGrid(positions, maxRange)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	fill := func(lo, hi int) {
		buf := make([]int, 0, 64)
		for a := lo; a < hi; a++ {
			buf = buf[:0]
			grid.Within(a, maxRange, func(b int) { buf = append(buf, b) })
			slices.Sort(buf)
			if len(buf) == 0 {
				continue
			}
			// Pre-size from the grid candidate count: the kept set is a
			// subset of the candidates, so one allocation always suffices.
			list := make([]Delivery, 0, len(buf))
			for _, b := range buf {
				loss := model.Loss(a, positions[a], b, positions[b])
				if g := radio.DBmToMW(params.TxPowerDBm - loss); g >= floorMW {
					list = append(list, Delivery{Dst: b, GainMW: g})
				}
			}
			if len(list) > 0 {
				lists[a] = list
			}
		}
	}
	if workers == 1 {
		fill(0, n)
		return lists, true
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			fill(lo, hi)
		}()
	}
	wg.Wait()
	return lists, true
}

// denseDeliveries is the reference O(n²) construction over every
// ordered pair. It stays serial and obviously correct; the grid path is
// proven against it by TestSparseDenseFlowEquivalence and the
// worker-count equivalence test.
func denseDeliveries(params phy.Params, model radio.Model, positions []geo.Point) [][]Delivery {
	n := len(positions)
	lists := make([][]Delivery, n)
	floorMW := radio.DBmToMW(params.DeliveryFloorDBm)
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			loss := model.Loss(a, positions[a], b, positions[b])
			if g := radio.DBmToMW(params.TxPowerDBm - loss); g >= floorMW {
				lists[a] = append(lists[a], Delivery{Dst: b, GainMW: g})
			}
		}
	}
	return lists
}
