package medium

import (
	"cmp"
	"math"
	"slices"

	"repro/internal/geo"
	"repro/internal/radio"
)

// Incremental delivery-list maintenance for mobile nodes. MoveNode
// relocates one node and patches only the lists the move can change —
// O(k) per move through the spatial grid instead of the O(n·k) full
// rebuild — while staying bit-identical to BuildDeliveries over the
// final positions: every kept entry is the same pure float computation
// (DBmToMW(TxPowerDBm − model.Loss(...)) ≥ floor), membership uses the
// same predicate, and lists stay in ascending receiver order with the
// same nil-when-empty convention. TestIncrementalMatchesRebuild and
// FuzzDeliveryPatch pin that equivalence against both the sparse and
// the dense oracle.
//
// Patches are copy-on-write: a patched list is a fresh slice, never a
// mutation of the old backing array, because in-flight transmissions
// hold transmit-time snapshots of the lists they fanned out over (see
// Transmit / finishTransmission).

// mover is the lazily-built incremental-update state.
type mover struct {
	// grid tracks current positions when the model bounds its range;
	// nil means the model is unbounded and patches scan all nodes.
	grid     *geo.Grid
	maxRange float64
	cand     []int // scratch candidate buffer, reused across moves
}

func (m *Medium) ensureMover() *mover {
	if m.mv != nil {
		return m.mv
	}
	mv := &mover{maxRange: math.Inf(1)}
	if rb, ok := m.model.(radio.RangeBounder); ok {
		mv.maxRange = rb.MaxRange(m.params.TxPowerDBm - m.params.DeliveryFloorDBm)
	}
	// Same usability test as BuildDeliveries: a non-positive or
	// non-finite bound means every pair must be considered.
	if mv.maxRange > 0 && !math.IsInf(mv.maxRange, 1) && !math.IsNaN(mv.maxRange) {
		// The grid gets its own copy of the positions: Move mutates the
		// stored slice, and m.positions stays authoritative.
		mv.grid = geo.NewGrid(append([]geo.Point(nil), m.positions...), mv.maxRange)
	} else {
		mv.maxRange = math.Inf(1)
		mv.grid = nil
	}
	m.mv = mv
	return mv
}

// MoveNode relocates node i to p and patches the delivery lists so they
// equal what a from-scratch build over the updated positions would
// produce. Zero-length moves are valid (the recompute is idempotent).
// Models whose Loss depends on per-node state that changed without a
// position change (the mobility channel's shadowing epochs) are
// refreshed by the same call: every list entry involving i is
// recomputed from the live model.
func (m *Medium) MoveNode(i int, p geo.Point) {
	mv := m.ensureMover()
	old := m.deliveries[i]
	m.positions[i] = p
	if mv.grid != nil {
		mv.grid.Move(i, p)
		m.moveGridPatch(mv, i, old)
	} else {
		m.moveDensePatch(i)
	}
}

// moveGridPatch rebuilds node i's own list from the grid and re-patches
// every list whose entry for i could have changed. Loss models behind a
// range bound are reciprocal, so "j heard i before the move" is exactly
// the destination set of i's old list; "j may hear i after" is the grid
// candidate set. The union covers every affected list.
func (m *Medium) moveGridPatch(mv *mover, i int, old []Delivery) {
	buf := mv.cand[:0]
	mv.grid.Within(i, mv.maxRange, func(b int) { buf = append(buf, b) })
	slices.Sort(buf)
	var list []Delivery
	if len(buf) > 0 {
		// Pre-size from the candidate count, exactly like the
		// BuildDeliveries fill loop.
		list = make([]Delivery, 0, len(buf))
		for _, b := range buf {
			if g := m.gain(i, b); g >= m.floorMW {
				list = append(list, Delivery{Dst: b, GainMW: g})
			}
		}
		if len(list) == 0 {
			list = nil
		}
	}
	m.deliveries[i] = list
	// Merge-walk the two ascending destination streams so each affected
	// list is patched exactly once.
	oi, bi := 0, 0
	for oi < len(old) || bi < len(buf) {
		var j int
		switch {
		case oi >= len(old):
			j = buf[bi]
			bi++
		case bi >= len(buf):
			j = old[oi].Dst
			oi++
		case old[oi].Dst < buf[bi]:
			j = old[oi].Dst
			oi++
		case old[oi].Dst > buf[bi]:
			j = buf[bi]
			bi++
		default:
			j = buf[bi]
			oi++
			bi++
		}
		m.patchEntry(j, i)
	}
	mv.cand = buf
}

// moveDensePatch is the unbounded-model fallback: recompute row i (who
// hears i) from scratch and re-evaluate entry i in every other list —
// O(n) per move, mirroring denseDeliveries' per-pair computation.
func (m *Medium) moveDensePatch(i int) {
	n := len(m.positions)
	var list []Delivery
	for b := 0; b < n; b++ {
		if b == i {
			continue
		}
		if g := m.gain(i, b); g >= m.floorMW {
			list = append(list, Delivery{Dst: b, GainMW: g})
		}
	}
	m.deliveries[i] = list
	for j := 0; j < n; j++ {
		m.patchEntry(j, i)
	}
}

// patchEntry recomputes list j's entry for destination i — insert,
// update, or remove, copy-on-write, preserving ascending order and the
// nil-when-empty convention. The gain is computed in the j→i direction,
// the same direction a full rebuild uses for list j.
func (m *Medium) patchEntry(j, i int) {
	if j == i {
		return
	}
	list := m.deliveries[j]
	k, ok := slices.BinarySearchFunc(list, i, func(d Delivery, dst int) int {
		return cmp.Compare(d.Dst, dst)
	})
	g := m.gain(j, i)
	audible := g >= m.floorMW
	switch {
	case ok && audible:
		if math.Float64bits(list[k].GainMW) == math.Float64bits(g) {
			return // unchanged — keep the shared backing array intact
		}
		nl := append([]Delivery(nil), list...)
		nl[k].GainMW = g
		m.deliveries[j] = nl
	case ok && !audible:
		if len(list) == 1 {
			m.deliveries[j] = nil
			return
		}
		nl := make([]Delivery, 0, len(list)-1)
		nl = append(nl, list[:k]...)
		nl = append(nl, list[k+1:]...)
		m.deliveries[j] = nl
	case !ok && audible:
		nl := make([]Delivery, 0, len(list)+1)
		nl = append(nl, list[:k]...)
		nl = append(nl, Delivery{Dst: i, GainMW: g})
		nl = append(nl, list[k:]...)
		m.deliveries[j] = nl
	}
}

// RebuildDeliveries replaces the delivery lists with a from-scratch
// build over the current positions. It exists for the equivalence tier
// and benchmarks — the oracle the incremental path is measured against.
func (m *Medium) RebuildDeliveries() {
	m.deliveries, m.gridBacked = BuildDeliveries(m.params, m.model, m.positions, 1)
}

// DeliveryList returns node i's live delivery list. The slice is shared
// with the medium — callers must not mutate it. Equivalence tests use
// it to compare incremental patches against oracle rebuilds.
func (m *Medium) DeliveryList(i int) []Delivery { return m.deliveries[i] }
