package medium

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
)

// layouts the sparse construction must reproduce exactly: office-floor
// scale (grid radius covers everything) and a kilometre square (grid
// actually prunes).
func sparseLayouts() map[string][]geo.Point {
	out := map[string][]geo.Point{}
	rng := sim.NewRNG(0x5ba)
	floor := make([]geo.Point, 60)
	for i := range floor {
		floor[i] = geo.Point{X: rng.Float64() * 100, Y: rng.Float64() * 40}
	}
	out["floor"] = floor
	wide := make([]geo.Point, 150)
	for i := range wide {
		wide[i] = geo.Point{X: rng.Float64() * 3000, Y: rng.Float64() * 3000}
	}
	out["wide"] = wide
	return out
}

func TestSparseMatchesDenseDeliveryLists(t *testing.T) {
	params := phy.DefaultParams()
	for name, pts := range sparseLayouts() {
		for _, model := range []radio.Model{
			radio.DefaultIndoor5GHz(7),
			radio.DefaultUrban5GHz(7),
			&radio.FreeSpace{RefLossDB: 47, Exponent: 2.5},
		} {
			sparse := New(sim.NewScheduler(), params, model, pts, sim.NewRNG(1))
			dense := NewDense(sim.NewScheduler(), params, model, pts, sim.NewRNG(1))
			if !sparse.GridBacked() {
				t.Fatalf("%s: sparse construction did not use the grid for %T", name, model)
			}
			if dense.GridBacked() {
				t.Fatalf("%s: dense construction claims to be grid backed", name)
			}
			for a := range pts {
				sl, dl := sparse.deliveries[a], dense.deliveries[a]
				if len(sl) != len(dl) {
					t.Fatalf("%s %T node %d: sparse %d deliveries, dense %d", name, model, a, len(sl), len(dl))
				}
				for k := range sl {
					if sl[k] != dl[k] {
						t.Fatalf("%s %T node %d delivery %d: sparse %+v, dense %+v", name, model, a, k, sl[k], dl[k])
					}
				}
			}
		}
	}
}

func TestSparseRxPowerMatchesModelBelowFloor(t *testing.T) {
	// RxPowerDBm must answer for sub-floor pairs too (the §5.1
	// measurement pass asks about every pair), by falling back to the
	// model, and the answer must equal what the dense matrix held.
	params := phy.DefaultParams()
	model := radio.DefaultUrban5GHz(3)
	pts := sparseLayouts()["wide"]
	sparse := New(sim.NewScheduler(), params, model, pts, sim.NewRNG(1))
	dense := NewDense(sim.NewScheduler(), params, model, pts, sim.NewRNG(1))
	stored, recomputed := 0, 0
	for a := 0; a < len(pts); a += 3 {
		for b := 0; b < len(pts); b += 3 {
			sp, dp := sparse.RxPowerDBm(a, b), dense.RxPowerDBm(a, b)
			if sp != dp && !(math.IsInf(sp, -1) && math.IsInf(dp, -1)) {
				t.Fatalf("RxPowerDBm(%d,%d): sparse %v, dense %v", a, b, sp, dp)
			}
			if _, ok := sparse.lookupGain(a, b); ok {
				stored++
			} else if a != b {
				recomputed++
			}
		}
	}
	if stored == 0 || recomputed == 0 {
		t.Fatalf("layout exercises only one path: %d stored, %d recomputed", stored, recomputed)
	}
}

func TestSparsePrunesWideLayout(t *testing.T) {
	// On the kilometre square, the delivery lists must be genuinely
	// sparse: far fewer than n² entries, with no O(n²) structure held.
	params := phy.DefaultParams()
	pts := sparseLayouts()["wide"]
	m := New(sim.NewScheduler(), params, radio.DefaultUrban5GHz(7), pts, sim.NewRNG(1))
	total := 0
	for i := range pts {
		total += m.NeighborCount(i)
	}
	n := len(pts)
	if total >= n*(n-1)/2 {
		t.Fatalf("wide layout kept %d of %d ordered pairs — not sparse", total, n*(n-1))
	}
	if total == 0 {
		t.Fatal("wide layout has no audible links at all")
	}
}

func TestMatrixModelFallsBackToDenseConstruction(t *testing.T) {
	// Matrix has no geometry, so New must silently use the exhaustive
	// scan and still deliver.
	loss := [][]float64{{0, 70}, {70, 0}}
	m := New(sim.NewScheduler(), phy.DefaultParams(), &radio.Matrix{LossDB: loss},
		make([]geo.Point, 2), sim.NewRNG(1))
	if m.GridBacked() {
		t.Fatal("Matrix model cannot be grid backed")
	}
	if m.NeighborCount(0) != 1 || m.NeighborCount(1) != 1 {
		t.Fatalf("neighbour counts = %d,%d, want 1,1", m.NeighborCount(0), m.NeighborCount(1))
	}
}

func TestForEachNeighborAscending(t *testing.T) {
	pts := sparseLayouts()["floor"]
	m := New(sim.NewScheduler(), phy.DefaultParams(), radio.DefaultIndoor5GHz(7), pts, sim.NewRNG(1))
	for i := range pts {
		prev := -1
		m.ForEachNeighbor(i, func(dst int, gainMW float64) {
			if dst <= prev {
				t.Fatalf("node %d neighbours out of order: %d after %d", i, dst, prev)
			}
			if gainMW < m.floorMW {
				t.Fatalf("node %d neighbour %d below delivery floor", i, dst)
			}
			prev = dst
		})
	}
}
