package medium

import (
	"fmt"
	"testing"

	"repro/internal/geo"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
)

// constructLayout is a kilometre-square layout dense enough that the
// grid prunes and every worker chunk holds real work.
func constructLayout(n int) []geo.Point {
	rng := sim.NewRNG(0xc0175)
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	}
	return pts
}

// TestBuildDeliveriesWorkerEquivalence pins the parallel-construction
// contract: the delivery lists are bit-identical at every worker count,
// including counts far above the node count and the GOMAXPROCS default.
func TestBuildDeliveriesWorkerEquivalence(t *testing.T) {
	params := phy.DefaultParams()
	model := radio.DefaultIndoor5GHz(7)
	pts := constructLayout(300)
	ref, refGrid := BuildDeliveries(params, model, pts, 1)
	if !refGrid {
		t.Fatal("model should be range-bounded (grid path)")
	}
	for _, workers := range []int{0, 2, 3, 4, 8, 1000} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got, grid := BuildDeliveries(params, model, pts, workers)
			if !grid {
				t.Fatal("grid path not taken")
			}
			if len(got) != len(ref) {
				t.Fatalf("list count %d, want %d", len(got), len(ref))
			}
			for a := range ref {
				if len(got[a]) != len(ref[a]) {
					t.Fatalf("node %d: %d deliveries, want %d", a, len(got[a]), len(ref[a]))
				}
				for k := range ref[a] {
					if got[a][k] != ref[a][k] {
						t.Fatalf("node %d delivery %d: %+v, want %+v (must be bit-identical)",
							a, k, got[a][k], ref[a][k])
					}
				}
			}
		})
	}
}

// TestBuildDeliveriesMatchesDense proves the grid-pruned parallel
// construction keeps exactly the pairs the exhaustive reference scan
// keeps, with identical gains.
func TestBuildDeliveriesMatchesDense(t *testing.T) {
	params := phy.DefaultParams()
	model := radio.DefaultIndoor5GHz(3)
	pts := constructLayout(150)
	dense := denseDeliveries(params, model, pts)
	sparse, grid := BuildDeliveries(params, model, pts, 4)
	if !grid {
		t.Fatal("grid path not taken")
	}
	for a := range dense {
		if len(sparse[a]) != len(dense[a]) {
			t.Fatalf("node %d: sparse %d deliveries, dense %d", a, len(sparse[a]), len(dense[a]))
		}
		for k := range dense[a] {
			if sparse[a][k] != dense[a][k] {
				t.Fatalf("node %d delivery %d: sparse %+v, dense %+v", a, k, sparse[a][k], dense[a][k])
			}
		}
	}
}
