// Package medium implements the shared wireless channel: it places
// radios, computes the received power of every transmission at every
// other radio through the propagation model, and drives each radio's
// signal start/end callbacks in virtual time.
//
// # Relation to the paper
//
// The medium realises the §5.1 testbed channel: who hears whom, at what
// power, with every concurrent transmission contributing interference
// at every receiver — the ground truth CMAP's conflict maps learn from
// and carrier sense reacts to.
//
// # Sparse storage
//
// The channel is stored sparsely: each node keeps a sorted delivery
// list of only the receivers that hear it above the delivery floor.
// Lists are built with a spatial grid when the propagation model can
// bound its range (radio.RangeBounder), making construction O(n·k) at
// fixed node density and Transmit O(audible receivers) — the
// representation that lets the testbed scale from the paper's 50 nodes
// to thousands. NewDense retains the brute-force O(n²) construction as
// the reference the sparse path is tested against; both produce
// bit-identical simulations.
//
// # The zero-allocation transmit path
//
// The per-frame data path is allocation-free in steady state: each
// transmission borrows a phy.Transmission from the medium's free list,
// fans out to receivers as (shared pointer, per-receiver power) pairs,
// and is torn down by a single scheduler event that walks the delivery
// list again — no per-receiver closures, no per-receiver signal
// objects. Delivery gains are stored in linear mW, which is also the
// domain the radios' segment fan-out (SignalStart/SignalEnd) computes
// in: the reception math never round-trips through dB per segment.
// TestTransmitSteadyStateZeroAllocs gates this at 0 allocs/frame.
package medium
