package medium

import (
	"encoding/json"
	"fmt"

	"repro/internal/phy"
)

// Checkpoint surface of the medium. The delivery lists, radios and gain
// numbers are all structural (rebuilt deterministically by New from the
// same inputs), so the medium itself only carries two counters. The
// interesting work is the event-argument codec: the medium owns two
// agenda event shapes — the end-of-signal fan-out (*phy.Transmission)
// and the sender tx-done upcall (*phy.Radio) — and the fan-out events
// are exactly the set of in-flight transmissions, so decoding them
// doubles as materialising the active transmission set every radio's
// pointer state resolves against.

// State is the medium's mutable state in checkpoint form.
type State struct {
	NextTxID      uint64 `json:"next_tx_id"`
	Transmissions uint64 `json:"transmissions"`
}

// ExportState captures the medium's counters. The transmission free
// list is deliberately not captured: pool contents are invisible to
// behaviour, and a resumed run simply re-grows its ring.
func (m *Medium) ExportState() State {
	return State{NextTxID: m.nextTxID, Transmissions: m.Transmissions}
}

// RestoreState overwrites the medium's counters.
func (m *Medium) RestoreState(st State) {
	m.nextTxID = st.NextTxID
	m.Transmissions = st.Transmissions
}

// mediumArg is the encoded form of a medium-owned event argument:
// exactly one of the fields is set.
type mediumArg struct {
	Tx    *phy.TxState `json:"tx,omitempty"`
	Radio *int         `json:"radio,omitempty"`
}

// EncodeEventArg encodes one medium-owned agenda event argument.
func (m *Medium) EncodeEventArg(arg any) (json.RawMessage, error) {
	switch v := arg.(type) {
	case *phy.Transmission:
		ts, err := phy.ExportTransmission(v)
		if err != nil {
			return nil, err
		}
		return json.Marshal(mediumArg{Tx: &ts})
	case *phy.Radio:
		id := v.ID()
		return json.Marshal(mediumArg{Radio: &id})
	default:
		return nil, fmt.Errorf("medium: unencodable event arg %T", arg)
	}
}

// DecodeEventArg inverts EncodeEventArg. Decoded transmissions are
// registered in txs by TxID so radios can resolve their active/locked
// pointers against the same objects the agenda will deliver SignalEnd
// with.
func (m *Medium) DecodeEventArg(enc json.RawMessage, txs map[uint64]*phy.Transmission) (any, error) {
	var a mediumArg
	if err := json.Unmarshal(enc, &a); err != nil {
		return nil, fmt.Errorf("medium: bad event arg: %w", err)
	}
	switch {
	case a.Tx != nil:
		tx := new(phy.Transmission)
		if err := a.Tx.Restore(tx); err != nil {
			return nil, err
		}
		txs[tx.TxID] = tx
		return tx, nil
	case a.Radio != nil:
		if *a.Radio < 0 || *a.Radio >= len(m.radios) {
			return nil, fmt.Errorf("medium: event names unknown radio %d", *a.Radio)
		}
		return m.radios[*a.Radio], nil
	default:
		return nil, fmt.Errorf("medium: event arg encodes neither tx nor radio")
	}
}
