package medium

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/mobility"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
)

// scatter places n nodes uniformly in the arena from a dedicated stream.
func scatter(n int, arena geo.Rect, rng *sim.RNG) []geo.Point {
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.Point{
			X: arena.MinX + rng.Float64()*arena.Width(),
			Y: arena.MinY + rng.Float64()*arena.Height(),
		}
	}
	return pts
}

// requireListsEqual asserts every delivery list matches the oracle
// bit-exactly: same membership, same order, same IEEE-754 gain bits,
// same nil-when-empty convention.
func requireListsEqual(t *testing.T, label string, got, want [][]Delivery) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d lists vs oracle %d", label, len(got), len(want))
	}
	for i := range want {
		if (got[i] == nil) != (want[i] == nil) {
			t.Fatalf("%s: node %d nil-ness %v vs oracle %v (len %d vs %d)",
				label, i, got[i] == nil, want[i] == nil, len(got[i]), len(want[i]))
		}
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: node %d has %d deliveries, oracle %d", label, i, len(got[i]), len(want[i]))
		}
		for k := range want[i] {
			g, w := got[i][k], want[i][k]
			if g.Dst != w.Dst || math.Float64bits(g.GainMW) != math.Float64bits(w.GainMW) {
				t.Fatalf("%s: node %d entry %d = {%d, %x}, oracle {%d, %x}",
					label, i, k, g.Dst, math.Float64bits(g.GainMW), w.Dst, math.Float64bits(w.GainMW))
			}
		}
	}
}

// TestIncrementalMatchesRebuild drives each mobility model over a
// log-distance testbed (with shadowing re-draws) and proves, after
// every movement epoch, that the incrementally patched delivery lists
// are bit-identical to a from-scratch sparse build AND to the dense
// O(n²) reference over the same final positions and shadowing epochs.
func TestIncrementalMatchesRebuild(t *testing.T) {
	arena := geo.Rect{MinX: 0, MinY: 0, MaxX: 120, MaxY: 80}
	specs := []mobility.Spec{
		{Kind: mobility.Waypoint, SpeedMps: 12, DecorrM: 15},
		{Kind: mobility.RandomWalk, SpeedMps: 8, DecorrM: 15},
		{Kind: mobility.Vehicular, SpeedMps: 25}, // lane wrap = long jumps
	}
	for _, spec := range specs {
		t.Run(spec.Kind.String(), func(t *testing.T) {
			params := phy.DefaultParams()
			inner := &radio.LogDistance{RefLossDB: 50, Exponent: 3.0, ShadowSigmaDB: 4, Seed: 0xd15c0}
			rng := sim.NewRNG(42)
			pts := scatter(60, arena, rng.Stream(7))
			ch := mobility.NewChannel(inner, len(pts))
			sched := sim.NewScheduler()
			m := NewWithWorkers(sched, params, ch, pts, rng.Stream(1), 1)
			mg := mobility.New(spec, arena, m, rng.Stream(mobility.StreamLabel), ch)
			mg.Start()
			for epoch := 0; epoch < 30; epoch++ {
				if !sched.Step() {
					t.Fatal("scheduler drained early")
				}
				sparse, gridBacked := BuildDeliveries(params, ch, m.positions, 1)
				if !gridBacked {
					t.Fatal("expected the grid construction path")
				}
				requireListsEqual(t, "sparse oracle", m.deliveries, sparse)
				requireListsEqual(t, "dense oracle", m.deliveries, denseDeliveries(params, ch, m.positions))
			}
			if mg.Epochs != 30 {
				t.Fatalf("manager applied %d epochs, want 30", mg.Epochs)
			}
		})
	}
}

// TestIncrementalDensePath covers the unbounded-model fallback: a loss
// matrix has no range bound, so MoveNode must patch by full-row scan —
// here movement cannot change gains (the matrix ignores positions), so
// the patch must leave the lists exactly as built.
func TestIncrementalDensePath(t *testing.T) {
	params := phy.DefaultParams()
	n := 6
	mx := &radio.Matrix{LossDB: make([][]float64, n)}
	rng := sim.NewRNG(9)
	for a := 0; a < n; a++ {
		mx.LossDB[a] = make([]float64, n)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			// Mix audible and inaudible links around the delivery floor.
			l := 55 + 60*rng.Float64()
			mx.LossDB[a][b], mx.LossDB[b][a] = l, l
		}
	}
	pts := make([]geo.Point, n)
	sched := sim.NewScheduler()
	m := New(sched, params, mx, pts, sim.NewRNG(1))
	want := denseDeliveries(params, mx, pts)
	for i := 0; i < n; i++ {
		m.MoveNode(i, geo.Point{X: float64(i), Y: 2})
	}
	if m.mv.grid != nil {
		t.Fatal("matrix model must take the dense patch path")
	}
	requireListsEqual(t, "dense patch", m.deliveries, want)
}

// TestMoveNodePreservesInFlightFanout pins the snapshot invariant: a
// transmission that started before a move must deliver SignalEnd to the
// same receiver set SignalStart reached, even if the move pushed the
// receiver off the live delivery list mid-frame.
func TestMoveNodePreservesInFlightFanout(t *testing.T) {
	params := phy.DefaultParams()
	model := &radio.LogDistance{RefLossDB: 50, Exponent: 3.5}
	pts := []geo.Point{{X: 0, Y: 0}, {X: 10, Y: 0}}
	sched := sim.NewScheduler()
	m := New(sched, params, model, pts, sim.NewRNG(3))
	if len(m.deliveries[0]) != 1 {
		t.Fatalf("want an audible pair, got %d deliveries", len(m.deliveries[0]))
	}
	snapshot := m.deliveries[0]
	tx := m.acquireTx()
	*tx = phy.Transmission{TxID: 1, From: 0, Deliveries: m.deliveries[0]}
	// Move the receiver far out of range: the live list empties...
	m.MoveNode(1, geo.Point{X: 1e6, Y: 0})
	if len(m.deliveries[0]) != 0 {
		t.Fatalf("live list should be empty after the move, has %d", len(m.deliveries[0]))
	}
	// ...but the snapshot still names the original receiver set.
	if len(tx.Deliveries) != 1 || tx.Deliveries[0].Dst != snapshot[0].Dst ||
		math.Float64bits(tx.Deliveries[0].GainMW) != math.Float64bits(snapshot[0].GainMW) {
		t.Fatal("transmit-time snapshot was disturbed by MoveNode")
	}
}
