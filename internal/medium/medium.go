// Package medium implements the shared wireless channel: it places
// radios, computes the received power of every transmission at every
// other radio through the propagation model, and drives each radio's
// signal start/end callbacks in virtual time.
package medium

import (
	"fmt"

	"repro/internal/frame"
	"repro/internal/geo"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
)

// Medium is the air. It owns one radio per node and dispatches
// transmissions to every radio that can hear them.
type Medium struct {
	sched  *sim.Scheduler
	params phy.Params
	model  radio.Model

	positions []geo.Point
	radios    []*phy.Radio

	// gainMW[a][b] is the received power in mW at b when a transmits at
	// the common power; gainMW[a][a] is 0 (radios do not hear themselves).
	gainMW  [][]float64
	floorMW float64

	nextTxID uint64
	// Transmissions counts frames put on the air, for diagnostics.
	Transmissions uint64
}

// New builds a medium over the given node positions. Each node gets a
// radio whose decode randomness comes from a stream of rng.
func New(sched *sim.Scheduler, params phy.Params, model radio.Model, positions []geo.Point, rng *sim.RNG) *Medium {
	m := &Medium{
		sched:     sched,
		params:    params,
		model:     model,
		positions: append([]geo.Point(nil), positions...),
		floorMW:   radio.DBmToMW(params.DeliveryFloorDBm),
	}
	n := len(positions)
	m.radios = make([]*phy.Radio, n)
	for i := 0; i < n; i++ {
		m.radios[i] = phy.NewRadio(i, params, sched, rng.Stream(uint64(0x5ad10+i)), m)
	}
	m.gainMW = make([][]float64, n)
	for a := 0; a < n; a++ {
		m.gainMW[a] = make([]float64, n)
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			loss := model.Loss(a, positions[a], b, positions[b])
			m.gainMW[a][b] = radio.DBmToMW(params.TxPowerDBm - loss)
		}
	}
	return m
}

// NodeCount returns the number of nodes on the medium.
func (m *Medium) NodeCount() int { return len(m.radios) }

// Radio returns node i's transceiver.
func (m *Medium) Radio(i int) *phy.Radio { return m.radios[i] }

// Position returns node i's location.
func (m *Medium) Position(i int) geo.Point { return m.positions[i] }

// Scheduler returns the virtual clock driving this medium.
func (m *Medium) Scheduler() *sim.Scheduler { return m.sched }

// Params returns the PHY constants shared by all radios.
func (m *Medium) Params() phy.Params { return m.params }

// RxPowerDBm returns the power at which node "to" hears node "from", in
// dBm. Returns -inf for from == to.
func (m *Medium) RxPowerDBm(from, to int) float64 {
	if from == to {
		return radio.MWToDBm(0)
	}
	return radio.MWToDBm(m.gainMW[from][to])
}

// IsolationPRR returns the analytic packet reception ratio of the link
// from→to for a frame of wireBytes at rate r with no interference — the
// §5.1 "transmitting in isolation" measurement.
func (m *Medium) IsolationPRR(from, to int, r phy.Rate, wireBytes int) float64 {
	if from == to {
		return 0
	}
	return phy.IsolationPRR(m.params, r, m.RxPowerDBm(from, to), wireBytes)
}

// Transmit implements phy.Channel. It fans the frame out to every radio
// that receives it above the delivery floor and schedules the matching
// signal-end and transmitter-done events.
func (m *Medium) Transmit(from *phy.Radio, f frame.Frame, r phy.Rate) sim.Time {
	src := from.ID()
	if src < 0 || src >= len(m.radios) || m.radios[src] != from {
		panic(fmt.Sprintf("medium: transmit from unknown radio %d", src))
	}
	m.nextTxID++
	m.Transmissions++
	now := m.sched.Now()
	end := now + phy.Airtime(r, f.WireSize())
	txID := m.nextTxID
	for dst, g := range m.gainMW[src] {
		if g < m.floorMW || dst == src {
			continue
		}
		s := &phy.Signal{
			TxID:    txID,
			From:    src,
			Frame:   f,
			Rate:    r,
			PowerMW: g,
			Start:   now,
			End:     end,
		}
		rcv := m.radios[dst]
		rcv.SignalStart(s)
		m.sched.At(end, func() { rcv.SignalEnd(s) })
	}
	// Scheduled after the signal-end events so that, at equal deadlines,
	// receivers resolve their decodes before the sender's MAC reacts.
	m.sched.At(end, from.TxDone)
	return end
}
