package medium

import (
	"cmp"
	"fmt"
	"slices"

	"repro/internal/frame"
	"repro/internal/geo"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
)

// Medium is the air. It owns one radio per node and dispatches
// transmissions to every radio that can hear them.
type Medium struct {
	sched  *sim.Scheduler
	params phy.Params
	model  radio.Model

	positions []geo.Point
	radios    []*phy.Radio

	// deliveries[a] lists, in ascending receiver order, every node that
	// hears a above the delivery floor and the power it receives. The
	// ascending order is load-bearing: Transmit touches receivers in
	// list order, so list order is part of the deterministic event
	// sequence that golden traces pin down.
	deliveries [][]Delivery
	floorMW    float64
	gridBacked bool

	// txFree recycles Transmission objects: a transmission returns to
	// the list when its end fan-out completes, so steady-state traffic
	// reuses a small ring of them instead of allocating one per frame.
	txFree []*phy.Transmission

	nextTxID uint64
	// Transmissions counts frames put on the air, for diagnostics.
	Transmissions uint64

	// mv holds the incremental-update machinery (spatial grid, scratch
	// buffers); built lazily on the first MoveNode so static runs pay
	// nothing for it.
	mv *mover
}

// New builds a medium over the given node positions. Each node gets a
// radio whose decode randomness comes from a stream of rng. Delivery
// lists are built through a spatial grid whenever the model bounds its
// range (fanned across GOMAXPROCS workers — bit-identical to the serial
// build, see BuildDeliveries), and by exhaustive pairing otherwise.
func New(sched *sim.Scheduler, params phy.Params, model radio.Model, positions []geo.Point, rng *sim.RNG) *Medium {
	return NewWithWorkers(sched, params, model, positions, rng, 0)
}

// NewWithWorkers is New with an explicit construction worker count
// (<= 0 means GOMAXPROCS). The built medium is bit-identical at any
// worker count; the knob exists for benchmarks and equivalence tests.
func NewWithWorkers(sched *sim.Scheduler, params phy.Params, model radio.Model, positions []geo.Point, rng *sim.RNG, workers int) *Medium {
	m := newMedium(sched, params, model, positions, rng)
	m.deliveries, m.gridBacked = BuildDeliveries(params, model, positions, workers)
	return m
}

// NewDense builds an identical medium through the reference O(n²)
// construction that considers every ordered pair. It exists so tests can
// prove the grid-pruned construction loses nothing; simulations behave
// bit-identically on either.
func NewDense(sched *sim.Scheduler, params phy.Params, model radio.Model, positions []geo.Point, rng *sim.RNG) *Medium {
	m := newMedium(sched, params, model, positions, rng)
	m.deliveries = denseDeliveries(params, model, positions)
	return m
}

func newMedium(sched *sim.Scheduler, params phy.Params, model radio.Model, positions []geo.Point, rng *sim.RNG) *Medium {
	m := &Medium{
		sched:     sched,
		params:    params,
		model:     model,
		positions: append([]geo.Point(nil), positions...),
		floorMW:   radio.DBmToMW(params.DeliveryFloorDBm),
	}
	n := len(positions)
	m.radios = make([]*phy.Radio, n)
	for i := 0; i < n; i++ {
		m.radios[i] = phy.NewRadio(i, params, sched, rng.Stream(uint64(0x5ad10+i)), m)
	}
	return m
}

// gain returns the received power in mW at b when a transmits.
func (m *Medium) gain(a, b int) float64 {
	loss := m.model.Loss(a, m.positions[a], b, m.positions[b])
	return radio.DBmToMW(m.params.TxPowerDBm - loss)
}

// NodeCount returns the number of nodes on the medium.
func (m *Medium) NodeCount() int { return len(m.radios) }

// Radio returns node i's transceiver.
func (m *Medium) Radio(i int) *phy.Radio { return m.radios[i] }

// Position returns node i's location.
func (m *Medium) Position(i int) geo.Point { return m.positions[i] }

// Scheduler returns the virtual clock driving this medium.
func (m *Medium) Scheduler() *sim.Scheduler { return m.sched }

// Params returns the PHY constants shared by all radios.
func (m *Medium) Params() phy.Params { return m.params }

// GridBacked reports whether the delivery lists were built through the
// spatial grid (as opposed to the exhaustive pair scan).
func (m *Medium) GridBacked() bool { return m.gridBacked }

// NeighborCount returns how many receivers hear node i above the
// delivery floor.
func (m *Medium) NeighborCount(i int) int { return len(m.deliveries[i]) }

// ForEachNeighbor calls fn for every receiver that hears node i above
// the delivery floor, in ascending receiver order, with the power it
// receives in mW.
func (m *Medium) ForEachNeighbor(i int, fn func(dst int, gainMW float64)) {
	for _, d := range m.deliveries[i] {
		fn(d.Dst, d.GainMW)
	}
}

// lookupGain finds the stored delivery gain from→to, if to is audible.
func (m *Medium) lookupGain(from, to int) (float64, bool) {
	list := m.deliveries[from]
	k, ok := slices.BinarySearchFunc(list, to, func(d Delivery, dst int) int {
		return cmp.Compare(d.Dst, dst)
	})
	if ok {
		return list[k].GainMW, true
	}
	return 0, false
}

// GainMW returns the stored delivery-list gain from→to in mW and whether
// the link clears the delivery floor. It is the read-only view of the
// exact numbers Transmit fans out with, so consumers that reason about
// the medium (the analytic conflict-graph extractor) share one ground
// truth with the simulator instead of re-deriving gains from the model.
func (m *Medium) GainMW(from, to int) (float64, bool) {
	if from == to {
		return 0, false
	}
	return m.lookupGain(from, to)
}

// RxPowerDBm returns the power at which node "to" hears node "from", in
// dBm. Links below the delivery floor are recomputed from the model, so
// the answer matches the dense gain matrix exactly even for pairs the
// sparse lists do not store. Returns -inf for from == to.
func (m *Medium) RxPowerDBm(from, to int) float64 {
	if from == to {
		return radio.MWToDBm(0)
	}
	if g, ok := m.lookupGain(from, to); ok {
		return radio.MWToDBm(g)
	}
	return radio.MWToDBm(m.gain(from, to))
}

// IsolationPRR returns the analytic packet reception ratio of the link
// from→to for a frame of wireBytes at rate r with no interference — the
// §5.1 "transmitting in isolation" measurement.
func (m *Medium) IsolationPRR(from, to int, r phy.Rate, wireBytes int) float64 {
	if from == to {
		return 0
	}
	return phy.IsolationPRR(m.params, r, m.RxPowerDBm(from, to), wireBytes)
}

// acquireTx borrows a Transmission from the free list, allocating only
// when more transmissions overlap than ever before.
func (m *Medium) acquireTx() *phy.Transmission {
	if n := len(m.txFree); n > 0 {
		tx := m.txFree[n-1]
		m.txFree[n-1] = nil
		m.txFree = m.txFree[:n-1]
		return tx
	}
	return new(phy.Transmission)
}

// HandleEvent implements sim.EventHandler: the medium's two per-frame
// events arrive here. A *phy.Transmission is the end-of-signal fan-out
// for that transmission; a *phy.Radio is that sender's tx-done upcall.
// Transmit posts them in that order at the same deadline, so receivers
// resolve their decodes before the sender's MAC reacts (equal-deadline
// events fire in scheduling order).
func (m *Medium) HandleEvent(arg any) {
	switch v := arg.(type) {
	case *phy.Transmission:
		m.finishTransmission(v)
	case *phy.Radio:
		v.TxDone()
	default:
		panic(fmt.Sprintf("medium: unexpected event arg %T", arg))
	}
}

// finishTransmission delivers SignalEnd to every receiver of tx in the
// same ascending order SignalStart used, then recycles tx. The walk is
// over the transmit-time snapshot, not the live list: MoveNode patches
// lists copy-on-write, so the snapshot keeps SignalStart and SignalEnd
// pinned to one receiver set even while nodes move mid-frame.
func (m *Medium) finishTransmission(tx *phy.Transmission) {
	for _, d := range tx.Deliveries {
		m.radios[d.Dst].SignalEnd(tx)
	}
	tx.Frame = nil      // do not retain the MAC's frame past the air interval
	tx.Deliveries = nil // nor the delivery snapshot
	m.txFree = append(m.txFree, tx)
}

// Transmit implements phy.Channel. It fans the frame out to every radio
// on the sender's delivery list and posts one signal-end fan-out event
// plus the transmitter-done event — two heap-stored events per
// transmission, regardless of receiver count, and zero allocations in
// steady state.
func (m *Medium) Transmit(from *phy.Radio, f frame.Frame, r phy.Rate) sim.Time {
	src := from.ID()
	if src < 0 || src >= len(m.radios) || m.radios[src] != from {
		panic(fmt.Sprintf("medium: transmit from unknown radio %d", src))
	}
	m.nextTxID++
	m.Transmissions++
	now := m.sched.Now()
	end := now + phy.Airtime(r, f.WireSize())
	tx := m.acquireTx()
	*tx = phy.Transmission{
		TxID:  m.nextTxID,
		From:  src,
		Frame: f,
		Rate:  r,
		Start: now,
		End:   end,
		// Snapshot the delivery list (a slice header copy, no
		// allocation): the end fan-out must reach exactly this set even
		// if MoveNode patches the live list mid-frame.
		Deliveries: m.deliveries[src],
	}
	for _, d := range tx.Deliveries {
		m.radios[d.Dst].SignalStart(tx, d.GainMW)
	}
	// Signal-end fan-out first, then the sender's tx-done: at equal
	// deadlines, receivers resolve their decodes before the sender's
	// MAC reacts.
	m.sched.Post(end, m, tx)
	m.sched.Post(end, m, from)
	return end
}
