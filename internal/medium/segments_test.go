package medium

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/phy"
	"repro/internal/sim"
)

// These tests pin the segment-wise SINR integration of phy.Radio: the
// decode probability of a frame must reflect exactly the portions of its
// airtime that overlapped interference.

// marginalInterfererLoss positions an interferer so that, while it
// transmits, the victim's SINR sits in the PER waterfall: full overlap
// destroys the frame, no overlap leaves it clean, partial overlap is
// in between.
func partialOverlapSetup(t *testing.T, overlapFrac float64, seed uint64) (decoded bool) {
	t.Helper()
	// A(0)→B(1) at -60 dBm. I(2) is heard at B at -63 dBm: SINR ≈ 3 dB
	// during overlap → BER ≈ catastrophic for 1400 B; silent otherwise.
	m, recs, sched := testMedium(t, [][]float64{
		{0, 70, offAir},
		{70, 0, 73},
		{offAir, 73, 0},
	})
	_ = recs
	rate := phy.RateByID(phy.Rate6Mbps)
	f := dataFrame(0, 1)
	air := phy.Airtime(rate, f.WireSize())

	m.Radio(0).Transmit(f, rate)
	if overlapFrac > 0 {
		// Interferer transmits so that its frame covers the LAST
		// overlapFrac of A's frame (and beyond).
		start := sim.Time(float64(air) * (1 - overlapFrac))
		sched.At(start, func() {
			m.Radio(2).Transmit(dataFrame(2, 1), rate)
		})
	}
	sched.RunAll()
	return len(recs[1].frames) == 1
}

func TestSegmentsNoOverlapDecodes(t *testing.T) {
	if !partialOverlapSetup(t, 0, 1) {
		t.Error("clean frame failed to decode")
	}
}

func TestSegmentsFullOverlapDestroys(t *testing.T) {
	// Interference covering ~the whole frame: decode must fail.
	ok := 0
	for seed := uint64(1); seed <= 10; seed++ {
		if partialOverlapSetup(t, 0.99, seed) {
			ok++
		}
	}
	if ok > 0 {
		t.Errorf("decoded %d/10 frames under full-frame 3 dB interference", ok)
	}
}

func TestSegmentsTinyOverlapMostlySurvives(t *testing.T) {
	// Interference covering only the last 2% of the frame: the exposed
	// bits are few, so most frames survive. (This is the salvage physics
	// behind Figure 5: damage is confined to the overlapped span.)
	ok := 0
	for seed := uint64(1); seed <= 20; seed++ {
		if partialOverlapSetup(t, 0.02, seed) {
			ok++
		}
	}
	if ok < 8 {
		t.Errorf("only %d/20 frames survived a 2%% overlap; segmentation too pessimistic", ok)
	}
}

func TestSegmentsMonotoneInOverlap(t *testing.T) {
	// More overlap must never increase the survival count.
	survival := func(frac float64) int {
		ok := 0
		for seed := uint64(1); seed <= 20; seed++ {
			if partialOverlapSetup(t, frac, seed) {
				ok++
			}
		}
		return ok
	}
	prev := 21
	for _, frac := range []float64{0.02, 0.3, 0.7, 0.99} {
		got := survival(frac)
		if got > prev {
			t.Errorf("survival increased from %d to %d at overlap %.2f", prev, got, frac)
		}
		prev = got
	}
}

func TestFigure5HeaderTrailerSalvage(t *testing.T) {
	// The Figure 5 experiment in miniature: two equal-length virtual
	// packets (header + data + trailer as separate frames) collide with a
	// partial offset at a receiver that hears both at comparable power.
	// The header of the first and the trailer of the second (the
	// non-overlapped edges) survive far more often than the middles.
	m, recs, sched := testMedium(t, [][]float64{
		{0, 70, offAir},
		{70, 0, 71},
		{offAir, 71, 0},
	})
	rate := phy.RateByID(phy.Rate6Mbps)
	hdr := func(src int, seq uint32, trailer bool) *frame.Control {
		return &frame.Control{Trailer: trailer, Src: frame.AddrFromID(src),
			Dst: frame.AddrFromID(1), Seq: seq, TxTimeMicros: 4000}
	}
	burst := func(src int, at sim.Time, seq uint32) {
		// header → data → trailer back-to-back via chained scheduling.
		sched.At(at, func() {
			r := m.Radio(src)
			rec := recs[src]
			rec.hookTx = func(f frame.Frame) {
				switch f.(type) {
				case *frame.Control:
					if f.(*frame.Control).Trailer {
						return
					}
					r.Transmit(&frame.Data{Src: frame.AddrFromID(src),
						Dst: frame.AddrFromID(1), VSeq: seq, PayloadLen: 1400}, rate)
				case *frame.Data:
					r.Transmit(hdr(src, seq, true), rate)
				}
			}
			r.Transmit(hdr(src, seq, false), rate)
		})
	}
	headerA, trailerB := 0, 0
	const rounds = 30
	for i := 0; i < rounds; i++ {
		base := sim.Time(i) * 20 * sim.Millisecond
		burst(0, base, uint32(i))
		// Second burst starts mid-way through the first one's data frame.
		burst(2, base+900*sim.Microsecond, uint32(i))
	}
	sched.RunAll()
	for i, f := range recs[1].frames {
		if c, ok := f.(*frame.Control); ok {
			if !c.Trailer && recs[1].infos[i].From == 0 {
				headerA++
			}
			if c.Trailer && recs[1].infos[i].From == 2 {
				trailerB++
			}
		}
	}
	// The first sender's header flies before the collision starts; the
	// second sender's trailer flies after the first burst ended.
	if headerA < rounds*8/10 {
		t.Errorf("first sender's header survived only %d/%d collisions", headerA, rounds)
	}
	if trailerB < rounds*8/10 {
		t.Errorf("second sender's trailer survived only %d/%d collisions", trailerB, rounds)
	}
}
