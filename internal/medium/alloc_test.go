package medium

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/geo"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
)

// nopHandler is a phy.Handler that does nothing: the steady-state
// allocation measurements isolate the sim/phy/medium transmit path from
// whatever a MAC does with the decoded frames.
type nopHandler struct{}

func (nopHandler) OnFrame(frame.Frame, phy.RxInfo) {}
func (nopHandler) OnCorrupt(phy.RxInfo)            {}
func (nopHandler) OnTxDone(frame.Frame)            {}
func (nopHandler) OnCarrier(bool)                  {}

// steadyStateMedium builds a 4-node line where node 0's transmissions
// reach all three other radios at descending powers, so one frame
// exercises multi-receiver fan-out, preamble lock, SINR bookkeeping,
// and decode.
func steadyStateMedium() (*Medium, *sim.Scheduler) {
	sched := sim.NewScheduler()
	loss := [][]float64{
		{0, 70, 80, 95},
		{70, 0, 70, 80},
		{80, 70, 0, 70},
		{95, 80, 70, 0},
	}
	positions := make([]geo.Point, len(loss))
	m := New(sched, phy.DefaultParams(), &radio.Matrix{LossDB: loss}, positions, sim.NewRNG(1))
	for i := 0; i < m.NodeCount(); i++ {
		m.Radio(i).SetHandler(nopHandler{})
	}
	return m, sched
}

// TestTransmitSteadyStateZeroAllocs is the acceptance guard for the
// zero-allocation transmit hot path: once the scheduler's heap, the
// transmission free list, and the radios' active lists have warmed up,
// a transmit → fan-out → decode → tx-done cycle must not touch the
// allocator at all.
func TestTransmitSteadyStateZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	m, sched := steadyStateMedium()
	f := &frame.Dot11Data{Src: frame.AddrFromID(0), Dst: frame.AddrFromID(1), PayloadLen: 1400}
	rate := phy.RateByID(phy.Rate6Mbps)
	cycle := func() {
		m.Radio(0).Transmit(f, rate)
		sched.RunAll()
	}
	for i := 0; i < 64; i++ {
		cycle() // warm up every reusable buffer
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("steady-state transmission allocates %.1f objects per frame, want 0", allocs)
	}
}

// TestOverlappingTransmitZeroAllocs repeats the check with two
// overlapping transmissions per cycle, so the transmission free list
// and per-radio active lists are exercised past length 1.
func TestOverlappingTransmitZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	m, sched := steadyStateMedium()
	f0 := &frame.Dot11Data{Src: frame.AddrFromID(0), Dst: frame.AddrFromID(1), PayloadLen: 1400}
	f3 := &frame.Dot11Data{Src: frame.AddrFromID(3), Dst: frame.AddrFromID(2), PayloadLen: 1400}
	rate := phy.RateByID(phy.Rate6Mbps)
	cycle := func() {
		m.Radio(0).Transmit(f0, rate)
		m.Radio(3).Transmit(f3, rate)
		sched.RunAll()
	}
	for i := 0; i < 64; i++ {
		cycle()
	}
	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("overlapping transmissions allocate %.1f objects per cycle, want 0", allocs)
	}
}

// BenchmarkTransmitSteadyState measures one full transmission lifecycle
// through the hot path (B/op and allocs/op are the headline numbers).
func BenchmarkTransmitSteadyState(b *testing.B) {
	m, sched := steadyStateMedium()
	f := &frame.Dot11Data{Src: frame.AddrFromID(0), Dst: frame.AddrFromID(1), PayloadLen: 1400}
	rate := phy.RateByID(phy.Rate6Mbps)
	for i := 0; i < 64; i++ {
		m.Radio(0).Transmit(f, rate)
		sched.RunAll()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Radio(0).Transmit(f, rate)
		sched.RunAll()
	}
}
