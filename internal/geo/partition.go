package geo

import (
	"fmt"
	"sort"
)

// PartitionStrips assigns each point to one of k spatial shards by
// slicing the point set into k contiguous strips along the wider axis of
// its bounding box, balanced by population (each strip holds ⌊n/k⌋ or
// ⌈n/k⌉ points). Population balance beats geometric balance for a
// discrete-event engine: work is proportional to nodes, not area, and
// clustered layouts would otherwise starve most shards.
//
// The assignment is a total function of the point slice and k: points
// are ordered by (strip coordinate, cross coordinate, index), so
// coincident points — including points exactly on a would-be strip
// boundary — split deterministically, never ambiguously. Every point
// lands in exactly one shard; shards may be empty when k exceeds the
// number of distinct positions worth of population (callers must
// tolerate empty shards). k <= 0 or k > len(pts) with len(pts) == 0 is
// a caller bug and panics.
func PartitionStrips(pts []Point, k int) []int {
	if k <= 0 {
		panic(fmt.Sprintf("geo: PartitionStrips with k=%d", k))
	}
	n := len(pts)
	shard := make([]int, n)
	if n == 0 {
		return shard
	}
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	// Slice across the wider extent so strips stay as square as the
	// layout allows — shorter shared borders mean fewer boundary nodes.
	alongX := maxX-minX >= maxY-minY
	key := func(i int) (float64, float64) {
		if alongX {
			return pts[i].X, pts[i].Y
		}
		return pts[i].Y, pts[i].X
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		ka, ca := key(ia)
		kb, cb := key(ib)
		if ka != kb {
			return ka < kb
		}
		if ca != cb {
			return ca < cb
		}
		return ia < ib
	})
	for w := 0; w < k; w++ {
		for _, i := range order[w*n/k : (w+1)*n/k] {
			shard[i] = w
		}
	}
	return shard
}
