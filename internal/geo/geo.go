package geo

import (
	"fmt"
	"math"
)

// Point is a position on the floor plan, in metres.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q in metres.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Add returns p translated by (dx, dy).
func (p Point) Add(dx, dy float64) Point { return Point{p.X + dx, p.Y + dy} }

// String formats the point with centimetre precision.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Rect is an axis-aligned rectangle, used for floor and region bounds.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Center returns the midpoint of r.
func (r Rect) Center() Point { return Point{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2} }

// Contains reports whether p lies inside r (inclusive of edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// SplitX partitions r into n equal-width vertical slices, left to right.
// It is used to carve the testbed floor into access-point "regions" (§5.6).
func (r Rect) SplitX(n int) []Rect {
	if n <= 0 {
		return nil
	}
	out := make([]Rect, n)
	w := r.Width() / float64(n)
	for i := 0; i < n; i++ {
		out[i] = Rect{
			MinX: r.MinX + float64(i)*w,
			MinY: r.MinY,
			MaxX: r.MinX + float64(i+1)*w,
			MaxY: r.MaxY,
		}
	}
	return out
}

// GridLayout places n points on a jittered grid filling bounds. jitter is
// the maximum displacement from each grid vertex as a fraction of the cell
// size (0 = perfect grid, 0.5 = up to half a cell). rand must return
// uniform values in [0,1). The layout mimics offices along a corridor:
// roughly regular, never colinear.
func GridLayout(n int, bounds Rect, jitter float64, rand func() float64) []Point {
	if n <= 0 {
		return nil
	}
	// Choose a grid aspect close to the bounds aspect.
	aspect := bounds.Width() / bounds.Height()
	cols := int(math.Ceil(math.Sqrt(float64(n) * aspect)))
	if cols < 1 {
		cols = 1
	}
	rows := (n + cols - 1) / cols
	cw := bounds.Width() / float64(cols)
	ch := bounds.Height() / float64(rows)
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		r, c := i/cols, i%cols
		cx := bounds.MinX + (float64(c)+0.5)*cw
		cy := bounds.MinY + (float64(r)+0.5)*ch
		jx := (rand()*2 - 1) * jitter * cw
		jy := (rand()*2 - 1) * jitter * ch
		p := Point{cx + jx, cy + jy}
		// Clamp to bounds so a node never leaves the floor.
		p.X = math.Min(math.Max(p.X, bounds.MinX), bounds.MaxX)
		p.Y = math.Min(math.Max(p.Y, bounds.MinY), bounds.MaxY)
		pts = append(pts, p)
	}
	return pts
}
