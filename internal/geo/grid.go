package geo

import (
	"math"
	"slices"
)

// Grid is a uniform spatial hash over a point set. It answers "which
// points lie within radius r of point i" in time proportional to the
// population of the cells the query circle overlaps, which makes
// neighbour enumeration over n points O(n·k) at fixed density instead of
// O(n²). Construction buckets the initial point set into a compact CSR
// layout; Move re-buckets individual points afterwards (mobile nodes),
// switching the grid to mutable per-cell buckets on first use.
type Grid struct {
	pts        []Point
	minX, minY float64
	cell       float64
	cols, rows int
	// CSR layout: items[start[c]:start[c+1]] are the point indices in
	// cell c, in ascending index order. Dropped after the first Move in
	// favour of cells.
	start []int
	items []int
	// cells[c] holds cell c's point indices, ascending, once Move has
	// materialised the mutable representation; nil until then.
	cells [][]int
}

// NewGrid buckets pts into square cells of the given size. A non-positive
// or non-finite cell size collapses the grid to a single cell (every
// query then degenerates to a scan, which stays correct).
func NewGrid(pts []Point, cell float64) *Grid {
	g := &Grid{pts: pts, cell: cell, cols: 1, rows: 1}
	if len(pts) == 0 {
		g.start = []int{0, 0}
		return g
	}
	g.minX, g.minY = pts[0].X, pts[0].Y
	maxX, maxY := pts[0].X, pts[0].Y
	for _, p := range pts {
		g.minX = math.Min(g.minX, p.X)
		g.minY = math.Min(g.minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	if !(cell > 0) || math.IsInf(cell, 0) || math.IsNaN(cell) {
		g.cell = math.Max(math.Max(maxX-g.minX, maxY-g.minY), 1)
	}
	g.cols = int((maxX-g.minX)/g.cell) + 1
	g.rows = int((maxY-g.minY)/g.cell) + 1
	counts := make([]int, g.cols*g.rows+1)
	for _, p := range pts {
		counts[g.cellIndex(p)+1]++
	}
	for c := 1; c < len(counts); c++ {
		counts[c] += counts[c-1]
	}
	g.start = counts
	g.items = make([]int, len(pts))
	fill := make([]int, g.cols*g.rows)
	copy(fill, g.start[:len(g.start)-1])
	// Filling in point-index order keeps each cell's slice ascending.
	for i, p := range pts {
		c := g.cellIndex(p)
		g.items[fill[c]] = i
		fill[c]++
	}
	return g
}

// toCell converts a fractional cell coordinate to an index, saturating
// non-finite and out-of-range values so ±Inf radii stay well-defined.
func toCell(v float64) int {
	if math.IsNaN(v) || v < math.MinInt32 {
		return math.MinInt32
	}
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	return int(v)
}

// cellIndex maps a point to its (clamped) flat cell index.
func (g *Grid) cellIndex(p Point) int {
	cx := g.clampCol(int((p.X - g.minX) / g.cell))
	cy := g.clampRow(int((p.Y - g.minY) / g.cell))
	return cy*g.cols + cx
}

func (g *Grid) clampCol(c int) int {
	if c < 0 {
		return 0
	}
	if c >= g.cols {
		return g.cols - 1
	}
	return c
}

func (g *Grid) clampRow(r int) int {
	if r < 0 {
		return 0
	}
	if r >= g.rows {
		return g.rows - 1
	}
	return r
}

// Within calls visit(j) for every point j ≠ i whose distance to point i
// is at most radius. Visit order is cell-major, not globally sorted;
// callers needing a canonical order must sort what they collect.
func (g *Grid) Within(i int, radius float64, visit func(j int)) {
	p := g.pts[i]
	cx0 := g.clampCol(toCell((p.X - radius - g.minX) / g.cell))
	cx1 := g.clampCol(toCell((p.X + radius - g.minX) / g.cell))
	cy0 := g.clampRow(toCell((p.Y - radius - g.minY) / g.cell))
	cy1 := g.clampRow(toCell((p.Y + radius - g.minY) / g.cell))
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			for _, j := range g.bucket(cy*g.cols + cx) {
				if j != i && p.Dist(g.pts[j]) <= radius {
					visit(j)
				}
			}
		}
	}
}

// bucket returns cell c's point indices, ascending, from whichever
// representation is live.
func (g *Grid) bucket(c int) []int {
	if g.cells != nil {
		return g.cells[c]
	}
	return g.items[g.start[c]:g.start[c+1]]
}

// At returns point i's current position.
func (g *Grid) At(i int) Point { return g.pts[i] }

// Move updates point i to p, re-bucketing it if it crossed a cell
// boundary. The stored point slice is mutated in place (callers that
// must keep the construction-time positions pass NewGrid a copy). The
// grid's cell geometry is fixed at construction: points that move
// outside the original bounds clamp into the edge cells, which stays
// exact because cellIndex clamps identically on insert and on query and
// Within's final distance check rejects any false candidates — a point
// at unclamped column ≥ cols lands in column cols-1, and any query
// circle reaching it clamps its column range to cols-1 too.
func (g *Grid) Move(i int, p Point) {
	if g.cells == nil {
		// First move: materialise mutable buckets from the CSR arrays.
		g.cells = make([][]int, g.cols*g.rows)
		for c := range g.cells {
			if s := g.items[g.start[c]:g.start[c+1]]; len(s) > 0 {
				g.cells[c] = append([]int(nil), s...)
			}
		}
		g.start, g.items = nil, nil
	}
	oc := g.cellIndex(g.pts[i])
	g.pts[i] = p
	nc := g.cellIndex(p)
	if nc == oc {
		return
	}
	old := g.cells[oc]
	if k, ok := slices.BinarySearch(old, i); ok {
		g.cells[oc] = append(old[:k], old[k+1:]...)
	}
	now := g.cells[nc]
	k, _ := slices.BinarySearch(now, i)
	g.cells[nc] = slices.Insert(now, k, i)
}
