package geo

import (
	"math"
	"slices"
	"testing"
)

// FuzzGridRebucket drives random move sequences — zero-length moves,
// cell-boundary crossings, and far out-of-bounds jumps that exercise
// the edge-cell clamp — against a flat brute-force reference, checking
// Within after every move from several query points and radii.
func FuzzGridRebucket(f *testing.F) {
	f.Add([]byte{5, 2, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 1, 0, 0, 2, 127, 127, 3, 5, 5})
	f.Add([]byte("grid-rebucket-seed: crossings and clamps"))
	f.Add([]byte{4, 1, 0, 0, 0, 1, 1, 0, 1, 1, 0, 200, 200, 1, 200, 0, 2, 0, 0, 3, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		n := 4 + int(data[0])%12
		cell := 1 + float64(data[1]%8)
		data = data[2:]
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: float64(int8(next())), Y: float64(int8(next()))}
		}
		ref := append([]Point(nil), pts...)
		g := NewGrid(pts, cell) // g owns pts; ref is the flat model
		check := func(i int, radius float64) {
			var got []int
			g.Within(i, radius, func(j int) { got = append(got, j) })
			slices.Sort(got)
			var want []int
			for j := range ref {
				if j != i && ref[i].Dist(ref[j]) <= radius {
					want = append(want, j)
				}
			}
			if !slices.Equal(got, want) {
				t.Fatalf("Within(%d, %g) = %v, flat reference %v (points %v)", i, radius, got, want, ref)
			}
		}
		for len(data) >= 3 {
			i := int(next()) % n
			scale := 1.0
			if b := next(); b&1 == 1 {
				scale = 16 // jump far outside the construction bounds
			}
			p := Point{
				X: ref[i].X + scale*float64(int8(next()))/4,
				Y: ref[i].Y + scale*float64(int8(next()))/4,
			}
			g.Move(i, p)
			ref[i] = p
			if got := g.At(i); got != p {
				t.Fatalf("At(%d) = %v after Move to %v", i, got, p)
			}
			check(i, cell*1.5)
			check((i+1)%n, 3.7)
			check((i+3)%n, math.Inf(1))
		}
	})
}
