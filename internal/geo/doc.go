// Package geo provides the 2-D geometry under every topology: points
// in metres, rectangles, distances, office-floor layout helpers, and a
// uniform spatial grid for neighbour enumeration.
//
// # Relation to the paper
//
// The paper's testbed is a real office floor (§5.1, Figure 11); its
// simulated counterpart (internal/topo) places nodes with this
// package's primitives. The spatial grid (Grid) exists for the scaling
// work beyond the paper: it lets the sparse medium enumerate candidate
// receiver pairs in O(n·k) at fixed node density instead of O(n²),
// which is what carries the reproduction from 50 nodes to thousands.
package geo
