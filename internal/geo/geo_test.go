package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-2, 0}, Point{2, 0}, 4},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if math.IsNaN(ax) || math.IsNaN(ay) || math.IsNaN(bx) || math.IsNaN(by) {
			return true
		}
		a, b := Point{ax, ay}, Point{bx, by}
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{float64(ax), float64(ay)}
		b := Point{float64(bx), float64(by)}
		c := Point{float64(cx), float64(cy)}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectSplitX(t *testing.T) {
	r := Rect{0, 0, 60, 20}
	parts := r.SplitX(6)
	if len(parts) != 6 {
		t.Fatalf("SplitX(6) returned %d parts", len(parts))
	}
	for i, p := range parts {
		if math.Abs(p.Width()-10) > 1e-12 {
			t.Errorf("part %d width = %v, want 10", i, p.Width())
		}
		if p.Height() != 20 {
			t.Errorf("part %d height = %v, want 20", i, p.Height())
		}
	}
	if parts[0].MinX != 0 || parts[5].MaxX != 60 {
		t.Error("SplitX does not cover the full rect")
	}
	if got := r.SplitX(0); got != nil {
		t.Error("SplitX(0) should return nil")
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if !r.Contains(Point{5, 5}) || !r.Contains(Point{0, 0}) || !r.Contains(Point{10, 10}) {
		t.Error("Contains should include interior and edges")
	}
	if r.Contains(Point{11, 5}) || r.Contains(Point{5, -1}) {
		t.Error("Contains accepted an exterior point")
	}
}

func TestRectCenter(t *testing.T) {
	r := Rect{2, 4, 8, 10}
	c := r.Center()
	if c.X != 5 || c.Y != 7 {
		t.Errorf("Center() = %v, want (5,7)", c)
	}
}

func TestGridLayoutCountAndBounds(t *testing.T) {
	seq := 0
	rand := func() float64 { seq++; return float64(seq%97) / 97 }
	bounds := Rect{0, 0, 70, 30}
	for _, n := range []int{1, 7, 50, 128} {
		pts := GridLayout(n, bounds, 0.4, rand)
		if len(pts) != n {
			t.Fatalf("GridLayout(%d) returned %d points", n, len(pts))
		}
		for i, p := range pts {
			if !bounds.Contains(p) {
				t.Errorf("n=%d point %d %v outside bounds", n, i, p)
			}
		}
	}
	if GridLayout(0, bounds, 0.4, rand) != nil {
		t.Error("GridLayout(0) should return nil")
	}
}

func TestGridLayoutSpread(t *testing.T) {
	// With zero jitter no two points coincide, and points spread across
	// both halves of the floor.
	pts := GridLayout(50, Rect{0, 0, 70, 30}, 0, func() float64 { return 0.5 })
	left, right := 0, 0
	for i, p := range pts {
		for j := i + 1; j < len(pts); j++ {
			if p.Dist(pts[j]) < 1e-9 {
				t.Fatalf("points %d and %d coincide at %v", i, j, p)
			}
		}
		if p.X < 35 {
			left++
		} else {
			right++
		}
	}
	if left == 0 || right == 0 {
		t.Errorf("layout unbalanced: left=%d right=%d", left, right)
	}
}

func TestPointAddString(t *testing.T) {
	p := Point{1, 2}.Add(0.5, -0.5)
	if p.X != 1.5 || p.Y != 1.5 {
		t.Errorf("Add = %v", p)
	}
	if s := p.String(); s != "(1.50, 1.50)" {
		t.Errorf("String() = %q", s)
	}
}
