package geo

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestPartitionStripsEveryNodeExactlyOnce is the property test from the
// issue: over random layouts and shard counts, every node lands in
// exactly one shard, shard ids stay in [0, k), and populations are
// balanced to within one node.
func TestPartitionStripsEveryNodeExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(0x9a27))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		k := 1 + rng.Intn(12)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: rng.Float64() * 100, Y: rng.Float64() * 40}
		}
		shard := PartitionStrips(pts, k)
		if len(shard) != n {
			t.Fatalf("trial %d: %d assignments for %d points", trial, len(shard), n)
		}
		counts := make([]int, k)
		for i, s := range shard {
			if s < 0 || s >= k {
				t.Fatalf("trial %d: point %d assigned shard %d outside [0,%d)", trial, i, s, k)
			}
			counts[s]++
		}
		total, lo, hi := 0, n, 0
		for _, c := range counts {
			total += c
			if c < lo {
				lo = c
			}
			if c > hi {
				hi = c
			}
		}
		if total != n {
			t.Fatalf("trial %d: %d points assigned, want %d", trial, total, n)
		}
		if n >= k && hi-lo > 1 {
			t.Fatalf("trial %d: populations %v not balanced within 1", trial, counts)
		}
	}
}

// TestPartitionStripsBoundaryTies pins the determinism contract for
// nodes exactly on a strip boundary: coincident points split by index,
// and repeated calls agree bit-for-bit.
func TestPartitionStripsBoundaryTies(t *testing.T) {
	// Eight points stacked on two x-coordinates: with k=2 the strip
	// boundary falls exactly between populations of identical coords.
	pts := []Point{
		{X: 1, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 1, Y: 2},
		{X: 5, Y: 0}, {X: 5, Y: 1}, {X: 5, Y: 1}, {X: 5, Y: 2},
	}
	a := PartitionStrips(pts, 2)
	b := PartitionStrips(pts, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("repeated call disagrees at %d: %d vs %d", i, a[i], b[i])
		}
	}
	for i := 0; i < 4; i++ {
		if a[i] != 0 {
			t.Errorf("left-stack point %d in shard %d, want 0", i, a[i])
		}
		if a[4+i] != 1 {
			t.Errorf("right-stack point %d in shard %d, want 1", 4+i, a[4+i])
		}
	}

	// All points coincident: still a valid balanced partition (ties
	// break by index), never a crash or an out-of-range shard.
	same := make([]Point, 7)
	shard := PartitionStrips(same, 3)
	counts := make([]int, 3)
	for _, s := range shard {
		counts[s]++
	}
	if counts[0]+counts[1]+counts[2] != 7 {
		t.Fatalf("coincident points misassigned: %v", counts)
	}
}

// TestPartitionStripsMoreShardsThanNodes covers k greater than the
// occupied cell/node count: trailing shards are empty, leading shards
// hold one node each, nothing panics.
func TestPartitionStripsMoreShardsThanNodes(t *testing.T) {
	pts := []Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 20, Y: 0}}
	shard := PartitionStrips(pts, 8)
	seen := map[int]int{}
	for _, s := range shard {
		seen[s]++
	}
	for s, c := range seen {
		if c != 1 {
			t.Errorf("shard %d holds %d nodes, want at most 1 when k > n", s, c)
		}
	}
	if len(seen) != 3 {
		t.Errorf("%d occupied shards, want 3", len(seen))
	}
}

// TestPartitionStripsEmptyAndDegenerate covers the zero-node layout and
// the invalid-k panic.
func TestPartitionStripsEmptyAndDegenerate(t *testing.T) {
	if got := PartitionStrips(nil, 4); len(got) != 0 {
		t.Errorf("nil points: got %v, want empty", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	PartitionStrips([]Point{{X: 1, Y: 1}}, 0)
}

// TestPartitionStripsAxisChoice checks the wider-extent axis is the one
// sliced: a tall thin layout must split along Y.
func TestPartitionStripsAxisChoice(t *testing.T) {
	var pts []Point
	for i := 0; i < 10; i++ {
		pts = append(pts, Point{X: 0, Y: float64(i) * 10}) // 0..90 tall
		pts = append(pts, Point{X: 1, Y: float64(i) * 10}) // 1 wide
	}
	shard := PartitionStrips(pts, 2)
	// Split along Y: low-Y half in shard 0 regardless of X.
	for i, p := range pts {
		want := 0
		if p.Y >= 50 {
			want = 1
		}
		if shard[i] != want {
			t.Fatalf("point %d (%v) in shard %d, want %d (Y split)", i, p, shard[i], want)
		}
	}
}

func ExamplePartitionStrips() {
	pts := []Point{{X: 0, Y: 0}, {X: 30, Y: 0}, {X: 60, Y: 0}, {X: 90, Y: 0}}
	fmt.Println(PartitionStrips(pts, 2))
	// Output: [0 0 1 1]
}
