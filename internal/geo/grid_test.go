package geo

import (
	"math"
	"sort"
	"testing"
)

// splitmix is a tiny local PRNG; geo cannot import sim (sim is above it
// in no package order, but keep geo dependency-free regardless).
type splitmix uint64

func (s *splitmix) next() float64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return float64((z^(z>>31))>>11) / (1 << 53)
}

func randomPoints(n int, w, h float64, seed uint64) []Point {
	rng := splitmix(seed)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.next() * w, Y: rng.next() * h}
	}
	return pts
}

// bruteWithin is the reference the grid must agree with exactly.
func bruteWithin(pts []Point, i int, radius float64) []int {
	var out []int
	for j, q := range pts {
		if j != i && pts[i].Dist(q) <= radius {
			out = append(out, j)
		}
	}
	return out
}

func gridWithin(g *Grid, i int, radius float64) []int {
	var out []int
	g.Within(i, radius, func(j int) { out = append(out, j) })
	sort.Ints(out)
	return out
}

func TestGridMatchesBruteForce(t *testing.T) {
	for _, tc := range []struct {
		n         int
		w, h      float64
		cell, rad float64
		seed      uint64
	}{
		{n: 200, w: 100, h: 40, cell: 10, rad: 10},
		{n: 200, w: 100, h: 40, cell: 25, rad: 7.5},
		{n: 300, w: 1000, h: 1000, cell: 60, rad: 60},
		{n: 50, w: 5, h: 5, cell: 1, rad: 2.5},      // dense: many per cell
		{n: 64, w: 2000, h: 10, cell: 100, rad: 90}, // thin strip
	} {
		pts := randomPoints(tc.n, tc.w, tc.h, tc.seed+1)
		g := NewGrid(pts, tc.cell)
		for i := range pts {
			got := gridWithin(g, i, tc.rad)
			want := bruteWithin(pts, i, tc.rad)
			if len(got) != len(want) {
				t.Fatalf("case %+v node %d: grid found %d neighbours, brute force %d", tc, i, len(got), len(want))
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("case %+v node %d: neighbour set differs at %d: %d vs %d", tc, i, k, got[k], want[k])
				}
			}
		}
	}
}

func TestGridRadiusCoversEverything(t *testing.T) {
	pts := randomPoints(100, 50, 50, 7)
	g := NewGrid(pts, 10)
	for _, rad := range []float64{1e6, math.Inf(1)} {
		for i := range pts {
			if got := len(gridWithin(g, i, rad)); got != len(pts)-1 {
				t.Fatalf("radius %v from node %d reached %d of %d others", rad, i, got, len(pts)-1)
			}
		}
	}
}

func TestGridBoundaryInclusive(t *testing.T) {
	// Exactly-at-radius neighbours are included (<=, matching the
	// delivery-floor comparison in the medium).
	pts := []Point{{0, 0}, {3, 4}, {3.0001, 4}}
	g := NewGrid(pts, 2)
	got := gridWithin(g, 0, 5)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Within(0, 5) = %v, want [1]", got)
	}
}

func TestGridDegenerateInputs(t *testing.T) {
	// Empty set.
	g := NewGrid(nil, 5)
	_ = g
	// All points coincident: single cell, everything mutual.
	same := []Point{{2, 3}, {2, 3}, {2, 3}}
	g = NewGrid(same, 4)
	if got := gridWithin(g, 1, 0); len(got) != 2 {
		t.Fatalf("coincident points: %v, want both others at radius 0", got)
	}
	// Non-positive and non-finite cell sizes collapse to one cell but
	// still answer correctly.
	pts := randomPoints(40, 30, 30, 9)
	for _, cell := range []float64{0, -1, math.Inf(1), math.NaN()} {
		g := NewGrid(pts, cell)
		for i := 0; i < len(pts); i += 7 {
			got := gridWithin(g, i, 8)
			want := bruteWithin(pts, i, 8)
			if len(got) != len(want) {
				t.Fatalf("cell=%v node %d: %d neighbours, want %d", cell, i, len(got), len(want))
			}
		}
	}
	// Single point: no neighbours at any radius.
	g = NewGrid([]Point{{1, 1}}, 1)
	if got := gridWithin(g, 0, math.Inf(1)); len(got) != 0 {
		t.Fatalf("lone point has neighbours: %v", got)
	}
}
