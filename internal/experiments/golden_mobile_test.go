package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/mobility"
	"repro/internal/topo"
)

// The mobile golden trace extends the golden tier to moving nodes: the
// same fixed topologies as golden_seed1, replayed under each mobility
// model with shadowing re-draws, pinned bit-exactly. Any change to
// trajectory generation, the incremental medium patches, or the
// epoch-seeded shadowing channel shows up as a diff here. Regenerate
// deliberately with:
//
//	go test ./internal/experiments -run TestGoldenMobileTraces -update

// goldenMobileSeed is the single pinned seed — one seed × three models
// keeps the tier's cost proportionate to the static files.
const goldenMobileSeed = 1

// goldenMobileSpecs is the pinned movement matrix, one spec per model.
// RangeM keeps the sampled pairs connected; DecorrM exercises the
// shadowing channel on every model.
var goldenMobileSpecs = []mobility.Spec{
	{Kind: mobility.Waypoint, SpeedMps: 5, RangeM: 12, DecorrM: 10},
	{Kind: mobility.RandomWalk, SpeedMps: 2, RangeM: 12, DecorrM: 10},
	{Kind: mobility.Vehicular, SpeedMps: 15, DecorrM: 10},
}

// goldenMobileArms spans the protocol families most sensitive to stale
// state: both CMAP windows and the CSMA baseline.
var goldenMobileArms = []Protocol{CSMAOn, CMAP, CMAPWin1}

type goldenMobileRun struct {
	Topology string       `json:"topology"`
	Mobility string       `json:"mobility"`
	Arm      string       `json:"arm"`
	Flows    []goldenFlow `json:"flows"`
}

type goldenMobileFile struct {
	Seed       uint64            `json:"seed"`
	Nodes      int               `json:"nodes"`
	DurationNs int64             `json:"duration_ns"`
	WarmupNs   int64             `json:"warmup_ns"`
	Runs       []goldenMobileRun `json:"runs"`
}

func captureGoldenMobile(seed uint64) goldenMobileFile {
	opt := goldenOptions(seed)
	tb := topo.NewTestbed(opt.Nodes, seed)
	gf := goldenMobileFile{
		Seed:       seed,
		Nodes:      opt.Nodes,
		DurationNs: int64(opt.Duration),
		WarmupNs:   int64(opt.Warmup),
	}
	for ti, tp := range goldenTopologies(tb, seed) {
		for si, spec := range goldenMobileSpecs {
			for _, arm := range goldenMobileArms {
				ropt := opt
				ropt.Mobility = spec
				runSeed := seed + uint64(ti)*7919 + arm.seedSalt()*104729 + uint64(si)*15485863
				rs := runFlows(tb, tp.flows, arm, ropt, runSeed)
				run := goldenMobileRun{Topology: tp.name, Mobility: spec.String(), Arm: arm.String()}
				for _, fr := range rs {
					run.Flows = append(run.Flows, goldenFlow{
						Src:             fr.Link.Src,
						Dst:             fr.Link.Dst,
						MbpsBits:        fmt.Sprintf("%016x", math.Float64bits(fr.Mbps)),
						Mbps:            strconv.FormatFloat(fr.Mbps, 'g', -1, 64),
						VpktsSent:       fr.VpktsSent,
						VpktsHeader:     fr.VpktsHeader,
						VpktsHdrOrTrail: fr.VpktsHdrOrTrail,
					})
				}
				gf.Runs = append(gf.Runs, run)
			}
		}
	}
	return gf
}

func goldenMobilePath() string {
	return filepath.Join("testdata", fmt.Sprintf("golden_mobile_seed%d.json", goldenMobileSeed))
}

func TestGoldenMobileTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("golden tier runs via make golden, not the -short tier")
	}
	got := captureGoldenMobile(goldenMobileSeed)
	path := goldenMobilePath()
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d runs)", path, len(got.Runs))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no mobile golden trace (%v); run with -update to create it", err)
	}
	var want goldenMobileFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file %s: %v", path, err)
	}
	if len(got.Runs) != len(want.Runs) {
		t.Fatalf("captured %d runs, golden file has %d — topology availability drifted; "+
			"inspect and regenerate with -update", len(got.Runs), len(want.Runs))
	}
	for i := range want.Runs {
		w, g := want.Runs[i], got.Runs[i]
		if !reflect.DeepEqual(w, g) {
			t.Errorf("run %d (%s/%s/%s) drifted from the golden trace:\n  want %+v\n  got  %+v\n"+
				"simulation behaviour changed; if intentional, regenerate with -update",
				i, w.Topology, w.Mobility, w.Arm, w, g)
		}
	}
}
