package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/checkpoint"
	"repro/internal/geo"
	"repro/internal/mac"
	"repro/internal/medium"
	"repro/internal/mobility"
	"repro/internal/phy"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// FlowSim is one flow experiment held open: the same construction as
// runFlows / runTrafficFlows / runShardedFlows (identical RNG streams,
// identical event posting order, so an uninterrupted FlowSim reproduces
// those functions bit-exactly), but with every component reference
// retained so the simulation can be stopped at any virtual time, its
// complete state captured through Save, and a fresh process's skeleton
// overwritten back to that exact state through Resume. The batch runner
// functions stay untouched — they are the golden-trace path — and the
// conformance tests prove FlowSim tracks them.
//
// Checkpointing works by "rebuild skeleton, restore mutable state": the
// resuming process constructs a FlowSim from the same configuration
// (whatever that construction schedules or draws is discarded by the
// wholesale restore), then Resume overwrites the agenda, the radio and
// MAC state, the sources, and every recorder. A configuration hash
// stored in the checkpoint guards against resuming under a skeleton
// that differs.
type FlowSim struct {
	cfg       FlowSimConfig
	hash      string
	saturated bool

	// Exactly one engine is set: the serial scheduler+medium pair, or
	// the sharded engine (cfg.Shards > 1).
	sched *sim.Scheduler
	m     *medium.Medium
	eng   *shard.Engine
	// mg drives node movement when cfg.Mobility is active (serial only).
	mg *mobility.Manager

	senders   []mac.Node
	receivers []mac.Node
	order     []int // distinct node ids in construction order
	nodes     map[int]mac.Node
	meters    []*stats.Meter
	lats      []*stats.Latency
	sources   []*traffic.Source

	owners map[sim.EventHandler]ownerRef
	byKey  map[string]ownerRef
}

// ownerRef names one event-owning component for the agenda codec.
type ownerRef struct {
	key     string
	handler sim.EventHandler
	node    mac.Node          // set for MAC owners
	src     *traffic.Source   // set for source owners
	mob     *mobility.Manager // set for the mobility epoch owner
}

// FlowSimConfig fixes one run. Every field participates in the
// configuration hash, so a checkpoint only resumes into a skeleton
// built from an identical value (over an identical testbed).
type FlowSimConfig struct {
	// Arm is the MAC registry arm name.
	Arm Protocol
	// Flows are the sender→receiver pairs under test.
	Flows []topo.Link
	// Duration and Warmup mirror Options; Rate is the data bit-rate.
	Duration, Warmup sim.Time
	Rate             phy.RateID
	// Traffic selects the workload; the zero value is saturated.
	Traffic traffic.Spec
	// Shards > 1 runs the spatially sharded engine.
	Shards int
	// Trial selects the cmapsim microscope's RNG stream labels (per-flow
	// 100+i / 200+i for the stations, 300+i for the sources) instead of
	// the experiment harness's per-node 1000+id and per-flow 5000+i. The
	// two wirings are behaviourally identical; the labels differ for
	// historical reasons and both are pinned by golden output.
	Trial bool
	// Mobility moves nodes during the run; requires the serial engine.
	Mobility mobility.Spec
	// Seed is the run seed (runFlows' runSeed).
	Seed uint64
}

// flowSimHash is the hashed-configuration shape: FlowSimConfig plus the
// testbed identity (size, positions, channel parameters). The radio
// model is structural per scenario and covered by the positions/params.
type flowSimHash struct {
	Cfg    FlowSimConfig
	Nodes  int
	Pos    []geo.Point
	Params phy.Params
}

// flowSimState is the checkpoint payload: engine state (serial or
// sharded), then per-component states keyed or ordered exactly as the
// construction orders them.
type flowSimState struct {
	Sched    *sim.SchedulerState        `json:"sched,omitempty"`
	Medium   *medium.State              `json:"medium,omitempty"`
	Radios   []phy.RadioState           `json:"radios,omitempty"`
	Engine   *shard.EngineState         `json:"engine,omitempty"`
	Macs     map[string]json.RawMessage `json:"macs"`
	Sources  []json.RawMessage          `json:"sources,omitempty"`
	Meters   []stats.MeterState         `json:"meters"`
	Lats     []stats.LatencyState       `json:"lats,omitempty"`
	Mobility *mobility.State            `json:"mobility,omitempty"`
}

// NewFlowSim builds the simulation. The construction sequence — stream
// derivations, node creation order, event posts — replicates the batch
// runners exactly, which is what makes both the fresh run and the
// resume skeleton bit-faithful.
func NewFlowSim(tb *topo.Testbed, cfg FlowSimConfig) (*FlowSim, error) {
	arm, err := mac.Lookup(string(cfg.Arm))
	if err != nil {
		return nil, err
	}
	fs := &FlowSim{
		cfg:       cfg,
		hash:      checkpoint.ConfigHash(flowSimHash{Cfg: cfg, Nodes: tb.N, Pos: tb.Pos, Params: tb.Params}),
		saturated: cfg.Traffic.Kind == traffic.Saturated,
		nodes:     map[int]mac.Node{},
		owners:    map[sim.EventHandler]ownerRef{},
		byKey:     map[string]ownerRef{},
	}
	rng := sim.NewRNG(cfg.Seed)
	if cfg.Shards > 1 {
		if cfg.Mobility.Active() {
			return nil, fmt.Errorf("experiments: mobility requires the serial engine (set Shards <= 1)")
		}
		pairs := make([][2]int, len(cfg.Flows))
		for i, f := range cfg.Flows {
			pairs[i] = [2]int{f.Src, f.Dst}
		}
		fs.eng = shard.NewEngine(tb.Params, tb.Model, tb.Pos, rng.Stream(1), shard.Config{
			Shards: cfg.Shards,
			Flows:  pairs,
		})
	} else {
		// Mirror buildMedium exactly — same model wrapping, same stream
		// labels, same Start point before any MAC exists — so a FlowSim
		// stays bit-faithful to the batch runners under mobility too.
		model := tb.Model
		var ch *mobility.Channel
		if cfg.Mobility.Active() && cfg.Mobility.DecorrM > 0 {
			ch = mobility.NewChannel(tb.Model, tb.N)
			model = ch
		}
		fs.sched = sim.NewScheduler()
		fs.m = tb.BuildWith(fs.sched, rng.Stream(1), model)
		fs.addOwner(ownerRef{key: "medium", handler: fs.m})
		if cfg.Mobility.Active() {
			fs.mg = mobility.New(cfg.Mobility, tb.Bounds, fs.m, rng.Stream(mobility.StreamLabel), ch)
			fs.addOwner(ownerRef{key: "mobility", handler: fs.mg, mob: fs.mg})
			fs.mg.Start()
		}
	}
	network := func(id int) mac.Network {
		if fs.eng != nil {
			return fs.eng.Network(id)
		}
		return fs.m
	}
	schedOf := func(id int) *sim.Scheduler {
		if fs.eng != nil {
			return fs.eng.SchedulerOf(id)
		}
		return fs.sched
	}

	n := len(cfg.Flows)
	fs.senders = make([]mac.Node, n)
	fs.receivers = make([]mac.Node, n)
	fs.meters = make([]*stats.Meter, n)
	if !fs.saturated {
		fs.lats = make([]*stats.Latency, n)
		fs.sources = make([]*traffic.Source, n)
	}
	window := stats.Window{Start: cfg.Warmup, End: cfg.Duration}

	mkShared := func(id int) mac.Node {
		if nd, ok := fs.nodes[id]; ok {
			return nd
		}
		nd := arm.New(id, network(id), rng.Stream(uint64(1000+id)), mac.Options{Rate: cfg.Rate})
		fs.registerNode(id, nd)
		return nd
	}
	mkTrial := func(id int, stream uint64) (mac.Node, error) {
		if _, ok := fs.nodes[id]; ok {
			return nil, fmt.Errorf("experiments: node %d appears in two flows; the trial wiring builds one station per endpoint", id)
		}
		nd := arm.New(id, network(id), rng.Stream(stream), mac.Options{Rate: cfg.Rate})
		fs.registerNode(id, nd)
		return nd, nil
	}

	for i, f := range cfg.Flows {
		if cfg.Trial {
			tx, err := mkTrial(f.Src, uint64(100+i))
			if err != nil {
				return nil, err
			}
			rx, err := mkTrial(f.Dst, uint64(200+i))
			if err != nil {
				return nil, err
			}
			fs.senders[i], fs.receivers[i] = tx, rx
		} else {
			fs.senders[i] = mkShared(f.Src)
			fs.receivers[i] = mkShared(f.Dst)
		}
		fs.meters[i] = &stats.Meter{Start: cfg.Warmup, End: cfg.Duration}
		fs.receivers[i].SetMeter(fs.meters[i])
		if fs.saturated {
			fs.senders[i].SetSaturated(f.Dst)
			continue
		}
		fs.lats[i] = &stats.Latency{W: window}
		fs.receivers[i].SetOnDeliver(fs.deliver(i, f.Src))
		srcStream := uint64(5000 + i)
		if cfg.Trial {
			srcStream = uint64(300 + i)
		}
		src := traffic.NewSource(schedOf(f.Src), rng.Stream(srcStream), cfg.Traffic, fs.senders[i], f.Dst)
		src.EnableLatency(fs.senders[i].LatencyWindow())
		fs.sources[i] = src
		fs.addOwner(ownerRef{key: "src:" + strconv.Itoa(i), handler: src, src: src})
		src.Start()
	}
	return fs, nil
}

// deliver wires flow i's non-duplicate deliveries back to arrival times
// — the same closure every batch runner builds.
func (fs *FlowSim) deliver(i, wantSrc int) mac.DeliverFunc {
	return func(src int, seq uint32, now sim.Time) {
		if src != wantSrc {
			return
		}
		if at, ok := fs.sources[i].ArrivalTime(seq); ok {
			fs.lats[i].Record(now, now-at)
		}
	}
}

func (fs *FlowSim) registerNode(id int, nd mac.Node) {
	fs.nodes[id] = nd
	fs.order = append(fs.order, id)
	if h, ok := nd.(sim.EventHandler); ok {
		fs.addOwner(ownerRef{key: "mac:" + strconv.Itoa(id), handler: h, node: nd})
	}
}

func (fs *FlowSim) addOwner(ref ownerRef) {
	fs.owners[ref.handler] = ref
	fs.byKey[ref.key] = ref
}

// Run advances the simulation to the given virtual time. Repeated calls
// resume where the last one stopped.
func (fs *FlowSim) Run(until sim.Time) {
	if fs.eng != nil {
		fs.eng.Run(until)
		return
	}
	fs.sched.Run(until)
}

// Now returns the simulation clock.
func (fs *FlowSim) Now() sim.Time {
	if fs.eng != nil {
		return fs.eng.Now()
	}
	return fs.sched.Now()
}

// Window returns the sharded engine's synchronization window, or zero
// for a serial simulation. A multi-shard simulation can only checkpoint
// at multiples of this window (see AlignCheckpoint).
func (fs *FlowSim) Window() sim.Time {
	if fs.eng != nil && fs.eng.Shards() > 1 {
		return fs.eng.Window()
	}
	return 0
}

// AlignCheckpoint rounds t up to the nearest legal checkpoint instant:
// any time for a serial simulation, the next window edge for a
// multi-shard one.
func (fs *FlowSim) AlignCheckpoint(t sim.Time) sim.Time {
	w := fs.Window()
	if w <= 0 || t%w == 0 {
		return t
	}
	return (t/w + 1) * w
}

// ConfigHash returns the configuration fingerprint stamped into every
// checkpoint this simulation saves.
func (fs *FlowSim) ConfigHash() string { return fs.hash }

// Sender returns flow i's sending station; Meter, Source and Lat return
// the flow's recorders (Source and Lat are nil under saturated load).
func (fs *FlowSim) Sender(i int) mac.Node    { return fs.senders[i] }
func (fs *FlowSim) Meter(i int) *stats.Meter { return fs.meters[i] }

func (fs *FlowSim) Source(i int) *traffic.Source {
	if fs.sources == nil {
		return nil
	}
	return fs.sources[i]
}

func (fs *FlowSim) Lat(i int) *stats.Latency {
	if fs.lats == nil {
		return nil
	}
	return fs.lats[i]
}

// Results extracts per-flow outcomes exactly as the batch runners do.
func (fs *FlowSim) Results() []FlowResult {
	results := make([]FlowResult, len(fs.cfg.Flows))
	for i, f := range fs.cfg.Flows {
		results[i] = FlowResult{Link: f, Mbps: fs.meters[i].Mbps()}
		if !fs.saturated {
			st := fs.sources[i].Stats()
			results[i].OfferedPkts = st.Offered
			results[i].AcceptedPkts = st.Accepted
			results[i].DroppedPkts = st.Dropped
			results[i].DeliveredPkts = fs.meters[i].Packets()
			results[i].Lat = fs.lats[i]
		}
		if sv, ok := fs.senders[i].(mac.Visibility); ok {
			_, hdr, hot := fs.receivers[i].(mac.Visibility).FlowCounters(f.Src)
			results[i].VpktsSent = sv.VpktsSent()
			results[i].VpktsHeader = hdr
			results[i].VpktsHdrOrTrail = hot
		}
	}
	return results
}

// checkpointer returns the node's checkpoint surface or a typed error —
// an arm registered without one can run but not checkpoint.
func nodeCheckpointer(id int, nd mac.Node) (mac.Checkpointer, error) {
	ck, ok := nd.(mac.Checkpointer)
	if !ok {
		return nil, fmt.Errorf("experiments: arm node %d (%T) does not implement mac.Checkpointer; this arm cannot checkpoint", id, nd)
	}
	return ck, nil
}

// encode translates one agenda event to (owner key, encoded arg) — the
// sim.EncodeFunc for this simulation's component set.
func (fs *FlowSim) encode(target sim.EventHandler, arg any) (string, json.RawMessage, error) {
	ref, ok := fs.owners[target]
	if !ok {
		return "", nil, fmt.Errorf("experiments: agenda event owned by unknown handler %T", target)
	}
	switch {
	case ref.node != nil:
		ck, err := nodeCheckpointer(ref.node.ID(), ref.node)
		if err != nil {
			return "", nil, err
		}
		enc, err := ck.EncodeEventArg(arg)
		return ref.key, enc, err
	case ref.src != nil:
		enc, err := ref.src.EncodeEventArg(arg)
		return ref.key, enc, err
	case ref.mob != nil:
		enc, err := ref.mob.EncodeEventArg(arg)
		return ref.key, enc, err
	default: // the serial medium
		enc, err := fs.m.EncodeEventArg(arg)
		return ref.key, enc, err
	}
}

// decode inverts encode against the reconstructed skeleton. txs is the
// serial transmission registry the medium's fan-out events materialise
// into; the sharded engine keeps per-shard registries internally and
// never routes the "medium" key here.
func (fs *FlowSim) decode(txs map[uint64]*phy.Transmission) sim.DecodeFunc {
	return func(owner string, enc json.RawMessage) (sim.EventHandler, any, error) {
		ref, ok := fs.byKey[owner]
		if !ok {
			return nil, nil, fmt.Errorf("experiments: checkpoint event has unknown owner %q", owner)
		}
		switch {
		case ref.node != nil:
			ck, err := nodeCheckpointer(ref.node.ID(), ref.node)
			if err != nil {
				return nil, nil, err
			}
			arg, err := ck.DecodeEventArg(enc)
			return ref.handler, arg, err
		case ref.src != nil:
			arg, err := ref.src.DecodeEventArg(enc)
			return ref.handler, arg, err
		case ref.mob != nil:
			arg, err := ref.mob.DecodeEventArg(enc)
			return ref.handler, arg, err
		default:
			arg, err := fs.m.DecodeEventArg(enc, txs)
			return ref.handler, arg, err
		}
	}
}

// exportState captures the complete simulation.
func (fs *FlowSim) exportState() (*flowSimState, error) {
	st := &flowSimState{
		Macs:   map[string]json.RawMessage{},
		Meters: make([]stats.MeterState, len(fs.meters)),
	}
	if fs.eng != nil {
		es, err := fs.eng.ExportState(fs.encode)
		if err != nil {
			return nil, err
		}
		st.Engine = &es
	} else {
		ss, err := fs.sched.ExportState(fs.encode)
		if err != nil {
			return nil, err
		}
		st.Sched = &ss
		ms := fs.m.ExportState()
		st.Medium = &ms
		st.Radios = make([]phy.RadioState, fs.m.NodeCount())
		for i := 0; i < fs.m.NodeCount(); i++ {
			rs, err := fs.m.Radio(i).ExportState()
			if err != nil {
				return nil, err
			}
			st.Radios[i] = rs
		}
		if fs.mg != nil {
			ms := fs.mg.ExportState()
			st.Mobility = &ms
		}
	}
	for _, id := range fs.order {
		ck, err := nodeCheckpointer(id, fs.nodes[id])
		if err != nil {
			return nil, err
		}
		enc, err := ck.ExportState()
		if err != nil {
			return nil, fmt.Errorf("experiments: node %d: %w", id, err)
		}
		st.Macs[strconv.Itoa(id)] = enc
	}
	for _, src := range fs.sources {
		enc, err := src.ExportState()
		if err != nil {
			return nil, err
		}
		st.Sources = append(st.Sources, enc)
	}
	for i, m := range fs.meters {
		st.Meters[i] = m.State()
	}
	for _, l := range fs.lats {
		st.Lats = append(st.Lats, l.State())
	}
	return st, nil
}

// restoreState overwrites the skeleton with a captured state, in
// dependency order: the agenda first (decoding materialises the
// in-flight transmission set and the receive-flow objects), then the
// channel and radios resolved against it, then every component's
// mutable state (MAC restores re-point their timers against the
// restored slot generations).
func (fs *FlowSim) restoreState(st *flowSimState) error {
	if fs.eng != nil {
		if st.Engine == nil {
			return fmt.Errorf("experiments: checkpoint holds a serial simulation, this skeleton is sharded")
		}
		if err := fs.eng.RestoreState(*st.Engine, fs.decode(nil)); err != nil {
			return err
		}
	} else {
		if st.Sched == nil || st.Medium == nil {
			return fmt.Errorf("experiments: checkpoint holds a sharded simulation, this skeleton is serial")
		}
		txs := map[uint64]*phy.Transmission{}
		if err := fs.sched.RestoreState(*st.Sched, fs.decode(txs)); err != nil {
			return err
		}
		fs.m.RestoreState(*st.Medium)
		if len(st.Radios) != fs.m.NodeCount() {
			return fmt.Errorf("experiments: checkpoint has %d radios, testbed has %d", len(st.Radios), fs.m.NodeCount())
		}
		for i, rs := range st.Radios {
			err := fs.m.Radio(i).RestoreState(rs, func(txID uint64) (*phy.Transmission, error) {
				tx, ok := txs[txID]
				if !ok {
					return nil, fmt.Errorf("experiments: radio %d references transmission %d with no agenda event", i, txID)
				}
				return tx, nil
			})
			if err != nil {
				return err
			}
		}
		switch {
		case fs.mg != nil && st.Mobility == nil:
			return fmt.Errorf("experiments: checkpoint has no mobility state but the skeleton is mobile")
		case fs.mg == nil && st.Mobility != nil:
			return fmt.Errorf("experiments: checkpoint has mobility state but the skeleton is static")
		case fs.mg != nil:
			if err := fs.mg.RestoreState(*st.Mobility); err != nil {
				return err
			}
		}
	}
	for _, id := range fs.order {
		enc, ok := st.Macs[strconv.Itoa(id)]
		if !ok {
			return fmt.Errorf("experiments: checkpoint has no state for node %d", id)
		}
		ck, err := nodeCheckpointer(id, fs.nodes[id])
		if err != nil {
			return err
		}
		if err := ck.RestoreState(enc); err != nil {
			return fmt.Errorf("experiments: node %d: %w", id, err)
		}
	}
	if len(st.Sources) != len(fs.sources) {
		return fmt.Errorf("experiments: checkpoint has %d sources, skeleton %d", len(st.Sources), len(fs.sources))
	}
	for i, enc := range st.Sources {
		if err := fs.sources[i].RestoreState(enc); err != nil {
			return fmt.Errorf("experiments: source %d: %w", i, err)
		}
	}
	if len(st.Meters) != len(fs.meters) {
		return fmt.Errorf("experiments: checkpoint has %d meters, skeleton %d", len(st.Meters), len(fs.meters))
	}
	for i, ms := range st.Meters {
		fs.meters[i].Restore(ms)
	}
	if len(st.Lats) != len(fs.lats) {
		return fmt.Errorf("experiments: checkpoint has %d latency recorders, skeleton %d", len(st.Lats), len(fs.lats))
	}
	for i, ls := range st.Lats {
		fs.lats[i].Restore(ls)
	}
	return nil
}

// Save writes a checkpoint of the complete in-flight simulation. A
// multi-shard simulation must be at a window edge (AlignCheckpoint);
// the engine rejects any other cut.
func (fs *FlowSim) Save(w io.Writer) error {
	st, err := fs.exportState()
	if err != nil {
		return err
	}
	return checkpoint.Save(w, fs.hash, st)
}

// SaveFile writes a checkpoint atomically to path.
func (fs *FlowSim) SaveFile(path string) error {
	st, err := fs.exportState()
	if err != nil {
		return err
	}
	return checkpoint.SaveFile(path, fs.hash, st)
}

// Resume overwrites this freshly constructed skeleton with the state in
// r. The checkpoint must carry this simulation's configuration hash;
// see internal/checkpoint for the typed error contract. On any error
// the simulation must be discarded — a partial restore is not a state.
func (fs *FlowSim) Resume(r io.Reader) error {
	payload, err := checkpoint.Load(r, fs.hash)
	if err != nil {
		return err
	}
	var st flowSimState
	if err := json.Unmarshal(payload, &st); err != nil {
		return fmt.Errorf("%w: payload: %v", checkpoint.ErrCorrupt, err)
	}
	return fs.restoreState(&st)
}

// ResumeFile reads a checkpoint from path into this skeleton.
func (fs *FlowSim) ResumeFile(path string) error {
	payload, err := checkpoint.LoadFile(path, fs.hash)
	if err != nil {
		return err
	}
	var st flowSimState
	if err := json.Unmarshal(payload, &st); err != nil {
		return fmt.Errorf("%w: payload: %v", checkpoint.ErrCorrupt, err)
	}
	return fs.restoreState(&st)
}
