package experiments

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// shardedTestOptions is a short-run configuration sized so the full
// serial-vs-sharded comparison matrix stays in test time, with enough
// post-warmup window that goodput is not quantization noise.
func shardedTestOptions(shards int) Options {
	opt := Quick(1)
	opt.Duration = 300 * sim.Millisecond
	opt.Warmup = 50 * sim.Millisecond
	opt.Shards = shards
	return opt
}

// shardedTestFlows samples non-overlapping potential-link flows spread
// across the testbed (same shape as the shard package's own harness).
func shardedTestFlows(tb *topo.Testbed, seed uint64, count int) []topo.Link {
	rng := sim.NewRNG(seed)
	pairs := tb.InRangePairs(rng, count)
	var flows []topo.Link
	used := map[int]bool{}
	for _, p := range pairs {
		for _, l := range []topo.Link{p.A, p.B} {
			if used[l.Src] || used[l.Dst] {
				continue
			}
			used[l.Src], used[l.Dst] = true, true
			flows = append(flows, l)
		}
	}
	return flows
}

// TestShardedRunFlowsEquivalence pins the Options.Shards plumbing end to
// end through runFlows: shards=1 must be bit-identical to the serial
// path (same goodput to the last bit), and shards>1 must stay at
// figure-level equivalence — per-flow within 30% or 0.25 Mb/s, aggregate
// within 15% — exactly the bound the shard package proves for its own
// harness.
func TestShardedRunFlowsEquivalence(t *testing.T) {
	tb := topo.NewTestbed(50, 11)
	flows := shardedTestFlows(tb, 23, 4)
	if len(flows) < 2 {
		t.Fatalf("only %d flows sampled", len(flows))
	}
	const seed = 0xfeed
	ref := runFlows(tb, flows, CSMAOn, shardedTestOptions(0), seed)
	var refAgg float64
	for _, r := range ref {
		refAgg += r.Mbps
	}

	t.Run("shards=1", func(t *testing.T) {
		// Shards<=1 stays on the serial path in runFlows, so call the
		// sharded runner directly: one shard must be the serial engine.
		got := runShardedFlows(tb, flows, CSMAOn, shardedTestOptions(1), seed)
		for i := range ref {
			if got[i].Mbps != ref[i].Mbps {
				t.Fatalf("flow %d: sharded %.9f Mb/s, serial %.9f Mb/s", i, got[i].Mbps, ref[i].Mbps)
			}
		}
	})

	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			got := runFlows(tb, flows, CSMAOn, shardedTestOptions(shards), seed)
			var agg float64
			for i := range ref {
				agg += got[i].Mbps
				diff := got[i].Mbps - ref[i].Mbps
				if diff < 0 {
					diff = -diff
				}
				if diff > 0.30*ref[i].Mbps && diff > 0.25 {
					t.Errorf("flow %d: sharded %.3f Mb/s vs serial %.3f Mb/s", i, got[i].Mbps, ref[i].Mbps)
				}
			}
			if aggDiff := agg - refAgg; aggDiff > 0.15*refAgg || -aggDiff > 0.15*refAgg {
				t.Errorf("aggregate: sharded %.3f Mb/s vs serial %.3f Mb/s", agg, refAgg)
			}
		})
	}
}

// TestShardedRunFlowsDeterminism pins run-to-run determinism of the
// experiments-level sharded path at a fixed shard count.
func TestShardedRunFlowsDeterminism(t *testing.T) {
	tb := topo.NewTestbed(50, 5)
	flows := shardedTestFlows(tb, 31, 4)
	opt := shardedTestOptions(3)
	a := runFlows(tb, flows, CMAP, opt, 0xd5)
	b := runFlows(tb, flows, CMAP, opt, 0xd5)
	for i := range a {
		if a[i].Mbps != b[i].Mbps || a[i].VpktsSent != b[i].VpktsSent {
			t.Fatalf("flow %d differs across identical runs: %.9f/%d vs %.9f/%d",
				i, a[i].Mbps, a[i].VpktsSent, b[i].Mbps, b[i].VpktsSent)
		}
	}
}

// TestShardedTrafficFlows covers the arrival-process workload on the
// sharded engine: at one shard the Poisson run is bit-identical to the
// serial traffic path (sources share the MAC's scheduler and draw the
// same streams), and at shards>1 it is deterministic and still delivers.
func TestShardedTrafficFlows(t *testing.T) {
	tb := topo.NewTestbed(50, 11)
	flows := shardedTestFlows(tb, 23, 4)
	mkOpt := func(shards int) Options {
		opt := shardedTestOptions(shards)
		opt.Traffic = traffic.Spec{Kind: traffic.Poisson}.WithOfferedMbps(2.0, 1400)
		return opt
	}
	const seed = 0xace
	ref := runFlows(tb, flows, CSMAOn, mkOpt(0), seed)

	t.Run("shards=1", func(t *testing.T) {
		got := runShardedFlows(tb, flows, CSMAOn, mkOpt(1), seed)
		for i := range ref {
			if got[i].Mbps != ref[i].Mbps ||
				got[i].OfferedPkts != ref[i].OfferedPkts ||
				got[i].AcceptedPkts != ref[i].AcceptedPkts ||
				got[i].DeliveredPkts != ref[i].DeliveredPkts {
				t.Fatalf("flow %d: sharded %.9f Mb/s (%d/%d/%d pkts) vs serial %.9f Mb/s (%d/%d/%d pkts)",
					i, got[i].Mbps, got[i].OfferedPkts, got[i].AcceptedPkts, got[i].DeliveredPkts,
					ref[i].Mbps, ref[i].OfferedPkts, ref[i].AcceptedPkts, ref[i].DeliveredPkts)
			}
		}
	})

	t.Run("shards=2", func(t *testing.T) {
		a := runFlows(tb, flows, CSMAOn, mkOpt(2), seed)
		b := runFlows(tb, flows, CSMAOn, mkOpt(2), seed)
		var delivered uint64
		for i := range a {
			delivered += a[i].DeliveredPkts
			if a[i].Mbps != b[i].Mbps || a[i].DeliveredPkts != b[i].DeliveredPkts {
				t.Fatalf("flow %d differs across identical runs", i)
			}
		}
		if delivered == 0 {
			t.Fatal("no packets delivered through the sharded traffic path")
		}
	})
}
