package experiments

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

// equivOptions is deliberately tiny: equivalence is exact, so the scale
// only needs to cover every experiment code path, not produce statistics.
func equivOptions(seed uint64) Options {
	opt := Quick(seed)
	opt.Duration = 3 * sim.Second
	opt.Warmup = 1 * sim.Second
	opt.Pairs = 3
	opt.Triples = 6
	opt.APRuns = 2
	opt.Meshes = 2
	if testing.Short() {
		opt.Duration = 2 * sim.Second
		opt.Warmup = 1 * sim.Second
		opt.Pairs = 2
		opt.Triples = 4
		opt.APRuns = 1
		opt.Meshes = 1
	}
	return opt
}

// TestSerialParallelEquivalence is the runner's core guarantee: with a
// fixed base seed, the experiment output is bit-identical at 1, 4 and 16
// workers — per-flow results included, not just aggregates.
func TestSerialParallelEquivalence(t *testing.T) {
	t.Parallel()
	tb := testbed(t, 3)
	serial := equivOptions(3)
	serial.Workers = 1
	wantPair := ExposedTerminals(tb, serial)
	wantMesh := Mesh(tb, serial)
	wantAP := AccessPoint(tb, serial)
	wantSweep := HeaderTrailerVsSenders(tb, serial)
	wantInterf := HiddenInterferers(tb, serial)

	for _, workers := range []int{4, 16} {
		opt := equivOptions(3)
		opt.Workers = workers

		gotPair := ExposedTerminals(tb, opt)
		for _, arm := range wantPair.Arms {
			if !reflect.DeepEqual(wantPair.Dists[arm].Values(), gotPair.Dists[arm].Values()) {
				t.Errorf("workers=%d: arm %v aggregate values differ\nserial  %v\nparallel %v",
					workers, arm, wantPair.Dists[arm].Values(), gotPair.Dists[arm].Values())
			}
			if !reflect.DeepEqual(wantPair.Flows[arm], gotPair.Flows[arm]) {
				t.Errorf("workers=%d: arm %v per-flow results differ", workers, arm)
			}
		}

		gotMesh := Mesh(tb, opt)
		if !reflect.DeepEqual(wantMesh.CMAP.Values(), gotMesh.CMAP.Values()) ||
			!reflect.DeepEqual(wantMesh.CSMA.Values(), gotMesh.CSMA.Values()) {
			t.Errorf("workers=%d: mesh scores differ", workers)
		}

		gotAP := AccessPoint(tb, opt)
		if !reflect.DeepEqual(wantAP.Mean, gotAP.Mean) || !reflect.DeepEqual(wantAP.Std, gotAP.Std) {
			t.Errorf("workers=%d: AP means/stds differ", workers)
		}
		for arm := range wantAP.PerSender {
			if !reflect.DeepEqual(wantAP.PerSender[arm].Values(), gotAP.PerSender[arm].Values()) {
				t.Errorf("workers=%d: AP per-sender values differ for arm %v", workers, arm)
			}
		}

		if got := HeaderTrailerVsSenders(tb, opt); !reflect.DeepEqual(wantSweep, got) {
			t.Errorf("workers=%d: sender-sweep points differ\nserial  %+v\nparallel %+v", workers, wantSweep, got)
		}

		if got := HiddenInterferers(tb, opt); !reflect.DeepEqual(wantInterf, got) {
			t.Errorf("workers=%d: hidden-interferer results differ", workers)
		}
	}
}

// TestProgressCoversAllTrials checks the runner's progress plumbing
// through an experiment: the final callback reports (total, total).
func TestProgressCoversAllTrials(t *testing.T) {
	t.Parallel()
	opt := equivOptions(4)
	opt.Workers = 4
	var lastDone, lastTotal int
	opt.Progress = func(done, total int) { lastDone, lastTotal = done, total }
	ex := ExposedTerminals(testbed(t, 4), opt)
	wantTrials := len(ex.Flows[CMAP]) * len(ex.Arms)
	if lastTotal != wantTrials || lastDone != wantTrials {
		t.Errorf("final progress = (%d, %d), want (%d, %d)", lastDone, lastTotal, wantTrials, wantTrials)
	}
}
