package experiments

import (
	"encoding/json"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Campaign resume for the sweep experiments: each (load × pair × arm)
// trial is an independent simulation whose seed is a pure function of
// its key, so a killed sweep restarted over the same campaign directory
// re-runs only the missing trials and folds the recorded results back
// in — the final figure is bit-identical to an uninterrupted run.

// flowResultState is FlowResult in manifest form. Mbps round-trips
// exactly through JSON (shortest-representation float encoding); the
// latency recorder goes through its explicit checkpoint state because
// its samples are unexported.
type flowResultState struct {
	Link            topo.Link           `json:"link"`
	Mbps            float64             `json:"mbps"`
	VpktsSent       uint64              `json:"vpkts_sent,omitempty"`
	VpktsHeader     uint64              `json:"vpkts_header,omitempty"`
	VpktsHdrOrTrail uint64              `json:"vpkts_hdr_or_trail,omitempty"`
	OfferedPkts     uint64              `json:"offered,omitempty"`
	AcceptedPkts    uint64              `json:"accepted,omitempty"`
	DroppedPkts     uint64              `json:"dropped,omitempty"`
	DeliveredPkts   uint64              `json:"delivered,omitempty"`
	Lat             *stats.LatencyState `json:"lat,omitempty"`
}

// encodeFlowResults converts one trial's results to manifest form.
func encodeFlowResults(rs []FlowResult) []flowResultState {
	out := make([]flowResultState, len(rs))
	for i, r := range rs {
		out[i] = flowResultState{
			Link:            r.Link,
			Mbps:            r.Mbps,
			VpktsSent:       r.VpktsSent,
			VpktsHeader:     r.VpktsHeader,
			VpktsHdrOrTrail: r.VpktsHdrOrTrail,
			OfferedPkts:     r.OfferedPkts,
			AcceptedPkts:    r.AcceptedPkts,
			DroppedPkts:     r.DroppedPkts,
			DeliveredPkts:   r.DeliveredPkts,
		}
		if r.Lat != nil {
			st := r.Lat.State()
			out[i].Lat = &st
		}
	}
	return out
}

// decodeFlowResults inverts encodeFlowResults.
func decodeFlowResults(raw json.RawMessage) ([]FlowResult, error) {
	var sts []flowResultState
	if err := json.Unmarshal(raw, &sts); err != nil {
		return nil, fmt.Errorf("experiments: recorded trial result: %w", err)
	}
	out := make([]FlowResult, len(sts))
	for i, st := range sts {
		out[i] = FlowResult{
			Link:            st.Link,
			Mbps:            st.Mbps,
			VpktsSent:       st.VpktsSent,
			VpktsHeader:     st.VpktsHeader,
			VpktsHdrOrTrail: st.VpktsHdrOrTrail,
			OfferedPkts:     st.OfferedPkts,
			AcceptedPkts:    st.AcceptedPkts,
			DroppedPkts:     st.DroppedPkts,
			DeliveredPkts:   st.DeliveredPkts,
		}
		if st.Lat != nil {
			l := &stats.Latency{}
			l.Restore(*st.Lat)
			out[i].Lat = l
		}
	}
	return out, nil
}

// resumableMap runs the trial function for every key not yet recorded
// in the campaign, returning the full result slice in key order. Trials
// whose seeds are pure functions of their index make this safe: the
// missing subset runs with exactly the randomness it would have had in
// a full run. A nil campaign degrades to a plain runner.Map. Recorded
// results that fail to decode are re-run rather than trusted.
func resumableMap(camp *checkpoint.Campaign, pool runner.Config, keys []string, run func(t int) []FlowResult) ([][]FlowResult, error) {
	trials := make([][]FlowResult, len(keys))
	var missing []int
	for t, key := range keys {
		if camp != nil {
			if raw, ok := camp.Done(key); ok {
				if rs, err := decodeFlowResults(raw); err == nil {
					trials[t] = rs
					continue
				}
			}
		}
		missing = append(missing, t)
	}
	// Each worker records its trial the moment it finishes (Campaign is
	// concurrency-safe), so a kill mid-sweep loses at most the trials
	// still in flight. Workers write only their own errs slot.
	errs := make([]error, len(missing))
	ran := runner.Map(pool, len(missing), func(j int) []FlowResult {
		rs := run(missing[j])
		if camp != nil {
			errs[j] = camp.Complete(keys[missing[j]], encodeFlowResults(rs))
		}
		return rs
	})
	for j, t := range missing {
		if errs[j] != nil {
			return nil, errs[j]
		}
		trials[t] = ran[j]
	}
	return trials, nil
}

// OfferedLoadCampaign is OfferedLoad with per-(load × pair × arm) crash
// recovery: completed trials are recorded in the campaign manifest as
// they finish, and a restarted sweep replays them from the manifest
// instead of the simulator. camp may be nil (no recording). The figure
// is bit-identical to OfferedLoad in every case.
func OfferedLoadCampaign(tb *topo.Testbed, topology string, loads []float64, opt Options, camp *checkpoint.Campaign) (*LoadSweep, error) {
	return offeredLoad(tb, topology, loads, opt, camp)
}
