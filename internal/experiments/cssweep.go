package experiments

import (
	"fmt"
	"strings"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// The carrier-sense threshold sweep is the repo's own figure (no paper
// counterpart): it quantifies the tradeoff CMAP sidesteps. A blinder
// threshold frees exposed pairs to transmit concurrently, but strips
// hidden-leaning pairs of what little energy-sensing protection they
// had. Sweeping the cs@<dBm> arm family across both pair classes makes
// the tension visible as two crossing curves and one knee.

// DefaultCSThresholds spans from "senses everything above the noise
// floor" (−96 dBm) to "defers to almost nothing" (−78 dBm) in 3 dB
// steps, bracketing the 802.11 default of −90 dBm.
var DefaultCSThresholds = []float64{-96, -93, -90, -87, -84, -81, -78}

// CSSweepPoint is one threshold position: the goodput distributions of
// the same exposed and hidden pair samples under cs@<ThresholdDBm>.
type CSSweepPoint struct {
	ThresholdDBm float64
	Arm          Protocol
	Exposed      *stats.Dist // aggregate Mb/s per exposed pair
	Hidden       *stats.Dist // aggregate Mb/s per hidden pair
}

// Combined is the point's scalar score: the sum of the two class
// medians, weighting needless serialisation and collision damage
// equally.
func (p CSSweepPoint) Combined() float64 {
	return p.Exposed.Median() + p.Hidden.Median()
}

// CSSweepResult is the full sweep plus the flagged knee.
type CSSweepResult struct {
	Points []CSSweepPoint
	// KneeDBm is the blindest threshold whose Combined() score stays
	// within kneeTolerance of the sweep's best: how far sensing can be
	// relaxed for free before hidden-pair collision damage outruns the
	// exposed-pair concurrency gains.
	KneeDBm float64
}

// kneeTolerance is the fractional combined-score slack the knee search
// allows: thresholds scoring within 2% of the best are considered
// equivalent, and the blindest of them is the knee.
const kneeTolerance = 0.02

// Knee returns the point at KneeDBm.
func (r *CSSweepResult) Knee() CSSweepPoint {
	for _, p := range r.Points {
		if p.ThresholdDBm == r.KneeDBm {
			return p
		}
	}
	return CSSweepPoint{}
}

// CSThresholdSweep measures every threshold arm over one exposed and one
// hidden pair sample. All (pair, threshold) trials are independent and
// fan out across the worker pool; each threshold's arm carries its own
// seed salt, so trials are decorrelated across sweep positions exactly
// like protocol arms are in the pair experiments.
func CSThresholdSweep(tb *topo.Testbed, opt Options, thresholds []float64) *CSSweepResult {
	if len(thresholds) == 0 {
		thresholds = DefaultCSThresholds
	}
	// The same pair samples Figures 12 and 15 use, so the sweep's curves
	// are directly comparable with the protocol-arm figures.
	exposed := tb.ExposedPairs(sim.NewRNG(opt.Seed^0xf16), opt.Pairs)
	hidden := tb.HiddenPairs(sim.NewRNG(opt.Seed^0xf15), opt.Pairs)
	pairs := append(append([]topo.LinkPair{}, exposed...), hidden...)

	arms := make([]Protocol, len(thresholds))
	for i, thr := range thresholds {
		arms[i] = CSAt(thr)
	}
	trials := runner.Map(opt.pool(), len(pairs)*len(arms), func(t int) float64 {
		i, arm := t/len(arms), arms[t%len(arms)]
		flows := []topo.Link{pairs[i].A, pairs[i].B}
		rs := runFlows(tb, flows, arm, opt, opt.Seed+uint64(i)*7919+arm.seedSalt()*104729)
		return aggregate(rs)
	})

	res := &CSSweepResult{}
	best := -1.0
	for j, thr := range thresholds {
		p := CSSweepPoint{
			ThresholdDBm: thr,
			Arm:          arms[j],
			Exposed:      &stats.Dist{},
			Hidden:       &stats.Dist{},
		}
		for i := range pairs {
			agg := trials[i*len(arms)+j]
			if i < len(exposed) {
				p.Exposed.Add(agg)
			} else {
				p.Hidden.Add(agg)
			}
		}
		res.Points = append(res.Points, p)
		if c := p.Combined(); c > best {
			best = c
		}
	}
	// The knee: the blindest threshold still scoring within tolerance of
	// the best. Points arrive in caller order, so scan by dBm explicitly.
	knee, found := 0.0, false
	for _, p := range res.Points {
		if p.Combined() < best*(1-kneeTolerance) {
			continue
		}
		if !found || p.ThresholdDBm > knee {
			knee = p.ThresholdDBm
			found = true
		}
	}
	res.KneeDBm = knee
	return res
}

// Format renders the sweep as a threshold table with the knee flagged —
// the textual stand-in for the two-curve tradeoff plot.
func (r *CSSweepResult) Format() string {
	var b strings.Builder
	b.WriteString("Goodput vs carrier-sense threshold (median aggregate Mb/s)\n")
	fmt.Fprintf(&b, "%-12s%10s%10s%10s\n", "threshold", "exposed", "hidden", "combined")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-12s%10.2f%10.2f%10.2f", string(p.Arm),
			p.Exposed.Median(), p.Hidden.Median(), p.Combined())
		if p.ThresholdDBm == r.KneeDBm {
			b.WriteString("   <- knee")
		}
		b.WriteString("\n")
	}
	k := r.Knee()
	fmt.Fprintf(&b, "knee at %g dBm: exposed %.2f, hidden %.2f Mb/s — relaxing sensing past this point costs more on hidden pairs than it gains on exposed ones\n",
		r.KneeDBm, k.Exposed.Median(), k.Hidden.Median())
	return b.String()
}
