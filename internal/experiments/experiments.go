package experiments

import (
	"fmt"
	"strings"

	"repro/internal/mac"
	"repro/internal/medium"
	"repro/internal/mobility"
	"repro/internal/phy"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"

	// The protocol packages register their arms with internal/mac from
	// init; experiments resolves them by name only.
	_ "repro/internal/core"
	_ "repro/internal/csma"
)

// Protocol names one arm from the internal/mac registry. Its value IS
// the registry name, so any registered arm — including cs@<dBm> family
// members — can enter any experiment.
type Protocol string

// The protocol arms of §5. The CSMA arms are 802.11 DCF with the
// carrier-sense and link-ACK switches the paper toggles; CMAP and
// CMAPWin1 are the conflict-map link layer with Nwindow 8 and 1;
// RTSCTS is DCF with the RTS/CTS handshake and NAV virtual carrier
// sense.
const (
	CSMAOn        Protocol = "csma" // "CS, acks" — the status quo
	CSMAOnNoAcks  Protocol = "csma-noack"
	CSMAOffAcks   Protocol = "csma-nocs"       // "CS off, acks"
	CSMAOffNoAcks Protocol = "csma-nocs-noack" // "CS off, no acks"
	CMAP          Protocol = "cmap"
	CMAPWin1      Protocol = "cmap1" // CMAP with a send window of one virtual packet
	RTSCTS        Protocol = "rtscts"
)

// CSAt returns the carrier-sense-threshold family member at thr dBm
// (e.g. CSAt(-82) == Protocol("cs@-82")).
func CSAt(thr float64) Protocol {
	return Protocol(fmt.Sprintf("cs@%g", thr))
}

// String returns the label used in the paper's figure legends.
func (p Protocol) String() string {
	if a, err := mac.Lookup(string(p)); err == nil {
		return a.Label()
	}
	return string(p)
}

// seedSalt is the arm's pinned per-trial seed offset. The legacy arms
// keep the integer values Protocol had when it was an enum, so every
// golden trace recorded before the registry existed stays bit-identical.
func (p Protocol) seedSalt() uint64 {
	return mac.MustLookup(string(p)).SeedSalt()
}

// ParseArms resolves a comma-separated list of registry arm names
// (e.g. "csma,cmap,rtscts,cs@-82") against the MAC registry.
func ParseArms(s string) ([]Protocol, error) {
	var out []Protocol
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, err := mac.Lookup(name); err != nil {
			return nil, err
		}
		out = append(out, Protocol(name))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: no arms in %q", s)
	}
	return out, nil
}

// Options scales the experiments. The zero value is unusable; use
// Defaults (paper-exact) or Quick (CI-sized).
type Options struct {
	// Seed drives topology generation, selection and all protocol
	// randomness. The same seed reproduces identical numbers.
	Seed uint64
	// Nodes is the testbed size (the paper's is 50).
	Nodes int
	// Duration is one run's virtual time; Warmup is how much of its start
	// is excluded from measurement. The paper runs 100 s and measures the
	// last 60 s.
	Duration, Warmup sim.Time
	// Pairs is the number of topologies per experiment (the paper uses 50
	// link pairs, 500 interferer triples, 10 AP runs per N, 10 meshes).
	Pairs int
	// Triples is the §5.4 sample count.
	Triples int
	// APRuns is the number of runs per access-point count.
	APRuns int
	// Meshes is the number of §5.7 topologies.
	Meshes int
	// Rate is the common data bit-rate.
	Rate phy.RateID
	// Workers is the number of goroutines trials fan out across. Zero
	// selects GOMAXPROCS; one forces fully serial execution. Results are
	// bit-identical at every worker count: all randomness is derived
	// from per-trial seeds fixed before dispatch.
	Workers int
	// Progress, when non-nil, is called after each completed trial of
	// an experiment with (done, total) counts.
	Progress func(done, total int)
	// Traffic selects the arrival model experiment flows are driven by.
	// The zero value is the saturated (always-backlogged) workload of
	// the paper's methodology; any other kind routes runs through
	// per-flow traffic.Sources with finite backlogs and per-packet
	// latency measurement.
	Traffic traffic.Spec
	// Arms, when non-empty, overrides the arm set of every experiment
	// that compares protocols (pair figures, the offered-load sweep, the
	// analytic screen). Empty keeps each figure's paper-default arms.
	Arms []Protocol
	// Shards partitions each single simulation spatially across that
	// many event-loop goroutines (internal/shard). 0 and 1 keep the
	// serial reference engine — the golden-trace path. Counts above 1
	// are deterministic for a fixed count but figure-level rather than
	// bit-level equivalent to serial: cross-shard signals arrive one
	// lookahead window late. Orthogonal to Workers, which parallelizes
	// across independent trials.
	Shards int
	// Mobility moves nodes during each run (internal/mobility),
	// patching the medium's delivery lists incrementally per position
	// epoch. The zero value keeps every scenario static — the
	// golden-trace path. Mobility requires the serial engine: the
	// spatial shard partition is computed from initial positions, so
	// combining it with Shards > 1 panics.
	Mobility mobility.Spec
}

// armsOr returns opt.Arms if set, else the figure's default arm list.
func (o Options) armsOr(def []Protocol) []Protocol {
	if len(o.Arms) > 0 {
		return o.Arms
	}
	return def
}

// pool returns the runner configuration these options describe.
func (o Options) pool() runner.Config {
	return runner.Config{Workers: o.Workers, OnProgress: o.Progress}
}

// Defaults returns the paper-exact scale: 100-second runs measured over
// the last 60 seconds, 50 topologies per experiment.
func Defaults(seed uint64) Options {
	return Options{
		Seed:     seed,
		Nodes:    50,
		Duration: 100 * sim.Second,
		Warmup:   40 * sim.Second,
		Pairs:    50,
		Triples:  500,
		APRuns:   10,
		Meshes:   10,
		Rate:     phy.Rate6Mbps,
	}
}

// Quick returns a scaled-down configuration for tests and benchmarks:
// the same protocol dynamics over shorter runs and fewer topologies.
func Quick(seed uint64) Options {
	return Options{
		Seed:     seed,
		Nodes:    50,
		Duration: 12 * sim.Second,
		Warmup:   6 * sim.Second,
		Pairs:    10,
		Triples:  60,
		APRuns:   3,
		Meshes:   4,
		Rate:     phy.Rate6Mbps,
	}
}

// FlowResult is one sender→receiver flow's outcome in a run.
type FlowResult struct {
	Link topo.Link
	Mbps float64
	// CMAP-only visibility counters (Figures 16 and 19): virtual packets
	// the sender transmitted, and of those, how many the receiver saw a
	// header / a header-or-trailer for.
	VpktsSent       uint64
	VpktsHeader     uint64
	VpktsHdrOrTrail uint64
	// Traffic-mode measurements, populated only when Options.Traffic is
	// not saturated: arrival-process counters and per-packet delivery
	// latency inside the measurement window (nil otherwise).
	OfferedPkts   uint64
	AcceptedPkts  uint64
	DroppedPkts   uint64
	DeliveredPkts uint64
	Lat           *stats.Latency
}

// HeaderFrac returns the fraction of transmitted virtual packets whose
// header the receiver decoded.
func (r FlowResult) HeaderFrac() float64 {
	if r.VpktsSent == 0 {
		return 0
	}
	return float64(r.VpktsHeader) / float64(r.VpktsSent)
}

// HdrOrTrailFrac returns the fraction of transmitted virtual packets for
// which the receiver decoded the header or the trailer.
func (r FlowResult) HdrOrTrailFrac() float64 {
	if r.VpktsSent == 0 {
		return 0
	}
	return float64(r.VpktsHdrOrTrail) / float64(r.VpktsSent)
}

// runFlows runs the given unicast flows over a fresh build of the
// testbed under one protocol arm and returns per-flow goodput (and
// CMAP visibility counters). The saturated default drives every sender
// fully backlogged, exactly as before the traffic subsystem existed;
// any other Options.Traffic kind dispatches to the arrival-process
// path, which additionally measures drops and per-packet latency.
func runFlows(tb *topo.Testbed, flows []topo.Link, p Protocol, opt Options, runSeed uint64) []FlowResult {
	if opt.Shards > 1 {
		if opt.Mobility.Active() {
			panic("experiments: mobility requires the serial engine (set Shards <= 1)")
		}
		return runShardedFlows(tb, flows, p, opt, runSeed)
	}
	if opt.Traffic.Kind != traffic.Saturated {
		return runTrafficFlows(tb, flows, p, opt, runSeed)
	}
	sched := sim.NewScheduler()
	rng := sim.NewRNG(runSeed)
	m, _ := buildMedium(tb, opt, sched, rng)
	meters := make([]*stats.Meter, len(flows))
	results := make([]FlowResult, len(flows))

	arm := mac.MustLookup(string(p))
	senders := make([]mac.Node, len(flows))
	receivers := make([]mac.Node, len(flows))
	nodes := map[int]mac.Node{}
	mk := func(id int) mac.Node {
		if n, ok := nodes[id]; ok {
			return n
		}
		n := arm.New(id, m, rng.Stream(uint64(1000+id)), mac.Options{Rate: opt.Rate})
		nodes[id] = n
		return n
	}
	for i, f := range flows {
		senders[i] = mk(f.Src)
		receivers[i] = mk(f.Dst)
		meters[i] = &stats.Meter{Start: opt.Warmup, End: opt.Duration}
		receivers[i].SetMeter(meters[i])
		senders[i].SetSaturated(f.Dst)
	}
	sched.Run(opt.Duration)
	for i, f := range flows {
		results[i] = FlowResult{Link: f, Mbps: meters[i].Mbps()}
		if sv, ok := senders[i].(mac.Visibility); ok {
			_, hdr, hot := receivers[i].(mac.Visibility).FlowCounters(f.Src)
			results[i].VpktsSent = sv.VpktsSent()
			results[i].VpktsHeader = hdr
			results[i].VpktsHdrOrTrail = hot
		}
	}
	return results
}

// buildMedium builds one run's medium and, when opt.Mobility is
// active, the started mobility manager driving it. The construction
// order preserves the static seed discipline exactly — the medium
// always consumes rng.Stream(1), the manager its own StreamLabel
// stream, and stream derivation never disturbs the parent — so a
// static spec reproduces pre-mobility runs bit-identically. With a
// shadowing decorrelation distance set, the testbed's model is wrapped
// in a per-run mobility.Channel (identical to the bare model until the
// first epoch bump).
func buildMedium(tb *topo.Testbed, opt Options, sched *sim.Scheduler, rng *sim.RNG) (*medium.Medium, *mobility.Manager) {
	if !opt.Mobility.Active() {
		return tb.Build(sched, rng.Stream(1)), nil
	}
	model := tb.Model
	var ch *mobility.Channel
	if opt.Mobility.DecorrM > 0 {
		ch = mobility.NewChannel(tb.Model, tb.N)
		model = ch
	}
	m := tb.BuildWith(sched, rng.Stream(1), model)
	mg := mobility.New(opt.Mobility, tb.Bounds, m, rng.Stream(mobility.StreamLabel), ch)
	mg.Start()
	return m, mg
}

// aggregate sums the goodput of all flows in a run.
func aggregate(rs []FlowResult) float64 {
	var s float64
	for _, r := range rs {
		s += r.Mbps
	}
	return s
}

// PairExperiment is the common result shape of the two-flow experiments
// (Figures 12, 13, 15, 20): an aggregate-throughput distribution per arm.
type PairExperiment struct {
	Name  string
	Arms  []Protocol
	Dists map[Protocol]*stats.Dist
	// Flows keeps per-arm per-run flow results for follow-on analyses
	// (Figure 16 uses the CMAP runs).
	Flows map[Protocol][][]FlowResult
}

// runPairExperiment measures every pair under every arm. The (pair, arm)
// trials are independent — each builds its own medium and derives all
// randomness from a seed fixed here — so they fan out across the worker
// pool; results fold back in the serial iteration order, keeping the
// output identical at every worker count.
func runPairExperiment(name string, tb *topo.Testbed, pairs []topo.LinkPair, arms []Protocol, opt Options) *PairExperiment {
	ex := &PairExperiment{
		Name:  name,
		Arms:  arms,
		Dists: map[Protocol]*stats.Dist{},
		Flows: map[Protocol][][]FlowResult{},
	}
	for _, arm := range arms {
		ex.Dists[arm] = &stats.Dist{}
	}
	trials := runner.Map(opt.pool(), len(pairs)*len(arms), func(t int) []FlowResult {
		i, arm := t/len(arms), arms[t%len(arms)]
		flows := []topo.Link{pairs[i].A, pairs[i].B}
		return runFlows(tb, flows, arm, opt, opt.Seed+uint64(i)*7919+arm.seedSalt()*104729)
	})
	for i := range pairs {
		for j, arm := range arms {
			rs := trials[i*len(arms)+j]
			ex.Dists[arm].Add(aggregate(rs))
			ex.Flows[arm] = append(ex.Flows[arm], rs)
		}
	}
	return ex
}

// Median returns the median aggregate throughput of one arm, or zero
// for an arm the experiment did not run (possible whenever Options.Arms
// overrode the figure's defaults).
func (ex *PairExperiment) Median(p Protocol) float64 {
	d, ok := ex.Dists[p]
	if !ok {
		return 0
	}
	return d.Median()
}

// Ran reports whether every given arm was part of this experiment —
// the guard callers need before quoting cross-arm gains when
// Options.Arms may have replaced the defaults.
func (ex *PairExperiment) Ran(arms ...Protocol) bool {
	for _, a := range arms {
		if _, ok := ex.Dists[a]; !ok {
			return false
		}
	}
	return true
}

// Gain returns the ratio of medians a/b.
func (ex *PairExperiment) Gain(a, b Protocol) float64 {
	den := ex.Median(b)
	if den == 0 {
		return 0
	}
	return ex.Median(a) / den
}

// Format renders the experiment as percentile columns per arm (the
// textual stand-in for the paper's CDF plots).
func (ex *PairExperiment) Format() string {
	names := make([]string, len(ex.Arms))
	dists := make([]*stats.Dist, len(ex.Arms))
	for i, a := range ex.Arms {
		names[i] = a.String()
		dists[i] = ex.Dists[a]
	}
	return ex.Name + " (aggregate Mb/s)\n" + stats.FormatCDFs(names, dists)
}
