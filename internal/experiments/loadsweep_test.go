package experiments

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// sweepTestOptions is a sweep-sized scale: enough virtual time past the
// warm-up for latency percentiles to settle, few enough pairs to stay
// test-tier fast.
func sweepTestOptions(t *testing.T, seed uint64) Options {
	opt := Quick(seed)
	opt.Duration = 8 * sim.Second
	opt.Warmup = 2 * sim.Second
	opt.Pairs = 4
	if testing.Short() {
		opt.Duration = 5 * sim.Second
		opt.Warmup = 1 * sim.Second
		opt.Pairs = 2
	}
	return opt
}

// TestTrafficModeDeliversOfferedLoad is the below-saturation sanity
// check: a 1 Mb/s Poisson flow on a strong exposed-pair link should be
// delivered nearly in full by both protocols, with measured latency.
func TestTrafficModeDeliversOfferedLoad(t *testing.T) {
	opt := sweepTestOptions(t, 1)
	opt.Traffic = traffic.PoissonAt(traffic.PacketsPerSecFor(1.0, sweepPayloadBytes))
	tb := topo.NewTestbed(opt.Nodes, opt.Seed)
	pairs := tb.ExposedPairs(sim.NewRNG(opt.Seed^0xf10ad), 1)
	if len(pairs) == 0 {
		t.Skip("no exposed pairs on this testbed seed")
	}
	for _, arm := range []Protocol{CMAP, CSMAOn} {
		rs := runFlows(tb, []topo.Link{pairs[0].A}, arm, opt, opt.Seed+99)
		fr := rs[0]
		if fr.Mbps < 0.8 || fr.Mbps > 1.2 {
			t.Errorf("%v: goodput %.2f Mb/s for 1.0 Mb/s offered", arm, fr.Mbps)
		}
		if fr.Lat == nil || fr.Lat.N() == 0 {
			t.Fatalf("%v: no latency samples", arm)
		}
		if p50 := fr.Lat.P50(); p50 <= 0 || p50 > 100 {
			t.Errorf("%v: implausible p50 latency %.2f ms at light load", arm, p50)
		}
		if fr.OfferedPkts == 0 || fr.AcceptedPkts > fr.OfferedPkts {
			t.Errorf("%v: inconsistent arrival counters %+v", arm, fr)
		}
	}
}

// TestOfferedLoadSweep checks the figure's two headline properties on
// exposed pairs: goodput tracks offered load monotonically below
// saturation, and at high load CMAP's concurrency beats carrier
// sense's serialisation.
func TestOfferedLoadSweep(t *testing.T) {
	opt := sweepTestOptions(t, 1)
	loads := []float64{0.5, 1, 2, 8}
	tb := topo.NewTestbed(opt.Nodes, opt.Seed)
	sw := OfferedLoad(tb, "exposed", loads, opt)
	if len(sw.Points) != len(loads) {
		t.Fatalf("%d points for %d loads", len(sw.Points), len(loads))
	}
	for _, arm := range sw.Arms {
		// Below saturation (0.5 → 1 → 2 Mb/s per flow) goodput must rise
		// with load; 5% slack absorbs contention noise at small scales.
		for i := 0; i+1 < 3; i++ {
			lo, hi := sw.MedianAggregate(i, arm), sw.MedianAggregate(i+1, arm)
			if hi < lo*0.95 {
				t.Errorf("%v: goodput not monotone below saturation: %.2f → %.2f Mb/s (loads %.1f → %.1f)",
					arm, lo, hi, loads[i], loads[i+1])
			}
		}
		// Light load is delivered nearly in full.
		if got, want := sw.MedianAggregate(0, arm), 2*loads[0]; got < 0.7*want {
			t.Errorf("%v: light-load goodput %.2f, want ≈%.2f", arm, got, want)
		}
		if sw.Points[len(loads)-1].Latency[arm].N() == 0 {
			t.Errorf("%v: no latency samples at the top load", arm)
		}
	}
	top := len(loads) - 1
	cm, cs := sw.MedianAggregate(top, CMAP), sw.MedianAggregate(top, CSMAOn)
	if cm < cs {
		t.Errorf("at saturating load CMAP %.2f < CSMA %.2f Mb/s on exposed pairs", cm, cs)
	}
	t.Logf("\n%s", sw.Format())
}

// TestLoadSweepWorkerEquivalence replays a miniature sweep serially and
// across 4 workers: bit-identical results prove the traffic path keeps
// the repo's parallelism invariant (seeds fixed before dispatch).
func TestLoadSweepWorkerEquivalence(t *testing.T) {
	opt := sweepTestOptions(t, 3)
	opt.Pairs = 2
	opt.Duration = 3 * sim.Second
	opt.Warmup = 1 * sim.Second
	tb := topo.NewTestbed(opt.Nodes, opt.Seed)
	loads := []float64{1, 4}
	opt.Workers = 1
	serial := OfferedLoad(tb, "exposed", loads, opt)
	opt.Workers = 4
	parallel := OfferedLoad(tb, "exposed", loads, opt)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("load sweep differs between 1 and 4 workers")
	}
}

// TestChurnedFlowsRun smoke-tests flow churn end to end on the MAC
// stack: sessions alternate, packets still arrive and deliver.
func TestChurnedFlowsRun(t *testing.T) {
	opt := sweepTestOptions(t, 5)
	opt.Traffic = traffic.PoissonAt(traffic.PacketsPerSecFor(2.0, sweepPayloadBytes))
	opt.Traffic.UpMean = 500 * sim.Millisecond
	opt.Traffic.DownMean = 500 * sim.Millisecond
	tb := topo.NewTestbed(opt.Nodes, opt.Seed)
	pairs := tb.ExposedPairs(sim.NewRNG(opt.Seed^0xf10ad), 1)
	if len(pairs) == 0 {
		t.Skip("no exposed pairs on this testbed seed")
	}
	rs := runFlows(tb, []topo.Link{pairs[0].A, pairs[0].B}, CMAP, opt, opt.Seed+7)
	for _, fr := range rs {
		if fr.DeliveredPkts == 0 {
			t.Errorf("churned flow %d→%d delivered nothing", fr.Link.Src, fr.Link.Dst)
		}
		// Duty cycle 50%: accepted should be well below an unchurned run's
		// ~2 Mb/s×duration worth of packets but clearly nonzero.
		if fr.AcceptedPkts == 0 || fr.AcceptedPkts >= fr.OfferedPkts+1 && fr.OfferedPkts == 0 {
			t.Errorf("churned flow counters implausible: %+v", fr)
		}
	}
}
