package experiments

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/mac"
	"repro/internal/mobility"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// The checkpoint conformance tier: checkpoint-at-T-then-resume must be
// bit-identical to an uninterrupted run — same FlowResults through
// their IEEE-754 bit patterns, and the same checkpoint bytes when both
// runs are captured again at the end (which audits every serialized
// field of every component, not just the measured outputs). The matrix
// covers every golden scenario × every registered MAC arm × shard
// counts {1, 2, 4}, exactly the space the golden traces pin.

// conformanceArms is every runnable registered arm: the fixed names
// plus one cs@<dBm> family member.
func conformanceArms() []Protocol {
	var arms []Protocol
	for _, name := range mac.Names() {
		if strings.Contains(name, "<") {
			continue // family syntax hint, not a runnable name
		}
		arms = append(arms, Protocol(name))
	}
	arms = append(arms, CSAt(-82))
	return arms
}

// conformanceOptions is a reduced scale: the matrix is about state
// fidelity, not figure values, so runs are short. Scenario topologies
// still come from the golden pickers over the golden testbed.
func conformanceOptions(seed uint64) Options {
	return Options{
		Seed:     seed,
		Nodes:    50,
		Duration: 800 * sim.Millisecond,
		Warmup:   400 * sim.Millisecond,
		Rate:     phy.Rate6Mbps,
	}
}

func flowSimConfig(tp string, flows []topo.Link, opt Options, shards int, spec traffic.Spec, runSeed uint64) FlowSimConfig {
	return FlowSimConfig{
		Arm:      Protocol(tp),
		Flows:    flows,
		Duration: opt.Duration,
		Warmup:   opt.Warmup,
		Rate:     opt.Rate,
		Traffic:  spec,
		Shards:   shards,
		Seed:     runSeed,
	}
}

// requireSameResults compares two result sets bit-exactly, including
// the latency recorders' full sample sequences.
func requireSameResults(t *testing.T, label string, a, b []FlowResult) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d flows", label, len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Link != y.Link {
			t.Fatalf("%s flow %d: link %v vs %v", label, i, x.Link, y.Link)
		}
		if math.Float64bits(x.Mbps) != math.Float64bits(y.Mbps) {
			t.Errorf("%s flow %d: Mbps %v (%016x) vs %v (%016x)",
				label, i, x.Mbps, math.Float64bits(x.Mbps), y.Mbps, math.Float64bits(y.Mbps))
		}
		if x.VpktsSent != y.VpktsSent || x.VpktsHeader != y.VpktsHeader || x.VpktsHdrOrTrail != y.VpktsHdrOrTrail {
			t.Errorf("%s flow %d: visibility (%d,%d,%d) vs (%d,%d,%d)", label, i,
				x.VpktsSent, x.VpktsHeader, x.VpktsHdrOrTrail, y.VpktsSent, y.VpktsHeader, y.VpktsHdrOrTrail)
		}
		if x.OfferedPkts != y.OfferedPkts || x.AcceptedPkts != y.AcceptedPkts ||
			x.DroppedPkts != y.DroppedPkts || x.DeliveredPkts != y.DeliveredPkts {
			t.Errorf("%s flow %d: arrivals (%d,%d,%d,%d) vs (%d,%d,%d,%d)", label, i,
				x.OfferedPkts, x.AcceptedPkts, x.DroppedPkts, x.DeliveredPkts,
				y.OfferedPkts, y.AcceptedPkts, y.DroppedPkts, y.DeliveredPkts)
		}
		switch {
		case (x.Lat == nil) != (y.Lat == nil):
			t.Errorf("%s flow %d: one side has a latency recorder, the other not", label, i)
		case x.Lat != nil:
			if !reflect.DeepEqual(x.Lat.State(), y.Lat.State()) {
				t.Errorf("%s flow %d: latency recorders diverge", label, i)
			}
		}
	}
}

// TestFlowSimMatchesRunFlows proves the held-open harness reproduces
// the batch runners bit-exactly — the property that lets the golden
// tier keep pinning runFlows while checkpointing runs through FlowSim.
func TestFlowSimMatchesRunFlows(t *testing.T) {
	const seed = 1
	opt := conformanceOptions(seed)
	tb := topo.NewTestbed(opt.Nodes, seed)
	specs := []struct {
		name string
		spec traffic.Spec
	}{
		{"saturated", traffic.Saturate()},
		{"poisson", traffic.PoissonAt(300)},
	}
	for _, tp := range goldenTopologies(tb, seed) {
		for _, arm := range []Protocol{CSMAOn, CMAP, RTSCTS} {
			for _, shards := range []int{1, 4} {
				for _, sp := range specs {
					o := opt
					o.Shards = shards
					o.Traffic = sp.spec
					runSeed := seed + arm.seedSalt()*104729
					want := runFlows(tb, tp.flows, arm, o, runSeed)
					fs, err := NewFlowSim(tb, flowSimConfig(string(arm), tp.flows, opt, shards, sp.spec, runSeed))
					if err != nil {
						t.Fatal(err)
					}
					fs.Run(opt.Duration)
					label := tp.name + "/" + string(arm) + "/" + sp.name
					requireSameResults(t, label, want, fs.Results())
				}
			}
		}
	}
}

// TestCheckpointResumeBitIdentical is the conformance matrix: run A
// straight through; run B to a midpoint, checkpoint, rebuild a fresh
// skeleton, resume, finish. Results and end-of-run checkpoint bytes
// must match exactly.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	const seed = 1
	opt := conformanceOptions(seed)
	tb := topo.NewTestbed(opt.Nodes, seed)
	arms := conformanceArms()
	shardCounts := []int{1, 2, 4}
	if testing.Short() {
		arms = []Protocol{CSMAOn, CMAP}
		shardCounts = []int{1, 2}
	}
	for _, tp := range goldenTopologies(tb, seed) {
		for _, arm := range arms {
			for _, shards := range shardCounts {
				tp, arm, shards := tp, arm, shards
				name := tp.name + "/" + string(arm) + "/shards" + string(rune('0'+shards))
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					runSeed := seed + arm.seedSalt()*104729
					cfg := flowSimConfig(string(arm), tp.flows, opt, shards, traffic.Saturate(), runSeed)
					checkpointResumeCase(t, tb, cfg, opt.Duration)
				})
			}
		}
	}
	// Mobile spot checks: trajectories, movement RNG streams, shadow
	// epochs and the incremental medium's patched delivery lists must
	// survive the cut too, for every movement model. Serial only —
	// mobility is gated to the unsharded engine.
	mobileSpecs := []mobility.Spec{
		{Kind: mobility.Waypoint, SpeedMps: 5, RangeM: 12, DecorrM: 10},
		{Kind: mobility.RandomWalk, SpeedMps: 2, RangeM: 12, DecorrM: 10},
		{Kind: mobility.Vehicular, SpeedMps: 15, DecorrM: 10},
	}
	if testing.Short() {
		mobileSpecs = mobileSpecs[:1]
	}
	for _, spec := range mobileSpecs {
		spec := spec
		for _, arm := range []Protocol{CSMAOn, CMAP} {
			arm := arm
			t.Run("exposed/mobile-"+spec.Kind.String()+"/"+string(arm), func(t *testing.T) {
				t.Parallel()
				tp := goldenTopologies(tb, seed)[0]
				cfg := flowSimConfig(string(arm), tp.flows, opt, 1, traffic.Saturate(), seed+arm.seedSalt()*104729)
				cfg.Mobility = spec
				checkpointResumeCase(t, tb, cfg, opt.Duration)
			})
		}
	}
	// Traffic-mode spot checks: sources, latency recorders and churn
	// timers must survive the cut too.
	spec := traffic.PoissonAt(300)
	spec.UpMean, spec.DownMean = 120*sim.Millisecond, 120*sim.Millisecond
	for _, shards := range shardCounts {
		shards := shards
		name := "exposed/traffic-churn/shards" + string(rune('0'+shards))
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tp := goldenTopologies(tb, seed)[0]
			cfg := flowSimConfig(string(CMAP), tp.flows, opt, shards, spec, seed+12345)
			checkpointResumeCase(t, tb, cfg, opt.Duration)
		})
	}
	// Churn × mobility interplay: session timers and movement epochs
	// interleave on the same scheduler, and both owners' state must
	// survive the cut together.
	t.Run("exposed/traffic-churn/mobile-waypoint", func(t *testing.T) {
		t.Parallel()
		tp := goldenTopologies(tb, seed)[0]
		cfg := flowSimConfig(string(CMAP), tp.flows, opt, 1, spec, seed+54321)
		cfg.Mobility = mobility.Spec{Kind: mobility.Waypoint, SpeedMps: 5, RangeM: 12, DecorrM: 10}
		checkpointResumeCase(t, tb, cfg, opt.Duration)
	})
}

func checkpointResumeCase(t *testing.T, tb *topo.Testbed, cfg FlowSimConfig, d sim.Time) {
	t.Helper()
	// A multi-shard engine cuts only at window edges; align both the
	// midpoint and the endpoint so A and B run to identical clocks.
	mk := func() *FlowSim {
		fs, err := NewFlowSim(tb, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
	a := mk()
	t1 := a.AlignCheckpoint(d / 2)
	t2 := a.AlignCheckpoint(d)

	a.Run(t2)
	resA := a.Results()
	var endA bytes.Buffer
	if err := a.Save(&endA); err != nil {
		t.Fatalf("save A at end: %v", err)
	}

	b1 := mk()
	b1.Run(t1)
	var cut bytes.Buffer
	if err := b1.Save(&cut); err != nil {
		t.Fatalf("save B at t=%v: %v", t1, err)
	}
	b2 := mk()
	if err := b2.Resume(bytes.NewReader(cut.Bytes())); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if b2.Now() != t1 {
		t.Fatalf("resumed clock %v, want %v", b2.Now(), t1)
	}
	b2.Run(t2)
	resB := b2.Results()
	var endB bytes.Buffer
	if err := b2.Save(&endB); err != nil {
		t.Fatalf("save B at end: %v", err)
	}

	requireSameResults(t, "A vs resumed B", resA, resB)
	if !bytes.Equal(endA.Bytes(), endB.Bytes()) {
		t.Errorf("end-of-run checkpoints differ (%d vs %d bytes): some component state diverged after resume",
			endA.Len(), endB.Len())
	}
}

// TestCheckpointConfigHashGuard: resuming under a different
// configuration must fail with the typed error, before any state is
// touched.
func TestCheckpointConfigHashGuard(t *testing.T) {
	const seed = 1
	opt := conformanceOptions(seed)
	tb := topo.NewTestbed(opt.Nodes, seed)
	tp := goldenTopologies(tb, seed)[0]
	cfg := flowSimConfig(string(CMAP), tp.flows, opt, 1, traffic.Saturate(), 42)
	fs, err := NewFlowSim(tb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs.Run(opt.Duration / 4)
	var buf bytes.Buffer
	if err := fs.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Seed = 43
	fs2, err := NewFlowSim(tb, other)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs2.Resume(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("resume under a different config succeeded; want ErrConfigMismatch")
	}
}
