package experiments

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

// testOptions is Quick further trimmed so the full experiment suite stays
// test-sized; shapes, not absolute numbers, are asserted. Under -short the
// scale drops again — enough virtual time and topologies for every
// assertion to hold, sized so the whole package finishes in well under a
// minute — while the default mode keeps the full-fidelity scale.
func testOptions(seed uint64) Options {
	opt := Quick(seed)
	opt.Duration = 10 * sim.Second
	opt.Warmup = 5 * sim.Second
	opt.Pairs = 8
	opt.Triples = 30
	opt.APRuns = 2
	opt.Meshes = 6
	if testing.Short() {
		opt.Duration = 6 * sim.Second
		opt.Warmup = 3 * sim.Second
		opt.Pairs = 6
		opt.Triples = 16
		opt.APRuns = 2
		opt.Meshes = 4
	}
	return opt
}

func testbed(t *testing.T, seed uint64) *topo.Testbed {
	t.Helper()
	return topo.NewTestbed(50, seed)
}

func TestProtocolLabels(t *testing.T) {
	labels := map[Protocol]string{
		CSMAOn:        "CS, acks",
		CSMAOffAcks:   "CS off, acks",
		CSMAOffNoAcks: "CS off, no acks",
		CMAP:          "CMAP",
		CMAPWin1:      "CMAP, win=1",
	}
	for p, want := range labels {
		if p.String() != want {
			t.Errorf("%s label = %q, want %q", string(p), p, want)
		}
	}
}

func TestCalibrationSingleLink(t *testing.T) {
	t.Parallel()
	opt := testOptions(1)
	cal := RunCalibration(testbed(t, 1), opt)
	// §4.2: 5.04 vs 5.07 Mb/s — the two protocols must be comparable, both
	// near 5 Mb/s at the 6 Mb/s rate.
	if cal.CMAPMbps < 4.5 || cal.CMAPMbps > 6.0 {
		t.Errorf("CMAP single link = %.2f Mb/s, want ≈5", cal.CMAPMbps)
	}
	if cal.Dot11Mbps < 4.5 || cal.Dot11Mbps > 6.0 {
		t.Errorf("802.11 single link = %.2f Mb/s, want ≈5", cal.Dot11Mbps)
	}
	ratio := cal.CMAPMbps / cal.Dot11Mbps
	if ratio < 0.85 || ratio > 1.18 {
		t.Errorf("CMAP/802.11 single-link ratio = %.2f, want ≈1", ratio)
	}
}

func TestFigure12ExposedTerminals(t *testing.T) {
	t.Parallel()
	opt := testOptions(1)
	ex := ExposedTerminals(testbed(t, 1), opt)
	// The paper's headline: CMAP ≈2× the status quo on exposed terminals.
	gain := ex.Gain(CMAP, CSMAOn)
	if gain < 1.6 {
		t.Errorf("CMAP/CS gain = %.2fx, want ≈2x (CS %.2f, CMAP %.2f)",
			gain, ex.Median(CSMAOn), ex.Median(CMAP))
	}
	// CS-off/no-acks is the concurrency ceiling; CMAP must be close to it.
	if ex.Median(CMAP) < 0.85*ex.Median(CSMAOffNoAcks) {
		t.Errorf("CMAP median %.2f far from ceiling %.2f",
			ex.Median(CMAP), ex.Median(CSMAOffNoAcks))
	}
	// The status quo serialises: near the single-link rate.
	if m := ex.Median(CSMAOn); m < 4.0 || m > 7.5 {
		t.Errorf("CS median = %.2f, want near single-link ≈5.5", m)
	}
	if ex.Format() == "" {
		t.Error("empty Format")
	}
}

func TestFigure13InRangeSenders(t *testing.T) {
	t.Parallel()
	opt := testOptions(1)
	ex := InRangeSenders(testbed(t, 1), opt)
	// CMAP must not lose to the status quo overall…
	if ex.Dists[CMAP].Mean() < 0.85*ex.Dists[CSMAOn].Mean() {
		t.Errorf("CMAP mean %.2f below CS mean %.2f", ex.Dists[CMAP].Mean(), ex.Dists[CSMAOn].Mean())
	}
	// …and must beat it at the top of the CDF by exploiting the pairs
	// that can run concurrently (the paper's right-hand-side argument).
	if ex.Dists[CMAP].Percentile(90) < ex.Dists[CSMAOn].Percentile(90)*1.1 {
		t.Errorf("CMAP p90 %.2f shows no concurrency wins over CS p90 %.2f",
			ex.Dists[CMAP].Percentile(90), ex.Dists[CSMAOn].Percentile(90))
	}
}

func TestFigure15HiddenTerminals(t *testing.T) {
	t.Parallel()
	opt := testOptions(1)
	ex := HiddenTerminals(testbed(t, 1), opt)
	// §5.5: CMAP's backoff prevents degradation versus the status quo.
	cs, cm := ex.Dists[CSMAOn].Mean(), ex.Dists[CMAP].Mean()
	if cm < 0.75*cs {
		t.Errorf("CMAP mean %.2f collapsed versus CS mean %.2f", cm, cs)
	}
}

func TestFigure14HiddenInterferers(t *testing.T) {
	t.Parallel()
	opt := testOptions(1)
	res := HiddenInterferers(testbed(t, 1), opt)
	if len(res.Points) < opt.Triples*8/10 {
		t.Fatalf("only %d of %d triples measured", len(res.Points), opt.Triples)
	}
	// §5.4: hidden interferers are rare (paper 8%)…
	if res.HiddenFrac > 0.25 {
		t.Errorf("hidden-interferer fraction = %.2f, want ≲0.1", res.HiddenFrac)
	}
	// …and the expected CMAP throughput under them is high (paper 0.896).
	if res.ExpectedCMAP < 0.75 || res.ExpectedCMAP > 1.0 {
		t.Errorf("expected CMAP normalised throughput = %.3f, want ≈0.9", res.ExpectedCMAP)
	}
	for _, p := range res.Points {
		if p.NormThroughput < 0 || p.NormThroughput > 1 || p.MinPRR < 0 || p.MinPRR > 1 {
			t.Fatalf("point out of range: %+v", p)
		}
	}
}

func TestFigure16HeaderTrailer(t *testing.T) {
	t.Parallel()
	opt := testOptions(1)
	tb := testbed(t, 1)
	inr := InRangeSenders(tb, opt)
	hid := HiddenTerminals(tb, opt)
	h := HeaderTrailer(inr, hid)
	// Header-or-trailer delivery dominates header-only delivery…
	if h.InRangeEither.Mean() < h.InRangeHeader.Mean() {
		t.Error("in-range: header|trailer below header alone")
	}
	if h.HiddenEither.Mean() < h.HiddenHeader.Mean() {
		t.Error("hidden: header|trailer below header alone")
	}
	// …and the trailer's benefit is larger out of range (Fig. 16's point).
	gainIn := h.InRangeEither.Mean() - h.InRangeHeader.Mean()
	gainOut := h.HiddenEither.Mean() - h.HiddenHeader.Mean()
	if gainOut < gainIn*0.8 {
		t.Errorf("trailer benefit out-of-range (%.3f) not pronounced versus in-range (%.3f)", gainOut, gainIn)
	}
	// In range, header-or-trailer reception is near certain at the median.
	if h.InRangeEither.Median() < 0.9 {
		t.Errorf("in-range hdr|trl median = %.2f, want ≈1", h.InRangeEither.Median())
	}
	if h.Format() == "" {
		t.Error("empty Format")
	}
}

func TestFigure17And18AccessPoints(t *testing.T) {
	t.Parallel()
	opt := testOptions(1)
	if !testing.Short() {
		opt.APRuns = 3
	}
	res := AccessPoint(testbed(t, 1), opt)
	if len(res.Ns) == 0 {
		t.Fatal("no AP counts measured")
	}
	// Aggregate throughput grows with cells for every arm, and CMAP beats
	// the status quo on average across N (paper: +21%…+47%).
	var gainSum float64
	var gains int
	for _, n := range res.Ns {
		cs, cm := res.Mean[CSMAOn][n], res.Mean[CMAP][n]
		if cs == 0 || cm == 0 {
			continue
		}
		gainSum += cm / cs
		gains++
	}
	if gains == 0 {
		t.Fatal("no comparable AP points")
	}
	if avg := gainSum / float64(gains); avg < 1.02 {
		t.Errorf("average CMAP/CS AP gain = %.2fx, want >1 (paper 1.2–1.5x)", avg)
	}
	// Figure 18: per-sender median improves (paper 1.8×).
	med := res.PerSender[CMAP].Median() / res.PerSender[CSMAOn].Median()
	if med < 1.0 {
		t.Errorf("per-sender median gain = %.2fx, want >1 (paper 1.8x)", med)
	}
	if res.Format() == "" {
		t.Error("empty Format")
	}
}

func TestFigure19SenderSweep(t *testing.T) {
	t.Parallel()
	opt := testOptions(1)
	opt.APRuns = 2
	pts := HeaderTrailerVsSenders(testbed(t, 1), opt)
	if len(pts) != 6 {
		t.Fatalf("sweep returned %d points, want 6 (k=2..7)", len(pts))
	}
	for _, p := range pts {
		if p.FlowsMeasured == 0 {
			t.Fatalf("k=%d measured no flows", p.Senders)
		}
		if p.Median < 0 || p.Median > 1 {
			t.Fatalf("k=%d median out of range: %v", p.Senders, p.Median)
		}
	}
	// Figure 19: the median stays usable while the 10th percentile
	// degrades as concurrency grows.
	if pts[0].Median < 0.5 {
		t.Errorf("k=2 median hdr|trl = %.2f, want high", pts[0].Median)
	}
	if pts[5].P10 >= pts[0].Median {
		t.Errorf("k=7 p10 (%.2f) should sit below k=2 median (%.2f)", pts[5].P10, pts[0].Median)
	}
}

func TestFigure20VariableBitRates(t *testing.T) {
	t.Parallel()
	opt := testOptions(1)
	opt.Pairs = 6
	if testing.Short() {
		opt.Pairs = 4
	}
	series := VariableBitRates(testbed(t, 1), opt)
	if len(series) != 3 {
		t.Fatalf("got %d rate series, want 3", len(series))
	}
	prevCS := 0.0
	for _, rs := range series {
		cs, cm := rs.Ex.Median(CSMAOn), rs.Ex.Median(CMAP)
		// CMAP continues to win at higher bit-rates (§5.8).
		if cm < cs*1.3 {
			t.Errorf("rate %v: CMAP %.2f vs CS %.2f, want clear gain", rs.Rate, cm, cs)
		}
		// Higher bit-rates move the whole figure up.
		if cs < prevCS {
			t.Errorf("rate %v: CS median %.2f below previous rate's %.2f", rs.Rate, cs, prevCS)
		}
		prevCS = cs
	}
}

func TestMeshDissemination(t *testing.T) {
	t.Parallel()
	opt := testOptions(1)
	res := Mesh(testbed(t, 1), opt)
	if res.CMAP.N() == 0 {
		t.Fatal("no mesh topologies ran")
	}
	// §5.7: CMAP gains from exposed relays (paper +52%).
	if g := res.Gain(); g < 1.05 {
		t.Errorf("mesh gain = %.2fx, want >1 (paper 1.52x)", g)
	}
}

func TestDeterminism(t *testing.T) {
	t.Parallel()
	opt := testOptions(5)
	opt.Pairs = 3
	tb := testbed(t, 5)
	a := ExposedTerminals(tb, opt)
	b := ExposedTerminals(tb, opt)
	for _, arm := range a.Arms {
		av, bv := a.Dists[arm].Values(), b.Dists[arm].Values()
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("arm %v run %d differs: %v vs %v", arm, i, av[i], bv[i])
			}
		}
	}
}
