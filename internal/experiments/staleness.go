package experiments

import (
	"fmt"
	"strings"

	"repro/internal/mobility"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// The staleness sweep is the repo's own figure (the paper's testbed was
// frozen in place): goodput versus node speed for CMAP against plain
// carrier sense and RTS/CTS, over the exposed-pair sample where CMAP's
// learned conflict maps buy their concurrency. Movement makes the
// exposed/hidden classification time-varying: every position epoch the
// map entries learned at the old geometry go a little more stale, so
// CMAP's advantage over csma should shrink as speed rises — the
// question the original static deployment could not ask.

// DefaultStalenessSpeeds spans static through brisk vehicular motion in
// m/s.
var DefaultStalenessSpeeds = []float64{0, 1, 2, 5, 10, 20}

// StalenessRangeM confines each node's waypoint roaming to a disk
// around its starting position. Office-scale wandering (rather than
// arena-wide drift) keeps the measured pairs connected at every speed,
// so the curves isolate map staleness from outright link loss.
const StalenessRangeM = 12

// StalenessDecorrM is the shadowing decorrelation distance of the
// sweep's mobile channel: links re-draw their shadowing every 10 m of
// endpoint travel, the second mechanism (besides geometry) by which a
// learned map rots.
const StalenessDecorrM = 10

// StalenessPoint is one node speed: the aggregate-goodput distribution
// of the same exposed-pair sample per arm.
type StalenessPoint struct {
	SpeedMps float64
	Dists    map[Protocol]*stats.Dist
}

// Advantage returns the ratio of arm a's median to arm b's at this
// speed (0 when b's median is 0).
func (p StalenessPoint) Advantage(a, b Protocol) float64 {
	den := p.Dists[b].Median()
	if den == 0 {
		return 0
	}
	return p.Dists[a].Median() / den
}

// StalenessResult is the full sweep.
type StalenessResult struct {
	Arms   []Protocol
	Points []StalenessPoint
}

// StalenessSweep measures every (pair, speed, arm) trial independently
// across the worker pool: goodput versus node speed under random
// waypoint mobility for the given arms (default CMAP vs csma vs
// rtscts) over the Figure-12 exposed-pair sample. Results are
// bit-identical at any worker count — each trial's randomness, its
// trajectories included, derives from a seed fixed before dispatch.
func StalenessSweep(tb *topo.Testbed, opt Options, speeds []float64) *StalenessResult {
	if len(speeds) == 0 {
		speeds = DefaultStalenessSpeeds
	}
	arms := opt.armsOr([]Protocol{CMAP, CSMAOn, RTSCTS})
	// The same exposed sample Figure 12 uses, so the zero-speed column
	// reproduces the static exposed-terminal figure exactly.
	pairs := tb.ExposedPairs(sim.NewRNG(opt.Seed^0x57a1e), opt.Pairs)

	res := &StalenessResult{Arms: arms}
	trials := runner.Map(opt.pool(), len(pairs)*len(speeds)*len(arms), func(t int) float64 {
		i := t / (len(speeds) * len(arms))
		s := t / len(arms) % len(speeds)
		arm := arms[t%len(arms)]
		ropt := opt
		ropt.Mobility = StalenessSpec(speeds[s])
		flows := []topo.Link{pairs[i].A, pairs[i].B}
		// The speed index joins the trial seed the same way pair and arm
		// salts do, decorrelating sweep positions from one another.
		rs := runFlows(tb, flows, arm, ropt, opt.Seed+uint64(i)*7919+arm.seedSalt()*104729+uint64(s)*15485863)
		return aggregate(rs)
	})
	for s, v := range speeds {
		p := StalenessPoint{SpeedMps: v, Dists: map[Protocol]*stats.Dist{}}
		for _, arm := range arms {
			p.Dists[arm] = &stats.Dist{}
		}
		for i := range pairs {
			for j, arm := range arms {
				p.Dists[arm].Add(trials[i*len(speeds)*len(arms)+s*len(arms)+j])
			}
		}
		res.Points = append(res.Points, p)
	}
	return res
}

// StalenessSpec is the sweep's mobility configuration at one speed:
// random waypoint within StalenessRangeM of home, shadowing re-drawn
// every StalenessDecorrM metres. Zero speed is the static baseline.
func StalenessSpec(speed float64) mobility.Spec {
	if speed <= 0 {
		return mobility.Spec{}
	}
	return mobility.Spec{
		Kind:     mobility.Waypoint,
		SpeedMps: speed,
		RangeM:   StalenessRangeM,
		DecorrM:  StalenessDecorrM,
	}
}

// Format renders the sweep as a speed table with CMAP's advantage over
// csma in the last column — the textual stand-in for the staleness
// decay plot.
func (r *StalenessResult) Format() string {
	var b strings.Builder
	b.WriteString("Goodput vs node speed (median aggregate Mb/s, exposed pairs, waypoint mobility)\n")
	fmt.Fprintf(&b, "%-10s", "m/s")
	for _, a := range r.Arms {
		fmt.Fprintf(&b, "%12s", a.String())
	}
	if r.has(CMAP, CSMAOn) {
		fmt.Fprintf(&b, "%14s", "cmap/csma")
	}
	b.WriteString("\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-10g", p.SpeedMps)
		for _, a := range r.Arms {
			fmt.Fprintf(&b, "%12.2f", p.Dists[a].Median())
		}
		if r.has(CMAP, CSMAOn) {
			fmt.Fprintf(&b, "%13.2fx", p.Advantage(CMAP, CSMAOn))
		}
		b.WriteString("\n")
	}
	if r.has(CMAP, CSMAOn) && len(r.Points) > 1 {
		first, last := r.Points[0], r.Points[len(r.Points)-1]
		fmt.Fprintf(&b, "CMAP's exposed-pair advantage over carrier sense: %.2fx static -> %.2fx at %g m/s — conflict maps go stale as fast as the geometry they memorised\n",
			first.Advantage(CMAP, CSMAOn), last.Advantage(CMAP, CSMAOn), last.SpeedMps)
	}
	return b.String()
}

func (r *StalenessResult) has(arms ...Protocol) bool {
	for _, want := range arms {
		found := false
		for _, a := range r.Arms {
			if a == want {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
