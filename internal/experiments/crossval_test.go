package experiments

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

// crossValTolerance is the accepted relative error of the analytic
// oracle's saturated aggregate against the simulator, per scenario and
// arm. The bounds are deliberately asymmetric: the mean-field renewal
// model resolves CSMA within ~10–20% everywhere, while CMAP's
// batched-ARQ recovery dynamics (retransmission-timer stalls, bitmap
// exhaustion under heavy hidden-terminal loss) are only captured to
// first order, so the hidden-pair and inrange-pair bounds are wider.
// Tightening a bound below the model's structural error would only
// make the tier flaky; the point is to pin today's accuracy so a
// regression in extractor or solver (or an accidental simulator
// behaviour change) trips loudly.
var crossValTolerance = map[Protocol]map[string]float64{
	CSMAOn: {
		"exposed-pair": 0.08,
		"inrange-pair": 0.20,
		"hidden-pair":  0.12,
		"ap-cells":     0.12,
		"gridcity":     0.12,
		"clusters":     0.10,
		"uniformdisk":  0.15,
	},
	CMAP: {
		"exposed-pair": 0.10,
		"inrange-pair": 0.30,
		"hidden-pair":  0.45,
		"ap-cells":     0.12,
		"gridcity":     0.25,
		"clusters":     0.10,
		"uniformdisk":  0.12,
	},
}

// TestCrossValidation runs oracle and simulator over the full screening
// portfolio — the four paper topology classes plus the three scenario
// generators — under both modelled arms, and asserts the fixed point
// converges with a bounded residual and lands within the stated
// tolerance of the simulated saturated aggregate.
func TestCrossValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validation simulates 14 saturated runs; skipped in -short")
	}
	opt := Quick(42)
	opt.Duration = 20 * sim.Second
	opt.Warmup = 10 * sim.Second

	scens := StandardScreenScenarios(opt.Seed)
	if len(scens) != 7 {
		names := make([]string, len(scens))
		for i, sc := range scens {
			names[i] = sc.Name
		}
		t.Fatalf("screening portfolio has %d scenarios (%v), want 7", len(scens), names)
	}
	for sci, sc := range scens {
		sc, sci := sc, sci
		for _, arm := range []Protocol{CSMAOn, CMAP} {
			arm := arm
			t.Run(fmt.Sprintf("%s/%v", sc.Name, arm), func(t *testing.T) {
				t.Parallel()
				tol, ok := crossValTolerance[arm][sc.Name]
				if !ok {
					t.Fatalf("no tolerance recorded for %s/%v", sc.Name, arm)
				}
				pred, err := PredictFlows(sc.TB, sc.Flows, arm, opt)
				if err != nil {
					t.Fatal(err)
				}
				if !pred.Converged {
					t.Fatalf("fixed point did not converge: residual %.2e after %d iterations",
						pred.Residual, pred.Iterations)
				}
				if pred.Residual > 1e-6 {
					t.Fatalf("residual %.2e above bound 1e-6", pred.Residual)
				}
				got := aggregate(runFlows(sc.TB, sc.Flows, arm, opt, opt.Seed+uint64(sci)*7919+arm.seedSalt()*104729))
				if got <= 0 {
					t.Fatalf("simulator delivered %.3f Mb/s — scenario inert", got)
				}
				rel := math.Abs(pred.AggregateMbps()-got) / got
				if rel > tol {
					t.Fatalf("predicted %.3f Mb/s vs simulated %.3f Mb/s: |rel err| %.1f%% exceeds %.0f%% tolerance",
						pred.AggregateMbps(), got, rel*100, tol*100)
				}
				t.Logf("predicted %.3f vs simulated %.3f Mb/s (|rel err| %.1f%%, tol %.0f%%, %d iterations)",
					pred.AggregateMbps(), got, rel*100, tol*100, pred.Iterations)
			})
		}
	}
}

// TestPredictFigureExposed exercises the figure-shaped oracle path: the
// exposed-terminal figure over a few pair draws must produce both arms'
// distributions, per-flow results for every pair, and reproduce the
// paper's qualitative claim — CMAP's median aggregate beats CSMA's on
// exposed terminals.
func TestPredictFigureExposed(t *testing.T) {
	opt := Quick(42)
	opt.Pairs = 3
	tb := topo.NewTestbed(opt.Nodes, opt.Seed)
	ex, err := PredictFigure("exposed", tb, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, arm := range []Protocol{CSMAOn, CMAP} {
		if ex.Dists[arm] == nil || ex.Dists[arm].N() == 0 {
			t.Fatalf("%v: empty distribution", arm)
		}
		if got := len(ex.Flows[arm]); got != ex.Dists[arm].N() {
			t.Fatalf("%v: %d flow records vs %d distribution entries", arm, got, ex.Dists[arm].N())
		}
		for _, rs := range ex.Flows[arm] {
			for _, r := range rs {
				if r.Mbps < 0 || math.IsNaN(r.Mbps) {
					t.Fatalf("%v: flow %v predicted %v Mb/s", arm, r.Link, r.Mbps)
				}
			}
		}
	}
	csma, cmap := ex.Dists[CSMAOn].Median(), ex.Dists[CMAP].Median()
	if cmap <= csma {
		t.Fatalf("exposed terminals: predicted CMAP median %.2f not above CSMA %.2f", cmap, csma)
	}
	if _, err := PredictFigure("no-such-figure", tb, opt); err == nil {
		t.Fatal("unknown figure name must error")
	}
	if _, err := PredictFlows(tb, nil, CSMAOnNoAcks, opt); err == nil {
		t.Fatal("unmodelled arm must error")
	}
}
