package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/analytic"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// csThreshold extracts the carrier-sense threshold from a cs@<dBm>
// family arm name.
func csThreshold(p Protocol) (float64, bool) {
	s := string(p)
	if !strings.HasPrefix(s, "cs@") {
		return 0, false
	}
	thr, err := strconv.ParseFloat(strings.TrimPrefix(s, "cs@"), 64)
	if err != nil {
		return 0, false
	}
	return thr, true
}

// analyticArm maps a protocol arm onto the oracle's model, when one
// exists. The cs@<dBm> family is CSMA with a shifted sensing graph
// (the threshold enters through ExtractConfig); the no-carrier-sense,
// no-ACK and RTS/CTS ablations have no analytic counterpart.
func analyticArm(p Protocol) (analytic.Arm, bool) {
	switch p {
	case CSMAOn:
		return analytic.ArmCSMA, true
	case CMAP, CMAPWin1:
		// Saturated senders refill the window continuously, so the
		// window size drops out of the renewal cycle.
		return analytic.ArmCMAP, true
	}
	if _, ok := csThreshold(p); ok {
		return analytic.ArmCSMA, true
	}
	return 0, false
}

// PredictFlows is the oracle counterpart of runFlows: it extracts the
// conflict graph for the given flows from a fresh build of the testbed's
// medium (read-only — no simulation runs) and solves the fixed point for
// saturated per-flow goodput under the given arm.
func PredictFlows(tb *topo.Testbed, flows []topo.Link, p Protocol, opt Options) (*analytic.Result, error) {
	arm, ok := analyticArm(p)
	if !ok {
		return nil, fmt.Errorf("experiments: no analytic model for arm %q", p)
	}
	m := tb.Build(sim.NewScheduler(), sim.NewRNG(opt.Seed).Stream(1))
	ec := analytic.ExtractConfig{Rate: opt.Rate}
	if thr, ok := csThreshold(p); ok {
		ec.CSThresholdDBm = thr
	}
	g, err := analytic.Extract(m, flows, ec)
	if err != nil {
		return nil, err
	}
	return analytic.Solve(g, analytic.Options{Arm: arm}), nil
}

// PredictPairExperiment is the oracle counterpart of runPairExperiment:
// the same result shape (per-arm aggregate distributions and per-flow
// results), with every number predicted instead of simulated.
func PredictPairExperiment(name string, tb *topo.Testbed, pairs []topo.LinkPair, arms []Protocol, opt Options) (*PairExperiment, error) {
	ex := &PairExperiment{
		Name:  name,
		Arms:  arms,
		Dists: map[Protocol]*stats.Dist{},
		Flows: map[Protocol][][]FlowResult{},
	}
	for _, arm := range arms {
		ex.Dists[arm] = &stats.Dist{}
	}
	for _, pair := range pairs {
		flows := []topo.Link{pair.A, pair.B}
		for _, arm := range arms {
			res, err := PredictFlows(tb, flows, arm, opt)
			if err != nil {
				return nil, err
			}
			rs := make([]FlowResult, len(flows))
			for i, f := range flows {
				rs[i] = FlowResult{Link: f, Mbps: res.FlowMbps[i]}
			}
			ex.Dists[arm].Add(res.AggregateMbps())
			ex.Flows[arm] = append(ex.Flows[arm], rs)
		}
	}
	return ex, nil
}

// PredictFigure predicts one of the paper's pair figures by name —
// "exposed" (Figure 12), "inrange" (Figure 13) or "hidden" (Figure 15)
// — over the same topology draws the simulated figure uses (identical
// seed streams), restricted to the arms the oracle models.
func PredictFigure(name string, tb *topo.Testbed, opt Options) (*PairExperiment, error) {
	var pairs []topo.LinkPair
	var title string
	switch name {
	case "exposed":
		pairs = tb.ExposedPairs(sim.NewRNG(opt.Seed^0xf16), opt.Pairs)
		title = "Figure 12 (predicted): exposed terminals"
	case "inrange":
		pairs = tb.InRangePairs(sim.NewRNG(opt.Seed^0xf13), opt.Pairs)
		title = "Figure 13 (predicted): senders in range"
	case "hidden":
		pairs = tb.HiddenPairs(sim.NewRNG(opt.Seed^0xf15), opt.Pairs)
		title = "Figure 15 (predicted): hidden terminals"
	default:
		return nil, fmt.Errorf("experiments: unknown figure %q (want exposed, inrange or hidden)", name)
	}
	return PredictPairExperiment(title, tb, pairs, []Protocol{CSMAOn, CMAP}, opt)
}

// ScreenScenario is one named topology entering the analytic screen.
type ScreenScenario struct {
	Name  string
	TB    *topo.Testbed
	Flows []topo.Link
}

// ScreenPoint is one (scenario × load) grid point of an analytic screen.
type ScreenPoint struct {
	Scenario string
	// LoadMbps is the offered load per flow; Flows the flow count.
	LoadMbps float64
	Flows    int
	// Caps and Preds hold, per screened arm, the solved saturated
	// aggregate capacity and the predicted delivered aggregate at this
	// load (min(offered, capacity)).
	Caps, Preds map[Protocol]float64
	// CSMACap and CMAPCap are the solved saturated aggregate capacities
	// of the two default arms (zero when an arm is not screened).
	CSMACap, CMAPCap float64
	// PredCSMA and PredCMAP are the predicted delivered aggregates at
	// this load: min(offered, capacity).
	PredCSMA, PredCMAP float64
	// Utilization is offered aggregate over the smaller arm capacity.
	Utilization float64
	// Simulate marks points the closed form cannot already decide;
	// Reason says why ("knee": near saturation, where queueing dynamics
	// the model ignores dominate; "arms-differ": the arms' predictions
	// diverge enough that the choice of protocol matters).
	Simulate bool
	Reason   string
}

// ScreenResult is a full analytic screen plus its wall-clock cost.
type ScreenResult struct {
	Points  []ScreenPoint
	Elapsed time.Duration
}

// Flagged returns how many points were tagged for full simulation.
func (r *ScreenResult) Flagged() int {
	n := 0
	for _, p := range r.Points {
		if p.Simulate {
			n++
		}
	}
	return n
}

// Format renders the screen as an aligned table.
func (r *ScreenResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %8s %6s %9s %9s %9s %9s %6s %s\n",
		"scenario", "load", "flows", "csma-cap", "cmap-cap", "pred-csma", "pred-cmap", "util", "simulate?")
	for _, p := range r.Points {
		tag := "-"
		if p.Simulate {
			tag = p.Reason
		}
		fmt.Fprintf(&b, "%-16s %8.2f %6d %9.2f %9.2f %9.2f %9.2f %6.2f %s\n",
			p.Scenario, p.LoadMbps, p.Flows, p.CSMACap, p.CMAPCap, p.PredCSMA, p.PredCMAP, p.Utilization, tag)
	}
	fmt.Fprintf(&b, "%d points screened in %v; %d flagged for simulation\n",
		len(r.Points), r.Elapsed.Round(time.Millisecond), r.Flagged())
	return b.String()
}

// AnalyticScreen evaluates every (scenario × load) grid point through
// the oracle: two fixed-point solves per scenario give both arms'
// saturated capacities, and each load point is classified against them.
// A grid that takes minutes to simulate screens in milliseconds; only
// points near an arm's saturation knee, or where the two arms disagree
// materially, are tagged for full simulation.
func AnalyticScreen(scens []ScreenScenario, loads []float64, opt Options) (*ScreenResult, error) {
	start := time.Now()
	arms, err := screenArms(opt)
	if err != nil {
		return nil, err
	}
	out := &ScreenResult{}
	for _, sc := range scens {
		caps := map[Protocol]float64{}
		for _, arm := range arms {
			res, err := PredictFlows(sc.TB, sc.Flows, arm, opt)
			if err != nil {
				return nil, err
			}
			if !res.Converged {
				return nil, fmt.Errorf("experiments: %s/%v fixed point did not converge (residual %.2e after %d iterations)",
					sc.Name, arm, res.Residual, res.Iterations)
			}
			caps[arm] = res.AggregateMbps()
		}
		minCap := 0.0
		for i, arm := range arms {
			if i == 0 || caps[arm] < minCap {
				minCap = caps[arm]
			}
		}
		for _, load := range loads {
			offered := load * float64(len(sc.Flows))
			p := ScreenPoint{
				Scenario: sc.Name,
				LoadMbps: load,
				Flows:    len(sc.Flows),
				Caps:     map[Protocol]float64{},
				Preds:    map[Protocol]float64{},
			}
			for _, arm := range arms {
				p.Caps[arm] = caps[arm]
				p.Preds[arm] = min(offered, caps[arm])
			}
			p.CSMACap, p.PredCSMA = p.Caps[CSMAOn], p.Preds[CSMAOn]
			p.CMAPCap, p.PredCMAP = p.Caps[CMAP], p.Preds[CMAP]
			if minCap > 0 {
				p.Utilization = offered / minCap
			}
			var reasons []string
			if p.Utilization >= 0.7 && p.Utilization <= 1.3 {
				reasons = append(reasons, "knee")
			}
			lo, hi := 0.0, 0.0
			for i, arm := range arms {
				pr := p.Preds[arm]
				if i == 0 || pr < lo {
					lo = pr
				}
				if i == 0 || pr > hi {
					hi = pr
				}
			}
			if lo > 0 && hi/lo >= 1.25 {
				reasons = append(reasons, "arms-differ")
			}
			if len(reasons) > 0 {
				p.Simulate = true
				p.Reason = strings.Join(reasons, ",")
			}
			out.Points = append(out.Points, p)
		}
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// screenArms resolves the arm set a screen covers: Options.Arms when
// set (restricted to arms the oracle models, erroring when none are),
// else the default CSMA-vs-CMAP comparison.
func screenArms(opt Options) ([]Protocol, error) {
	var arms []Protocol
	for _, a := range opt.armsOr([]Protocol{CSMAOn, CMAP}) {
		if _, ok := analyticArm(a); ok {
			arms = append(arms, a)
		}
	}
	if len(arms) == 0 {
		return nil, fmt.Errorf("experiments: none of the requested arms %v has an analytic model", opt.Arms)
	}
	return arms, nil
}

// SimulateScreenGrid runs the full simulator over the same (scenario ×
// load) grid an analytic screen covers: each point drives every flow with
// Poisson arrivals at the point's offered load under both modelled arms.
// It exists to measure the screen's speedup factor and its agreement
// with ground truth; trials fan out across the worker pool.
func SimulateScreenGrid(scens []ScreenScenario, loads []float64, opt Options) (map[string]map[float64]map[Protocol]float64, time.Duration, error) {
	start := time.Now()
	arms, err := screenArms(opt)
	if err != nil {
		return nil, 0, err
	}
	type trial struct {
		sc   int
		load float64
		arm  Protocol
	}
	var trials []trial
	for sci := range scens {
		for _, load := range loads {
			for _, arm := range arms {
				trials = append(trials, trial{sc: sci, load: load, arm: arm})
			}
		}
	}
	results := runner.Map(opt.pool(), len(trials), func(i int) []FlowResult {
		tr := trials[i]
		o := opt
		o.Traffic = traffic.Spec{Kind: traffic.Poisson}.WithOfferedMbps(tr.load, 1400)
		return runFlows(scens[tr.sc].TB, scens[tr.sc].Flows, tr.arm, o,
			opt.Seed+uint64(tr.sc)*7919+uint64(tr.load*1000)*13+tr.arm.seedSalt()*104729)
	})
	out := map[string]map[float64]map[Protocol]float64{}
	for i, tr := range trials {
		name := scens[tr.sc].Name
		if out[name] == nil {
			out[name] = map[float64]map[Protocol]float64{}
		}
		if out[name][tr.load] == nil {
			out[name][tr.load] = map[Protocol]float64{}
		}
		out[name][tr.load][tr.arm] = aggregate(results[i])
	}
	return out, time.Since(start), nil
}

// strongestDisjointLinks greedily picks up to k unicast links in
// descending isolation-PRR order such that no node serves two links —
// a deterministic flow set for generator layouts where the paper's
// pair-selection methodology finds no match.
func strongestDisjointLinks(tb *topo.Testbed, k int) []topo.Link {
	n := len(tb.PRR)
	type cand struct {
		l   topo.Link
		prr float64
	}
	var cands []cand
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b && tb.PRR[a][b] > 0.5 {
				cands = append(cands, cand{topo.Link{Src: a, Dst: b}, tb.PRR[a][b]})
			}
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].prr > cands[j].prr })
	used := make([]bool, n)
	var out []topo.Link
	for _, c := range cands {
		if len(out) == k {
			break
		}
		if used[c.l.Src] || used[c.l.Dst] {
			continue
		}
		used[c.l.Src], used[c.l.Dst] = true, true
		out = append(out, c.l)
	}
	return out
}

// StandardScreenScenarios assembles the screening portfolio: the four
// paper topology classes drawn from the 50-node testbed plus one
// instance of each Scenario generator, sized so the O(n²) measurement
// pass stays cheap.
func StandardScreenScenarios(seed uint64) []ScreenScenario {
	tb := topo.NewTestbed(50, seed)
	rng := sim.NewRNG(seed ^ 0x5c2ee4)
	var out []ScreenScenario
	if ps := tb.ExposedPairs(rng, 1); len(ps) == 1 {
		out = append(out, ScreenScenario{Name: "exposed-pair", TB: tb, Flows: []topo.Link{ps[0].A, ps[0].B}})
	}
	if ps := tb.InRangePairs(rng, 1); len(ps) == 1 {
		out = append(out, ScreenScenario{Name: "inrange-pair", TB: tb, Flows: []topo.Link{ps[0].A, ps[0].B}})
	}
	if ps := tb.HiddenPairs(rng, 1); len(ps) == 1 {
		out = append(out, ScreenScenario{Name: "hidden-pair", TB: tb, Flows: []topo.Link{ps[0].A, ps[0].B}})
	}
	if cells := tb.APRegions(); len(cells) >= 3 {
		flows := make([]topo.Link, 0, 3)
		for _, cell := range cells[:3] {
			flows = append(flows, topo.Link{Src: cell.AP, Dst: cell.Clients[rng.Intn(len(cell.Clients))]})
		}
		out = append(out, ScreenScenario{Name: "ap-cells", TB: tb, Flows: flows})
	}
	grid := topo.GridCity(2, 2, 4, 300, seed).Testbed()
	var gflows []topo.Link
	if ps := grid.InRangePairs(rng, 2); len(ps) > 0 {
		for _, p := range ps {
			gflows = append(gflows, p.A, p.B)
		}
	} else {
		// Dense street blocks rarely yield the paper's specific pair
		// geometry; fall back to the strongest node-disjoint links so the
		// generator still enters the screen.
		gflows = strongestDisjointLinks(grid, 4)
	}
	if len(gflows) > 0 {
		out = append(out, ScreenScenario{Name: "gridcity", TB: grid, Flows: gflows})
	}
	clusters := topo.ClusteredAPs(3, 3, 400, 12, seed)
	ctb := clusters.Testbed()
	var cflows []topo.Link
	for _, ap := range clusters.APs {
		// The AP's clients immediately follow it in generation order.
		cflows = append(cflows, topo.Link{Src: ap + 1, Dst: ap})
	}
	out = append(out, ScreenScenario{Name: "clusters", TB: ctb, Flows: cflows})
	disk := topo.UniformDisk(30, 200, seed).Testbed()
	if ps := disk.InRangePairs(rng, 2); len(ps) > 0 {
		var flows []topo.Link
		for _, p := range ps {
			flows = append(flows, p.A, p.B)
		}
		out = append(out, ScreenScenario{Name: "uniformdisk", TB: disk, Flows: flows})
	}
	return out
}
