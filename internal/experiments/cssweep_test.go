package experiments

import (
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topo"
)

// TestCSThresholdSweepEndpoints pins the tradeoff the sweep exists to
// show, at its endpoints: blinding the carrier sense must not hurt the
// exposed pairs (it frees concurrency) and must clearly hurt the hidden
// ones (it strips their only protection).
func TestCSThresholdSweepEndpoints(t *testing.T) {
	opt := Options{
		Seed:     3,
		Nodes:    50,
		Duration: 4 * sim.Second,
		Warmup:   2 * sim.Second,
		Pairs:    6,
		Rate:     phy.Rate6Mbps,
	}
	tb := topo.NewTestbed(opt.Nodes, opt.Seed)
	thresholds := []float64{-96, -87, -78}
	res := CSThresholdSweep(tb, opt, thresholds)
	if len(res.Points) != len(thresholds) {
		t.Fatalf("sweep returned %d points for %d thresholds", len(res.Points), len(thresholds))
	}
	sens, blind := res.Points[0], res.Points[len(res.Points)-1]
	if sens.Exposed.N() == 0 || sens.Hidden.N() == 0 {
		t.Fatal("sweep sampled no pairs — the assertions below would be vacuous")
	}
	if blind.Exposed.Median() < sens.Exposed.Median() {
		t.Errorf("exposed pairs: blind cs@%g median %.2f < sensitive cs@%g median %.2f — blinding should free concurrency",
			blind.ThresholdDBm, blind.Exposed.Median(), sens.ThresholdDBm, sens.Exposed.Median())
	}
	if sens.Hidden.Median() < 1.5*blind.Hidden.Median() {
		t.Errorf("hidden pairs: sensitive cs@%g median %.2f should clearly beat blind cs@%g median %.2f (want ≥1.5×)",
			sens.ThresholdDBm, sens.Hidden.Median(), blind.ThresholdDBm, blind.Hidden.Median())
	}
	found := false
	for _, thr := range thresholds {
		if res.KneeDBm == thr {
			found = true
		}
	}
	if !found {
		t.Errorf("knee %g dBm is not one of the swept thresholds %v", res.KneeDBm, thresholds)
	}
}

// TestCSThresholdSweepDefaults checks the zero-config path: a nil
// threshold list falls back to the default 3 dB grid.
func TestCSThresholdSweepDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("covered at full scale by TestCSThresholdSweepEndpoints")
	}
	opt := Options{
		Seed:     3,
		Nodes:    50,
		Duration: 1 * sim.Second,
		Warmup:   500 * sim.Millisecond,
		Pairs:    2,
		Rate:     phy.Rate6Mbps,
	}
	tb := topo.NewTestbed(opt.Nodes, opt.Seed)
	res := CSThresholdSweep(tb, opt, nil)
	if len(res.Points) != len(DefaultCSThresholds) {
		t.Fatalf("default sweep returned %d points, want %d", len(res.Points), len(DefaultCSThresholds))
	}
	for i, p := range res.Points {
		if p.ThresholdDBm != DefaultCSThresholds[i] {
			t.Errorf("point %d at %g dBm, want %g", i, p.ThresholdDBm, DefaultCSThresholds[i])
		}
		if p.Arm != CSAt(p.ThresholdDBm) {
			t.Errorf("point %d arm %q does not match CSAt(%g)", i, p.Arm, p.ThresholdDBm)
		}
	}
}
