package experiments

import (
	"fmt"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/mac"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// runTrafficFlows is the arrival-process counterpart of runFlows: each
// flow is driven by a traffic.Source (CBR, Poisson or bursty ON/OFF per
// Options.Traffic, optionally churning) into the sender's finite
// backlog, and each receiver's deliveries are matched back to arrival
// times for per-packet latency. The saturated path is deliberately left
// untouched in runFlows — its event sequence is pinned bit-exactly by
// the golden traces — so this function only ever runs for workloads
// that did not exist before the traffic subsystem.
func runTrafficFlows(tb *topo.Testbed, flows []topo.Link, p Protocol, opt Options, runSeed uint64) []FlowResult {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(runSeed)
	m, _ := buildMedium(tb, opt, sched, rng)
	meters := make([]*stats.Meter, len(flows))
	lats := make([]*stats.Latency, len(flows))
	sources := make([]*traffic.Source, len(flows))
	results := make([]FlowResult, len(flows))
	window := stats.Window{Start: opt.Warmup, End: opt.Duration}

	// deliver wires one receiver's non-duplicate deliveries to the flow's
	// latency recorder through the source's arrival-time ring.
	deliver := func(i, wantSrc int) func(src int, seq uint32, now sim.Time) {
		return func(src int, seq uint32, now sim.Time) {
			if src != wantSrc {
				return
			}
			if at, ok := sources[i].ArrivalTime(seq); ok {
				lats[i].Record(now, now-at)
			}
		}
	}

	arm := mac.MustLookup(string(p))
	senders := make([]mac.Node, len(flows))
	receivers := make([]mac.Node, len(flows))
	nodes := map[int]mac.Node{}
	mk := func(id int) mac.Node {
		if n, ok := nodes[id]; ok {
			return n
		}
		n := arm.New(id, m, rng.Stream(uint64(1000+id)), mac.Options{Rate: opt.Rate})
		nodes[id] = n
		return n
	}
	for i, f := range flows {
		senders[i] = mk(f.Src)
		receivers[i] = mk(f.Dst)
		meters[i] = &stats.Meter{Start: opt.Warmup, End: opt.Duration}
		receivers[i].SetMeter(meters[i])
		lats[i] = &stats.Latency{W: window}
		receivers[i].SetOnDeliver(deliver(i, f.Src))
		src := traffic.NewSource(sched, rng.Stream(uint64(5000+i)), opt.Traffic, senders[i], f.Dst)
		src.EnableLatency(senders[i].LatencyWindow())
		sources[i] = src
		src.Start()
	}
	sched.Run(opt.Duration)
	for i, f := range flows {
		st := sources[i].Stats()
		results[i] = FlowResult{
			Link:          f,
			Mbps:          meters[i].Mbps(),
			OfferedPkts:   st.Offered,
			AcceptedPkts:  st.Accepted,
			DroppedPkts:   st.Dropped,
			DeliveredPkts: meters[i].Packets(),
			Lat:           lats[i],
		}
		if sv, ok := senders[i].(mac.Visibility); ok {
			_, hdr, hot := receivers[i].(mac.Visibility).FlowCounters(f.Src)
			results[i].VpktsSent = sv.VpktsSent()
			results[i].VpktsHeader = hdr
			results[i].VpktsHdrOrTrail = hot
		}
	}
	return results
}

// sweepPayloadBytes is the application payload both MAC defaults use;
// the sweep's Mb/s axis converts through it.
const sweepPayloadBytes = 1400

// LoadPoint aggregates one offered-load position of the sweep across
// all sampled pairs.
type LoadPoint struct {
	// PerFlowMbps is the offered load per flow in Mb/s of payload.
	PerFlowMbps float64
	// Aggregate is the distribution over pairs of aggregate goodput.
	Aggregate map[Protocol]*stats.Dist
	// Latency pools every flow's per-packet delivery latency.
	Latency map[Protocol]*stats.Latency
	// Fairness is the distribution over pairs of Jain's index on the
	// two flows' goodputs.
	Fairness map[Protocol]*stats.Dist
	// Offered and Dropped sum the arrival counters over all flows.
	Offered, Dropped map[Protocol]uint64
}

// DropFrac returns the fraction of offered packets dropped at the
// queue tail under one arm.
func (p *LoadPoint) DropFrac(arm Protocol) float64 {
	if p.Offered[arm] == 0 {
		return 0
	}
	return float64(p.Dropped[arm]) / float64(p.Offered[arm])
}

// LoadSweep is the offered-load figure this reproduction adds beyond
// the paper: goodput and latency versus load, CMAP against the status
// quo, on a fixed set of topology pairs. Below saturation both
// protocols should track the offered load (the monotone regime the
// unsaturated-CSMA literature analyses); past the knee the exposed-pair
// topology is where CMAP's concurrency pays and carrier sense
// serialises.
type LoadSweep struct {
	Name     string
	Topology string // "exposed" or "hidden"
	Kind     traffic.Kind
	Arms     []Protocol
	Points   []LoadPoint
}

// OfferedLoad sweeps per-flow offered load (Mb/s of payload) over pairs
// of the given topology class ("exposed" or "hidden") under CMAP and
// CS+acks. The arrival process comes from opt.Traffic (its rate is
// overridden per sweep point); a saturated opt defaults to Poisson.
// Trials fan out across the worker pool like every other experiment,
// bit-identical at any worker count.
func OfferedLoad(tb *topo.Testbed, topology string, loads []float64, opt Options) *LoadSweep {
	// A nil campaign cannot fail: every error path in offeredLoad is
	// manifest I/O.
	sweep, _ := offeredLoad(tb, topology, loads, opt, nil)
	return sweep
}

// offeredLoad is the sweep body, optionally recording (and replaying)
// per-trial results through a campaign manifest — see
// OfferedLoadCampaign.
func offeredLoad(tb *topo.Testbed, topology string, loads []float64, opt Options, camp *checkpoint.Campaign) (*LoadSweep, error) {
	kind := opt.Traffic.Kind
	if kind == traffic.Saturated {
		kind = traffic.Poisson
	}
	rng := sim.NewRNG(opt.Seed ^ 0xf10ad)
	var pairs []topo.LinkPair
	switch topology {
	case "hidden":
		pairs = tb.HiddenPairs(rng, opt.Pairs)
	default:
		topology = "exposed"
		pairs = tb.ExposedPairs(rng, opt.Pairs)
	}
	arms := opt.armsOr([]Protocol{CSMAOn, CMAP})
	sweep := &LoadSweep{
		Name:     fmt.Sprintf("Load sweep: %s pairs, %v arrivals", topology, kind),
		Topology: topology,
		Kind:     kind,
		Arms:     arms,
	}
	type trialKey struct {
		li, pi int
		arm    Protocol
	}
	var keys []trialKey
	var pointKeys []string
	for li := range loads {
		for pi := range pairs {
			for _, arm := range arms {
				keys = append(keys, trialKey{li: li, pi: pi, arm: arm})
				pointKeys = append(pointKeys,
					fmt.Sprintf("loadsweep/%s/%s/load%g/pair%d", topology, arm, loads[li], pi))
			}
		}
	}
	// Each trial's seed is a pure function of its key, so the campaign
	// can skip completed trials without perturbing the rest.
	trials, err := resumableMap(camp, opt.pool(), pointKeys, func(t int) []FlowResult {
		k := keys[t]
		o := opt
		o.Traffic.Kind = kind
		// The axis means long-run offered load: duty-cycled kinds get
		// their peak rate scaled so the mean lands on the sweep value.
		o.Traffic = o.Traffic.WithOfferedMbps(loads[k.li], sweepPayloadBytes)
		flows := []topo.Link{pairs[k.pi].A, pairs[k.pi].B}
		seed := opt.Seed + uint64(k.li)*15485863 + uint64(k.pi)*7919 + k.arm.seedSalt()*104729
		return runFlows(tb, flows, k.arm, o, seed)
	})
	if err != nil {
		return nil, err
	}
	for _, load := range loads {
		pt := LoadPoint{
			PerFlowMbps: load,
			Aggregate:   map[Protocol]*stats.Dist{},
			Latency:     map[Protocol]*stats.Latency{},
			Fairness:    map[Protocol]*stats.Dist{},
			Offered:     map[Protocol]uint64{},
			Dropped:     map[Protocol]uint64{},
		}
		for _, arm := range arms {
			pt.Aggregate[arm] = &stats.Dist{}
			pt.Latency[arm] = &stats.Latency{}
			pt.Fairness[arm] = &stats.Dist{}
		}
		sweep.Points = append(sweep.Points, pt)
	}
	for t, k := range keys {
		rs := trials[t]
		pt := &sweep.Points[k.li]
		var mbps []float64
		for _, fr := range rs {
			mbps = append(mbps, fr.Mbps)
			pt.Latency[k.arm].Merge(fr.Lat)
			pt.Offered[k.arm] += fr.OfferedPkts
			pt.Dropped[k.arm] += fr.DroppedPkts
		}
		pt.Aggregate[k.arm].Add(aggregate(rs))
		pt.Fairness[k.arm].Add(stats.Jain(mbps))
	}
	return sweep, nil
}

// MedianAggregate returns the median aggregate goodput at point i.
func (s *LoadSweep) MedianAggregate(i int, arm Protocol) float64 {
	return s.Points[i].Aggregate[arm].Median()
}

// Format renders the sweep: per load, each arm's goodput, latency
// percentiles, fairness and tail-drop fraction.
func (s *LoadSweep) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (offered load per flow; aggregate over both flows)\n", s.Name)
	fmt.Fprintf(&b, "%-10s %-14s %9s %9s %9s %9s %9s %7s %7s\n",
		"load Mb/s", "arm", "goodput", "p50 ms", "p95 ms", "p99 ms", "lat n", "Jain", "drop%")
	for _, pt := range s.Points {
		for _, arm := range s.Arms {
			l := pt.Latency[arm]
			fmt.Fprintf(&b, "%-10.2f %-14s %9.2f %9.2f %9.2f %9.2f %9d %7.2f %7.1f\n",
				pt.PerFlowMbps, arm.String(), pt.Aggregate[arm].Median(),
				l.P50(), l.P95(), l.P99(), l.N(),
				pt.Fairness[arm].Mean(), 100*pt.DropFrac(arm))
		}
	}
	return b.String()
}
