package experiments

import (
	"reflect"
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topo"
)

// TestSparseDenseFlowEquivalence is the tentpole's acceptance proof: a
// full protocol run over the grid-constructed sparse medium produces
// bit-identical FlowResults to the reference O(n²) dense construction on
// the seed testbed — goodput down to the last IEEE-754 bit, visibility
// counters down to the last packet. The sparse medium therefore changes
// no paper figure; it only changes the asymptotics.
func TestSparseDenseFlowEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence proof runs via make golden, not the -short tier")
	}
	t.Parallel()
	opt := Options{
		Seed:     3,
		Nodes:    50,
		Duration: 2 * sim.Second,
		Warmup:   1 * sim.Second,
		Rate:     phy.Rate6Mbps,
	}
	sparse := topo.NewTestbed(opt.Nodes, 3)
	dense := *sparse
	dense.DenseMedium = true

	type scenario struct {
		name  string
		flows []topo.Link
	}
	var scenarios []scenario
	if pairs := sparse.ExposedPairs(sim.NewRNG(41), 2); len(pairs) > 0 {
		for _, p := range pairs {
			scenarios = append(scenarios, scenario{"exposed", []topo.Link{p.A, p.B}})
		}
	}
	if pairs := sparse.HiddenPairs(sim.NewRNG(43), 1); len(pairs) > 0 {
		scenarios = append(scenarios, scenario{"hidden", []topo.Link{pairs[0].A, pairs[0].B}})
	}
	if pairs := sparse.InRangePairs(sim.NewRNG(47), 1); len(pairs) > 0 {
		scenarios = append(scenarios, scenario{"inrange", []topo.Link{pairs[0].A, pairs[0].B}})
	}
	if len(scenarios) < 3 {
		t.Fatalf("only %d scenarios available on the seed testbed", len(scenarios))
	}

	for si, sc := range scenarios {
		for _, arm := range goldenArms {
			runSeed := uint64(1000*si) + arm.seedSalt()*31 + 5
			rs := runFlows(sparse, sc.flows, arm, opt, runSeed)
			rd := runFlows(&dense, sc.flows, arm, opt, runSeed)
			if !reflect.DeepEqual(rs, rd) {
				t.Errorf("%s/%v: sparse and dense media diverged\n  sparse %+v\n  dense  %+v",
					sc.name, arm, rs, rd)
			}
			// Guard against the vacuous pass where nothing flowed at all.
			var total float64
			for _, r := range rs {
				total += r.Mbps
			}
			if total == 0 {
				t.Errorf("%s/%v: zero aggregate goodput — equivalence trivially true", sc.name, arm)
			}
		}
	}
}

// TestSparseDenseEquivalenceOnScenario repeats the proof on a generated
// large-scale layout where the grid actually prunes pairs, so the
// equivalence is not an artifact of the office floor fitting inside one
// grid cell.
func TestSparseDenseEquivalenceOnScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("equivalence proof runs via make golden, not the -short tier")
	}
	t.Parallel()
	opt := Options{
		Seed:     9,
		Duration: 1 * sim.Second,
		Warmup:   500 * sim.Millisecond,
		Rate:     phy.Rate6Mbps,
	}
	s := topo.UniformDisk(300, 100, 9)
	sparse := s.Testbed()
	if m := s.Build(sim.NewScheduler(), sim.NewRNG(1)); !m.GridBacked() {
		t.Fatal("scenario medium not grid backed — test would prove nothing")
	}
	dense := *sparse
	dense.DenseMedium = true
	pairs := sparse.InRangePairs(sim.NewRNG(17), 2)
	if len(pairs) == 0 {
		t.Fatal("no in-range pairs on the disk scenario")
	}
	for _, p := range pairs {
		flows := []topo.Link{p.A, p.B}
		for _, arm := range []Protocol{CSMAOn, CSMAOffNoAcks, CMAP} {
			rs := runFlows(sparse, flows, arm, opt, 77+arm.seedSalt())
			rd := runFlows(&dense, flows, arm, opt, 77+arm.seedSalt())
			if !reflect.DeepEqual(rs, rd) {
				t.Errorf("disk scenario %v: sparse and dense media diverged\n  sparse %+v\n  dense  %+v", arm, rs, rd)
			}
		}
	}
}
