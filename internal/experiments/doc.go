// Package experiments reproduces every table and figure of the paper's
// evaluation, plus the scaling benchmarks and the offered-load sweep
// that grow the reproduction beyond it.
//
// # Relation to the paper
//
// Each experiment selects topologies from a testbed with the paper's
// constraints (Figure 11), runs the protocol arms the figure compares,
// and returns the same rows or series the paper reports:
//
//   - RunCalibration — §4.2's single-link sanity check.
//   - ExposedTerminals — Figure 12 (§5.2), the headline ≈2× gain.
//   - InRangeSenders — Figure 13 (§5.3).
//   - HiddenInterferers — Figure 14 and the §5.4 derived numbers.
//   - HiddenTerminals — Figure 15 (§5.5).
//   - HeaderTrailer — Figure 16, header/trailer salvage CDFs.
//   - AccessPoint — Figures 17+18 (§5.6).
//   - HeaderTrailerVsSenders — Figure 19.
//   - VariableBitRates — Figure 20 (§5.8).
//   - Mesh — the §5.7 content-dissemination experiment.
//
// # Beyond the paper
//
// OfferedLoad sweeps per-flow offered load under pluggable arrival
// processes (internal/traffic), reporting goodput, p50/p95/p99 latency,
// Jain fairness and tail drops for CMAP versus carrier sense on exposed
// and hidden pairs — the unsaturated regimes the follow-on literature
// analyses. ScaleBenchmarks and the 50/200/1000-node suites track the
// performance trajectory (BENCH_<sha>.json). All experiments fan their
// trials across internal/runner with seeds fixed before dispatch, so
// results are bit-identical at every worker count; the golden-trace
// tier pins the whole stack's behaviour at the bit level.
package experiments
