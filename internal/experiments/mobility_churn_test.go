package experiments

import (
	"math"
	"testing"

	"repro/internal/mobility"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// TestMobilityChurnInterplay drives the arrival-process runner with
// churning Poisson flows while every node moves: the two subsystems
// share the scheduler, so this pins their interleaving — same seed
// twice must be bit-identical, packet accounting must stay exact, and
// the motion must demonstrably have happened (the run differs from its
// static twin).
func TestMobilityChurnInterplay(t *testing.T) {
	opt := Quick(5)
	opt.Duration = 2 * sim.Second
	opt.Warmup = 500 * sim.Millisecond
	spec := traffic.PoissonAt(300)
	spec.UpMean, spec.DownMean = 150*sim.Millisecond, 150*sim.Millisecond
	opt.Traffic = spec
	// Arena-wide waypoint at vehicular speed: links must visibly break
	// and re-form, so the mobile run cannot coincide with its static
	// twin even on an unsaturated (arrival-limited) workload.
	opt.Mobility = mobility.Spec{Kind: mobility.Waypoint, SpeedMps: 15, DecorrM: 10}

	tb := topo.NewTestbed(opt.Nodes, opt.Seed)
	pair := tb.ExposedPairs(sim.NewRNG(opt.Seed^0x777), 1)[0]
	flows := []topo.Link{pair.A, pair.B}

	run := func(o Options) []FlowResult {
		return runTrafficFlows(tb, flows, CMAP, o, 99)
	}
	a, b := run(opt), run(opt)
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("expected 2 flows, got %d and %d", len(a), len(b))
	}
	var delivered uint64
	for i := range a {
		if math.Float64bits(a[i].Mbps) != math.Float64bits(b[i].Mbps) ||
			a[i].OfferedPkts != b[i].OfferedPkts || a[i].DeliveredPkts != b[i].DeliveredPkts {
			t.Fatalf("flow %d: same seed diverged: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].AcceptedPkts > a[i].OfferedPkts {
			t.Fatalf("flow %d: accepted %d > offered %d", i, a[i].AcceptedPkts, a[i].OfferedPkts)
		}
		if a[i].DeliveredPkts > a[i].AcceptedPkts {
			t.Fatalf("flow %d: delivered %d > accepted %d", i, a[i].DeliveredPkts, a[i].AcceptedPkts)
		}
		delivered += a[i].DeliveredPkts
	}
	if delivered == 0 {
		t.Fatal("churning mobile flows delivered nothing — the interplay test ran vacuously")
	}

	static := opt
	static.Mobility = mobility.Spec{}
	s := run(static)
	same := true
	for i := range a {
		if math.Float64bits(a[i].Mbps) != math.Float64bits(s[i].Mbps) {
			same = false
		}
	}
	if same {
		t.Fatal("mobile run bit-identical to static run — mobility never touched the medium")
	}
}
