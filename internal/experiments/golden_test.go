package experiments

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topo"
)

// The golden-trace tier pins down the exact simulation behaviour of
// every protocol arm on a handful of fixed topologies. Any refactor
// that silently changes event ordering, RNG consumption, or float
// arithmetic anywhere in the stack shows up as a bit-level diff here.
// Goodput is compared through its IEEE-754 bit pattern — "close" is a
// failure; behaviour must be identical or the change must be owned by
// regenerating the files with:
//
//	go test ./internal/experiments -run TestGoldenTraces -update
var updateGolden = flag.Bool("update", false, "rewrite the golden trace files")

// goldenSeeds are the pinned topology/protocol seeds. Three seeds cover
// different testbed realisations without making the tier slow.
var goldenSeeds = []uint64{1, 2, 7}

// goldenArms is every protocol arm of §5.
var goldenArms = []Protocol{CSMAOn, CSMAOnNoAcks, CSMAOffAcks, CSMAOffNoAcks, CMAP, CMAPWin1}

type goldenFlow struct {
	Src             int    `json:"src"`
	Dst             int    `json:"dst"`
	MbpsBits        string `json:"mbps_bits"` // hex IEEE-754 bits, compared exactly
	Mbps            string `json:"mbps"`      // human-readable rendering of the same value
	VpktsSent       uint64 `json:"vpkts_sent"`
	VpktsHeader     uint64 `json:"vpkts_header"`
	VpktsHdrOrTrail uint64 `json:"vpkts_hdr_or_trail"`
}

type goldenRun struct {
	Topology string       `json:"topology"`
	Arm      string       `json:"arm"`
	Flows    []goldenFlow `json:"flows"`
}

type goldenFile struct {
	Seed       uint64      `json:"seed"`
	Nodes      int         `json:"nodes"`
	DurationNs int64       `json:"duration_ns"`
	WarmupNs   int64       `json:"warmup_ns"`
	Runs       []goldenRun `json:"runs"`
}

// goldenOptions is a fixed scale, independent of -short: golden values
// must not depend on how the tier is invoked.
func goldenOptions(seed uint64) Options {
	return Options{
		Seed:     seed,
		Nodes:    50,
		Duration: 3 * sim.Second,
		Warmup:   1500 * sim.Millisecond,
		Rate:     phy.Rate6Mbps,
	}
}

// goldenTopologies samples one fixed topology per Figure 11 class.
func goldenTopologies(tb *topo.Testbed, seed uint64) []struct {
	name  string
	flows []topo.Link
} {
	var out []struct {
		name  string
		flows []topo.Link
	}
	add := func(name string, pairs []topo.LinkPair) {
		if len(pairs) == 0 {
			return
		}
		out = append(out, struct {
			name  string
			flows []topo.Link
		}{name, []topo.Link{pairs[0].A, pairs[0].B}})
	}
	add("exposed", tb.ExposedPairs(sim.NewRNG(seed^0x901d), 1))
	add("inrange", tb.InRangePairs(sim.NewRNG(seed^0x901e), 1))
	add("hidden", tb.HiddenPairs(sim.NewRNG(seed^0x901f), 1))
	return out
}

func captureGolden(seed uint64, arms []Protocol) goldenFile {
	opt := goldenOptions(seed)
	tb := topo.NewTestbed(opt.Nodes, seed)
	gf := goldenFile{
		Seed:       seed,
		Nodes:      opt.Nodes,
		DurationNs: int64(opt.Duration),
		WarmupNs:   int64(opt.Warmup),
	}
	for ti, tp := range goldenTopologies(tb, seed) {
		for _, arm := range arms {
			runSeed := seed + uint64(ti)*7919 + arm.seedSalt()*104729
			rs := runFlows(tb, tp.flows, arm, opt, runSeed)
			run := goldenRun{Topology: tp.name, Arm: arm.String()}
			for _, fr := range rs {
				run.Flows = append(run.Flows, goldenFlow{
					Src:             fr.Link.Src,
					Dst:             fr.Link.Dst,
					MbpsBits:        fmt.Sprintf("%016x", math.Float64bits(fr.Mbps)),
					Mbps:            strconv.FormatFloat(fr.Mbps, 'g', -1, 64),
					VpktsSent:       fr.VpktsSent,
					VpktsHeader:     fr.VpktsHeader,
					VpktsHdrOrTrail: fr.VpktsHdrOrTrail,
				})
			}
			gf.Runs = append(gf.Runs, run)
		}
	}
	return gf
}

func goldenPath(seed uint64) string {
	return filepath.Join("testdata", fmt.Sprintf("golden_seed%d.json", seed))
}

func TestGoldenTraces(t *testing.T) {
	if testing.Short() {
		// The golden tier has its own gate (`make golden`); keeping it out
		// of -short avoids paying for the 54 runs twice per CI pass (once
		// race-instrumented, once plain).
		t.Skip("golden tier runs via make golden, not the -short tier")
	}
	for _, seed := range goldenSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			got := captureGolden(seed, goldenArms)
			path := goldenPath(seed)
			if *updateGolden {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d runs)", path, len(got.Runs))
				return
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("no golden trace for seed %d (%v); run with -update to create it", seed, err)
			}
			var want goldenFile
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("corrupt golden file %s: %v", path, err)
			}
			if len(got.Runs) != len(want.Runs) {
				t.Fatalf("captured %d runs, golden file has %d — topology availability drifted; "+
					"inspect and regenerate with -update", len(got.Runs), len(want.Runs))
			}
			for i := range want.Runs {
				w, g := want.Runs[i], got.Runs[i]
				if !reflect.DeepEqual(w, g) {
					t.Errorf("run %d (%s/%s) drifted from the golden trace:\n  want %+v\n  got  %+v\n"+
						"simulation behaviour changed; if intentional, regenerate with -update",
						i, w.Topology, w.Arm, w, g)
				}
			}
		})
	}
}

// TestGoldenBitsMatchHumanRendering guards the file format itself: the
// hex bits and the readable number must describe the same float, so a
// hand-edited golden file cannot drift into self-inconsistency.
func TestGoldenBitsMatchHumanRendering(t *testing.T) {
	for _, seed := range goldenSeeds {
		data, err := os.ReadFile(goldenPath(seed))
		if err != nil {
			t.Skipf("golden files not generated yet: %v", err)
		}
		var gf goldenFile
		if err := json.Unmarshal(data, &gf); err != nil {
			t.Fatal(err)
		}
		for _, run := range gf.Runs {
			for _, fl := range run.Flows {
				bits, err := strconv.ParseUint(fl.MbpsBits, 16, 64)
				if err != nil {
					t.Fatalf("seed %d %s/%s: bad bits %q", seed, run.Topology, run.Arm, fl.MbpsBits)
				}
				human, err := strconv.ParseFloat(fl.Mbps, 64)
				if err != nil {
					t.Fatalf("seed %d %s/%s: bad mbps %q", seed, run.Topology, run.Arm, fl.Mbps)
				}
				if math.Float64frombits(bits) != human {
					t.Fatalf("seed %d %s/%s flow %d→%d: bits %q ≠ rendering %q",
						seed, run.Topology, run.Arm, fl.Src, fl.Dst, fl.MbpsBits, fl.Mbps)
				}
			}
		}
	}
}
