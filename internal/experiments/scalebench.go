package experiments

// The node-count scaling measurements live outside the _test files so
// cmapbench can run them and emit machine-readable results (-benchjson):
// the perf trajectory across PRs is part of the repository's contract,
// not just a local curiosity.

import (
	"fmt"
	"testing"

	"repro/internal/csma"
	"repro/internal/medium"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// ScaleDensity keeps the audible neighbourhood constant as n grows, the
// regime where sparse construction is O(n·k). 50 nodes/km² is a rural
// mesh: at 1000 nodes the disk spans ~5 km, several delivery ranges
// across, so the grid genuinely prunes.
const ScaleDensity = 50 // nodes per km²

// ScaleSizes is the node-count sweep shared by every scaling benchmark.
var ScaleSizes = []int{50, 200, 1000}

// ScaleFlows picks one saturated flow per stride nodes: each source
// sends to the receiver that hears it loudest. No O(n²) measurement
// pass is involved — the delivery lists already know the answer.
func ScaleFlows(s *topo.Scenario, m *medium.Medium, count int) []topo.Link {
	flows := make([]topo.Link, 0, count)
	used := map[int]bool{}
	stride := s.N() / count
	if stride < 1 {
		stride = 1
	}
	for src := 0; src < s.N() && len(flows) < count; src += stride {
		best, bestG := -1, 0.0
		m.ForEachNeighbor(src, func(dst int, gainMW float64) {
			if !used[dst] && gainMW > bestG {
				best, bestG = dst, gainMW
			}
		})
		if best == -1 || used[src] {
			continue
		}
		used[src], used[best] = true, true
		flows = append(flows, topo.Link{Src: src, Dst: best})
	}
	return flows
}

// RunScaleTraffic drives saturated 802.11 flows over a fresh build of
// the scenario for a short virtual window and returns the aggregate
// goodput, exercising the sparse Transmit fan-out end to end.
func RunScaleTraffic(s *topo.Scenario, flows []topo.Link, d sim.Time, seed uint64) float64 {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	m := s.Build(sched, rng.Stream(1))
	cfg := csma.DefaultConfig()
	meters := make([]*stats.Meter, len(flows))
	for i, f := range flows {
		tx := csma.New(f.Src, cfg, m, rng.Stream(uint64(1000+f.Src)))
		rx := csma.New(f.Dst, cfg, m, rng.Stream(uint64(1000+f.Dst)))
		meters[i] = &stats.Meter{Start: 0, End: d}
		rx.Meter = meters[i]
		tx.SetSaturated(f.Dst)
	}
	sched.Run(d)
	var agg float64
	for _, mt := range meters {
		agg += mt.Mbps()
	}
	return agg
}

// SaturatedNetwork is a built scenario carrying saturated 802.11 flows,
// kept alive so steady-state traffic can be measured with construction
// excluded — the regime where per-frame allocation behaviour, not
// medium construction, dominates.
type SaturatedNetwork struct {
	Sched  *sim.Scheduler
	Medium *medium.Medium
	Flows  []topo.Link
}

// NewSaturatedNetwork builds an n-node uniform disk at ScaleDensity,
// starts one saturated flow per ten nodes, and advances past the
// initial contention transient.
func NewSaturatedNetwork(n int, seed uint64) *SaturatedNetwork {
	s := topo.UniformDisk(n, ScaleDensity, seed)
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	m := s.Build(sched, rng.Stream(1))
	flows := ScaleFlows(s, m, n/10+2)
	cfg := csma.DefaultConfig()
	for _, f := range flows {
		tx := csma.New(f.Src, cfg, m, rng.Stream(uint64(1000+f.Src)))
		csma.New(f.Dst, cfg, m, rng.Stream(uint64(1000+f.Dst)))
		tx.SetSaturated(f.Dst)
	}
	net := &SaturatedNetwork{Sched: sched, Medium: m, Flows: flows}
	net.Advance(20 * sim.Millisecond) // warm past the cold-start transient
	return net
}

// Advance runs the network d further through virtual time.
func (sn *SaturatedNetwork) Advance(d sim.Time) {
	sn.Sched.Run(sn.Sched.Now() + d)
}

// ScaleBenchmark is one scaling benchmark runnable outside `go test`.
type ScaleBenchmark struct {
	Name string
	Run  func(b *testing.B)
}

// BenchMediumConstruct measures sparse channel construction at size n.
func BenchMediumConstruct(n int) func(b *testing.B) {
	s := topo.UniformDisk(n, ScaleDensity, 1)
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := s.Build(sim.NewScheduler(), sim.NewRNG(uint64(i)+1))
			if m.NodeCount() != n {
				b.Fatal("bad build")
			}
		}
	}
}

// BenchScaleTraffic measures a fresh-build 20 ms saturated run at size
// n (construction included — the PR 2 shape, kept for trajectory
// comparability).
func BenchScaleTraffic(n int) func(b *testing.B) {
	s := topo.UniformDisk(n, ScaleDensity, 1)
	m := s.Build(sim.NewScheduler(), sim.NewRNG(1))
	flows := ScaleFlows(s, m, n/10+2)
	return func(b *testing.B) {
		if len(flows) == 0 {
			b.Fatalf("no flows at n=%d", n)
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			RunScaleTraffic(s, flows, 20*sim.Millisecond, uint64(i)+1)
		}
	}
}

// BenchSaturatedSteadyState measures 20 ms virtual-time windows of
// saturated traffic on a persistent n-node network — construction
// excluded, the steady state the zero-allocation transmit path targets.
func BenchSaturatedSteadyState(n int) func(b *testing.B) {
	return func(b *testing.B) {
		net := NewSaturatedNetwork(n, 1)
		if len(net.Flows) == 0 {
			b.Fatalf("no flows at n=%d", n)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.Advance(20 * sim.Millisecond)
		}
	}
}

// ScaleBenchmarks returns the scaling suite cmapbench -benchjson runs.
func ScaleBenchmarks() []ScaleBenchmark {
	var out []ScaleBenchmark
	for _, n := range ScaleSizes {
		out = append(out, ScaleBenchmark{
			Name: fmt.Sprintf("MediumConstruct/n=%d", n),
			Run:  BenchMediumConstruct(n),
		})
	}
	for _, n := range ScaleSizes {
		out = append(out, ScaleBenchmark{
			Name: fmt.Sprintf("ScaleTraffic/n=%d", n),
			Run:  BenchScaleTraffic(n),
		})
	}
	for _, n := range ScaleSizes {
		out = append(out, ScaleBenchmark{
			Name: fmt.Sprintf("SaturatedSteadyState/n=%d", n),
			Run:  BenchSaturatedSteadyState(n),
		})
	}
	return out
}
