package experiments

// The node-count scaling measurements live outside the _test files so
// cmapbench can run them and emit machine-readable results (-benchjson):
// the perf trajectory across PRs is part of the repository's contract,
// not just a local curiosity.

import (
	"fmt"
	"testing"

	"repro/internal/csma"
	"repro/internal/geo"
	"repro/internal/medium"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// ScaleDensity keeps the audible neighbourhood constant as n grows, the
// regime where sparse construction is O(n·k). 50 nodes/km² is a rural
// mesh: at 1000 nodes the disk spans ~5 km, several delivery ranges
// across, so the grid genuinely prunes.
const ScaleDensity = 50 // nodes per km²

// ScaleSizes is the node-count sweep shared by every scaling benchmark.
var ScaleSizes = []int{50, 200, 1000}

// MediumConstructSizes extends the construction sweep past the traffic
// sizes: construction is cheap enough to benchmark at node counts where
// a full traffic run would dominate the suite.
var MediumConstructSizes = []int{50, 200, 1000, 5000}

// ShardScaleSizes × ShardCounts is the sharded-engine scaling matrix.
// On a multi-core host the shards>1 columns show the wall-clock win;
// on one core they price the window-barrier overhead instead.
var (
	ShardScaleSizes = []int{1000, 5000, 10000}
	ShardCounts     = []int{1, 2, 4, 8}
)

// NeighborLister is the audibility surface the flow picker needs: who
// hears node i, and how loudly. *medium.Medium and *shard.Engine both
// satisfy it over the same delivery lists.
type NeighborLister interface {
	ForEachNeighbor(i int, fn func(dst int, gainMW float64))
}

// deliveryLists adapts raw delivery lists to NeighborLister, so flows
// can be picked before the engine that will use the lists exists.
type deliveryLists [][]medium.Delivery

func (d deliveryLists) ForEachNeighbor(i int, fn func(dst int, gainMW float64)) {
	for _, e := range d[i] {
		fn(e.Dst, e.GainMW)
	}
}

// ScaleFlows picks one saturated flow per stride nodes: each source
// sends to the receiver that hears it loudest. No O(n²) measurement
// pass is involved — the delivery lists already know the answer.
func ScaleFlows(s *topo.Scenario, m NeighborLister, count int) []topo.Link {
	flows := make([]topo.Link, 0, count)
	used := map[int]bool{}
	stride := s.N() / count
	if stride < 1 {
		stride = 1
	}
	for src := 0; src < s.N() && len(flows) < count; src += stride {
		best, bestG := -1, 0.0
		m.ForEachNeighbor(src, func(dst int, gainMW float64) {
			if !used[dst] && gainMW > bestG {
				best, bestG = dst, gainMW
			}
		})
		if best == -1 || used[src] {
			continue
		}
		used[src], used[best] = true, true
		flows = append(flows, topo.Link{Src: src, Dst: best})
	}
	return flows
}

// buildScaleRun constructs the scheduler, medium, and saturated csma
// wiring of one scale-traffic run, stopping just short of running it —
// the split exists so benchmarks can keep construction off the timer.
func buildScaleRun(s *topo.Scenario, flows []topo.Link, d sim.Time, seed uint64) (*sim.Scheduler, []*stats.Meter) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	m := s.Build(sched, rng.Stream(1))
	cfg := csma.DefaultConfig()
	meters := make([]*stats.Meter, len(flows))
	for i, f := range flows {
		tx := csma.New(f.Src, cfg, m, rng.Stream(uint64(1000+f.Src)))
		rx := csma.New(f.Dst, cfg, m, rng.Stream(uint64(1000+f.Dst)))
		meters[i] = &stats.Meter{Start: 0, End: d}
		rx.Meter = meters[i]
		tx.SetSaturated(f.Dst)
	}
	return sched, meters
}

// RunScaleTraffic drives saturated 802.11 flows over a fresh build of
// the scenario for a short virtual window and returns the aggregate
// goodput, exercising the sparse Transmit fan-out end to end.
func RunScaleTraffic(s *topo.Scenario, flows []topo.Link, d sim.Time, seed uint64) float64 {
	sched, meters := buildScaleRun(s, flows, d, seed)
	sched.Run(d)
	var agg float64
	for _, mt := range meters {
		agg += mt.Mbps()
	}
	return agg
}

// SaturatedNetwork is a built scenario carrying saturated 802.11 flows,
// kept alive so steady-state traffic can be measured with construction
// excluded — the regime where per-frame allocation behaviour, not
// medium construction, dominates.
type SaturatedNetwork struct {
	Sched  *sim.Scheduler
	Medium *medium.Medium
	Flows  []topo.Link
}

// NewSaturatedNetwork builds an n-node uniform disk at ScaleDensity,
// starts one saturated flow per ten nodes, and advances past the
// initial contention transient.
func NewSaturatedNetwork(n int, seed uint64) *SaturatedNetwork {
	s := topo.UniformDisk(n, ScaleDensity, seed)
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	m := s.Build(sched, rng.Stream(1))
	flows := ScaleFlows(s, m, n/10+2)
	cfg := csma.DefaultConfig()
	for _, f := range flows {
		tx := csma.New(f.Src, cfg, m, rng.Stream(uint64(1000+f.Src)))
		csma.New(f.Dst, cfg, m, rng.Stream(uint64(1000+f.Dst)))
		tx.SetSaturated(f.Dst)
	}
	net := &SaturatedNetwork{Sched: sched, Medium: m, Flows: flows}
	net.Advance(20 * sim.Millisecond) // warm past the cold-start transient
	return net
}

// Advance runs the network d further through virtual time.
func (sn *SaturatedNetwork) Advance(d sim.Time) {
	sn.Sched.Run(sn.Sched.Now() + d)
}

// ShardedSaturatedNetwork is the sharded analogue of SaturatedNetwork:
// the same disk, the same flow-picking rule, the same saturated csma
// wiring — but the event loop partitioned across shards. The delivery
// lists are built once and shared between the flow picker and the
// engine.
type ShardedSaturatedNetwork struct {
	Engine *shard.Engine
	Flows  []topo.Link
}

// NewShardedSaturatedNetwork builds an n-node uniform disk at
// ScaleDensity carrying one saturated flow per ten nodes on a
// shards-way engine, warmed past the cold-start transient.
func NewShardedSaturatedNetwork(n, shards int, seed uint64) *ShardedSaturatedNetwork {
	s := topo.UniformDisk(n, ScaleDensity, seed)
	rng := sim.NewRNG(seed)
	engStream := rng.Stream(1) // the stream s.Build would hand the medium
	lists, _ := medium.BuildDeliveries(s.Params, s.Model, s.Pos, 0)
	flows := ScaleFlows(s, deliveryLists(lists), n/10+2)
	pairs := make([][2]int, len(flows))
	for i, f := range flows {
		pairs[i] = [2]int{f.Src, f.Dst}
	}
	eng := shard.NewEngine(s.Params, s.Model, s.Pos, engStream, shard.Config{
		Shards:     shards,
		Flows:      pairs,
		Deliveries: lists,
	})
	cfg := csma.DefaultConfig()
	for _, f := range flows {
		tx := csma.New(f.Src, cfg, eng.Network(f.Src), rng.Stream(uint64(1000+f.Src)))
		csma.New(f.Dst, cfg, eng.Network(f.Dst), rng.Stream(uint64(1000+f.Dst)))
		tx.SetSaturated(f.Dst)
	}
	net := &ShardedSaturatedNetwork{Engine: eng, Flows: flows}
	net.Advance(20 * sim.Millisecond) // warm past the cold-start transient
	return net
}

// Advance runs the sharded network d further through virtual time.
func (sn *ShardedSaturatedNetwork) Advance(d sim.Time) {
	sn.Engine.Run(sn.Engine.Now() + d)
}

// ScaleBenchmark is one scaling benchmark runnable outside `go test`.
type ScaleBenchmark struct {
	Name string
	Run  func(b *testing.B)
}

// BenchMediumConstruct measures sparse channel construction at size n.
func BenchMediumConstruct(n int) func(b *testing.B) {
	s := topo.UniformDisk(n, ScaleDensity, 1)
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m := s.Build(sim.NewScheduler(), sim.NewRNG(uint64(i)+1))
			if m.NodeCount() != n {
				b.Fatal("bad build")
			}
		}
	}
}

// BenchScaleTraffic measures a fresh 20 ms saturated run at size n with
// construction kept OFF the timer (each iteration builds between
// StopTimer and StartTimer): the reported ns/op is per-window traffic
// cost, not construction cost in disguise. BENCH files from before PR 8
// recorded the construction-inclusive shape under the same name.
func BenchScaleTraffic(n int) func(b *testing.B) {
	s := topo.UniformDisk(n, ScaleDensity, 1)
	m := s.Build(sim.NewScheduler(), sim.NewRNG(1))
	flows := ScaleFlows(s, m, n/10+2)
	return func(b *testing.B) {
		if len(flows) == 0 {
			b.Fatalf("no flows at n=%d", n)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			sched, _ := buildScaleRun(s, flows, 20*sim.Millisecond, uint64(i)+1)
			b.StartTimer()
			sched.Run(20 * sim.Millisecond)
		}
	}
}

// BenchSaturatedSteadyState measures 20 ms virtual-time windows of
// saturated traffic on a persistent n-node network — construction
// excluded, the steady state the zero-allocation transmit path targets.
func BenchSaturatedSteadyState(n int) func(b *testing.B) {
	return func(b *testing.B) {
		net := NewSaturatedNetwork(n, 1)
		if len(net.Flows) == 0 {
			b.Fatalf("no flows at n=%d", n)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.Advance(20 * sim.Millisecond)
		}
	}
}

// BenchShardedSteadyState measures 20 ms virtual-time windows of
// saturated traffic on a persistent n-node sharded engine. shards=1 is
// the serial engine through the same fixture, so the shards>1 rows read
// directly as parallel speedup (or, on one core, barrier overhead).
func BenchShardedSteadyState(n, shards int) func(b *testing.B) {
	return func(b *testing.B) {
		net := NewShardedSaturatedNetwork(n, shards, 1)
		if len(net.Flows) == 0 {
			b.Fatalf("no flows at n=%d", n)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			net.Advance(20 * sim.Millisecond)
		}
	}
}

// BenchIncrementalUpdate measures one MoveNode through the incremental
// patch path: re-bucket the moved node in the grid, rebuild its own
// delivery list from the candidate set, and patch every affected
// neighbour list copy-on-write. The cost is O(k) in the audible
// neighbourhood, independent of n — the property that makes per-epoch
// mobility affordable at scale.
func BenchIncrementalUpdate(n int) func(b *testing.B) {
	s := topo.UniformDisk(n, ScaleDensity, 1)
	return func(b *testing.B) {
		m := s.Build(sim.NewScheduler(), sim.NewRNG(1))
		if !m.GridBacked() {
			b.Fatal("scale scenario is not grid-backed — the incremental path under test is not engaged")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			idx := i % n
			p := m.Position(idx)
			// Jitter ±0.5 m, alternating sign so the node oscillates in
			// place instead of drifting out of its neighbourhood.
			d := 0.5 - float64(i%2)
			m.MoveNode(idx, geo.Point{X: p.X + d, Y: p.Y + d})
		}
	}
}

// BenchDeliveryRebuild prices the alternative the incremental path
// replaces: a from-scratch BuildDeliveries over the current positions,
// what a non-incremental medium would pay on every movement epoch. Read
// against IncrementalUpdate at the same n, the ratio is the speedup the
// mobility tier rides on.
func BenchDeliveryRebuild(n int) func(b *testing.B) {
	s := topo.UniformDisk(n, ScaleDensity, 1)
	return func(b *testing.B) {
		m := s.Build(sim.NewScheduler(), sim.NewRNG(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.RebuildDeliveries()
		}
	}
}

// ScaleBenchmarks returns the scaling suite cmapbench -benchjson runs.
func ScaleBenchmarks() []ScaleBenchmark {
	var out []ScaleBenchmark
	for _, n := range MediumConstructSizes {
		out = append(out, ScaleBenchmark{
			Name: fmt.Sprintf("MediumConstruct/n=%d", n),
			Run:  BenchMediumConstruct(n),
		})
	}
	for _, n := range ScaleSizes {
		out = append(out, ScaleBenchmark{
			Name: fmt.Sprintf("ScaleTraffic/n=%d", n),
			Run:  BenchScaleTraffic(n),
		})
	}
	for _, n := range ScaleSizes {
		out = append(out, ScaleBenchmark{
			Name: fmt.Sprintf("SaturatedSteadyState/n=%d", n),
			Run:  BenchSaturatedSteadyState(n),
		})
	}
	for _, n := range ScaleSizes {
		out = append(out, ScaleBenchmark{
			Name: fmt.Sprintf("IncrementalUpdate/n=%d", n),
			Run:  BenchIncrementalUpdate(n),
		})
	}
	for _, n := range ScaleSizes {
		out = append(out, ScaleBenchmark{
			Name: fmt.Sprintf("DeliveryRebuild/n=%d", n),
			Run:  BenchDeliveryRebuild(n),
		})
	}
	for _, n := range ShardScaleSizes {
		for _, k := range ShardCounts {
			out = append(out, ScaleBenchmark{
				Name: fmt.Sprintf("ShardedSteadyState/n=%d/shards=%d", n, k),
				Run:  BenchShardedSteadyState(n, k),
			})
		}
	}
	return out
}
