package experiments

import (
	"fmt"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

// TestThousandNodeScenarioIsSparse is the acceptance guard for the
// scaling work: a 1000-node medium must be grid-constructed, hold far
// fewer than n² delivery entries, and still carry traffic.
func TestThousandNodeScenarioIsSparse(t *testing.T) {
	s := topo.UniformDisk(1000, ScaleDensity, 1)
	m := s.Build(sim.NewScheduler(), sim.NewRNG(1))
	if !m.GridBacked() {
		t.Fatal("1000-node disk medium was not grid constructed")
	}
	total, max := 0, 0
	for i := 0; i < s.N(); i++ {
		k := m.NeighborCount(i)
		total += k
		if k > max {
			max = k
		}
	}
	n := s.N()
	if total >= n*(n-1)/4 {
		t.Fatalf("delivery lists hold %d of %d ordered pairs — quadratic in disguise", total, n*(n-1))
	}
	if max == 0 || total == 0 {
		t.Fatal("no audible links at 1000 nodes")
	}
	flows := ScaleFlows(s, m, 20)
	if len(flows) < 10 {
		t.Fatalf("only %d flows found at 1000 nodes", len(flows))
	}
	if agg := RunScaleTraffic(s, flows, 20*sim.Millisecond, 7); agg <= 0 {
		t.Fatalf("aggregate goodput %v over the 1000-node disk, want > 0", agg)
	}
}

// TestSaturatedNetworkCarriesTraffic sanity-checks the steady-state
// benchmark fixture: warmed-up saturated flows must keep transmitting
// as the window advances.
func TestSaturatedNetworkCarriesTraffic(t *testing.T) {
	net := NewSaturatedNetwork(50, 1)
	before := net.Medium.Transmissions
	net.Advance(20 * sim.Millisecond)
	if net.Medium.Transmissions <= before {
		t.Fatalf("no transmissions in a saturated steady-state window (%d → %d)",
			before, net.Medium.Transmissions)
	}
}

// TestShardedSaturatedNetworkCarriesTraffic sanity-checks the sharded
// steady-state fixture at several shard counts: warmed-up saturated
// flows must keep transmitting as the window advances, and the fixture
// must be deterministic (the benchmark rows are comparable run to run).
func TestShardedSaturatedNetworkCarriesTraffic(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			net := NewShardedSaturatedNetwork(100, shards, 1)
			before := net.Engine.Transmissions()
			net.Advance(20 * sim.Millisecond)
			after := net.Engine.Transmissions()
			if after <= before {
				t.Fatalf("no transmissions in a sharded steady-state window (%d → %d)", before, after)
			}
			twin := NewShardedSaturatedNetwork(100, shards, 1)
			twin.Advance(20 * sim.Millisecond)
			if got := twin.Engine.Transmissions(); got != after {
				t.Fatalf("fixture not deterministic: %d vs %d transmissions", got, after)
			}
		})
	}
}

// BenchmarkMediumConstruct measures channel construction across the
// node-count sweep; allocations stay O(n·k), not O(n²).
func BenchmarkMediumConstruct(b *testing.B) {
	for _, n := range MediumConstructSizes {
		b.Run(fmt.Sprintf("n=%d", n), BenchMediumConstruct(n))
	}
}

// BenchmarkMediumConstructDense is the O(n²) reference; comparing the
// two shows the asymptotic gap the grid buys.
func BenchmarkMediumConstructDense(b *testing.B) {
	for _, n := range ScaleSizes {
		s := topo.UniformDisk(n, ScaleDensity, 1)
		tb := topo.Testbed{N: n, Bounds: s.Bounds, Pos: s.Pos, Params: s.Params, Model: s.Model, DenseMedium: true}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := tb.Build(sim.NewScheduler(), sim.NewRNG(uint64(i)+1))
				if m.NodeCount() != n {
					b.Fatal("bad build")
				}
			}
		})
	}
}

// BenchmarkScaleTraffic runs saturated flows over each scenario size
// with a fresh build per op (the PR 2 shape): per-op cost tracks how
// construction plus Transmit fan-out scale with network size.
func BenchmarkScaleTraffic(b *testing.B) {
	for _, n := range ScaleSizes {
		b.Run(fmt.Sprintf("n=%d", n), BenchScaleTraffic(n))
	}
}

// BenchmarkSaturatedSteadyState measures 20 ms windows of saturated
// traffic on a persistent network — construction excluded, the regime
// the zero-allocation transmit path targets.
func BenchmarkSaturatedSteadyState(b *testing.B) {
	for _, n := range ScaleSizes {
		b.Run(fmt.Sprintf("n=%d", n), BenchSaturatedSteadyState(n))
	}
}

// BenchmarkIncrementalUpdate measures one MoveNode through the
// incremental patch path at each scale size — O(k) per move, so ns/op
// should stay roughly flat as n grows.
func BenchmarkIncrementalUpdate(b *testing.B) {
	for _, n := range ScaleSizes {
		b.Run(fmt.Sprintf("n=%d", n), BenchIncrementalUpdate(n))
	}
}

// BenchmarkDeliveryRebuild prices the from-scratch rebuild the
// incremental path replaces; the ratio against IncrementalUpdate at the
// same n is the speedup mobility rides on.
func BenchmarkDeliveryRebuild(b *testing.B) {
	for _, n := range ScaleSizes {
		b.Run(fmt.Sprintf("n=%d", n), BenchDeliveryRebuild(n))
	}
}

// BenchmarkShardedSteadyState is the go-test face of the sharded scaling
// matrix at its smallest size; the full n × shards grid runs through
// cmapbench -benchjson, which records it in the BENCH trajectory.
func BenchmarkShardedSteadyState(b *testing.B) {
	for _, k := range ShardCounts {
		b.Run(fmt.Sprintf("n=1000/shards=%d", k), BenchShardedSteadyState(1000, k))
	}
}
