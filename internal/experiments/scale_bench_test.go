package experiments

import (
	"fmt"
	"testing"

	"repro/internal/csma"
	"repro/internal/medium"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// scaleDensity keeps the audible neighbourhood constant as n grows, the
// regime where sparse construction is O(n·k). 50 nodes/km² is a rural
// mesh: at 1000 nodes the disk spans ~5 km, several delivery ranges
// across, so the grid genuinely prunes.
const scaleDensity = 50 // nodes per km²

var scaleSizes = []int{50, 200, 1000}

// scaleFlows picks one saturated flow per stride nodes: each source
// sends to the receiver that hears it loudest. No O(n²) measurement
// pass is involved — the delivery lists already know the answer.
func scaleFlows(s *topo.Scenario, m *medium.Medium, count int) []topo.Link {
	flows := make([]topo.Link, 0, count)
	used := map[int]bool{}
	stride := s.N() / count
	if stride < 1 {
		stride = 1
	}
	for src := 0; src < s.N() && len(flows) < count; src += stride {
		best, bestG := -1, 0.0
		m.ForEachNeighbor(src, func(dst int, gainMW float64) {
			if !used[dst] && gainMW > bestG {
				best, bestG = dst, gainMW
			}
		})
		if best == -1 || used[src] {
			continue
		}
		used[src], used[best] = true, true
		flows = append(flows, topo.Link{Src: src, Dst: best})
	}
	return flows
}

// runScaleTraffic drives saturated 802.11 flows over a fresh build of
// the scenario for a short virtual window and returns the aggregate
// goodput, exercising the sparse Transmit fan-out end to end.
func runScaleTraffic(s *topo.Scenario, flows []topo.Link, d sim.Time, seed uint64) float64 {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	m := s.Build(sched, rng.Stream(1))
	cfg := csma.DefaultConfig()
	meters := make([]*stats.Meter, len(flows))
	for i, f := range flows {
		tx := csma.New(f.Src, cfg, m, rng.Stream(uint64(1000+f.Src)))
		rx := csma.New(f.Dst, cfg, m, rng.Stream(uint64(1000+f.Dst)))
		meters[i] = &stats.Meter{Start: 0, End: d}
		rx.Meter = meters[i]
		tx.SetSaturated(f.Dst)
	}
	sched.Run(d)
	var agg float64
	for _, mt := range meters {
		agg += mt.Mbps()
	}
	return agg
}

// TestThousandNodeScenarioIsSparse is the acceptance guard for the
// scaling work: a 1000-node medium must be grid-constructed, hold far
// fewer than n² delivery entries, and still carry traffic.
func TestThousandNodeScenarioIsSparse(t *testing.T) {
	s := topo.UniformDisk(1000, scaleDensity, 1)
	m := s.Build(sim.NewScheduler(), sim.NewRNG(1))
	if !m.GridBacked() {
		t.Fatal("1000-node disk medium was not grid constructed")
	}
	total, max := 0, 0
	for i := 0; i < s.N(); i++ {
		k := m.NeighborCount(i)
		total += k
		if k > max {
			max = k
		}
	}
	n := s.N()
	if total >= n*(n-1)/4 {
		t.Fatalf("delivery lists hold %d of %d ordered pairs — quadratic in disguise", total, n*(n-1))
	}
	if max == 0 || total == 0 {
		t.Fatal("no audible links at 1000 nodes")
	}
	flows := scaleFlows(s, m, 20)
	if len(flows) < 10 {
		t.Fatalf("only %d flows found at 1000 nodes", len(flows))
	}
	if agg := runScaleTraffic(s, flows, 20*sim.Millisecond, 7); agg <= 0 {
		t.Fatalf("aggregate goodput %v over the 1000-node disk, want > 0", agg)
	}
}

// BenchmarkMediumConstruct measures channel construction across the
// node-count sweep; allocations stay O(n·k), not O(n²).
func BenchmarkMediumConstruct(b *testing.B) {
	for _, n := range scaleSizes {
		s := topo.UniformDisk(n, scaleDensity, 1)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := s.Build(sim.NewScheduler(), sim.NewRNG(uint64(i)+1))
				if m.NodeCount() != n {
					b.Fatal("bad build")
				}
			}
		})
	}
}

// BenchmarkMediumConstructDense is the O(n²) reference; comparing the
// two shows the asymptotic gap the grid buys.
func BenchmarkMediumConstructDense(b *testing.B) {
	for _, n := range scaleSizes {
		s := topo.UniformDisk(n, scaleDensity, 1)
		tb := topo.Testbed{N: n, Bounds: s.Bounds, Pos: s.Pos, Params: s.Params, Model: s.Model, DenseMedium: true}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := tb.Build(sim.NewScheduler(), sim.NewRNG(uint64(i)+1))
				if m.NodeCount() != n {
					b.Fatal("bad build")
				}
			}
		})
	}
}

// BenchmarkScaleTraffic runs saturated flows over each scenario size:
// the virtual window is fixed, so per-op cost tracks how Transmit
// fan-out scales with network size at constant density.
func BenchmarkScaleTraffic(b *testing.B) {
	for _, n := range scaleSizes {
		s := topo.UniformDisk(n, scaleDensity, 1)
		m := s.Build(sim.NewScheduler(), sim.NewRNG(1))
		flows := scaleFlows(s, m, n/10+2)
		if len(flows) == 0 {
			b.Fatalf("no flows at n=%d", n)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runScaleTraffic(s, flows, 20*sim.Millisecond, uint64(i)+1)
			}
		})
	}
}
