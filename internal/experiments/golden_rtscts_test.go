package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// The RTS/CTS arm gets its own golden trace: the handshake exercises
// machinery (NAV bookkeeping, CTS timeouts, control-frame scheduling)
// that the §5 arms never touch, so a bit-level pin here catches drift
// in code paths the main golden files cannot see. One seed suffices —
// the arm shares everything below the MAC with the pinned baselines.
//
//	go test ./internal/experiments -run TestGoldenRTSCTS -update
var goldenRTSCTSSeed = uint64(1)

func goldenRTSCTSPath() string {
	return filepath.Join("testdata", fmt.Sprintf("golden_rtscts_seed%d.json", goldenRTSCTSSeed))
}

func TestGoldenRTSCTS(t *testing.T) {
	if testing.Short() {
		t.Skip("golden tier runs via make golden, not the -short tier")
	}
	seed := goldenRTSCTSSeed
	got := captureGolden(seed, []Protocol{RTSCTS})
	path := goldenRTSCTSPath()
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d runs)", path, len(got.Runs))
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no RTS/CTS golden trace (%v); run with -update to create it", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file %s: %v", path, err)
	}
	if len(got.Runs) != len(want.Runs) {
		t.Fatalf("captured %d runs, golden file has %d — topology availability drifted; "+
			"inspect and regenerate with -update", len(got.Runs), len(want.Runs))
	}
	for i := range want.Runs {
		w, g := want.Runs[i], got.Runs[i]
		if !reflect.DeepEqual(w, g) {
			t.Errorf("run %d (%s/%s) drifted from the golden trace:\n  want %+v\n  got  %+v\n"+
				"simulation behaviour changed; if intentional, regenerate with -update",
				i, w.Topology, w.Arm, w, g)
		}
	}
}
