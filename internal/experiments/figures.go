package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/csma"
	"repro/internal/phy"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Calibration reproduces §4.2's single-link comparison: CMAP and 802.11
// goodput over the same strong link (paper: 5.04 vs 5.07 Mb/s at 6 Mb/s).
type Calibration struct {
	CMAPMbps, Dot11Mbps float64
}

// RunCalibration measures both protocols on the strongest potential link.
func RunCalibration(tb *topo.Testbed, opt Options) Calibration {
	best := topo.Link{Src: -1}
	bestRSS := math.Inf(-1)
	for a := 0; a < tb.N; a++ {
		for b := 0; b < tb.N; b++ {
			if tb.PotentialLink(a, b) && tb.RSS[a][b] > bestRSS {
				bestRSS = tb.RSS[a][b]
				best = topo.Link{Src: a, Dst: b}
			}
		}
	}
	if best.Src == -1 {
		return Calibration{}
	}
	flows := []topo.Link{best}
	cm := runFlows(tb, flows, CMAP, opt, opt.Seed+11)
	dt := runFlows(tb, flows, CSMAOn, opt, opt.Seed+13)
	return Calibration{CMAPMbps: cm[0].Mbps, Dot11Mbps: dt[0].Mbps}
}

// ExposedTerminals reproduces Figure 12: 50 exposed-terminal
// configurations (§5.2 constraints) under CS+acks, CS-off+no-acks, CMAP,
// and CMAP with window 1. The paper's headline: CMAP ≈2× the status quo;
// window 1 only ≈1.5×.
func ExposedTerminals(tb *topo.Testbed, opt Options) *PairExperiment {
	rng := sim.NewRNG(opt.Seed ^ 0xf16)
	pairs := tb.ExposedPairs(rng, opt.Pairs)
	return runPairExperiment("Figure 12: exposed terminals", tb, pairs,
		opt.armsOr([]Protocol{CSMAOn, CSMAOffNoAcks, CMAP, CMAPWin1}), opt)
}

// InRangeSenders reproduces Figure 13: 50 pairs with in-range senders and
// no signal constraints (§5.3) under CS+acks, CS-off+acks,
// CS-off+no-acks, and CMAP. CMAP should track the better of deferring and
// concurrency on every pair.
func InRangeSenders(tb *topo.Testbed, opt Options) *PairExperiment {
	rng := sim.NewRNG(opt.Seed ^ 0xf13)
	pairs := tb.InRangePairs(rng, opt.Pairs)
	return runPairExperiment("Figure 13: senders in range", tb, pairs,
		opt.armsOr([]Protocol{CSMAOn, CSMAOffAcks, CSMAOffNoAcks, CMAP}), opt)
}

// HiddenTerminals reproduces Figure 15: receivers reachable by both
// senders, senders out of range (§5.5), under CS+acks, CS-off+acks, and
// CMAP. CMAP's loss-driven backoff must keep it comparable to 802.11.
func HiddenTerminals(tb *topo.Testbed, opt Options) *PairExperiment {
	rng := sim.NewRNG(opt.Seed ^ 0xf15)
	pairs := tb.HiddenPairs(rng, opt.Pairs)
	return runPairExperiment("Figure 15: hidden terminals", tb, pairs,
		opt.armsOr([]Protocol{CSMAOn, CSMAOffAcks, CMAP}), opt)
}

// InterfererPoint is one Figure 14 scatter point.
type InterfererPoint struct {
	Triple topo.Triple
	// MinPRR is min(PRR(I→R), PRR(I→S)) measured in isolation.
	MinPRR float64
	// NormThroughput is S→R goodput with I active divided by S→R goodput
	// alone (both with carrier sense and ACKs disabled, §5.4).
	NormThroughput float64
}

// HiddenInterfererResult reproduces Figure 14 and §5.4's two derived
// numbers.
type HiddenInterfererResult struct {
	Points []InterfererPoint
	// HiddenFrac is the fraction of points in the bottom-left quadrant
	// (normalised throughput < 0.5 AND min PRR < 0.5): true hidden
	// interferers. The paper measures 8%.
	HiddenFrac float64
	// ExpectedCMAP is Σ p·1 + (1−p)·T over all points, the §5.4 estimate
	// of CMAP throughput under hidden interferers. The paper computes
	// 0.896.
	ExpectedCMAP float64
}

// HiddenInterferers runs the §5.4 measurement: for each (S, R, I) triple,
// S→R throughput alone and with I saturating, CS and ACKs disabled. The
// per-triple measurements are independent and fan out across the worker
// pool; aggregation folds over them in triple order.
func HiddenInterferers(tb *topo.Testbed, opt Options) *HiddenInterfererResult {
	rng := sim.NewRNG(opt.Seed ^ 0xf14)
	triples := tb.HiddenInterfererTriples(rng, opt.Triples)
	type measurement struct {
		ok    bool
		point InterfererPoint
	}
	measured := runner.Map(opt.pool(), len(triples), func(i int) measurement {
		tr := triples[i]
		seed := opt.Seed + uint64(i)*6551
		alone := runFlows(tb, []topo.Link{{Src: tr.Src, Dst: tr.Dst}}, CSMAOffNoAcks, opt, seed)
		// The interferer saturates towards a sink that is neither S nor R
		// (its traffic's destination is irrelevant with ACKs disabled).
		sink := 0
		for sink == tr.Src || sink == tr.Dst || sink == tr.Interferer {
			sink++
		}
		both := runFlows(tb, []topo.Link{
			{Src: tr.Src, Dst: tr.Dst},
			{Src: tr.Interferer, Dst: sink},
		}, CSMAOffNoAcks, opt, seed+1)
		if alone[0].Mbps <= 0 {
			return measurement{}
		}
		norm := both[0].Mbps / alone[0].Mbps
		if norm > 1 {
			norm = 1
		}
		minPRR := math.Min(tb.PRR[tr.Interferer][tr.Dst], tb.PRR[tr.Interferer][tr.Src])
		return measurement{ok: true, point: InterfererPoint{Triple: tr, MinPRR: minPRR, NormThroughput: norm}}
	})
	res := &HiddenInterfererResult{}
	var sumExpected float64
	hidden := 0
	for _, m := range measured {
		if !m.ok {
			continue
		}
		tr, norm := m.point.Triple, m.point.NormThroughput
		res.Points = append(res.Points, m.point)
		if norm < 0.5 && m.point.MinPRR < 0.5 {
			hidden++
		}
		pr := tb.PRR[tr.Interferer][tr.Dst]
		ps := tb.PRR[tr.Interferer][tr.Src]
		p := math.Max(pr+ps-1, 0)
		sumExpected += p*1 + (1-p)*norm
	}
	if len(res.Points) > 0 {
		res.HiddenFrac = float64(hidden) / float64(len(res.Points))
		res.ExpectedCMAP = sumExpected / float64(len(res.Points))
	}
	return res
}

// HeaderTrailerCDFs reproduces Figure 16 from the CMAP runs of the
// in-range (Figure 13) and hidden-terminal (Figure 15) experiments: CDFs
// of per-flow header-only and header-or-trailer reception fractions.
type HeaderTrailerCDFs struct {
	InRangeHeader, InRangeEither *stats.Dist
	HiddenHeader, HiddenEither   *stats.Dist
}

// HeaderTrailer extracts Figure 16 from two already-run experiments.
func HeaderTrailer(inRange, hidden *PairExperiment) *HeaderTrailerCDFs {
	h := &HeaderTrailerCDFs{
		InRangeHeader: &stats.Dist{}, InRangeEither: &stats.Dist{},
		HiddenHeader: &stats.Dist{}, HiddenEither: &stats.Dist{},
	}
	for _, run := range inRange.Flows[CMAP] {
		for _, fr := range run {
			h.InRangeHeader.Add(fr.HeaderFrac())
			h.InRangeEither.Add(fr.HdrOrTrailFrac())
		}
	}
	for _, run := range hidden.Flows[CMAP] {
		for _, fr := range run {
			h.HiddenHeader.Add(fr.HeaderFrac())
			h.HiddenEither.Add(fr.HdrOrTrailFrac())
		}
	}
	return h
}

// Format renders Figure 16's four series.
func (h *HeaderTrailerCDFs) Format() string {
	return "Figure 16: header/trailer reception fraction per flow\n" +
		stats.FormatCDFs(
			[]string{"in-range, header", "in-range, hdr|trl", "out-of-range, header", "out-of-range, hdr|trl"},
			[]*stats.Dist{h.InRangeHeader, h.InRangeEither, h.HiddenHeader, h.HiddenEither})
}

// APResult holds Figures 17 and 18: aggregate throughput per AP count
// and arm, plus the pooled per-sender distribution.
type APResult struct {
	Ns        []int
	Arms      []Protocol
	Mean      map[Protocol]map[int]float64 // arm → N → mean aggregate Mb/s
	Std       map[Protocol]map[int]float64
	PerSender map[Protocol]*stats.Dist
}

// AccessPoint reproduces the §5.6 WLAN experiment: N = 3..6 access-point
// cells with one saturated flow each (random client, random direction),
// ten client draws per N, under CS-on, CS-off, and CMAP.
func AccessPoint(tb *topo.Testbed, opt Options) *APResult {
	arms := opt.armsOr([]Protocol{CSMAOn, CSMAOffAcks, CMAP})
	res := &APResult{
		Ns:        []int{3, 4, 5, 6},
		Arms:      arms,
		Mean:      map[Protocol]map[int]float64{},
		Std:       map[Protocol]map[int]float64{},
		PerSender: map[Protocol]*stats.Dist{},
	}
	for _, a := range arms {
		res.Mean[a] = map[int]float64{}
		res.Std[a] = map[int]float64{}
		res.PerSender[a] = &stats.Dist{}
	}
	cells := tb.APRegions()
	rng := sim.NewRNG(opt.Seed ^ 0xf17)
	// Draw every run's client/direction choices serially first — the rng
	// consumption order is part of the experiment's definition — then fan
	// the (n, run, arm) simulations out across the worker pool.
	type apTrial struct {
		n, run int
		arm    Protocol
		flows  []topo.Link
	}
	var trials []apTrial
	for _, n := range res.Ns {
		if n > len(cells) {
			continue
		}
		for run := 0; run < opt.APRuns; run++ {
			// Adjacent regions when fewer than all cells are used.
			flows := make([]topo.Link, 0, n)
			for _, cell := range cells[:n] {
				client := cell.Clients[rng.Intn(len(cell.Clients))]
				if rng.Bool(0.5) {
					flows = append(flows, topo.Link{Src: cell.AP, Dst: client})
				} else {
					flows = append(flows, topo.Link{Src: client, Dst: cell.AP})
				}
			}
			for _, arm := range arms {
				trials = append(trials, apTrial{n: n, run: run, arm: arm, flows: flows})
			}
		}
	}
	outcomes := runner.Map(opt.pool(), len(trials), func(i int) []FlowResult {
		t := trials[i]
		return runFlows(tb, t.flows, t.arm, opt, opt.Seed+uint64(t.n*1000+t.run)*31+t.arm.seedSalt())
	})
	aggs := map[int]map[Protocol]*stats.Dist{}
	for i, t := range trials {
		if aggs[t.n] == nil {
			aggs[t.n] = map[Protocol]*stats.Dist{}
			for _, a := range arms {
				aggs[t.n][a] = &stats.Dist{}
			}
		}
		rs := outcomes[i]
		aggs[t.n][t.arm].Add(aggregate(rs))
		for _, fr := range rs {
			res.PerSender[t.arm].Add(fr.Mbps)
		}
	}
	for n, perArm := range aggs {
		for _, arm := range arms {
			res.Mean[arm][n] = perArm[arm].Mean()
			res.Std[arm][n] = perArm[arm].Std()
		}
	}
	return res
}

// Format renders Figure 17's grouped bars and Figure 18's medians.
func (r *APResult) Format() string {
	var b strings.Builder
	b.WriteString("Figure 17: AP topology mean aggregate throughput (Mb/s)\n")
	fmt.Fprintf(&b, "%-16s", "arm \\ N")
	for _, n := range r.Ns {
		fmt.Fprintf(&b, "%10d", n)
	}
	b.WriteString("\n")
	for _, arm := range r.Arms {
		fmt.Fprintf(&b, "%-16s", arm)
		for _, n := range r.Ns {
			fmt.Fprintf(&b, "%7.2f±%-4.1f", r.Mean[arm][n], r.Std[arm][n])
		}
		b.WriteString("\n")
	}
	b.WriteString("Figure 18: per-sender throughput (Mb/s)\n")
	names := []string{}
	dists := []*stats.Dist{}
	for _, arm := range r.Arms {
		names = append(names, arm.String())
		dists = append(dists, r.PerSender[arm])
	}
	b.WriteString(stats.FormatCDFs(names, dists))
	return b.String()
}

// SenderSweepPoint is one Figure 19 x-position: visibility statistics at
// a given number of concurrent senders.
type SenderSweepPoint struct {
	Senders                  int
	Mean, Median             float64
	P10, P25, P75, P90       float64
	FlowsMeasured            int
	MedianMinusTenthPercntle float64
}

// HeaderTrailerVsSenders reproduces Figure 19: CMAP header-or-trailer
// reception fraction at receivers as the number of concurrent saturated
// flows grows from 2 to 7.
func HeaderTrailerVsSenders(tb *topo.Testbed, opt Options) []SenderSweepPoint {
	rng := sim.NewRNG(opt.Seed ^ 0xf19)
	links := allPotentialLinks(tb)
	// Sample every sweep position's flow sets serially (rng order is part
	// of the experiment), then run all (k, run) simulations on the pool.
	type sweepTrial struct {
		k     int
		seed  uint64
		flows []topo.Link
	}
	var trials []sweepTrial
	for k := 2; k <= 7; k++ {
		for run := 0; run < opt.APRuns; run++ {
			flows := pickDisjointFlows(rng, links, k)
			if len(flows) < k {
				continue
			}
			trials = append(trials, sweepTrial{k: k, seed: opt.Seed + uint64(k*100+run)*131, flows: flows})
		}
	}
	outcomes := runner.Map(opt.pool(), len(trials), func(i int) []FlowResult {
		return runFlows(tb, trials[i].flows, CMAP, opt, trials[i].seed)
	})
	dists := map[int]*stats.Dist{}
	for i, t := range trials {
		if dists[t.k] == nil {
			dists[t.k] = &stats.Dist{}
		}
		for _, fr := range outcomes[i] {
			if fr.VpktsSent > 0 {
				dists[t.k].Add(fr.HdrOrTrailFrac())
			}
		}
	}
	var out []SenderSweepPoint
	for k := 2; k <= 7; k++ {
		d := dists[k]
		if d == nil {
			d = &stats.Dist{}
		}
		out = append(out, SenderSweepPoint{
			Senders: k, Mean: d.Mean(), Median: d.Median(),
			P10: d.Percentile(10), P25: d.Percentile(25),
			P75: d.Percentile(75), P90: d.Percentile(90),
			FlowsMeasured: d.N(),
		})
	}
	return out
}

func allPotentialLinks(tb *topo.Testbed) []topo.Link {
	var out []topo.Link
	for a := 0; a < tb.N; a++ {
		for b := 0; b < tb.N; b++ {
			if tb.PotentialLink(a, b) {
				out = append(out, topo.Link{Src: a, Dst: b})
			}
		}
	}
	return out
}

// pickDisjointFlows samples k node-disjoint potential links.
func pickDisjointFlows(rng *sim.RNG, links []topo.Link, k int) []topo.Link {
	used := map[int]bool{}
	var flows []topo.Link
	for attempts := 0; attempts < 20000 && len(flows) < k; attempts++ {
		l := links[rng.Intn(len(links))]
		if used[l.Src] || used[l.Dst] {
			continue
		}
		used[l.Src], used[l.Dst] = true, true
		flows = append(flows, l)
	}
	return flows
}

// RateSeries is one Figure 20 bit-rate arm pair.
type RateSeries struct {
	Rate phy.RateID
	Ex   *PairExperiment
}

// VariableBitRates reproduces Figure 20: the exposed-terminal experiment
// at the 6, 12 and 18 Mb/s rates under CS-on and CMAP. Control traffic
// stays at 6 Mb/s, as in §5.8.
func VariableBitRates(tb *topo.Testbed, opt Options) []RateSeries {
	rng := sim.NewRNG(opt.Seed ^ 0xf20)
	pairs := tb.ExposedPairs(rng, opt.Pairs)
	var out []RateSeries
	for _, rate := range []phy.RateID{phy.Rate6Mbps, phy.Rate12Mbps, phy.Rate18Mbps} {
		o := opt
		o.Rate = rate
		name := fmt.Sprintf("Figure 20: exposed terminals @ %g Mb/s", phy.RateByID(rate).Mbps)
		ex := runPairExperiment(name, tb, pairs, opt.armsOr([]Protocol{CSMAOn, CMAP}), o)
		out = append(out, RateSeries{Rate: rate, Ex: ex})
	}
	return out
}

// MeshResult holds the §5.7 numbers: per-topology aggregate leaf
// throughput for CMAP and the status quo.
type MeshResult struct {
	CMAP, CSMA *stats.Dist
}

// Gain returns mean(CMAP)/mean(CSMA) (the paper reports +52%).
func (m *MeshResult) Gain() float64 {
	if m.CSMA.Mean() == 0 {
		return 0
	}
	return m.CMAP.Mean() / m.CSMA.Mean()
}

// Mesh reproduces §5.7: two-hop content dissemination in batches, as the
// paper describes — "the source S first broadcasts a batch of packets to
// its one-hop neighbors A1, A2, A3; the Ais then transmit the packets to
// the corresponding Bis." A controller alternates the phases: when the
// source drains, relays forward what they received (concurrently — this
// is where CMAP finds exposed-terminal opportunities); when all relays
// drain, the source broadcasts the next batch. A leaf's throughput is
// the minimum of its two hop rates; a run's score is the sum over leaves.
func Mesh(tb *topo.Testbed, opt Options) *MeshResult {
	rng := sim.NewRNG(opt.Seed ^ 0xf57)
	meshes := tb.MeshTopologies(rng, opt.Meshes, 3)
	res := &MeshResult{CMAP: &stats.Dist{}, CSMA: &stats.Dist{}}
	// Trials interleave (mesh, protocol): even indices CMAP, odd CSMA.
	scores := runner.Map(opt.pool(), 2*len(meshes), func(t int) float64 {
		msh := meshes[t/2]
		seed := opt.Seed + uint64(t/2)*2221
		if t%2 == 0 {
			return runMeshCMAP(tb, msh, opt, seed)
		}
		return runMeshCSMA(tb, msh, opt, seed+1)
	})
	for i := range meshes {
		res.CMAP.Add(scores[2*i])
		res.CSMA.Add(scores[2*i+1])
	}
	return res
}

// hopMeter counts per-hop deliveries inside the measurement window.
type hopMeter struct {
	start, end sim.Time
	count      uint64
}

func (h *hopMeter) record(now sim.Time) {
	if now >= h.start && now <= h.end {
		h.count++
	}
}

func (h *hopMeter) mbps(payload int) float64 {
	w := (h.end - h.start).Seconds()
	if w <= 0 {
		return 0
	}
	return float64(h.count) * float64(payload) * 8 / w / 1e6
}

// meshBatch is the dissemination batch size in data packets.
const meshBatch = 320

func runMeshCMAP(tb *topo.Testbed, msh topo.Mesh, opt Options, seed uint64) float64 {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	m := tb.Build(sched, rng.Stream(1))
	cfg := core.DefaultConfig()
	cfg.Rate = opt.Rate

	src := core.New(msh.Source, cfg, m, rng.Stream(100))
	k := len(msh.Relays)
	relays := make([]*core.Node, k)
	hop1 := make([]*hopMeter, k)
	hop2 := make([]*hopMeter, k)
	pending := make([]int, k)
	for i, relay := range msh.Relays {
		i := i
		leaf := msh.Leaves[i]
		relays[i] = core.New(relay, cfg, m, rng.Stream(uint64(200+i)))
		ln := core.New(leaf, cfg, m, rng.Stream(uint64(300+i)))
		hop1[i] = &hopMeter{start: opt.Warmup, end: opt.Duration}
		hop2[i] = &hopMeter{start: opt.Warmup, end: opt.Duration}
		relays[i].OnDeliver = func(from int, _ uint32, now sim.Time) {
			if from != msh.Source {
				return
			}
			hop1[i].record(now)
			pending[i]++
		}
		ln.OnDeliver = func(from int, _ uint32, now sim.Time) {
			if from == relay {
				hop2[i].record(now)
			}
		}
	}
	src.SetBroadcast(msh.Relays, false, meshBatch)
	// Phase controller: source batch → relay forwarding → next batch.
	srcPhase := true
	var tick func()
	tick = func() {
		if srcPhase && src.Idle() {
			srcPhase = false
			for i := range relays {
				if pending[i] > 0 {
					relays[i].Enqueue(msh.Leaves[i], pending[i])
					pending[i] = 0
				}
			}
		} else if !srcPhase {
			done := true
			for _, r := range relays {
				if !r.Idle() {
					done = false
					break
				}
			}
			if done {
				srcPhase = true
				src.EnqueueBroadcast(meshBatch)
			}
		}
		sched.After(20*sim.Millisecond, tick)
	}
	sched.After(20*sim.Millisecond, tick)
	sched.Run(opt.Duration)
	var agg float64
	for i := range msh.Relays {
		agg += math.Min(hop1[i].mbps(cfg.PayloadBytes), hop2[i].mbps(cfg.PayloadBytes))
	}
	return agg
}

func runMeshCSMA(tb *topo.Testbed, msh topo.Mesh, opt Options, seed uint64) float64 {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	m := tb.Build(sched, rng.Stream(1))
	cfg := csma.DefaultConfig()
	cfg.Rate = opt.Rate

	src := csma.New(msh.Source, cfg, m, rng.Stream(100))
	k := len(msh.Relays)
	relays := make([]*csma.Node, k)
	hop1 := make([]*hopMeter, k)
	hop2 := make([]*hopMeter, k)
	pending := make([]int, k)
	for i, relay := range msh.Relays {
		i := i
		leaf := msh.Leaves[i]
		relays[i] = csma.New(relay, cfg, m, rng.Stream(uint64(200+i)))
		ln := csma.New(leaf, cfg, m, rng.Stream(uint64(300+i)))
		hop1[i] = &hopMeter{start: opt.Warmup, end: opt.Duration}
		hop2[i] = &hopMeter{start: opt.Warmup, end: opt.Duration}
		relays[i].OnDeliver = func(from int, _ uint32, now sim.Time) {
			if from != msh.Source {
				return
			}
			hop1[i].record(now)
			pending[i]++
		}
		ln.OnDeliver = func(from int, _ uint32, now sim.Time) {
			if from == relay {
				hop2[i].record(now)
			}
		}
	}
	src.Enqueue(csma.BroadcastDst, meshBatch)
	srcPhase := true
	var tick func()
	tick = func() {
		if srcPhase && src.Idle() {
			srcPhase = false
			for i := range relays {
				if pending[i] > 0 {
					relays[i].Enqueue(msh.Leaves[i], pending[i])
					pending[i] = 0
				}
			}
		} else if !srcPhase {
			done := true
			for _, r := range relays {
				if !r.Idle() {
					done = false
					break
				}
			}
			if done {
				srcPhase = true
				src.Enqueue(csma.BroadcastDst, meshBatch)
			}
		}
		sched.After(20*sim.Millisecond, tick)
	}
	sched.After(20*sim.Millisecond, tick)
	sched.Run(opt.Duration)
	var agg float64
	for i := range msh.Relays {
		agg += math.Min(hop1[i].mbps(cfg.PayloadBytes), hop2[i].mbps(cfg.PayloadBytes))
	}
	return agg
}
