package experiments

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

// stalenessTestOptions is a CI-sized sweep: enough pairs and airtime
// for stable medians without paper-scale cost.
func stalenessTestOptions() Options {
	opt := Quick(7)
	opt.Pairs = 6
	opt.Duration = 4 * sim.Second
	opt.Warmup = 1 * sim.Second
	return opt
}

// TestStalenessSweepAdvantageShrinks pins the figure's qualitative
// result: CMAP beats plain carrier sense on static exposed pairs, and
// that advantage shrinks monotonically (within tolerance) as node
// speed rises — learned conflict maps go stale as the geometry they
// memorised moves out from under them.
func TestStalenessSweepAdvantageShrinks(t *testing.T) {
	if testing.Short() {
		t.Skip("staleness sweep is the long-tier mobility figure")
	}
	opt := stalenessTestOptions()
	opt.Arms = []Protocol{CMAP, CSMAOn}
	tb := topo.NewTestbed(opt.Nodes, opt.Seed)
	res := StalenessSweep(tb, opt, []float64{0, 5, 20})
	t.Logf("\n%s", res.Format())

	adv := make([]float64, len(res.Points))
	for i, p := range res.Points {
		adv[i] = p.Advantage(CMAP, CSMAOn)
		if p.Dists[CSMAOn].Median() <= 0 {
			t.Fatalf("speed %g: csma median is zero — pairs disconnected, sweep is degenerate", p.SpeedMps)
		}
	}
	if adv[0] <= 1.1 {
		t.Fatalf("static CMAP advantage %.2fx, want > 1.1x on exposed pairs", adv[0])
	}
	// Monotone within tolerance: each point may exceed its predecessor
	// by at most 10% (medians over a finite sample jitter), but the
	// trend must never reverse materially.
	const tol = 1.10
	for i := 1; i < len(adv); i++ {
		if adv[i] > adv[i-1]*tol {
			t.Fatalf("advantage rose from %.2fx (%g m/s) to %.2fx (%g m/s); want monotone shrink within %d%% tolerance",
				adv[i-1], res.Points[i-1].SpeedMps, adv[i], res.Points[i].SpeedMps, int(tol*100-100))
		}
	}
	last := adv[len(adv)-1]
	if last > adv[0]*0.85 {
		t.Fatalf("advantage only fell from %.2fx to %.2fx across the sweep; want a clear staleness decline", adv[0], last)
	}
}

// TestStalenessSweepDeterministic proves the sweep — trajectories,
// shadowing re-draws and all — is bit-identical across worker counts.
func TestStalenessSweepDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("covered by the long tier")
	}
	opt := stalenessTestOptions()
	opt.Pairs = 3
	opt.Duration = 2 * sim.Second
	opt.Arms = []Protocol{CMAP, CSMAOn}
	tb := topo.NewTestbed(opt.Nodes, opt.Seed)
	speeds := []float64{0, 8}

	serial := opt
	serial.Workers = 1
	parallel := opt
	parallel.Workers = 4
	a := StalenessSweep(tb, serial, speeds)
	b := StalenessSweep(tb, parallel, speeds)
	for i := range a.Points {
		for _, arm := range a.Arms {
			x, y := a.Points[i].Dists[arm].Sorted(), b.Points[i].Dists[arm].Sorted()
			if len(x) != len(y) {
				t.Fatalf("point %d arm %s: %d vs %d samples", i, arm, len(x), len(y))
			}
			for k := range x {
				if x[k] != y[k] {
					t.Fatalf("point %d arm %s sample %d: %v (1 worker) vs %v (4 workers)", i, arm, k, x[k], y[k])
				}
			}
		}
	}
}
