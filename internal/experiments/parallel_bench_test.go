package experiments

import (
	"runtime"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

// benchParallelTestbed is shared: the testbed is immutable once built.
var benchParallelTestbed = topo.NewTestbed(50, 1)

// benchParallelOptions is one iteration's workload: Pairs × 4 arms trials
// of the exposed-terminal experiment.
func benchParallelOptions(seed uint64, workers int) Options {
	opt := Quick(seed)
	opt.Duration = 4 * sim.Second
	opt.Warmup = 2 * sim.Second
	opt.Pairs = 8
	opt.Workers = workers
	return opt
}

// benchPairTrials measures trial throughput of the pair-experiment runner
// at a fixed worker count; the speedup between the two benchmarks below
// is the headline number of the parallel runner subsystem.
func benchPairTrials(b *testing.B, workers int) {
	b.ReportAllocs()
	var trials int
	for i := 0; i < b.N; i++ {
		opt := benchParallelOptions(uint64(i+1), workers)
		ex := ExposedTerminals(benchParallelTestbed, opt)
		for _, arm := range ex.Arms {
			trials += ex.Dists[arm].N()
		}
	}
	b.ReportMetric(float64(trials)/b.Elapsed().Seconds(), "trials/s")
}

// BenchmarkPairTrialsSerial is the 1-worker baseline.
func BenchmarkPairTrialsSerial(b *testing.B) { benchPairTrials(b, 1) }

// BenchmarkPairTrialsParallel fans trials across GOMAXPROCS workers.
func BenchmarkPairTrialsParallel(b *testing.B) {
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "workers")
	benchPairTrials(b, 0)
}

// BenchmarkMeshTrialsParallel covers the other trial shape (whole-mesh
// phase-controlled runs) at GOMAXPROCS workers.
func BenchmarkMeshTrialsParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opt := benchParallelOptions(uint64(i+1), 0)
		opt.Meshes = 4
		res := Mesh(benchParallelTestbed, opt)
		if res.CMAP.N() == 0 {
			b.Fatal("no meshes ran")
		}
	}
}
