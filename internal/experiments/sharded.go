package experiments

import (
	"repro/internal/mac"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// runShardedFlows is runFlows over the spatially sharded engine: the
// same MAC wiring and the same RNG streams (node i's radio and MAC
// draw from the identical streams at every shard count), but the event
// loop is partitioned across Options.Shards goroutines. Flow endpoints
// are co-sharded by the engine so no data/ACK exchange pays the
// cross-shard lookahead latency; only interference crosses borders.
// Both workload kinds run here — the saturated default and the
// traffic.Source arrival processes, whose sources attach to their
// flow's shard scheduler.
func runShardedFlows(tb *topo.Testbed, flows []topo.Link, p Protocol, opt Options, runSeed uint64) []FlowResult {
	rng := sim.NewRNG(runSeed)
	pairs := make([][2]int, len(flows))
	for i, f := range flows {
		pairs[i] = [2]int{f.Src, f.Dst}
	}
	eng := shard.NewEngine(tb.Params, tb.Model, tb.Pos, rng.Stream(1), shard.Config{
		Shards: opt.Shards,
		Flows:  pairs,
	})
	saturated := opt.Traffic.Kind == traffic.Saturated

	meters := make([]*stats.Meter, len(flows))
	results := make([]FlowResult, len(flows))
	var lats []*stats.Latency
	var sources []*traffic.Source
	if !saturated {
		lats = make([]*stats.Latency, len(flows))
		sources = make([]*traffic.Source, len(flows))
	}
	window := stats.Window{Start: opt.Warmup, End: opt.Duration}
	deliver := func(i, wantSrc int) func(src int, seq uint32, now sim.Time) {
		return func(src int, seq uint32, now sim.Time) {
			if src != wantSrc {
				return
			}
			if at, ok := sources[i].ArrivalTime(seq); ok {
				lats[i].Record(now, now-at)
			}
		}
	}

	arm := mac.MustLookup(string(p))
	senders := make([]mac.Node, len(flows))
	receivers := make([]mac.Node, len(flows))
	nodes := map[int]mac.Node{}
	mk := func(id int) mac.Node {
		if n, ok := nodes[id]; ok {
			return n
		}
		n := arm.New(id, eng.Network(id), rng.Stream(uint64(1000+id)), mac.Options{Rate: opt.Rate})
		nodes[id] = n
		return n
	}
	for i, f := range flows {
		senders[i] = mk(f.Src)
		receivers[i] = mk(f.Dst)
		meters[i] = &stats.Meter{Start: opt.Warmup, End: opt.Duration}
		receivers[i].SetMeter(meters[i])
		if saturated {
			senders[i].SetSaturated(f.Dst)
			continue
		}
		lats[i] = &stats.Latency{W: window}
		receivers[i].SetOnDeliver(deliver(i, f.Src))
		// The source lives on the sender's shard: arrivals and the MAC
		// they feed share one single-threaded agenda.
		src := traffic.NewSource(eng.SchedulerOf(f.Src), rng.Stream(uint64(5000+i)), opt.Traffic, senders[i], f.Dst)
		src.EnableLatency(senders[i].LatencyWindow())
		sources[i] = src
		src.Start()
	}
	eng.Run(opt.Duration)
	for i, f := range flows {
		results[i] = FlowResult{Link: f, Mbps: meters[i].Mbps()}
		if !saturated {
			st := sources[i].Stats()
			results[i].OfferedPkts = st.Offered
			results[i].AcceptedPkts = st.Accepted
			results[i].DroppedPkts = st.Dropped
			results[i].DeliveredPkts = meters[i].Packets()
			results[i].Lat = lats[i]
		}
		if sv, ok := senders[i].(mac.Visibility); ok {
			_, hdr, hot := receivers[i].(mac.Visibility).FlowCounters(f.Src)
			results[i].VpktsSent = sv.VpktsSent()
			results[i].VpktsHeader = hdr
			results[i].VpktsHdrOrTrail = hot
		}
	}
	return results
}
