package experiments

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

// runDiskTraffic measures aggregate saturated goodput over a uniform
// disk with the given reception-math path selected.
func runDiskTraffic(n int, seed uint64, d sim.Time, exact bool) float64 {
	s := topo.UniformDisk(n, ScaleDensity, seed)
	s.Params.ExactReceptionMath = exact
	m := s.Build(sim.NewScheduler(), sim.NewRNG(seed))
	flows := ScaleFlows(s, m, n/10+2)
	return RunScaleTraffic(s, flows, d, seed+100)
}

// TestFastMathFigureEquivalence is the figure-level statistical check of
// the table-driven reception path against the exact Erfc/dB reference
// (Params.ExactReceptionMath). The two paths draw identical RNG streams
// and differ only in decode probabilities, by the tables' bounded
// error; near-threshold draws may flip individually, so aggregate
// saturated goodput — the quantity every figure is built from — must
// agree within a few percent, far inside the seed-to-seed spread.
func TestFastMathFigureEquivalence(t *testing.T) {
	n, d := 200, 100*sim.Millisecond
	if testing.Short() {
		d = 40 * sim.Millisecond
	}
	var fast, exact float64
	for _, seed := range []uint64{1, 2, 7} {
		fast += runDiskTraffic(n, seed, d, false)
		exact += runDiskTraffic(n, seed, d, true)
	}
	if exact <= 0 {
		t.Fatal("exact-math reference run carried no traffic")
	}
	rel := math.Abs(fast-exact) / exact
	t.Logf("aggregate goodput: table %.3f Mb/s, exact %.3f Mb/s (Δ %.2f%%)", fast, exact, 100*rel)
	if rel > 0.05 {
		t.Errorf("table-driven path diverged from exact math: %.3f vs %.3f Mb/s (%.1f%% > 5%%)",
			fast, exact, 100*rel)
	}
}
