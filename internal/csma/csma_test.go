package csma

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/medium"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/stats"
)

const offAir = 300.0

// build wires a medium over the loss matrix and returns it plus a node
// constructor closure.
func build(lossDB [][]float64, seed uint64) (*medium.Medium, *sim.Scheduler, *sim.RNG) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	m := medium.New(sched, phy.DefaultParams(), &radio.Matrix{LossDB: lossDB},
		make([]geo.Point, len(lossDB)), rng.Stream(1))
	return m, sched, rng
}

// runFlow measures one saturated flow's goodput in Mbps over a short run.
func runFlow(t *testing.T, cfg Config, dur sim.Time) (float64, *Node, *Node) {
	t.Helper()
	m, sched, rng := build([][]float64{
		{0, 70},
		{70, 0},
	}, 7)
	tx := New(0, cfg, m, rng.Stream(10))
	rx := New(1, cfg, m, rng.Stream(11))
	rx.Meter = &stats.Meter{Start: dur / 5, End: dur}
	tx.SetSaturated(1)
	sched.Run(dur)
	return rx.Meter.Mbps(), tx, rx
}

func TestSingleLinkThroughputWithACKs(t *testing.T) {
	got, tx, rx := runFlow(t, DefaultConfig(), 5*sim.Second)
	// Paper's 802.11a reference point: ≈5.07 Mb/s goodput at the 6 Mb/s
	// rate with 1400-byte packets. Allow a band for protocol-timing
	// differences.
	if got < 4.5 || got > 5.8 {
		t.Errorf("single-link goodput = %.2f Mb/s, want ≈5.0–5.5", got)
	}
	if rx.Stats().Duplicates > rx.Stats().Delivered/50 {
		t.Errorf("too many duplicates on a clean link: %+v", rx.Stats())
	}
	if tx.Stats().Dropped != 0 {
		t.Errorf("clean link dropped %d packets", tx.Stats().Dropped)
	}
}

func TestSingleLinkThroughputNoACKs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LinkACKs = false
	got, _, _ := runFlow(t, cfg, 5*sim.Second)
	// Without the SIFS+ACK exchange, goodput is slightly higher.
	if got < 4.8 || got > 6.0 {
		t.Errorf("no-ACK goodput = %.2f Mb/s, want ≈5.2–5.7", got)
	}
}

func TestTwoContendingSendersShareChannel(t *testing.T) {
	// Both senders in range of each other and the receiver: carrier sense
	// interleaves them; aggregate ≈ single-link, shares roughly fair.
	m, sched, rng := build([][]float64{
		{0, 70, 68},
		{70, 0, 70},
		{68, 70, 0},
	}, 21)
	cfg := DefaultConfig()
	a := New(0, cfg, m, rng.Stream(10))
	b := New(2, cfg, m, rng.Stream(12))
	rx := New(1, cfg, m, rng.Stream(11))
	dur := 5 * sim.Second
	rx.Meter = &stats.Meter{Start: dur / 5, End: dur}
	a.SetSaturated(1)
	b.SetSaturated(1)
	sched.Run(dur)
	agg := rx.Meter.Mbps()
	if agg < 4.0 || agg > 5.8 {
		t.Errorf("aggregate of two contenders = %.2f Mb/s, want ≈ single link", agg)
	}
	sa, sb := a.Stats().Sent, b.Stats().Sent
	ratio := float64(sa) / float64(sa+sb)
	if ratio < 0.3 || ratio > 0.7 {
		t.Errorf("unfair sharing: a sent %d, b sent %d", sa, sb)
	}
}

func TestHiddenTerminalsCollapseWithoutCS(t *testing.T) {
	// Hidden senders (cannot hear each other) both reaching one receiver:
	// with carrier sense OFF and saturation, collisions destroy most
	// packets even with ACKs/retries.
	loss := [][]float64{
		{0, 72, offAir},
		{72, 0, 73},
		{offAir, 73, 0},
	}
	dur := 5 * sim.Second

	run := func(cs bool) float64 {
		m, sched, rng := build(loss, 33)
		cfg := DefaultConfig()
		cfg.CarrierSense = cs
		a := New(0, cfg, m, rng.Stream(10))
		b := New(2, cfg, m, rng.Stream(12))
		rx := New(1, cfg, m, rng.Stream(11))
		rx.Meter = &stats.Meter{Start: dur / 5, End: dur}
		a.SetSaturated(1)
		b.SetSaturated(1)
		sched.Run(dur)
		return rx.Meter.Mbps()
	}
	without := run(false)
	if without > 1.5 {
		t.Errorf("hidden terminals without CS = %.2f Mb/s, want heavy collapse", without)
	}
	// Carrier sense cannot help hidden terminals either (senders cannot
	// hear each other) — the paper's Fig. 15 point.
	with := run(true)
	if with > 2.0 {
		t.Errorf("hidden terminals with CS = %.2f Mb/s, still expected collapse", with)
	}
}

func TestExposedTerminalsCSWastesCapacity(t *testing.T) {
	// Exposed configuration: two flows that could run concurrently.
	// With CS on, aggregate ≈ single-link rate; with CS off (+ACKs off to
	// avoid ACK-collision losses), aggregate ≈ 2×. This is Figure 12's
	// underlying mechanic.
	loss := [][]float64{
		// S1(0)  R1(1)  S2(2)  R2(3)
		{0, 68, 75, 108},
		{68, 0, 108, offAir},
		{75, 108, 0, 68},
		{108, offAir, 68, 0},
	}
	dur := 5 * sim.Second
	run := func(cs, acks bool) float64 {
		m, sched, rng := build(loss, 44)
		cfg := DefaultConfig()
		cfg.CarrierSense = cs
		cfg.LinkACKs = acks
		s1 := New(0, cfg, m, rng.Stream(10))
		s2 := New(2, cfg, m, rng.Stream(12))
		r1 := New(1, cfg, m, rng.Stream(11))
		r2 := New(3, cfg, m, rng.Stream(13))
		r1.Meter = &stats.Meter{Start: dur / 5, End: dur}
		r2.Meter = &stats.Meter{Start: dur / 5, End: dur}
		s1.SetSaturated(1)
		s2.SetSaturated(3)
		sched.Run(dur)
		return r1.Meter.Mbps() + r2.Meter.Mbps()
	}
	csOn := run(true, true)
	csOff := run(false, false)
	if csOn > 6.5 {
		t.Errorf("CS on aggregate = %.2f Mb/s; exposed senders should serialise near 5", csOn)
	}
	if csOff < 9.0 {
		t.Errorf("CS off aggregate = %.2f Mb/s, want ≈2× single link", csOff)
	}
	if csOff < csOn*1.6 {
		t.Errorf("exposed gain = %.2fx, want ≥1.6x (CS on %.2f, off %.2f)", csOff/csOn, csOn, csOff)
	}
}

func TestRetransmissionRecoversLoss(t *testing.T) {
	// A marginal link (isolation PRR ≈ 0.7): ACKs+retries push delivery
	// well above one-shot PRR.
	p := phy.DefaultParams()
	r := phy.RateByID(phy.Rate6Mbps)
	lo, hi := p.SensitivityDBm, -60.0
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if phy.IsolationPRR(p, r, mid, 1429) < 0.7 {
			lo = mid
		} else {
			hi = mid
		}
	}
	lossDB := p.TxPowerDBm - (lo+hi)/2
	m, sched, rng := build([][]float64{
		{0, lossDB},
		{lossDB, 0},
	}, 55)
	cfg := DefaultConfig()
	tx := New(0, cfg, m, rng.Stream(10))
	rx := New(1, cfg, m, rng.Stream(11))
	tx.Enqueue(1, 200)
	sched.Run(30 * sim.Second)
	delivered := rx.Stats().Delivered
	if delivered < 190 {
		t.Errorf("delivered %d of 200 on a PRR≈0.7 link with retries, want ≥190", delivered)
	}
	if tx.Stats().AckTimeout == 0 {
		t.Error("expected some ACK timeouts on a lossy link")
	}
}

func TestDedupOnRetries(t *testing.T) {
	// Force duplicate data receptions by making the reverse (ACK) link
	// marginal while the forward link is clean.
	p := phy.DefaultParams()
	m, sched, rng := build([][]float64{
		{0, 70},
		{70, 0},
	}, 66)
	_ = p
	cfg := DefaultConfig()
	// Shrink ACK reachability: simulate by sending many packets over a
	// clean link but with an rx that also transmits (collides with ACKs).
	// Simpler: deliver duplicates artificially via retry of unacked frames
	// on a clean link with an rx whose ACKs we suppress by turning its
	// LinkACKs off (rx never ACKs, tx retries everything).
	rxCfg := cfg
	rxCfg.LinkACKs = false
	tx := New(0, cfg, m, rng.Stream(10))
	rx := New(1, rxCfg, m, rng.Stream(11))
	tx.Enqueue(1, 5)
	sched.Run(5 * sim.Second)
	st := rx.Stats()
	if st.Delivered != 5 {
		t.Errorf("delivered = %d, want exactly 5 unique", st.Delivered)
	}
	if st.Duplicates == 0 {
		t.Error("expected duplicate receptions when ACKs never arrive")
	}
	if tx.Stats().Dropped != 5 {
		t.Errorf("tx dropped = %d, want 5 (retry limit exhausted)", tx.Stats().Dropped)
	}
}

func TestEnqueueAfterIdleRestarts(t *testing.T) {
	m, sched, rng := build([][]float64{
		{0, 70},
		{70, 0},
	}, 77)
	cfg := DefaultConfig()
	tx := New(0, cfg, m, rng.Stream(10))
	rx := New(1, cfg, m, rng.Stream(11))
	tx.Enqueue(1, 2)
	sched.Run(1 * sim.Second)
	if rx.Stats().Delivered != 2 {
		t.Fatalf("first batch delivered %d, want 2", rx.Stats().Delivered)
	}
	// Node is now idle; a later enqueue must restart access.
	tx.Enqueue(1, 3)
	sched.Run(2 * sim.Second)
	if rx.Stats().Delivered != 5 {
		t.Errorf("after second batch delivered %d, want 5", rx.Stats().Delivered)
	}
	if tx.QueueLen() != 0 {
		t.Errorf("queue not drained: %d", tx.QueueLen())
	}
}

func TestCarrierSenseDefersDuringForeignTransmission(t *testing.T) {
	// Node 2 saturates to 1; node 0 enqueues one packet mid-transmission
	// and must defer until the channel clears (no collision at 1).
	m, sched, rng := build([][]float64{
		{0, 70, 68},
		{70, 0, 70},
		{68, 70, 0},
	}, 88)
	cfg := DefaultConfig()
	a := New(0, cfg, m, rng.Stream(10))
	b := New(2, cfg, m, rng.Stream(12))
	rx := New(1, cfg, m, rng.Stream(11))
	b.SetSaturated(1)
	sched.Run(100 * sim.Millisecond)
	a.Enqueue(1, 20)
	sched.Run(3 * sim.Second)
	// All of a's packets delivered despite b's saturation.
	delivered := rx.Stats().Delivered
	if a.QueueLen() != 0 || a.Stats().Dropped > 2 {
		t.Errorf("a: queue=%d dropped=%d, expected near-complete delivery", a.QueueLen(), a.Stats().Dropped)
	}
	if delivered == 0 {
		t.Error("receiver got nothing")
	}
}

func BenchmarkSaturatedLink(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, sched, rng := build([][]float64{
			{0, 70},
			{70, 0},
		}, uint64(i+1))
		cfg := DefaultConfig()
		tx := New(0, cfg, m, rng.Stream(10))
		rx := New(1, cfg, m, rng.Stream(11))
		rx.Meter = &stats.Meter{Start: 0, End: sim.Second}
		tx.SetSaturated(1)
		sched.Run(sim.Second)
	}
}
