package csma

// RTS/CTS handshaking with NAV-based virtual carrier sense — the
// classic 802.11 hidden-terminal countermeasure, registered as the
// "rtscts" arm. A sender whose staged unicast payload reaches
// Config.RTSThreshold first transmits a 20-byte RTS; the addressee
// answers with a 14-byte CTS after SIFS unless its own NAV says the
// medium is reserved; the data frame follows the CTS after SIFS and the
// normal stop-and-wait ACK closes the exchange. Every station that
// overhears an RTS or CTS *not* addressed to it charges its network
// allocation vector (NAV) with the frame's duration field, freezing
// channel access until the reservation expires — which is exactly what
// silences a hidden terminal that cannot physically sense the data
// transmission it would collide with. All state lives in value-embedded
// timers and small-int event kinds, so the arm passes the conformance
// suite's 0-allocs/frame gate like its siblings.

import (
	"repro/internal/frame"
	"repro/internal/phy"
	"repro/internal/sim"
)

// usCeil converts a duration to whole microseconds, rounding up so a
// NAV reservation never undershoots the exchange it protects.
func usCeil(d sim.Time) sim.Time { return (d + 999) / 1000 }

// clampUS narrows a microsecond count to the 16-bit duration field.
func clampUS(us sim.Time) uint16 {
	if us > 65535 {
		return 65535
	}
	return uint16(us)
}

// ctsAirtime is the CTS frame's airtime at the control rate.
func (c Config) ctsAirtime() sim.Time {
	return phy.Airtime(phy.RateByID(c.ControlRate), (&frame.Dot11CTS{}).WireSize())
}

// RTSNavUS returns the duration field a sender advertises in an RTS
// protecting a data frame of payloadBytes: the CTS, data and ACK
// airtimes plus the three SIFS gaps separating them, in microseconds.
func (c Config) RTSNavUS(payloadBytes int) uint16 {
	dataAir := phy.Airtime(phy.RateByID(c.Rate),
		(&frame.Dot11Data{PayloadLen: uint16(payloadBytes)}).WireSize())
	ackAir := phy.Airtime(phy.RateByID(c.ControlRate), (&frame.Dot11Ack{}).WireSize())
	return clampUS(usCeil(3*phy.SIFS + c.ctsAirtime() + dataAir + ackAir))
}

// CTSNavUS derives a CTS duration field from the RTS it answers: the
// advertised reservation minus the SIFS gap and the CTS's own airtime
// already spent by the time the CTS ends.
func (c Config) CTSNavUS(rtsNavUS uint16) uint16 {
	spent := usCeil(phy.SIFS + c.ctsAirtime())
	if sim.Time(rtsNavUS) <= spent {
		return 0
	}
	return rtsNavUS - uint16(spent)
}

// CTSTimeout is how long an RTS sender waits for the answering CTS
// before backing off, mirroring the data frame's ACK timeout shape:
// the SIFS turnaround, the CTS airtime, and two slots of slack.
func (c Config) CTSTimeout() sim.Time {
	return phy.SIFS + c.ctsAirtime() + 2*phy.SlotTime
}

// useRTS reports whether the staged frame goes through the handshake.
func (n *Node) useRTS() bool {
	return n.cfg.RTSCTS && !n.pending.Dst.IsBroadcast() &&
		int(n.pending.PayloadLen) >= n.cfg.RTSThreshold
}

// transmitRTS opens the handshake for the staged data frame.
func (n *Node) transmitRTS() {
	n.rtsBuf = frame.Dot11RTS{
		Src:        n.addr,
		Dst:        n.pending.Dst,
		DurationUS: n.cfg.RTSNavUS(int(n.pending.PayloadLen)),
	}
	n.stat.RtsSent++
	n.radio.Transmit(&n.rtsBuf, phy.RateByID(n.cfg.ControlRate))
}

// rtsSent (tx-done of our RTS) arms the CTS timeout.
func (n *Node) rtsSent() {
	n.waitCts = true
	n.sched.ResetAfter(&n.ctsTimer, n.cfg.CTSTimeout(), n, evCtsTimeout)
}

// ctsTimedOut handles a missing CTS exactly like a missing ACK: count
// the attempt, grow the window, and retry or drop at the limit.
func (n *Node) ctsTimedOut() {
	n.waitCts = false
	n.stat.CtsTimeout++
	n.retries++
	if n.retries > n.cfg.RetryLimit {
		n.stat.Dropped++
		n.pending = nil
		n.cw = n.cfg.CWMin
		if n.makeNext() {
			n.drawBackoff()
			n.beginAccess()
		}
		return
	}
	if n.cw < n.cfg.CWMax {
		n.cw = 2*n.cw + 1
		if n.cw > n.cfg.CWMax {
			n.cw = n.cfg.CWMax
		}
	}
	n.drawBackoff()
	n.beginAccess()
}

// onRTS handles a decoded RTS: answer with a CTS if it is for us and
// our NAV shows the medium unreserved, otherwise charge the NAV.
func (n *Node) onRTS(r *frame.Dot11RTS) {
	if r.Dst != n.addr {
		n.setNav(n.sched.Now() + sim.Time(r.DurationUS)*1000)
		return
	}
	if n.navBusy() {
		return // a reserved medium: stay silent, the sender retries
	}
	cts := n.getCts()
	cts.Dst, cts.DurationUS = r.Src, n.cfg.CTSNavUS(r.DurationUS)
	n.sched.PostAfter(phy.SIFS, n, cts)
}

// onCTS handles a decoded CTS: either the clearance we were waiting
// for, or someone else's reservation to respect.
func (n *Node) onCTS(c *frame.Dot11CTS) {
	if c.Dst != n.addr {
		n.setNav(n.sched.Now() + sim.Time(c.DurationUS)*1000)
		return
	}
	if !n.waitCts {
		return
	}
	n.ctsTimer.Stop()
	n.waitCts = false
	n.sched.PostAfter(phy.SIFS, n, evSendData)
}

// sendDataAfterCts puts the protected data frame on air SIFS after the
// clearing CTS.
func (n *Node) sendDataAfterCts() {
	if n.pending == nil {
		return
	}
	if n.radio.Transmitting() {
		n.sched.PostAfter(phy.SlotTime, n, evBeginAccess)
		return
	}
	n.stat.Sent++
	n.radio.Transmit(n.pending, phy.RateByID(n.cfg.Rate))
}

// sendCts transmits a deferred CTS response (scheduled SIFS after the
// RTS), unless our own frame is on the air — then the RTS sender times
// out and retries.
func (n *Node) sendCts(cts *frame.Dot11CTS) {
	if n.radio.Transmitting() {
		n.ctsFree = append(n.ctsFree, cts)
		return
	}
	n.stat.CtsSent++
	n.radio.Transmit(cts, phy.RateByID(n.cfg.ControlRate))
}

// getCts pops a recycled CTS buffer (refilled at OnTxDone).
func (n *Node) getCts() *frame.Dot11CTS {
	if k := len(n.ctsFree); k > 0 {
		c := n.ctsFree[k-1]
		n.ctsFree = n.ctsFree[:k-1]
		return c
	}
	return &frame.Dot11CTS{}
}

// navBusy reports whether the virtual carrier sense forbids access.
func (n *Node) navBusy() bool {
	return n.cfg.RTSCTS && n.sched.Now() < n.navUntil
}

// setNav extends the NAV to the given deadline, freezing any running
// access countdown for the duration of the reservation.
func (n *Node) setNav(until sim.Time) {
	if !n.cfg.RTSCTS || until <= n.navUntil {
		return
	}
	n.navUntil = until
	if n.wantsTx {
		n.stopAccessTimers()
		n.armNavTimer()
	}
}

// armNavTimer (re)schedules the access-resume event at NAV expiry.
func (n *Node) armNavTimer() {
	n.navTimer.Stop()
	n.sched.ResetAt(&n.navTimer, n.navUntil, n, evNavClear)
}

// navCleared resumes channel access once the reservation expires,
// physical carrier sense permitting.
func (n *Node) navCleared() {
	if !n.wantsTx || n.pending == nil || n.waitAck || n.waitCts {
		return
	}
	if n.cfg.CarrierSense && n.radio.CarrierBusy() {
		return // resume on the idle edge
	}
	n.startDIFS()
}
