package csma

import (
	"encoding/json"
	"fmt"

	"repro/internal/frame"
	"repro/internal/sim"
)

// Checkpoint surface of the DCF station (and, through Config, of the
// RTS/CTS and cs@<dBm> arms built on it). Everything reachable from
// Config is structural — the resumer reconstructs the node through
// arm.New with the same config — so the state below is exactly the
// mutable remainder: the sender's staged packet and access countdown,
// the receiver's dedup cache, the NAV, the timers, counters and the
// RNG stream. The ACK/CTS free lists are pools and restore empty.

// nodeState is a csma.Node in checkpoint form.
type nodeState struct {
	Saturated      bool           `json:"saturated,omitempty"`
	SatDst         int            `json:"sat_dst,omitempty"`
	Queue          []int          `json:"queue,omitempty"`
	HasPending     bool           `json:"has_pending,omitempty"`
	PendDst        int            `json:"pend_dst,omitempty"`
	TxSeq          uint16         `json:"tx_seq,omitempty"`
	Retries        int            `json:"retries,omitempty"`
	CW             int            `json:"cw"`
	Backoff        int            `json:"backoff,omitempty"`
	WantsTx        bool           `json:"wants_tx,omitempty"`
	WaitAck        bool           `json:"wait_ack,omitempty"`
	CountdownStart sim.Time       `json:"countdown_start,omitempty"`
	DifsTimer      sim.TimerState `json:"difs_timer,omitempty"`
	BackoffTimer   sim.TimerState `json:"backoff_timer,omitempty"`
	AckTimer       sim.TimerState `json:"ack_timer,omitempty"`
	CtsTimer       sim.TimerState `json:"cts_timer,omitempty"`
	NavTimer       sim.TimerState `json:"nav_timer,omitempty"`
	NavUntil       sim.Time       `json:"nav_until,omitempty"`
	WaitCts        bool           `json:"wait_cts,omitempty"`
	RtsBuf         frame.Dot11RTS `json:"rts_buf"`
	// DataBuf is the staged data frame's embedded buffer; HasPending
	// records whether n.pending aimed at it (n.pending is only ever nil
	// or &n.dataBuf).
	DataBuf frame.Dot11Data `json:"data_buf"`
	LastSeq map[int]uint16  `json:"last_seq,omitempty"`
	GotAny  map[int]bool    `json:"got_any,omitempty"`
	Stat    Stats           `json:"stat"`
	RNG     uint64          `json:"rng"`
}

// ExportState implements mac.Checkpointer.
func (n *Node) ExportState() (json.RawMessage, error) {
	st := nodeState{
		Saturated:      n.saturated,
		SatDst:         n.satDst,
		Queue:          append([]int(nil), n.queue...),
		HasPending:     n.pending != nil,
		PendDst:        n.pendDst,
		TxSeq:          n.txSeq,
		Retries:        n.retries,
		CW:             n.cw,
		Backoff:        n.backoff,
		WantsTx:        n.wantsTx,
		WaitAck:        n.waitAck,
		CountdownStart: n.countdownStart,
		DifsTimer:      n.difsTimer.State(),
		BackoffTimer:   n.backoffTimer.State(),
		AckTimer:       n.ackTimer.State(),
		CtsTimer:       n.ctsTimer.State(),
		NavTimer:       n.navTimer.State(),
		NavUntil:       n.navUntil,
		WaitCts:        n.waitCts,
		RtsBuf:         n.rtsBuf,
		DataBuf:        n.dataBuf,
		LastSeq:        n.lastSeq,
		GotAny:         n.gotAny,
		Stat:           n.stat,
		RNG:            n.rng.State(),
	}
	return json.Marshal(st)
}

// RestoreState implements mac.Checkpointer. It must run after the
// scheduler's RestoreState so the timer handles re-point against the
// restored slot generations.
func (n *Node) RestoreState(enc json.RawMessage) error {
	var st nodeState
	if err := json.Unmarshal(enc, &st); err != nil {
		return fmt.Errorf("csma: node %d state: %w", n.id, err)
	}
	n.saturated = st.Saturated
	n.satDst = st.SatDst
	n.queue = append(n.queue[:0], st.Queue...)
	n.dataBuf = st.DataBuf
	n.pending = nil
	if st.HasPending {
		n.pending = &n.dataBuf
	}
	n.pendDst = st.PendDst
	n.txSeq = st.TxSeq
	n.retries = st.Retries
	n.cw = st.CW
	n.backoff = st.Backoff
	n.wantsTx = st.WantsTx
	n.waitAck = st.WaitAck
	n.countdownStart = st.CountdownStart
	n.sched.RestoreTimer(&n.difsTimer, st.DifsTimer)
	n.sched.RestoreTimer(&n.backoffTimer, st.BackoffTimer)
	n.sched.RestoreTimer(&n.ackTimer, st.AckTimer)
	n.sched.RestoreTimer(&n.ctsTimer, st.CtsTimer)
	n.sched.RestoreTimer(&n.navTimer, st.NavTimer)
	n.navUntil = st.NavUntil
	n.waitCts = st.WaitCts
	n.rtsBuf = st.RtsBuf
	n.lastSeq = st.LastSeq
	if n.lastSeq == nil {
		n.lastSeq = make(map[int]uint16)
	}
	n.gotAny = st.GotAny
	if n.gotAny == nil {
		n.gotAny = make(map[int]bool)
	}
	n.stat = st.Stat
	n.rng.SetState(st.RNG)
	return nil
}

// csmaArg is the encoded form of one agenda event argument owned by
// this station: a fixed timer callback kind or a deferred ACK/CTS
// response frame.
type csmaArg struct {
	Ev    *int            `json:"ev,omitempty"`
	Frame json.RawMessage `json:"frame,omitempty"`
}

// EncodeEventArg implements mac.Checkpointer.
func (n *Node) EncodeEventArg(arg any) (json.RawMessage, error) {
	switch v := arg.(type) {
	case macEvent:
		ev := int(v)
		return json.Marshal(csmaArg{Ev: &ev})
	case *frame.Dot11Ack:
		enc, err := frame.MarshalState(v)
		if err != nil {
			return nil, err
		}
		return json.Marshal(csmaArg{Frame: enc})
	case *frame.Dot11CTS:
		enc, err := frame.MarshalState(v)
		if err != nil {
			return nil, err
		}
		return json.Marshal(csmaArg{Frame: enc})
	default:
		return nil, fmt.Errorf("csma: node %d holds unencodable event arg %T", n.id, arg)
	}
}

// DecodeEventArg implements mac.Checkpointer. Response frames decode to
// fresh objects — the dispatch path type-switches and reads content,
// never pointer identity, so a fresh object replays identically.
func (n *Node) DecodeEventArg(enc json.RawMessage) (any, error) {
	var a csmaArg
	if err := json.Unmarshal(enc, &a); err != nil {
		return nil, fmt.Errorf("csma: node %d event arg: %w", n.id, err)
	}
	switch {
	case a.Ev != nil:
		return macEvent(*a.Ev), nil
	case a.Frame != nil:
		f, err := frame.UnmarshalState(a.Frame)
		if err != nil {
			return nil, fmt.Errorf("csma: node %d event arg: %w", n.id, err)
		}
		switch ff := f.(type) {
		case *frame.Dot11Ack, *frame.Dot11CTS:
			return ff, nil
		default:
			return nil, fmt.Errorf("csma: node %d event arg holds unexpected %v frame", n.id, f.Kind())
		}
	default:
		return nil, fmt.Errorf("csma: node %d event arg encodes neither kind nor frame", n.id)
	}
}
