// Package csma implements the 802.11 DCF baseline MAC the paper
// compares against ("the status quo").
//
// # Relation to the paper
//
// Every figure of §5 measures CMAP against combinations of this MAC's
// two switches: physical carrier sense with DIFS deferral and slotted
// binary-exponential backoff, and stop-and-wait link-layer ACKs with
// retransmission. The four baseline arms — "CS, acks", "CS, no acks",
// "CS off, acks", "CS off, no acks" — are Config.CarrierSense ×
// Config.LinkACKs. Carrier sense is precisely the conservative
// approximation CMAP replaces (§1): it defers on any audible energy at
// the sender, even when the intended receiver would decode fine.
//
// # Performance shape
//
// The backoff countdown runs as one timer per countdown rather than one
// event per 9 µs slot (busy edges deduct the fully elapsed slots —
// DCF-equivalent), and all per-frame timers are caller-owned values
// re-armed through the scheduler, so saturated DCF traffic stays on the
// zero-allocation path. Traffic can be driven saturated (SetSaturated,
// the paper's model) or by arrival processes via Enqueue/Backlog, which
// satisfy traffic.Enqueuer; data sequence numbers are consecutive per
// staged packet so deliveries map back to arrival times for latency
// measurement.
package csma
