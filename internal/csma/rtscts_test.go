package csma

import (
	"testing"

	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/stats"
)

// The hand-computed timing table below uses the 802.11a constants the
// phy package pins: SIFS 16 µs, slot 9 µs, and at the 6 Mb/s base rate
// a 14-byte CTS/ACK flies for 44 µs, a 20-byte RTS for 52 µs, and a
// 1400-byte data frame for 1924 µs (at 12 Mb/s: 972 µs; at 24 Mb/s a
// control frame takes 28 µs). An RTS reservation covers
// 3·SIFS + CTS + DATA + ACK.

func TestRTSNavDurations(t *testing.T) {
	cases := []struct {
		name         string
		rate, ctrl   phy.RateID
		payloadBytes int
		want         uint16
	}{
		// 3·16 + 44 + 1924 + 44 = 2060 µs
		{"default 1400B", phy.Rate6Mbps, phy.Rate6Mbps, 1400, 2060},
		// 48 + 44 + 400 + 44 = 536 µs
		{"small 256B", phy.Rate6Mbps, phy.Rate6Mbps, 256, 536},
		// 48 + 44 + 972 + 44 = 1108 µs (data at 12 Mb/s, controls at 6)
		{"data at 12Mbps", phy.Rate12Mbps, phy.Rate6Mbps, 1400, 1108},
		// 48 + 28 + 1924 + 28 = 2028 µs (controls at 24 Mb/s)
		{"controls at 24Mbps", phy.Rate6Mbps, phy.Rate24Mbps, 1400, 2028},
		// 48 + 44 + 80056 + 44 = 80192 µs: beyond the 16-bit field, clamped
		{"clamped at 16 bits", phy.Rate6Mbps, phy.Rate6Mbps, 60000, 65535},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Rate, cfg.ControlRate = tc.rate, tc.ctrl
			if got := cfg.RTSNavUS(tc.payloadBytes); got != tc.want {
				t.Errorf("RTSNavUS(%d) = %d µs, want %d", tc.payloadBytes, got, tc.want)
			}
		})
	}
}

func TestCTSNavDerivation(t *testing.T) {
	cases := []struct {
		name     string
		ctrl     phy.RateID
		rtsNavUS uint16
		want     uint16
	}{
		// The CTS answering a default 1400-byte reservation: by CTS end,
		// SIFS + CTS airtime = 60 µs of the 2060 are spent.
		{"default 1400B", phy.Rate6Mbps, 2060, 2000},
		{"small 256B", phy.Rate6Mbps, 536, 476},
		// 16 + 28 = 44 µs spent with 24 Mb/s controls.
		{"controls at 24Mbps", phy.Rate24Mbps, 2028, 1984},
		// A reservation that expires during the CTS itself floors at 0
		// rather than wrapping the unsigned field.
		{"floors at zero", phy.Rate6Mbps, 60, 0},
		{"tiny remainder", phy.Rate6Mbps, 61, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.ControlRate = tc.ctrl
			if got := cfg.CTSNavUS(tc.rtsNavUS); got != tc.want {
				t.Errorf("CTSNavUS(%d) = %d µs, want %d", tc.rtsNavUS, got, tc.want)
			}
		})
	}
}

func TestCTSTimeout(t *testing.T) {
	cases := []struct {
		name string
		ctrl phy.RateID
		want sim.Time
	}{
		// SIFS + CTS + 2 slots = 16 + 44 + 18 = 78 µs.
		{"controls at 6Mbps", phy.Rate6Mbps, 78 * sim.Microsecond},
		// 16 + 28 + 18 = 62 µs.
		{"controls at 24Mbps", phy.Rate24Mbps, 62 * sim.Microsecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.ControlRate = tc.ctrl
			if got := cfg.CTSTimeout(); got != tc.want {
				t.Errorf("CTSTimeout() = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestRTSThresholdBypass pins the threshold cutoff: frames at or above
// RTSThreshold handshake, smaller ones follow plain DCF — and both
// still deliver.
func TestRTSThresholdBypass(t *testing.T) {
	run := func(threshold int) (float64, Stats) {
		cfg := DefaultConfig()
		cfg.RTSCTS = true
		cfg.RTSThreshold = threshold
		got, tx, _ := runFlow(t, cfg, 2*sim.Second)
		return got, tx.Stats()
	}

	t.Run("handshakes at or above threshold", func(t *testing.T) {
		got, st := run(1400) // == PayloadBytes: every frame handshakes
		if st.RtsSent == 0 {
			t.Error("no RTS sent although payload meets the threshold")
		}
		if got < 4.0 {
			t.Errorf("goodput %.2f Mb/s too low for a clean link", got)
		}
	})
	t.Run("bypasses below threshold", func(t *testing.T) {
		got, st := run(1401) // just above PayloadBytes: plain DCF
		if st.RtsSent != 0 {
			t.Errorf("%d RTS sent although every payload is below the threshold", st.RtsSent)
		}
		if st.Dropped != 0 {
			t.Errorf("clean link dropped %d frames in bypass mode", st.Dropped)
		}
		if got < 4.5 {
			t.Errorf("goodput %.2f Mb/s too low for a clean link", got)
		}
	})
}

// TestRTSCTSCleanLink pins the handshake's steady-state bookkeeping on
// a loss-free link: every exchange pairs an RTS with a CTS, nothing
// times out, nothing drops, and the handshake tax keeps goodput a
// little under the plain-DCF figure.
func TestRTSCTSCleanLink(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RTSCTS = true
	m, sched, rng := build([][]float64{
		{0, 70},
		{70, 0},
	}, 7)
	dur := 5 * sim.Second
	tx := New(0, cfg, m, rng.Stream(10))
	rx := New(1, cfg, m, rng.Stream(11))
	rx.Meter = &stats.Meter{Start: dur / 5, End: dur}
	tx.SetSaturated(1)
	sched.Run(dur)

	st, rst := tx.Stats(), rx.Stats()
	if st.RtsSent == 0 || rst.CtsSent == 0 {
		t.Fatalf("handshake inert: %d RTS, %d CTS", st.RtsSent, rst.CtsSent)
	}
	if st.RtsSent != rst.CtsSent {
		t.Errorf("clean link: %d RTS vs %d CTS — every RTS should be answered", st.RtsSent, rst.CtsSent)
	}
	if st.CtsTimeout != 0 || st.Dropped != 0 {
		t.Errorf("clean link saw %d CTS timeouts, %d drops", st.CtsTimeout, st.Dropped)
	}
	got := rx.Meter.Mbps()
	if got < 4.5 || got > 5.5 {
		t.Errorf("RTS/CTS goodput = %.2f Mb/s, want ≈4.8–5.2 (plain DCF minus handshake tax)", got)
	}
}
