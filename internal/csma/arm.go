package csma

// Registration of the CSMA-derived protocol arms with the internal/mac
// registry: the four carrier-sense/ACK baseline variants the paper
// tables, the RTS/CTS handshake arm, and the cs@<dBm> carrier-sense-
// threshold family swept by the threshold figure. Seed salts are pinned
// to the legacy experiments.Protocol integer values so every golden
// trace recorded before the registry existed stays bit-identical.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/mac"
	"repro/internal/sim"
	"repro/internal/stats"
)

// SetMeter implements mac.Node.
func (n *Node) SetMeter(m *stats.Meter) { n.Meter = m }

// SetOnDeliver implements mac.Node.
func (n *Node) SetOnDeliver(fn mac.DeliverFunc) { n.OnDeliver = DeliverFunc(fn) }

// LatencyWindow implements mac.Node: stop-and-wait keeps one packet in
// flight, so a small arrival-time ring suffices.
func (n *Node) LatencyWindow() int { return 16 }

// MacDropped implements mac.Node.
func (n *Node) MacDropped() uint64 { return n.stat.Dropped }

// arm adapts a Config recipe to the mac.Arm interface.
type arm struct {
	name      string
	label     string
	salt      uint64
	configure func(*Config)
}

func (a arm) Name() string     { return a.name }
func (a arm) Label() string    { return a.label }
func (a arm) SeedSalt() uint64 { return a.salt }

func (a arm) New(id int, m mac.Network, rng *sim.RNG, opt mac.Options) mac.Node {
	cfg := DefaultConfig()
	cfg.Rate = opt.Rate
	if a.configure != nil {
		a.configure(&cfg)
	}
	return New(id, cfg, m, rng)
}

// csSaltBase offsets the cs@<dBm> family's seed salts far above the
// pinned legacy arm values so no threshold can collide with them.
const csSaltBase = 1_000_003

// parseCSArm resolves one member of the cs@<dBm> family, e.g. cs@-82.
func parseCSArm(name string) (mac.Arm, error) {
	spec := strings.TrimPrefix(name, "cs@")
	thr, err := strconv.ParseFloat(spec, 64)
	if err != nil {
		return nil, fmt.Errorf("cs@ arm %q: threshold %q is not a number", name, spec)
	}
	if thr >= 0 || thr < -120 {
		return nil, fmt.Errorf("cs@ arm %q: threshold must be in (-120, 0) dBm", name)
	}
	return arm{
		name:  name,
		label: fmt.Sprintf("CS @ %g dBm", thr),
		salt:  csSaltBase + uint64(int64(-thr*100)),
		configure: func(c *Config) {
			c.CSThresholdDBm = thr
		},
	}, nil
}

func init() {
	mac.Register(arm{name: "csma", label: "CS, acks", salt: 0})
	mac.Register(arm{name: "csma-noack", label: "CS, no acks", salt: 1,
		configure: func(c *Config) { c.LinkACKs = false }})
	mac.Register(arm{name: "csma-nocs", label: "CS off, acks", salt: 2,
		configure: func(c *Config) { c.CarrierSense = false }})
	mac.Register(arm{name: "csma-nocs-noack", label: "CS off, no acks", salt: 3,
		configure: func(c *Config) { c.CarrierSense = false; c.LinkACKs = false }})
	mac.Register(arm{name: "rtscts", label: "RTS/CTS", salt: 6,
		configure: func(c *Config) { c.RTSCTS = true }})
	mac.RegisterFamily("cs@", "cs@<dBm>", parseCSArm)
}
