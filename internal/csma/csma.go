package csma

import (
	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config selects the baseline's behaviour.
type Config struct {
	// CarrierSense enables physical carrier sense ("CS on"). When false
	// the node transmits after its interframe spacing and backoff without
	// consulting the medium ("CS off").
	CarrierSense bool
	// LinkACKs enables stop-and-wait ACKs and retransmission. When false
	// packets are sent exactly once ("no acks").
	LinkACKs bool
	// Rate is the data bit-rate.
	Rate phy.RateID
	// ControlRate is the rate for ACK frames (802.11 sends ACKs at a
	// basic rate).
	ControlRate phy.RateID
	// PayloadBytes is the application payload per packet.
	PayloadBytes int
	// CWMin and CWMax bound the contention window in slots (802.11a:
	// 15 and 1023).
	CWMin, CWMax int
	// RetryLimit caps retransmissions of one packet.
	RetryLimit int
	// CSThresholdDBm, when non-zero, overrides this node's carrier-sense
	// threshold away from the medium-wide default — the knob the
	// cs@<dBm> arm family sweeps to trade exposed-terminal concurrency
	// against hidden-terminal collisions.
	CSThresholdDBm float64
	// RTSCTS enables the RTS/CTS handshake with NAV-based virtual
	// carrier sense for unicast data whose payload is at least
	// RTSThreshold bytes; smaller frames (and broadcasts) bypass the
	// handshake and follow plain DCF.
	RTSCTS bool
	// RTSThreshold is the RTS payload-size cutoff in bytes (0 = RTS for
	// every unicast frame when RTSCTS is on).
	RTSThreshold int
}

// DefaultConfig returns the 802.11a defaults used throughout the
// evaluation: carrier sense on, ACKs on, 6 Mb/s, 1400-byte payloads.
func DefaultConfig() Config {
	return Config{
		CarrierSense: true,
		LinkACKs:     true,
		Rate:         phy.Rate6Mbps,
		ControlRate:  phy.Rate6Mbps,
		PayloadBytes: 1400,
		CWMin:        15,
		CWMax:        1023,
		RetryLimit:   7,
	}
}

// DeliverFunc observes each non-duplicate payload delivery at a receiver.
type DeliverFunc func(src int, seq uint32, now sim.Time)

// Node is one 802.11 DCF station. Create it with New, point traffic at it
// with SetSaturated or Enqueue, then run the scheduler.
type Node struct {
	id    int
	cfg   Config
	radio *phy.Radio
	sched *sim.Scheduler
	rng   *sim.RNG
	addr  frame.Addr

	// Meter, when set, records non-duplicate deliveries at this node.
	Meter *stats.Meter
	// OnDeliver, when set, observes non-duplicate deliveries (used to
	// chain mesh forwarding).
	OnDeliver DeliverFunc

	// Sender state.
	saturated bool
	satDst    int
	queue     []int // destination per queued packet
	pending   *frame.Dot11Data
	pendDst   int
	txSeq     uint16 // next data sequence number, one per staged packet
	retries   int
	cw        int
	backoff   int // remaining backoff slots
	wantsTx   bool
	waitAck   bool

	// countdownStart is when the running backoff countdown began; on a
	// carrier-busy freeze the fully elapsed slots since then are deducted.
	countdownStart sim.Time

	// The per-frame timers are caller-owned values re-armed through
	// Scheduler.ResetAfter, so steady-state access cycles allocate no
	// Timer handles.
	difsTimer    sim.Timer
	backoffTimer sim.Timer
	ackTimer     sim.Timer
	ctsTimer     sim.Timer
	navTimer     sim.Timer

	// RTS/CTS virtual-carrier-sense state: the network-allocation-vector
	// deadline learned from overheard RTS/CTS reservations, and whether
	// we are between our own RTS and the answering CTS.
	navUntil sim.Time
	waitCts  bool
	rtsBuf   frame.Dot11RTS

	// Frame pools. The staged data frame lives in an embedded buffer —
	// stop-and-wait keeps one packet in flight, and by the time the next
	// is staged every receiver of the previous frame has finished with
	// it (the medium completes all receptions before the sender's
	// tx-done). ACK and CTS responses recycle through free lists the
	// same way, so the steady-state frame path allocates nothing.
	dataBuf frame.Dot11Data
	ackFree []*frame.Dot11Ack
	ctsFree []*frame.Dot11CTS

	// Receiver state: last delivered seq per source. Stop-and-wait means
	// a duplicate can only be a retransmission of the most recent packet,
	// which is how 802.11's dedup cache works and keeps seq wrap safe.
	lastSeq map[int]uint16
	gotAny  map[int]bool

	stat Stats
}

// Stats counts protocol events at one node.
type Stats struct {
	Sent       uint64 // data transmissions put on air (incl. retries)
	Delivered  uint64 // non-duplicate data packets received for us
	Duplicates uint64
	AcksSent   uint64
	AckTimeout uint64
	Dropped    uint64 // packets abandoned after RetryLimit
	RtsSent    uint64 // RTS handshakes initiated
	CtsSent    uint64 // CTS responses put on air
	CtsTimeout uint64 // RTS attempts that drew no CTS
}

// New creates a DCF node on network node id.
func New(id int, cfg Config, m mac.Network, rng *sim.RNG) *Node {
	n := &Node{
		id:      id,
		cfg:     cfg,
		radio:   m.Radio(id),
		sched:   m.Scheduler(),
		rng:     rng,
		addr:    frame.AddrFromID(id),
		cw:      cfg.CWMin,
		lastSeq: make(map[int]uint16),
		gotAny:  make(map[int]bool),
	}
	n.radio.SetHandler(n)
	if cfg.CSThresholdDBm != 0 {
		n.radio.SetCSThresholdDBm(cfg.CSThresholdDBm)
	}
	return n
}

// ID returns the node's medium index.
func (n *Node) ID() int { return n.id }

// Stats returns a copy of the node's counters.
func (n *Node) Stats() Stats { return n.stat }

// BroadcastDst is the pseudo-destination for 802.11 broadcast frames:
// they carry the broadcast address and are never ACKed or retried.
const BroadcastDst = -1

// macEvent enumerates the node's fixed timer callbacks, dispatched
// through HandleEvent so the per-frame DIFS/slot/ACK events need no
// closure allocations.
type macEvent int

const (
	evDIFS macEvent = iota
	evBackoff
	evAckTimeout
	evBeginAccess
	evCtsTimeout
	evNavClear
	evSendData
)

// HandleEvent implements sim.EventHandler: fixed timer callbacks arrive
// as macEvent kinds, deferred ACK transmissions as the ACK frame itself.
func (n *Node) HandleEvent(arg any) {
	switch v := arg.(type) {
	case macEvent:
		switch v {
		case evDIFS:
			n.difsElapsed()
		case evBackoff:
			n.backoffElapsed()
		case evAckTimeout:
			n.ackTimedOut()
		case evBeginAccess:
			n.beginAccess()
		case evCtsTimeout:
			n.ctsTimedOut()
		case evNavClear:
			n.navCleared()
		case evSendData:
			n.sendDataAfterCts()
		}
	case *frame.Dot11Ack:
		n.sendAck(v)
	case *frame.Dot11CTS:
		n.sendCts(v)
	}
}

// SetSaturated makes the node a backlogged source towards dst (or
// BroadcastDst): it always has the next packet ready, the paper's
// traffic model.
func (n *Node) SetSaturated(dst int) {
	n.saturated = true
	n.satDst = dst
	n.kick()
}

// Enqueue adds count packets destined to dst.
func (n *Node) Enqueue(dst int, count int) {
	for i := 0; i < count; i++ {
		n.queue = append(n.queue, dst)
	}
	n.kick()
}

// QueueLen returns the number of queued (not yet attempted) packets.
func (n *Node) QueueLen() int { return len(n.queue) }

// Backlog returns how many queued packets are destined to dst. Together
// with Enqueue it makes the node a traffic.Enqueuer, so arrival
// processes can enforce finite queue bounds.
func (n *Node) Backlog(dst int) int {
	c := 0
	for _, d := range n.queue {
		if d == dst {
			c++
		}
	}
	return c
}

// Idle reports whether the sender has nothing left to do. Saturated
// senders are never idle.
func (n *Node) Idle() bool {
	if n.saturated {
		return false
	}
	return n.pending == nil && len(n.queue) == 0 && !n.waitAck
}

// kick starts channel access if there is work and the node is idle.
func (n *Node) kick() {
	if n.pending != nil || n.waitAck {
		return
	}
	if !n.makeNext() {
		return
	}
	n.drawBackoff()
	n.beginAccess()
}

// makeNext stages the next packet. It reports false if there is nothing
// to send.
func (n *Node) makeNext() bool {
	dst := -1
	switch {
	case len(n.queue) > 0:
		dst = n.queue[0]
		n.queue = n.queue[1:]
	case n.saturated:
		dst = n.satDst
	default:
		return false
	}
	n.pendDst = dst
	da := frame.Broadcast
	if dst != BroadcastDst {
		da = frame.AddrFromID(dst)
	}
	// Sequence numbers are consecutive per staged packet (retries keep
	// theirs), so the k-th packet a flow accepts carries sequence k mod
	// 2¹⁶ — the invariant traffic sources use to map a delivered frame
	// back to its arrival time. Stop-and-wait dedup only ever compares
	// against the immediately preceding packet, so consecutive values
	// are as collision-safe as the attempt-counter scheme they replace.
	n.dataBuf = frame.Dot11Data{
		Src:        n.addr,
		Dst:        da,
		Seq:        n.txSeq,
		PayloadLen: uint16(n.cfg.PayloadBytes),
	}
	n.pending = &n.dataBuf
	n.txSeq++
	n.retries = 0
	return true
}

// drawBackoff picks a fresh backoff from the current contention window.
func (n *Node) drawBackoff() {
	n.backoff = n.rng.Intn(n.cw + 1)
}

// beginAccess starts the DIFS + backoff procedure for the staged packet.
func (n *Node) beginAccess() {
	if n.pending == nil {
		return
	}
	n.wantsTx = true
	if n.navBusy() {
		n.armNavTimer()
		return // resume when the NAV reservation clears
	}
	if n.cfg.CarrierSense && n.radio.CarrierBusy() {
		return // resume on the idle edge
	}
	n.startDIFS()
}

func (n *Node) startDIFS() {
	n.stopAccessTimers()
	n.sched.ResetAfter(&n.difsTimer, phy.DIFS, n, evDIFS)
}

func (n *Node) difsElapsed() {
	n.countdown()
}

// countdown runs the remaining backoff down as ONE timer covering all
// remaining slots, not one event per slot: between carrier edges the
// channel state cannot change, so the countdown either runs to
// completion untouched (the transmission still starts at exactly
// countdownStart + backoff·SlotTime) or is frozen by a busy edge — at
// which point the fully elapsed slots are deducted. A busy edge landing
// exactly ON a slot boundary counts that slot as elapsed (it was idle
// throughout); the per-slot scheme this replaces could resolve such
// ties either way depending on event seq order, so the collapse is
// DCF-equivalent but not tie-for-tie identical — one of the reasons the
// golden traces were regenerated for this change. With carrier sense
// the timer is cancelled on busy edges and the countdown resumes after
// the next idle DIFS, freezing the remaining slots as DCF specifies.
func (n *Node) countdown() {
	if n.backoff <= 0 {
		n.transmitData()
		return
	}
	n.countdownStart = n.sched.Now()
	n.sched.ResetAfter(&n.backoffTimer, sim.Time(n.backoff)*phy.SlotTime, n, evBackoff)
}

func (n *Node) backoffElapsed() {
	n.backoff = 0
	n.transmitData()
}

func (n *Node) stopAccessTimers() {
	n.difsTimer.Stop()
	if n.backoffTimer.Stop() {
		n.backoff -= int((n.sched.Now() - n.countdownStart) / phy.SlotTime)
		if n.backoff < 0 {
			n.backoff = 0
		}
	}
}

func (n *Node) transmitData() {
	n.wantsTx = false
	if n.radio.Transmitting() {
		// An ACK we owed someone is on the air; retry shortly.
		n.sched.PostAfter(phy.SlotTime, n, evBeginAccess)
		return
	}
	if n.useRTS() {
		n.transmitRTS()
		return
	}
	n.stat.Sent++
	n.radio.Transmit(n.pending, phy.RateByID(n.cfg.Rate))
}

// ackTimeout is how long a sender waits for the stop-and-wait ACK.
func (n *Node) ackTimeout() sim.Time {
	ackAir := phy.Airtime(phy.RateByID(n.cfg.ControlRate), (&frame.Dot11Ack{}).WireSize())
	return phy.SIFS + ackAir + 2*phy.SlotTime
}

// OnTxDone implements phy.Handler.
func (n *Node) OnTxDone(f frame.Frame) {
	switch ff := f.(type) {
	case *frame.Dot11Data:
		if n.cfg.LinkACKs && !ff.Dst.IsBroadcast() {
			n.waitAck = true
			n.sched.ResetAfter(&n.ackTimer, n.ackTimeout(), n, evAckTimeout)
			return
		}
		// Broadcast or fire-and-forget: next packet immediately.
		n.pending = nil
		n.cw = n.cfg.CWMin
		if n.makeNext() {
			n.drawBackoff()
			n.beginAccess()
		}
	case *frame.Dot11Ack:
		// Receiver side: every addressee has decoded the ACK by now
		// (receptions complete before tx-done), so recycle its buffer.
		n.ackFree = append(n.ackFree, ff)
	case *frame.Dot11RTS:
		n.rtsSent()
	case *frame.Dot11CTS:
		n.ctsFree = append(n.ctsFree, ff)
	}
}

func (n *Node) ackTimedOut() {
	n.waitAck = false
	n.stat.AckTimeout++
	n.retries++
	if n.retries > n.cfg.RetryLimit {
		n.stat.Dropped++
		n.pending = nil
		n.cw = n.cfg.CWMin
		if n.makeNext() {
			n.drawBackoff()
			n.beginAccess()
		}
		return
	}
	n.pending.Retry = true
	if n.cw < n.cfg.CWMax {
		n.cw = 2*n.cw + 1
		if n.cw > n.cfg.CWMax {
			n.cw = n.cfg.CWMax
		}
	}
	n.drawBackoff()
	n.beginAccess()
}

// OnFrame implements phy.Handler.
func (n *Node) OnFrame(f frame.Frame, info phy.RxInfo) {
	switch ff := f.(type) {
	case *frame.Dot11Data:
		if ff.Dst != n.addr && !ff.Dst.IsBroadcast() {
			return
		}
		if n.gotAny[info.From] && n.lastSeq[info.From] == ff.Seq {
			n.stat.Duplicates++
		} else {
			n.gotAny[info.From] = true
			n.lastSeq[info.From] = ff.Seq
			n.stat.Delivered++
			if n.Meter != nil {
				n.Meter.Record(n.sched.Now(), int(ff.PayloadLen))
			}
			if n.OnDeliver != nil {
				n.OnDeliver(info.From, uint32(ff.Seq), n.sched.Now())
			}
		}
		if n.cfg.LinkACKs && !ff.Dst.IsBroadcast() {
			ack := n.getAck()
			ack.Dst, ack.Seq = ff.Src, ff.Seq
			n.sched.PostAfter(phy.SIFS, n, ack)
		}
	case *frame.Dot11Ack:
		if ff.Dst != n.addr || !n.waitAck || n.pending == nil {
			return
		}
		if ff.Seq != n.pending.Seq {
			return
		}
		n.ackTimer.Stop()
		n.waitAck = false
		n.pending = nil
		n.retries = 0
		n.cw = n.cfg.CWMin
		if n.makeNext() {
			n.drawBackoff()
			n.beginAccess()
		}
	case *frame.Dot11RTS:
		n.onRTS(ff)
	case *frame.Dot11CTS:
		n.onCTS(ff)
	}
}

// sendAck transmits a deferred stop-and-wait ACK (scheduled SIFS after
// the data frame), unless our own frame is on the air — then the sender
// times out and retries.
func (n *Node) sendAck(ack *frame.Dot11Ack) {
	if n.radio.Transmitting() {
		n.ackFree = append(n.ackFree, ack)
		return
	}
	n.stat.AcksSent++
	n.radio.Transmit(ack, phy.RateByID(n.cfg.ControlRate))
}

// getAck pops a recycled ACK buffer (refilled at OnTxDone).
func (n *Node) getAck() *frame.Dot11Ack {
	if k := len(n.ackFree); k > 0 {
		a := n.ackFree[k-1]
		n.ackFree = n.ackFree[:k-1]
		return a
	}
	return &frame.Dot11Ack{}
}

// OnCorrupt implements phy.Handler. DCF learns nothing from corrupted
// frames beyond the carrier-sense busy period it already observed.
func (n *Node) OnCorrupt(phy.RxInfo) {}

// OnCarrier implements phy.Handler: freeze/resume the access procedure.
func (n *Node) OnCarrier(busy bool) {
	if !n.cfg.CarrierSense {
		return
	}
	if busy {
		n.stopAccessTimers()
		return
	}
	if n.wantsTx && n.pending != nil && !n.waitAck {
		if n.navBusy() {
			n.armNavTimer()
			return
		}
		n.startDIFS()
	}
}
