package topo

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/medium"
	"repro/internal/mobility"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/traffic"
)

// Scenario is a named large-scale node layout: positions plus the radio
// environment a medium needs. Unlike Testbed it carries no O(n²) link
// measurements, so generators scale to thousands of nodes; call
// Testbed() to run the §5.1 measurement pass when link selection is
// needed (that pass is quadratic, use it at sizes where you can afford
// it).
type Scenario struct {
	Name   string
	Bounds geo.Rect
	Pos    []geo.Point
	Params phy.Params
	Model  radio.Model

	// APs lists designated access-point node indices for layouts that
	// have them (ClusteredAPs); empty otherwise.
	APs []int

	// Traffic is the scenario's suggested workload: the arrival model a
	// driver should default to when the user does not pick one. The zero
	// value is the saturated (always-backlogged) model, so existing
	// scenarios behave exactly as before the traffic subsystem existed.
	// cmd/cmapsim consults it when its -traffic flag is left empty.
	Traffic traffic.Spec

	// Arms is the scenario's suggested MAC arm set: internal/mac registry
	// names a driver should default to when the user picks none. Empty
	// keeps the driver's own default. cmd/cmapsim runs the first entry
	// when its -arm and -protocol flags are left untouched.
	Arms []string

	// Mobility is the scenario's suggested node-motion model, consulted
	// by drivers when the user's -mobility flag is left empty. The zero
	// value keeps the layout static, so every pre-mobility scenario
	// behaves exactly as before.
	Mobility mobility.Spec
}

// Mobile returns a copy of the scenario carrying the given motion
// suggestion — the cheap way to derive a mobile variant of any static
// layout.
func (s *Scenario) Mobile(spec mobility.Spec) *Scenario {
	c := *s
	c.Mobility = spec
	if c.Mobility.Kind != mobility.None {
		c.Name = s.Name + "+" + c.Mobility.String()
	}
	return &c
}

// N returns the node count.
func (s *Scenario) N() int { return len(s.Pos) }

// Build constructs a sparse medium over the scenario on the given
// scheduler. Decode randomness comes from rng.
func (s *Scenario) Build(sched *sim.Scheduler, rng *sim.RNG) *medium.Medium {
	return medium.New(sched, s.Params, s.Model, s.Pos, rng)
}

// Testbed runs the isolation measurement pass over the scenario and
// returns a Testbed exposing the §5.1 link definitions and the Figure 11
// topology pickers on this layout. The pass costs O(n²) model
// evaluations plus O(n²) floats of RSS/PRR storage.
func (s *Scenario) Testbed() *Testbed {
	tb := &Testbed{
		N:      len(s.Pos),
		Bounds: s.Bounds,
		Pos:    append([]geo.Point(nil), s.Pos...),
		Params: s.Params,
		Model:  s.Model,
	}
	tb.measure()
	return tb
}

// GridCity generates a city of blocksX×blocksY square blocks of blockM
// metres with perBlock nodes scattered inside each block (buildings off
// the street grid). The radio environment is the outdoor urban model, so
// at realistic block sizes only a neighbourhood of blocks is audible —
// the regime where the sparse medium construction pays off.
func GridCity(blocksX, blocksY, perBlock int, blockM float64, seed uint64) *Scenario {
	rng := sim.NewRNG(seed).Stream(0xc179)
	bounds := geo.Rect{MinX: 0, MinY: 0, MaxX: float64(blocksX) * blockM, MaxY: float64(blocksY) * blockM}
	pos := make([]geo.Point, 0, blocksX*blocksY*perBlock)
	// A street margin keeps nodes off block edges so blocks read as
	// clusters rather than a uniform wash.
	margin := 0.1 * blockM
	for by := 0; by < blocksY; by++ {
		for bx := 0; bx < blocksX; bx++ {
			x0 := float64(bx)*blockM + margin
			y0 := float64(by)*blockM + margin
			span := blockM - 2*margin
			for k := 0; k < perBlock; k++ {
				pos = append(pos, geo.Point{
					X: x0 + rng.Float64()*span,
					Y: y0 + rng.Float64()*span,
				})
			}
		}
	}
	return &Scenario{
		Name:   fmt.Sprintf("gridcity-%dx%dx%d", blocksX, blocksY, perBlock),
		Bounds: bounds,
		Pos:    pos,
		Params: phy.DefaultParams(),
		Model:  radio.DefaultUrban5GHz(seed),
		// Dense blocks separated by streets are exposed-terminal country:
		// the conflict-map arm is the interesting comparison to stock DCF.
		Arms: []string{"cmap", "csma"},
	}
}

// ClusteredAPs generates cells access-point cells dropped uniformly in a
// square of sideM metres: each cell is one AP with clients client nodes
// uniform in a disk of cellRadiusM around it. Node order is AP first,
// then its clients, cell by cell; Scenario.APs lists the AP indices.
func ClusteredAPs(cells, clients int, sideM, cellRadiusM float64, seed uint64) *Scenario {
	rng := sim.NewRNG(seed).Stream(0xa95)
	s := &Scenario{
		Name:   fmt.Sprintf("clusters-%dx%d", cells, clients),
		Bounds: geo.Rect{MinX: 0, MinY: 0, MaxX: sideM, MaxY: sideM},
		Params: phy.DefaultParams(),
		Model:  radio.DefaultIndoor5GHz(seed),
		// Infrastructure cells hide clients from each other behind the
		// AP, so stock DCF versus the RTS/CTS handshake is the natural
		// pairing here.
		Arms: []string{"csma", "rtscts"},
	}
	inset := math.Min(cellRadiusM, sideM/2)
	for c := 0; c < cells; c++ {
		center := geo.Point{
			X: inset + rng.Float64()*(sideM-2*inset),
			Y: inset + rng.Float64()*(sideM-2*inset),
		}
		s.APs = append(s.APs, len(s.Pos))
		s.Pos = append(s.Pos, center)
		for k := 0; k < clients; k++ {
			r := cellRadiusM * math.Sqrt(rng.Float64())
			th := 2 * math.Pi * rng.Float64()
			s.Pos = append(s.Pos, center.Add(r*math.Cos(th), r*math.Sin(th)))
		}
	}
	return s
}

// Highway generates a vehicular strip: lanes lanes of lengthM metres,
// laneGapM apart, with n vehicles scattered along them. Its suggested
// mobility is the vehicular lane-flow model at speedMps (drivers apply
// it when the user leaves -mobility empty), making it the stock mobile
// counterpart of the static layouts: geometry churns continuously as
// traffic streams past in both directions.
func Highway(n, lanes int, lengthM, laneGapM, speedMps float64, seed uint64) *Scenario {
	if lanes < 1 {
		lanes = 1
	}
	rng := sim.NewRNG(seed).Stream(0x416a)
	height := laneGapM * float64(lanes+1)
	s := &Scenario{
		Name:   fmt.Sprintf("highway-%dx%d", n, lanes),
		Bounds: geo.Rect{MinX: 0, MinY: 0, MaxX: lengthM, MaxY: height},
		Params: phy.DefaultParams(),
		Model:  radio.DefaultUrban5GHz(seed),
		// Streams of vehicles passing each other are exposed-terminal
		// country in motion: conflict maps versus plain carrier sense is
		// the comparison the layout exists for.
		Arms: []string{"cmap", "csma"},
		Mobility: mobility.Spec{
			Kind:     mobility.Vehicular,
			SpeedMps: speedMps,
			DecorrM:  10,
		},
	}
	for i := 0; i < n; i++ {
		lane := int(rng.Uint64() % uint64(lanes))
		s.Pos = append(s.Pos, geo.Point{
			X: rng.Float64() * lengthM,
			Y: laneGapM * float64(lane+1),
		})
	}
	return s
}

// UniformDisk generates n nodes uniform over a disk sized so the node
// density is densityPerKm2 nodes per square kilometre — the layout of
// the large-network CSMA literature. At fixed density the audible
// neighbourhood is constant, so medium construction and Transmit cost
// stay O(n·k) as n grows.
func UniformDisk(n int, densityPerKm2 float64, seed uint64) *Scenario {
	if densityPerKm2 <= 0 {
		densityPerKm2 = 1000
	}
	rng := sim.NewRNG(seed).Stream(0xd15c)
	radiusM := 1000 * math.Sqrt(float64(n)/densityPerKm2/math.Pi)
	s := &Scenario{
		Name:   fmt.Sprintf("disk-%d@%.0f", n, densityPerKm2),
		Bounds: geo.Rect{MinX: 0, MinY: 0, MaxX: 2 * radiusM, MaxY: 2 * radiusM},
		Params: phy.DefaultParams(),
		Model:  radio.DefaultUrban5GHz(seed),
	}
	for i := 0; i < n; i++ {
		r := radiusM * math.Sqrt(rng.Float64())
		th := 2 * math.Pi * rng.Float64()
		s.Pos = append(s.Pos, geo.Point{
			X: radiusM + r*math.Cos(th),
			Y: radiusM + r*math.Sin(th),
		})
	}
	return s
}
