package topo

import (
	"testing"

	"repro/internal/sim"
)

func testbed(t *testing.T) *Testbed {
	t.Helper()
	return NewTestbed(50, 1)
}

func TestCensusMatchesPaper(t *testing.T) {
	// §5.1: of the node pairs with any connectivity, ≈68% have PRR < 0.1,
	// ≈12% in (0.1, 1), ≈20% PRR = 1; mean degree ≈15, median ≈17 over the
	// usable links. The generated testbed must land in the same regime.
	for seed := uint64(1); seed <= 3; seed++ {
		tb := NewTestbed(50, seed)
		c := tb.Census()
		if c.ConnectedPairs < 1200 || c.ConnectedPairs > 2450 {
			t.Errorf("seed %d: %d connected pairs, want ≈1800–2200", seed, c.ConnectedPairs)
		}
		if c.FracLow < 0.5 || c.FracLow > 0.8 {
			t.Errorf("seed %d: low-PRR fraction = %.2f, want ≈0.68", seed, c.FracLow)
		}
		if c.FracMid < 0.04 || c.FracMid > 0.25 {
			t.Errorf("seed %d: mid-PRR fraction = %.2f, want ≈0.12", seed, c.FracMid)
		}
		if c.FracFull < 0.1 || c.FracFull > 0.35 {
			t.Errorf("seed %d: full-PRR fraction = %.2f, want ≈0.20", seed, c.FracFull)
		}
		if c.MeanDegree < 8 || c.MeanDegree > 22 {
			t.Errorf("seed %d: mean degree = %.1f, want ≈15", seed, c.MeanDegree)
		}
	}
}

func TestTestbedDeterministic(t *testing.T) {
	a := NewTestbed(50, 7)
	b := NewTestbed(50, 7)
	for i := 0; i < a.N; i++ {
		if a.Pos[i] != b.Pos[i] {
			t.Fatal("same-seed testbeds placed nodes differently")
		}
	}
	if a.RSS[3][9] != b.RSS[3][9] || a.PRR[3][9] != b.PRR[3][9] {
		t.Error("same-seed testbeds measured links differently")
	}
	c := NewTestbed(50, 8)
	if a.RSS[3][9] == c.RSS[3][9] {
		t.Error("different seeds produced identical channels (suspicious)")
	}
}

func TestLinkDefinitions(t *testing.T) {
	tb := testbed(t)
	potential, inRange := 0, 0
	for a := 0; a < tb.N; a++ {
		for b := 0; b < tb.N; b++ {
			if tb.PotentialLink(a, b) {
				potential++
				if !tb.InRange(a, b) {
					t.Fatalf("potential link (%d,%d) not in-range; definitions inconsistent", a, b)
				}
				if tb.PRR[a][b] <= 0.9 || tb.PRR[b][a] <= 0.9 {
					t.Fatalf("potential link (%d,%d) with PRR %.2f/%.2f", a, b, tb.PRR[a][b], tb.PRR[b][a])
				}
			}
			if tb.InRange(a, b) {
				inRange++
			}
		}
	}
	if potential == 0 {
		t.Fatal("testbed has no potential transmission links")
	}
	if inRange < potential {
		t.Error("in-range links fewer than potential links")
	}
	if tb.InRange(3, 3) || tb.PotentialLink(3, 3) {
		t.Error("self links must be excluded")
	}
	if tb.SignalP10() >= tb.SignalP90() {
		t.Error("signal percentiles inverted")
	}
}

func TestExposedPairsSatisfyConstraints(t *testing.T) {
	tb := testbed(t)
	rng := sim.NewRNG(5)
	pairs := tb.ExposedPairs(rng, 50)
	if len(pairs) < 20 {
		t.Fatalf("found only %d exposed pairs, want ≥20", len(pairs))
	}
	for _, p := range pairs {
		if !distinct(p.A.Src, p.A.Dst, p.B.Src, p.B.Dst) {
			t.Fatal("pair reuses a node")
		}
		if !tb.InRange(p.A.Src, p.B.Src) {
			t.Error("senders not in range of each other (§5.2 constraint i)")
		}
		if !tb.PotentialLink(p.A.Src, p.A.Dst) || !tb.PotentialLink(p.B.Src, p.B.Dst) {
			t.Error("sender-receiver pair not a potential transmission link (constraint ii)")
		}
		if !tb.StrongSignal(p.A.Src, p.A.Dst) || !tb.StrongSignal(p.B.Src, p.B.Dst) {
			t.Error("sender→receiver signal not in top decile (constraint iii)")
		}
		for _, x := range [][2]int{{p.A.Src, p.B.Dst}, {p.B.Src, p.A.Dst}, {p.A.Dst, p.B.Dst}, {p.A.Src, p.B.Src}} {
			if tb.StrongSignal(x[0], x[1]) || tb.StrongSignal(x[1], x[0]) {
				t.Error("cross pair has top-decile signal (constraint iv)")
			}
		}
	}
}

func TestInRangePairsSatisfyConstraints(t *testing.T) {
	tb := testbed(t)
	pairs := tb.InRangePairs(sim.NewRNG(6), 50)
	if len(pairs) != 50 {
		t.Fatalf("found %d in-range pairs, want 50", len(pairs))
	}
	for _, p := range pairs {
		if !tb.InRange(p.A.Src, p.B.Src) {
			t.Error("senders not in range")
		}
		if !tb.PotentialLink(p.A.Src, p.A.Dst) || !tb.PotentialLink(p.B.Src, p.B.Dst) {
			t.Error("links not potential transmission links")
		}
	}
}

func TestHiddenPairsSatisfyConstraints(t *testing.T) {
	tb := testbed(t)
	pairs := tb.HiddenPairs(sim.NewRNG(7), 50)
	if len(pairs) < 20 {
		t.Fatalf("found only %d hidden pairs", len(pairs))
	}
	for _, p := range pairs {
		if tb.InRange(p.A.Src, p.B.Src) {
			t.Error("hidden senders are in range")
		}
		if !tb.PotentialLink(p.A.Src, p.B.Dst) || !tb.PotentialLink(p.B.Src, p.A.Dst) {
			t.Error("receivers lack potential links to both senders (§5.5)")
		}
	}
}

func TestHiddenInterfererTriples(t *testing.T) {
	tb := testbed(t)
	triples := tb.HiddenInterfererTriples(sim.NewRNG(8), 500)
	if len(triples) != 500 {
		t.Fatalf("got %d triples, want 500", len(triples))
	}
	for _, tr := range triples {
		if !tb.PotentialLink(tr.Src, tr.Dst) {
			t.Error("triple S→R not a potential link")
		}
		if tr.Interferer == tr.Src || tr.Interferer == tr.Dst {
			t.Error("interferer coincides with S or R")
		}
	}
}

func TestAPRegions(t *testing.T) {
	tb := testbed(t)
	cells := tb.APRegions()
	if len(cells) < 4 {
		t.Fatalf("only %d AP cells, want ≥4 of 6", len(cells))
	}
	for i, c := range cells {
		if len(c.Clients) == 0 {
			t.Errorf("cell %d has no clients", i)
		}
		for _, cl := range c.Clients {
			if !tb.PotentialLink(c.AP, cl) {
				t.Errorf("client %d lacks potential link to AP %d", cl, c.AP)
			}
		}
		for j := i + 1; j < len(cells); j++ {
			if tb.InRange(c.AP, cells[j].AP) {
				t.Errorf("APs %d and %d are in range of each other (§5.6 forbids)", c.AP, cells[j].AP)
			}
		}
	}
}

func TestMeshTopologies(t *testing.T) {
	tb := testbed(t)
	meshes := tb.MeshTopologies(sim.NewRNG(9), 10, 3)
	if len(meshes) < 5 {
		t.Fatalf("found only %d meshes", len(meshes))
	}
	for _, m := range meshes {
		if len(m.Relays) != 3 || len(m.Leaves) != 3 {
			t.Fatal("mesh shape wrong")
		}
		all := append([]int{m.Source}, append(append([]int{}, m.Relays...), m.Leaves...)...)
		if !distinct(all...) {
			t.Error("mesh reuses nodes")
		}
		for i, a := range m.Relays {
			if !tb.PotentialLink(m.Source, a) {
				t.Error("S→relay not potential")
			}
			if !tb.PotentialLink(a, m.Leaves[i]) {
				t.Error("relay→leaf not potential")
			}
			if tb.PotentialLink(m.Source, m.Leaves[i]) {
				t.Error("leaf directly reachable from source; not a two-hop topology")
			}
		}
	}
}

func TestBuildMediumMatchesMeasurement(t *testing.T) {
	tb := testbed(t)
	sched := sim.NewScheduler()
	m := tb.Build(sched, sim.NewRNG(3))
	if m.NodeCount() != 50 {
		t.Fatalf("medium has %d nodes", m.NodeCount())
	}
	// The medium's channel must agree with the testbed's measurement pass.
	for a := 0; a < 5; a++ {
		for b := 45; b < 50; b++ {
			got := m.RxPowerDBm(a, b)
			want := tb.RSS[a][b]
			if want < tb.Params.DeliveryFloorDBm {
				continue
			}
			if diff := got - want; diff < -1e-9 || diff > 1e-9 {
				t.Fatalf("RxPower(%d,%d) = %v, testbed says %v", a, b, got, want)
			}
		}
	}
}
