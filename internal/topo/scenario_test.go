package topo

import (
	"testing"

	"repro/internal/sim"
)

func TestGridCityLayout(t *testing.T) {
	s := GridCity(4, 3, 5, 400, 1)
	if s.N() != 4*3*5 {
		t.Fatalf("N = %d, want %d", s.N(), 4*3*5)
	}
	if s.Bounds.Width() != 1600 || s.Bounds.Height() != 1200 {
		t.Fatalf("bounds %v, want 1600×1200", s.Bounds)
	}
	for i, p := range s.Pos {
		if !s.Bounds.Contains(p) {
			t.Fatalf("node %d at %v outside the city", i, p)
		}
	}
	// Determinism: same seed, same layout.
	again := GridCity(4, 3, 5, 400, 1)
	for i := range s.Pos {
		if s.Pos[i] != again.Pos[i] {
			t.Fatalf("GridCity not deterministic at node %d", i)
		}
	}
	if other := GridCity(4, 3, 5, 400, 2); other.Pos[0] == s.Pos[0] {
		t.Fatal("different seeds produced the same layout")
	}
}

func TestClusteredAPsLayout(t *testing.T) {
	const cells, clients = 6, 8
	s := ClusteredAPs(cells, clients, 2000, 40, 3)
	if s.N() != cells*(clients+1) {
		t.Fatalf("N = %d, want %d", s.N(), cells*(clients+1))
	}
	if len(s.APs) != cells {
		t.Fatalf("%d APs, want %d", len(s.APs), cells)
	}
	for c, ap := range s.APs {
		if ap != c*(clients+1) {
			t.Fatalf("AP %d at index %d, want %d", c, ap, c*(clients+1))
		}
		for k := 1; k <= clients; k++ {
			if d := s.Pos[ap].Dist(s.Pos[ap+k]); d > 40.0001 {
				t.Fatalf("cell %d client %d is %.1f m from its AP, want ≤40", c, k, d)
			}
		}
	}
	for i, p := range s.Pos {
		if !s.Bounds.Contains(p) {
			t.Fatalf("node %d at %v outside the area", i, p)
		}
	}
}

func TestUniformDiskDensity(t *testing.T) {
	const n, density = 500, 800.0
	s := UniformDisk(n, density, 5)
	if s.N() != n {
		t.Fatalf("N = %d, want %d", s.N(), n)
	}
	// All nodes inside the disk inscribed in Bounds.
	c := s.Bounds.Center()
	radius := s.Bounds.Width() / 2
	for i, p := range s.Pos {
		if p.Dist(c) > radius*1.0001 {
			t.Fatalf("node %d at %v outside the disk of radius %.1f", i, p, radius)
		}
	}
	// Realised density is the requested one by construction: area πr²
	// holds n nodes.
	areaKm2 := 3.14159265 * radius * radius / 1e6
	got := float64(n) / areaKm2
	if got < density*0.99 || got > density*1.01 {
		t.Fatalf("realised density %.1f nodes/km², want ≈%.1f", got, density)
	}
}

func TestScenarioBuildIsSparseAtScale(t *testing.T) {
	s := UniformDisk(600, 1000, 2)
	m := s.Build(sim.NewScheduler(), sim.NewRNG(9))
	if !m.GridBacked() {
		t.Fatal("disk scenario medium not grid backed")
	}
	total := 0
	for i := 0; i < s.N(); i++ {
		total += m.NeighborCount(i)
	}
	if total == 0 {
		t.Fatal("no audible links in the disk scenario")
	}
	if n := s.N(); total >= n*(n-1)/2 {
		t.Fatalf("delivery lists hold %d of %d ordered pairs — not sparse", total, n*(n-1))
	}
}

func TestScenarioTestbedRunsMeasurementPass(t *testing.T) {
	// A small clustered layout converts to a Testbed whose link
	// definitions behave: links inside a cell are strong, APs of distant
	// cells disconnected, and the census sees every ordered pair.
	s := ClusteredAPs(4, 6, 1500, 25, 11)
	tb := s.Testbed()
	if tb.N != s.N() {
		t.Fatalf("testbed N = %d, want %d", tb.N, s.N())
	}
	c := tb.Census()
	if c.ConnectedPairs == 0 {
		t.Fatal("census found no connected pairs")
	}
	strong := 0
	for _, ap := range s.APs {
		for k := 1; k <= 6; k++ {
			if tb.PRR[ap][ap+k] > 0.9 {
				strong++
			}
		}
	}
	if strong < 12 {
		t.Fatalf("only %d of 24 in-cell AP→client links are strong", strong)
	}
}
