package topo

import (
	"sort"

	"repro/internal/geo"
	"repro/internal/medium"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/stats"
)

// DataWireBytes is the wire size of the 1400-byte data packets used for
// all link measurements, matching the experiments.
const DataWireBytes = 1433

// Testbed is a reproducible node layout plus its channel realisation.
// Building a medium from it any number of times yields the identical
// radio environment, so protocol arms compare on equal footing.
type Testbed struct {
	N      int
	Bounds geo.Rect
	Pos    []geo.Point
	Params phy.Params
	Model  radio.Model

	// DenseMedium makes Build use the reference O(n²) medium
	// construction instead of the grid-pruned sparse one. The two are
	// bit-identical (the equivalence tests prove it); the switch exists
	// so those tests can run both arms through the same experiment code.
	DenseMedium bool

	// RSS[a][b] is the isolation received power at b from a in dBm;
	// PRR[a][b] the analytic isolation packet reception ratio for
	// 1400-byte data frames at 6 Mb/s (§5.1's measurement pass).
	RSS [][]float64
	PRR [][]float64

	// rssP10 and rssP90 are the network-wide signal-strength percentiles
	// over connected links, used by the §5.1 link definitions.
	rssP10, rssP90 float64
}

// DefaultBounds is the floor plan of the generated testbed: one office
// floor, metres.
var DefaultBounds = geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 40}

// NewTestbed generates an n-node testbed with the given seed. Layout
// mimics the paper's floor plan (Figure 10): offices on a jittered grid
// with two nodes sharing most rooms a few metres apart, so the network
// has both very strong same-room links and a long tail of weak
// cross-floor links. The channel is log-distance with deterministic
// per-link shadowing; PHY parameters and floor size are calibrated so
// the link census matches §5.1.
func NewTestbed(n int, seed uint64) *Testbed {
	rng := sim.NewRNG(seed)
	layoutRNG := rng.Stream(1)
	// Rooms hold 2–4 nodes each (Figure 10 shows such clusters).
	var roomOf []int
	room := 0
	for len(roomOf) < n {
		k := 2 + layoutRNG.Intn(3)
		for j := 0; j < k && len(roomOf) < n; j++ {
			roomOf = append(roomOf, room)
		}
		room++
	}
	centers := geo.GridLayout(room, DefaultBounds, 0.4, layoutRNG.Float64)
	pos := make([]geo.Point, 0, n)
	for i := 0; i < n; i++ {
		c := centers[roomOf[i]]
		dx := (layoutRNG.Float64()*2 - 1) * 2.0
		dy := (layoutRNG.Float64()*2 - 1) * 2.0
		p := c.Add(dx, dy)
		if !DefaultBounds.Contains(p) {
			p = c
		}
		pos = append(pos, p)
	}
	tb := &Testbed{
		N:      n,
		Bounds: DefaultBounds,
		Pos:    pos,
		Params: phy.DefaultParams(),
		Model:  radio.DefaultIndoor5GHz(seed),
	}
	tb.measure()
	return tb
}

// measure runs the isolation measurement pass: RSS and PRR for every
// ordered pair, then the network-wide signal percentiles.
func (tb *Testbed) measure() {
	n := tb.N
	tb.RSS = make([][]float64, n)
	tb.PRR = make([][]float64, n)
	rate := phy.RateByID(phy.Rate6Mbps)
	// Signal-strength percentiles are computed over links that actually
	// deliver packets: RSS is measured from received frames, so a link
	// with PRR = 0 contributes no signal-strength sample.
	var measurable []float64
	for a := 0; a < n; a++ {
		tb.RSS[a] = make([]float64, n)
		tb.PRR[a] = make([]float64, n)
		for b := 0; b < n; b++ {
			if a == b {
				tb.RSS[a][b] = -1000
				continue
			}
			loss := tb.Model.Loss(a, tb.Pos[a], b, tb.Pos[b])
			rss := tb.Params.TxPowerDBm - loss
			tb.RSS[a][b] = rss
			tb.PRR[a][b] = phy.IsolationPRR(tb.Params, rate, rss, DataWireBytes)
			if tb.PRR[a][b] > 0 {
				measurable = append(measurable, rss)
			}
		}
	}
	sort.Float64s(measurable)
	if len(measurable) > 0 {
		tb.rssP10 = measurable[len(measurable)/10]
		tb.rssP90 = measurable[len(measurable)*9/10]
	}
}

// Build constructs a fresh medium over this testbed on the given
// scheduler. Decode randomness comes from rng; the channel itself is part
// of the testbed and identical across builds.
func (tb *Testbed) Build(sched *sim.Scheduler, rng *sim.RNG) *medium.Medium {
	return tb.BuildWith(sched, rng, tb.Model)
}

// BuildWith is Build with an explicit channel model in place of
// tb.Model — the hook mobile runs use to interpose the shadowing
// re-draw wrapper (mobility.Channel) around the testbed's model. The
// DenseMedium switch is honoured the same way.
func (tb *Testbed) BuildWith(sched *sim.Scheduler, rng *sim.RNG, model radio.Model) *medium.Medium {
	if tb.DenseMedium {
		return medium.NewDense(sched, tb.Params, model, tb.Pos, rng)
	}
	return medium.New(sched, tb.Params, model, tb.Pos, rng)
}

// SignalP10 returns the network-wide 10th-percentile signal strength.
func (tb *Testbed) SignalP10() float64 { return tb.rssP10 }

// SignalP90 returns the network-wide 90th-percentile signal strength.
func (tb *Testbed) SignalP90() float64 { return tb.rssP90 }

// Connected reports whether a can be heard at b at all.
func (tb *Testbed) Connected(a, b int) bool {
	return a != b && tb.RSS[a][b] >= tb.Params.DeliveryFloorDBm
}

// InRange implements §5.1: both directions have PRR above 0.2 and signal
// above the network-wide 10th percentile.
func (tb *Testbed) InRange(a, b int) bool {
	if a == b {
		return false
	}
	return tb.PRR[a][b] > 0.2 && tb.PRR[b][a] > 0.2 &&
		tb.RSS[a][b] >= tb.rssP10 && tb.RSS[b][a] >= tb.rssP10
}

// PotentialLink implements §5.1's "potential transmission link": both
// directions have PRR above 0.9 and signal above the 10th percentile —
// the links a routing protocol would actually use.
func (tb *Testbed) PotentialLink(a, b int) bool {
	if a == b {
		return false
	}
	return tb.PRR[a][b] > 0.9 && tb.PRR[b][a] > 0.9 &&
		tb.RSS[a][b] >= tb.rssP10 && tb.RSS[b][a] >= tb.rssP10
}

// StrongSignal reports whether a→b sits in the top decile of
// network-wide signal strengths (§5.2 constraint iii).
func (tb *Testbed) StrongSignal(a, b int) bool { return tb.RSS[a][b] >= tb.rssP90 }

// Census summarises the link population the way §5.1 reports it.
type Census struct {
	ConnectedPairs int     // ordered pairs with any connectivity
	FracLow        float64 // PRR < 0.1
	FracMid        float64 // 0.1 ≤ PRR < 1
	FracFull       float64 // PRR ≈ 1
	MeanDegree     float64 // neighbours with PRR ≥ 0.1 (mid+full links)
	MedianDegree   float64
}

// Census computes the link census over ordered connected pairs.
func (tb *Testbed) Census() Census {
	var c Census
	degree := make([]int, tb.N)
	for a := 0; a < tb.N; a++ {
		for b := 0; b < tb.N; b++ {
			if !tb.Connected(a, b) {
				continue
			}
			c.ConnectedPairs++
			switch prr := tb.PRR[a][b]; {
			case prr < 0.1:
				c.FracLow++
			case prr < 0.999:
				c.FracMid++
				degree[a]++
			default:
				c.FracFull++
				degree[a]++
			}
		}
	}
	if c.ConnectedPairs > 0 {
		t := float64(c.ConnectedPairs)
		c.FracLow /= t
		c.FracMid /= t
		c.FracFull /= t
	}
	var d stats.Dist
	sum := 0
	for _, deg := range degree {
		d.Add(float64(deg))
		sum += deg
	}
	c.MeanDegree = float64(sum) / float64(tb.N)
	c.MedianDegree = d.Median()
	return c
}

// Link is a directed sender→receiver pair.
type Link struct{ Src, Dst int }

// LinkPair is one two-flow experiment topology.
type LinkPair struct{ A, B Link }

// Nodes returns the four endpoints.
func (p LinkPair) Nodes() []int { return []int{p.A.Src, p.A.Dst, p.B.Src, p.B.Dst} }

// distinct reports whether all ids differ.
func distinct(ids ...int) bool {
	seen := map[int]bool{}
	for _, id := range ids {
		if seen[id] {
			return false
		}
		seen[id] = true
	}
	return true
}

// potentialLinks enumerates all ordered potential transmission links.
func (tb *Testbed) potentialLinks() []Link {
	var out []Link
	for a := 0; a < tb.N; a++ {
		for b := 0; b < tb.N; b++ {
			if tb.PotentialLink(a, b) {
				out = append(out, Link{a, b})
			}
		}
	}
	return out
}

// samplePairs draws up to count link pairs accepted by ok, rejecting
// duplicates, with a bounded number of attempts.
func (tb *Testbed) samplePairs(rng *sim.RNG, count int, ok func(a, b Link) bool) []LinkPair {
	links := tb.potentialLinks()
	if len(links) < 2 {
		return nil
	}
	seen := map[[4]int]bool{}
	var out []LinkPair
	for attempts := 0; attempts < count*4000 && len(out) < count; attempts++ {
		a := links[rng.Intn(len(links))]
		b := links[rng.Intn(len(links))]
		if !distinct(a.Src, a.Dst, b.Src, b.Dst) || !ok(a, b) {
			continue
		}
		key := [4]int{a.Src, a.Dst, b.Src, b.Dst}
		rkey := [4]int{b.Src, b.Dst, a.Src, a.Dst}
		if seen[key] || seen[rkey] {
			continue
		}
		seen[key] = true
		out = append(out, LinkPair{A: a, B: b})
	}
	return out
}

// ExposedPairs draws link pairs under the §5.2 constraints (Fig. 11a):
// senders in range of each other; each sender→receiver link a potential
// transmission link with top-decile signal; every other pairing weak
// (below the 90th percentile).
func (tb *Testbed) ExposedPairs(rng *sim.RNG, count int) []LinkPair {
	weak := func(x, y int) bool {
		return !tb.StrongSignal(x, y) && !tb.StrongSignal(y, x)
	}
	return tb.samplePairs(rng, count, func(a, b Link) bool {
		if !tb.InRange(a.Src, b.Src) {
			return false
		}
		if !tb.StrongSignal(a.Src, a.Dst) || !tb.StrongSignal(b.Src, b.Dst) {
			return false
		}
		return weak(a.Src, b.Src) && weak(a.Src, b.Dst) && weak(a.Dst, b.Src) && weak(a.Dst, b.Dst)
	})
}

// InRangePairs draws link pairs under the §5.3 constraints (Fig. 11b):
// senders in range of each other, both links potential transmission
// links, no signal-strength constraints.
func (tb *Testbed) InRangePairs(rng *sim.RNG, count int) []LinkPair {
	return tb.samplePairs(rng, count, func(a, b Link) bool {
		return tb.InRange(a.Src, b.Src)
	})
}

// HiddenPairs draws link pairs under the §5.5 constraints (Fig. 11c):
// each receiver has a potential transmission link to BOTH senders (so
// concurrent transmissions interfere at both receivers), while the
// senders are out of range of each other.
func (tb *Testbed) HiddenPairs(rng *sim.RNG, count int) []LinkPair {
	return tb.samplePairs(rng, count, func(a, b Link) bool {
		if tb.InRange(a.Src, b.Src) {
			return false
		}
		return tb.PotentialLink(a.Src, b.Dst) && tb.PotentialLink(b.Src, a.Dst)
	})
}

// Triple is one hidden-interferer measurement unit (§5.4): a
// sender→receiver potential link plus a random interferer.
type Triple struct {
	Src, Dst, Interferer int
}

// HiddenInterfererTriples draws (S, R, I) triples: S→R a potential
// transmission link, I uniform over all other nodes.
func (tb *Testbed) HiddenInterfererTriples(rng *sim.RNG, count int) []Triple {
	links := tb.potentialLinks()
	if len(links) == 0 || tb.N < 3 {
		return nil
	}
	var out []Triple
	for attempts := 0; attempts < count*100 && len(out) < count; attempts++ {
		l := links[rng.Intn(len(links))]
		i := rng.Intn(tb.N)
		if i == l.Src || i == l.Dst {
			continue
		}
		out = append(out, Triple{Src: l.Src, Dst: l.Dst, Interferer: i})
	}
	return out
}

// APCell is one access point with its clients.
type APCell struct {
	AP      int
	Clients []int
}

// APRegions partitions the floor into six vertical regions (§5.6),
// designates one node per region as the AP such that no two APs are in
// communication range, and lists each AP's potential-link clients within
// its region.
func (tb *Testbed) APRegions() []APCell {
	regions := tb.Bounds.SplitX(6)
	cells := make([]APCell, 0, 6)
	chosen := []int{}
	for _, r := range regions {
		best, bestDist := -1, 0.0
		center := r.Center()
		for i := 0; i < tb.N; i++ {
			if !r.Contains(tb.Pos[i]) {
				continue
			}
			ok := true
			for _, ap := range chosen {
				if tb.InRange(i, ap) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			d := tb.Pos[i].Dist(center)
			if best == -1 || d < bestDist {
				best, bestDist = i, d
			}
		}
		if best == -1 {
			continue
		}
		chosen = append(chosen, best)
		cell := APCell{AP: best}
		for i := 0; i < tb.N; i++ {
			if i != best && r.Contains(tb.Pos[i]) && tb.PotentialLink(best, i) {
				cell.Clients = append(cell.Clients, i)
			}
		}
		if len(cell.Clients) > 0 {
			cells = append(cells, cell)
		}
	}
	return cells
}

// Mesh is one §5.7 content-dissemination topology: a source S, relays
// A1..Ak with potential links from S, and leaves B1..Bk with potential
// links from the matching relay.
type Mesh struct {
	Source int
	Relays []int
	Leaves []int
}

// MeshTopologies draws count two-hop dissemination meshes with k relays
// each (Fig. 11d).
func (tb *Testbed) MeshTopologies(rng *sim.RNG, count, k int) []Mesh {
	var out []Mesh
	for attempts := 0; attempts < count*2000 && len(out) < count; attempts++ {
		s := rng.Intn(tb.N)
		var relays []int
		perm := rng.Perm(tb.N)
		for _, a := range perm {
			if a == s || !tb.PotentialLink(s, a) {
				continue
			}
			// Relays cluster around the source and hear one another —
			// the exposed-terminal setting of §5.7 (a CSMA relay defers
			// to its siblings; a CMAP relay need not).
			ok := true
			for _, prev := range relays {
				if !tb.InRange(a, prev) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			relays = append(relays, a)
			if len(relays) == k {
				break
			}
		}
		if len(relays) < k {
			continue
		}
		used := map[int]bool{s: true}
		for _, a := range relays {
			used[a] = true
		}
		leaves := make([]int, 0, k)
		okAll := true
		for _, a := range relays {
			// Pick the strongest qualifying leaf link, as a routing
			// protocol choosing forwarders would (§5.1).
			found := -1
			for b := 0; b < tb.N; b++ {
				if used[b] || !tb.PotentialLink(a, b) || tb.PotentialLink(s, b) {
					continue
				}
				// Figure 11(d): each leaf hangs off its own relay, away
				// from the cluster — the other relays must not reach it,
				// which is what makes the forwarding phase exposed.
				clear := true
				for _, a2 := range relays {
					if a2 != a && tb.InRange(a2, b) {
						clear = false
						break
					}
				}
				if clear && (found == -1 || tb.RSS[a][b] > tb.RSS[a][found]) {
					found = b
				}
			}
			if found == -1 {
				okAll = false
				break
			}
			used[found] = true
			leaves = append(leaves, found)
		}
		if !okAll {
			continue
		}
		out = append(out, Mesh{Source: s, Relays: relays, Leaves: leaves})
	}
	return out
}
