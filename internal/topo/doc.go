// Package topo generates the simulated counterpart of the paper's
// 50-node indoor office testbed and the topology classes its
// evaluation samples, plus large-scale scenario generators beyond the
// paper.
//
// # Relation to the paper
//
// NewTestbed reproduces §5.1: a calibrated office-floor layout whose
// link census (connected pairs, PRR buckets, degree) matches the
// numbers the paper reports, measured with the same methodology —
// isolation PRR and signal-strength passes, the "in-range" and
// "potential transmission link" definitions. The pair/triple pickers
// implement the topology constraints of Figure 11: ExposedPairs (§5.2),
// InRangePairs (§5.3), HiddenInterfererTriples (§5.4), HiddenPairs
// (§5.5), APRegions (§5.6) and MeshTopologies (§5.7).
//
// # Beyond the paper
//
// Scenario is the scaling counterpart of Testbed: a named layout
// (GridCity, ClusteredAPs, UniformDisk) carrying positions and the
// radio environment but no O(n²) link measurements, so generators reach
// thousands of nodes; Scenario.Testbed() runs the measurement pass on
// demand, and Scenario.Traffic suggests a default workload for drivers.
package topo
