package stats_test

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// ExampleJain scores two load allocations: carrier sense serialising an
// exposed pair starves one flow, while concurrent transmission shares
// the channel evenly.
func ExampleJain() {
	serialised := []float64{4.8, 0.4} // one flow wins the channel
	concurrent := []float64{4.6, 4.5} // both flows transmit together
	fmt.Printf("serialised: %.2f\n", stats.Jain(serialised))
	fmt.Printf("concurrent: %.2f\n", stats.Jain(concurrent))
	// Output:
	// serialised: 0.58
	// concurrent: 1.00
}

// ExampleLatency shows warm-up truncation: deliveries before the
// measurement window never enter the percentiles, mirroring how the
// paper measures goodput over the tail of each run.
func ExampleLatency() {
	l := stats.Latency{W: stats.Window{Start: 2 * sim.Second, End: 10 * sim.Second}}
	l.Record(1*sim.Second, 900*sim.Millisecond) // cold-start outlier: truncated
	for i := sim.Time(0); i < 20; i++ {
		l.Record(3*sim.Second+i*sim.Millisecond, (1+i%5)*sim.Millisecond)
	}
	fmt.Printf("n=%d p50=%.0fms p95=%.2fms\n", l.N(), l.P50(), l.P95())
	// Output:
	// n=20 p50=3ms p95=5.00ms
}
