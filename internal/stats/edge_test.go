package stats

import (
	"testing"

	"repro/internal/sim"
)

// TestJainEdgeCases pins the fairness index on degenerate inputs: no
// flows and all-zero flows report 0 (there is no allocation to be fair
// about), a single flow and any all-equal allocation are perfectly fair,
// and a zero-sum allocation collapses to 0 rather than dividing by zero.
func TestJainEdgeCases(t *testing.T) {
	if got := Jain(nil); got != 0 {
		t.Fatalf("Jain(nil) = %v, want 0", got)
	}
	if got := Jain([]float64{}); got != 0 {
		t.Fatalf("Jain(empty) = %v, want 0", got)
	}
	if got := Jain([]float64{0, 0, 0}); got != 0 {
		t.Fatalf("Jain(all zero) = %v, want 0", got)
	}
	if got := Jain([]float64{3.7}); got != 1 {
		t.Fatalf("Jain(single) = %v, want 1", got)
	}
	for _, n := range []int{2, 5, 50} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 2.5
		}
		if got := Jain(xs); got < 1-1e-12 || got > 1+1e-12 {
			t.Fatalf("Jain(%d equal flows) = %v, want 1", n, got)
		}
	}
	// A zero-sum allocation (only possible with signed inputs) must not
	// report spurious fairness.
	if got := Jain([]float64{-1, 1}); got != 0 {
		t.Fatalf("Jain(zero-sum) = %v, want 0", got)
	}
}

// TestLatencyEdgeCases pins the percentile surface on empty,
// single-sample and all-equal recorders: empty reports zeros (not a
// panic), and for one or many identical delays every percentile is that
// delay exactly.
func TestLatencyEdgeCases(t *testing.T) {
	win := Window{Start: 0, End: 10 * sim.Second}

	var empty Latency
	empty.W = win
	if empty.N() != 0 {
		t.Fatalf("empty latency N = %d", empty.N())
	}
	for _, p := range []float64{empty.P50(), empty.P95(), empty.P99()} {
		if p != 0 {
			t.Fatalf("empty latency percentile = %v, want 0", p)
		}
	}

	var one Latency
	one.W = win
	one.Record(sim.Second, 4*sim.Millisecond)
	if one.N() != 1 {
		t.Fatalf("single-sample N = %d", one.N())
	}
	for _, p := range []float64{one.P50(), one.P95(), one.P99()} {
		if p != 4 {
			t.Fatalf("single 4ms sample: percentile = %v ms, want 4", p)
		}
	}

	var eq Latency
	eq.W = win
	for i := 0; i < 9; i++ {
		eq.Record(sim.Second, 7*sim.Millisecond)
	}
	for _, p := range []float64{eq.P50(), eq.P95(), eq.P99()} {
		if p != 7 {
			t.Fatalf("all-equal 7ms samples: percentile = %v ms, want 7", p)
		}
	}

	// Merging nil and empty recorders must be a no-op, not a panic.
	eq.Merge(nil)
	eq.Merge(&empty)
	if eq.N() != 9 {
		t.Fatalf("N changed to %d after merging nil/empty", eq.N())
	}
}
