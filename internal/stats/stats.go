package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Dist accumulates float64 samples and answers order statistics.
// The zero value is ready to use.
type Dist struct {
	xs     []float64
	sorted bool
}

// Add appends a sample.
func (d *Dist) Add(v float64) {
	d.xs = append(d.xs, v)
	d.sorted = false
}

// AddAll appends many samples.
func (d *Dist) AddAll(vs []float64) {
	d.xs = append(d.xs, vs...)
	d.sorted = false
}

// N returns the sample count.
func (d *Dist) N() int { return len(d.xs) }

// Mean returns the sample mean, or 0 for an empty distribution.
func (d *Dist) Mean() float64 {
	if len(d.xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range d.xs {
		s += v
	}
	return s / float64(len(d.xs))
}

// Std returns the population standard deviation.
func (d *Dist) Std() float64 {
	n := len(d.xs)
	if n == 0 {
		return 0
	}
	m := d.Mean()
	var ss float64
	for _, v := range d.xs {
		ss += (v - m) * (v - m)
	}
	return math.Sqrt(ss / float64(n))
}

func (d *Dist) sort() {
	if !d.sorted {
		sort.Float64s(d.xs)
		d.sorted = true
	}
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between order statistics. Empty distributions return 0.
func (d *Dist) Percentile(p float64) float64 {
	if len(d.xs) == 0 {
		return 0
	}
	d.sort()
	if p <= 0 {
		return d.xs[0]
	}
	if p >= 100 {
		return d.xs[len(d.xs)-1]
	}
	rank := p / 100 * float64(len(d.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return d.xs[lo]
	}
	frac := rank - float64(lo)
	return d.xs[lo]*(1-frac) + d.xs[hi]*frac
}

// Sorted returns a copy of the samples in ascending order.
func (d *Dist) Sorted() []float64 {
	d.sort()
	return append([]float64(nil), d.xs...)
}

// Median returns the 50th percentile.
func (d *Dist) Median() float64 { return d.Percentile(50) }

// Min returns the smallest sample.
func (d *Dist) Min() float64 { return d.Percentile(0) }

// Max returns the largest sample.
func (d *Dist) Max() float64 { return d.Percentile(100) }

// FractionBelow returns the empirical CDF value at x: the fraction of
// samples ≤ x.
func (d *Dist) FractionBelow(x float64) float64 {
	if len(d.xs) == 0 {
		return 0
	}
	d.sort()
	i := sort.SearchFloat64s(d.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(d.xs))
}

// CDFPoint is one (value, cumulative fraction) pair.
type CDFPoint struct {
	X float64 // sample value
	P float64 // fraction of samples ≤ X
}

// CDF returns the full empirical CDF, one point per sample.
func (d *Dist) CDF() []CDFPoint {
	d.sort()
	out := make([]CDFPoint, len(d.xs))
	for i, v := range d.xs {
		out[i] = CDFPoint{X: v, P: float64(i+1) / float64(len(d.xs))}
	}
	return out
}

// Values returns a copy of the samples in sorted order.
func (d *Dist) Values() []float64 {
	d.sort()
	return append([]float64(nil), d.xs...)
}

// Summary formats n/mean/median/p25/p75 on one line.
func (d *Dist) Summary() string {
	return fmt.Sprintf("n=%d mean=%.3f median=%.3f p25=%.3f p75=%.3f",
		d.N(), d.Mean(), d.Median(), d.Percentile(25), d.Percentile(75))
}

// Window is a measurement interval in virtual time: samples outside
// [Start, End] are excluded. Setting Start past a run's transient is
// the warm-up truncation the paper's methodology uses (§5.1 measures
// the last 60 s of 100 s runs); the Meter and Latency recorders both
// apply it.
type Window struct {
	Start, End sim.Time
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t sim.Time) bool { return t >= w.Start && t <= w.End }

// Seconds returns the window length in seconds (0 if degenerate).
func (w Window) Seconds() float64 {
	if w.End <= w.Start {
		return 0
	}
	return (w.End - w.Start).Seconds()
}

// Jain returns Jain's fairness index over per-flow allocations:
// (Σx)² / (n·Σx²), which is 1 when all flows receive equally and 1/n
// when one flow takes everything. Empty or all-zero inputs return 0.
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Latency accumulates per-packet delays (arrival to non-duplicate
// delivery) observed inside a measurement window, in milliseconds. The
// warm-up gate applies to the delivery instant: a packet that arrived
// before the window but was delivered inside it counts, matching how
// the goodput Meter treats the same delivery.
type Latency struct {
	// W bounds which deliveries are recorded.
	W Window
	d Dist
}

// Record adds one packet's delay if its delivery instant now falls
// inside the window.
func (l *Latency) Record(now sim.Time, delay sim.Time) {
	if !l.W.Contains(now) {
		return
	}
	l.d.Add(float64(delay) / float64(sim.Millisecond))
}

// N returns the number of recorded deliveries.
func (l *Latency) N() int { return l.d.N() }

// P50 returns the median delay in milliseconds.
func (l *Latency) P50() float64 { return l.d.Percentile(50) }

// P95 returns the 95th-percentile delay in milliseconds.
func (l *Latency) P95() float64 { return l.d.Percentile(95) }

// P99 returns the 99th-percentile delay in milliseconds.
func (l *Latency) P99() float64 { return l.d.Percentile(99) }

// Dist exposes the underlying sample distribution (milliseconds).
func (l *Latency) Dist() *Dist { return &l.d }

// Merge folds another recorder's samples into this one (window
// filtering already happened at Record time).
func (l *Latency) Merge(o *Latency) {
	if o != nil {
		l.d.AddAll(o.d.xs)
	}
}

// Meter measures goodput the way the paper does (§5.1): it counts
// non-duplicate data packets delivered between Start and End of virtual
// time and reports bits/s over that window. Deduplication is the
// caller's job (the link layers know their sequence spaces).
type Meter struct {
	// Start and End bound the measurement window.
	Start, End sim.Time
	packets    uint64
	bytes      uint64
}

// Record counts one delivered non-duplicate packet of the given payload
// size if now falls inside the measurement window.
func (m *Meter) Record(now sim.Time, payloadBytes int) {
	if now < m.Start || now > m.End {
		return
	}
	m.packets++
	m.bytes += uint64(payloadBytes)
}

// Packets returns the number of packets recorded.
func (m *Meter) Packets() uint64 { return m.packets }

// Mbps returns the measured goodput in megabits per second.
func (m *Meter) Mbps() float64 {
	window := (m.End - m.Start).Seconds()
	if window <= 0 {
		return 0
	}
	return float64(m.bytes) * 8 / window / 1e6
}

// Ratio is a convenience counter for success fractions.
type Ratio struct {
	Hits, Total uint64
}

// Observe counts one trial, hit or miss.
func (r *Ratio) Observe(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// Value returns hits/total, or 0 when empty.
func (r *Ratio) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// FormatCDFs renders several named distributions as aligned columns of
// selected percentiles — the textual stand-in for the paper's CDF plots.
func FormatCDFs(names []string, dists []*Dist) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %8s %8s %8s %8s %8s %8s\n", "series", "p10", "p25", "p50", "p75", "p90", "mean")
	for i, name := range names {
		d := dists[i]
		fmt.Fprintf(&b, "%-24s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			name, d.Percentile(10), d.Percentile(25), d.Median(), d.Percentile(75), d.Percentile(90), d.Mean())
	}
	return b.String()
}
