// Package stats provides the measurement utilities the experiments use:
// sample distributions with percentiles and CDFs, and throughput meters
// that replicate the paper's methodology (non-duplicate packets counted
// over the tail of the run).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Dist accumulates float64 samples and answers order statistics.
// The zero value is ready to use.
type Dist struct {
	xs     []float64
	sorted bool
}

// Add appends a sample.
func (d *Dist) Add(v float64) {
	d.xs = append(d.xs, v)
	d.sorted = false
}

// AddAll appends many samples.
func (d *Dist) AddAll(vs []float64) {
	d.xs = append(d.xs, vs...)
	d.sorted = false
}

// N returns the sample count.
func (d *Dist) N() int { return len(d.xs) }

// Mean returns the sample mean, or 0 for an empty distribution.
func (d *Dist) Mean() float64 {
	if len(d.xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range d.xs {
		s += v
	}
	return s / float64(len(d.xs))
}

// Std returns the population standard deviation.
func (d *Dist) Std() float64 {
	n := len(d.xs)
	if n == 0 {
		return 0
	}
	m := d.Mean()
	var ss float64
	for _, v := range d.xs {
		ss += (v - m) * (v - m)
	}
	return math.Sqrt(ss / float64(n))
}

func (d *Dist) sort() {
	if !d.sorted {
		sort.Float64s(d.xs)
		d.sorted = true
	}
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between order statistics. Empty distributions return 0.
func (d *Dist) Percentile(p float64) float64 {
	if len(d.xs) == 0 {
		return 0
	}
	d.sort()
	if p <= 0 {
		return d.xs[0]
	}
	if p >= 100 {
		return d.xs[len(d.xs)-1]
	}
	rank := p / 100 * float64(len(d.xs)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return d.xs[lo]
	}
	frac := rank - float64(lo)
	return d.xs[lo]*(1-frac) + d.xs[hi]*frac
}

// Median returns the 50th percentile.
func (d *Dist) Median() float64 { return d.Percentile(50) }

// Min returns the smallest sample.
func (d *Dist) Min() float64 { return d.Percentile(0) }

// Max returns the largest sample.
func (d *Dist) Max() float64 { return d.Percentile(100) }

// FractionBelow returns the empirical CDF value at x: the fraction of
// samples ≤ x.
func (d *Dist) FractionBelow(x float64) float64 {
	if len(d.xs) == 0 {
		return 0
	}
	d.sort()
	i := sort.SearchFloat64s(d.xs, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(d.xs))
}

// CDFPoint is one (value, cumulative fraction) pair.
type CDFPoint struct {
	X float64 // sample value
	P float64 // fraction of samples ≤ X
}

// CDF returns the full empirical CDF, one point per sample.
func (d *Dist) CDF() []CDFPoint {
	d.sort()
	out := make([]CDFPoint, len(d.xs))
	for i, v := range d.xs {
		out[i] = CDFPoint{X: v, P: float64(i+1) / float64(len(d.xs))}
	}
	return out
}

// Values returns a copy of the samples in sorted order.
func (d *Dist) Values() []float64 {
	d.sort()
	return append([]float64(nil), d.xs...)
}

// Summary formats n/mean/median/p25/p75 on one line.
func (d *Dist) Summary() string {
	return fmt.Sprintf("n=%d mean=%.3f median=%.3f p25=%.3f p75=%.3f",
		d.N(), d.Mean(), d.Median(), d.Percentile(25), d.Percentile(75))
}

// Meter measures goodput the way the paper does (§5.1): it counts
// non-duplicate data packets delivered between Start and End of virtual
// time and reports bits/s over that window. Deduplication is the
// caller's job (the link layers know their sequence spaces).
type Meter struct {
	// Start and End bound the measurement window.
	Start, End sim.Time
	packets    uint64
	bytes      uint64
}

// Record counts one delivered non-duplicate packet of the given payload
// size if now falls inside the measurement window.
func (m *Meter) Record(now sim.Time, payloadBytes int) {
	if now < m.Start || now > m.End {
		return
	}
	m.packets++
	m.bytes += uint64(payloadBytes)
}

// Packets returns the number of packets recorded.
func (m *Meter) Packets() uint64 { return m.packets }

// Mbps returns the measured goodput in megabits per second.
func (m *Meter) Mbps() float64 {
	window := (m.End - m.Start).Seconds()
	if window <= 0 {
		return 0
	}
	return float64(m.bytes) * 8 / window / 1e6
}

// Ratio is a convenience counter for success fractions.
type Ratio struct {
	Hits, Total uint64
}

// Observe counts one trial, hit or miss.
func (r *Ratio) Observe(hit bool) {
	r.Total++
	if hit {
		r.Hits++
	}
}

// Value returns hits/total, or 0 when empty.
func (r *Ratio) Value() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Total)
}

// FormatCDFs renders several named distributions as aligned columns of
// selected percentiles — the textual stand-in for the paper's CDF plots.
func FormatCDFs(names []string, dists []*Dist) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %8s %8s %8s %8s %8s %8s\n", "series", "p10", "p25", "p50", "p75", "p90", "mean")
	for i, name := range names {
		d := dists[i]
		fmt.Fprintf(&b, "%-24s %8.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			name, d.Percentile(10), d.Percentile(25), d.Median(), d.Percentile(75), d.Percentile(90), d.Mean())
	}
	return b.String()
}
