// Package stats provides the measurement layer of the evaluation:
// sample distributions with percentiles and CDFs, goodput meters,
// measurement windows with warm-up truncation, per-packet latency
// percentiles, and Jain's fairness index.
//
// # Relation to the paper
//
// The Meter replicates the §5.1 methodology: non-duplicate packets
// counted over the tail of each run (the paper measures the last 60 s
// of 100 s), reported as goodput in Mb/s. Dist backs the CDF figures
// (12, 13, 15, 16, 18, 20) — FormatCDFs renders the percentile columns
// that stand in for the plots.
//
// # Beyond the paper
//
// The traffic subsystem opened the offered-load axis, and with it
// metrics the saturated evaluation never needed: Window generalises the
// warm-up-truncated measurement interval, Latency accumulates
// per-packet delays (arrival to non-duplicate delivery, gated on the
// delivery instant like the Meter) and answers p50/p95/p99 in
// milliseconds, and Jain scores how evenly competing flows share the
// channel — the fairness dimension of the exposed/hidden-node tradeoff
// literature.
package stats
