package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestDistBasics(t *testing.T) {
	var d Dist
	for _, v := range []float64{5, 1, 3, 2, 4} {
		d.Add(v)
	}
	if d.N() != 5 {
		t.Errorf("N = %d", d.N())
	}
	if d.Mean() != 3 {
		t.Errorf("Mean = %v", d.Mean())
	}
	if d.Median() != 3 {
		t.Errorf("Median = %v", d.Median())
	}
	if d.Min() != 1 || d.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", d.Min(), d.Max())
	}
	if got := d.Std(); math.Abs(got-math.Sqrt(2)) > 1e-12 {
		t.Errorf("Std = %v, want sqrt(2)", got)
	}
}

func TestDistEmpty(t *testing.T) {
	var d Dist
	if d.Mean() != 0 || d.Median() != 0 || d.Std() != 0 || d.FractionBelow(1) != 0 {
		t.Error("empty dist should return zeros")
	}
	if len(d.CDF()) != 0 {
		t.Error("empty dist CDF should be empty")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var d Dist
	d.AddAll([]float64{0, 10})
	if got := d.Percentile(50); got != 5 {
		t.Errorf("p50 of {0,10} = %v, want 5", got)
	}
	if got := d.Percentile(25); got != 2.5 {
		t.Errorf("p25 = %v, want 2.5", got)
	}
	if d.Percentile(-5) != 0 || d.Percentile(200) != 10 {
		t.Error("percentile clamping failed")
	}
}

func TestPercentileMonotonic(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		var d Dist
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				d.Add(v)
			}
		}
		if d.N() == 0 {
			return true
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return d.Percentile(pa) <= d.Percentile(pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCDFProperties(t *testing.T) {
	var d Dist
	d.AddAll([]float64{3, 1, 2, 2, 5})
	cdf := d.CDF()
	if len(cdf) != 5 {
		t.Fatalf("CDF has %d points", len(cdf))
	}
	if !sort.SliceIsSorted(cdf, func(i, j int) bool { return cdf[i].X < cdf[j].X }) {
		// equal Xs allowed; check non-decreasing
		for i := 1; i < len(cdf); i++ {
			if cdf[i].X < cdf[i-1].X {
				t.Fatal("CDF X values decrease")
			}
		}
	}
	if cdf[len(cdf)-1].P != 1 {
		t.Errorf("final CDF P = %v, want 1", cdf[len(cdf)-1].P)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].P <= cdf[i-1].P {
			t.Fatal("CDF P values must strictly increase per sample")
		}
	}
}

func TestFractionBelow(t *testing.T) {
	var d Dist
	d.AddAll([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := d.FractionBelow(c.x); got != c.want {
			t.Errorf("FractionBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestMeterWindow(t *testing.T) {
	m := Meter{Start: 40 * sim.Second, End: 100 * sim.Second}
	m.Record(10*sim.Second, 1400)  // before window: ignored
	m.Record(50*sim.Second, 1400)  // counted
	m.Record(100*sim.Second, 1400) // boundary: counted
	m.Record(101*sim.Second, 1400) // after: ignored
	if m.Packets() != 2 {
		t.Errorf("Packets = %d, want 2", m.Packets())
	}
	want := float64(2*1400*8) / 60 / 1e6
	if math.Abs(m.Mbps()-want) > 1e-12 {
		t.Errorf("Mbps = %v, want %v", m.Mbps(), want)
	}
}

func TestMeterDegenerate(t *testing.T) {
	m := Meter{Start: 5 * sim.Second, End: 5 * sim.Second}
	m.Record(5*sim.Second, 100)
	if m.Mbps() != 0 {
		t.Error("zero-width window should report 0 Mbps")
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Error("empty ratio should be 0")
	}
	r.Observe(true)
	r.Observe(true)
	r.Observe(false)
	if math.Abs(r.Value()-2.0/3.0) > 1e-12 {
		t.Errorf("Value = %v", r.Value())
	}
}

func TestValuesCopy(t *testing.T) {
	var d Dist
	d.AddAll([]float64{2, 1})
	vs := d.Values()
	if vs[0] != 1 || vs[1] != 2 {
		t.Errorf("Values = %v, want sorted", vs)
	}
	vs[0] = 99
	if d.Min() == 99 {
		t.Error("Values must return a copy")
	}
}

// TestPercentileHandComputed pins the interpolation rule against values
// worked out by hand on {10, 20, 30, 40, 50}: rank = p/100·(n−1), with
// linear interpolation between the flanking order statistics.
func TestPercentileHandComputed(t *testing.T) {
	var d Dist
	d.AddAll([]float64{30, 10, 50, 20, 40})
	cases := []struct{ p, want float64 }{
		{0, 10},
		{25, 20},   // rank 1 exactly
		{50, 30},   // rank 2 exactly
		{90, 46},   // rank 3.6 → 40 + 0.6·(50−40)
		{95, 48},   // rank 3.8 → 40 + 0.8·10
		{99, 49.6}, // rank 3.96 → 40 + 0.96·10
		{100, 50},
		{10, 14}, // rank 0.4 → 10 + 0.4·10
	}
	for _, c := range cases {
		if got := d.Percentile(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
}

// TestJainHandComputed checks the fairness index against hand-computed
// values: equal shares give 1, one-flow-takes-all gives 1/n, and the
// worked example (Σx)²/(n·Σx²) = 36/(3·14) for {1,2,3}.
func TestJainHandComputed(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{0, 0}, 0},
		{[]float64{5, 5, 5, 5}, 1},
		{[]float64{7, 0, 0, 0}, 0.25},
		{[]float64{1, 2, 3}, 36.0 / 42.0},
		{[]float64{4, 1}, 25.0 / 34.0},
	}
	for _, c := range cases {
		if got := Jain(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Jain(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestJainBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			// Throughput-scale magnitudes only: (Σx)² must not overflow.
			if !math.IsNaN(v) && v >= 0 && v < 1e12 {
				xs = append(xs, v)
			}
		}
		j := Jain(xs)
		if len(xs) == 0 || j == 0 {
			return j == 0
		}
		return j >= 1/float64(len(xs))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWindowContains(t *testing.T) {
	w := Window{Start: 2 * sim.Second, End: 5 * sim.Second}
	for _, c := range []struct {
		t    sim.Time
		want bool
	}{
		{1 * sim.Second, false},
		{2 * sim.Second, true},
		{5 * sim.Second, true},
		{5*sim.Second + 1, false},
	} {
		if got := w.Contains(c.t); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	if w.Seconds() != 3 {
		t.Errorf("Seconds = %v, want 3", w.Seconds())
	}
	if (Window{Start: 5, End: 5}).Seconds() != 0 {
		t.Error("degenerate window should report 0 seconds")
	}
}

// TestLatencyWarmupTruncation checks the latency recorder applies its
// window to the delivery instant and reports percentiles in ms.
func TestLatencyWarmupTruncation(t *testing.T) {
	l := Latency{W: Window{Start: 1 * sim.Second, End: 10 * sim.Second}}
	l.Record(500*sim.Millisecond, 4*sim.Millisecond) // warm-up: ignored
	l.Record(2*sim.Second, 10*sim.Millisecond)
	l.Record(3*sim.Second, 20*sim.Millisecond)
	l.Record(4*sim.Second, 30*sim.Millisecond)
	l.Record(11*sim.Second, 500*sim.Millisecond) // after window: ignored
	if l.N() != 3 {
		t.Fatalf("N = %d, want 3", l.N())
	}
	if got := l.P50(); got != 20 {
		t.Errorf("P50 = %v ms, want 20", got)
	}
	// Hand-computed on {10,20,30}: rank 1.9 → 20 + 0.9·10 = 29.
	if got := l.P95(); math.Abs(got-29) > 1e-12 {
		t.Errorf("P95 = %v ms, want 29", got)
	}
	if got := l.P99(); math.Abs(got-29.8) > 1e-12 {
		t.Errorf("P99 = %v ms, want 29.8", got)
	}
	var pooled Latency
	pooled.W = Window{End: 1} // Merge bypasses the window; samples were already gated
	pooled.Merge(&l)
	pooled.Merge(nil)
	if pooled.N() != 3 || pooled.P50() != 20 {
		t.Errorf("Merge lost samples: N=%d P50=%v", pooled.N(), pooled.P50())
	}
}

func TestFormatCDFs(t *testing.T) {
	var a, b Dist
	a.AddAll([]float64{1, 2, 3})
	b.AddAll([]float64{4, 5, 6})
	out := FormatCDFs([]string{"alpha", "beta"}, []*Dist{&a, &b})
	if len(out) == 0 {
		t.Fatal("empty output")
	}
	// Three lines: header + two series.
	lines := 0
	for _, c := range out {
		if c == '\n' {
			lines++
		}
	}
	if lines != 3 {
		t.Errorf("FormatCDFs produced %d lines, want 3", lines)
	}
}
