package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestDistBasics(t *testing.T) {
	var d Dist
	for _, v := range []float64{5, 1, 3, 2, 4} {
		d.Add(v)
	}
	if d.N() != 5 {
		t.Errorf("N = %d", d.N())
	}
	if d.Mean() != 3 {
		t.Errorf("Mean = %v", d.Mean())
	}
	if d.Median() != 3 {
		t.Errorf("Median = %v", d.Median())
	}
	if d.Min() != 1 || d.Max() != 5 {
		t.Errorf("Min/Max = %v/%v", d.Min(), d.Max())
	}
	if got := d.Std(); math.Abs(got-math.Sqrt(2)) > 1e-12 {
		t.Errorf("Std = %v, want sqrt(2)", got)
	}
}

func TestDistEmpty(t *testing.T) {
	var d Dist
	if d.Mean() != 0 || d.Median() != 0 || d.Std() != 0 || d.FractionBelow(1) != 0 {
		t.Error("empty dist should return zeros")
	}
	if len(d.CDF()) != 0 {
		t.Error("empty dist CDF should be empty")
	}
}

func TestPercentileInterpolation(t *testing.T) {
	var d Dist
	d.AddAll([]float64{0, 10})
	if got := d.Percentile(50); got != 5 {
		t.Errorf("p50 of {0,10} = %v, want 5", got)
	}
	if got := d.Percentile(25); got != 2.5 {
		t.Errorf("p25 = %v, want 2.5", got)
	}
	if d.Percentile(-5) != 0 || d.Percentile(200) != 10 {
		t.Error("percentile clamping failed")
	}
}

func TestPercentileMonotonic(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		var d Dist
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				d.Add(v)
			}
		}
		if d.N() == 0 {
			return true
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return d.Percentile(pa) <= d.Percentile(pb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCDFProperties(t *testing.T) {
	var d Dist
	d.AddAll([]float64{3, 1, 2, 2, 5})
	cdf := d.CDF()
	if len(cdf) != 5 {
		t.Fatalf("CDF has %d points", len(cdf))
	}
	if !sort.SliceIsSorted(cdf, func(i, j int) bool { return cdf[i].X < cdf[j].X }) {
		// equal Xs allowed; check non-decreasing
		for i := 1; i < len(cdf); i++ {
			if cdf[i].X < cdf[i-1].X {
				t.Fatal("CDF X values decrease")
			}
		}
	}
	if cdf[len(cdf)-1].P != 1 {
		t.Errorf("final CDF P = %v, want 1", cdf[len(cdf)-1].P)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].P <= cdf[i-1].P {
			t.Fatal("CDF P values must strictly increase per sample")
		}
	}
}

func TestFractionBelow(t *testing.T) {
	var d Dist
	d.AddAll([]float64{1, 2, 3, 4})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := d.FractionBelow(c.x); got != c.want {
			t.Errorf("FractionBelow(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestMeterWindow(t *testing.T) {
	m := Meter{Start: 40 * sim.Second, End: 100 * sim.Second}
	m.Record(10*sim.Second, 1400)  // before window: ignored
	m.Record(50*sim.Second, 1400)  // counted
	m.Record(100*sim.Second, 1400) // boundary: counted
	m.Record(101*sim.Second, 1400) // after: ignored
	if m.Packets() != 2 {
		t.Errorf("Packets = %d, want 2", m.Packets())
	}
	want := float64(2*1400*8) / 60 / 1e6
	if math.Abs(m.Mbps()-want) > 1e-12 {
		t.Errorf("Mbps = %v, want %v", m.Mbps(), want)
	}
}

func TestMeterDegenerate(t *testing.T) {
	m := Meter{Start: 5 * sim.Second, End: 5 * sim.Second}
	m.Record(5*sim.Second, 100)
	if m.Mbps() != 0 {
		t.Error("zero-width window should report 0 Mbps")
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.Value() != 0 {
		t.Error("empty ratio should be 0")
	}
	r.Observe(true)
	r.Observe(true)
	r.Observe(false)
	if math.Abs(r.Value()-2.0/3.0) > 1e-12 {
		t.Errorf("Value = %v", r.Value())
	}
}

func TestValuesCopy(t *testing.T) {
	var d Dist
	d.AddAll([]float64{2, 1})
	vs := d.Values()
	if vs[0] != 1 || vs[1] != 2 {
		t.Errorf("Values = %v, want sorted", vs)
	}
	vs[0] = 99
	if d.Min() == 99 {
		t.Error("Values must return a copy")
	}
}

func TestFormatCDFs(t *testing.T) {
	var a, b Dist
	a.AddAll([]float64{1, 2, 3})
	b.AddAll([]float64{4, 5, 6})
	out := FormatCDFs([]string{"alpha", "beta"}, []*Dist{&a, &b})
	if len(out) == 0 {
		t.Fatal("empty output")
	}
	// Three lines: header + two series.
	lines := 0
	for _, c := range out {
		if c == '\n' {
			lines++
		}
	}
	if lines != 3 {
		t.Errorf("FormatCDFs produced %d lines, want 3", lines)
	}
}
