package stats

import "repro/internal/sim"

// Checkpoint surfaces: the recorders keep their samples unexported (the
// Percentile cache invariant lives behind Add), so checkpointing gets
// explicit State/Restore pairs instead of raw field access. Sample
// order and the sorted flag are both captured — Percentile sorts in
// place, and a resumed run must reproduce the exact same memory state,
// not just the same multiset.

// DistState is a Dist in checkpoint form.
type DistState struct {
	Xs     []float64 `json:"xs,omitempty"`
	Sorted bool      `json:"sorted,omitempty"`
}

// State captures the distribution, including current sample order.
func (d *Dist) State() DistState {
	return DistState{Xs: append([]float64(nil), d.xs...), Sorted: d.sorted}
}

// Restore overwrites the distribution with a captured state.
func (d *Dist) Restore(st DistState) {
	d.xs = append(d.xs[:0], st.Xs...)
	d.sorted = st.Sorted
}

// LatencyState is a Latency recorder in checkpoint form.
type LatencyState struct {
	W Window    `json:"w"`
	D DistState `json:"d"`
}

// State captures the recorder.
func (l *Latency) State() LatencyState {
	return LatencyState{W: l.W, D: l.d.State()}
}

// Restore overwrites the recorder with a captured state.
func (l *Latency) Restore(st LatencyState) {
	l.W = st.W
	l.d.Restore(st.D)
}

// MeterState is a goodput Meter in checkpoint form.
type MeterState struct {
	Start   sim.Time `json:"start"`
	End     sim.Time `json:"end"`
	Packets uint64   `json:"packets"`
	Bytes   uint64   `json:"bytes"`
}

// State captures the meter.
func (m *Meter) State() MeterState {
	return MeterState{Start: m.Start, End: m.End, Packets: m.packets, Bytes: m.bytes}
}

// Restore overwrites the meter with a captured state.
func (m *Meter) Restore(st MeterState) {
	m.Start, m.End = st.Start, st.End
	m.packets, m.bytes = st.Packets, st.Bytes
}
