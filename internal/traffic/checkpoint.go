package traffic

import (
	"encoding/json"
	"fmt"

	"repro/internal/sim"
)

// Checkpoint surface of an arrival source. The spec, queue binding and
// derived rate parameters are structural (the resumer rebuilds the
// source through NewSource with the same spec); the state below is the
// process position: phase flags, the three timers, the arrival-time
// ring and the RNG stream. The ring is captured in full — delivered
// packets look their arrival times up long after acceptance, so its
// stale slots are still live data.

// SourceState is a Source in checkpoint form.
type SourceState struct {
	On      bool           `json:"on,omitempty"`
	Up      bool           `json:"up,omitempty"`
	Started bool           `json:"started,omitempty"`
	Arrival sim.TimerState `json:"arrival,omitempty"`
	Phase   sim.TimerState `json:"phase,omitempty"`
	Churn   sim.TimerState `json:"churn,omitempty"`
	Times   []sim.Time     `json:"times,omitempty"`
	Mask    uint32         `json:"mask,omitempty"`
	Stat    Stats          `json:"stat"`
	RNG     uint64         `json:"rng"`
}

// ExportState captures the source's mutable state.
func (s *Source) ExportState() (json.RawMessage, error) {
	st := SourceState{
		On:      s.on,
		Up:      s.up,
		Started: s.started,
		Arrival: s.arrivalTimer.State(),
		Phase:   s.phaseTimer.State(),
		Churn:   s.churnTimer.State(),
		Times:   s.times,
		Mask:    s.mask,
		Stat:    s.stat,
		RNG:     s.rng.State(),
	}
	return json.Marshal(st)
}

// RestoreState overwrites the source's mutable state. It must run
// after the scheduler's RestoreState so the timer handles re-point
// against the restored slot generations.
func (s *Source) RestoreState(enc json.RawMessage) error {
	var st SourceState
	if err := json.Unmarshal(enc, &st); err != nil {
		return fmt.Errorf("traffic: source state: %w", err)
	}
	s.on = st.On
	s.up = st.Up
	s.started = st.Started
	s.sched.RestoreTimer(&s.arrivalTimer, st.Arrival)
	s.sched.RestoreTimer(&s.phaseTimer, st.Phase)
	s.sched.RestoreTimer(&s.churnTimer, st.Churn)
	s.times = nil
	if len(st.Times) > 0 {
		s.times = append([]sim.Time(nil), st.Times...)
	}
	s.mask = st.Mask
	s.stat = st.Stat
	s.rng.SetState(st.RNG)
	return nil
}

// EncodeEventArg encodes one source-owned agenda event argument (the
// three fixed timer kinds).
func (s *Source) EncodeEventArg(arg any) (json.RawMessage, error) {
	ev, ok := arg.(srcEvent)
	if !ok {
		return nil, fmt.Errorf("traffic: source holds unencodable event arg %T", arg)
	}
	return json.Marshal(int(ev))
}

// DecodeEventArg inverts EncodeEventArg.
func (s *Source) DecodeEventArg(enc json.RawMessage) (any, error) {
	var ev int
	if err := json.Unmarshal(enc, &ev); err != nil {
		return nil, fmt.Errorf("traffic: source event arg: %w", err)
	}
	return srcEvent(ev), nil
}
