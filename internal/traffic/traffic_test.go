package traffic

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/runner"
	"repro/internal/sim"
)

// sinkQueue is an Enqueuer with an infinite-rate server: packets are
// counted and the backlog stays empty, so rate measurements see the
// arrival process alone.
type sinkQueue struct {
	enqueued uint64
	calls    int
}

func (q *sinkQueue) Enqueue(dst, count int) {
	q.enqueued += uint64(count)
	q.calls++
}
func (q *sinkQueue) Backlog(dst int) int { return 0 }

// stuckQueue models a dead server: the backlog it reports never drains.
type stuckQueue struct {
	backlog int
}

func (q *stuckQueue) Enqueue(dst, count int) { q.backlog += count }
func (q *stuckQueue) Backlog(dst int) int    { return q.backlog }

// runSpec drives one source over d of virtual time and returns it.
func runSpec(t *testing.T, spec Spec, seed uint64, d sim.Time) (*Source, *sinkQueue) {
	t.Helper()
	sched := sim.NewScheduler()
	q := &sinkQueue{}
	src := NewSource(sched, sim.NewRNG(seed), spec, q, 1)
	src.Start()
	sched.Run(d)
	return src, q
}

// empiricalRate asserts the accepted packet rate is within tol
// (fractional) of want packets per second.
func empiricalRate(t *testing.T, src *Source, q *sinkQueue, d sim.Time, want, tol float64) {
	t.Helper()
	got := float64(q.enqueued) / d.Seconds()
	if math.Abs(got-want) > tol*want {
		t.Fatalf("empirical rate %.1f pkt/s, want %.1f ± %.0f%% (accepted %d over %v)",
			got, want, tol*100, q.enqueued, d)
	}
	if src.Stats().Accepted != q.enqueued {
		t.Fatalf("source accepted %d but queue saw %d", src.Stats().Accepted, q.enqueued)
	}
}

func TestCBRRateIsExact(t *testing.T) {
	const pps = 800.0
	d := 10 * sim.Second
	src, q := runSpec(t, CBRAt(pps), 3, d)
	// Deterministic spacing: exactly floor(d / gap) arrivals.
	want := uint64(float64(d) / (1e9 / pps))
	if q.enqueued != want {
		t.Fatalf("CBR accepted %d packets, want exactly %d", q.enqueued, want)
	}
	empiricalRate(t, src, q, d, pps, 0.01)
}

func TestPoissonEmpiricalRate(t *testing.T) {
	const pps = 1000.0
	d := 20 * sim.Second
	// 20k expected arrivals → σ ≈ 141, so 5% (1000 packets) is ~7σ.
	src, q := runSpec(t, PoissonAt(pps), 7, d)
	empiricalRate(t, src, q, d, pps, 0.05)
}

func TestPoissonBurstPreservesRate(t *testing.T) {
	const pps = 1000.0
	d := 20 * sim.Second
	spec := PoissonAt(pps)
	spec.Burst = 8
	src, q := runSpec(t, spec, 7, d)
	empiricalRate(t, src, q, d, pps, 0.05)
	if q.calls*8 != int(q.enqueued) {
		t.Fatalf("burst 8: %d calls delivered %d packets", q.calls, q.enqueued)
	}
}

func TestOnOffEmpiricalRate(t *testing.T) {
	const peak = 2000.0
	on, off := 100*sim.Millisecond, 300*sim.Millisecond
	d := 40 * sim.Second // ~100 ON/OFF cycles
	src, q := runSpec(t, OnOffAt(peak, on, off), 11, d)
	want := peak * float64(on) / float64(on+off)
	empiricalRate(t, src, q, d, want, 0.15)
	if got := OnOffAt(peak, on, off).OfferedMbps(1400); math.Abs(got-want*1400*8/1e6) > 1e-9 {
		t.Fatalf("OfferedMbps %.3f disagrees with the mean rate", got)
	}
}

func TestChurnPausesArrivals(t *testing.T) {
	const pps = 1000.0
	d := 40 * sim.Second
	spec := PoissonAt(pps)
	spec.UpMean = 500 * sim.Millisecond
	spec.DownMean = 500 * sim.Millisecond
	src, q := runSpec(t, spec, 13, d)
	if s := src.Stats().Sessions; s < 10 {
		t.Fatalf("expected many churn sessions over %v, got %d", d, s)
	}
	// Duty cycle 50%: the mean rate halves.
	empiricalRate(t, src, q, d, pps/2, 0.15)
}

func TestQueueCapDropsAtTail(t *testing.T) {
	spec := CBRAt(1000)
	spec.QueueCap = 32
	sched := sim.NewScheduler()
	q := &stuckQueue{}
	src := NewSource(sched, sim.NewRNG(1), spec, q, 1)
	src.Start()
	sched.Run(1 * sim.Second)
	st := src.Stats()
	if st.Accepted != 32 {
		t.Fatalf("stuck queue accepted %d, want exactly the cap 32", st.Accepted)
	}
	if st.Dropped != st.Offered-32 {
		t.Fatalf("drops %d ≠ offered %d − cap", st.Dropped, st.Offered)
	}
	if st.Offered != 1000 { // arrivals at 1ms, 2ms, …, 1000ms inclusive
		t.Fatalf("offered %d, want 1000 CBR arrivals in 1s", st.Offered)
	}
}

// TestDeterminismAcrossWorkers replays a batch of independently seeded
// sources through the trial runner at several worker counts: identical
// counters prove workloads are a pure function of their seed, like
// every other randomness consumer.
func TestDeterminismAcrossWorkers(t *testing.T) {
	trial := func(i int) Stats {
		sched := sim.NewScheduler()
		q := &sinkQueue{}
		spec := PoissonAt(500)
		spec.UpMean = 300 * sim.Millisecond
		spec.DownMean = 200 * sim.Millisecond
		src := NewSource(sched, sim.NewRNG(uint64(i)*0x9e37+1), spec, q, 1)
		src.Start()
		sched.Run(5 * sim.Second)
		return src.Stats()
	}
	serial := runner.Map(runner.Config{Workers: 1}, 12, trial)
	for _, workers := range []int{4, 16} {
		got := runner.Map(runner.Config{Workers: workers}, 12, trial)
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d produced different workloads than serial:\n%v\nvs\n%v", workers, serial, got)
		}
	}
}

func TestArrivalTimeRing(t *testing.T) {
	spec := CBRAt(1000)
	sched := sim.NewScheduler()
	q := &sinkQueue{}
	src := NewSource(sched, sim.NewRNG(1), spec, q, 1)
	src.EnableLatency(256)
	src.Start()
	sched.Run(100 * sim.Millisecond)
	// CBR at 1000 pkt/s: packet k arrives at (k+1) ms.
	for seq := uint32(0); seq < 99; seq++ {
		at, ok := src.ArrivalTime(seq)
		if !ok {
			t.Fatalf("seq %d: no arrival time", seq)
		}
		if want := sim.Time(seq+1) * sim.Millisecond; at != want {
			t.Fatalf("seq %d arrived at %v, want %v", seq, at, want)
		}
	}
	if _, ok := src.ArrivalTime(5000); ok {
		t.Fatal("unaccepted sequence number reported an arrival time")
	}
}

// TestWithOfferedMbpsRoundTrips pins the inverse relationship: setting
// a mean offered load then reading it back returns the same number for
// every kind, including duty-cycled and churned ones.
func TestWithOfferedMbpsRoundTrips(t *testing.T) {
	specs := []Spec{
		CBRAt(1),
		PoissonAt(1),
		OnOffAt(1, 100*sim.Millisecond, 300*sim.Millisecond),
	}
	churned := PoissonAt(1)
	churned.UpMean = 200 * sim.Millisecond
	churned.DownMean = 600 * sim.Millisecond
	specs = append(specs, churned)
	for _, s := range specs {
		got := s.WithOfferedMbps(2.5, 1400).OfferedMbps(1400)
		if math.Abs(got-2.5) > 1e-9 {
			t.Errorf("%v: WithOfferedMbps(2.5) reads back %.6f Mb/s", s.Kind, got)
		}
	}
}

func TestParseKindRoundTrips(t *testing.T) {
	for _, k := range []Kind{Saturated, CBR, Poisson, OnOff} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("fractal"); err == nil {
		t.Fatal("ParseKind accepted nonsense")
	}
}

func TestNewSourcePanicsOnSaturated(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSource accepted a Saturated spec")
		}
	}()
	NewSource(sim.NewScheduler(), sim.NewRNG(1), Saturate(), &sinkQueue{}, 1)
}

// TestArrivalPathZeroAllocs is the acceptance gate for the arrival hot
// path: once a source's timers and latency ring are warm, a
// steady-state arrival (timer fire → backlog check → Enqueue → next
// inter-arrival draw and re-arm) must not touch the allocator, for both
// the deterministic and the exponential process.
func TestArrivalPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	for _, tc := range []struct {
		name string
		spec Spec
	}{
		{"cbr", CBRAt(10000)},
		{"poisson", PoissonAt(10000)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sched := sim.NewScheduler()
			q := &sinkQueue{}
			src := NewSource(sched, sim.NewRNG(5), tc.spec, q, 1)
			src.EnableLatency(256)
			src.Start()
			for i := 0; i < 256; i++ {
				sched.Step() // warm the agenda, slots and ring
			}
			if allocs := testing.AllocsPerRun(400, func() { sched.Step() }); allocs != 0 {
				t.Fatalf("steady-state arrival allocates %.2f objects/op, want 0", allocs)
			}
		})
	}
}

// BenchmarkArrival measures one steady-state arrival event end to end.
func BenchmarkArrival(b *testing.B) {
	sched := sim.NewScheduler()
	q := &sinkQueue{}
	src := NewSource(sched, sim.NewRNG(5), PoissonAt(10000), q, 1)
	src.EnableLatency(256)
	src.Start()
	for i := 0; i < 256; i++ {
		sched.Step()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sched.Step()
	}
}
