package traffic

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// Kind selects an arrival process.
type Kind uint8

// The workload models. Saturated is the zero value so that a zero Spec
// reproduces the always-backlogged behaviour every experiment had
// before this package existed.
const (
	// Saturated is the paper's traffic model: the sender always has the
	// next packet ready. A saturated flow needs no Source — callers use
	// the link layer's SetSaturated directly, and NewSource panics.
	Saturated Kind = iota
	// CBR emits packets at exactly PacketsPerSec with deterministic
	// spacing (a constant-bit-rate stream such as voice or video).
	CBR
	// Poisson emits packets with exponential inter-arrival times at mean
	// rate PacketsPerSec (the classic open-loop telephony model, and the
	// regime analysed by the unsaturated-CSMA literature).
	Poisson
	// OnOff is a bursty two-state source: exponentially distributed ON
	// periods (mean OnMean) during which packets flow CBR-style at
	// PacketsPerSec, alternating with silent OFF periods (mean OffMean).
	// The long-run mean rate is PacketsPerSec·OnMean/(OnMean+OffMean).
	OnOff
)

// String returns the CLI name of the kind.
func (k Kind) String() string {
	switch k {
	case Saturated:
		return "saturated"
	case CBR:
		return "cbr"
	case Poisson:
		return "poisson"
	case OnOff:
		return "onoff"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind maps a CLI name ("saturated", "cbr", "poisson", "onoff")
// to its Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "saturated", "sat", "":
		return Saturated, nil
	case "cbr":
		return CBR, nil
	case "poisson":
		return Poisson, nil
	case "onoff", "on-off", "bursty":
		return OnOff, nil
	}
	return Saturated, fmt.Errorf("traffic: unknown kind %q (want saturated|cbr|poisson|onoff)", s)
}

// DefaultQueueCap is the per-flow backlog bound used when Spec.QueueCap
// is zero: arrivals beyond it are dropped at the queue tail, as a real
// device's transmit queue would.
const DefaultQueueCap = 256

// Spec describes one flow's workload. The zero value is the saturated
// model, which is why adding this package changed no existing
// experiment: an Options or Scenario that never mentions traffic still
// means "always backlogged".
type Spec struct {
	// Kind selects the arrival process.
	Kind Kind
	// PacketsPerSec is the arrival rate in packets per second: exact for
	// CBR, the mean for Poisson, and the within-burst (peak) rate for
	// OnOff. Ignored by Saturated.
	PacketsPerSec float64
	// Burst is how many packets arrive per arrival event (a batch of
	// frames from one application write). Zero means 1. The configured
	// PacketsPerSec is preserved: arrival events fire Burst times less
	// often.
	Burst int
	// QueueCap bounds the per-flow backlog; arrivals that would exceed
	// it are dropped and counted. Zero means DefaultQueueCap; negative
	// means unbounded.
	QueueCap int
	// OnMean and OffMean are the mean ON and OFF durations of the OnOff
	// model (exponentially distributed). Zero values default to 100 ms.
	OnMean, OffMean sim.Time
	// UpMean and DownMean, when both positive, enable flow churn on any
	// kind: the flow alternates between live sessions of mean duration
	// UpMean, during which the arrival process runs, and gaps of mean
	// DownMean with no arrivals (both exponential). This models flows
	// arriving and departing over the run — users joining and leaving —
	// independently of the packet-scale burstiness of OnOff.
	UpMean, DownMean sim.Time
}

// Saturate returns the saturated (always-backlogged) spec — the zero
// value, named for readability at call sites.
func Saturate() Spec { return Spec{} }

// CBRAt returns a constant-bit-rate spec at pps packets per second.
func CBRAt(pps float64) Spec { return Spec{Kind: CBR, PacketsPerSec: pps} }

// PoissonAt returns a Poisson spec with mean rate pps packets per second.
func PoissonAt(pps float64) Spec { return Spec{Kind: Poisson, PacketsPerSec: pps} }

// OnOffAt returns a bursty spec emitting at peak packets per second
// during exponential ON periods of mean on, silent for mean off.
func OnOffAt(peak float64, on, off sim.Time) Spec {
	return Spec{Kind: OnOff, PacketsPerSec: peak, OnMean: on, OffMean: off}
}

// PacketsPerSecFor converts an offered load in Mb/s of application
// payload to packets per second at the given payload size.
func PacketsPerSecFor(mbps float64, payloadBytes int) float64 {
	if payloadBytes <= 0 {
		return 0
	}
	return mbps * 1e6 / (float64(payloadBytes) * 8)
}

// OfferedMbps reports the spec's long-run offered load in Mb/s of
// payload at the given payload size (0 for Saturated, whose load is
// "whatever the channel admits").
func (s Spec) OfferedMbps(payloadBytes int) float64 {
	pps := s.PacketsPerSec
	switch s.Kind {
	case Saturated:
		return 0
	case OnOff:
		on, off := s.onOffMeans()
		pps *= float64(on) / float64(on+off)
	}
	if s.UpMean > 0 && s.DownMean > 0 {
		pps *= float64(s.UpMean) / float64(s.UpMean+s.DownMean)
	}
	return pps * float64(payloadBytes) * 8 / 1e6
}

// WithOfferedMbps returns a copy of s whose rate is set so the
// long-run offered load equals mbps of payload at the given payload
// size: for OnOff the within-burst peak is scaled up by the duty
// cycle, and churned specs by the session duty cycle, so OfferedMbps
// of the result reports mbps for every kind. This is what keeps a load
// sweep's x-axis meaning "mean offered load" regardless of burstiness.
func (s Spec) WithOfferedMbps(mbps float64, payloadBytes int) Spec {
	pps := PacketsPerSecFor(mbps, payloadBytes)
	if s.Kind == OnOff {
		on, off := s.onOffMeans()
		pps *= float64(on+off) / float64(on)
	}
	if s.churns() {
		pps *= float64(s.UpMean+s.DownMean) / float64(s.UpMean)
	}
	s.PacketsPerSec = pps
	return s
}

// onOffMeans returns the ON/OFF means with defaults applied.
func (s Spec) onOffMeans() (on, off sim.Time) {
	on, off = s.OnMean, s.OffMean
	if on <= 0 {
		on = 100 * sim.Millisecond
	}
	if off <= 0 {
		off = 100 * sim.Millisecond
	}
	return on, off
}

// burst returns the batch size with the default applied.
func (s Spec) burst() int {
	if s.Burst <= 0 {
		return 1
	}
	return s.Burst
}

// queueCap returns the backlog bound with the default applied
// (negative = unbounded, reported as a very large cap).
func (s Spec) queueCap() int {
	switch {
	case s.QueueCap == 0:
		return DefaultQueueCap
	case s.QueueCap < 0:
		return int(^uint(0) >> 1) // unbounded
	default:
		return s.QueueCap
	}
}

// churns reports whether flow churn is configured.
func (s Spec) churns() bool { return s.UpMean > 0 && s.DownMean > 0 }

// Validate reports whether the spec is runnable.
func (s Spec) Validate() error {
	if s.Kind == Saturated {
		return nil
	}
	if s.PacketsPerSec <= 0 {
		return fmt.Errorf("traffic: %v spec needs PacketsPerSec > 0", s.Kind)
	}
	return nil
}

// An Enqueuer is the transmit-queue face of a link-layer node: both
// core.Node (CMAP) and csma.Node (DCF) satisfy it. Enqueue adds packets
// towards dst; Backlog reports how many enqueued packets have not yet
// been handed to the MAC, which is how a Source enforces QueueCap.
type Enqueuer interface {
	Enqueue(dst int, count int)
	Backlog(dst int) int
}

// Stats counts a source's arrivals.
type Stats struct {
	// Offered is every packet the arrival process generated; Accepted
	// entered the queue; Dropped found it full.
	Offered, Accepted, Dropped uint64
	// Sessions counts churn up-transitions (1 for an unchurned flow).
	Sessions uint64
}

// srcEvent enumerates the source's timer callbacks. The constants are
// small integers so that passing one through the scheduler's `arg any`
// uses the runtime's static box — no allocation per event, the same
// device the MAC layers use for their fixed timers.
type srcEvent int

const (
	evArrive srcEvent = iota
	evPhase           // ON/OFF flip
	evChurn           // session up/down flip
)

// Source drives one flow's arrival process on the simulation scheduler.
// It owns three caller-embedded timers (arrival, ON/OFF phase, churn)
// re-armed through ResetAfter, so steady-state arrival processing — the
// timer fires, the backlog check, the Enqueue, the next draw — performs
// zero heap allocations, enforced by TestArrivalPathZeroAllocs the same
// way the transmit path is.
type Source struct {
	sched *sim.Scheduler
	rng   *sim.RNG
	spec  Spec
	q     Enqueuer
	dst   int

	meanGapNs float64 // mean event inter-arrival (Burst packets) in ns
	burst     int
	cap       int

	on, up  bool
	started bool

	arrivalTimer sim.Timer
	phaseTimer   sim.Timer
	churnTimer   sim.Timer

	// times is the arrival-time ring for latency measurement, indexed by
	// accepted-packet sequence & mask (power-of-two length). The k-th
	// accepted packet becomes the flow's k-th link-layer sequence number
	// in both MACs, so a receiver can look its arrival time up by the
	// delivered frame's seq. Nil unless EnableLatency was called.
	times []sim.Time
	mask  uint32

	stat Stats
}

// NewSource binds an arrival process to q's queue towards dst, drawing
// all randomness from rng (give each source its own stream). It panics
// on a Saturated spec — saturated flows need no arrival events; call
// the link layer's SetSaturated instead — and on an invalid one.
func NewSource(sched *sim.Scheduler, rng *sim.RNG, spec Spec, q Enqueuer, dst int) *Source {
	if spec.Kind == Saturated {
		panic("traffic: NewSource on a Saturated spec; use the link layer's SetSaturated")
	}
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	b := spec.burst()
	return &Source{
		sched:     sched,
		rng:       rng,
		spec:      spec,
		q:         q,
		dst:       dst,
		burst:     b,
		cap:       spec.queueCap(),
		meanGapNs: float64(b) / spec.PacketsPerSec * 1e9,
	}
}

// EnableLatency allocates the arrival-time ring so ArrivalTime can
// answer per-packet delays. windowPackets is the link layer's maximum
// number of accepted-but-undelivered packets beyond the queue cap (the
// send window); the ring is sized to the next power of two covering
// QueueCap + windowPackets so an in-flight packet's slot is never
// overwritten before delivery. Call before Start.
func (s *Source) EnableLatency(windowPackets int) {
	need := s.cap + windowPackets + 64
	if s.spec.QueueCap < 0 {
		// Unbounded queue: fall back to a generous fixed ring.
		need = 1 << 16
	}
	size := 1
	for size < need {
		size <<= 1
	}
	if size > 1<<16 {
		// The DCF sequence space is 16 bits; a ring larger than it could
		// not be indexed consistently by wrapped sequence numbers.
		size = 1 << 16
	}
	s.times = make([]sim.Time, size)
	s.mask = uint32(size - 1)
}

// Start arms the first arrival (and, when configured, the ON/OFF and
// churn clocks). The first packet arrives after one inter-arrival draw,
// not at time zero, so desynchronised flows stay desynchronised.
func (s *Source) Start() {
	if s.started {
		panic("traffic: Source started twice")
	}
	s.started = true
	s.up = true
	s.on = true
	s.stat.Sessions = 1
	if s.spec.churns() {
		s.sched.ResetAfter(&s.churnTimer, s.exp(s.spec.UpMean), s, evChurn)
	}
	if s.spec.Kind == OnOff {
		on, _ := s.spec.onOffMeans()
		s.sched.ResetAfter(&s.phaseTimer, s.exp(on), s, evPhase)
	}
	s.armArrival()
}

// Stats returns a copy of the arrival counters.
func (s *Source) Stats() Stats { return s.stat }

// Spec returns the workload this source runs.
func (s *Source) Spec() Spec { return s.spec }

// Accepted returns how many packets have entered the queue so far.
func (s *Source) Accepted() uint64 { return s.stat.Accepted }

// ArrivalTime returns when the packet that became flow sequence number
// seq arrived, and whether the ring still holds it. Valid only after
// EnableLatency; sequence numbers wrap consistently because the ring
// length divides the 16-bit DCF sequence space.
func (s *Source) ArrivalTime(seq uint32) (sim.Time, bool) {
	if s.times == nil {
		return 0, false
	}
	if uint64(seq) >= s.stat.Accepted && s.stat.Accepted <= uint64(s.mask) {
		return 0, false // never accepted (pre-wrap; afterwards age guards)
	}
	return s.times[seq&s.mask], true
}

// HandleEvent implements sim.EventHandler: the three fixed timers
// arrive as srcEvent kinds.
func (s *Source) HandleEvent(arg any) {
	switch arg.(srcEvent) {
	case evArrive:
		s.arrive()
	case evPhase:
		s.phaseFlip()
	case evChurn:
		s.churnFlip()
	}
}

// arrive is the hot path: one batch of packets hits the queue and the
// next arrival is drawn. No allocation happens anywhere on it.
func (s *Source) arrive() {
	if !s.up || !s.on {
		return // stale fire across a transition; transitions stop the timer
	}
	s.stat.Offered += uint64(s.burst)
	k := s.burst
	if room := s.cap - s.q.Backlog(s.dst); k > room {
		k = room
	}
	if k > 0 {
		if s.times != nil {
			for i := 0; i < k; i++ {
				s.times[uint32(s.stat.Accepted+uint64(i))&s.mask] = s.sched.Now()
			}
		}
		s.stat.Accepted += uint64(k)
		s.q.Enqueue(s.dst, k)
	} else {
		k = 0
	}
	s.stat.Dropped += uint64(s.burst - k)
	s.armArrival()
}

// armArrival schedules the next arrival event per the spec's process.
func (s *Source) armArrival() {
	var gap sim.Time
	switch s.spec.Kind {
	case Poisson:
		gap = sim.Time(s.rng.ExpFloat64() * s.meanGapNs)
	default: // CBR and the ON periods of OnOff: deterministic spacing
		gap = sim.Time(s.meanGapNs)
	}
	if gap < 1 {
		gap = 1
	}
	s.sched.ResetAfter(&s.arrivalTimer, gap, s, evArrive)
}

// phaseFlip toggles the OnOff burst state.
func (s *Source) phaseFlip() {
	on, off := s.spec.onOffMeans()
	s.on = !s.on
	if s.on {
		s.sched.ResetAfter(&s.phaseTimer, s.exp(on), s, evPhase)
		if s.up {
			s.armArrival()
		}
	} else {
		s.arrivalTimer.Stop()
		s.sched.ResetAfter(&s.phaseTimer, s.exp(off), s, evPhase)
	}
}

// churnFlip toggles the session state: a down flow generates nothing
// (its queue keeps draining); a fresh session restarts the arrival
// process, in the ON phase for OnOff flows.
func (s *Source) churnFlip() {
	s.up = !s.up
	if s.up {
		s.stat.Sessions++
		s.sched.ResetAfter(&s.churnTimer, s.exp(s.spec.UpMean), s, evChurn)
		if s.spec.Kind == OnOff {
			s.on = true
			s.phaseTimer.Stop()
			on, _ := s.spec.onOffMeans()
			s.sched.ResetAfter(&s.phaseTimer, s.exp(on), s, evPhase)
		}
		s.armArrival()
	} else {
		s.arrivalTimer.Stop()
		s.phaseTimer.Stop()
		s.sched.ResetAfter(&s.churnTimer, s.exp(s.spec.DownMean), s, evChurn)
	}
}

// exp draws an exponential duration with the given mean (≥ 1 ns).
func (s *Source) exp(mean sim.Time) sim.Time {
	d := sim.Time(s.rng.ExpFloat64() * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}
