// Package traffic supplies pluggable workload models for the simulated
// link layers, opening the offered-load axis the paper's evaluation
// holds fixed.
//
// # Relation to the paper
//
// The CMAP evaluation (§5) drives every sender fully backlogged — the
// saturated regime, where the exposed-terminal gain is largest and
// easiest to isolate. How the CMAP-versus-carrier-sense tradeoff behaves
// below saturation is exactly what the follow-on literature
// characterises (van de Ven et al., "Optimal Tradeoff Between Exposed
// and Hidden Nodes in Large Wireless Networks"; Sun et al., "Throughput
// Characterization of Wireless CSMA Networks With Arbitrary Sensing and
// Interference Topologies"): at low load, deferring costs little; the
// gain from harnessing exposed terminals turns on as load approaches
// saturation. This package makes those unsaturated regimes simulable.
//
// # The models
//
// A Spec names an arrival process per flow: Saturated (the paper's
// model and the zero value, so existing experiments are untouched), CBR
// (deterministic spacing), Poisson (exponential inter-arrivals), and
// bursty OnOff (exponential ON/OFF phases, CBR inside a burst). Any
// kind can additionally churn — alternate between live sessions and
// silent gaps — modelling flows that arrive and depart over a run, the
// building block of many-user scenarios. A Source binds a Spec to the
// transmit queue of a link-layer node (the Enqueuer interface, which
// both core.Node and csma.Node satisfy), enforces a finite per-flow
// backlog (QueueCap; tail drops are counted), and drives everything
// from scheduler timers.
//
// # Determinism and the zero-allocation arrival path
//
// Each Source draws from its own sim.RNG stream, so workloads are a
// pure function of the trial seed and results are bit-identical at any
// worker count, like every other randomness consumer in the repo.
// Arrival processing rides the same machinery as the transmit hot path:
// value-embedded timers re-armed through Scheduler.ResetAfter and
// small-integer event kinds through the EventHandler interface, so a
// steady-state arrival (timer fire → backlog check → Enqueue → next
// draw) performs zero heap allocations — enforced by
// TestArrivalPathZeroAllocs.
//
// # Latency
//
// With EnableLatency, a Source records each accepted packet's arrival
// time in a fixed ring indexed by the flow's link-layer sequence
// number (the k-th accepted packet becomes sequence k in both MACs), so
// a receiver-side delivery callback can compute per-packet queueing +
// channel delay without any per-packet allocation; stats.Latency turns
// those samples into warm-up-truncated p50/p95/p99.
package traffic
