package traffic_test

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/traffic"
)

// queue is a toy Enqueuer standing in for a link-layer node: it serves
// one packet per millisecond, so a fast-enough arrival process fills
// its finite backlog and sees tail drops.
type queue struct {
	sched   *sim.Scheduler
	backlog int
	served  int
}

func (q *queue) Enqueue(dst, count int) { q.backlog += count }
func (q *queue) Backlog(dst int) int    { return q.backlog }
func (q *queue) serve() {
	if q.backlog > 0 {
		q.backlog--
		q.served++
	}
	q.sched.After(sim.Millisecond, q.serve)
}

// Example drives a bursty ON/OFF workload into a rate-limited queue for
// one virtual second. The source offers 2000 packets/s during ON bursts
// (mean 50 ms, alternating with mean 150 ms of silence — a 500 pkt/s
// long-run rate); the queue serves only 1000 pkt/s, so long bursts
// overflow the 64-packet cap and drop at the tail.
func Example() {
	sched := sim.NewScheduler()
	q := &queue{sched: sched}
	q.serve()

	spec := traffic.OnOffAt(2000, 50*sim.Millisecond, 150*sim.Millisecond)
	spec.QueueCap = 64
	src := traffic.NewSource(sched, sim.NewRNG(42), spec, q, 1)
	src.Start()

	sched.Run(1 * sim.Second)
	st := src.Stats()
	fmt.Printf("offered=%d accepted=%d dropped=%d served=%d\n",
		st.Offered, st.Accepted, st.Dropped, q.served)
	fmt.Printf("long-run offered load at 1400-byte payloads: %.2f Mb/s\n",
		spec.OfferedMbps(1400))
	// Output:
	// offered=873 accepted=696 dropped=177 served=633
	// long-run offered load at 1400-byte payloads: 5.60 Mb/s
}
