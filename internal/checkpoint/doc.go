// Package checkpoint owns the on-disk format of simulation checkpoints
// and resumable campaign manifests: a versioned, self-describing JSON
// envelope whose payload integrity is guarded by a SHA-256 digest and
// whose applicability is guarded by a hash of the producing
// configuration. The simulation state itself is opaque here — each
// component serializes its own state (internal/sim, phy, medium, csma,
// core, traffic, shard) and the experiment harness stitches the pieces;
// this package only guarantees that a resumed process either gets back
// exactly the bytes that were saved, for the same configuration, or a
// typed error saying precisely how the checkpoint is unusable.
//
// The package has no dependencies on the rest of the repository so any
// layer — the harness, the CLIs, the tests — can import it freely.
package checkpoint
