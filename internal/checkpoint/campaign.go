package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// A Campaign is a resumable sweep: a directory holding a manifest that
// records which measurement points have completed, with their results,
// so a killed run restarted with the same configuration skips straight
// past everything already done. Point keys are caller-chosen strings
// (e.g. "fig12/exposed/cmap" or "loadsweep/hidden/csma/4.5Mbps"); the
// manifest is rewritten atomically (temp file + rename) on every
// completion, so a crash can lose at most the in-flight points. All
// methods are safe for concurrent use — sweep workers record
// completions from the worker pool.
type Campaign struct {
	dir string
	mu  sync.Mutex
	m   manifest
}

type manifest struct {
	ConfigHash string                     `json:"config_hash"`
	Done       map[string]json.RawMessage `json:"done"`
}

const manifestName = "manifest.json"

// OpenCampaign opens (or creates) the campaign in dir for the given
// configuration. An existing manifest written under a different
// configuration returns ErrConfigMismatch — silently mixing results
// from two configurations is the one unforgivable failure mode of a
// resumable sweep.
func OpenCampaign(dir, configHash string) (*Campaign, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: campaign dir: %w", err)
	}
	c := &Campaign{dir: dir, m: manifest{ConfigHash: configHash, Done: map[string]json.RawMessage{}}}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case os.IsNotExist(err):
		return c, nil
	case err != nil:
		return nil, fmt.Errorf("checkpoint: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	if m.ConfigHash != configHash {
		return nil, fmt.Errorf("%w: campaign %s was run under config %.12s…, this run is %.12s…", ErrConfigMismatch, dir, m.ConfigHash, configHash)
	}
	if m.Done != nil {
		c.m.Done = m.Done
	}
	return c, nil
}

// Dir returns the campaign directory.
func (c *Campaign) Dir() string { return c.dir }

// Done reports whether key has completed, returning its recorded
// result.
func (c *Campaign) Done(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.m.Done[key]
	return r, ok
}

// Keys returns every completed point key, sorted.
func (c *Campaign) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.m.Done))
	for k := range c.m.Done {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Complete records key's result and persists the manifest atomically.
func (c *Campaign) Complete(key string, result any) error {
	enc, err := json.Marshal(result)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal result for %q: %w", key, err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.Done[key] = enc
	return c.flush()
}

func (c *Campaign) flush() error {
	data, err := json.MarshalIndent(c.m, "", " ")
	if err != nil {
		return fmt.Errorf("checkpoint: marshal manifest: %w", err)
	}
	data = append(data, '\n')
	tmp := filepath.Join(c.dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("checkpoint: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(c.dir, manifestName)); err != nil {
		return fmt.Errorf("checkpoint: install manifest: %w", err)
	}
	return nil
}

// SaveFile writes a checkpoint atomically to path (temp file + rename),
// so a crash mid-write never leaves a half-written file where a
// resumable checkpoint should be.
func SaveFile(path, configHash string, payload any) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("checkpoint: create: %w", err)
	}
	if err := Save(f, configHash, payload); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: install: %w", err)
	}
	return nil
}

// LoadFile reads a checkpoint from path. See Load for the error
// contract.
func LoadFile(path, wantConfigHash string) (json.RawMessage, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: open: %w", err)
	}
	defer f.Close()
	return Load(f, wantConfigHash)
}
