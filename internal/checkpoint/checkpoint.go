package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Magic identifies a checkpoint file; Version is the envelope format
// revision. Bump Version on any incompatible payload change — a resumed
// binary must never misinterpret an old layout silently.
const (
	Magic   = "cmapckpt"
	Version = 1
)

// The typed failure modes of Load. Callers branch with errors.Is; every
// returned error also carries human-readable context.
var (
	// ErrTruncated: the file ends mid-envelope (interrupted write, partial
	// copy). Truncation is reported distinctly from corruption because the
	// fix differs: a truncated checkpoint usually means "use the previous
	// auto-checkpoint", a corrupt one "the storage is lying".
	ErrTruncated = errors.New("checkpoint truncated")
	// ErrCorrupt: the envelope parses but its payload digest (or magic)
	// does not match.
	ErrCorrupt = errors.New("checkpoint corrupt")
	// ErrVersionMismatch: the envelope was written by an incompatible
	// format revision.
	ErrVersionMismatch = errors.New("checkpoint version mismatch")
	// ErrConfigMismatch: the checkpoint was taken under a different
	// configuration than the one trying to resume it.
	ErrConfigMismatch = errors.New("checkpoint config mismatch")
)

// envelope is the on-disk frame around a checkpoint payload.
type envelope struct {
	Magic      string          `json:"magic"`
	Version    int             `json:"version"`
	ConfigHash string          `json:"config_hash"`
	PayloadSHA string          `json:"payload_sha256"`
	Payload    json.RawMessage `json:"payload"`
}

// ConfigHash derives the configuration fingerprint stored in (and
// demanded from) every checkpoint: SHA-256 over the canonical JSON of
// v. encoding/json writes struct fields in declaration order and map
// keys sorted, so equal configurations hash equally across processes.
func ConfigHash(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Configurations are plain data structs; a marshal failure is a
		// programming error, not a runtime condition.
		panic(fmt.Sprintf("checkpoint: unhashable config: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

func payloadSHA(p []byte) string {
	sum := sha256.Sum256(p)
	return hex.EncodeToString(sum[:])
}

// Save writes payload to w inside a versioned envelope stamped with
// configHash. payload is marshalled with encoding/json; components keep
// their state types concrete (never `any`), so the bytes round-trip
// exactly.
func Save(w io.Writer, configHash string, payload any) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal payload: %w", err)
	}
	env := envelope{
		Magic:      Magic,
		Version:    Version,
		ConfigHash: configHash,
		PayloadSHA: payloadSHA(body),
		Payload:    body,
	}
	out, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal envelope: %w", err)
	}
	out = append(out, '\n')
	if _, err := w.Write(out); err != nil {
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	return nil
}

// Load reads an envelope from r, validates magic, version, payload
// digest and configuration hash (in that order), and returns the raw
// payload for the caller to unmarshal into its own state type. A
// mismatch surfaces as one of the typed errors above, and no payload
// bytes are returned alongside an error — a failed load must not leave
// the caller holding partially trusted state.
func Load(r io.Reader, wantConfigHash string) (json.RawMessage, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: read: %w", err)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty file", ErrTruncated)
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		if strings.Contains(err.Error(), "unexpected end of JSON input") {
			return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if env.Magic != Magic {
		return nil, fmt.Errorf("%w: magic %q is not %q", ErrCorrupt, env.Magic, Magic)
	}
	if env.Version != Version {
		return nil, fmt.Errorf("%w: file version %d, this binary reads %d", ErrVersionMismatch, env.Version, Version)
	}
	if got := payloadSHA(env.Payload); got != env.PayloadSHA {
		return nil, fmt.Errorf("%w: payload digest %s does not match recorded %s", ErrCorrupt, got[:12], env.PayloadSHA[:min(12, len(env.PayloadSHA))])
	}
	if wantConfigHash != "" && env.ConfigHash != wantConfigHash {
		return nil, fmt.Errorf("%w: checkpoint taken under config %.12s…, resuming under %.12s…", ErrConfigMismatch, env.ConfigHash, wantConfigHash)
	}
	return env.Payload, nil
}
