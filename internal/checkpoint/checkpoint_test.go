package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type testPayload struct {
	Clock uint64  `json:"clock"`
	Items []int   `json:"items"`
	X     float64 `json:"x"`
}

func savedBytes(t *testing.T, hash string, p testPayload) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, hash, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSaveLoadRoundTrip(t *testing.T) {
	want := testPayload{Clock: 123456789, Items: []int{3, 1, 4, 1, 5}, X: 0.1}
	hash := ConfigHash(map[string]int{"n": 50})
	data := savedBytes(t, hash, want)
	raw, err := Load(bytes.NewReader(data), hash)
	if err != nil {
		t.Fatal(err)
	}
	var got testPayload
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Clock != want.Clock || got.X != want.X || len(got.Items) != len(want.Items) {
		t.Fatalf("round trip: %+v vs %+v", got, want)
	}
	// An empty wantConfigHash skips the config check (inspection mode).
	if _, err := Load(bytes.NewReader(data), ""); err != nil {
		t.Fatalf("hash-less load: %v", err)
	}
}

// TestLoadFailureModes is the damage table: every way a checkpoint file
// can be bad maps to its typed error, and no payload is ever returned
// alongside one.
func TestLoadFailureModes(t *testing.T) {
	hash := ConfigHash("config-A")
	good := savedBytes(t, hash, testPayload{Clock: 42, Items: []int{1, 2}})
	cases := []struct {
		name    string
		data    func() []byte
		hash    string
		wantErr error
	}{
		{"empty file", func() []byte { return nil }, hash, ErrTruncated},
		{"truncated mid-envelope", func() []byte { return good[:len(good)/2] }, hash, ErrTruncated},
		{"truncated to one byte", func() []byte { return good[:1] }, hash, ErrTruncated},
		{"payload bit flip", func() []byte {
			d := append([]byte(nil), good...)
			// Flip a digit inside the payload's clock value without
			// breaking JSON syntax.
			i := bytes.Index(d, []byte(`"clock":42`))
			if i < 0 {
				t.Fatal("fixture drift: clock not found")
			}
			d[i+len(`"clock":`)] = '9'
			return d
		}, hash, ErrCorrupt},
		{"wrong magic", func() []byte {
			return bytes.Replace(good, []byte(Magic), []byte("notackpt"), 1)
		}, hash, ErrCorrupt},
		{"garbage", func() []byte { return []byte("this is not json{") }, hash, ErrCorrupt},
		{"version bump", func() []byte {
			var env map[string]json.RawMessage
			if err := json.Unmarshal(good, &env); err != nil {
				t.Fatal(err)
			}
			env["version"] = json.RawMessage("99")
			d, err := json.Marshal(env)
			if err != nil {
				t.Fatal(err)
			}
			return d
		}, hash, ErrVersionMismatch},
		{"config mismatch", func() []byte { return good }, ConfigHash("config-B"), ErrConfigMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw, err := Load(bytes.NewReader(tc.data()), tc.hash)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("err = %v, want %v", err, tc.wantErr)
			}
			if raw != nil {
				t.Fatal("payload returned alongside an error")
			}
		})
	}
}

func TestConfigHashStable(t *testing.T) {
	type cfg struct {
		Seed  uint64
		Loads []float64
	}
	a := ConfigHash(cfg{Seed: 1, Loads: []float64{0.5, 1}})
	b := ConfigHash(cfg{Seed: 1, Loads: []float64{0.5, 1}})
	c := ConfigHash(cfg{Seed: 2, Loads: []float64{0.5, 1}})
	if a != b {
		t.Fatal("equal configs hash differently")
	}
	if a == c {
		t.Fatal("different configs hash equally")
	}
}

func TestSaveFileAtomicAndLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	hash := ConfigHash(7)
	if err := SaveFile(path, hash, testPayload{Clock: 9}); err != nil {
		t.Fatal(err)
	}
	// No temp residue after a successful install.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
	raw, err := LoadFile(path, hash)
	if err != nil {
		t.Fatal(err)
	}
	var p testPayload
	if err := json.Unmarshal(raw, &p); err != nil {
		t.Fatal(err)
	}
	if p.Clock != 9 {
		t.Fatalf("clock %d", p.Clock)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json"), hash); err == nil {
		t.Fatal("load of a missing file succeeded")
	}
}

func TestCampaignCompleteReopen(t *testing.T) {
	dir := t.TempDir()
	hash := ConfigHash("campaign-config")
	c, err := OpenCampaign(dir, hash)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Done("p1"); ok {
		t.Fatal("fresh campaign reports a completed point")
	}
	if err := c.Complete("p1", []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete("p2", "text result"); err != nil {
		t.Fatal(err)
	}

	// Reopen under the same config: both points recorded, results intact.
	c2, err := OpenCampaign(dir, hash)
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := c2.Done("p1")
	if !ok {
		t.Fatal("p1 lost across reopen")
	}
	var xs []int
	if err := json.Unmarshal(raw, &xs); err != nil || len(xs) != 3 {
		t.Fatalf("p1 result: %v %v", xs, err)
	}
	if keys := c2.Keys(); len(keys) != 2 || keys[0] != "p1" || keys[1] != "p2" {
		t.Fatalf("keys: %v", keys)
	}

	// Reopen under a different config must refuse.
	if _, err := OpenCampaign(dir, ConfigHash("other-config")); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("err = %v, want ErrConfigMismatch", err)
	}

	// A corrupt manifest must refuse, not silently start over.
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCampaign(dir, hash); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestCampaignConcurrentComplete(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCampaign(dir, ConfigHash(1))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			done <- c.Complete(strings.Repeat("k", i+1), i)
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := len(c.Keys()); got != 16 {
		t.Fatalf("%d keys recorded, want 16", got)
	}
}
