// Package analytic predicts saturated per-flow throughput from the
// conflict graph alone, with no event-driven simulation: a fixed-point
// computation in the style of the CSMA mean-field literature (Sun et
// al., van de Ven et al.) evaluated over sensing and interference edges
// extracted from the same sparse medium the simulator runs on.
//
// The package has two halves:
//
//   - Extract derives a Graph for a set of unicast flows directly from a
//     *medium.Medium: a symmetric sense edge where one sender can
//     carrier-sense the other, and a directed harm edge where one
//     sender's concurrent transmission cuts the victim link's reception
//     ratio below the paper's l_interf threshold. Because the edges come
//     from the medium's own delivery lists (geo.Grid plus
//     radio.RangeBounder pruning), graph and simulator share one ground
//     truth.
//
//   - Solve runs a damped fixed-point iteration for the stationary air
//     occupancy of each flow under a protocol arm (802.11 DCF or CMAP),
//     reporting per-flow goodput together with the iteration count, the
//     final residual, and whether the iteration converged. The CMAP arm
//     relaxes exposed-terminal conflicts per the paper's deferral rule:
//     a sense edge with no harm in either direction is not deferred to.
//
// The model is an oracle for cross-validation (internal/experiments
// asserts simulator agreement within documented tolerances) and a fast
// screening path: a (scenario × load) grid that takes minutes to
// simulate evaluates in milliseconds, flagging only the points whose
// outcome the closed form cannot already decide.
package analytic
