package analytic

import (
	"math"

	"repro/internal/core"
	"repro/internal/csma"
	"repro/internal/frame"
	"repro/internal/phy"
)

// Arm selects which link layer the solver models.
type Arm int

// The modelled protocol arms.
const (
	// ArmCSMA is 802.11 DCF with carrier sense and link ACKs — the
	// paper's status-quo baseline.
	ArmCSMA Arm = iota
	// ArmCMAP is the conflict-map link layer: deferral only to audible
	// transmissions that actually conflict, so exposed-terminal sense
	// edges are relaxed.
	ArmCMAP
)

// String returns the arm's label.
func (a Arm) String() string {
	if a == ArmCMAP {
		return "CMAP"
	}
	return "CSMA"
}

// Options parameterises Solve. The zero value of each field selects a
// default: the protocol configurations fall back to the simulator's own
// DefaultConfig values, so oracle and simulator model the same MAC
// constants unless a test overrides them.
type Options struct {
	// Arm picks the link layer being modelled.
	Arm Arm
	// CSMA supplies DCF constants for ArmCSMA (zero → csma.DefaultConfig).
	CSMA csma.Config
	// CMAP supplies CMAP constants for ArmCMAP (zero → core.DefaultConfig).
	CMAP core.Config
	// MaxIter bounds the fixed-point iteration (default 4000).
	MaxIter int
	// Tol is the convergence threshold on the max-norm residual of the
	// occupancy update (default 1e-9).
	Tol float64
	// Damping is the step fraction applied per iteration (default 0.5);
	// values in (0, 1] trade speed against stability.
	Damping float64
}

func (o Options) withDefaults() Options {
	if o.Arm == ArmCSMA && o.CSMA == (csma.Config{}) {
		o.CSMA = csma.DefaultConfig()
	}
	if o.Arm == ArmCMAP && o.CMAP == (core.Config{}) {
		o.CMAP = core.DefaultConfig()
	}
	if o.MaxIter == 0 {
		o.MaxIter = 4000
	}
	if o.Tol == 0 {
		o.Tol = 1e-9
	}
	if o.Damping == 0 {
		o.Damping = 0.5
	}
	return o
}

// Result is the solved fixed point.
type Result struct {
	// Arm echoes the modelled link layer.
	Arm Arm
	// FlowMbps is each flow's predicted saturated goodput.
	FlowMbps []float64
	// Occupancy is each flow's stationary fraction of time on air.
	Occupancy []float64
	// Success is each flow's per-data-packet delivery probability at the
	// fixed point (isolation PRR × concurrent-interference survival);
	// reverse-channel losses surface in the backoff, not here.
	Success []float64
	// Iterations is how many update sweeps ran.
	Iterations int
	// Residual is the final max-norm update step — a bound on how far
	// the returned point is from the true fixed point.
	Residual float64
	// Converged reports whether Residual fell below the tolerance
	// before MaxIter (false also on numerical divergence).
	Converged bool
}

// AggregateMbps sums the per-flow goodputs.
func (r *Result) AggregateMbps() float64 {
	var s float64
	for _, v := range r.FlowMbps {
		s += v
	}
	return s
}

// macTiming is the per-flow renewal-cycle timing of one protocol arm,
// in seconds.
type macTiming struct {
	hold []float64                      // channel hold per transmission attempt
	bits []float64                      // payload bits a fully successful attempt delivers
	pkt  []float64                      // airtime of one data packet (the collision window)
	ctrl []float64                      // airtime of the reverse ACK/control reply
	gap  func(i int, p float64) float64 // mean off-air time per cycle at loss probability p
	// lockUnit is how many data frames one contiguous channel hold airs
	// back to back (DCF 1, CMAP Nvpkt). Only the first frame of a hold
	// can find the victim receiver captured by an interferer — phy radios
	// attempt lock solely at signal starts, so once the receiver follows
	// the burst the interferer cannot re-steal it mid-stream.
	lockUnit float64
	// stall, when non-nil, is the per-cycle off-air time the ARQ adds at
	// per-data-frame loss probability loss — CMAP's window-exhaustion
	// retransmission timeout (see cmapTiming).
	stall func(i int, loss float64) float64
	// abortive marks arms whose attempt airs no data when the control
	// handshake fails (CMAP: a lost control reply costs only the control
	// airtime plus the tackwait in gap, never the virtual packet).
	abortive bool
}

// dcfTiming derives DCF cycle timing: hold is DATA + SIFS + ACK, the gap
// is DIFS plus the attempt-averaged backoff of the binary-exponential
// ladder at per-attempt failure probability p.
func dcfTiming(g *Graph, cfg csma.Config) macTiming {
	n := g.N()
	t := macTiming{hold: make([]float64, n), bits: make([]float64, n), pkt: make([]float64, n), ctrl: make([]float64, n), lockUnit: 1}
	ackAir := phy.Airtime(phy.RateByID(cfg.ControlRate), (&frame.Dot11Ack{}).WireSize()).Seconds()
	wire := (&frame.Dot11Data{PayloadLen: uint16(cfg.PayloadBytes)}).WireSize()
	for i := 0; i < n; i++ {
		dataAir := phy.Airtime(g.Rates[i], wire).Seconds()
		t.pkt[i] = dataAir
		t.hold[i] = dataAir + phy.SIFS.Seconds() + ackAir
		t.bits[i] = 8 * float64(cfg.PayloadBytes)
		t.ctrl[i] = ackAir
	}
	// Contention-window ladder: cw doubles per failed attempt up to
	// CWMax, for at most RetryLimit retries.
	cws := make([]float64, 0, cfg.RetryLimit+1)
	cw := cfg.CWMin
	for k := 0; k <= cfg.RetryLimit; k++ {
		cws = append(cws, float64(cw))
		cw = min(2*cw+1, cfg.CWMax)
	}
	slot := phy.SlotTime.Seconds()
	difs := phy.DIFS.Seconds()
	t.gap = func(_ int, p float64) float64 {
		var num, den, w float64
		w = 1
		for _, c := range cws {
			num += w * c / 2
			den += w
			w *= p
		}
		return difs + slot*num/den
	}
	return t
}

// cmapTiming derives CMAP cycle timing: hold is one full virtual packet
// (header + Nvpkt data + trailer), the gap is the ACK exchange (two
// software turnarounds around the ACK airtime) on success, the tackwait
// timeout on failure, plus the attempt-averaged loss-driven contention
// window.
func cmapTiming(g *Graph, cfg core.Config) macTiming {
	n := g.N()
	t := macTiming{hold: make([]float64, n), bits: make([]float64, n), pkt: make([]float64, n), ctrl: make([]float64, n), lockUnit: float64(cfg.Nvpkt), abortive: true}
	ctrlAir := phy.Airtime(phy.RateByID(cfg.ControlRate), (&frame.Control{}).WireSize()).Seconds()
	ackWire := (&frame.Ack{Bitmap: make([]byte, (cfg.Nvpkt+7)/8)}).WireSize()
	ackAir := phy.Airtime(phy.RateByID(cfg.ControlRate), ackWire).Seconds()
	dataWire := (&frame.Data{PayloadLen: uint16(cfg.PayloadBytes)}).WireSize()
	controls := 2.0
	if cfg.DisableTrailers {
		controls = 1
	}
	for i := 0; i < n; i++ {
		dataAir := phy.Airtime(g.Rates[i], dataWire).Seconds()
		t.pkt[i] = dataAir
		t.hold[i] = controls*ctrlAir + float64(cfg.Nvpkt)*dataAir
		t.bits[i] = float64(cfg.Nvpkt) * 8 * float64(cfg.PayloadBytes)
		t.ctrl[i] = ctrlAir
	}
	// The §4.1 software turnaround distribution (90% uniform in
	// [T/2, 2T], 10% in [2T, 5T]) has mean 1.475 T; a successful cycle
	// pays it twice (receiver before the ACK, sender after it).
	meanTA := 1.475 * cfg.Turnaround.Seconds()
	// Loss-driven ladder: CW doubles from CWStart to CWMax while
	// reported loss stays above l_backoff; backoff draws uniform [0, cw].
	cws := []float64{}
	for cw := cfg.CWStart.Seconds(); ; cw *= 2 {
		if cwMax := cfg.CWMax.Seconds(); cw >= cwMax {
			cws = append(cws, cwMax)
			break
		}
		cws = append(cws, cw)
	}
	tack := cfg.TackWait.Seconds()
	t.gap = func(_ int, p float64) float64 {
		num, den, w := 0.0, 1.0, 1.0 // level 0: no contention window
		for _, c := range cws {
			w *= p
			num += w * c / 2
			den += w
		}
		return (1-p)*(2*meanTA+ackAir) + p*tack + num/den
	}
	// Window-exhaustion stall: the ACK bitmap spans only one virtual
	// packet past the cumulative point, so once a loss stalls that point
	// the whole Nwindow-vpkt send window drains into unackable packets
	// and the sender sits out a retransmission timeout drawn from
	// [τ_max/2, τ_max] with τ_max ≈ the outstanding airtime (§3.3,
	// Node.trySend). Amortised per cycle: one such stall (mean ≈ 0.75
	// of the full-window airtime) every 1/(Nvpkt·loss) fresh virtual
	// packets until the stall begins plus Nwindow/(1−loss) to drain.
	t.stall = func(i int, loss float64) float64 {
		if loss <= 0 || loss >= 1 {
			return 0
		}
		window := float64(cfg.Nwindow*cfg.Nvpkt) * t.pkt[i]
		cycles := 1/(float64(cfg.Nvpkt)*loss) + float64(cfg.Nwindow)/(1-loss)
		return 0.75 * window / cycles
	}
	return t
}

// concEdge is one interferer a flow does not defer to, with its stored
// ordering-split reception ratios.
type concEdge struct {
	j     int
	inter interference
}

// armSets maps the graph's edges onto per-arm defer neighbourhoods and
// concurrent-interferer lists:
//
//   - CSMA defers to every sense edge (carrier sense is indiscriminate,
//     which is exactly the exposed-terminal problem).
//   - CMAP defers only to sense edges that conflict in at least one
//     direction — the defer-table rules (§3.2) — so exposed-terminal
//     edges are relaxed.
//   - Every other flow whose stored interference ratios are not all
//     identity becomes a concurrent edge: hidden interferers the sender
//     cannot hear, and (under CMAP's relaxation) audible peers whose
//     residual interference falls below the defer threshold but still
//     costs bits on the data or reverse channel.
func armSets(g *Graph, arm Arm) (deferAdj [][]bool, conc [][]concEdge) {
	n := g.N()
	deferAdj = make([][]bool, n)
	conc = make([][]concEdge, n)
	for i := 0; i < n; i++ {
		deferAdj[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for _, j := range g.sense[i] {
			if arm == ArmCSMA || g.Harms(i, j) || g.Harms(j, i) {
				deferAdj[i][j] = true
				deferAdj[j][i] = true
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || deferAdj[i][j] || g.inter[i][j] == noInterference {
				continue
			}
			conc[i] = append(conc[i], concEdge{j: j, inter: g.inter[i][j]})
		}
	}
	return deferAdj, conc
}

// cliqueCover greedily partitions each flow's defer neighbourhood into
// cliques of the defer graph. The fixed point treats each clique as one
// exclusive channel (exact for an isolated clique) and distinct cliques
// as independent — the standard clique-cover closure of the mean-field
// CSMA model.
func cliqueCover(deferAdj [][]bool) [][][]int {
	n := len(deferAdj)
	cover := make([][][]int, n)
	for i := 0; i < n; i++ {
		var cliques [][]int
	next:
		for j := 0; j < n; j++ {
			if !deferAdj[i][j] {
				continue
			}
			for k, c := range cliques {
				ok := true
				for _, m := range c {
					if !deferAdj[j][m] {
						ok = false
						break
					}
				}
				if ok {
					cliques[k] = append(c, j)
					continue next
				}
			}
			cliques = append(cliques, []int{j})
		}
		cover[i] = cliques
	}
	return cover
}

// overlapProb is the probability one frame of airtime w overlaps a
// concurrent interferer of occupancy x and hold time T: the complement
// of the interferer being idle when the frame starts and starting
// nothing during it (renewal approximation of the staggered-overlap
// integral).
func overlapProb(x, w, T float64) float64 {
	if x >= 1 {
		return 1
	}
	return 1 - (1-x)*math.Exp(-x*w/T)
}

// blendRatio folds one interferer's channelRatios into the expected
// conditional reception ratio of a victim frame that overlaps it, given
// the interferer's occupancy xj, the victim's own occupancy xi, the
// overlap probability q, and lockUnit data frames per contiguous victim
// hold:
//
//   - With probability xj/q the interferer was already on air when the
//     frame started. Within that ordering the interferer actually holds
//     the receiver's lock only if its frame both locked (lockJ) and
//     arrived while the receiver was free (≈ 1−xi, the victim stream
//     was not being followed) — and only the first of the hold's
//     lockUnit frames can be met by a stolen lock, because the receiver
//     re-locks each subsequent frame the instant the previous one ends.
//     The remainder of the ordering is a plain lock through
//     interference (ii).
//   - Otherwise the interferer started mid-frame: the receiver already
//     held the victim's frame, and only payload bits are at risk (vf).
func blendRatio(c channelRatios, xj, xi, q, lockUnit float64) float64 {
	wStart := 0.0
	if q > 0 {
		wStart = math.Min(xj/q, 1)
	}
	held := clamp01(c.lockJ * (1 - xi) / lockUnit)
	rStart := held*c.cap + (1-held)*c.ii
	return (1-wStart)*c.vf + wStart*rStart
}

// concSurvival folds flow i's concurrent interferers into three
// survival probabilities against a snapshot of the occupancies x: sd
// for one data frame, st for a short control frame on the same forward
// channel (CMAP's trailer, which gates ACK generation at the receiver),
// and sc for the reverse ACK/control reply. Each interferer's
// lock-ordering ratio decomposition is blended by its duty cycle
// (blendRatio) and applied over the probability the two actually
// overlap.
func concSurvival(conc []concEdge, x []float64, t macTiming, i int) (sd, st, sc float64) {
	sd, st, sc = 1, 1, 1
	xi := x[i]
	for _, e := range conc {
		xj := x[e.j]
		qd := overlapProb(xj, t.pkt[i], t.hold[e.j])
		rd := blendRatio(e.inter.data, xj, xi, qd, t.lockUnit)
		sd *= 1 - qd*(1-rd)
		qt := overlapProb(xj, t.ctrl[i], t.hold[e.j])
		rt := blendRatio(e.inter.data, xj, xi, qt, t.lockUnit)
		st *= 1 - qt*(1-rt)
		// The reverse reply is a single short frame; its receiver (the
		// victim's sender) re-arms every cycle, so lockUnit is 1.
		rr := blendRatio(e.inter.rev, xj, xi, qt, 1)
		sc *= 1 - qt*(1-rr)
	}
	return sd, st, sc
}

// bestResponse solves flow i's scalar occupancy equation given its
// neighbours' occupancies, frozen as per-clique busy sums S_k:
//
//	x = ρ·(1−x)·Π_k max(0, 1 − S_k/(1−x))
//
// The right-hand side is strictly decreasing in x wherever it is
// positive and the left-hand side strictly increasing, so the root is
// unique; 60 bisection steps pin it far below the solver tolerance.
func bestResponse(rho float64, sums []float64) float64 {
	excess := func(x float64) float64 {
		idle := 1 - x
		v := rho * idle
		for _, s := range sums {
			v *= math.Max(0, 1-s/idle)
		}
		return v - x
	}
	lo, hi := 0.0, 1.0
	for it := 0; it < 60; it++ {
		mid := (lo + hi) / 2
		if excess(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Solve runs a damped best-response iteration for the stationary
// per-flow air occupancy x. Each sweep solves every flow's scalar
// balance equation
//
//	x_i = ρ_i·(1−x_i)·Π_cliques max(0, 1 − Σ_{j∈C} x_j/(1−x_i))
//
// exactly (bestResponse) against a snapshot of the other flows, where
// ρ_i = hold_i/gap_i(p_i) is the flow's attempt intensity and each
// clique of its defer neighbourhood is treated as one exclusive channel.
// On an isolated clique the fixed point is exactly the product-form
// x_i = ρ_i/(1+Σ_j ρ_j); beyond cliques it is the standard mean-field
// approximation. Concurrent interferers — hidden ones, and under CMAP
// the relaxed audible ones — degrade the data, trailer and reverse
// channels through concSurvival and feed back through
// p_i = 1 − s_i·ctrlOK_i, inflating the contention window the way lost
// ACKs do in the simulator; CMAP additionally pays the
// window-exhaustion stall (macTiming.stall) in its off-air time. The
// outer loop damps the step and adapts the damping factor (halving it
// when the residual grows) because best-response dynamics on dense
// graphs oscillate at full step size. Goodput is
// (x_i/hold_i)·bits_i·s_i for DCF; the CMAP arm instead multiplies by
// the handshake probability and the ARQ duplicate efficiency
// (arqEfficiency), which subsume s_i.
func Solve(g *Graph, opt Options) *Result {
	opt = opt.withDefaults()
	n := g.N()
	var timing macTiming
	if opt.Arm == ArmCMAP {
		timing = cmapTiming(g, opt.CMAP)
	} else {
		timing = dcfTiming(g, opt.CSMA)
	}
	deferAdj, conc := armSets(g, opt.Arm)
	cover := cliqueCover(deferAdj)

	x := make([]float64, n)
	xNew := make([]float64, n)
	s := make([]float64, n)
	ctrlOK := make([]float64, n)
	hold := make([]float64, n)
	var sums []float64
	res := &Result{Arm: opt.Arm, FlowMbps: make([]float64, n), Occupancy: x, Success: s}
	damp, prevResid := opt.Damping, math.Inf(1)
	for it := 1; it <= opt.MaxIter; it++ {
		res.Iterations = it
		res.Residual = 0
		diverged := false
		// Jacobi-style sweep: every best response reads the previous
		// iterate, so symmetric graphs stay exactly symmetric.
		for i := 0; i < n; i++ {
			sd, st, sc := concSurvival(conc[i], x, timing, i)
			s[i] = g.IsoPRR[i] * sd
			// The handshake that completes an attempt: for DCF the link
			// ACK; for CMAP the trailer (forward channel, triggers the
			// ACK) and the ACK reply both.
			ctrlOK[i] = sc
			if timing.abortive {
				ctrlOK[i] = st * sc
			}
			p := 1 - s[i]*ctrlOK[i]
			// An abortive arm spends the full hold only when the control
			// handshake succeeds; a failed one costs just the control
			// airtime (the tackwait timeout is in gap's p-term).
			hold[i] = timing.hold[i]
			off := timing.gap(i, p)
			if timing.abortive {
				hold[i] = ctrlOK[i]*timing.hold[i] + (1-ctrlOK[i])*timing.ctrl[i]
			}
			if timing.stall != nil {
				off += timing.stall(i, 1-s[i])
			}
			rho := hold[i] / off
			sums = sums[:0]
			for _, c := range cover[i] {
				var busy float64
				for _, j := range c {
					busy += x[j]
				}
				sums = append(sums, busy)
			}
			v := bestResponse(rho, sums)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				diverged = true
				break
			}
			xNew[i] = v
			if d := math.Abs(v - x[i]); d > res.Residual {
				res.Residual = d
			}
		}
		if diverged {
			res.Converged = false
			break
		}
		if res.Residual <= opt.Tol {
			res.Converged = true
			break
		}
		if res.Residual > prevResid {
			damp = math.Max(damp/2, 1.0/64)
		} else {
			damp = math.Min(damp*1.1, opt.Damping)
		}
		prevResid = res.Residual
		for i := 0; i < n; i++ {
			x[i] += damp * (xNew[i] - x[i])
		}
	}
	for i := 0; i < n; i++ {
		delivered := s[i]
		if timing.abortive {
			// Only handshake-complete attempts air data at all, and the
			// attempt rate is occupancy over the abort-weighted hold.
			// Per-frame loss further bleeds goodput through the ARQ
			// duplicate amplifier (arqEfficiency).
			delivered = arqEfficiency(1-s[i]) * ctrlOK[i]
		}
		res.FlowMbps[i] = x[i] / hold[i] * timing.bits[i] * delivered / 1e6
	}
	return res
}

// arqEfficiency is the fraction of CMAP's transmitted data frames that
// deliver a not-yet-delivered packet, at per-frame loss probability
// loss. CMAP's selective-repeat window is acknowledged by a cumulative
// sequence plus a bitmap that spans only one virtual packet past the
// cumulative point (frame.Ack), so a straggler loss leaves
// delivered-but-unackable packets beyond that horizon and the sender
// blindly retransmits them — duplicate airtime that peaks under light
// loss and vanishes under heavy loss, where retransmissions carry
// genuinely undelivered packets. The duplicate count per lost frame,
// D(loss) = 6.7·(1−loss)⁵, is calibrated against the simulator's
// duplicate-delivery counters in the hidden-terminal regime (≈4.5 dups
// per loss at 8% loss, ≈0.01 at 74%); the accounting identity
// fresh/sent = (1−loss) − loss·D(loss) then gives the efficiency.
func arqEfficiency(loss float64) float64 {
	if loss <= 0 {
		return 1
	}
	rem := 1 - loss
	dupsPerLoss := 6.7 * rem * rem * rem * rem * rem
	return math.Max(0, rem-loss*dupsPerLoss)
}
