package analytic

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/topo"
)

// TestSyntheticEdgeAPI pins the hand-built graph surface: sense edges
// are symmetric and idempotent, harm edges directed, self-edges
// ignored, and the counters see through duplicates.
func TestSyntheticEdgeAPI(t *testing.T) {
	g := NewSynthetic(4)
	if g.N() != 4 {
		t.Fatalf("N() = %d, want 4", g.N())
	}
	if g.SenseEdges() != 0 || g.HarmEdges() != 0 {
		t.Fatal("fresh graph must have no edges")
	}

	g.AddSense(0, 1)
	g.AddSense(1, 0) // duplicate, reversed
	g.AddSense(2, 2) // self, ignored
	if !g.Sensed(0, 1) || !g.Sensed(1, 0) {
		t.Fatal("sense edge must be symmetric")
	}
	if g.Sensed(0, 2) || g.Sensed(2, 2) {
		t.Fatal("phantom sense edges")
	}
	if got := g.SenseEdges(); got != 1 {
		t.Fatalf("SenseEdges = %d, want 1", got)
	}

	g.AddHarm(0, 3)
	g.AddHarm(0, 3) // duplicate
	g.AddHarm(1, 1) // self, ignored
	if !g.Harms(0, 3) {
		t.Fatal("harm edge 3→0 missing")
	}
	if g.Harms(3, 0) {
		t.Fatal("harm must stay directed")
	}
	if got := g.HarmEdges(); got != 1 {
		t.Fatalf("HarmEdges = %d, want 1", got)
	}
}

// TestSyntheticHarmRatios: AddHarm must force the victim's data channel
// to a full kill under concurrency (interferer-first ratio 0) while
// leaving the victim-locked-first path and the reverse channel alone —
// synthetic harm models a hidden terminal, not a jammed ACK.
func TestSyntheticHarmRatios(t *testing.T) {
	g := NewSynthetic(2)
	dVF, dIF, rVF, rIF := g.Ratios(0, 1)
	if dVF != 1 || dIF != 1 || rVF != 1 || rIF != 1 {
		t.Fatalf("no-edge ratios = %v %v %v %v, want all 1", dVF, dIF, rVF, rIF)
	}
	g.AddHarm(0, 1)
	dVF, dIF, rVF, rIF = g.Ratios(0, 1)
	if dVF != 0 || dIF != 0 {
		t.Fatalf("harmed data ratios = %v %v, want 0 0", dVF, dIF)
	}
	if rVF != 1 || rIF != 1 {
		t.Fatalf("reverse ratios changed to %v %v after data harm", rVF, rIF)
	}
	// The victim's view of the interferer is untouched.
	if dVF, dIF, _, _ := g.Ratios(1, 0); dVF != 1 || dIF != 1 {
		t.Fatalf("interferer's own ratios changed: %v %v", dVF, dIF)
	}
}

// TestExtractExposedPair: an exposed pair's senders hear each other, so
// the extractor must produce a sense edge; the pair was drawn so each
// cross-signal is weak, so neither flow should classify the other as an
// interferer.
func TestExtractExposedPair(t *testing.T) {
	tb := topo.NewTestbed(50, 42)
	m := tb.Build(sim.NewScheduler(), sim.NewRNG(42).Stream(1))
	pairs := tb.ExposedPairs(sim.NewRNG(42^0xf16), 3)
	if len(pairs) == 0 {
		t.Skip("no exposed pairs on this seed")
	}
	for _, p := range pairs {
		g, err := Extract(m, []topo.Link{p.A, p.B}, ExtractConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !g.Sensed(0, 1) {
			t.Errorf("exposed pair %v/%v: senders must sense each other", p.A, p.B)
		}
		if g.Harms(0, 1) && g.Harms(1, 0) {
			t.Errorf("exposed pair %v/%v: mutual harm contradicts the draw constraints", p.A, p.B)
		}
	}
}

// TestExtractHiddenPair: hidden pairs have out-of-range senders with
// strong interference at both receivers — no sense edge, harm both ways.
func TestExtractHiddenPair(t *testing.T) {
	tb := topo.NewTestbed(50, 42)
	m := tb.Build(sim.NewScheduler(), sim.NewRNG(42).Stream(1))
	pairs := tb.HiddenPairs(sim.NewRNG(42^0xf15), 3)
	if len(pairs) == 0 {
		t.Skip("no hidden pairs on this seed")
	}
	sawHarm := false
	for _, p := range pairs {
		shared := p.A.Src == p.B.Src || p.A.Src == p.B.Dst ||
			p.A.Dst == p.B.Src || p.A.Dst == p.B.Dst
		if shared {
			continue
		}
		g, err := Extract(m, []topo.Link{p.A, p.B}, ExtractConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if g.Sensed(0, 1) {
			t.Errorf("hidden pair %v/%v: out-of-range senders must not sense", p.A, p.B)
		}
		if g.Harms(0, 1) || g.Harms(1, 0) {
			sawHarm = true
		}
	}
	if !sawHarm {
		t.Error("no hidden pair produced a harm edge — l_interf classification inert")
	}
}

// TestExtractSharedNode: flows sharing an endpoint serialise on one
// radio, so the extractor must emit both a sense edge and mutual harm
// regardless of geometry.
func TestExtractSharedNode(t *testing.T) {
	tb := topo.NewTestbed(50, 42)
	m := tb.Build(sim.NewScheduler(), sim.NewRNG(42).Stream(1))
	pairs := tb.InRangePairs(sim.NewRNG(42^0xf13), 1)
	if len(pairs) == 0 {
		t.Skip("no pairs on this seed")
	}
	a := pairs[0].A
	// Second flow reuses a's source as its destination.
	b := topo.Link{Src: pairs[0].B.Src, Dst: a.Src}
	if b.Src == b.Dst {
		b.Src = pairs[0].B.Dst
	}
	g, err := Extract(m, []topo.Link{a, b}, ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Sensed(0, 1) {
		t.Error("shared-node flows must sense each other")
	}
	if !g.Harms(0, 1) || !g.Harms(1, 0) {
		t.Error("shared-node flows must harm each other both ways")
	}
}

// TestExtractRejectsInvalidFlows: self-loops and out-of-range node IDs
// must error rather than index out of bounds or solve garbage.
func TestExtractRejectsInvalidFlows(t *testing.T) {
	tb := topo.NewTestbed(50, 42)
	m := tb.Build(sim.NewScheduler(), sim.NewRNG(42).Stream(1))
	for _, bad := range []topo.Link{
		{Src: 3, Dst: 3},
		{Src: -1, Dst: 2},
		{Src: 0, Dst: 50},
	} {
		if _, err := Extract(m, []topo.Link{bad}, ExtractConfig{}); err == nil {
			t.Errorf("Extract accepted invalid flow %v", bad)
		}
	}
}

// TestExtractRatioBounds sweeps every ordered pair of a multi-flow
// extraction and checks all conditional ratios and isolation PRRs land
// in [0, 1] — the solver treats them as probabilities.
func TestExtractRatioBounds(t *testing.T) {
	tb := topo.NewTestbed(50, 42)
	m := tb.Build(sim.NewScheduler(), sim.NewRNG(42).Stream(1))
	rng := sim.NewRNG(42 ^ 0xbb)
	var flows []topo.Link
	for _, p := range tb.InRangePairs(rng, 3) {
		flows = append(flows, p.A, p.B)
	}
	for _, p := range tb.HiddenPairs(rng, 2) {
		flows = append(flows, p.A, p.B)
	}
	if len(flows) < 4 {
		t.Skip("not enough flows on this seed")
	}
	g, err := Extract(m, flows, ExtractConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range flows {
		if g.IsoPRR[i] < 0 || g.IsoPRR[i] > 1 {
			t.Fatalf("IsoPRR[%d] = %v out of [0,1]", i, g.IsoPRR[i])
		}
		for j := range flows {
			if i == j {
				continue
			}
			dVF, dIF, rVF, rIF := g.Ratios(i, j)
			for _, v := range []float64{dVF, dIF, rVF, rIF} {
				if v < 0 || v > 1 {
					t.Fatalf("ratio out of [0,1] for pair (%d,%d): %v %v %v %v", i, j, dVF, dIF, rVF, rIF)
				}
			}
		}
	}
	// The extracted graph must also solve cleanly under both arms.
	for _, arm := range []Arm{ArmCSMA, ArmCMAP} {
		r := Solve(g, Options{Arm: arm})
		if !r.Converged {
			t.Fatalf("%v: extracted graph did not converge (residual %.2e)", arm, r.Residual)
		}
	}
}

// TestExtractConfigDefaults: the zero config must behave identically to
// the spelled-out defaults.
func TestExtractConfigDefaults(t *testing.T) {
	c := ExtractConfig{}.withDefaults()
	if c.PayloadBytes != 1400 {
		t.Fatalf("default PayloadBytes = %d, want 1400", c.PayloadBytes)
	}
	if c.HarmLossFrac != 0.5 {
		t.Fatalf("default HarmLossFrac = %v, want 0.5", c.HarmLossFrac)
	}
}
