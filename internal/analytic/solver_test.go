package analytic

import (
	"math"
	"math/rand"
	"testing"
)

// TestArmString pins the labels experiment tables print.
func TestArmString(t *testing.T) {
	if ArmCSMA.String() != "CSMA" || ArmCMAP.String() != "CMAP" {
		t.Fatalf("arm labels: %q, %q", ArmCSMA.String(), ArmCMAP.String())
	}
}

// TestSingleFlowRenewal checks the degenerate one-flow fixed point: no
// conflicts, so occupancy is hold/(hold+gap(0)) and goodput sits near
// (but below) the raw bit-rate for both arms.
func TestSingleFlowRenewal(t *testing.T) {
	for _, arm := range []Arm{ArmCSMA, ArmCMAP} {
		r := Solve(NewSynthetic(1), Options{Arm: arm})
		if !r.Converged {
			t.Fatalf("%v: no convergence (residual %.2e)", arm, r.Residual)
		}
		if r.Iterations <= 0 || r.Residual > 1e-9 {
			t.Fatalf("%v: iterations=%d residual=%.2e", arm, r.Iterations, r.Residual)
		}
		if got := r.AggregateMbps(); got < 4.5 || got > 6 {
			t.Fatalf("%v single 6 Mb/s link: goodput %.3f Mb/s, want ≈5–5.6", arm, got)
		}
		if x := r.Occupancy[0]; x < 0.85 || x > 1 {
			t.Fatalf("%v single-flow occupancy %.3f, want near 1", arm, x)
		}
		if s := r.Success[0]; s != 1 {
			t.Fatalf("%v isolated flow success %.3f, want 1", arm, s)
		}
	}
}

// TestIsolationPRRScalesGoodput: halving the isolation PRR of an
// isolated DCF flow must cut delivered goodput (retries burn airtime).
func TestIsolationPRRScalesGoodput(t *testing.T) {
	clean := Solve(NewSynthetic(1), Options{Arm: ArmCSMA})
	lossy := NewSynthetic(1)
	lossy.IsoPRR[0] = 0.5
	r := Solve(lossy, Options{Arm: ArmCSMA})
	if !r.Converged {
		t.Fatal("lossy flow did not converge")
	}
	if r.AggregateMbps() >= clean.AggregateMbps()*0.75 {
		t.Fatalf("iso PRR 0.5: goodput %.3f vs clean %.3f — loss did not bite", r.AggregateMbps(), clean.AggregateMbps())
	}
}

// symmetricRing builds n flows in a cycle where each flow fully
// conflicts (sense + mutual harm) with its two neighbours.
func symmetricRing(n int) *Graph {
	g := NewSynthetic(n)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		g.AddSense(i, j)
		g.AddHarm(i, j)
		g.AddHarm(j, i)
	}
	return g
}

// TestSymmetryPreserved: on vertex-transitive graphs every flow must
// solve to exactly the same occupancy and goodput — the Jacobi sweep
// reads only the previous iterate, so symmetry cannot drift.
func TestSymmetryPreserved(t *testing.T) {
	for _, arm := range []Arm{ArmCSMA, ArmCMAP} {
		for _, n := range []int{3, 5, 8} {
			r := Solve(symmetricRing(n), Options{Arm: arm})
			if !r.Converged {
				t.Fatalf("%v ring(%d): no convergence", arm, n)
			}
			for i := 1; i < n; i++ {
				if math.Abs(r.FlowMbps[i]-r.FlowMbps[0]) > 1e-6 {
					t.Fatalf("%v ring(%d): flow %d got %.6f, flow 0 got %.6f", arm, n, i, r.FlowMbps[i], r.FlowMbps[0])
				}
				if math.Abs(r.Occupancy[i]-r.Occupancy[0]) > 1e-9 {
					t.Fatalf("%v ring(%d): occupancy diverged between symmetric flows", arm, n)
				}
			}
		}
	}
}

// TestCliqueExact: an isolated clique is the one topology the
// mean-field model solves in closed form, x_i = ρ/(1+kρ) for k
// identical flows. Derive ρ from the single-flow solution (where
// x = ρ/(1+ρ)) and check k-cliques against it.
func TestCliqueExact(t *testing.T) {
	for _, arm := range []Arm{ArmCSMA, ArmCMAP} {
		single := Solve(NewSynthetic(1), Options{Arm: arm})
		x1 := single.Occupancy[0]
		rho := x1 / (1 - x1)
		for _, k := range []int{2, 3, 5} {
			g := NewSynthetic(k)
			for i := 0; i < k; i++ {
				for j := i + 1; j < k; j++ {
					g.AddSense(i, j)
					g.AddHarm(i, j)
					g.AddHarm(j, i)
				}
			}
			r := Solve(g, Options{Arm: arm})
			if !r.Converged {
				t.Fatalf("%v clique(%d): no convergence", arm, k)
			}
			want := rho / (1 + float64(k)*rho)
			for i := 0; i < k; i++ {
				if math.Abs(r.Occupancy[i]-want) > 1e-6 {
					t.Fatalf("%v clique(%d): x[%d]=%.8f, closed form %.8f", arm, k, i, r.Occupancy[i], want)
				}
			}
		}
	}
}

// TestMonotoneUnderConflictEdges: more conflict can only hurt the flows
// it constrains. The exact statement holds where the greedy clique
// cover is stable — growing one clique a vertex at a time, every member
// already inside is monotone non-increasing. Under arbitrary edge
// orders the cover re-partitions between steps (two neighbours merging
// into one clique replaces a sum constraint with a max), which can lift
// a flow several percent for one step, so the random-order sweep asserts
// a 10% per-step slack on each new edge's endpoints. The aggregate is
// deliberately not asserted per step — it genuinely is not monotone
// even physically (a flow joining a star as a spoke steals from the hub
// but itself transmits most of the time) — but the complete conflict
// graph must end far below the independent start, since every flow then
// shares a single channel.
func TestMonotoneUnderConflictEdges(t *testing.T) {
	conflict := func(g *Graph, i, j int) {
		g.AddSense(i, j)
		g.AddHarm(i, j)
		g.AddHarm(j, i)
	}
	const n = 7
	for _, arm := range []Arm{ArmCSMA, ArmCMAP} {
		// Clique growth: absorb vertex k by connecting it to all of
		// 0..k-1, then check every prior member dropped (exactly).
		g := NewSynthetic(n)
		prev := Solve(g, Options{Arm: arm})
		for k := 1; k < n; k++ {
			for j := 0; j < k; j++ {
				conflict(g, j, k)
			}
			r := Solve(g, Options{Arm: arm})
			if !r.Converged {
				t.Fatalf("%v clique(%d): no convergence", arm, k+1)
			}
			for j := 0; j < k; j++ {
				if r.FlowMbps[j] > prev.FlowMbps[j]+1e-6 {
					t.Fatalf("%v: clique member %d rose from %.6f to %.6f absorbing vertex %d",
						arm, j, prev.FlowMbps[j], r.FlowMbps[j], k)
				}
			}
			prev = r
		}

		// Random order: endpoints of each new edge within a 10%
		// cover-re-partition slack, strict drop end to end.
		type edge struct{ i, j int }
		var edges []edge
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				edges = append(edges, edge{i, j})
			}
		}
		rng := rand.New(rand.NewSource(7))
		rng.Shuffle(len(edges), func(a, b int) { edges[a], edges[b] = edges[b], edges[a] })
		g = NewSynthetic(n)
		start := Solve(g, Options{Arm: arm})
		prev = start
		for _, e := range edges {
			conflict(g, e.i, e.j)
			r := Solve(g, Options{Arm: arm})
			if !r.Converged {
				t.Fatalf("%v: no convergence after edge %v", arm, e)
			}
			for _, end := range []int{e.i, e.j} {
				if r.FlowMbps[end] > prev.FlowMbps[end]*1.10+1e-6 {
					t.Fatalf("%v: endpoint flow %d rose from %.6f to %.6f after conflict edge %v",
						arm, end, prev.FlowMbps[end], r.FlowMbps[end], e)
				}
			}
			prev = r
		}
		if prev.AggregateMbps() > start.AggregateMbps()/float64(n)*1.5 {
			t.Fatalf("%v: complete conflict graph still delivers %.3f of independent %.3f",
				arm, prev.AggregateMbps(), start.AggregateMbps())
		}
	}
}

// TestConvergenceRandomGraphs: seeded random topologies — sense edges
// with probability 0.3, each turned into a conflict with probability
// 0.5, plus one-way hidden harm edges — must converge within the
// iteration cap under both arms, with the residual below tolerance.
func TestConvergenceRandomGraphs(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(9)
		g := NewSynthetic(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				switch {
				case rng.Float64() < 0.3:
					g.AddSense(i, j)
					if rng.Float64() < 0.5 {
						g.AddHarm(i, j)
						g.AddHarm(j, i)
					}
				case rng.Float64() < 0.15: // hidden: harm without sense
					g.AddHarm(i, j)
				}
			}
		}
		for _, arm := range []Arm{ArmCSMA, ArmCMAP} {
			opt := Options{Arm: arm}
			r := Solve(g, opt)
			if !r.Converged {
				t.Fatalf("seed %d n=%d %v: not converged after %d iterations (residual %.2e)",
					seed, n, arm, r.Iterations, r.Residual)
			}
			if r.Residual > 1e-9 {
				t.Fatalf("seed %d %v: residual %.2e above tolerance", seed, arm, r.Residual)
			}
			for i, v := range r.FlowMbps {
				if v < 0 || math.IsNaN(v) {
					t.Fatalf("seed %d %v: flow %d goodput %v", seed, arm, i, v)
				}
				if x := r.Occupancy[i]; x < 0 || x > 1 {
					t.Fatalf("seed %d %v: occupancy[%d]=%v out of [0,1]", seed, arm, i, x)
				}
			}
		}
	}
}

// TestIterationCapReported: with the cap forced to 1 the solver must
// report non-convergence rather than a silent bad answer.
func TestIterationCapReported(t *testing.T) {
	g := symmetricRing(5)
	r := Solve(g, Options{Arm: ArmCSMA, MaxIter: 1})
	if r.Converged {
		t.Fatal("one iteration on a ring cannot have converged")
	}
	if r.Iterations != 1 {
		t.Fatalf("iterations = %d, want 1", r.Iterations)
	}
}

// TestArqEfficiencyShape pins the CMAP duplicate amplifier's contract:
// identity at zero loss, zero at total loss, always within [0, 1], and
// worse than the raw survival everywhere in between (duplicates only
// ever waste airtime).
func TestArqEfficiencyShape(t *testing.T) {
	if got := arqEfficiency(0); got != 1 {
		t.Fatalf("arqEfficiency(0) = %v, want 1", got)
	}
	if got := arqEfficiency(1); got != 0 {
		t.Fatalf("arqEfficiency(1) = %v, want 0", got)
	}
	for loss := 0.01; loss < 1; loss += 0.01 {
		eta := arqEfficiency(loss)
		if eta < 0 || eta > 1 {
			t.Fatalf("arqEfficiency(%.2f) = %v out of [0,1]", loss, eta)
		}
		if eta > 1-loss {
			t.Fatalf("arqEfficiency(%.2f) = %v above raw survival %v", loss, eta, 1-loss)
		}
	}
}

// TestOverlapProbBounds: the renewal overlap probability is a
// probability, monotone in the interferer's occupancy, and exactly x at
// a vanishing window.
func TestOverlapProbBounds(t *testing.T) {
	prev := 0.0
	for x := 0.0; x <= 1.0001; x += 0.05 {
		q := overlapProb(x, 0, 0.002)
		if q < prev-1e-12 || q < 0 || q > 1 {
			t.Fatalf("overlapProb(%.2f, 0, 2ms) = %v (prev %v)", x, q, prev)
		}
		if math.Abs(q-math.Min(x, 1)) > 1e-12 {
			t.Fatalf("zero-width window: overlapProb(%.2f) = %v, want x", x, q)
		}
		prev = q
	}
	if q := overlapProb(0.5, 0.002, 0.002); q <= 0.5 || q > 1 {
		t.Fatalf("finite window must add overlap risk: got %v", q)
	}
}
