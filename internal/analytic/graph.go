package analytic

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/frame"
	"repro/internal/medium"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/topo"
)

// Graph is a conflict graph over unicast flows. Vertices are flows;
// a symmetric sense edge joins two flows whose senders can hear each
// other (or which share a node and therefore time-share a radio), and a
// directed harm edge j→i records that j's concurrent transmission cuts
// flow i's reception ratio below the interferer threshold. The solver
// maps these onto per-arm defer and hidden-collision sets.
type Graph struct {
	// Flows records the node-level flow behind each vertex; nil for
	// synthetic graphs built with NewSynthetic.
	Flows []topo.Link
	// IsoPRR[i] is flow i's packet reception ratio in isolation — the
	// §5.1 "transmitting in isolation" measurement, computed from the
	// medium's stored gain.
	IsoPRR []float64
	// Rates[i] is flow i's data bit-rate.
	Rates []phy.Rate

	sense [][]int // symmetric adjacency, each list sorted ascending
	harm  [][]int // harm[i] lists interferers of flow i, sorted ascending

	// inter[i][j] holds the conditional reception ratios of victim i
	// under interferer j; all-ones (no interaction) by default.
	inter [][]interference
}

// channelRatios is the lock-ordering decomposition of one interferer's
// effect on one received channel, each ratio in [0, 1] relative to that
// channel's isolation PRR. The decomposition mirrors the simulator's
// receiver (phy.Radio) case by case:
//
//   - vf (victim-first): the receiver locked the victim's frame before
//     the interferer arrived, so only payload bit errors accrue over
//     the interference segments.
//   - ii (idle-interfered): the victim's frame arrives with the
//     interferer on air but not holding the lock (phy radios attempt
//     lock only on signal starts, so a mid-air interferer that missed
//     its own lock window never grabs the radio later) — a plain lock
//     attempt at the degraded SINR, then the same payload errors.
//   - cap (captured): the interferer holds the lock and the victim's
//     frame must steal it at the capture margin (phy.Radio.tryCapture).
//   - lockJ: the probability the interferer's own frame acquires this
//     receiver when it arrives while the receiver is unlocked — the
//     gate between the ii and cap cases.
type channelRatios struct {
	vf, ii, cap, lockJ float64
}

// identityRatios is the no-interaction value.
var identityRatios = channelRatios{vf: 1, ii: 1, cap: 1, lockJ: 0}

// saturated is the composite ratio with the interferer always already
// on air and free to lock — the ordering mix a saturated concurrency
// measurement sees, and therefore the paper's l_interf classification
// basis.
func (c channelRatios) saturated() float64 {
	return c.lockJ*c.cap + (1-c.lockJ)*c.ii
}

// interference bundles the per-channel ratio decompositions of one
// ordered flow pair (victim, interferer).
type interference struct {
	// data is the victim's forward data frame at its receiver.
	data channelRatios
	// rev is the short ACK/control reply the victim's receiver sends
	// back, as heard at the victim's sender.
	rev channelRatios
}

// noInterference is the identity ratio set.
var noInterference = interference{data: identityRatios, rev: identityRatios}

// NewSynthetic returns a graph of n flows with no edges, perfect
// isolation reception and the 6 Mb/s rate — the starting point for
// tests that want a hand-built topology rather than an extracted one.
func NewSynthetic(n int) *Graph {
	g := &Graph{
		IsoPRR: make([]float64, n),
		Rates:  make([]phy.Rate, n),
		sense:  make([][]int, n),
		harm:   make([][]int, n),
		inter:  newInterMatrix(n),
	}
	for i := range g.IsoPRR {
		g.IsoPRR[i] = 1
		g.Rates[i] = phy.RateByID(phy.Rate6Mbps)
	}
	return g
}

func newInterMatrix(n int) [][]interference {
	m := make([][]interference, n)
	for i := range m {
		m[i] = make([]interference, n)
		for j := range m[i] {
			m[i][j] = noInterference
		}
	}
	return m
}

// N returns the number of flows.
func (g *Graph) N() int { return len(g.IsoPRR) }

// insertSorted adds v to a sorted list if absent.
func insertSorted(list []int, v int) []int {
	k := sort.SearchInts(list, v)
	if k < len(list) && list[k] == v {
		return list
	}
	list = append(list, 0)
	copy(list[k+1:], list[k:])
	list[k] = v
	return list
}

func contains(list []int, v int) bool {
	k := sort.SearchInts(list, v)
	return k < len(list) && list[k] == v
}

// AddSense records that flows i and j can carrier-sense each other.
func (g *Graph) AddSense(i, j int) {
	if i == j {
		return
	}
	g.sense[i] = insertSorted(g.sense[i], j)
	g.sense[j] = insertSorted(g.sense[j], i)
}

// AddHarm records that interferer's concurrent transmission corrupts
// flow victim's reception: any overlapping data frame of the victim is
// lost regardless of lock ordering.
func (g *Graph) AddHarm(victim, interferer int) {
	if victim == interferer {
		return
	}
	g.classifyHarm(victim, interferer)
	g.inter[victim][interferer].data = channelRatios{vf: 0, ii: 0, cap: 0, lockJ: 1}
}

// classifyHarm marks the directed harm edge without touching the stored
// reception ratios — Extract computes those separately, and the edge is
// only the binary l_interf classification CMAP's defer rules consume.
func (g *Graph) classifyHarm(victim, interferer int) {
	g.harm[victim] = insertSorted(g.harm[victim], interferer)
}

// Ratios returns the ordering-split conditional reception ratios of
// victim under interferer: the victim's data frame with its receiver
// locked first (dataVF) or the interferer already on air (dataIF, the
// saturated composite of the capture and idle-lock paths), and the same
// split for the reverse ACK/control reply (revVF, revIF). All are 1
// when the pair does not interact.
func (g *Graph) Ratios(victim, interferer int) (dataVF, dataIF, revVF, revIF float64) {
	r := g.inter[victim][interferer]
	return r.data.vf, r.data.saturated(), r.rev.vf, r.rev.saturated()
}

// Sensed reports whether flows i and j have a sense edge.
func (g *Graph) Sensed(i, j int) bool { return contains(g.sense[i], j) }

// Harms reports whether interferer harms victim.
func (g *Graph) Harms(victim, interferer int) bool {
	return contains(g.harm[victim], interferer)
}

// SenseEdges returns the number of undirected sense edges.
func (g *Graph) SenseEdges() int {
	n := 0
	for _, l := range g.sense {
		n += len(l)
	}
	return n / 2
}

// HarmEdges returns the number of directed harm edges.
func (g *Graph) HarmEdges() int {
	n := 0
	for _, l := range g.harm {
		n += len(l)
	}
	return n
}

// ExtractConfig parameterises conflict-graph extraction.
type ExtractConfig struct {
	// Rate is the data bit-rate edges are classified at.
	Rate phy.RateID
	// PayloadBytes sizes the data frame PRR is evaluated over
	// (default 1400, the evaluation's payload).
	PayloadBytes int
	// HarmLossFrac is the conditional loss fraction above which a
	// concurrent sender counts as an interferer — the paper's l_interf
	// (default 0.5, §3.1).
	HarmLossFrac float64
	// CSThresholdDBm, when non-zero, overrides the medium's carrier-sense
	// threshold in the sensing-edge classification — the analytic
	// counterpart of the cs@<dBm> arm family's per-node override.
	CSThresholdDBm float64
}

func (c ExtractConfig) withDefaults() ExtractConfig {
	if c.PayloadBytes == 0 {
		c.PayloadBytes = 1400
	}
	if c.HarmLossFrac == 0 {
		c.HarmLossFrac = 0.5
	}
	return c
}

// conditionalPRR is the reception ratio of a link received at sigMW
// under intfMW of concurrent interference power, with the same
// lock-probability × packet-error-rate composition phy.IsolationPRR
// uses (it reduces to IsolationPRR exactly at intfMW = 0).
func conditionalPRR(p phy.Params, r phy.Rate, sigMW, intfMW float64, wireBytes int) float64 {
	sigDBm := radio.MWToDBm(sigMW)
	if sigDBm < p.SensitivityDBm {
		return 0
	}
	noiseMW := radio.DBmToMW(p.NoiseFloorDBm)
	sinrDB := sigDBm - radio.MWToDBm(noiseMW+intfMW) - p.ImplementationLossDB
	return phy.LockProbability(sinrDB, p.PreambleOffsetDB) * (1 - phy.PacketErrorRate(r, sinrDB, wireBytes))
}

func clamp01(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// orderedRatios decomposes a link's conditional reception under
// concurrent interference by lock ordering, mirroring phy.Radio:
//
//   - vf: the receiver locked the victim's frame in clean air (that
//     lock probability is already inside the isolation PRR), so only
//     the payload faces the interference — the ratio is the PER
//     degradation alone.
//   - ii: the victim's frame arrives with the interferer on air but
//     the radio unlocked — a plain lock attempt at the degraded SINR,
//     then the same payload errors.
//   - cap: the interferer holds the lock, and the victim's frame must
//     steal it at the capture margin (phy.Radio.tryCapture, which also
//     requires the frame to clear sensitivity — already checked here).
//   - lockJ: the interferer's own clean-air lock probability at this
//     receiver, gating how often the cap path applies.
//
// All ratios are relative to the link's isolation PRR, clamped to
// [0, 1]. The solver weighs the paths by the interferer's duty cycle
// and the victim receiver's own idle probability.
func orderedRatios(p phy.Params, r phy.Rate, sigMW, intfMW float64, wireBytes int) channelRatios {
	sigDBm := radio.MWToDBm(sigMW)
	if sigDBm < p.SensitivityDBm {
		return channelRatios{}
	}
	noiseMW := radio.DBmToMW(p.NoiseFloorDBm)
	sinrIso := sigDBm - p.NoiseFloorDBm - p.ImplementationLossDB
	sinrBoth := sigDBm - radio.MWToDBm(noiseMW+intfMW) - p.ImplementationLossDB
	perIso := phy.PacketErrorRate(r, sinrIso, wireBytes)
	perBoth := phy.PacketErrorRate(r, sinrBoth, wireBytes)
	lockIso := phy.LockProbability(sinrIso, p.PreambleOffsetDB)
	if lockIso <= 0 || perIso >= 1 {
		return channelRatios{}
	}
	isoOK := lockIso * (1 - perIso)
	lockBoth := phy.LockProbability(sinrBoth, p.PreambleOffsetDB)

	var c channelRatios
	c.vf = clamp01((1 - perBoth) / (1 - perIso))
	c.ii = clamp01(lockBoth * (1 - perBoth) / isoOK)
	if p.CaptureMarginDB > 0 && radio.MWToDBm(intfMW) >= p.SensitivityDBm {
		c.lockJ = phy.LockProbability(radio.MWToDBm(intfMW)-p.NoiseFloorDBm-p.ImplementationLossDB, p.PreambleOffsetDB)
		capture := phy.LockProbability(sinrBoth-p.CaptureMarginDB, p.PreambleOffsetDB)
		c.cap = clamp01(capture * (1 - perBoth) / isoOK)
	}
	return c
}

// Extract builds the conflict graph for the given flows over a built
// medium. All gains come from the medium's stored delivery lists (the
// numbers Transmit fans out with), so the graph and the simulator agree
// by construction:
//
//   - sense i–j: either sender hears the other at or above the
//     carrier-sense threshold, or the flows share a node (one radio
//     cannot serve two flows at once).
//   - harm j→i: with src_j transmitting concurrently, flow i's PRR
//     falls below (1 − HarmLossFrac) of its isolation PRR — the same
//     l_interf classification CMAP's receivers apply (§3.1).
//
// Gains below the medium's delivery floor are treated as zero, exactly
// as the simulator treats them.
func Extract(m *medium.Medium, flows []topo.Link, cfg ExtractConfig) (*Graph, error) {
	cfg = cfg.withDefaults()
	rate := phy.RateByID(cfg.Rate)
	params := m.Params()
	wire := (&frame.Dot11Data{PayloadLen: uint16(cfg.PayloadBytes)}).WireSize()
	ctrlWire := (&frame.Control{}).WireSize()
	csDBm := params.CSThresholdDBm
	if cfg.CSThresholdDBm != 0 {
		csDBm = cfg.CSThresholdDBm
	}
	csMW := radio.DBmToMW(csDBm)

	n := len(flows)
	g := &Graph{
		Flows:  append([]topo.Link(nil), flows...),
		IsoPRR: make([]float64, n),
		Rates:  make([]phy.Rate, n),
		sense:  make([][]int, n),
		harm:   make([][]int, n),
		inter:  newInterMatrix(n),
	}
	sig := make([]float64, n) // received power of each flow's own signal, mW
	for i, f := range flows {
		if f.Src == f.Dst || f.Src < 0 || f.Dst < 0 || f.Src >= m.NodeCount() || f.Dst >= m.NodeCount() {
			return nil, fmt.Errorf("analytic: flow %d (%d→%d) is not a valid unicast link", i, f.Src, f.Dst)
		}
		g.Rates[i] = rate
		sig[i], _ = m.GainMW(f.Src, f.Dst)
		g.IsoPRR[i] = conditionalPRR(params, rate, sig[i], 0, wire)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			a, b := flows[i], flows[j]
			shared := a.Src == b.Src || a.Src == b.Dst || a.Dst == b.Src || a.Dst == b.Dst
			if shared {
				// One radio cannot transmit two flows, or receive while
				// transmitting: the flows serialise and corrupt each other.
				g.AddSense(i, j)
				g.AddHarm(i, j)
				continue
			}
			if j > i {
				gij, _ := m.GainMW(b.Src, a.Src)
				gji, _ := m.GainMW(a.Src, b.Src)
				if gij >= csMW || gji >= csMW {
					g.AddSense(i, j)
				}
			}
			if g.IsoPRR[i] > 0 {
				if intf, ok := m.GainMW(b.Src, a.Dst); ok {
					c := orderedRatios(params, rate, sig[i], intf, wire)
					g.inter[i][j].data = c
					// The harm classification is the paper's l_interf
					// measurement: loss observed while both senders run
					// saturated, i.e. with the interferer virtually always
					// already on air — the interferer-first composite.
					if c.saturated() < 1-cfg.HarmLossFrac {
						g.classifyHarm(i, j)
					}
				}
			}
			// Reverse channel: the short ACK/control reply dst_i→src_i
			// under src_j's signal at src_i. Sensed-and-deferred peers
			// never overlap it (SIFS < DIFS protects the turnaround), but
			// a concurrent transmitter can starve the victim's feedback
			// even when it leaves the forward data path untouched.
			if rsig, ok := m.GainMW(a.Dst, a.Src); ok {
				if rintf, ok2 := m.GainMW(b.Src, a.Src); ok2 {
					if conditionalPRR(params, rate, rsig, 0, ctrlWire) > 0 {
						g.inter[i][j].rev = orderedRatios(params, rate, rsig, rintf, ctrlWire)
					}
				}
			}
		}
	}
	return g, nil
}
