package analytic_test

import (
	"fmt"

	"repro/internal/analytic"
)

// Example solves the canonical exposed-terminal pair: two flows whose
// senders carrier-sense each other while both receivers sit in clean
// air. 802.11-style CSMA serialises them (the sense edge forces the
// pair to share one channel), while CMAP — seeing no harm edge — lets
// both transmit concurrently and nearly doubles aggregate goodput.
func Example() {
	g := analytic.NewSynthetic(2)
	g.AddSense(0, 1) // senders in range; no interference at either receiver

	csma := analytic.Solve(g, analytic.Options{Arm: analytic.ArmCSMA})
	cmap := analytic.Solve(g, analytic.Options{Arm: analytic.ArmCMAP})

	fmt.Printf("CSMA %.2f Mb/s (converged=%v)\n", csma.AggregateMbps(), csma.Converged)
	fmt.Printf("CMAP %.2f Mb/s (converged=%v)\n", cmap.AggregateMbps(), cmap.Converged)
	// Output:
	// CSMA 5.50 Mb/s (converged=true)
	// CMAP 11.03 Mb/s (converged=true)
}
