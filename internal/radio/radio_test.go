package radio

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

func TestPowerConversionRoundTrip(t *testing.T) {
	f := func(raw int16) bool {
		dbm := float64(raw) / 100 // -327.68 .. 327.67 dBm
		return math.Abs(MWToDBm(DBmToMW(dbm))-dbm) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerConversionAnchors(t *testing.T) {
	if got := DBmToMW(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("DBmToMW(0) = %v, want 1", got)
	}
	if got := DBmToMW(30); math.Abs(got-1000) > 1e-9 {
		t.Errorf("DBmToMW(30) = %v, want 1000", got)
	}
	if got := MWToDBm(0); !math.IsInf(got, -1) {
		t.Errorf("MWToDBm(0) = %v, want -inf", got)
	}
	if got := DB(100); math.Abs(got-20) > 1e-12 {
		t.Errorf("DB(100) = %v, want 20", got)
	}
	if got := FromDB(3); math.Abs(got-1.9953) > 1e-3 {
		t.Errorf("FromDB(3) = %v, want ≈1.995", got)
	}
}

func TestLogDistanceMonotonic(t *testing.T) {
	m := &LogDistance{RefLossDB: 46.8, Exponent: 3.3} // no shadowing
	a := geo.Point{X: 0, Y: 0}
	prev := -1.0
	for d := 1.0; d <= 100; d += 1 {
		loss := m.Loss(0, a, 1, geo.Point{X: d, Y: 0})
		if loss <= prev {
			t.Fatalf("loss not monotonic at d=%v: %v <= %v", d, loss, prev)
		}
		prev = loss
	}
}

func TestLogDistanceReference(t *testing.T) {
	m := &LogDistance{RefLossDB: 40, Exponent: 3}
	got := m.Loss(0, geo.Point{X: 0, Y: 0}, 1, geo.Point{X: 10, Y: 0})
	if math.Abs(got-70) > 1e-9 { // 40 + 30·log10(10)
		t.Errorf("loss at 10 m = %v, want 70", got)
	}
}

func TestLogDistanceMinDistanceClamp(t *testing.T) {
	m := &LogDistance{RefLossDB: 40, Exponent: 3}
	at0 := m.Loss(0, geo.Point{X: 0, Y: 0}, 1, geo.Point{X: 0, Y: 0})
	at1 := m.Loss(0, geo.Point{X: 0, Y: 0}, 1, geo.Point{X: 1, Y: 0})
	if at0 != at1 {
		t.Errorf("loss at 0 m (%v) should clamp to loss at 1 m (%v)", at0, at1)
	}
}

func TestShadowingReciprocal(t *testing.T) {
	m := DefaultIndoor5GHz(99)
	pa, pb := geo.Point{X: 3, Y: 4}, geo.Point{X: 20, Y: 9}
	ab := m.Loss(7, pa, 13, pb)
	ba := m.Loss(13, pb, 7, pa)
	if ab != ba {
		t.Errorf("channel not reciprocal: a→b %v, b→a %v", ab, ba)
	}
}

func TestShadowingDeterministicAcrossInstances(t *testing.T) {
	m1 := DefaultIndoor5GHz(42)
	m2 := DefaultIndoor5GHz(42)
	pa, pb := geo.Point{X: 0, Y: 0}, geo.Point{X: 15, Y: 5}
	if m1.Loss(1, pa, 2, pb) != m2.Loss(1, pa, 2, pb) {
		t.Error("same seed produced different shadowing")
	}
	m3 := DefaultIndoor5GHz(43)
	if m1.Loss(1, pa, 2, pb) == m3.Loss(1, pa, 2, pb) {
		t.Error("different seeds produced identical shadowing (suspicious)")
	}
}

func TestShadowingDistribution(t *testing.T) {
	m := DefaultIndoor5GHz(7)
	base := &LogDistance{RefLossDB: m.RefLossDB, Exponent: m.Exponent, MinDistance: 1}
	pa := geo.Point{X: 0, Y: 0}
	pb := geo.Point{X: 20, Y: 0}
	var sum, sumsq float64
	n := 2000
	for i := 0; i < n; i++ {
		dev := m.Loss(i, pa, i+10000, pb) - base.Loss(i, pa, i+10000, pb)
		sum += dev
		sumsq += dev * dev
	}
	mean := sum / float64(n)
	sd := math.Sqrt(sumsq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.5 {
		t.Errorf("shadowing mean = %v dB, want ≈0", mean)
	}
	if sd < 5 || sd > 7 {
		t.Errorf("shadowing sd = %v dB, want ≈6", sd)
	}
}

func TestFreeSpaceModel(t *testing.T) {
	m := &FreeSpace{RefLossDB: 40, Exponent: 2}
	got := m.Loss(0, geo.Point{X: 0, Y: 0}, 1, geo.Point{X: 100, Y: 0})
	if math.Abs(got-80) > 1e-9 {
		t.Errorf("free space at 100 m = %v, want 80", got)
	}
}

func TestMatrixModel(t *testing.T) {
	m := &Matrix{LossDB: [][]float64{
		{0, 50, 90},
		{50, 0, 70},
		{90, 70, 0},
	}}
	if m.Loss(0, geo.Point{}, 2, geo.Point{}) != 90 {
		t.Error("matrix loss lookup failed")
	}
}

func TestSINR(t *testing.T) {
	// Signal -60 dBm, noise -95 dBm, no interference: SINR = 35 dB.
	got := SINR(DBmToMW(-60), DBmToMW(-95), 0)
	if math.Abs(got-35) > 1e-9 {
		t.Errorf("SINR = %v, want 35", got)
	}
	// Equal-power interferer dominates noise: SINR ≈ 0 dB.
	got = SINR(DBmToMW(-60), DBmToMW(-95), DBmToMW(-60))
	if math.Abs(got) > 0.01 {
		t.Errorf("SINR with equal interferer = %v, want ≈0", got)
	}
}

func TestSINRDecreasesWithInterference(t *testing.T) {
	sig, noise := DBmToMW(-60), DBmToMW(-95)
	prev := math.Inf(1)
	for dbm := -95.0; dbm <= -40; dbm += 5 {
		s := SINR(sig, noise, DBmToMW(dbm))
		if s >= prev {
			t.Fatalf("SINR not decreasing at interferer %v dBm", dbm)
		}
		prev = s
	}
}
