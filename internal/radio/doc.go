// Package radio models RF propagation: power unit conversions, a
// log-distance path-loss model with deterministic per-link shadowing,
// and SINR arithmetic.
//
// # Relation to the paper
//
// The paper runs on a real 802.11a testbed whose links exhibit the full
// indoor spread — 68% of node pairs below 10% delivery, 20% perfect
// (§5.1). The calibrated indoor model here (DefaultIndoor5GHz) is tuned
// so the generated testbed reproduces that census. Shadowing is a
// truncated lognormal derived from a hash of the node pair: reciprocal
// (a→b equals b→a), frozen for a topology's lifetime (walls do not
// move), and reproducible from the seed. Urban outdoor variants back
// the large-scale scenarios beyond the paper.
//
// # Hot-path contract
//
// The dB conversions here cost a Pow or Log10 each, so the simulation
// hot path avoids them per segment: phy radios fold every dB-domain
// constant into linear multipliers at construction and keep per-pair
// gains in mW end to end. Models that implement RangeBounder let the
// sparse medium bound audibility and skip the O(n²) pair scan.
package radio
