package radio

import (
	"math"

	"repro/internal/geo"
	"repro/internal/sim"
)

// The dB conversions below cost a Pow or Log10 each, so the simulation
// hot path avoids them per segment: phy radios fold every dB-domain
// constant into linear multipliers at construction (phy tables.go) and
// keep per-pair gains in mW end to end. These helpers are for
// construction, cold paths, and human-facing output.

// DBmToMW converts dBm to milliwatts.
func DBmToMW(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MWToDBm converts milliwatts to dBm. Zero or negative power maps to -inf.
func MWToDBm(mw float64) float64 {
	if mw <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(mw)
}

// DB converts a linear power ratio to decibels.
func DB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// Model computes the path loss in dB between two placed nodes.
// Implementations must be reciprocal: Loss(a, pa, b, pb) == Loss(b, pb, a, pa).
type Model interface {
	// Loss returns the propagation loss in dB from node a at pa to node b
	// at pb. Node IDs participate only through the shadowing hash.
	Loss(a int, pa geo.Point, b int, pb geo.Point) float64
}

// RangeBounder is implemented by geometric models that can bound the
// distance beyond which Loss provably exceeds a given budget for every
// node pair. The medium uses it to prune its delivery lists with a
// spatial grid: a pair farther apart than MaxRange(budget) can never be
// heard above the corresponding power floor, so the bound must be
// conservative — never smaller than the true cutoff. Models without
// geometry (e.g. Matrix) simply do not implement it.
type RangeBounder interface {
	MaxRange(maxLossDB float64) float64
}

// MaxShadowSigmas truncates the shadowing variate. Lognormal shadowing
// is an empirical fit whose far tails are unphysical (±6σ of a 6 dB
// spread is already ±36 dB — more than any wall); truncating there
// changes essentially no realised link (P ≈ 2·10⁻⁹ per pair) but gives
// MaxRange a tight bound, which is what lets the spatial grid prune
// medium construction.
const MaxShadowSigmas = 6.0

// LogDistance is the classic indoor log-distance path-loss model with
// per-link lognormal shadowing:
//
//	PL(d) = RefLossDB + 10·Exponent·log10(d/1 m) + N(0, ShadowSigmaDB)
//
// The shadowing draw is a pure function of (Seed, min(a,b), max(a,b)), so
// the channel between two nodes is symmetric and stable across runs.
type LogDistance struct {
	// RefLossDB is the loss at the 1 m reference distance. Free space at
	// 5.2 GHz gives ≈46.8 dB; the calibrated testbed uses more to account
	// for antenna inefficiency and near-field clutter of embedded boards.
	RefLossDB float64
	// Exponent is the path-loss exponent; indoor office ≈3.0–3.5.
	Exponent float64
	// ShadowSigmaDB is the standard deviation of lognormal shadowing.
	ShadowSigmaDB float64
	// MinDistance clamps very small separations so co-located nodes do not
	// produce unbounded power. Defaults to 1 m when zero.
	MinDistance float64
	// Seed selects the shadowing realisation.
	Seed uint64
}

// DefaultIndoor5GHz returns the calibrated model used for the reproduction
// testbed: 5 GHz office floor matching the §5.1 link census.
func DefaultIndoor5GHz(seed uint64) *LogDistance {
	return &LogDistance{
		RefLossDB:     56.0,
		Exponent:      3.5,
		ShadowSigmaDB: 6.0,
		MinDistance:   1.0,
		Seed:          seed,
	}
}

// DefaultUrban5GHz returns an outdoor model for the large-scale scenario
// generators: near-free-space reference loss, a gentler exponent than the
// cluttered office floor, and milder shadowing. Ranges run a few hundred
// metres, so city-scale layouts are sparse in the delivery sense.
func DefaultUrban5GHz(seed uint64) *LogDistance {
	return &LogDistance{
		RefLossDB:     47.0,
		Exponent:      3.0,
		ShadowSigmaDB: 4.0,
		MinDistance:   1.0,
		Seed:          seed,
	}
}

// Loss implements Model.
func (m *LogDistance) Loss(a int, pa geo.Point, b int, pb geo.Point) float64 {
	d := pa.Dist(pb)
	min := m.MinDistance
	if min <= 0 {
		min = 1.0
	}
	if d < min {
		d = min
	}
	loss := m.RefLossDB + 10*m.Exponent*math.Log10(d)
	if m.ShadowSigmaDB > 0 {
		loss += m.ShadowSigmaDB * m.shadow(a, b)
	}
	return loss
}

// MaxRange implements RangeBounder: beyond the returned distance, path
// loss exceeds maxLossDB even at the most favourable shadowing draw the
// generator can produce.
func (m *LogDistance) MaxRange(maxLossDB float64) float64 {
	if m.Exponent <= 0 {
		return math.Inf(1)
	}
	d := math.Pow(10, (maxLossDB-m.RefLossDB+MaxShadowSigmas*m.ShadowSigmaDB)/(10*m.Exponent))
	min := m.MinDistance
	if min <= 0 {
		min = 1.0
	}
	if d < min {
		// Inside the clamp every pair shares loss(min); if that already
		// exceeds the budget nothing delivers, but min stays a safe bound.
		d = min
	}
	return d * (1 + 1e-9)
}

// shadow returns a standard normal variate truncated to ±MaxShadowSigmas
// that is symmetric in (a, b) and deterministic in the model seed.
func (m *LogDistance) shadow(a, b int) float64 {
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	h := sim.HashPair(uint64(lo)+1, uint64(hi)+1)
	rng := sim.NewRNG(h ^ m.Seed)
	v := rng.NormFloat64()
	if v > MaxShadowSigmas {
		v = MaxShadowSigmas
	} else if v < -MaxShadowSigmas {
		v = -MaxShadowSigmas
	}
	return v
}

// FreeSpace is a shadowing-free model useful for unit tests and
// controlled geometry experiments.
type FreeSpace struct {
	RefLossDB   float64 // loss at 1 m
	Exponent    float64 // usually 2.0
	MinDistance float64
}

// Loss implements Model.
func (m *FreeSpace) Loss(_ int, pa geo.Point, _ int, pb geo.Point) float64 {
	d := pa.Dist(pb)
	min := m.MinDistance
	if min <= 0 {
		min = 1.0
	}
	if d < min {
		d = min
	}
	return m.RefLossDB + 10*m.Exponent*math.Log10(d)
}

// MaxRange implements RangeBounder exactly (no shadowing).
func (m *FreeSpace) MaxRange(maxLossDB float64) float64 {
	if m.Exponent <= 0 {
		return math.Inf(1)
	}
	d := math.Pow(10, (maxLossDB-m.RefLossDB)/(10*m.Exponent))
	min := m.MinDistance
	if min <= 0 {
		min = 1.0
	}
	if d < min {
		d = min
	}
	return d * (1 + 1e-9)
}

// Matrix is a model backed by an explicit loss table; it lets tests and
// experiments construct exact SINR relationships between a handful of
// nodes without reverse-engineering geometry.
type Matrix struct {
	// LossDB[a][b] is the loss from a to b in dB. The matrix should be
	// symmetric; Loss reads LossDB[a][b] directly.
	LossDB [][]float64
}

// Loss implements Model.
func (m *Matrix) Loss(a int, _ geo.Point, b int, _ geo.Point) float64 {
	return m.LossDB[a][b]
}

// SINR returns the signal-to-interference-plus-noise ratio in dB given all
// powers in mW.
func SINR(signalMW, noiseMW, interferenceMW float64) float64 {
	return DB(signalMW / (noiseMW + interferenceMW))
}
