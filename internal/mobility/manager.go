package mobility

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/sim"
)

// StreamLabel is the conventional label for the manager's root RNG
// stream off a run's seed RNG, alongside the medium's stream 1, node
// streams 1000+id, and source streams 5000+i. Per-node movement streams
// are derived from that root by node index, so trajectories depend only
// on (seed, node id), never on event interleaving.
const StreamLabel = 0x6d0b

// Mover is the medium surface the manager drives: current positions in,
// position epochs out through the incremental patch path.
type Mover interface {
	NodeCount() int
	Position(i int) geo.Point
	MoveNode(i int, p geo.Point)
	Scheduler() *sim.Scheduler
}

// nodeState is one node's movement state. Every field is exported into
// the checkpoint envelope — trajectories must continue bit-exactly
// across a resume.
type nodeState struct {
	rng    *sim.RNG
	home   geo.Point // initial position, centre of the roam disk
	target geo.Point // waypoint: current destination
	vx, vy float64   // walk/vehicular: velocity in m/s
	until  sim.Time  // walk: when the current heading expires
	trav   float64   // metres travelled since the last shadow re-draw
}

// Manager owns the movement state of every node and applies one
// position epoch per Spec.Epoch through the medium's MoveNode. It is a
// sim.EventHandler; Start posts the first epoch and each epoch re-posts
// the next.
type Manager struct {
	spec  Spec
	arena geo.Rect
	med   Mover
	ch    *Channel // optional shadowing channel; nil disables re-draws
	nodes []nodeState
	epoch sim.Time
	// Epochs counts applied position epochs, for diagnostics.
	Epochs uint64
}

// New builds a manager over med. rng must be a dedicated stream of the
// run's root RNG (conventionally rng.Stream(StreamLabel)); ch may be
// nil when spec.DecorrM is zero. Initial headings and waypoint targets
// are drawn here, in node order, so construction is deterministic.
func New(spec Spec, arena geo.Rect, med Mover, rng *sim.RNG, ch *Channel) *Manager {
	if spec.Epoch <= 0 {
		spec.Epoch = DefaultEpoch
	}
	mg := &Manager{spec: spec, arena: arena, med: med, ch: ch, epoch: spec.Epoch}
	n := med.NodeCount()
	mg.nodes = make([]nodeState, n)
	for i := 0; i < n; i++ {
		st := &mg.nodes[i]
		st.rng = rng.Stream(uint64(i))
		st.home = med.Position(i)
		switch spec.Kind {
		case Waypoint:
			st.target = mg.pickTarget(st)
		case Vehicular:
			// Lane flow: keep Y, drive ±X at a per-node jittered speed.
			dir := 1.0
			if st.rng.Float64() < 0.5 {
				dir = -1
			}
			st.vx = dir * spec.SpeedMps * (0.8 + 0.4*st.rng.Float64())
		}
	}
	return mg
}

// Spec returns the movement spec the manager runs.
func (mg *Manager) Spec() Spec { return mg.spec }

// Start posts the first movement epoch. A non-active spec is a no-op.
func (mg *Manager) Start() {
	if !mg.spec.Active() {
		return
	}
	mg.med.Scheduler().PostAfter(mg.epoch, mg, nil)
}

// HandleEvent implements sim.EventHandler: apply one position epoch and
// re-post the next.
func (mg *Manager) HandleEvent(arg any) {
	if arg != nil {
		panic(fmt.Sprintf("mobility: unexpected event arg %T", arg))
	}
	mg.step()
	mg.med.Scheduler().PostAfter(mg.epoch, mg, nil)
}

// step advances every node by one epoch, in node order, bumping shadow
// epochs as travel odometers cross the decorrelation distance and
// pushing each changed position through the medium's incremental patch.
func (mg *Manager) step() {
	mg.Epochs++
	now := mg.med.Scheduler().Now()
	dt := float64(mg.epoch) / float64(sim.Second)
	for i := range mg.nodes {
		st := &mg.nodes[i]
		old := mg.med.Position(i)
		p := mg.advance(st, old, now, dt)
		if p == old {
			continue
		}
		if mg.ch != nil && mg.spec.DecorrM > 0 {
			st.trav += old.Dist(p)
			for st.trav >= mg.spec.DecorrM {
				st.trav -= mg.spec.DecorrM
				mg.ch.Bump(i)
			}
		}
		mg.med.MoveNode(i, p)
	}
}

// advance computes one node's next position without applying it.
func (mg *Manager) advance(st *nodeState, old geo.Point, now sim.Time, dt float64) geo.Point {
	step := mg.spec.SpeedMps * dt
	switch mg.spec.Kind {
	case Waypoint:
		// Travel toward the target; on arrival land exactly on it and
		// draw the next one (the residual step is forfeited — an epoch
		// is short next to a leg, and exact landings keep the walk
		// independent of epoch size at the waypoints themselves).
		d := old.Dist(st.target)
		if d <= step {
			arrived := st.target
			st.target = mg.pickTarget(st)
			return arrived
		}
		return geo.Point{X: old.X + (st.target.X-old.X)/d*step, Y: old.Y + (st.target.Y-old.Y)/d*step}
	case RandomWalk:
		if now >= st.until || (st.vx == 0 && st.vy == 0) {
			ang := st.rng.Float64() * 2 * math.Pi
			st.vx = mg.spec.SpeedMps * math.Cos(ang)
			st.vy = mg.spec.SpeedMps * math.Sin(ang)
			st.until = now + sim.Time(float64(sim.Second)*(1+st.rng.Float64()))
		}
		p := geo.Point{X: old.X + st.vx*dt, Y: old.Y + st.vy*dt}
		r := mg.roam(st)
		if p.X < r.MinX {
			p.X = 2*r.MinX - p.X
			st.vx = -st.vx
		} else if p.X > r.MaxX {
			p.X = 2*r.MaxX - p.X
			st.vx = -st.vx
		}
		if p.Y < r.MinY {
			p.Y = 2*r.MinY - p.Y
			st.vy = -st.vy
		} else if p.Y > r.MaxY {
			p.Y = 2*r.MaxY - p.Y
			st.vy = -st.vy
		}
		return clamp(p, r) // a step longer than the region still lands inside
	case Vehicular:
		p := geo.Point{X: old.X + st.vx*dt, Y: old.Y}
		if w := mg.arena.Width(); w > 0 {
			for p.X > mg.arena.MaxX {
				p.X -= w
			}
			for p.X < mg.arena.MinX {
				p.X += w
			}
		}
		return p
	}
	return old
}

// roam returns the node's movement region: the arena, or its
// intersection with the RangeM square around home.
func (mg *Manager) roam(st *nodeState) geo.Rect {
	r := mg.arena
	if mg.spec.RangeM > 0 {
		r = geo.Rect{
			MinX: math.Max(r.MinX, st.home.X-mg.spec.RangeM),
			MinY: math.Max(r.MinY, st.home.Y-mg.spec.RangeM),
			MaxX: math.Min(r.MaxX, st.home.X+mg.spec.RangeM),
			MaxY: math.Min(r.MaxY, st.home.Y+mg.spec.RangeM),
		}
	}
	if r.MaxX < r.MinX {
		r.MinX, r.MaxX = st.home.X, st.home.X
	}
	if r.MaxY < r.MinY {
		r.MinY, r.MaxY = st.home.Y, st.home.Y
	}
	return r
}

// pickTarget draws a uniform waypoint in the roam region — rejection
// sampled against the RangeM disk, falling back to home if the disk and
// arena barely intersect.
func (mg *Manager) pickTarget(st *nodeState) geo.Point {
	r := mg.roam(st)
	for try := 0; try < 16; try++ {
		p := geo.Point{
			X: r.MinX + st.rng.Float64()*(r.MaxX-r.MinX),
			Y: r.MinY + st.rng.Float64()*(r.MaxY-r.MinY),
		}
		if mg.spec.RangeM <= 0 || st.home.Dist(p) <= mg.spec.RangeM {
			return p
		}
	}
	return st.home
}

func clamp(p geo.Point, r geo.Rect) geo.Point {
	return geo.Point{
		X: math.Min(math.Max(p.X, r.MinX), r.MaxX),
		Y: math.Min(math.Max(p.Y, r.MinY), r.MaxY),
	}
}
