package mobility

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// Kind selects a movement model.
type Kind uint8

const (
	// None leaves every node frozen; the zero Spec is a static run.
	None Kind = iota
	// Waypoint is random waypoint: pick a uniform target in the roam
	// region, travel to it at constant speed, repeat.
	Waypoint
	// RandomWalk holds a uniform random heading for a random 1–2 s
	// interval, reflecting off the roam-region walls.
	RandomWalk
	// Vehicular is a lane flow: each node keeps its Y as a lane, drives
	// ±X at a per-node jittered speed, and wraps around the arena.
	Vehicular
)

// String names the kind the way ParseSpec spells it.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Waypoint:
		return "waypoint"
	case RandomWalk:
		return "walk"
	case Vehicular:
		return "vehicular"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// DefaultEpoch is the position-update interval when Spec.Epoch is zero:
// 100 ms keeps per-epoch displacement well under a cell size at
// pedestrian-to-vehicular speeds while staying cheap next to the
// per-frame event load.
const DefaultEpoch = 100 * sim.Millisecond

// Spec configures mobility for a run. The zero value means static.
type Spec struct {
	Kind Kind
	// SpeedMps is the nominal node speed in metres per second.
	SpeedMps float64
	// Epoch is the position-update interval; zero means DefaultEpoch.
	Epoch sim.Time
	// RangeM, when positive, confines each node to a disk of this
	// radius around its initial position (intersected with the arena).
	// Zero lets waypoint/walk roam the whole arena. Vehicular ignores
	// it — lanes span the arena by construction.
	RangeM float64
	// DecorrM is the shadowing decorrelation distance in metres: each
	// node re-draws its shadowing contribution (via Channel) every
	// DecorrM metres of travel. Zero disables shadowing re-draws.
	DecorrM float64
}

// Active reports whether the spec actually moves nodes.
func (s Spec) Active() bool { return s.Kind != None && s.SpeedMps > 0 }

// String renders the spec in ParseSpec's format.
func (s Spec) String() string {
	if s.Kind == None {
		return "none"
	}
	out := fmt.Sprintf("%s@%g", s.Kind, s.SpeedMps)
	if s.RangeM > 0 {
		out += fmt.Sprintf("@%g", s.RangeM)
	}
	return out
}

// ParseSpec parses the CLI mobility syntax "<model>@<speed>" with an
// optional roam-radius third field: "waypoint@3", "walk@1.5",
// "vehicular@20", "waypoint@3@15" (roam within 15 m of home), or
// "none". Speeds are in m/s, the radius in metres.
func ParseSpec(s string) (Spec, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return Spec{}, nil
	}
	parts := strings.Split(s, "@")
	var spec Spec
	switch parts[0] {
	case "waypoint":
		spec.Kind = Waypoint
	case "walk":
		spec.Kind = RandomWalk
	case "vehicular":
		spec.Kind = Vehicular
	default:
		return Spec{}, fmt.Errorf("mobility: unknown model %q (want waypoint, walk, vehicular, or none)", parts[0])
	}
	if len(parts) < 2 {
		return Spec{}, fmt.Errorf("mobility: %q needs a speed, e.g. %q", s, parts[0]+"@3")
	}
	v, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || v < 0 {
		return Spec{}, fmt.Errorf("mobility: bad speed %q in %q", parts[1], s)
	}
	spec.SpeedMps = v
	if len(parts) >= 3 {
		r, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || r < 0 {
			return Spec{}, fmt.Errorf("mobility: bad roam radius %q in %q", parts[2], s)
		}
		spec.RangeM = r
	}
	if len(parts) > 3 {
		return Spec{}, fmt.Errorf("mobility: too many fields in %q", s)
	}
	return spec, nil
}
