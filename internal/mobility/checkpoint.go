package mobility

import (
	"encoding/json"
	"fmt"

	"repro/internal/geo"
	"repro/internal/sim"
)

// Checkpoint surface of the manager. The split follows the
// codebase-wide rule: everything derivable from the Spec and arena is
// rebuilt by New on resume; everything mutable — positions, targets,
// velocities, heading timers, travel odometers, per-node RNG streams,
// shadowing epochs, the epoch counter — is captured here. Restoring
// replays every node's checkpointed position through the medium's
// MoveNode, which reproduces the delivery lists exactly (they are a
// pure function of final positions and shadowing epochs), so a resumed
// run is bit-identical to an uninterrupted one.

// NodeState is one node's movement state in checkpoint form.
type NodeState struct {
	RNG    uint64    `json:"rng"`
	Home   geo.Point `json:"home"`
	Pos    geo.Point `json:"pos"`
	Target geo.Point `json:"target,omitempty"`
	VX     float64   `json:"vx,omitempty"`
	VY     float64   `json:"vy,omitempty"`
	Until  sim.Time  `json:"until,omitempty"`
	Trav   float64   `json:"trav,omitempty"`
}

// State is the manager's full mutable state in checkpoint form.
type State struct {
	Epochs uint64      `json:"epochs"`
	Nodes  []NodeState `json:"nodes"`
	Shadow []uint32    `json:"shadow,omitempty"`
}

// ExportState captures the manager's mutable state.
func (mg *Manager) ExportState() State {
	st := State{Epochs: mg.Epochs, Nodes: make([]NodeState, len(mg.nodes))}
	for i := range mg.nodes {
		n := &mg.nodes[i]
		st.Nodes[i] = NodeState{
			RNG:    n.rng.State(),
			Home:   n.home,
			Pos:    mg.med.Position(i),
			Target: n.target,
			VX:     n.vx,
			VY:     n.vy,
			Until:  n.until,
			Trav:   n.trav,
		}
	}
	if mg.ch != nil {
		st.Shadow = mg.ch.Epochs()
	}
	return st
}

// RestoreState overwrites the manager's mutable state from a checkpoint
// and repositions every node through the medium so the delivery lists
// match the checkpointed positions exactly. Shadowing epochs are
// restored first — MoveNode recomputes gains from the live model, so
// the model must be in its checkpointed state before the first patch.
func (mg *Manager) RestoreState(st State) error {
	if len(st.Nodes) != len(mg.nodes) {
		return fmt.Errorf("mobility: checkpoint has %d nodes, manager has %d", len(st.Nodes), len(mg.nodes))
	}
	if mg.ch != nil {
		if len(st.Shadow) != len(mg.nodes) && st.Shadow != nil {
			return fmt.Errorf("mobility: checkpoint has %d shadow epochs, manager has %d nodes", len(st.Shadow), len(mg.nodes))
		}
		mg.ch.SetEpochs(st.Shadow)
	}
	mg.Epochs = st.Epochs
	for i := range mg.nodes {
		n, s := &mg.nodes[i], &st.Nodes[i]
		n.rng.SetState(s.RNG)
		n.home = s.Home
		n.target = s.Target
		n.vx, n.vy = s.VX, s.VY
		n.until = s.Until
		n.trav = s.Trav
		// Unconditional: a node can be back at its starting point with
		// a non-zero shadow epoch, and its links still need refreshing.
		mg.med.MoveNode(i, s.Pos)
	}
	return nil
}

// EncodeEventArg encodes the manager's single agenda event shape (the
// epoch tick, arg nil) for the checkpoint envelope.
func (mg *Manager) EncodeEventArg(arg any) (json.RawMessage, error) {
	if arg != nil {
		return nil, fmt.Errorf("mobility: unexpected event arg %T", arg)
	}
	return nil, nil
}

// DecodeEventArg inverts EncodeEventArg.
func (mg *Manager) DecodeEventArg(enc json.RawMessage) (any, error) {
	if len(enc) > 0 && string(enc) != "null" {
		return nil, fmt.Errorf("mobility: unexpected event encoding %q", enc)
	}
	return nil, nil
}
