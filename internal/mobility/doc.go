// Package mobility gives node positions a time axis. A Manager drives
// one of three movement models — random waypoint, random walk, and a
// vehicular lane flow — from per-node RNG streams derived off the run's
// seed discipline, applying position epochs to the medium through its
// incremental MoveNode patch path. A Channel wraps a radio model to
// slowly re-draw per-pair log-normal shadowing as nodes travel past the
// decorrelation distance, so the channel decorrelates in time the way
// measured testbeds do rather than staying frozen at its first draw.
// Both halves are checkpointable: the manager's full state (per-node
// RNG streams, targets, velocities, travel odometers, shadow epochs)
// exports into the run envelope so a resumed simulation is
// bit-identical to an uninterrupted one.
package mobility
