package mobility

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/sim"
)

// fakeMover is a positions-only Mover: what the manager needs, nothing
// of the medium. It records every MoveNode call.
type fakeMover struct {
	sched *sim.Scheduler
	pos   []geo.Point
	moves int
}

func newFakeMover(pos []geo.Point) *fakeMover {
	return &fakeMover{sched: sim.NewScheduler(), pos: append([]geo.Point(nil), pos...)}
}

func (f *fakeMover) NodeCount() int            { return len(f.pos) }
func (f *fakeMover) Position(i int) geo.Point  { return f.pos[i] }
func (f *fakeMover) Scheduler() *sim.Scheduler { return f.sched }
func (f *fakeMover) MoveNode(i int, p geo.Point) {
	f.pos[i] = p
	f.moves++
}

func scatterPts(n int, w, h float64, seed uint64) []geo.Point {
	rng := sim.NewRNG(seed)
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = geo.Point{X: rng.Float64() * w, Y: rng.Float64() * h}
	}
	return out
}

func TestParseSpecRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"", Spec{}},
		{"none", Spec{}},
		{"waypoint@3", Spec{Kind: Waypoint, SpeedMps: 3}},
		{"walk@1.5", Spec{Kind: RandomWalk, SpeedMps: 1.5}},
		{"vehicular@20", Spec{Kind: Vehicular, SpeedMps: 20}},
		{"waypoint@3@15", Spec{Kind: Waypoint, SpeedMps: 3, RangeM: 15}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if c.in != "" && c.in != "none" {
			back, err := ParseSpec(got.String())
			if err != nil || back != got {
				t.Fatalf("round trip %q -> %q -> %+v (%v)", c.in, got.String(), back, err)
			}
		}
	}
	for _, bad := range []string{"teleport@3", "waypoint", "walk@-1", "walk@x", "waypoint@3@-2", "waypoint@3@q", "waypoint@3@4@5"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Fatalf("ParseSpec(%q) succeeded, want error", bad)
		}
	}
	if s := (Spec{}).String(); s != "none" {
		t.Fatalf("zero spec renders %q, want none", s)
	}
	if s := (Spec{Kind: Kind(99)}).Kind.String(); s != "kind(99)" {
		t.Fatalf("unknown kind renders %q", s)
	}
}

func TestSpecActive(t *testing.T) {
	if (Spec{}).Active() {
		t.Fatal("zero spec is active")
	}
	if (Spec{Kind: Waypoint}).Active() {
		t.Fatal("zero-speed spec is active")
	}
	if !(Spec{Kind: Waypoint, SpeedMps: 1}).Active() {
		t.Fatal("waypoint@1 is not active")
	}
}

// run drives the mover's scheduler through n movement epochs.
func run(mg *Manager, f *fakeMover, n int) {
	f.sched.Run(f.sched.Now() + sim.Time(n)*mg.Spec().Epoch)
}

func TestWaypointStaysInRoamDisk(t *testing.T) {
	arena := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 60}
	f := newFakeMover(scatterPts(20, 100, 60, 1))
	home := append([]geo.Point(nil), f.pos...)
	spec := Spec{Kind: Waypoint, SpeedMps: 8, RangeM: 10}
	mg := New(spec, arena, f, sim.NewRNG(2).Stream(StreamLabel), nil)
	mg.Start()
	for e := 0; e < 50; e++ {
		run(mg, f, 1)
		for i, p := range f.pos {
			if d := home[i].Dist(p); d > spec.RangeM+1e-9 {
				t.Fatalf("epoch %d node %d strayed %.2f m from home (roam %g)", e, i, d, spec.RangeM)
			}
			if p.X < arena.MinX || p.X > arena.MaxX || p.Y < arena.MinY || p.Y > arena.MaxY {
				t.Fatalf("node %d left the arena: %+v", i, p)
			}
		}
	}
	if mg.Epochs != 50 {
		t.Fatalf("manager applied %d epochs, want 50", mg.Epochs)
	}
	if f.moves == 0 {
		t.Fatal("no node ever moved")
	}
}

func TestRandomWalkStaysInRoamRect(t *testing.T) {
	arena := geo.Rect{MinX: 0, MinY: 0, MaxX: 80, MaxY: 40}
	f := newFakeMover(scatterPts(15, 80, 40, 3))
	home := append([]geo.Point(nil), f.pos...)
	spec := Spec{Kind: RandomWalk, SpeedMps: 3, RangeM: 6}
	mg := New(spec, arena, f, sim.NewRNG(4).Stream(StreamLabel), nil)
	mg.Start()
	run(mg, f, 100)
	for i, p := range f.pos {
		if math.Abs(p.X-home[i].X) > spec.RangeM+1e-9 || math.Abs(p.Y-home[i].Y) > spec.RangeM+1e-9 {
			t.Fatalf("node %d strayed to %+v from home %+v (roam %g)", i, p, home[i], spec.RangeM)
		}
	}
	if f.moves == 0 {
		t.Fatal("no node ever moved")
	}
}

func TestVehicularKeepsLaneAndWraps(t *testing.T) {
	arena := geo.Rect{MinX: 0, MinY: 0, MaxX: 50, MaxY: 30}
	f := newFakeMover([]geo.Point{{X: 48, Y: 10}, {X: 2, Y: 20}})
	spec := Spec{Kind: Vehicular, SpeedMps: 25}
	mg := New(spec, arena, f, sim.NewRNG(5).Stream(StreamLabel), nil)
	mg.Start()
	run(mg, f, 40) // 4 s at ≥20 m/s crosses the 50 m arena, forcing wraps
	for i, p := range f.pos {
		if p.Y != [2]float64{10, 20}[i] {
			t.Fatalf("node %d changed lane: %+v", i, p)
		}
		if p.X < arena.MinX || p.X > arena.MaxX {
			t.Fatalf("node %d failed to wrap: %+v", i, p)
		}
	}
}

func TestTrajectoriesDeterministic(t *testing.T) {
	arena := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 60}
	for _, spec := range []Spec{
		{Kind: Waypoint, SpeedMps: 5, RangeM: 12},
		{Kind: RandomWalk, SpeedMps: 2},
		{Kind: Vehicular, SpeedMps: 15},
	} {
		mk := func() *fakeMover {
			f := newFakeMover(scatterPts(12, 100, 60, 7))
			mg := New(spec, arena, f, sim.NewRNG(9).Stream(StreamLabel), nil)
			mg.Start()
			run(mg, f, 30)
			return f
		}
		a, b := mk(), mk()
		for i := range a.pos {
			if a.pos[i] != b.pos[i] {
				t.Fatalf("%s node %d: same seed diverged: %+v vs %+v", spec, i, a.pos[i], b.pos[i])
			}
		}
	}
}

func TestInactiveSpecNeverMoves(t *testing.T) {
	f := newFakeMover(scatterPts(5, 50, 50, 11))
	mg := New(Spec{}, geo.Rect{MaxX: 50, MaxY: 50}, f, sim.NewRNG(1).Stream(StreamLabel), nil)
	mg.Start()
	f.sched.Run(5 * sim.Second)
	if f.moves != 0 || mg.Epochs != 0 {
		t.Fatalf("static spec moved nodes: %d moves, %d epochs", f.moves, mg.Epochs)
	}
}

func TestHandleEventRejectsArgs(t *testing.T) {
	f := newFakeMover(scatterPts(2, 10, 10, 1))
	mg := New(Spec{Kind: Waypoint, SpeedMps: 1}, geo.Rect{MaxX: 10, MaxY: 10}, f, sim.NewRNG(1).Stream(StreamLabel), nil)
	defer func() {
		if recover() == nil {
			t.Fatal("HandleEvent accepted a non-nil arg")
		}
	}()
	mg.HandleEvent("bogus")
}

func TestChannelStaticPassthrough(t *testing.T) {
	inner := &radio.LogDistance{RefLossDB: 50, Exponent: 3, ShadowSigmaDB: 4, Seed: 77}
	ch := NewChannel(inner, 4)
	a, b := geo.Point{X: 0, Y: 0}, geo.Point{X: 10, Y: 0}
	if got, want := ch.Loss(0, a, 1, b), inner.Loss(0, a, 1, b); math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("zero-epoch Loss %v != inner %v", got, want)
	}
	if got, want := ch.MaxRange(130), inner.MaxRange(130); got != want {
		t.Fatalf("MaxRange %v != inner %v", got, want)
	}
}

func TestChannelEpochRedrawAndReciprocity(t *testing.T) {
	inner := &radio.LogDistance{RefLossDB: 50, Exponent: 3, ShadowSigmaDB: 4, Seed: 77}
	ch := NewChannel(inner, 4)
	a, b := geo.Point{X: 0, Y: 0}, geo.Point{X: 10, Y: 0}
	base := ch.Loss(0, a, 1, b)
	ch.Bump(0)
	if ch.Epoch(0) != 1 {
		t.Fatalf("epoch after one bump = %d", ch.Epoch(0))
	}
	redrawn := ch.Loss(0, a, 1, b)
	if math.Float64bits(redrawn) == math.Float64bits(base) {
		t.Fatal("bumping an endpoint epoch did not re-draw shadowing")
	}
	if x, y := ch.Loss(0, a, 1, b), ch.Loss(1, b, 0, a); math.Float64bits(x) != math.Float64bits(y) {
		t.Fatalf("re-drawn loss not reciprocal: %v vs %v", x, y)
	}
	// The re-draw is a pure function of the epoch pair: same epochs,
	// same loss.
	if again := ch.Loss(0, a, 1, b); math.Float64bits(again) != math.Float64bits(redrawn) {
		t.Fatalf("same epochs re-drew differently: %v vs %v", again, redrawn)
	}
}

func TestChannelNonShadowedPassthrough(t *testing.T) {
	inner := &radio.Matrix{LossDB: [][]float64{{0, 70}, {70, 0}}}
	ch := NewChannel(inner, 2)
	ch.Bump(0)
	a, b := geo.Point{}, geo.Point{X: 5}
	if got, want := ch.Loss(0, a, 1, b), inner.Loss(0, a, 1, b); got != want {
		t.Fatalf("Matrix inner not passed through: %v vs %v", got, want)
	}
	if !math.IsInf(ch.MaxRange(130), 1) {
		t.Fatal("unbounded inner should yield +Inf MaxRange")
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	arena := geo.Rect{MinX: 0, MinY: 0, MaxX: 100, MaxY: 60}
	start := scatterPts(10, 100, 60, 13)
	for _, spec := range []Spec{
		{Kind: Waypoint, SpeedMps: 6, RangeM: 12, DecorrM: 5},
		{Kind: RandomWalk, SpeedMps: 2, DecorrM: 5},
		{Kind: Vehicular, SpeedMps: 15, DecorrM: 5},
	} {
		mkc := func() (*fakeMover, *Manager, *Channel) {
			f := newFakeMover(start)
			ch := NewChannel(&radio.LogDistance{RefLossDB: 50, Exponent: 3, ShadowSigmaDB: 4, Seed: 5}, len(start))
			mg := New(spec, arena, f, sim.NewRNG(21).Stream(StreamLabel), ch)
			mg.Start()
			return f, mg, ch
		}
		fa, mga, cha := mkc()
		run(mga, fa, 20)
		st := mga.ExportState()

		// Fresh skeleton, restored mid-run state, then both continue.
		fb, mgb, chb := mkc()
		fb.sched.Run(fa.sched.Now()) // advance the clock past the restored epochs
		if err := mgb.RestoreState(st); err != nil {
			t.Fatalf("%s: restore: %v", spec, err)
		}
		for i := range fa.pos {
			if fa.pos[i] != fb.pos[i] {
				t.Fatalf("%s: restored position %d = %+v, want %+v", spec, i, fb.pos[i], fa.pos[i])
			}
		}
		run(mga, fa, 20)
		run(mgb, fb, 20)
		for i := range fa.pos {
			if fa.pos[i] != fb.pos[i] {
				t.Fatalf("%s node %d: resumed trajectory diverged: %+v vs %+v", spec, i, fb.pos[i], fa.pos[i])
			}
			if cha.Epoch(i) != chb.Epoch(i) {
				t.Fatalf("%s node %d: shadow epoch diverged: %d vs %d", spec, i, chb.Epoch(i), cha.Epoch(i))
			}
		}
		if mga.Epochs != mgb.Epochs {
			t.Fatalf("%s: epoch counters diverged: %d vs %d", spec, mga.Epochs, mgb.Epochs)
		}
	}
}

func TestRestoreStateRejectsMismatch(t *testing.T) {
	f := newFakeMover(scatterPts(4, 50, 50, 1))
	mg := New(Spec{Kind: Waypoint, SpeedMps: 1}, geo.Rect{MaxX: 50, MaxY: 50}, f, sim.NewRNG(1).Stream(StreamLabel), nil)
	if err := mg.RestoreState(State{Nodes: make([]NodeState, 2)}); err == nil {
		t.Fatal("restore with wrong node count succeeded")
	}
	ch := NewChannel(&radio.LogDistance{RefLossDB: 50, Exponent: 3, ShadowSigmaDB: 4, Seed: 5}, 4)
	mg2 := New(Spec{Kind: Waypoint, SpeedMps: 1, DecorrM: 5}, geo.Rect{MaxX: 50, MaxY: 50}, newFakeMover(scatterPts(4, 50, 50, 1)), sim.NewRNG(1).Stream(StreamLabel), ch)
	if err := mg2.RestoreState(State{Nodes: make([]NodeState, 4), Shadow: []uint32{1}}); err == nil {
		t.Fatal("restore with wrong shadow length succeeded")
	}
}

func TestEventArgCodec(t *testing.T) {
	f := newFakeMover(scatterPts(2, 10, 10, 1))
	mg := New(Spec{Kind: Waypoint, SpeedMps: 1}, geo.Rect{MaxX: 10, MaxY: 10}, f, sim.NewRNG(1).Stream(StreamLabel), nil)
	enc, err := mg.EncodeEventArg(nil)
	if err != nil {
		t.Fatal(err)
	}
	if arg, err := mg.DecodeEventArg(enc); err != nil || arg != nil {
		t.Fatalf("decode(nil) = %v, %v", arg, err)
	}
	if arg, err := mg.DecodeEventArg([]byte("null")); err != nil || arg != nil {
		t.Fatalf("decode(null) = %v, %v", arg, err)
	}
	if _, err := mg.EncodeEventArg(42); err == nil {
		t.Fatal("encode of a non-nil arg succeeded")
	}
	if _, err := mg.DecodeEventArg([]byte(`{"x":1}`)); err == nil {
		t.Fatal("decode of a non-null payload succeeded")
	}
}
