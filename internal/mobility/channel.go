package mobility

import (
	"math"

	"repro/internal/geo"
	"repro/internal/radio"
	"repro/internal/sim"
)

// Channel wraps a radio model to give per-pair shadowing a time axis.
// Each node carries a shadowing epoch counter; the Manager bumps it
// every DecorrM metres of travel. A pair's shadowing is re-drawn by
// mixing both endpoints' epochs into the inner LogDistance seed, so it
// stays deterministic (a pure function of seed, pair, and epochs),
// reciprocal (epochs are combined in node-id order), and bounded by the
// same ±MaxShadowSigmas truncation MaxRange already budgets for. While
// both epochs are zero the inner model is consulted untouched, so a
// wrapped static run is bit-identical to an unwrapped one. Inner models
// without shadowing (FreeSpace, Matrix) pass through unchanged.
//
// A Channel belongs to one run: the Manager bumps epochs only
// immediately before repatching the moved node's delivery lists, which
// keeps the lists and the model consistent at every event.
type Channel struct {
	inner  radio.Model
	epochs []uint32
}

// NewChannel wraps inner for n nodes, all epochs zero.
func NewChannel(inner radio.Model, n int) *Channel {
	return &Channel{inner: inner, epochs: make([]uint32, n)}
}

// Bump advances node i's shadowing epoch.
func (c *Channel) Bump(i int) { c.epochs[i]++ }

// Epoch returns node i's shadowing epoch.
func (c *Channel) Epoch(i int) uint32 { return c.epochs[i] }

// Epochs returns a copy of all shadowing epochs (checkpoint export).
func (c *Channel) Epochs() []uint32 { return append([]uint32(nil), c.epochs...) }

// SetEpochs overwrites all shadowing epochs (checkpoint restore).
func (c *Channel) SetEpochs(e []uint32) {
	copy(c.epochs, e)
	for i := len(e); i < len(c.epochs); i++ {
		c.epochs[i] = 0
	}
}

// Loss implements radio.Model.
func (c *Channel) Loss(a int, pa geo.Point, b int, pb geo.Point) float64 {
	ea, eb := c.epochs[a], c.epochs[b]
	if ea == 0 && eb == 0 {
		return c.inner.Loss(a, pa, b, pb)
	}
	ld, ok := c.inner.(*radio.LogDistance)
	if !ok || ld.ShadowSigmaDB <= 0 {
		return c.inner.Loss(a, pa, b, pb)
	}
	// Re-seed a copy of the inner model with the pair's epochs mixed in
	// node-id order, so Loss(a,b) == Loss(b,a) at any epoch pair.
	elo, ehi := ea, eb
	if b < a {
		elo, ehi = eb, ea
	}
	re := *ld
	re.Seed = ld.Seed ^ sim.HashPair(uint64(elo)+1, uint64(ehi)+1)
	return re.Loss(a, pa, b, pb)
}

// MaxRange implements radio.RangeBounder by forwarding to the inner
// model; re-drawn shadowing has the same truncated distribution, so the
// inner headroom bound still holds. An inner model without a bound
// yields +Inf, which sends the medium down the dense path — exactly the
// treatment the unwrapped model would get.
func (c *Channel) MaxRange(maxLossDB float64) float64 {
	if rb, ok := c.inner.(radio.RangeBounder); ok {
		return rb.MaxRange(maxLossDB)
	}
	return math.Inf(1)
}
