// Package runner executes independent simulation trials across a pool
// of worker goroutines with results collected in submission order.
//
// # Relation to the paper
//
// The §5 evaluation is hundreds of independent runs — 50 link pairs per
// figure, 500 interferer triples, ten runs per AP count — each a
// self-contained simulation. This package is the reproduction's
// scaling harness for that shape: trials share nothing but an immutable
// testbed, each builds its own scheduler, medium and RNG streams from a
// seed derived before any work is dispatched, so the workload is
// embarrassingly parallel without giving up determinism. The trial
// function receives only its index, every seed is a pure function of
// that index, and results land in a slice slot owned by the index: a
// run produces bit-identical output at any worker count, including 1
// (which runs inline on the calling goroutine, with no goroutines
// spawned at all).
package runner
