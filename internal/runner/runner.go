package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Config scales a pool. The zero value is valid: one worker per
// available CPU and no progress reporting.
type Config struct {
	// Workers is the number of concurrent trial goroutines. Zero or
	// negative selects GOMAXPROCS. One runs every trial inline on the
	// calling goroutine.
	Workers int
	// OnProgress, when non-nil, is called after every completed trial
	// with the number done so far and the total. Calls are serialised
	// but — above one worker — not ordered by trial index.
	OnProgress func(done, total int)
}

// EffectiveWorkers resolves the pool width this configuration selects:
// Workers, defaulted to GOMAXPROCS when non-positive. Map additionally
// clamps it to the trial count.
func (c Config) EffectiveWorkers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

// Map runs fn(i) for every i in [0, n) across the pool and returns the
// results indexed by i. The output is identical for every worker count:
// fn must derive all randomness from i (and state captured before Map is
// called), never from shared mutable state. A panic in any trial is
// re-raised on the calling goroutine after the pool drains.
func Map[T any](cfg Config, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	results := make([]T, n)
	w := cfg.EffectiveWorkers()
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			results[i] = fn(i)
			if cfg.OnProgress != nil {
				cfg.OnProgress(i+1, n)
			}
		}
		return results
	}

	var (
		next     atomic.Int64
		done     atomic.Int64
		mu       sync.Mutex // serialises OnProgress
		panicked atomic.Pointer[trialPanic]
		wg       sync.WaitGroup
	)
	work := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1) - 1)
			if i >= n || panicked.Load() != nil {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						panicked.CompareAndSwap(nil, &trialPanic{value: r})
					}
				}()
				results[i] = fn(i)
			}()
			if cfg.OnProgress != nil {
				mu.Lock()
				cfg.OnProgress(int(done.Add(1)), n)
				mu.Unlock()
			} else {
				done.Add(1)
			}
		}
	}
	wg.Add(w)
	for k := 0; k < w; k++ {
		go work()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		// Re-raise the original value so recover() sees the same thing at
		// every worker count (the 1-worker path propagates it untouched).
		panic(p.value)
	}
	return results
}

// trialPanic records the first trial panic so Map can re-raise it.
type trialPanic struct {
	value any
}

// Do runs fn(i) for every i in [0, n) for side effects only.
func Do(cfg Config, n int, fn func(i int)) {
	Map(cfg, n, func(i int) struct{} {
		fn(i)
		return struct{}{}
	})
}
