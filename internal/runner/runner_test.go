package runner

import (
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

// trial mimics an experiment unit: all randomness derived from the index.
func trial(i int) uint64 {
	rng := sim.NewRNG(uint64(i)*7919 + 1)
	var s uint64
	for k := 0; k < 1000; k++ {
		s += rng.Uint64() >> 32
	}
	return s
}

func TestMapOrdering(t *testing.T) {
	for _, w := range []int{0, 1, 2, 4, 16, 100} {
		got := Map(Config{Workers: w}, 37, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	want := Map(Config{Workers: 1}, 64, trial)
	for _, w := range []int{2, 4, 16} {
		got := Map(Config{Workers: w}, 64, trial)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: trial %d = %d, want %d", w, i, got[i], want[i])
			}
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got := Map(Config{}, 0, trial); got != nil {
		t.Fatalf("n=0 returned %v, want nil", got)
	}
	if got := Map(Config{Workers: 8}, 1, func(i int) int { return 42 }); len(got) != 1 || got[0] != 42 {
		t.Fatalf("n=1 returned %v", got)
	}
}

func TestProgressReporting(t *testing.T) {
	for _, w := range []int{1, 4} {
		var calls int
		var lastDone int
		Map(Config{Workers: w, OnProgress: func(done, total int) {
			calls++
			if total != 25 {
				t.Fatalf("workers=%d: total = %d, want 25", w, total)
			}
			if done != lastDone+1 {
				t.Fatalf("workers=%d: done jumped from %d to %d", w, lastDone, done)
			}
			lastDone = done
		}}, 25, trial)
		if calls != 25 {
			t.Fatalf("workers=%d: %d progress calls, want 25", w, calls)
		}
	}
}

func TestMapUsesMultipleGoroutines(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single-CPU environment")
	}
	var peak atomic.Int64
	var cur atomic.Int64
	Map(Config{Workers: 4}, 64, func(i int) int {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		trial(i)
		cur.Add(-1)
		return 0
	})
	if peak.Load() < 2 {
		t.Errorf("peak concurrency %d, want ≥2", peak.Load())
	}
}

func TestPanicPropagation(t *testing.T) {
	for _, w := range []int{1, 4} {
		func() {
			defer func() {
				// The original panic value must propagate unchanged at
				// every worker count.
				if r := recover(); r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want \"boom\"", w, r)
				}
			}()
			Map(Config{Workers: w}, 16, func(i int) int {
				if i == 7 {
					panic("boom")
				}
				return i
			})
		}()
	}
}

func TestDo(t *testing.T) {
	var sum atomic.Int64
	Do(Config{Workers: 4}, 100, func(i int) { sum.Add(int64(i)) })
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
}
