package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30*Microsecond, func() { got = append(got, 3) })
	s.At(10*Microsecond, func() { got = append(got, 1) })
	s.At(20*Microsecond, func() { got = append(got, 2) })
	s.RunAll()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*Microsecond {
		t.Errorf("Now() = %v, want 30µs", s.Now())
	}
}

func TestSchedulerFIFOTieBreak(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		s.At(5*Millisecond, func() { got = append(got, i) })
	}
	s.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-deadline events fired out of order: got[%d] = %d", i, v)
		}
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	fired := 0
	s.At(1*Second, func() { fired++ })
	s.At(2*Second, func() { fired++ })
	s.At(3*Second, func() { fired++ })
	s.Run(2 * Second)
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
	if s.Now() != 2*Second {
		t.Errorf("Now() = %v, want 2s", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending() = %d, want 1", s.Pending())
	}
}

func TestSchedulerClockAdvancesToUntil(t *testing.T) {
	s := NewScheduler()
	s.Run(5 * Second)
	if s.Now() != 5*Second {
		t.Errorf("Now() = %v, want 5s with empty agenda", s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler()
	fired := false
	tm := s.At(1*Second, func() { fired = true })
	if !tm.Active() {
		t.Fatal("timer should be active before firing")
	}
	if !tm.Stop() {
		t.Fatal("Stop() on pending timer should return true")
	}
	if tm.Stop() {
		t.Fatal("second Stop() should return false")
	}
	s.RunAll()
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := NewScheduler()
	tm := s.At(1*Microsecond, func() {})
	s.RunAll()
	if tm.Active() {
		t.Error("timer still active after firing")
	}
	if tm.Stop() {
		t.Error("Stop() after fire should return false")
	}
}

func TestTimerStopMiddleOfHeap(t *testing.T) {
	s := NewScheduler()
	var got []int
	timers := make([]*Timer, 10)
	for i := 0; i < 10; i++ {
		i := i
		timers[i] = s.At(Time(i+1)*Millisecond, func() { got = append(got, i) })
	}
	timers[3].Stop()
	timers[7].Stop()
	s.RunAll()
	for _, v := range got {
		if v == 3 || v == 7 {
			t.Fatalf("stopped timer %d fired", v)
		}
	}
	if len(got) != 8 {
		t.Errorf("fired %d events, want 8", len(got))
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(1*Second, func() {})
	s.RunAll()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	s.At(500*Millisecond, func() {})
}

func TestAfterNegativeClamps(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.After(-5, func() { fired = true })
	s.RunAll()
	if !fired {
		t.Error("After with negative duration should fire immediately")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := NewScheduler()
	var order []string
	s.At(1*Millisecond, func() {
		order = append(order, "a")
		s.After(1*Millisecond, func() { order = append(order, "c") })
	})
	s.At(1500*Microsecond, func() { order = append(order, "b") })
	s.RunAll()
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDurationConversion(t *testing.T) {
	if Duration(3*time.Millisecond) != 3*Millisecond {
		t.Error("Duration(3ms) mismatch")
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds() = %v, want 1.5", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	root := NewRNG(7)
	s1 := root.Stream(1)
	s2 := root.Stream(2)
	same := 0
	for i := 0; i < 100; i++ {
		if s1.Uint64() == s2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams 1 and 2 produced %d identical values", same)
	}
	// Deriving the stream again must reproduce it.
	s1b := root.Stream(1)
	if s1b.Uint64() == s1.Uint64() {
		// s1 already advanced 100 values, so equality here would be chance;
		// instead check first value directly:
	}
	c, d := NewRNG(7).Stream(9), NewRNG(7).Stream(9)
	for i := 0; i < 100; i++ {
		if c.Uint64() != d.Uint64() {
			t.Fatal("re-derived stream diverged")
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	if err := quick.Check(func(_ int) bool {
		f := r.Float64()
		return f >= 0 && f < 1
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(4)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[r.Intn(10)]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn(10) value %d count %d outside [700,1300]", v, c)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(5)
	n := 50000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if mean < -0.05 || mean > 0.05 {
		t.Errorf("normal mean = %v, want ≈0", mean)
	}
	if variance < 0.9 || variance > 1.1 {
		t.Errorf("normal variance = %v, want ≈1", variance)
	}
}

func TestRNGDurationIn(t *testing.T) {
	r := NewRNG(6)
	lo, hi := 5*Millisecond, 20*Millisecond
	for i := 0; i < 1000; i++ {
		d := r.DurationIn(lo, hi)
		if d < lo || d > hi {
			t.Fatalf("DurationIn = %v outside [%v,%v]", d, lo, hi)
		}
	}
	if r.DurationIn(hi, lo) != hi {
		t.Error("DurationIn with hi<=lo should return lo argument")
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(8)
	p := r.Perm(20)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestHashPairSymmetricUse(t *testing.T) {
	// HashPair itself is ordered; callers pass (min,max). Verify determinism
	// and spread.
	if HashPair(3, 5) != HashPair(3, 5) {
		t.Error("HashPair not deterministic")
	}
	if HashPair(3, 5) == HashPair(5, 3) {
		t.Error("HashPair should distinguish argument order (callers canonicalise)")
	}
	seen := make(map[uint64]bool)
	for a := uint64(0); a < 50; a++ {
		for b := a; b < 50; b++ {
			h := HashPair(a, b)
			if seen[h] {
				t.Fatalf("HashPair collision at (%d,%d)", a, b)
			}
			seen[h] = true
		}
	}
}

func TestSchedulerFiredCount(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 25; i++ {
		s.At(Time(i)*Microsecond, func() {})
	}
	s.RunAll()
	if s.Fired() != 25 {
		t.Errorf("Fired() = %d, want 25", s.Fired())
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	s := NewScheduler()
	var tick func()
	n := 0
	tick = func() {
		n++
		if n < b.N {
			s.After(1*Microsecond, tick)
		}
	}
	s.After(1*Microsecond, tick)
	b.ResetTimer()
	s.RunAll()
}
