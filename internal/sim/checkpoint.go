package sim

import (
	"encoding/json"
	"fmt"
	"sort"
)

// This file is the checkpoint surface of the scheduler and RNG: enough
// accessors to capture every piece of hidden state bit-exactly and put
// it back. The scheduler itself stays format-agnostic — owners encode
// their own event arguments through the codec callbacks, and
// internal/checkpoint owns the envelope.

// State returns the RNG's internal state word.
func (r *RNG) State() uint64 { return r.state }

// SetState overwrites the RNG's internal state word. Restoring the
// state captured by State reproduces the exact continuation of the
// stream.
func (r *RNG) SetState(s uint64) { r.state = s }

// EventRecord is one agenda event in checkpoint form. Target and Arg
// are encoded by the owning component (the scheduler cannot name
// arbitrary handler types): Owner is a stable key the resumer maps
// back to a live EventHandler, Arg the owner's own encoding of the
// event argument.
type EventRecord struct {
	At    Time            `json:"at"`
	Seq   uint64          `json:"seq"`
	Slot  int32           `json:"slot"`
	Owner string          `json:"owner"`
	Arg   json.RawMessage `json:"arg,omitempty"`
}

// SchedulerState is a complete, self-contained snapshot of a
// Scheduler: the clock, the agenda (in deterministic (at, seq) order),
// the cancellation-slot table and its free list, and the event/seq
// counters. Restoring it reproduces the exact pop order and the exact
// slot generations outstanding Timers were issued with.
type SchedulerState struct {
	Now       Time          `json:"now"`
	NextSeq   uint64        `json:"next_seq"`
	Fired     uint64        `json:"fired"`
	SlotGens  []uint32      `json:"slot_gens"`
	FreeSlots []int32       `json:"free_slots"`
	Events    []EventRecord `json:"events"`
}

// EncodeFunc maps one live agenda event to its checkpoint form. It
// must return a stable owner key and an encoding of arg the matching
// DecodeFunc can invert. Returning an error aborts the export — an
// unencodable event (e.g. a raw closure) is a checkpointing bug in the
// component that scheduled it.
type EncodeFunc func(target EventHandler, arg any) (owner string, encoded json.RawMessage, err error)

// DecodeFunc maps one checkpointed event back to a live handler and
// argument in the reconstructed simulation.
type DecodeFunc func(owner string, encoded json.RawMessage) (EventHandler, any, error)

// ExportState captures the scheduler's complete state. Events are
// emitted in (at, seq) pop order, which is deterministic regardless of
// heap layout. Closure events (At/After) cannot be encoded; components
// that checkpoint must schedule through Post/PostAfter/ResetAt with
// typed arguments instead.
func (s *Scheduler) ExportState(encode EncodeFunc) (SchedulerState, error) {
	st := SchedulerState{
		Now:       s.now,
		NextSeq:   s.nextSeq,
		Fired:     s.fired,
		SlotGens:  make([]uint32, len(s.slots)),
		FreeSlots: append([]int32(nil), s.freeSlots...),
		Events:    make([]EventRecord, 0, len(s.queue)),
	}
	for i, sl := range s.slots {
		st.SlotGens[i] = sl.gen
	}
	for i := range s.queue {
		ev := &s.queue[i]
		if _, isClosure := ev.target.(funcRunner); isClosure {
			return SchedulerState{}, fmt.Errorf("sim: agenda holds a closure event at %v (seq %d); closure events are not checkpointable", ev.at, ev.seq)
		}
		owner, arg, err := encode(ev.target, ev.arg)
		if err != nil {
			return SchedulerState{}, fmt.Errorf("sim: encoding event at %v (seq %d): %w", ev.at, ev.seq, err)
		}
		st.Events = append(st.Events, EventRecord{At: ev.at, Seq: ev.seq, Slot: ev.slot, Owner: owner, Arg: arg})
	}
	sort.Slice(st.Events, func(i, j int) bool {
		a, b := &st.Events[i], &st.Events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Seq < b.Seq
	})
	return st, nil
}

// RestoreState replaces the scheduler's entire state with st. Whatever
// the skeleton construction scheduled beforehand is discarded: after
// RestoreState the agenda, clock, slot table and counters are exactly
// those captured by ExportState. Component Timers must be re-pointed
// separately via RestoreTimer, against the slot generations restored
// here.
func (s *Scheduler) RestoreState(st SchedulerState, decode DecodeFunc) error {
	queue := make([]event, 0, len(st.Events))
	for _, rec := range st.Events {
		target, arg, err := decode(rec.Owner, rec.Arg)
		if err != nil {
			return fmt.Errorf("sim: decoding event at %v (seq %d, owner %q): %w", rec.At, rec.Seq, rec.Owner, err)
		}
		if rec.Slot >= 0 && int(rec.Slot) >= len(st.SlotGens) {
			return fmt.Errorf("sim: event seq %d references slot %d beyond table size %d", rec.Seq, rec.Slot, len(st.SlotGens))
		}
		queue = append(queue, event{at: rec.At, seq: rec.Seq, target: target, arg: arg, slot: rec.Slot})
	}
	s.now = st.Now
	s.nextSeq = st.NextSeq
	s.fired = st.Fired
	s.slots = make([]slotEntry, len(st.SlotGens))
	for i, gen := range st.SlotGens {
		s.slots[i] = slotEntry{heapIndex: -1, gen: gen}
	}
	s.freeSlots = append([]int32(nil), st.FreeSlots...)
	// The events arrive in (at, seq) order, which is a valid min-heap
	// (every prefix of a sorted sequence satisfies the heap property),
	// so they can be installed directly.
	s.queue = queue
	for i := range s.queue {
		if slot := s.queue[i].slot; slot >= 0 {
			s.slots[slot].heapIndex = int32(i)
		}
	}
	return nil
}

// TimerState is a Timer handle in checkpoint form. Set distinguishes a
// timer that has been armed at least once (its slot/gen are meaningful
// against the owning scheduler's slot table) from a zero-valued one.
type TimerState struct {
	Set  bool   `json:"set,omitempty"`
	Slot int32  `json:"slot,omitempty"`
	Gen  uint32 `json:"gen,omitempty"`
	At   Time   `json:"at,omitempty"`
}

// State captures the timer handle for a checkpoint. Whether the timer
// is pending is not stored: Active is derived from the scheduler's
// slot table, which the checkpoint restores exactly.
func (t *Timer) State() TimerState {
	if t == nil || t.s == nil {
		return TimerState{}
	}
	return TimerState{Set: true, Slot: t.slot, Gen: t.gen, At: t.at}
}

// RestoreTimer re-points a component-owned timer at this scheduler
// from its checkpointed state. It must run after RestoreState so the
// slot generations line up; Active and Stop then behave exactly as
// they did at capture time.
func (s *Scheduler) RestoreTimer(tm *Timer, st TimerState) {
	if !st.Set {
		*tm = Timer{}
		return
	}
	*tm = Timer{s: s, slot: st.Slot, gen: st.Gen, at: st.At}
}
