// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock with nanosecond resolution, a cancellable event queue,
// and seeded random-number streams.
//
// The kernel is single-goroutine by design. Wireless MAC protocols are
// reactive state machines driven by a totally ordered event sequence;
// running them on one goroutine with a heap-ordered agenda keeps every
// experiment reproducible from its seed.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately not time.Time: simulations begin at zero
// and have no wall-clock meaning.
type Time int64

// Common durations in virtual time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts a standard library duration to virtual time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// An event is a scheduled callback. Events with equal deadlines fire in
// scheduling order (seq breaks ties), which keeps runs stable across
// map-iteration and heap-sift nondeterminism.
type event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // heap index; -1 once removed
}

// Timer is a handle to a scheduled event; it can be stopped before firing.
type Timer struct {
	ev *event
	s  *Scheduler
}

// Stop cancels the timer. It reports whether the timer was still pending
// (false if it already fired or was previously stopped). Stopping a nil
// timer is a no-op that returns false.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.index < 0 {
		return false
	}
	heap.Remove(&t.s.queue, t.ev.index)
	t.ev.index = -1
	t.ev.fn = nil
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool { return t != nil && t.ev != nil && t.ev.index >= 0 }

// When returns the deadline of the timer. It is valid even after the timer
// fired or was stopped.
func (t *Timer) When() Time {
	if t == nil || t.ev == nil {
		return 0
	}
	return t.ev.at
}

// eventQueue is a binary min-heap over (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Scheduler owns the virtual clock and the event agenda.
// The zero value is ready to use.
type Scheduler struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	fired   uint64
}

// NewScheduler returns an empty scheduler with the clock at zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending returns the number of events waiting in the agenda.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: a MAC state machine that rewinds time is a bug, not a request.
func (s *Scheduler) At(t Time, fn func()) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	ev := &event{at: t, seq: s.nextSeq, fn: fn}
	s.nextSeq++
	heap.Push(&s.queue, ev)
	return &Timer{ev: ev, s: s}
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Step executes the next event, advancing the clock to its deadline.
// It reports false when the agenda is empty.
func (s *Scheduler) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.fn == nil { // stopped after being popped: cannot happen, but be safe
			continue
		}
		s.now = ev.at
		fn := ev.fn
		ev.fn = nil
		s.fired++
		fn()
		return true
	}
	return false
}

// Run executes events until the agenda is empty or the clock would pass
// until. The clock is left at until (or at the last event if the agenda
// drained first but never beyond until).
func (s *Scheduler) Run(until Time) {
	for len(s.queue) > 0 && s.queue[0].at <= until {
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// RunAll executes events until the agenda is empty. Use only in tests or
// workloads that are guaranteed to quiesce.
func (s *Scheduler) RunAll() {
	for s.Step() {
	}
}
