package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. It is deliberately not time.Time: simulations begin at zero
// and have no wall-clock meaning.
type Time int64

// Common durations in virtual time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Duration converts a standard library duration to virtual time.
func Duration(d time.Duration) Time { return Time(d.Nanoseconds()) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string { return fmt.Sprintf("%.6fs", t.Seconds()) }

// An EventHandler receives fired events. Components that schedule events
// per frame implement it once and pass per-event context through arg, so
// the steady-state schedule→fire cycle performs no heap allocation (a
// closure per event would allocate; a pointer-shaped arg does not).
type EventHandler interface {
	HandleEvent(arg any)
}

// event is a scheduled callback, stored by value in the agenda heap.
// Events with equal deadlines fire in scheduling order (seq breaks
// ties), which keeps runs stable across heap-sift nondeterminism. slot
// indexes the cancellation table for timer-backed events; -1 marks the
// uncancellable fire-and-forget events of the hot path.
type event struct {
	at     Time
	seq    uint64
	target EventHandler
	arg    any
	slot   int32
}

// slotEntry tracks one cancellable event's position in the heap. gen
// disambiguates recycled slots: a Timer holds the generation it was
// issued with and goes stale when the slot is freed and reissued.
type slotEntry struct {
	heapIndex int32 // -1 once fired or stopped
	gen       uint32
}

// funcRunner adapts func() callbacks to the EventHandler path; At and
// After wrap through it so closure-based callers keep compiling.
type funcRunner struct{}

func (funcRunner) HandleEvent(arg any) { arg.(func())() }

// Timer is a handle to a scheduled event; it can be stopped before
// firing. The zero value is not a valid timer.
type Timer struct {
	s    *Scheduler
	slot int32
	gen  uint32
	at   Time
}

// Stop cancels the timer. It reports whether the timer was still pending
// (false if it already fired or was previously stopped). Stopping a nil
// timer is a no-op that returns false.
func (t *Timer) Stop() bool {
	if t == nil || t.s == nil {
		return false
	}
	sl := &t.s.slots[t.slot]
	if sl.gen != t.gen || sl.heapIndex < 0 {
		return false
	}
	t.s.removeAt(int(sl.heapIndex))
	t.s.freeSlot(t.slot)
	return true
}

// Active reports whether the timer is still pending.
func (t *Timer) Active() bool {
	if t == nil || t.s == nil {
		return false
	}
	sl := &t.s.slots[t.slot]
	return sl.gen == t.gen && sl.heapIndex >= 0
}

// When returns the deadline of the timer. It is valid even after the
// timer fired or was stopped.
func (t *Timer) When() Time {
	if t == nil {
		return 0
	}
	return t.at
}

// Scheduler owns the virtual clock and the event agenda.
// The zero value is ready to use.
type Scheduler struct {
	now   Time
	queue []event // 4-ary min-heap over (at, seq)

	// Cancellation table for timer-backed events, with a free-list so
	// fired events recycle their slots instead of growing the table.
	slots     []slotEntry
	freeSlots []int32

	nextSeq uint64
	fired   uint64
}

// NewScheduler returns an empty scheduler with the clock at zero.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending returns the number of events waiting in the agenda.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

func (s *Scheduler) checkNotPast(t Time) {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
}

// Post schedules h.HandleEvent(arg) at absolute virtual time t with no
// cancellation handle. This is the zero-allocation path: the event lives
// by value in the agenda heap, so steady-state traffic (which posts and
// fires at the same rate) touches no allocator. Scheduling in the past
// panics, as with At.
func (s *Scheduler) Post(t Time, h EventHandler, arg any) {
	s.checkNotPast(t)
	s.push(event{at: t, seq: s.nextSeq, target: h, arg: arg, slot: -1})
	s.nextSeq++
}

// PostAfter schedules h.HandleEvent(arg) d after the current time with
// no cancellation handle.
func (s *Scheduler) PostAfter(d Time, h EventHandler, arg any) {
	if d < 0 {
		d = 0
	}
	s.Post(s.now+d, h, arg)
}

// AtHandler schedules h.HandleEvent(arg) at absolute virtual time t and
// returns a cancellation handle. Only the Timer itself is allocated; the
// event is stored by value and its cancellation slot is recycled.
func (s *Scheduler) AtHandler(t Time, h EventHandler, arg any) *Timer {
	tm := new(Timer)
	s.ResetAt(tm, t, h, arg)
	return tm
}

// ResetAt re-arms the caller-owned timer tm to run h.HandleEvent(arg) at
// absolute virtual time t. It is the allocation-free form of AtHandler:
// components that re-arm a fixed timer per frame (DIFS, backoff, ACK
// wait) embed a Timer value and pass its address here, so steady-state
// re-arming touches no allocator. tm must not be active; a previously
// fired, stopped, or zero-valued Timer is ready for reuse.
func (s *Scheduler) ResetAt(tm *Timer, t Time, h EventHandler, arg any) {
	s.checkNotPast(t)
	slot := s.allocSlot()
	*tm = Timer{s: s, slot: slot, gen: s.slots[slot].gen, at: t}
	s.push(event{at: t, seq: s.nextSeq, target: h, arg: arg, slot: slot})
	s.nextSeq++
}

// ResetAfter re-arms the caller-owned timer tm to run h.HandleEvent(arg)
// d after the current time.
func (s *Scheduler) ResetAfter(tm *Timer, d Time, h EventHandler, arg any) {
	if d < 0 {
		d = 0
	}
	s.ResetAt(tm, s.now+d, h, arg)
}

// AfterHandler schedules h.HandleEvent(arg) d after the current time and
// returns a cancellation handle.
func (s *Scheduler) AfterHandler(d Time, h EventHandler, arg any) *Timer {
	if d < 0 {
		d = 0
	}
	return s.AtHandler(s.now+d, h, arg)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past panics: a MAC state machine that rewinds time is a bug, not a
// request. At is a thin wrapper over the handler path; prefer Post for
// per-frame events on hot paths.
func (s *Scheduler) At(t Time, fn func()) *Timer {
	return s.AtHandler(t, funcRunner{}, fn)
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Step executes the next event, advancing the clock to its deadline.
// It reports false when the agenda is empty.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := s.queue[0]
	s.popRoot()
	if ev.slot >= 0 {
		// Free before firing so Stop from inside the callback reports
		// false for the event already executing.
		s.freeSlot(ev.slot)
	}
	s.now = ev.at
	s.fired++
	ev.target.HandleEvent(ev.arg)
	return true
}

// Run executes events until the agenda is empty or the clock would pass
// until. The clock is left at until (or at the last event if the agenda
// drained first but never beyond until).
func (s *Scheduler) Run(until Time) {
	for len(s.queue) > 0 && s.queue[0].at <= until {
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// RunAll executes events until the agenda is empty. Use only in tests or
// workloads that are guaranteed to quiesce.
func (s *Scheduler) RunAll() {
	for s.Step() {
	}
}

// ---------------------------------------------------------------------------
// Cancellation slots.

func (s *Scheduler) allocSlot() int32 {
	if n := len(s.freeSlots); n > 0 {
		slot := s.freeSlots[n-1]
		s.freeSlots = s.freeSlots[:n-1]
		return slot
	}
	s.slots = append(s.slots, slotEntry{heapIndex: -1})
	return int32(len(s.slots) - 1)
}

func (s *Scheduler) freeSlot(slot int32) {
	s.slots[slot].heapIndex = -1
	s.slots[slot].gen++ // invalidate outstanding Timers
	s.freeSlots = append(s.freeSlots, slot)
}

// ---------------------------------------------------------------------------
// Heap. Hand-rolled over []event rather than container/heap: the
// interface-based API would box every by-value event on Push/Pop, which
// is exactly the allocation this representation exists to avoid.
//
// The heap is 4-ary and the sifts are hole-based. Events are ~7 words
// (two of them interfaces, so every copy pays write-barrier
// bookkeeping); the dominant steady-state cost is therefore event
// copies, not comparisons. A 4-ary layout halves the tree depth of the
// binary heap, and moving elements into a hole instead of swapping
// does one copy per level instead of three. Pop order cannot change:
// (at, seq) keys are unique, so every valid min-heap drains in exactly
// the same total order — this is a representation choice, invisible to
// golden traces.

// heapArity is the fan-out of the agenda heap.
const heapArity = 4

// eventLess orders events by (deadline, scheduling sequence).
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// place writes ev at heap index i and repoints its cancellation slot.
func (s *Scheduler) place(i int, ev event) {
	s.queue[i] = ev
	if ev.slot >= 0 {
		s.slots[ev.slot].heapIndex = int32(i)
	}
}

func (s *Scheduler) push(ev event) {
	s.queue = append(s.queue, event{}) // open a hole at the tail
	s.siftUp(len(s.queue)-1, ev)
}

// siftUp moves the hole at index i rootward until ev fits, then places
// ev into it. The caller must have detached s.queue[i] already (it is a
// hole: its previous contents are dead or duplicated elsewhere).
func (s *Scheduler) siftUp(i int, ev event) {
	for i > 0 {
		parent := (i - 1) / heapArity
		if !eventLess(&ev, &s.queue[parent]) {
			break
		}
		s.place(i, s.queue[parent])
		i = parent
	}
	s.place(i, ev)
}

// siftDown moves the hole at index i leafward until ev fits, then
// places ev into it.
func (s *Scheduler) siftDown(i int, ev event) {
	n := len(s.queue)
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		least := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if eventLess(&s.queue[c], &s.queue[least]) {
				least = c
			}
		}
		if !eventLess(&s.queue[least], &ev) {
			break
		}
		s.place(i, s.queue[least])
		i = least
	}
	s.place(i, ev)
}

// popRoot removes the minimum event, zeroing the vacated tail entry so
// the heap's spare capacity retains no target/arg references.
func (s *Scheduler) popRoot() {
	n := len(s.queue) - 1
	tail := s.queue[n]
	s.queue[n] = event{}
	s.queue = s.queue[:n]
	if n > 0 {
		s.siftDown(0, tail)
	}
}

// removeAt removes the event at heap index i (timer cancellation). The
// displaced tail event may belong on either side of i, so it is sifted
// down first and, if it did not move, up.
func (s *Scheduler) removeAt(i int) {
	n := len(s.queue) - 1
	tail := s.queue[n]
	s.queue[n] = event{}
	s.queue = s.queue[:n]
	if i == n {
		return
	}
	s.siftDown(i, tail)
	if s.queue[i].seq == tail.seq {
		// tail settled at i; it may still be smaller than its parent.
		s.siftUp(i, tail)
	}
}
