// Package sim provides the deterministic discrete-event simulation
// kernel every other package runs on: a virtual clock with nanosecond
// resolution, a cancellable event agenda, and seeded random-number
// streams.
//
// # Relation to the paper
//
// The kernel implements no CMAP mechanism itself; it is the substrate
// that makes the §5 evaluation reproducible. The paper's methodology
// compares protocol arms on identical channel realisations (§5.1) —
// here that becomes a hard guarantee: every run is a pure function of
// its seed, because (a) events fire in total (deadline, scheduling
// sequence) order on a single goroutine, and (b) every randomness
// consumer draws from its own RNG stream derived from (seed, label), so
// adding one never perturbs another.
//
// # Design
//
// The agenda is a hand-rolled 4-ary min-heap storing events by value
// with hole-based sifts — container/heap would box every entry.
// Post/PostAfter is the fire-and-forget path used by per-frame traffic;
// AtHandler/AfterHandler add cancellation handles backed by a recycled
// slot table; ResetAt/ResetAfter re-arm caller-owned Timer values so
// per-frame timers (DIFS, backoff, ACK wait, traffic arrivals) allocate
// nothing in steady state. Events dispatch through the EventHandler
// interface with a pointer-shaped arg instead of closures; together
// these make the schedule→fire cycle allocation-free, the property the
// transmit (internal/medium) and arrival (internal/traffic) hot paths
// are gated on.
package sim
