package sim

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strconv"
	"testing"
)

// The scheduler checkpoint round-trip: export mid-run, restore into a
// fresh scheduler whose skeleton posted different events, and the
// restored agenda must pop in exactly the captured order with the same
// sequence numbers, and outstanding timers must keep working against
// the restored slot table.

// recHandler records every event it handles, tagged with the clock.
type recHandler struct {
	name string
	log  *[]string
	s    *Scheduler
}

func (h *recHandler) HandleEvent(arg any) {
	*h.log = append(*h.log, fmt.Sprintf("%s:%v@%d", h.name, arg, h.s.Now()))
}

// codec encodes the test handlers: owner is the handler name, the
// argument is an int.
func codec(byName map[string]*recHandler) (EncodeFunc, DecodeFunc) {
	enc := func(target EventHandler, arg any) (string, json.RawMessage, error) {
		h, ok := target.(*recHandler)
		if !ok {
			return "", nil, fmt.Errorf("unknown handler %T", target)
		}
		raw, err := json.Marshal(arg.(int))
		return h.name, raw, err
	}
	dec := func(owner string, encoded json.RawMessage) (EventHandler, any, error) {
		h, ok := byName[owner]
		if !ok {
			return nil, nil, fmt.Errorf("unknown owner %q", owner)
		}
		var v int
		if err := json.Unmarshal(encoded, &v); err != nil {
			return nil, nil, err
		}
		return h, v, nil
	}
	return enc, dec
}

func newRec(s *Scheduler, log *[]string, names ...string) map[string]*recHandler {
	byName := map[string]*recHandler{}
	for _, n := range names {
		byName[n] = &recHandler{name: n, log: log, s: s}
	}
	return byName
}

func TestSchedulerExportRestoreRoundTrip(t *testing.T) {
	var logA []string
	a := NewScheduler()
	ha := newRec(a, &logA, "x", "y")
	encA, _ := codec(ha)

	// Interleave plain posts and slot-backed timer posts, run partway so
	// the clock, fired counter and seq counters are all non-trivial.
	for i := 0; i < 8; i++ {
		a.Post(Time(10*(i+1)), ha["x"], i)
	}
	tm := a.AtHandler(Time(95), ha["y"], 100)
	a.ResetAt(tm, Time(55), ha["y"], 101) // same slot, bumped gen
	stopped := a.AtHandler(Time(42), ha["y"], 200)
	stopped.Stop() // frees a slot → FreeSlots must round-trip
	a.Run(Time(30))

	st, err := a.ExportState(encA)
	if err != nil {
		t.Fatal(err)
	}
	tmSt := tm.State()
	preLen := len(logA) // events A already fired before the cut

	// The restore target has its own junk agenda that must vanish.
	var logB []string
	b := NewScheduler()
	hb := newRec(b, &logB, "x", "y")
	_, decB := codec(hb)
	b.Post(Time(5), hb["x"], 999)
	b.AfterHandler(Time(7), hb["y"], 998)

	if err := b.RestoreState(st, decB); err != nil {
		t.Fatal(err)
	}
	var tm2 Timer
	b.RestoreTimer(&tm2, tmSt)

	if b.Now() != a.Now() {
		t.Fatalf("clock %v vs %v", b.Now(), a.Now())
	}
	if b.Pending() != a.Pending() {
		t.Fatalf("pending %d vs %d", b.Pending(), a.Pending())
	}
	if b.Fired() != a.Fired() {
		t.Fatalf("fired %d vs %d", b.Fired(), a.Fired())
	}
	if !tm2.Active() || tm2.When() != Time(55) {
		t.Fatalf("restored timer: active=%v when=%v, want active at 55", tm2.Active(), tm2.When())
	}

	a.RunAll()
	b.RunAll()
	if !reflect.DeepEqual(logA[preLen:], logB) {
		t.Fatalf("pop order diverged:\n a: %v\n b: %v", logA[preLen:], logB)
	}
	if b.Fired() != a.Fired() {
		t.Fatalf("final fired %d vs %d", b.Fired(), a.Fired())
	}
}

// TestSchedulerRestoreTimerStop: a restored timer handle must still
// cancel its event (slot generations line up after restore).
func TestSchedulerRestoreTimerStop(t *testing.T) {
	var log []string
	a := NewScheduler()
	ha := newRec(a, &log, "x")
	enc, _ := codec(ha)
	tm := a.AtHandler(Time(50), ha["x"], 1)
	st, err := a.ExportState(enc)
	if err != nil {
		t.Fatal(err)
	}
	tmSt := tm.State()

	b := NewScheduler()
	hb := newRec(b, &log, "x")
	_, dec := codec(hb)
	if err := b.RestoreState(st, dec); err != nil {
		t.Fatal(err)
	}
	var tm2 Timer
	b.RestoreTimer(&tm2, tmSt)
	if !tm2.Stop() {
		t.Fatal("restored timer failed to cancel its event")
	}
	b.RunAll()
	if len(log) != 0 {
		t.Fatalf("cancelled event fired anyway: %v", log)
	}
}

// TestSchedulerExportClosureEvent: closure events (At/After) are not
// checkpointable and must fail the export with a clear error rather
// than a corrupt checkpoint.
func TestSchedulerExportClosureEvent(t *testing.T) {
	s := NewScheduler()
	s.At(Time(10), func() {})
	enc := func(EventHandler, any) (string, json.RawMessage, error) { return "", nil, nil }
	if _, err := s.ExportState(enc); err == nil {
		t.Fatal("export of a closure event succeeded; want error")
	}
}

// TestSchedulerStateJSONStable: the exported state must survive a JSON
// round-trip bit-exactly — the envelope stores it as JSON.
func TestSchedulerStateJSONStable(t *testing.T) {
	var log []string
	a := NewScheduler()
	ha := newRec(a, &log, "x")
	enc, dec := codec(ha)
	for i := 0; i < 5; i++ {
		a.Post(Time(7*(i+1)), ha["x"], i)
	}
	a.Run(Time(10))
	st, err := a.ExportState(enc)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var st2 SchedulerState
	if err := json.Unmarshal(data, &st2); err != nil {
		t.Fatal(err)
	}
	b := NewScheduler()
	if err := b.RestoreState(st2, dec); err != nil {
		t.Fatal(err)
	}
	st3, err := b.ExportState(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st, st3) {
		t.Fatal("state diverged across JSON round-trip")
	}
}

// TestRNGStateRoundTrip: SetState(State()) continues the stream exactly.
func TestRNGStateRoundTrip(t *testing.T) {
	r := NewRNG(12345)
	for i := 0; i < 10; i++ {
		r.Uint64()
	}
	saved := r.State()
	var want []uint64
	for i := 0; i < 10; i++ {
		want = append(want, r.Uint64())
	}
	r2 := NewRNG(1)
	r2.SetState(saved)
	for i, w := range want {
		if g := r2.Uint64(); g != w {
			t.Fatalf("draw %d: %s vs %s", i, strconv.FormatUint(g, 16), strconv.FormatUint(w, 16))
		}
	}
}
