package sim

import "math"

// RNG is a small, fast, deterministic random number generator
// (SplitMix64). Each consumer of randomness in a simulation takes its own
// stream so that adding randomness to one component never perturbs another;
// streams are derived from a root seed and a stream label.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. A zero seed is remapped so
// the generator never degenerates.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &RNG{state: seed}
}

// Stream derives an independent child generator from the parent seed and a
// label. Identical (seed, label) pairs always yield identical streams.
func (r *RNG) Stream(label uint64) *RNG {
	// Mix the label through one splitmix round of a copy; do not disturb
	// the parent state.
	z := r.state + 0x9e3779b97f4a7c15*(label+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return NewRNG(z ^ (z >> 31))
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// DurationIn returns a uniform virtual duration in [lo, hi].
func (r *RNG) DurationIn(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(r.Int63n(int64(hi-lo)+1))
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u <= 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// HashPair deterministically mixes two integers into a 64-bit value.
// It is used to derive symmetric per-link randomness (e.g. shadowing):
// HashPair(min(a,b), max(a,b)) is identical in both link directions.
func HashPair(a, b uint64) uint64 {
	z := a*0x9e3779b97f4a7c15 + b*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
