package sim

import "testing"

// fuzzRecorder appends each fired event's id to a shared log, giving the
// fuzzer an observable total order of execution.
type fuzzRecorder struct{ fired *[]uint64 }

func (r fuzzRecorder) HandleEvent(arg any) { *r.fired = append(*r.fired, arg.(uint64)) }

// FuzzScheduler drives the agenda heap with a random interleaving of
// Post, ResetAt, Stop and Step decoded from the fuzz input, against a
// flat reference model (a plain slice, min by (deadline, seq)). Checked
// invariants: events fire in exact (deadline, scheduling-order) order,
// the clock lands on each fired deadline, Stop's return value matches
// the model's notion of pending, a fired or stopped timer is inactive,
// and Pending tracks the model's size after every operation.
func FuzzScheduler(f *testing.F) {
	f.Add([]byte{0, 10, 0, 5, 3, 0, 3, 0, 3, 0})
	f.Add([]byte{1, 0, 1, 1, 2, 0, 3, 0, 1, 64, 2, 1, 3, 0})
	f.Add([]byte{0, 3, 1, 3, 1, 3, 3, 0, 2, 3, 0, 0, 3, 0, 3, 0, 3, 0})
	f.Add([]byte{1, 7, 1, 7, 1, 7, 3, 0, 3, 0, 2, 7, 0, 1, 3, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewScheduler()
		var fired []uint64
		rec := fuzzRecorder{&fired}

		type mev struct {
			at  Time
			seq int
			id  uint64
		}
		var model []mev
		const none = ^uint64(0)
		var timers [4]Timer
		timerEvent := [4]uint64{none, none, none, none}

		indexOf := func(id uint64) int {
			for i, e := range model {
				if e.id == id {
					return i
				}
			}
			return -1
		}
		removeID := func(id uint64) {
			if i := indexOf(id); i >= 0 {
				model = append(model[:i], model[i+1:]...)
			}
		}
		minEvent := func() mev {
			best := 0
			for i := 1; i < len(model); i++ {
				if model[i].at < model[best].at ||
					(model[i].at == model[best].at && model[i].seq < model[best].seq) {
					best = i
				}
			}
			return model[best]
		}
		var nextID uint64
		seq := 0
		step := func() {
			if len(model) == 0 {
				if s.Step() {
					t.Fatal("Step fired with an empty model")
				}
				return
			}
			exp := minEvent()
			before := len(fired)
			if !s.Step() {
				t.Fatalf("Step returned false with %d modelled events pending", len(model))
			}
			if len(fired) != before+1 {
				t.Fatalf("Step fired %d events, want exactly 1", len(fired)-before)
			}
			if fired[before] != exp.id {
				t.Fatalf("fired event %d, model says %d is next (at %v, seq %d)", fired[before], exp.id, exp.at, exp.seq)
			}
			if s.Now() != exp.at {
				t.Fatalf("clock at %v after firing event with deadline %v", s.Now(), exp.at)
			}
			removeID(exp.id)
			for ti, id := range timerEvent {
				if id == exp.id {
					timerEvent[ti] = none
					if timers[ti].Active() {
						t.Fatalf("timer %d still active after its event fired", ti)
					}
					if timers[ti].Stop() {
						t.Fatalf("timer %d Stop succeeded after its event fired", ti)
					}
				}
			}
		}

		for k := 0; k+1 < len(data); k += 2 {
			op, d := data[k], data[k+1]
			switch op % 4 {
			case 0: // Post: uncancellable event at now + bounded delta
				at := s.Now() + Time(d%64)*Microsecond
				id := nextID
				nextID++
				s.Post(at, rec, id)
				model = append(model, mev{at: at, seq: seq, id: id})
				seq++
			case 1: // ResetAt on a pooled timer (stopping it first if armed)
				ti := int(d) % len(timers)
				if timerEvent[ti] != none && indexOf(timerEvent[ti]) >= 0 {
					if !timers[ti].Stop() {
						t.Fatalf("timer %d pending in model but Stop returned false", ti)
					}
					removeID(timerEvent[ti])
				}
				at := s.Now() + Time(d%64)*Microsecond
				id := nextID
				nextID++
				s.ResetAt(&timers[ti], at, rec, id)
				if !timers[ti].Active() {
					t.Fatalf("timer %d inactive immediately after ResetAt", ti)
				}
				if timers[ti].When() != at {
					t.Fatalf("timer %d deadline %v, want %v", ti, timers[ti].When(), at)
				}
				timerEvent[ti] = id
				model = append(model, mev{at: at, seq: seq, id: id})
				seq++
			case 2: // Stop
				ti := int(d) % len(timers)
				wasPending := timerEvent[ti] != none && indexOf(timerEvent[ti]) >= 0
				if got := timers[ti].Stop(); got != wasPending {
					t.Fatalf("timer %d Stop = %v, model says pending = %v", ti, got, wasPending)
				}
				if wasPending {
					removeID(timerEvent[ti])
				}
				timerEvent[ti] = none
			case 3:
				step()
			}
			if s.Pending() != len(model) {
				t.Fatalf("Pending() = %d, model holds %d", s.Pending(), len(model))
			}
		}
		for len(model) > 0 {
			step()
		}
		if s.Step() {
			t.Fatal("agenda not empty after draining the model")
		}
	})
}
