package sim

import (
	"sort"
	"testing"
)

// Property tests for the scheduler: randomized workloads checked against
// the kernel's ordering, cancellation, and clock-boundary contracts. The
// whole simulation's determinism rests on these invariants, so they are
// exercised across many seeded random agendas, with deliberately heavy
// deadline collisions.

// TestPropertyEqualDeadlineFIFO schedules many events over a tiny time
// range (forcing ties) and asserts the firing order is exactly
// (deadline, scheduling order) — the total order the rest of the stack
// leans on at equal deadlines.
func TestPropertyEqualDeadlineFIFO(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := NewRNG(uint64(trial) + 1)
		s := NewScheduler()
		const n = 400
		type key struct {
			at  Time
			ord int
		}
		scheduled := make([]key, n)
		var fired []key
		for i := 0; i < n; i++ {
			i := i
			at := Time(rng.Intn(16)) // 16 slots for 400 events: many ties
			scheduled[i] = key{at, i}
			s.At(at, func() { fired = append(fired, key{s.Now(), i}) })
		}
		s.RunAll()
		if len(fired) != n {
			t.Fatalf("trial %d: fired %d of %d events", trial, len(fired), n)
		}
		want := append([]key(nil), scheduled...)
		sort.SliceStable(want, func(a, b int) bool { return want[a].at < want[b].at })
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("trial %d: firing position %d = %+v, want %+v (equal-deadline FIFO broken)",
					trial, i, fired[i], want[i])
			}
		}
	}
}

// TestPropertyStopContract drives random schedule/stop interleavings:
// stopped-while-pending events never fire and report true exactly once;
// fired events report false from Stop; everything else fires in order.
func TestPropertyStopContract(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := NewRNG(uint64(trial) + 100)
		s := NewScheduler()
		const n = 300
		timers := make([]*Timer, n)
		firedAt := make([]Time, n)
		for i := range firedAt {
			firedAt[i] = -1
		}
		for i := 0; i < n; i++ {
			i := i
			timers[i] = s.At(Time(rng.Intn(50)), func() { firedAt[i] = s.Now() })
		}
		stopped := map[int]bool{}
		for i := 0; i < n; i++ {
			if rng.Bool(0.4) {
				if !timers[i].Stop() {
					t.Fatalf("trial %d: Stop on pending timer %d returned false", trial, i)
				}
				if timers[i].Stop() {
					t.Fatalf("trial %d: second Stop on timer %d returned true", trial, i)
				}
				if timers[i].Active() {
					t.Fatalf("trial %d: stopped timer %d still active", trial, i)
				}
				stopped[i] = true
			}
		}
		s.RunAll()
		for i := 0; i < n; i++ {
			switch {
			case stopped[i] && firedAt[i] != -1:
				t.Fatalf("trial %d: stopped timer %d fired at %v", trial, i, firedAt[i])
			case !stopped[i] && firedAt[i] == -1:
				t.Fatalf("trial %d: live timer %d never fired", trial, i)
			case !stopped[i] && firedAt[i] != timers[i].When():
				t.Fatalf("trial %d: timer %d fired at %v, deadline %v", trial, i, firedAt[i], timers[i].When())
			}
			if !stopped[i] && timers[i].Stop() {
				t.Fatalf("trial %d: Stop after firing returned true for timer %d", trial, i)
			}
		}
	}
}

// TestStopAfterPopSameDeadline pins the subtlest cancellation case: two
// events share a deadline and the first, while executing (its event
// already popped), stops the second. The second must not fire even
// though the clock already reached its deadline — and stopping the
// currently-executing event must be a harmless no-op.
func TestStopAfterPopSameDeadline(t *testing.T) {
	s := NewScheduler()
	var t1, t2 *Timer
	fired1, fired2 := false, false
	t1 = s.At(5, func() {
		fired1 = true
		if t1.Stop() {
			t.Error("Stop on the currently-executing (popped) event returned true")
		}
		if !t2.Stop() {
			t.Error("Stop on a same-deadline pending event returned false")
		}
	})
	t2 = s.At(5, func() { fired2 = true })
	s.RunAll()
	if !fired1 {
		t.Fatal("first event did not fire")
	}
	if fired2 {
		t.Fatal("event stopped after its deadline was reached still fired")
	}
	if t2.When() != 5 {
		t.Errorf("When() after stop = %v, want the original deadline 5", t2.When())
	}
}

// TestPropertyRunClockBoundary checks Run(until) against random agendas
// and a random sequence of increasing boundaries: an event fires in the
// Run call whose boundary first covers its deadline (inclusive), the
// clock lands exactly on every boundary, and Now never retreats.
func TestPropertyRunClockBoundary(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := NewRNG(uint64(trial) + 500)
		s := NewScheduler()
		const n = 200
		deadlines := make([]Time, n)
		firedAt := make([]Time, n)
		fireSeen := make([]bool, n)
		for i := 0; i < n; i++ {
			i := i
			deadlines[i] = Time(rng.Intn(1000))
			s.At(deadlines[i], func() {
				firedAt[i] = s.Now()
				fireSeen[i] = true
			})
		}
		prev := Time(0)
		for _, until := range []Time{0, 137, 137, 450, 999, 1500} {
			s.Run(until)
			if until >= prev {
				if s.Now() != until {
					t.Fatalf("trial %d: after Run(%v) clock is %v, want exactly the boundary", trial, until, s.Now())
				}
				prev = until
			} else if s.Now() != prev {
				t.Fatalf("trial %d: Run(%v) into the past moved the clock to %v", trial, until, s.Now())
			}
			for i := 0; i < n; i++ {
				if deadlines[i] <= prev && !fireSeen[i] {
					t.Fatalf("trial %d: event at %v unfired after Run(%v)", trial, deadlines[i], prev)
				}
				if deadlines[i] > prev && fireSeen[i] {
					t.Fatalf("trial %d: event at %v fired before its boundary (Run(%v))", trial, deadlines[i], prev)
				}
			}
		}
		for i := 0; i < n; i++ {
			if firedAt[i] != deadlines[i] {
				t.Fatalf("trial %d: event %d fired at %v, deadline %v", trial, i, firedAt[i], deadlines[i])
			}
		}
	}
}

// TestPropertyNestedSchedulingKeepsOrder mixes callbacks that schedule
// further events (as MAC state machines do) and asserts global
// (time, seq) order still holds over the combined agenda.
func TestPropertyNestedSchedulingKeepsOrder(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := NewRNG(uint64(trial) + 900)
		s := NewScheduler()
		var fired []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			fired = append(fired, s.Now())
			if depth >= 3 {
				return
			}
			kids := rng.Intn(3)
			for k := 0; k < kids; k++ {
				s.After(Time(rng.Intn(40)), func() { spawn(depth + 1) })
			}
		}
		for i := 0; i < 30; i++ {
			s.At(Time(rng.Intn(100)), func() { spawn(0) })
		}
		s.RunAll()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				t.Fatalf("trial %d: time retreated %v → %v at event %d", trial, fired[i-1], fired[i], i)
			}
		}
		if s.Pending() != 0 {
			t.Fatalf("trial %d: %d events left after RunAll", trial, s.Pending())
		}
	}
}
