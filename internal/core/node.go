package core

import (
	"fmt"

	"repro/internal/frame"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/stats"
)

// DeliverFunc observes each non-duplicate payload delivery at a receiver.
type DeliverFunc func(src int, pktSeq uint32, now sim.Time)

// Stats counts protocol events at one CMAP node.
type Stats struct {
	VpktsSent      uint64 // virtual packets transmitted (incl. retx rounds)
	DataSent       uint64 // data packets transmitted
	Delivered      uint64 // non-duplicate data packets received for us
	Duplicates     uint64
	AcksSent       uint64
	AcksReceived   uint64
	AckWaitExpired uint64 // tackwait expiries (ACK missing/late)
	RetxTimeouts   uint64 // window-full timeouts (§3.3)
	Defers         uint64 // virtual packets deferred by the conflict map
	Backoffs       uint64 // nonzero backoff waits taken
	HeadersHeard   uint64 // overheard headers (any destination)
	TrailersHeard  uint64
	ListsSent      uint64 // interferer-list broadcasts transmitted
	ListsHeard     uint64
	ListsRelayed   uint64 // two-hop relays of other receivers' lists (§3.1)
	Corrupt        uint64 // PHY-corrupted frames observed
}

// vpktTx tracks the in-progress transmission of one virtual packet.
type vpktTx struct {
	flow        *txFlow
	vseq        uint32
	seqs        []uint32
	next        int
	trailerSent bool
	isRetx      bool
}

// txFlow is the sender-side state of one destination: its queue, sequence
// space, window and retransmission set. Plain CMAP has exactly one; the
// §3.2 per-destination-queues optimisation (Config.PerDestQueues) allows
// several, letting the sender transmit to a non-conflicting destination
// while the head-of-line one must defer.
type txFlow struct {
	dst          frame.Addr
	dstID        int
	bcast        bool
	bcastTargets []frame.Addr
	saturated    bool
	backlog      int
	nextPktSeq   uint32
	unacked      map[uint32]struct{}
	retx         []uint32
}

// drained reports whether the flow has nothing queued or outstanding.
func (f *txFlow) drained() bool {
	return !f.saturated && f.backlog == 0 && len(f.unacked) == 0
}

// rxVpkt tracks the in-progress reception of one inbound virtual packet.
type rxVpkt struct {
	vseq        uint32
	start       sim.Time // estimated on-air start (header start)
	expected    int
	got         []bool
	headerSeen  bool
	trailerSeen bool
	rate        uint8
	bcast       bool
}

// rxFlow is the receiver-side state for one sender.
type rxFlow struct {
	srcID   int
	srcAddr frame.Addr
	cum     uint32
	sack    map[uint32]struct{}
	cur     *rxVpkt
	// curBuf and gotBuf are the reusable storage behind cur: one inbound
	// virtual packet is tracked per sender at a time, so reception state
	// needs no per-vpkt heap objects. finTimer is the caller-owned
	// finalisation timer; finVseq records which virtual packet armed it.
	curBuf   rxVpkt
	gotBuf   []bool
	finTimer sim.Timer
	finVseq  uint32
	// pendExpected and pendLost accumulate loss evidence since the last
	// ACK, so every ACK reports the loss rate "over the previous window
	// of packets" (§3.3) — including virtual packets whose own trailer
	// (and hence ACK) was destroyed.
	pendExpected int
	pendLost     int

	// Figure 16/19 counters: of the virtual packets this receiver became
	// aware of, how many had a decodable header, and how many a header or
	// trailer.
	VpktsSeen     uint64
	VpktsHeader   uint64
	VpktsHdrOrTrl uint64
}

// Node is one CMAP station: simultaneously a sender, a receiver, and a
// promiscuous observer that maintains its slice of the conflict map.
type Node struct {
	id    int
	cfg   Config
	radio *phy.Radio
	sched *sim.Scheduler
	rng   *sim.RNG
	addr  frame.Addr

	// Meter, when set, records non-duplicate deliveries at this node.
	Meter *stats.Meter
	// OnDeliver, when set, observes non-duplicate deliveries.
	OnDeliver DeliverFunc

	obs         *observations
	deferTab    *deferTable
	interfStats map[pairKey]*interfStat
	interferers map[pairKey]sim.Time

	rx map[frame.Addr]*rxFlow

	// Sender state: one txFlow per destination (§3.2), scheduled
	// round-robin so no queue starves.
	flows     []*txFlow
	flowByDst map[frame.Addr]*txFlow
	rrNext    int
	nextVSeq  uint32
	cw        sim.Time
	cur       *vpktTx
	waitAck   bool

	// The send-loop timers are caller-owned values re-armed through
	// Scheduler.ResetAfter/ResetAt, so the per-virtual-packet cycle
	// allocates no Timer handles.
	ackTimer     sim.Timer
	backoffTimer sim.Timer
	deferTimer   sim.Timer
	retxTimer    sim.Timer
	retryTimer   sim.Timer

	// lastRelay rate-limits two-hop list relays per original source.
	lastRelay map[frame.Addr]sim.Time

	// Reusable buffers for the steady-state virtual-packet pipeline: one
	// virtual packet is in flight per sender and the medium completes all
	// receptions of a frame before its tx-done, so the staged vpktTx, the
	// header/trailer/data frames, the candidate sequence list and the
	// defer-check target list can all live in embedded storage instead of
	// fresh heap objects per frame.
	seqBuf  []uint32
	curBuf  vpktTx
	hdrBuf  frame.Control
	trlBuf  frame.Control
	dataBuf frame.Data
	targBuf [1]frame.Addr

	// ackFree recycles receiver-side ACK attempts; inflightAck is the one
	// whose frame is currently on the air (the radio transmits at most one
	// frame at a time), recycled at tx-done.
	ackFree     []*ackAttempt
	inflightAck *ackAttempt

	stat Stats
}

// New creates a CMAP node on network node id.
func New(id int, cfg Config, m mac.Network, rng *sim.RNG) *Node {
	n := &Node{
		id:          id,
		cfg:         cfg,
		radio:       m.Radio(id),
		sched:       m.Scheduler(),
		rng:         rng,
		addr:        frame.AddrFromID(id),
		obs:         newObservations(cfg),
		deferTab:    newDeferTable(),
		interfStats: make(map[pairKey]*interfStat),
		interferers: make(map[pairKey]sim.Time),
		rx:          make(map[frame.Addr]*rxFlow),
		flowByDst:   make(map[frame.Addr]*txFlow),
	}
	n.radio.SetHandler(n)
	// Desynchronised periodic interferer-list broadcast.
	first := rng.DurationIn(cfg.BroadcastPeriod/4, cfg.BroadcastPeriod)
	n.sched.PostAfter(first, n, evBroadcastTick)
	return n
}

// ID returns the node's medium index.
func (n *Node) ID() int { return n.id }

// Addr returns the node's link-layer address.
func (n *Node) Addr() frame.Addr { return n.addr }

// Stats returns a copy of the node's counters.
func (n *Node) Stats() Stats { return n.stat }

// DeferTableSize returns the number of live defer-table entries.
func (n *Node) DeferTableSize() int { return n.deferTab.size() }

// InterfererListLen returns the number of live interferer-list entries.
func (n *Node) InterfererListLen() int {
	now := n.sched.Now()
	c := 0
	for _, exp := range n.interferers {
		if exp > now {
			c++
		}
	}
	return c
}

// HasDeferEntry reports whether the defer table holds a live entry that
// would make sending to dst defer to src→theirDst (used by tests).
func (n *Node) HasDeferEntry(dst, src, theirDst frame.Addr, rate uint8) bool {
	return n.deferTab.conflicts(n.sched.Now(), dst, src, theirDst, rate)
}

// FlowCounters returns the Figure 16/19 virtual-packet visibility
// counters for traffic received from node src: virtual packets this node
// became aware of, those with a decoded header, and those with a decoded
// header or trailer.
func (n *Node) FlowCounters(src int) (seen, header, headerOrTrailer uint64) {
	f, ok := n.rx[frame.AddrFromID(src)]
	if !ok {
		return 0, 0, 0
	}
	return f.VpktsSeen, f.VpktsHeader, f.VpktsHdrOrTrl
}

// Idle reports whether the sender has nothing left to do on any flow: no
// backlog, no unacknowledged packets, nothing on the air. Saturated
// senders are never idle.
func (n *Node) Idle() bool {
	if n.cur != nil || n.waitAck {
		return false
	}
	for _, f := range n.flows {
		if !f.drained() {
			return false
		}
	}
	return true
}

// Backlog returns how many enqueued packets towards dst have not yet
// been consumed into virtual packets. Together with Enqueue it makes
// the node a traffic.Enqueuer, so arrival processes can enforce finite
// queue bounds. Saturated flows report 0 (their backlog is notional).
func (n *Node) Backlog(dst int) int {
	if f, ok := n.flowByDst[frame.AddrFromID(dst)]; ok {
		return f.backlog
	}
	return 0
}

// ReceivedFrom returns how many non-duplicate packets were delivered from
// src (0 if none).
func (n *Node) ReceivedFrom(src int) uint64 {
	f, ok := n.rx[frame.AddrFromID(src)]
	if !ok {
		return 0
	}
	return uint64(f.cum) + uint64(len(f.sack))
}

// ---------------------------------------------------------------------------
// Traffic API.

// SetSaturated makes the node a backlogged unicast source towards dst.
func (n *Node) SetSaturated(dst int) {
	f := n.flowTo(dst)
	f.saturated = true
	n.kick()
}

// Enqueue adds count packets towards dst. Without Config.PerDestQueues
// all traffic from one node must share a destination; with it, each new
// destination gets its own queue, window and sequence space (§3.2).
func (n *Node) Enqueue(dst int, count int) {
	f := n.flowTo(dst)
	f.backlog += count
	n.kick()
}

// SetBroadcast switches the node to broadcast (content dissemination)
// mode towards targets (§3.6): virtual packets carry the broadcast
// address, no ACKs are expected, and the defer check requires the
// transmission not to conflict with any target. Broadcast is exclusive
// with unicast flows.
func (n *Node) SetBroadcast(targets []int, saturated bool, count int) {
	if len(n.flows) > 0 {
		panic("core: node already has a unicast flow")
	}
	f := &txFlow{
		dst:       frame.Broadcast,
		dstID:     -1,
		bcast:     true,
		saturated: saturated,
		backlog:   count,
		unacked:   make(map[uint32]struct{}),
	}
	for _, t := range targets {
		f.bcastTargets = append(f.bcastTargets, frame.AddrFromID(t))
	}
	n.flows = append(n.flows, f)
	n.flowByDst[f.dst] = f
	n.kick()
}

// EnqueueBroadcast adds count packets to an existing broadcast flow
// (e.g. the next dissemination batch).
func (n *Node) EnqueueBroadcast(count int) {
	f := n.flowByDst[frame.Broadcast]
	if f == nil {
		panic("core: EnqueueBroadcast without SetBroadcast")
	}
	f.backlog += count
	n.kick()
}

// flowTo returns (creating if allowed) the sender flow towards dst.
func (n *Node) flowTo(dst int) *txFlow {
	a := frame.AddrFromID(dst)
	if f, ok := n.flowByDst[a]; ok {
		return f
	}
	if len(n.flows) > 0 && (!n.cfg.PerDestQueues || n.flows[0].bcast) {
		panic(fmt.Sprintf("core: node %d already has a flow to %v (enable PerDestQueues for multiple destinations)",
			n.id, n.flows[0].dst))
	}
	f := &txFlow{dst: a, dstID: dst, unacked: make(map[uint32]struct{})}
	n.flows = append(n.flows, f)
	n.flowByDst[a] = f
	return f
}

func (n *Node) kick() { n.trySend() }

// macEvent enumerates the node's fixed timer callbacks, dispatched
// through HandleEvent so the per-virtual-packet timers (backoff, defer
// re-check, ACK wait, retransmission, radio-busy retry) need no closure
// allocations.
type macEvent int

const (
	evTrySend macEvent = iota
	evRetry
	evDefer
	evBackoff
	evAckWait
	evRetxTimeout
	evBroadcastTick
)

// HandleEvent implements sim.EventHandler: fixed timer callbacks arrive
// as macEvent kinds; the receiver side's virtual-packet finalisation
// timer carries its rxFlow, and deferred ACK transmissions their pooled
// attempt, so neither needs a closure allocation.
func (n *Node) HandleEvent(arg any) {
	switch v := arg.(type) {
	case macEvent:
		switch v {
		case evTrySend, evRetry, evDefer, evBackoff:
			n.trySend()
		case evAckWait:
			n.ackWaitExpired()
		case evRetxTimeout:
			n.retxTimedOut()
		case evBroadcastTick:
			n.broadcastTick()
		}
	case *rxFlow:
		n.vpktFinExpired(v)
	case *ackAttempt:
		n.runAckAttempt(v)
	case *listSend:
		n.sendListWithRetries(v.list, v.budget)
	}
}

// ---------------------------------------------------------------------------
// phy.Handler.

// OnFrame implements phy.Handler: promiscuous processing of every
// decodable frame.
func (n *Node) OnFrame(f frame.Frame, info phy.RxInfo) {
	now := n.sched.Now()
	visible := now + n.cfg.Turnaround
	switch ff := f.(type) {
	case *frame.Control:
		if ff.Src == n.addr {
			return
		}
		if ff.Trailer {
			n.stat.TrailersHeard++
			n.obs.noteTrailer(ff, info, visible)
			n.obs.markEnded(ff.Src, ff.Seq, info.End)
			if ff.Dst == n.addr {
				n.rxTrailer(ff, info)
			}
		} else {
			n.stat.HeadersHeard++
			n.obs.noteHeader(ff, info, visible)
			if ff.Dst == n.addr {
				n.rxHeader(ff, info)
			}
		}
	case *frame.Data:
		if ff.Src == n.addr {
			return
		}
		n.obs.noteData(ff, info, visible)
		if ff.Dst == n.addr || ff.Dst.IsBroadcast() {
			n.rxData(ff, info)
		}
	case *frame.Ack:
		if ff.Dst == n.addr {
			n.onAck(ff)
		}
	case *frame.InterfererList:
		n.stat.ListsHeard++
		n.deferTab.applyRules(n.addr, ff, now+n.cfg.DeferTimeout)
		n.maybeRelayList(ff, now)
	}
}

// maybeRelayList re-broadcasts a freshly heard interferer list once when
// the §3.1 two-hop option is enabled, rate-limited per original source.
func (n *Node) maybeRelayList(l *frame.InterfererList, now sim.Time) {
	if !n.cfg.TwoHopLists || l.Relayed || l.Src == n.addr || len(l.Entries) == 0 {
		return
	}
	if n.lastRelay == nil {
		n.lastRelay = make(map[frame.Addr]sim.Time)
	}
	if last, ok := n.lastRelay[l.Src]; ok && now-last < n.cfg.BroadcastPeriod {
		return
	}
	n.lastRelay[l.Src] = now
	copyList := &frame.InterfererList{
		Src:     l.Src,
		Relayed: true,
		Entries: append([]frame.InterferenceEntry(nil), l.Entries...),
	}
	n.stat.ListsRelayed++
	n.sched.PostAfter(n.turnaroundDelay(), n, &listSend{list: copyList, budget: 8})
}

// listSend carries a pending interferer-list transmission (a two-hop
// relay or a radio-busy retry) through the agenda as a typed argument,
// keeping the agenda closure-free for checkpointing.
type listSend struct {
	list   *frame.InterfererList
	budget int
}

// OnCorrupt implements phy.Handler. CMAP infers collisions from sequence
// gaps, not from PHY corruption events, but counts them for diagnostics.
func (n *Node) OnCorrupt(phy.RxInfo) { n.stat.Corrupt++ }

// OnCarrier implements phy.Handler. CMAP does not carrier sense.
func (n *Node) OnCarrier(bool) {}

// OnTxDone implements phy.Handler: drives the back-to-back virtual packet
// chain and recycles the receiver side's ACK attempt once its frame has
// left the air (every addressee has decoded it by now — receptions
// complete before tx-done).
func (n *Node) OnTxDone(f frame.Frame) {
	if _, ok := f.(*frame.Ack); ok && n.inflightAck != nil {
		n.ackFree = append(n.ackFree, n.inflightAck)
		n.inflightAck = nil
	}
	if n.cur != nil {
		n.continueVpkt()
	}
}
