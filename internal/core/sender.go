package core

import (
	"slices"
	"sort"

	"repro/internal/frame"
	"repro/internal/phy"
	"repro/internal/sim"
)

// trySend is the entry point of the Figure 6 send loop. It is re-entered
// from every timer (backoff, defer re-check, ACK wait, retransmission
// timeout) and bails out unless the sender is genuinely idle. Flows are
// scanned round-robin: if the head destination must defer but another
// has no conflict, the other is served — the §3.2 per-destination-queue
// optimisation (with one flow this degenerates to the plain algorithm).
func (n *Node) trySend() {
	if len(n.flows) == 0 || n.cur != nil || n.waitAck {
		return
	}
	if n.backoffTimer.Active() || n.deferTimer.Active() || n.retryTimer.Active() {
		return
	}
	if n.radio.Transmitting() {
		// An ACK or interferer list of ours is on the air; come back.
		n.sched.ResetAfter(&n.retryTimer, 200*sim.Microsecond, n, evRetry)
		return
	}
	now := n.sched.Now()
	n.obs.prune(now)
	n.deferTab.prune(now)

	var earliestEnd sim.Time
	conflicted := false
	sendable := false
	totalUnacked := 0
	for _, f := range n.flows {
		totalUnacked += len(f.unacked)
	}
	start := n.rrNext
	for k := 0; k < len(n.flows); k++ {
		f := n.flows[(start+k)%len(n.flows)]
		seqs, isRetx := n.candidate(f)
		if len(seqs) == 0 {
			continue
		}
		sendable = true
		// The transmission decision process (§3.2), once per virtual
		// packet.
		if end, conflict := n.deferConflictEnd(now, f); conflict {
			conflicted = true
			if earliestEnd == 0 || end < earliestEnd {
				earliestEnd = end
			}
			continue // try the next destination's queue
		}
		n.rrNext = (start + k + 1) % len(n.flows)
		n.startVpkt(f, seqs, isRetx)
		return
	}

	switch {
	case conflicted:
		// Every sendable flow conflicts: wait until the earliest
		// conflicting transmission ends plus tdeferwait, then check
		// again. The re-check carries the software MAC's scheduling slop
		// (§4.1).
		n.stat.Defers++
		wait := earliestEnd + n.cfg.TdeferWait + n.rng.DurationIn(0, n.cfg.Turnaround)
		if wait <= now {
			wait = now + n.cfg.TdeferWait
		}
		n.sched.ResetAt(&n.deferTimer, wait, n, evDefer)
	case !sendable && totalUnacked > 0 && !n.retxTimer.Active():
		// Nothing sendable but packets are stuck unacknowledged: arm the
		// retransmission timeout (§3.3). The paper sizes τmax as the
		// airtime of a full window so a transmission interfering at the
		// destination can complete; we apply the same rationale to the
		// actual outstanding amount, which reduces to the paper's choice
		// exactly when the window is full and keeps finite-batch tails
		// from waiting out a full-window timeout.
		tauMin, tauMax := n.cfg.tauBounds()
		scaled := sim.Time(totalUnacked)*n.cfg.dataAirtime() + n.cfg.vpktAirtime(n.cfg.Nvpkt)
		if scaled < tauMax {
			tauMax = scaled
		}
		if tauMin > tauMax/2 {
			tauMin = tauMax / 2
		}
		n.sched.ResetAfter(&n.retxTimer, n.rng.DurationIn(tauMin, tauMax), n, evRetxTimeout)
	}
}

// candidate picks the data packets for flow f's next virtual packet:
// pending retransmissions first, else fresh packets if the window has
// room. It does not consume anything; startVpkt does.
func (n *Node) candidate(f *txFlow) ([]uint32, bool) {
	// Drop retransmission candidates acknowledged in the meantime.
	live := f.retx[:0]
	for _, s := range f.retx {
		if _, ok := f.unacked[s]; ok {
			live = append(live, s)
		}
	}
	f.retx = live
	if len(f.retx) > 0 {
		k := len(f.retx)
		if k > n.cfg.Nvpkt {
			k = n.cfg.Nvpkt
		}
		return f.retx[:k], true
	}
	avail := f.backlog
	if f.saturated {
		avail = n.cfg.Nvpkt
	}
	if avail > n.cfg.Nvpkt {
		avail = n.cfg.Nvpkt
	}
	if avail == 0 {
		return nil, false
	}
	if !f.bcast {
		room := n.cfg.windowPackets() - len(f.unacked)
		if room < avail {
			return nil, false
		}
	}
	// The candidate list lives in the node's reusable buffer: only one
	// virtual packet is ever staged at a time (trySend bails while cur is
	// set), and a discarded candidate for a deferring flow is dead before
	// the next flow's candidate overwrites it.
	seqs := n.seqBuf[:0]
	for i := 0; i < avail; i++ {
		seqs = append(seqs, f.nextPktSeq+uint32(i))
	}
	n.seqBuf = seqs
	return seqs, false
}

// deferConflictEnd scans the ongoing list against the defer table and
// reports the earliest end among transmissions conflicting with flow f
// (§3.2). A transmission conflicts if the destination is busy sending or
// receiving, if we ourselves are its receiver, or if a defer pattern
// matches.
func (n *Node) deferConflictEnd(now sim.Time, f *txFlow) (sim.Time, bool) {
	var earliest sim.Time
	found := false
	note := func(end sim.Time) {
		if !found || end < earliest {
			earliest = end
			found = true
		}
	}
	targets := f.bcastTargets
	if !f.bcast {
		n.targBuf[0] = f.dst
		targets = n.targBuf[:]
	}
	n.obs.ongoing(now, func(e *obsEntry) {
		if e.Src == n.addr {
			return
		}
		if e.Dst == n.addr {
			// We are that transmission's receiver; transmitting now would
			// abort it.
			note(e.EstEnd)
			return
		}
		for _, v := range targets {
			if e.Src == v || e.Dst == v {
				note(e.EstEnd) // destination busy sending or receiving
				return
			}
			if n.deferTab.conflicts(now, v, e.Src, e.Dst, e.Rate) {
				note(e.EstEnd)
				return
			}
		}
	})
	return earliest, found
}

// startVpkt begins the header → data… → trailer chain for one virtual
// packet of flow f, consuming the candidate packets.
func (n *Node) startVpkt(f *txFlow, seqs []uint32, isRetx bool) {
	if isRetx {
		f.retx = f.retx[len(seqs):]
		// Copy into the reusable buffer: seqs aliases f.retx, which the
		// next retransmission timeout rebuilds in place.
		n.seqBuf = append(n.seqBuf[:0], seqs...)
		seqs = n.seqBuf
	} else {
		f.nextPktSeq += uint32(len(seqs))
		if !f.saturated {
			f.backlog -= len(seqs)
		}
		if !f.bcast {
			for _, s := range seqs {
				f.unacked[s] = struct{}{}
			}
		}
	}
	vseq := n.nextVSeq
	n.nextVSeq++
	// The staged virtual packet and its header frame live in embedded
	// buffers: only one virtual packet is in flight per sender, and the
	// medium completes every reception of a frame before the sender's
	// tx-done, so by the time a buffer is rewritten nobody reads it.
	n.curBuf = vpktTx{flow: f, vseq: vseq, seqs: seqs, isRetx: isRetx}
	n.cur = &n.curBuf
	n.stat.VpktsSent++
	txMicros := uint32(n.cfg.vpktAirtime(len(seqs)) / sim.Microsecond)
	n.hdrBuf = frame.Control{
		Src:          n.addr,
		Dst:          f.dst,
		TxTimeMicros: txMicros,
		Seq:          vseq,
		Rate:         uint8(n.cfg.Rate),
	}
	n.radio.Transmit(&n.hdrBuf, phy.RateByID(n.cfg.ControlRate))
}

// continueVpkt transmits the next frame of the in-progress virtual packet
// with no interframe gap, as the prototype does (§4.1).
func (n *Node) continueVpkt() {
	c := n.cur
	switch {
	case c.next < len(c.seqs):
		i := c.next
		c.next++
		// One embedded data buffer serves the whole chain: frame i's
		// receivers all decode before the tx-done that stages frame i+1.
		n.dataBuf = frame.Data{
			Src:        n.addr,
			Dst:        c.flow.dst,
			PktSeq:     c.seqs[i],
			VSeq:       c.vseq,
			Index:      uint16(i),
			PayloadLen: uint16(n.cfg.PayloadBytes),
		}
		n.stat.DataSent++
		n.radio.Transmit(&n.dataBuf, phy.RateByID(n.cfg.Rate))
	case !c.trailerSent && !n.cfg.DisableTrailers:
		c.trailerSent = true
		n.trlBuf = frame.Control{
			Trailer:      true,
			Src:          n.addr,
			Dst:          c.flow.dst,
			TxTimeMicros: uint32(n.cfg.vpktAirtime(len(c.seqs)) / sim.Microsecond),
			Seq:          c.vseq,
			Rate:         uint8(n.cfg.Rate),
		}
		n.radio.Transmit(&n.trlBuf, phy.RateByID(n.cfg.ControlRate))
	default:
		f := c.flow
		n.cur = nil
		n.finishVpkt(f)
	}
}

// finishVpkt runs after the trailer: broadcast flows go straight to
// backoff; unicast flows wait up to tackwait for an ACK (Figure 6).
func (n *Node) finishVpkt(f *txFlow) {
	if f.bcast {
		n.startBackoff()
		return
	}
	n.waitAck = true
	n.sched.ResetAfter(&n.ackTimer, n.cfg.TackWait, n, evAckWait)
}

// ackWaitExpired fires when tackwait passes with no ACK.
func (n *Node) ackWaitExpired() {
	n.waitAck = false
	n.stat.AckWaitExpired++
	if n.cfg.BackoffOnMissingAck {
		// Ablation: 802.11-style growth on every missing ACK.
		if n.cw == 0 {
			n.cw = n.cfg.CWStart
		} else if n.cw < n.cfg.CWMax {
			n.cw *= 2
			if n.cw > n.cfg.CWMax {
				n.cw = n.cfg.CWMax
			}
		}
	}
	n.startBackoff()
}

// startBackoff waits a uniform duration in [0, CW] before the next
// virtual packet (§3.4), plus the software MAC's transmit-path latency
// (§4.1) — the prototype cannot fire the next header the same instant an
// ACK finishes decoding.
func (n *Node) startBackoff() {
	d := n.turnaroundDelay()
	if n.cw > 0 {
		b := n.rng.DurationIn(0, n.cw)
		if b > 0 {
			n.stat.Backoffs++
			d += b
		}
	}
	n.sched.ResetAfter(&n.backoffTimer, d, n, evBackoff)
}

// onAck processes a cumulative windowed ACK (Figure 7). The ACK's source
// identifies which flow it acknowledges.
func (n *Node) onAck(a *frame.Ack) {
	n.stat.AcksReceived++
	if f, ok := n.flowByDst[a.Src]; ok {
		for s := range f.unacked {
			if s < a.CumSeq || a.BitmapGet(int(s-a.CumSeq)) {
				delete(f.unacked, s)
			}
		}
	}
	// Loss-rate-driven contention window (Figure 7): grow on reported
	// loss above l_backoff, reset otherwise. Never touched on missing
	// ACKs. (Under the 802.11-style ablation, any ACK resets it.)
	if n.cfg.BackoffOnMissingAck {
		n.cw = 0
	} else if a.LossRate > n.cfg.LossBackoff {
		if n.cw == 0 {
			n.cw = n.cfg.CWStart
		} else if n.cw < n.cfg.CWMax {
			n.cw *= 2
			if n.cw > n.cfg.CWMax {
				n.cw = n.cfg.CWMax
			}
		}
	} else {
		n.cw = 0
	}
	// Progress: the retransmission timeout restarts from scratch if still
	// needed.
	n.retxTimer.Stop()
	if n.waitAck {
		n.ackTimer.Stop()
		n.waitAck = false
		n.startBackoff()
		return
	}
	// Re-enter the send loop through the software transmit path so the
	// next frame never starts the very instant the ACK ended.
	n.sched.PostAfter(n.turnaroundDelay(), n, evTrySend)
}

// retxTimedOut queues every unacknowledged packet of every flow for
// retransmission in sequence (§3.3).
func (n *Node) retxTimedOut() {
	n.stat.RetxTimeouts++
	for _, f := range n.flows {
		f.retx = f.retx[:0]
		for s := range f.unacked {
			f.retx = append(f.retx, s)
		}
		slices.Sort(f.retx)
	}
	n.trySend()
}

// broadcastTick periodically broadcasts the interferer list to one-hop
// neighbours (§3.1) and decays stale statistics.
func (n *Node) broadcastTick() {
	now := n.sched.Now()
	period := n.cfg.BroadcastPeriod
	n.sched.PostAfter(n.rng.DurationIn(period*9/10, period*11/10), n, evBroadcastTick)

	// Refresh the interferer list from current statistics.
	for k, st := range n.interfStats {
		st.decay(now, n.cfg.StatsHalfLife)
		if st.Expected >= float64(n.cfg.MinInterfSamples) && st.lossRate() > n.cfg.LossInterf {
			n.interferers[k] = now + n.cfg.InterfTimeout
		}
		if st.Expected < 1 {
			delete(n.interfStats, k)
		}
	}
	// Expire stale entries first; the common steady-state case of an empty
	// list returns before allocating anything.
	live := 0
	for k, exp := range n.interferers {
		if exp <= now {
			delete(n.interferers, k)
			continue
		}
		live++
	}
	if live == 0 {
		return
	}
	list := &frame.InterfererList{Src: n.addr}
	for k := range n.interferers {
		list.Entries = append(list.Entries, frame.InterferenceEntry{
			Source:     k.Source,
			Interferer: k.Interferer,
			Rate:       k.Rate,
		})
	}
	// Stable wire order regardless of map iteration.
	sort.Slice(list.Entries, func(i, j int) bool {
		a, b := list.Entries[i], list.Entries[j]
		if a.Source != b.Source {
			return a.Source.String() < b.Source.String()
		}
		return a.Interferer.String() < b.Interferer.String()
	})
	n.sendListWithRetries(list, 8)
}

// sendListWithRetries transmits the interferer list as soon as the radio
// is free, giving up after the retry budget. The retry is a typed
// *listSend event rather than a closure so an agenda holding one stays
// checkpointable.
func (n *Node) sendListWithRetries(list *frame.InterfererList, budget int) {
	if budget <= 0 {
		return
	}
	if n.radio.Transmitting() || n.cur != nil {
		n.sched.PostAfter(2*sim.Millisecond, n, &listSend{list: list, budget: budget - 1})
		return
	}
	n.stat.ListsSent++
	n.radio.Transmit(list, phy.RateByID(n.cfg.ControlRate))
}
