package core
