package core

import (
	"repro/internal/frame"
	"repro/internal/sim"
)

// anyAddr is the wildcard in defer-table entries ((v : x→∗) and
// (∗ : x→y)). The zero address is never a real node (AddrFromID always
// sets the locally-administered bit), so it is safe as a sentinel.
var anyAddr frame.Addr

// deferKey identifies one defer-table entry at a node u:
// "if u sends to OurDst while a transmission Src→TheirDst is ongoing at
// rate Rate, throughput drops" (§3.1). OurDst or TheirDst may be anyAddr.
type deferKey struct {
	OurDst   frame.Addr
	Src      frame.Addr
	TheirDst frame.Addr
	Rate     uint8
}

// deferTable is a node's slice of the network-wide conflict map: entries
// expire so the map adapts to changing channels.
type deferTable struct {
	entries map[deferKey]sim.Time // expiry per entry
}

func newDeferTable() *deferTable {
	return &deferTable{entries: make(map[deferKey]sim.Time)}
}

// add inserts or refreshes an entry.
func (t *deferTable) add(k deferKey, expiry sim.Time) {
	if cur, ok := t.entries[k]; !ok || expiry > cur {
		t.entries[k] = k.expireSentinel(expiry)
	}
}

func (k deferKey) expireSentinel(e sim.Time) sim.Time { return e }

// applyRules folds a received interferer list from node r into the table
// using the paper's two update rules (§3.1):
//
//	Rule 1: ∀q : (me, q) ∈ Ir  →  add (r : q→∗)
//	Rule 2: ∀q : (q, me) ∈ Ir  →  add (∗ : q→r)
func (t *deferTable) applyRules(me frame.Addr, list *frame.InterfererList, expiry sim.Time) {
	for _, e := range list.Entries {
		if e.Source == me {
			t.add(deferKey{OurDst: list.Src, Src: e.Interferer, TheirDst: anyAddr, Rate: e.Rate}, expiry)
		}
		if e.Interferer == me {
			t.add(deferKey{OurDst: anyAddr, Src: e.Source, TheirDst: list.Src, Rate: e.Rate}, expiry)
		}
	}
}

// conflicts reports whether sending to dst conflicts with an ongoing
// transmission src→theirDst at the given rate, by the two defer patterns
// of §3.2:
//
//	Pattern 1: (∗ : p→q)
//	Pattern 2: (v : p→∗)
func (t *deferTable) conflicts(now sim.Time, dst, src, theirDst frame.Addr, rate uint8) bool {
	if exp, ok := t.entries[deferKey{OurDst: anyAddr, Src: src, TheirDst: theirDst, Rate: rate}]; ok && exp > now {
		return true
	}
	if exp, ok := t.entries[deferKey{OurDst: dst, Src: src, TheirDst: anyAddr, Rate: rate}]; ok && exp > now {
		return true
	}
	return false
}

// prune removes expired entries.
func (t *deferTable) prune(now sim.Time) {
	for k, exp := range t.entries {
		if exp <= now {
			delete(t.entries, k)
		}
	}
}

// size returns the number of live entries (including any not yet pruned
// but unexpired).
func (t *deferTable) size() int { return len(t.entries) }

// pairKey identifies a (source, interferer) pair in a receiver's
// interference statistics and interferer list.
type pairKey struct {
	Source     frame.Addr
	Interferer frame.Addr
	Rate       uint8
}

// interfStat accumulates per-pair loss evidence: of Expected data packets
// from Source whose reception overlapped a transmission by Interferer,
// Lost were not delivered. Counters decay with a half-life so stale
// conflicts fade.
type interfStat struct {
	Expected float64
	Lost     float64
	// lastDecay is when the counters were last halved.
	lastDecay sim.Time
}

// lossRate returns Lost/Expected or 0 when empty.
func (s *interfStat) lossRate() float64 {
	if s.Expected == 0 {
		return 0
	}
	return s.Lost / s.Expected
}

// decay halves the counters once per half-life elapsed.
func (s *interfStat) decay(now sim.Time, halfLife sim.Time) {
	if halfLife <= 0 {
		return
	}
	for s.lastDecay+halfLife <= now {
		s.Expected /= 2
		s.Lost /= 2
		s.lastDecay += halfLife
	}
}
