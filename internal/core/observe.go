package core

import (
	"repro/internal/frame"
	"repro/internal/phy"
	"repro/internal/sim"
)

// obsKey identifies one overheard virtual packet.
type obsKey struct {
	Src  frame.Addr
	VSeq uint32
}

// obsEntry is the node's knowledge of one transmission it overheard: who
// is sending to whom, at what rate, and the estimated on-air interval.
// Entries are built from any decodable piece of a virtual packet — the
// header announces the whole interval, a trailer back-dates it, and data
// packets locate it from their index (§3.2's ongoing list, generalised
// into a short history used for both the access decision and interferer
// attribution).
type obsEntry struct {
	Src, Dst frame.Addr
	Rate     uint8
	VSeq     uint32
	// EstStart and EstEnd bound the virtual packet on the air.
	EstStart, EstEnd sim.Time
	// VisibleAt is when the software MAC has processed the first frame of
	// this entry (decode time + turnaround); the access decision cannot
	// act on it earlier (§4.1).
	VisibleAt sim.Time
}

// observations is the per-node table of overheard transmissions.
// Pruned entries park on a free list for reuse, so the steady-state
// observation flow (one entry per overheard virtual packet) does not
// touch the allocator.
type observations struct {
	cfg     Config
	entries map[obsKey]*obsEntry
	free    []*obsEntry
}

func newObservations(cfg Config) *observations {
	return &observations{cfg: cfg, entries: make(map[obsKey]*obsEntry)}
}

// retention is how long a finished transmission stays in the table for
// loss attribution before pruning.
func (o *observations) retention() sim.Time {
	return 2 * o.cfg.vpktAirtime(o.cfg.Nvpkt)
}

// upsert merges an interval estimate for (src, vseq).
func (o *observations) upsert(k obsKey, dst frame.Addr, rate uint8, start, end, visible sim.Time) *obsEntry {
	e, ok := o.entries[k]
	if !ok {
		if f := len(o.free); f > 0 {
			e = o.free[f-1]
			o.free = o.free[:f-1]
		} else {
			e = &obsEntry{}
		}
		*e = obsEntry{Src: k.Src, Dst: dst, Rate: rate, VSeq: k.VSeq,
			EstStart: start, EstEnd: end, VisibleAt: visible}
		o.entries[k] = e
		return e
	}
	if start < e.EstStart {
		e.EstStart = start
	}
	if end > e.EstEnd {
		e.EstEnd = end
	}
	if visible < e.VisibleAt {
		e.VisibleAt = visible
	}
	return e
}

// noteHeader records an overheard virtual-packet header.
func (o *observations) noteHeader(c *frame.Control, info phy.RxInfo, visible sim.Time) {
	end := info.Start + sim.Time(c.TxTimeMicros)*sim.Microsecond
	o.upsert(obsKey{Src: c.Src, VSeq: c.Seq}, c.Dst, c.Rate, info.Start, end, visible)
}

// noteTrailer records an overheard virtual-packet trailer, back-dating
// the interval by the announced transmission time.
func (o *observations) noteTrailer(c *frame.Control, info phy.RxInfo, visible sim.Time) {
	start := info.End - sim.Time(c.TxTimeMicros)*sim.Microsecond
	o.upsert(obsKey{Src: c.Src, VSeq: c.Seq}, c.Dst, c.Rate, start, info.End, visible)
}

// noteData records an overheard data packet, locating the whole virtual
// packet from the packet's index.
func (o *observations) noteData(d *frame.Data, info phy.RxInfo, visible sim.Time) {
	start := info.Start - o.cfg.controlAirtime() - sim.Time(d.Index)*o.cfg.dataAirtime()
	end := start + o.cfg.vpktAirtime(o.cfg.Nvpkt)
	o.upsert(obsKey{Src: d.Src, VSeq: d.VSeq}, d.Dst, uint8(o.cfg.Rate), start, end, visible)
}

// markEnded clamps an entry's end time (a trailer was heard, so the
// transmission is definitely over).
func (o *observations) markEnded(src frame.Addr, vseq uint32, end sim.Time) {
	if e, ok := o.entries[obsKey{Src: src, VSeq: vseq}]; ok && end < e.EstEnd {
		e.EstEnd = end
	}
}

// ongoing calls fn for every transmission believed to still be on the air
// and visible to the software MAC.
func (o *observations) ongoing(now sim.Time, fn func(*obsEntry)) {
	for _, e := range o.entries {
		if e.EstEnd > now && e.VisibleAt <= now {
			fn(e)
		}
	}
}

// overlapping calls fn for every known transmission (current or recent)
// from a source other than excl whose interval covers t.
func (o *observations) overlapping(t sim.Time, excl frame.Addr, fn func(*obsEntry)) {
	for _, e := range o.entries {
		if e.Src != excl && e.EstStart <= t && t < e.EstEnd {
			fn(e)
		}
	}
}

// prune drops entries that ended longer than the retention ago.
func (o *observations) prune(now sim.Time) {
	horizon := now - o.retention()
	for k, e := range o.entries {
		if e.EstEnd < horizon {
			delete(o.entries, k)
			o.free = append(o.free, e)
		}
	}
}

// size returns the table size (diagnostics).
func (o *observations) size() int { return len(o.entries) }
