package core

import (
	"repro/internal/frame"
	"repro/internal/phy"
	"repro/internal/sim"
)

// Config holds CMAP's protocol constants. DefaultConfig returns the
// values of §4.2.
type Config struct {
	// Rate is the data bit-rate; ControlRate carries headers, trailers,
	// ACKs and interferer lists (always the lowest rate, §5.8).
	Rate        phy.RateID
	ControlRate phy.RateID
	// PayloadBytes is the application payload per data packet.
	PayloadBytes int
	// Nvpkt is the number of data packets per virtual packet (§4.1).
	Nvpkt int
	// Nwindow is the send window in virtual packets (§3.3).
	Nwindow int
	// TackWait is how long a sender waits for an ACK after a virtual
	// packet; TdeferWait is the settle time after a conflicting
	// transmission ends before re-checking the defer table (§4.2).
	TackWait   sim.Time
	TdeferWait sim.Time
	// Turnaround models the software-MAC-to-PHY latency of the prototype
	// (§4.1): receivers ACK this long after a trailer, and overheard
	// frames become visible to the access decision this long after
	// decode.
	Turnaround sim.Time
	// CWStart and CWMax bound the loss-based contention window (§3.4).
	CWStart, CWMax sim.Time
	// LossBackoff is l_backoff: ACK-reported loss above it grows CW.
	LossBackoff float64
	// LossInterf is l_interf: concurrent loss above it marks an
	// interferer (§3.1 argues both must be 0.5).
	LossInterf float64
	// MinInterfSamples is how many attributed packet observations a
	// (source, interferer) pair needs before it can enter the interferer
	// list.
	MinInterfSamples int
	// BroadcastPeriod is the interferer-list broadcast interval.
	BroadcastPeriod sim.Time
	// DeferTimeout expires defer-table entries; InterfTimeout expires
	// interferer-list entries; StatsHalfLife decays the loss counters so
	// the map adapts to changing conditions.
	DeferTimeout  sim.Time
	InterfTimeout sim.Time
	StatsHalfLife sim.Time
	// TauMin and TauMax bound the window-full retransmission timeout.
	// Zero values derive the paper's choice: TauMax = the airtime of a
	// full window, TauMin = TauMax/2 (§3.3).
	TauMin, TauMax sim.Time

	// PerDestQueues enables the §3.2 optimisation: per-destination
	// queues with independent windows and sequence spaces, letting the
	// sender transmit to a non-conflicting destination while the
	// head-of-line one must defer. Queues are scheduled round-robin so
	// none starves.
	PerDestQueues bool

	// TwoHopLists enables the §3.1 option for networks with asymmetric
	// links: nodes re-broadcast each received interferer list once, so a
	// sender that cannot hear the receiver directly still learns its
	// conflicts. "It may help to propagate the interferer list over two
	// hops."
	TwoHopLists bool

	// DisableTrailers is an ablation switch: virtual packets carry only a
	// header, and receivers ACK on the estimated end of the virtual
	// packet instead of on trailer receipt. Figure 16 quantifies what the
	// trailer buys; this knob lets the benchmark reproduce that choice.
	DisableTrailers bool
	// BackoffOnMissingAck is an ablation switch: grow the contention
	// window whenever tackwait expires (802.11-style) instead of from the
	// loss rate reported inside ACKs. §3.4 argues the latter is more
	// resilient to ACK loss.
	BackoffOnMissingAck bool
}

// DefaultConfig returns the constants of the paper's implementation
// (§4.2): Nvpkt=32, Nwindow=8, tackwait=tdeferwait=5 ms, CWstart=5 ms,
// CWmax=320 ms, both loss thresholds 0.5.
func DefaultConfig() Config {
	return Config{
		Rate:             phy.Rate6Mbps,
		ControlRate:      phy.Rate6Mbps,
		PayloadBytes:     1400,
		Nvpkt:            32,
		Nwindow:          8,
		TackWait:         5 * sim.Millisecond,
		TdeferWait:       5 * sim.Millisecond,
		Turnaround:       1 * sim.Millisecond,
		CWStart:          5 * sim.Millisecond,
		CWMax:            320 * sim.Millisecond,
		LossBackoff:      0.5,
		LossInterf:       0.5,
		MinInterfSamples: 16,
		BroadcastPeriod:  500 * sim.Millisecond,
		DeferTimeout:     3 * sim.Second,
		InterfTimeout:    10 * sim.Second,
		StatsHalfLife:    5 * sim.Second,
	}
}

// dataWireSize returns the on-air size of one CMAP data packet.
func (c Config) dataWireSize() int {
	d := frame.Data{PayloadLen: uint16(c.PayloadBytes)}
	return d.WireSize()
}

// dataAirtime returns the airtime of one data packet at the data rate.
func (c Config) dataAirtime() sim.Time {
	return phy.Airtime(phy.RateByID(c.Rate), c.dataWireSize())
}

// controlAirtime returns the airtime of a header or trailer packet.
func (c Config) controlAirtime() sim.Time {
	return phy.Airtime(phy.RateByID(c.ControlRate), (&frame.Control{}).WireSize())
}

// vpktAirtime returns the total airtime of a virtual packet carrying n
// data packets: header + n data + trailer, back to back (no trailer when
// the ablation switch disables it).
func (c Config) vpktAirtime(n int) sim.Time {
	controls := sim.Time(2)
	if c.DisableTrailers {
		controls = 1
	}
	return controls*c.controlAirtime() + sim.Time(n)*c.dataAirtime()
}

// tauBounds returns the retransmission timeout bounds, deriving the
// paper's defaults when unset.
func (c Config) tauBounds() (sim.Time, sim.Time) {
	tauMax := c.TauMax
	if tauMax == 0 {
		tauMax = sim.Time(c.Nwindow) * c.vpktAirtime(c.Nvpkt)
	}
	tauMin := c.TauMin
	if tauMin == 0 {
		tauMin = tauMax / 2
	}
	return tauMin, tauMax
}

// windowPackets is the send window in data packets.
func (c Config) windowPackets() int { return c.Nwindow * c.Nvpkt }
