package core

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/sim"
)

// FuzzDeferTable replays a random op stream — direct adds, §3.1
// rule applications from interferer lists, conflict queries, clock
// advances and prunes — against an independently written reference map
// with the same contract: add keeps the later expiry, a query matches
// the (∗ : p→q) and (v : p→∗) patterns strictly before expiry, prune
// drops entries at or past their expiry. The node universe is small
// (five addresses plus the wildcard) so collisions between patterns are
// common rather than rare.
func FuzzDeferTable(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 10, 2, 1, 2, 3, 0, 3, 5, 2, 1, 2, 3, 0})
	f.Add([]byte{1, 0, 1, 2, 8, 2, 2, 1, 0, 1, 3, 200, 2, 2, 1, 0, 1})
	f.Add([]byte{0, 5, 0, 0, 4, 0, 0, 5, 0, 9, 1, 1, 2, 0, 7, 2, 0, 0, 5, 3, 50})
	f.Fuzz(func(t *testing.T, data []byte) {
		tab := newDeferTable()
		ref := map[deferKey]sim.Time{}
		now := sim.Time(0)

		// addr maps a byte onto the five-node universe or the wildcard.
		addr := func(b byte) frame.Addr {
			if b%6 == 5 {
				return anyAddr
			}
			return frame.AddrFromID(int(b % 6))
		}
		refAdd := func(k deferKey, exp sim.Time) {
			if cur, ok := ref[k]; !ok || exp > cur {
				ref[k] = exp
			}
		}

		i := 0
		next := func() byte {
			if i >= len(data) {
				return 0
			}
			b := data[i]
			i++
			return b
		}
		for i < len(data) {
			switch op := next(); op % 5 {
			case 0: // direct add
				k := deferKey{
					OurDst:   addr(next()),
					Src:      addr(next()),
					TheirDst: addr(next()),
					Rate:     next() % 2,
				}
				exp := now + sim.Time(next()%32)*sim.Millisecond
				tab.add(k, exp)
				refAdd(k, exp)
			case 1: // applyRules from a short interferer list
				me := addr(next())
				list := &frame.InterfererList{Src: addr(next())}
				n := int(next()) % 3
				for e := 0; e < n; e++ {
					list.Entries = append(list.Entries, frame.InterferenceEntry{
						Source:     addr(next()),
						Interferer: addr(next()),
						Rate:       next() % 2,
					})
				}
				exp := now + sim.Time(next()%32)*sim.Millisecond
				tab.applyRules(me, list, exp)
				for _, e := range list.Entries {
					if e.Source == me {
						refAdd(deferKey{OurDst: list.Src, Src: e.Interferer, TheirDst: anyAddr, Rate: e.Rate}, exp)
					}
					if e.Interferer == me {
						refAdd(deferKey{OurDst: anyAddr, Src: e.Source, TheirDst: list.Src, Rate: e.Rate}, exp)
					}
				}
			case 2: // conflict query vs the reference's pattern match
				dst, src, theirDst, rate := addr(next()), addr(next()), addr(next()), next()%2
				want := false
				if exp, ok := ref[deferKey{OurDst: anyAddr, Src: src, TheirDst: theirDst, Rate: rate}]; ok && exp > now {
					want = true
				}
				if exp, ok := ref[deferKey{OurDst: dst, Src: src, TheirDst: anyAddr, Rate: rate}]; ok && exp > now {
					want = true
				}
				if got := tab.conflicts(now, dst, src, theirDst, rate); got != want {
					t.Fatalf("conflicts(now=%v, dst=%v, src=%v, theirDst=%v, rate=%d) = %v, reference says %v",
						now, dst, src, theirDst, rate, got, want)
				}
			case 3: // advance the clock
				now += sim.Time(next()%64) * sim.Millisecond
			case 4: // prune both sides and compare sizes
				tab.prune(now)
				for k, exp := range ref {
					if exp <= now {
						delete(ref, k)
					}
				}
				if tab.size() != len(ref) {
					t.Fatalf("after prune at %v: size %d, reference %d", now, tab.size(), len(ref))
				}
			}
		}
		tab.prune(now)
		for k, exp := range ref {
			if exp <= now {
				delete(ref, k)
			}
		}
		if tab.size() != len(ref) {
			t.Fatalf("final size %d, reference %d", tab.size(), len(ref))
		}
	})
}
