// Package core implements CMAP, the paper's contribution: a reactive
// wireless link layer that learns which concurrent transmissions
// conflict from empirical packet loss and uses that knowledge — rather
// than carrier sense — to decide when to transmit.
//
// # Relation to the paper
//
// Each node runs the three cooperating mechanisms of §2–§3:
//
//   - Channel access through the conflict map (§3.1–§3.2): receivers
//     build interferer lists from observed losses and broadcast them;
//     senders fold the lists into defer tables and consult them against
//     the ongoing list of overheard transmissions before every virtual
//     packet — the "transmission decision process" of Figure 6.
//   - A windowed ACK/retransmission protocol with cumulative bitmap
//     ACKs (§3.3, Figure 7): Nwindow virtual packets in flight,
//     tolerating the ACK losses endemic at exposed senders.
//   - Loss-rate-driven backoff (§3.4): the contention window reacts to
//     the loss rate receivers report inside ACKs, not to missing ACKs.
//
// The implementation mirrors the software prototype of §4: each
// transmission is a virtual packet — a small header packet, Nvpkt data
// packets, and a trailer packet sent back to back (§4.1) — so headers
// and trailers survive collisions independently (§3.5) and stream to
// neighbours in time to defer. Config.PerDestQueues enables the §3.2
// per-destination-queue optimisation, SetBroadcast the §3.6 content
// dissemination mode, and the ablation switches (DisableTrailers,
// BackoffOnMissingAck) reproduce the paper's design-choice comparisons.
//
// # Traffic
//
// SetSaturated is the paper's always-backlogged model. Enqueue/Backlog
// satisfy traffic.Enqueuer, so arrival processes (internal/traffic) can
// drive a node with finite backlogs instead; fresh packets consume
// consecutive sequence numbers per flow, which is what maps a delivery
// back to its arrival time for latency measurement.
package core
