package core

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/medium"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/stats"
)

const offAir = 300.0

func buildMedium(lossDB [][]float64, seed uint64) (*medium.Medium, *sim.Scheduler, *sim.RNG) {
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	m := medium.New(sched, phy.DefaultParams(), &radio.Matrix{LossDB: lossDB},
		make([]geo.Point, len(lossDB)), rng.Stream(1))
	return m, sched, rng
}

// fastConfig shrinks virtual packets so unit tests converge quickly while
// keeping every protocol mechanism engaged.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Nvpkt = 8
	cfg.MinInterfSamples = 8
	cfg.BroadcastPeriod = 250 * sim.Millisecond
	return cfg
}

func TestSingleLinkCalibration(t *testing.T) {
	// §4.2: CMAP's single-link goodput at 6 Mb/s (5.04 Mb/s on the
	// testbed) is comparable to 802.11's (5.07 Mb/s).
	m, sched, rng := buildMedium([][]float64{
		{0, 70},
		{70, 0},
	}, 3)
	cfg := DefaultConfig()
	tx := New(0, cfg, m, rng.Stream(10))
	rx := New(1, cfg, m, rng.Stream(11))
	dur := 10 * sim.Second
	rx.Meter = &stats.Meter{Start: dur * 3 / 10, End: dur}
	tx.SetSaturated(1)
	sched.Run(dur)
	got := rx.Meter.Mbps()
	if got < 4.6 || got > 5.9 {
		t.Errorf("CMAP single-link goodput = %.2f Mb/s, want ≈5.0–5.6", got)
	}
	if rx.Stats().Duplicates > rx.Stats().Delivered/100 {
		t.Errorf("clean link produced %d duplicates of %d", rx.Stats().Duplicates, rx.Stats().Delivered)
	}
	if tx.Stats().Defers != 0 {
		t.Errorf("single flow deferred %d times with an empty conflict map", tx.Stats().Defers)
	}
}

func TestExposedTerminalsConcurrent(t *testing.T) {
	// Two exposed flows: senders hear each other, receivers are clean.
	// CMAP must keep both flows running concurrently at ≈2× a single link.
	m, sched, rng := buildMedium([][]float64{
		// S1(0) R1(1) S2(2) R2(3)
		{0, 68, 75, 108},
		{68, 0, 108, offAir},
		{75, 108, 0, 68},
		{108, offAir, 68, 0},
	}, 17)
	cfg := DefaultConfig()
	s1 := New(0, cfg, m, rng.Stream(10))
	r1 := New(1, cfg, m, rng.Stream(11))
	s2 := New(2, cfg, m, rng.Stream(12))
	r2 := New(3, cfg, m, rng.Stream(13))
	dur := 15 * sim.Second
	r1.Meter = &stats.Meter{Start: dur * 2 / 5, End: dur}
	r2.Meter = &stats.Meter{Start: dur * 2 / 5, End: dur}
	s1.SetSaturated(1)
	s2.SetSaturated(3)
	sched.Run(dur)
	agg := r1.Meter.Mbps() + r2.Meter.Mbps()
	if agg < 8.5 {
		t.Errorf("exposed aggregate = %.2f Mb/s (r1 %.2f, r2 %.2f), want ≈2× single link",
			agg, r1.Meter.Mbps(), r2.Meter.Mbps())
	}
	// Neither sender should have built defer entries against the other.
	if s1.InterfererListLen() != 0 && s2.InterfererListLen() != 0 {
		t.Error("both exposed receivers reported interferers")
	}
	_ = s2
}

func TestConflictingFlowsLearnToDefer(t *testing.T) {
	// Two flows whose cross links are strong: concurrent transmissions
	// destroy each other at the receivers. CMAP must learn the conflict,
	// defer, and settle near single-link aggregate with both flows alive.
	m, sched, rng := buildMedium([][]float64{
		// S1(0) R1(1) S2(2) R2(3)
		{0, 68, 72, 71},
		{68, 0, 70, offAir},
		{72, 70, 0, 68},
		{71, offAir, 68, 0},
	}, 23)
	// Paper-scale virtual packets: the 1 ms software visibility delay is
	// amortised over 62 ms bursts, exactly why §4.1 picks Nvpkt = 32.
	cfg := DefaultConfig()
	cfg.BroadcastPeriod = 250 * sim.Millisecond
	s1 := New(0, cfg, m, rng.Stream(10))
	r1 := New(1, cfg, m, rng.Stream(11))
	s2 := New(2, cfg, m, rng.Stream(12))
	r2 := New(3, cfg, m, rng.Stream(13))
	dur := 30 * sim.Second
	r1.Meter = &stats.Meter{Start: dur / 2, End: dur}
	r2.Meter = &stats.Meter{Start: dur / 2, End: dur}
	s1.SetSaturated(1)
	s2.SetSaturated(3)
	sched.Run(dur)

	t1, t2 := r1.Meter.Mbps(), r2.Meter.Mbps()
	agg := t1 + t2
	if agg < 3.4 {
		t.Errorf("conflicting aggregate = %.2f Mb/s (%.2f + %.2f), want near single link ≈5",
			agg, t1, t2)
	}
	if s1.Stats().Defers == 0 && s2.Stats().Defers == 0 {
		t.Error("neither sender ever deferred; conflict map did not engage")
	}
	if s1.DeferTableSize() == 0 && s2.DeferTableSize() == 0 {
		t.Error("defer tables empty after 30s of destructive interference")
	}
	// Fairness: neither flow starved (worst case one side below 10%).
	if t1 < agg/10 || t2 < agg/10 {
		t.Errorf("starvation: flows got %.2f and %.2f Mb/s", t1, t2)
	}
}

func TestHiddenTerminalsBackoffPreventsCollapse(t *testing.T) {
	// Senders out of range of each other, both destroying each other's
	// packets at both receivers. The defer mechanism cannot engage; the
	// loss-driven backoff must keep aggregate near the interleaved rate.
	m, sched, rng := buildMedium([][]float64{
		// S1(0) R1(1) S2(2) R2(3)
		{0, 68, offAir, 71},
		{68, 0, 71, offAir},
		{offAir, 71, 0, 68},
		{71, offAir, 68, 0},
	}, 29)
	cfg := fastConfig()
	s1 := New(0, cfg, m, rng.Stream(10))
	r1 := New(1, cfg, m, rng.Stream(11))
	s2 := New(2, cfg, m, rng.Stream(12))
	r2 := New(3, cfg, m, rng.Stream(13))
	dur := 30 * sim.Second
	r1.Meter = &stats.Meter{Start: dur / 2, End: dur}
	r2.Meter = &stats.Meter{Start: dur / 2, End: dur}
	s1.SetSaturated(1)
	s2.SetSaturated(3)
	sched.Run(dur)
	agg := r1.Meter.Mbps() + r2.Meter.Mbps()
	// The paper's Fig. 15: CMAP performs comparably to 802.11 here —
	// roughly the single-pair throughput, certainly not a collapse.
	if agg < 2.0 {
		t.Errorf("hidden-terminal aggregate = %.2f Mb/s, want ≥2 (backoff engaged)", agg)
	}
	if s1.Stats().Backoffs == 0 && s2.Stats().Backoffs == 0 {
		t.Error("no backoffs under heavy loss")
	}
}

func TestWindowedAckSurvivesAckLoss(t *testing.T) {
	// Forward link clean; ACKs destroyed ~half the time by an interferer
	// near the sender (classic exposed-sender ACK loss). With Nwindow=8
	// the flow keeps near-full goodput; with Nwindow=1 it degrades.
	lossMatrix := [][]float64{
		// S(0) R(1) I(2) Isink(3): interferer I transmits to Isink;
		// I is loud at S (collides with R's ACKs there) but silent at R.
		{0, 68, 72, offAir},
		{68, 0, offAir, offAir},
		{72, offAir, 0, 68},
		{offAir, offAir, 68, 0},
	}
	run := func(nwindow int, seed uint64) float64 {
		m, sched, rng := buildMedium(lossMatrix, seed)
		cfg := fastConfig()
		cfg.Nwindow = nwindow
		s := New(0, cfg, m, rng.Stream(10))
		r := New(1, cfg, m, rng.Stream(11))
		i := New(2, cfg, m, rng.Stream(12))
		isink := New(3, cfg, m, rng.Stream(13))
		_ = isink
		dur := 20 * sim.Second
		r.Meter = &stats.Meter{Start: dur / 2, End: dur}
		s.SetSaturated(1)
		i.SetSaturated(3)
		sched.Run(dur)
		return r.Meter.Mbps()
	}
	win8 := run(8, 101)
	win1 := run(1, 101)
	if win8 < 3.5 {
		t.Errorf("Nwindow=8 goodput = %.2f Mb/s under ACK loss, want ≥3.5", win8)
	}
	if win1 > win8*0.92 {
		t.Errorf("Nwindow=1 (%.2f) should clearly trail Nwindow=8 (%.2f) under ACK loss", win1, win8)
	}
}

func TestRetransmissionDeliversEverything(t *testing.T) {
	// Marginal forward link: without retransmission ~30% would vanish;
	// the windowed protocol must deliver every packet of a finite backlog.
	p := phy.DefaultParams()
	r6 := phy.RateByID(phy.Rate6Mbps)
	lo, hi := p.SensitivityDBm, -60.0
	for i := 0; i < 50; i++ {
		mid := (lo + hi) / 2
		if phy.IsolationPRR(p, r6, mid, 1433) < 0.7 {
			lo = mid
		} else {
			hi = mid
		}
	}
	lossDB := p.TxPowerDBm - (lo+hi)/2
	m, sched, rng := buildMedium([][]float64{
		{0, lossDB},
		{lossDB, 0},
	}, 37)
	cfg := fastConfig()
	tx := New(0, cfg, m, rng.Stream(10))
	rx := New(1, cfg, m, rng.Stream(11))
	const count = 256
	tx.Enqueue(1, count)
	sched.Run(60 * sim.Second)
	if got := rx.ReceivedFrom(0); got != count {
		t.Errorf("delivered %d of %d on a lossy link with retransmission", got, count)
	}
	if tx.Stats().RetxTimeouts == 0 {
		t.Error("expected window-full retransmission timeouts on a lossy link")
	}
	if rx.Stats().Duplicates == 0 {
		t.Log("note: no duplicates observed (possible but unusual on a lossy link)")
	}
}

func TestBroadcastMode(t *testing.T) {
	// One source broadcasting to two targets: both receive; no ACKs flow.
	m, sched, rng := buildMedium([][]float64{
		{0, 68, 70},
		{68, 0, 80},
		{70, 80, 0},
	}, 41)
	cfg := fastConfig()
	src := New(0, cfg, m, rng.Stream(10))
	a := New(1, cfg, m, rng.Stream(11))
	b := New(2, cfg, m, rng.Stream(12))
	dur := 5 * sim.Second
	a.Meter = &stats.Meter{Start: sim.Second, End: dur}
	b.Meter = &stats.Meter{Start: sim.Second, End: dur}
	src.SetBroadcast([]int{1, 2}, true, 0)
	sched.Run(dur)
	if a.Meter.Mbps() < 4.0 || b.Meter.Mbps() < 4.0 {
		t.Errorf("broadcast goodput a=%.2f b=%.2f Mb/s, want ≈5", a.Meter.Mbps(), b.Meter.Mbps())
	}
	if src.Stats().AcksReceived != 0 {
		t.Error("broadcast flow received ACKs")
	}
	if a.Stats().AcksSent != 0 || b.Stats().AcksSent != 0 {
		t.Error("broadcast receivers sent ACKs")
	}
}

func TestHeaderTrailerCountersOnCleanLink(t *testing.T) {
	m, sched, rng := buildMedium([][]float64{
		{0, 70},
		{70, 0},
	}, 43)
	cfg := fastConfig()
	tx := New(0, cfg, m, rng.Stream(10))
	rx := New(1, cfg, m, rng.Stream(11))
	tx.SetSaturated(1)
	sched.Run(5 * sim.Second)
	seen, hdr, hot := rx.FlowCounters(0)
	if seen == 0 {
		t.Fatal("no virtual packets observed")
	}
	if hdr < seen*98/100 || hot < seen*99/100 {
		t.Errorf("clean link header/trailer visibility low: seen=%d hdr=%d hdrOrTrl=%d", seen, hdr, hot)
	}
	sent := tx.Stats().VpktsSent
	if seen < sent*95/100 || seen > sent {
		t.Errorf("receiver saw %d vpkts of %d sent", seen, sent)
	}
}

func TestFlowPanicsOnSecondDestination(t *testing.T) {
	m, _, rng := buildMedium([][]float64{
		{0, 70, 80},
		{70, 0, 80},
		{80, 80, 0},
	}, 47)
	n := New(0, DefaultConfig(), m, rng.Stream(10))
	n.Enqueue(1, 1)
	defer func() {
		if recover() == nil {
			t.Error("changing destination did not panic")
		}
	}()
	n.Enqueue(2, 1)
}

func TestDeferToOngoingTowardOwnReceiver(t *testing.T) {
	// While S2 transmits to R, S1 (whose destination is also R) must
	// defer: "u checks that v is neither sending nor receiving" (§3.2).
	m, sched, rng := buildMedium([][]float64{
		// S1(0) R(1) S2(2)
		{0, 68, 70},
		{68, 0, 68},
		{70, 68, 0},
	}, 53)
	cfg := fastConfig()
	s1 := New(0, cfg, m, rng.Stream(10))
	r := New(1, cfg, m, rng.Stream(11))
	s2 := New(2, cfg, m, rng.Stream(12))
	_ = r
	s2.SetSaturated(1)
	// Step until s2 is provably mid-virtual-packet (header long on the
	// air, several data frames in), so s1's ongoing list must show it.
	for sched.Step() {
		if sched.Now() > 100*sim.Millisecond && s2.cur != nil && s2.cur.next >= 3 {
			break
		}
	}
	s1.Enqueue(1, 8)
	before := s1.Stats().VpktsSent
	if s1.Stats().VpktsSent != before {
		t.Error("s1 transmitted instantly while its receiver was mid-reception")
	}
	if s1.Stats().Defers == 0 {
		t.Error("s1 never recorded a defer")
	}
	sched.Run(sched.Now() + 2*sim.Second)
	if got := r.ReceivedFrom(0); got != 8 {
		t.Errorf("r received %d of s1's 8 packets", got)
	}
}

func TestAblationDisableTrailers(t *testing.T) {
	// Without trailers, receivers ACK on the estimated virtual-packet end;
	// a clean link must still sustain full goodput.
	m, sched, rng := buildMedium([][]float64{
		{0, 70},
		{70, 0},
	}, 61)
	cfg := DefaultConfig()
	cfg.DisableTrailers = true
	tx := New(0, cfg, m, rng.Stream(10))
	rx := New(1, cfg, m, rng.Stream(11))
	dur := 8 * sim.Second
	rx.Meter = &stats.Meter{Start: dur / 4, End: dur}
	tx.SetSaturated(1)
	sched.Run(dur)
	if got := rx.Meter.Mbps(); got < 4.5 {
		t.Errorf("trailer-less clean-link goodput = %.2f Mb/s", got)
	}
	if rx.Stats().TrailersHeard != 0 {
		t.Error("trailers transmitted despite DisableTrailers")
	}
	if rx.Stats().AcksSent == 0 {
		t.Error("no ACKs without trailers — the timer fallback is broken")
	}
}

func TestAblationBackoffOnMissingAck(t *testing.T) {
	// §3.4: "the sender does not update CW when an ACK does not arrive…
	// to avoid unnecessary backoffs in response to just ACK losses."
	// Under moderate ACK loss at the sender (an interferer audible at S
	// but silent at R), the 802.11-style ablation takes many spurious
	// backoffs; the loss-based policy takes none and loses no goodput.
	lossMatrix := [][]float64{
		{0, 68, 80, offAir},
		{68, 0, offAir, offAir},
		{80, offAir, 0, 68},
		{offAir, offAir, 68, 0},
	}
	run := func(ackBackoff bool) (float64, uint64) {
		m, sched, rng := buildMedium(lossMatrix, 63)
		cfg := DefaultConfig()
		cfg.BackoffOnMissingAck = ackBackoff
		s := New(0, cfg, m, rng.Stream(10))
		r := New(1, cfg, m, rng.Stream(11))
		i := New(2, cfg, m, rng.Stream(12))
		New(3, cfg, m, rng.Stream(13))
		dur := 15 * sim.Second
		r.Meter = &stats.Meter{Start: dur / 3, End: dur}
		s.SetSaturated(1)
		i.SetSaturated(3)
		sched.Run(dur)
		return r.Meter.Mbps(), s.Stats().Backoffs
	}
	lossBased, lossBackoffs := run(false)
	ackBased, ackBackoffs := run(true)
	if ackBackoffs < 10*lossBackoffs+10 {
		t.Errorf("802.11-style ablation took %d backoffs vs %d loss-based; expected many spurious ones",
			ackBackoffs, lossBackoffs)
	}
	if lossBased < ackBased*0.97 {
		t.Errorf("loss-based goodput (%.2f) should not trail 802.11-style (%.2f)", lossBased, ackBased)
	}
}

func TestTwoHopListPropagation(t *testing.T) {
	// Asymmetric reach (§3.1): receiver R's interferer list cannot reach
	// the interferer X directly, but a relay M hears both. With
	// TwoHopLists enabled, X still learns to defer to S→R.
	//
	// Topology: S(0)→R(1); X(2) interferes at R but cannot hear R;
	// M(3) hears everyone.
	m, sched, rng := buildMedium([][]float64{
		// S     R     X     M
		{0, 68, 75, 70},
		{68, 0, offAir, 70}, // R cannot reach X directly
		{75, offAir, 0, 70},
		{70, 70, 70, 0},
	}, 71)
	cfg := fastConfig()
	cfg.TwoHopLists = true
	s := New(0, cfg, m, rng.Stream(10))
	r := New(1, cfg, m, rng.Stream(11))
	x := New(2, cfg, m, rng.Stream(12))
	relay := New(3, cfg, m, rng.Stream(13))
	_ = s

	// Seed R's interferer list directly: transmissions from X conflict
	// with S→R. (The propagation path is what this test pins down.)
	r.interferers[pairKey{Source: addr(0), Interferer: addr(2)}] = 100 * sim.Second
	sched.Run(3 * sim.Second)

	if relay.Stats().ListsRelayed == 0 {
		t.Fatal("relay never re-broadcast R's interferer list")
	}
	// X must now hold the Rule-2 entry (∗ : S→R).
	if !x.HasDeferEntry(addr(9), addr(0), addr(1), 0) {
		t.Error("X did not learn (∗ : S→R) via the two-hop relay")
	}
	// And without the flag, X must NOT learn it.
	m2, sched2, rng2 := buildMedium([][]float64{
		{0, 68, 75, 70},
		{68, 0, offAir, 70},
		{75, offAir, 0, 70},
		{70, 70, 70, 0},
	}, 72)
	cfg2 := fastConfig()
	r2 := New(1, cfg2, m2, rng2.Stream(11))
	x2 := New(2, cfg2, m2, rng2.Stream(12))
	New(0, cfg2, m2, rng2.Stream(10))
	New(3, cfg2, m2, rng2.Stream(13))
	r2.interferers[pairKey{Source: addr(0), Interferer: addr(2)}] = 100 * sim.Second
	sched2.Run(3 * sim.Second)
	if x2.HasDeferEntry(addr(9), addr(0), addr(1), 0) {
		t.Error("X learned the entry without two-hop relaying despite no direct path")
	}
}

func TestPerDestQueuesRequireFlag(t *testing.T) {
	m, _, rng := buildMedium([][]float64{
		{0, 70, 72},
		{70, 0, 75},
		{72, 75, 0},
	}, 81)
	n := New(0, DefaultConfig(), m, rng.Stream(10))
	n.Enqueue(1, 1)
	defer func() {
		if recover() == nil {
			t.Error("second destination without PerDestQueues did not panic")
		}
	}()
	n.Enqueue(2, 1)
}

func TestPerDestQueuesDeliverBothFlows(t *testing.T) {
	// Multi-flow correctness: independent sequence spaces, windows and
	// ACK bookkeeping per destination.
	m, sched, rng := buildMedium([][]float64{
		{0, 70, 72},
		{70, 0, 75},
		{72, 75, 0},
	}, 83)
	cfg := fastConfig()
	cfg.PerDestQueues = true
	s := New(0, cfg, m, rng.Stream(10))
	a := New(1, cfg, m, rng.Stream(11))
	b := New(2, cfg, m, rng.Stream(12))
	s.Enqueue(1, 120)
	s.Enqueue(2, 120)
	sched.Run(10 * sim.Second)
	if got := a.ReceivedFrom(0); got != 120 {
		t.Errorf("flow to A delivered %d of 120", got)
	}
	if got := b.ReceivedFrom(0); got != 120 {
		t.Errorf("flow to B delivered %d of 120", got)
	}
	if !s.Idle() {
		t.Error("sender not idle after both queues drained")
	}
}

func TestPerDestQueuesRoundRobinFairness(t *testing.T) {
	// Two saturated queues with no conflicts share the sender evenly.
	m, sched, rng := buildMedium([][]float64{
		{0, 70, 72},
		{70, 0, 75},
		{72, 75, 0},
	}, 85)
	cfg := fastConfig()
	cfg.PerDestQueues = true
	s := New(0, cfg, m, rng.Stream(10))
	a := New(1, cfg, m, rng.Stream(11))
	b := New(2, cfg, m, rng.Stream(12))
	dur := 10 * sim.Second
	a.Meter = &stats.Meter{Start: dur / 4, End: dur}
	b.Meter = &stats.Meter{Start: dur / 4, End: dur}
	s.SetSaturated(1)
	s.SetSaturated(2)
	sched.Run(dur)
	ta, tb := a.Meter.Mbps(), b.Meter.Mbps()
	if ta+tb < 4.5 {
		t.Errorf("two-queue aggregate = %.2f Mb/s, want ≈ single link", ta+tb)
	}
	ratio := ta / (ta + tb)
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("unfair split: %.2f vs %.2f Mb/s", ta, tb)
	}
}

func TestPerDestQueuesSkipConflictedDestination(t *testing.T) {
	// The §3.2 optimisation itself: while x→y conflicts with S→A, the
	// sender keeps serving B instead of head-of-line blocking.
	m, sched, rng := buildMedium([][]float64{
		// S(0) A(1) B(2) x(3) y(4)
		{0, 70, 72, 70, offAir},
		{70, 0, 80, 72, offAir},
		{72, 80, 0, 85, offAir},
		{70, 72, 85, 0, 68},
		{offAir, offAir, offAir, 68, 0},
	}, 87)
	cfg := fastConfig()
	cfg.PerDestQueues = true
	s := New(0, cfg, m, rng.Stream(10))
	a := New(1, cfg, m, rng.Stream(11))
	b := New(2, cfg, m, rng.Stream(12))
	x := New(3, cfg, m, rng.Stream(13))
	New(4, cfg, m, rng.Stream(14))
	// Seed the conflict: sending to A while x transmits loses (A : x→∗).
	s.deferTab.add(deferKey{OurDst: addr(1), Src: addr(3), TheirDst: anyAddr}, 1000*sim.Second)

	x.SetSaturated(4)
	sched.Run(100 * sim.Millisecond) // x's stream is on the air
	var aDone, bDone sim.Time
	a.OnDeliver = func(_ int, seq uint32, now sim.Time) {
		if seq == 99 {
			aDone = now
		}
	}
	b.OnDeliver = func(_ int, seq uint32, now sim.Time) {
		if seq == 99 {
			bDone = now
		}
	}
	s.Enqueue(1, 100)
	s.Enqueue(2, 100)
	sched.Run(60 * sim.Second)
	if bDone == 0 {
		t.Fatal("flow to B never completed")
	}
	if aDone == 0 {
		t.Fatal("flow to A never completed (starved)")
	}
	if bDone >= aDone {
		t.Errorf("B (unconflicted) finished at %v, after A (conflicted) at %v — optimisation inactive", bDone, aDone)
	}
	if s.Stats().Defers == 0 {
		t.Error("sender never deferred for A despite the seeded conflict")
	}
}
