package core

import (
	"repro/internal/frame"
	"repro/internal/phy"
	"repro/internal/sim"
)

// flowFor returns (creating if needed) the receive state for sender src.
func (n *Node) flowFor(src frame.Addr, srcID int) *rxFlow {
	f, ok := n.rx[src]
	if !ok {
		f = &rxFlow{srcID: srcID, srcAddr: src, sack: make(map[uint32]struct{})}
		n.rx[src] = f
	}
	return f
}

// expectedFromTxTime recovers the data-packet count of a virtual packet
// from its announced transmission time.
func (n *Node) expectedFromTxTime(txMicros uint32) int {
	dataTime := sim.Time(txMicros)*sim.Microsecond - 2*n.cfg.controlAirtime()
	if dataTime <= 0 {
		return 0
	}
	per := n.cfg.dataAirtime()
	k := int((dataTime + per/2) / per)
	if k < 0 {
		k = 0
	}
	return k
}

// beginVpkt opens reception state for virtual packet vseq from flow f,
// finalising any previous one first.
func (n *Node) beginVpkt(f *rxFlow, vseq uint32, start sim.Time, expected int, rate uint8, bcast bool) *rxVpkt {
	if f.cur != nil && f.cur.vseq != vseq {
		n.finalizeVpkt(f)
	}
	if f.cur == nil {
		if expected <= 0 {
			expected = n.cfg.Nvpkt
		}
		// Reception state lives in the flow's embedded buffer: one inbound
		// virtual packet is tracked per sender at a time.
		got := f.gotBuf
		if cap(got) < expected {
			got = make([]bool, expected)
		} else {
			got = got[:expected]
			for i := range got {
				got[i] = false
			}
		}
		f.gotBuf = got
		f.curBuf = rxVpkt{
			vseq:     vseq,
			start:    start,
			expected: expected,
			got:      got,
			rate:     rate,
			bcast:    bcast,
		}
		f.cur = &f.curBuf
		// Finalise even if the trailer never arrives (lost or sender
		// aborted): a grace period after the expected end. With trailers
		// disabled (ablation) this timer is also the ACK trigger, so it
		// fires promptly.
		end := start + n.cfg.vpktAirtime(expected)
		grace := n.cfg.TackWait
		if n.cfg.DisableTrailers {
			grace = n.cfg.Turnaround
		}
		f.finVseq = vseq
		n.sched.ResetAt(&f.finTimer, end+grace, n, f)
	}
	return f.cur
}

// vpktFinExpired fires when the finalisation grace period of the virtual
// packet that armed f's timer passes without a trailer.
func (n *Node) vpktFinExpired(f *rxFlow) {
	if f.cur == nil || f.cur.vseq != f.finVseq {
		return
	}
	gotAny := false
	for _, g := range f.cur.got {
		if g {
			gotAny = true
			break
		}
	}
	vseq := f.cur.vseq
	wasBcast := f.cur.bcast
	n.finalizeVpkt(f)
	if n.cfg.DisableTrailers && !wasBcast && gotAny {
		n.sendAck(f, vseq, 10)
	}
}

// rxHeader handles a virtual-packet header addressed to us.
func (n *Node) rxHeader(c *frame.Control, info phy.RxInfo) {
	f := n.flowFor(c.Src, info.From)
	v := n.beginVpkt(f, c.Seq, info.Start, n.expectedFromTxTime(c.TxTimeMicros), c.Rate, c.Dst.IsBroadcast())
	v.headerSeen = true
}

// rxData handles a data packet addressed to us (or broadcast).
func (n *Node) rxData(d *frame.Data, info phy.RxInfo) {
	f := n.flowFor(d.Src, info.From)
	start := info.Start - n.cfg.controlAirtime() - sim.Time(d.Index)*n.cfg.dataAirtime()
	v := n.beginVpkt(f, d.VSeq, start, 0, uint8(n.cfg.Rate), d.Dst.IsBroadcast())
	if int(d.Index) < len(v.got) {
		v.got[d.Index] = true
	}

	// Deduplicate and deliver. Broadcast flows never retransmit, so every
	// packet is fresh; unicast flows dedup against the cumulative point
	// and the SACK set.
	if !d.Dst.IsBroadcast() {
		if d.PktSeq < f.cum {
			n.stat.Duplicates++
			return
		}
		if _, dup := f.sack[d.PktSeq]; dup {
			n.stat.Duplicates++
			return
		}
		f.sack[d.PktSeq] = struct{}{}
		for {
			if _, ok := f.sack[f.cum]; !ok {
				break
			}
			delete(f.sack, f.cum)
			f.cum++
		}
	}
	n.stat.Delivered++
	if n.Meter != nil {
		n.Meter.Record(n.sched.Now(), int(d.PayloadLen))
	}
	if n.OnDeliver != nil {
		n.OnDeliver(info.From, d.PktSeq, n.sched.Now())
	}
}

// rxTrailer handles a trailer addressed to us: it closes the virtual
// packet and triggers the cumulative ACK (§3.3, §4.1).
func (n *Node) rxTrailer(c *frame.Control, info phy.RxInfo) {
	f := n.flowFor(c.Src, info.From)
	start := info.End - sim.Time(c.TxTimeMicros)*sim.Microsecond
	v := n.beginVpkt(f, c.Seq, start, n.expectedFromTxTime(c.TxTimeMicros), c.Rate, c.Dst.IsBroadcast())
	v.trailerSeen = true
	n.finalizeVpkt(f)
	if !c.Dst.IsBroadcast() {
		n.sendAck(f, c.Seq, 10)
	}
}

// finalizeVpkt closes the current inbound virtual packet of f: computes
// its loss, attributes lost packets to overlapping transmissions for the
// interferer list (§3.1), and updates the visibility counters.
func (n *Node) finalizeVpkt(f *rxFlow) {
	v := f.cur
	if v == nil {
		return
	}
	f.cur = nil
	f.finTimer.Stop()
	received := 0
	for _, g := range v.got {
		if g {
			received++
		}
	}
	lost := v.expected - received
	f.pendExpected += v.expected
	f.pendLost += lost
	f.VpktsSeen++
	if v.headerSeen {
		f.VpktsHeader++
	}
	if v.headerSeen || v.trailerSeen {
		f.VpktsHdrOrTrl++
	}

	// Per-packet attribution: a lost (or received) packet slot is
	// evidence about every transmission that overlapped its airtime.
	now := n.sched.Now()
	hdr := n.cfg.controlAirtime()
	per := n.cfg.dataAirtime()
	for i := 0; i < v.expected; i++ {
		t := v.start + hdr + sim.Time(i)*per + per/2
		hit := i < len(v.got) && v.got[i]
		n.obs.overlapping(t, f.srcAddr, func(e *obsEntry) {
			if e.Src == n.addr {
				return
			}
			k := pairKey{Source: f.srcAddr, Interferer: e.Src, Rate: e.Rate}
			st, ok := n.interfStats[k]
			if !ok {
				st = &interfStat{lastDecay: now}
				n.interfStats[k] = st
			}
			st.decay(now, n.cfg.StatsHalfLife)
			st.Expected++
			if !hit {
				st.Lost++
			}
		})
	}
	// Promote pairs over the loss threshold immediately so senders learn
	// at the next broadcast.
	for k, st := range n.interfStats {
		if k.Source != f.srcAddr {
			continue
		}
		if st.Expected >= float64(n.cfg.MinInterfSamples) && st.lossRate() > n.cfg.LossInterf {
			n.interferers[k] = now + n.cfg.InterfTimeout
		}
	}
}

// ackAttempt is one pending cumulative-ACK transmission: the frame plus
// its remaining retry budget. Attempts recycle through the node's free
// list once the frame has left the air (or the budget runs out), so the
// per-virtual-packet ACK path allocates nothing in steady state.
type ackAttempt struct {
	ack  frame.Ack
	left int
}

// getAckAttempt pops a recycled attempt (refilled at OnTxDone), with the
// bitmap truncated for reuse — BitmapSet appends explicit zero bytes, so
// stale contents can never leak through.
func (n *Node) getAckAttempt() *ackAttempt {
	if k := len(n.ackFree); k > 0 {
		a := n.ackFree[k-1]
		n.ackFree = n.ackFree[:k-1]
		a.ack = frame.Ack{Bitmap: a.ack.Bitmap[:0]}
		return a
	}
	return &ackAttempt{}
}

// sendAck emits the cumulative windowed ACK for flow f after the software
// turnaround, retrying briefly if the radio is mid-transmission.
func (n *Node) sendAck(f *rxFlow, vseq uint32, budget int) {
	loss := 0.0
	if f.pendExpected > 0 {
		loss = float64(f.pendLost) / float64(f.pendExpected)
	}
	f.pendExpected, f.pendLost = 0, 0
	aa := n.getAckAttempt()
	aa.left = budget
	aa.ack.Src = n.addr
	aa.ack.Dst = f.srcAddr
	aa.ack.CumSeq = f.cum
	aa.ack.VSeq = vseq
	aa.ack.LossRate = loss
	limit := uint32(2 * n.cfg.windowPackets())
	for s := range f.sack {
		if s >= f.cum && s-f.cum < limit {
			aa.ack.BitmapSet(int(s - f.cum))
		}
	}
	n.sched.PostAfter(n.turnaroundDelay(), n, aa)
}

// runAckAttempt transmits a pending ACK as soon as the radio is free,
// giving up (and recycling the attempt) after the retry budget.
func (n *Node) runAckAttempt(aa *ackAttempt) {
	if aa.left <= 0 {
		n.ackFree = append(n.ackFree, aa)
		return
	}
	if n.radio.Transmitting() {
		aa.left--
		n.sched.PostAfter(200*sim.Microsecond, n, aa)
		return
	}
	n.stat.AcksSent++
	n.inflightAck = aa
	n.radio.Transmit(&aa.ack, phy.RateByID(n.cfg.ControlRate))
}

// turnaroundDelay draws the software-MAC-to-PHY latency with the
// prototype's empirical distribution (§4.1): for Turnaround = 1 ms, 90%
// of operations take 0.5–2 ms and the rest 2–5 ms. The jitter is load
// bearing — it is what lets a deferring sender occasionally win the
// channel from the current holder, as on the real testbed.
func (n *Node) turnaroundDelay() sim.Time {
	t := n.cfg.Turnaround
	if t <= 0 {
		return 0
	}
	if n.rng.Float64() < 0.9 {
		return n.rng.DurationIn(t/2, 2*t)
	}
	return n.rng.DurationIn(2*t, 5*t)
}
