package core

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/sim"
)

// Direct defer-table tests: expiry boundaries, wildcard (anyAddr)
// matching, and prune behaviour, exercised at the table level rather
// than through the §3.1 update rules.

func TestDeferExpiryBoundaryExact(t *testing.T) {
	tab := newDeferTable()
	dst, src, theirDst := addr(1), addr(2), addr(3)
	exp := 100 * sim.Millisecond
	tab.add(deferKey{OurDst: anyAddr, Src: src, TheirDst: theirDst, Rate: 0}, exp)
	// Entries are live strictly before expiry and dead exactly at it.
	if !tab.conflicts(exp-1, dst, src, theirDst, 0) {
		t.Error("entry dead one tick before expiry")
	}
	if tab.conflicts(exp, dst, src, theirDst, 0) {
		t.Error("entry live exactly at expiry")
	}
	if tab.conflicts(exp+1, dst, src, theirDst, 0) {
		t.Error("entry live after expiry")
	}
	// Expired entries linger in the map until pruned, but never match.
	if tab.size() != 1 {
		t.Fatalf("size = %d before prune, want 1", tab.size())
	}
	tab.prune(exp)
	if tab.size() != 0 {
		t.Errorf("size = %d after prune at expiry, want 0", tab.size())
	}
}

func TestDeferAddNeverShrinksExpiry(t *testing.T) {
	tab := newDeferTable()
	k := deferKey{OurDst: addr(1), Src: addr(2), TheirDst: anyAddr, Rate: 0}
	tab.add(k, 9*sim.Second)
	tab.add(k, 2*sim.Second) // stale refresh
	if !tab.conflicts(8*sim.Second, addr(1), addr(2), addr(5), 0) {
		t.Error("stale add shortened the entry's lifetime")
	}
	tab.add(k, 12*sim.Second)
	if !tab.conflicts(11*sim.Second, addr(1), addr(2), addr(5), 0) {
		t.Error("fresher add did not extend the entry's lifetime")
	}
}

func TestDeferWildcardTheirDst(t *testing.T) {
	// Pattern 2, (v : p→∗): entry keyed on our destination v with a
	// wildcard for the interferer's destination.
	tab := newDeferTable()
	v, p := addr(10), addr(11)
	tab.add(deferKey{OurDst: v, Src: p, TheirDst: anyAddr, Rate: 0}, sim.Second)
	for _, theirDst := range []frame.Addr{addr(1), addr(99), frame.Broadcast} {
		if !tab.conflicts(0, v, p, theirDst, 0) {
			t.Errorf("wildcard TheirDst failed to match p→%v", theirDst)
		}
	}
	// The wildcard is on their destination only: our destination and the
	// source must still match exactly.
	if tab.conflicts(0, addr(12), p, addr(1), 0) {
		t.Error("(v : p→∗) matched a different own-destination")
	}
	if tab.conflicts(0, v, addr(12), addr(1), 0) {
		t.Error("(v : p→∗) matched a different interference source")
	}
}

func TestDeferWildcardOurDst(t *testing.T) {
	// Pattern 1, (∗ : p→q): wildcard on our destination, exact on the
	// ongoing transmission p→q.
	tab := newDeferTable()
	p, q := addr(20), addr(21)
	tab.add(deferKey{OurDst: anyAddr, Src: p, TheirDst: q, Rate: 0}, sim.Second)
	for _, ourDst := range []frame.Addr{addr(1), addr(50), frame.Broadcast} {
		if !tab.conflicts(0, ourDst, p, q, 0) {
			t.Errorf("wildcard OurDst failed to match while sending to %v", ourDst)
		}
	}
	if tab.conflicts(0, addr(1), p, addr(22), 0) {
		t.Error("(∗ : p→q) matched a different ongoing destination")
	}
	if tab.conflicts(0, addr(1), addr(22), q, 0) {
		t.Error("(∗ : p→q) matched a different ongoing source")
	}
}

func TestDeferFullyConcreteEntryNeverMatches(t *testing.T) {
	// conflicts() only probes the two §3.2 patterns; an entry with no
	// wildcard in either slot is unreachable and must not fire.
	tab := newDeferTable()
	tab.add(deferKey{OurDst: addr(1), Src: addr(2), TheirDst: addr(3), Rate: 0}, sim.Second)
	if tab.conflicts(0, addr(1), addr(2), addr(3), 0) {
		t.Error("fully concrete entry matched; defer patterns must carry a wildcard")
	}
}

func TestDeferWildcardsAreIndependent(t *testing.T) {
	// Both patterns can coexist for the same interferer; each matches its
	// own probe shape and expires independently.
	tab := newDeferTable()
	v, p, q := addr(30), addr(31), addr(32)
	tab.add(deferKey{OurDst: v, Src: p, TheirDst: anyAddr, Rate: 0}, 2*sim.Second)
	tab.add(deferKey{OurDst: anyAddr, Src: p, TheirDst: q, Rate: 0}, 4*sim.Second)
	if !tab.conflicts(sim.Second, v, p, addr(40), 0) {
		t.Error("pattern 2 miss while both live")
	}
	if !tab.conflicts(sim.Second, addr(41), p, q, 0) {
		t.Error("pattern 1 miss while both live")
	}
	// After the first expires, only the pattern-1 entry remains.
	if tab.conflicts(3*sim.Second, v, p, addr(40), 0) {
		t.Error("expired pattern-2 entry still matches")
	}
	if !tab.conflicts(3*sim.Second, addr(41), p, q, 0) {
		t.Error("pattern-1 entry expired early")
	}
	tab.prune(3 * sim.Second)
	if tab.size() != 1 {
		t.Errorf("size after partial prune = %d, want 1", tab.size())
	}
}

func TestDeferPruneKeepsLiveEntries(t *testing.T) {
	tab := newDeferTable()
	for i := 0; i < 10; i++ {
		tab.add(deferKey{OurDst: anyAddr, Src: addr(i), TheirDst: addr(100 + i), Rate: 0},
			sim.Time(i+1)*sim.Second)
	}
	tab.prune(5 * sim.Second)
	if tab.size() != 5 {
		t.Fatalf("size after prune = %d, want the 5 live entries", tab.size())
	}
	for i := 5; i < 10; i++ {
		if !tab.conflicts(5*sim.Second, addr(50), addr(i), addr(100+i), 0) {
			t.Errorf("live entry %d lost by prune", i)
		}
	}
}

func TestAnyAddrNeverCollidesWithRealNodes(t *testing.T) {
	// The wildcard sentinel is the zero address; AddrFromID must never
	// produce it, or a real node would act as a wildcard.
	for id := 0; id < 4096; id++ {
		if frame.AddrFromID(id) == anyAddr {
			t.Fatalf("AddrFromID(%d) equals the wildcard sentinel", id)
		}
	}
	if frame.Broadcast == anyAddr {
		t.Fatal("broadcast address equals the wildcard sentinel")
	}
}
