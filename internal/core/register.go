package core

// Registration of the CMAP protocol arms with the internal/mac registry,
// plus the thin adapter methods that complete the mac.Node and
// mac.Visibility interfaces on *Node. Seed salts are pinned to the legacy
// experiments.Protocol integer values so every golden trace recorded
// before the registry existed stays bit-identical.

import (
	"repro/internal/mac"
	"repro/internal/sim"
	"repro/internal/stats"
)

// SetMeter implements mac.Node.
func (n *Node) SetMeter(m *stats.Meter) { n.Meter = m }

// SetOnDeliver implements mac.Node.
func (n *Node) SetOnDeliver(fn mac.DeliverFunc) { n.OnDeliver = DeliverFunc(fn) }

// LatencyWindow implements mac.Node: up to Nwindow virtual packets of
// Nvpkt data packets each can be in flight at once.
func (n *Node) LatencyWindow() int { return n.cfg.Nwindow * n.cfg.Nvpkt }

// MacDropped implements mac.Node. CMAP has no MAC-level retry limit —
// packets persist until acknowledged — so nothing is ever dropped here.
func (n *Node) MacDropped() uint64 { return 0 }

// VpktsSent implements mac.Visibility.
func (n *Node) VpktsSent() uint64 { return n.stat.VpktsSent }

// arm adapts a Config recipe to the mac.Arm interface.
type arm struct {
	name      string
	label     string
	salt      uint64
	configure func(*Config)
}

func (a arm) Name() string     { return a.name }
func (a arm) Label() string    { return a.label }
func (a arm) SeedSalt() uint64 { return a.salt }

func (a arm) New(id int, m mac.Network, rng *sim.RNG, opt mac.Options) mac.Node {
	cfg := DefaultConfig()
	cfg.Rate = opt.Rate
	if a.configure != nil {
		a.configure(&cfg)
	}
	return New(id, cfg, m, rng)
}

func init() {
	mac.Register(arm{name: "cmap", label: "CMAP", salt: 4})
	mac.Register(arm{name: "cmap1", label: "CMAP, win=1", salt: 5,
		configure: func(c *Config) { c.Nwindow = 1 }})
}
