package core

import (
	"testing"
	"testing/quick"

	"repro/internal/frame"
	"repro/internal/sim"
)

func addr(id int) frame.Addr { return frame.AddrFromID(id) }

func TestDeferRulesFromPaperExample(t *testing.T) {
	// Figure 4: receiver v's interferer list holds (u, x). When u receives
	// it, Rule 1 adds (v : x→∗); when x receives it, Rule 2 adds (∗ : u→v).
	u, v, x, y, z := addr(1), addr(2), addr(3), addr(4), addr(5)
	list := &frame.InterfererList{Src: v, Entries: []frame.InterferenceEntry{{Source: u, Interferer: x}}}

	now := sim.Time(0)
	exp := 10 * sim.Second

	// At u:
	tu := newDeferTable()
	tu.applyRules(u, list, exp)
	if !tu.conflicts(now, v, x, y, 0) {
		t.Error("u must defer sending to v while x→y ongoing (Rule 1, pattern (v : x→∗))")
	}
	if !tu.conflicts(now, v, x, frame.Broadcast, 0) {
		t.Error("u must defer to x sending to anyone")
	}
	if tu.conflicts(now, z, x, y, 0) {
		t.Error("u may transmit to z while x is transmitting (Rule 2 does not apply at u)")
	}
	if tu.conflicts(now, v, y, x, 0) {
		t.Error("u must not defer to transmissions from other sources")
	}

	// At x:
	tx := newDeferTable()
	tx.applyRules(x, list, exp)
	if !tx.conflicts(now, y, u, v, 0) {
		t.Error("x must defer sending to anyone while u→v ongoing (Rule 2, pattern (∗ : u→v))")
	}
	if !tx.conflicts(now, z, u, v, 0) {
		t.Error("x must defer for any of its destinations while u→v ongoing")
	}
	if tx.conflicts(now, y, u, z, 0) {
		t.Error("x may transmit while u sends to z ≠ v (Rule 1 does not apply at x)")
	}

	// At an uninvolved node w, neither rule applies.
	tw := newDeferTable()
	tw.applyRules(addr(9), list, exp)
	if tw.size() != 0 {
		t.Errorf("bystander built %d defer entries, want 0", tw.size())
	}
}

func TestDeferEntryExpiry(t *testing.T) {
	u, v, x := addr(1), addr(2), addr(3)
	tab := newDeferTable()
	list := &frame.InterfererList{Src: v, Entries: []frame.InterferenceEntry{{Source: u, Interferer: x}}}
	tab.applyRules(u, list, 5*sim.Second)
	if !tab.conflicts(4*sim.Second, v, x, addr(7), 0) {
		t.Fatal("entry should be live before expiry")
	}
	if tab.conflicts(5*sim.Second, v, x, addr(7), 0) {
		t.Error("entry should be dead at expiry")
	}
	tab.prune(6 * sim.Second)
	if tab.size() != 0 {
		t.Errorf("prune left %d entries", tab.size())
	}
}

func TestDeferRefreshExtends(t *testing.T) {
	u, v, x := addr(1), addr(2), addr(3)
	tab := newDeferTable()
	list := &frame.InterfererList{Src: v, Entries: []frame.InterferenceEntry{{Source: u, Interferer: x}}}
	tab.applyRules(u, list, 5*sim.Second)
	tab.applyRules(u, list, 9*sim.Second)
	if !tab.conflicts(8*sim.Second, v, x, addr(7), 0) {
		t.Error("refresh should extend expiry")
	}
	// Re-applying with an earlier expiry must not shorten it.
	tab.applyRules(u, list, 2*sim.Second)
	if !tab.conflicts(8*sim.Second, v, x, addr(7), 0) {
		t.Error("stale refresh shortened the entry")
	}
}

func TestDeferRateAnnotations(t *testing.T) {
	// §3.5: entries are annotated with bit-rates; a conflict observed at
	// rate 2 must not force deferral at rate 0.
	u, v, x := addr(1), addr(2), addr(3)
	tab := newDeferTable()
	list := &frame.InterfererList{Src: v, Entries: []frame.InterferenceEntry{{Source: u, Interferer: x, Rate: 2}}}
	tab.applyRules(u, list, 10*sim.Second)
	if !tab.conflicts(0, v, x, addr(7), 2) {
		t.Error("conflict at annotated rate not detected")
	}
	if tab.conflicts(0, v, x, addr(7), 0) {
		t.Error("conflict leaked across rate annotations")
	}
}

func TestDeferTableQuickProperties(t *testing.T) {
	// Property: applying a list at node m creates pattern-1 entries only
	// for (m, q) pairs and pattern-2 entries only for (q, m) pairs.
	f := func(srcIDs, interfIDs []uint8, meID, rID uint8) bool {
		if len(srcIDs) > len(interfIDs) {
			srcIDs = srcIDs[:len(interfIDs)]
		}
		me := addr(int(meID))
		r := addr(int(rID) + 300) // receiver distinct from everyone
		list := &frame.InterfererList{Src: r}
		for i := range srcIDs {
			list.Entries = append(list.Entries, frame.InterferenceEntry{
				Source:     addr(int(srcIDs[i])),
				Interferer: addr(int(interfIDs[i])),
			})
		}
		tab := newDeferTable()
		tab.applyRules(me, list, sim.Second)
		for _, e := range list.Entries {
			// Pattern 1 fires for interferer q iff SOME entry (me, q) exists.
			wantP1 := false
			for _, o := range list.Entries {
				if o.Source == me && o.Interferer == e.Interferer {
					wantP1 = true
				}
			}
			if tab.conflicts(0, r, e.Interferer, addr(999), 0) != wantP1 {
				return false
			}
			// Pattern 2 fires for source q iff SOME entry (q, me) exists.
			wantP2 := false
			for _, o := range list.Entries {
				if o.Interferer == me && o.Source == e.Source {
					wantP2 = true
				}
			}
			if tab.conflicts(0, addr(998), e.Source, r, 0) != wantP2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestInterfStatDecay(t *testing.T) {
	s := &interfStat{Expected: 64, Lost: 48}
	if got := s.lossRate(); got != 0.75 {
		t.Errorf("lossRate = %v, want 0.75", got)
	}
	s.decay(10*sim.Second, 5*sim.Second)
	if s.Expected != 16 || s.Lost != 12 {
		t.Errorf("after two half-lives: %v/%v, want 12/16", s.Lost, s.Expected)
	}
	if got := s.lossRate(); got != 0.75 {
		t.Errorf("decay changed the rate: %v", got)
	}
	empty := &interfStat{}
	if empty.lossRate() != 0 {
		t.Error("empty stat lossRate should be 0")
	}
	empty.decay(sim.Second, 0) // zero half-life: no-op, no hang
}

func TestObservationsMerge(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Nvpkt = 4
	o := newObservations(cfg)
	src, dst := addr(1), addr(2)
	k := obsKey{Src: src, VSeq: 7}

	o.upsert(k, dst, 0, 100*sim.Millisecond, 120*sim.Millisecond, 101*sim.Millisecond)
	o.upsert(k, dst, 0, 95*sim.Millisecond, 118*sim.Millisecond, 96*sim.Millisecond)
	e := o.entries[k]
	if e.EstStart != 95*sim.Millisecond || e.EstEnd != 120*sim.Millisecond {
		t.Errorf("merged interval [%v,%v], want [95ms,120ms]", e.EstStart, e.EstEnd)
	}
	if e.VisibleAt != 96*sim.Millisecond {
		t.Errorf("VisibleAt = %v, want 96ms", e.VisibleAt)
	}
}

func TestObservationsOngoingAndVisibility(t *testing.T) {
	cfg := DefaultConfig()
	o := newObservations(cfg)
	k := obsKey{Src: addr(1), VSeq: 1}
	o.upsert(k, addr(2), 0, 0, 50*sim.Millisecond, 10*sim.Millisecond)

	count := func(now sim.Time) int {
		c := 0
		o.ongoing(now, func(*obsEntry) { c++ })
		return c
	}
	if count(5*sim.Millisecond) != 0 {
		t.Error("entry visible before the software MAC processed it")
	}
	if count(20*sim.Millisecond) != 1 {
		t.Error("entry not visible after processing")
	}
	if count(50*sim.Millisecond) != 0 {
		t.Error("entry still ongoing after its end")
	}
}

func TestObservationsOverlapExcludesSource(t *testing.T) {
	cfg := DefaultConfig()
	o := newObservations(cfg)
	o.upsert(obsKey{Src: addr(1), VSeq: 1}, addr(2), 0, 0, 10*sim.Millisecond, 0)
	o.upsert(obsKey{Src: addr(3), VSeq: 1}, addr(4), 0, 0, 10*sim.Millisecond, 0)
	var got []frame.Addr
	o.overlapping(5*sim.Millisecond, addr(1), func(e *obsEntry) { got = append(got, e.Src) })
	if len(got) != 1 || got[0] != addr(3) {
		t.Errorf("overlapping returned %v, want just node 3", got)
	}
}

func TestObservationsPrune(t *testing.T) {
	cfg := DefaultConfig()
	o := newObservations(cfg)
	o.upsert(obsKey{Src: addr(1), VSeq: 1}, addr(2), 0, 0, 10*sim.Millisecond, 0)
	o.prune(10*sim.Millisecond + o.retention() + 1)
	if o.size() != 0 {
		t.Errorf("prune left %d entries", o.size())
	}
}

func TestConfigDerivedValues(t *testing.T) {
	cfg := DefaultConfig()
	// §4.2: a 32-packet virtual packet at 6 Mb/s takes ≈62 ms.
	air := cfg.vpktAirtime(cfg.Nvpkt)
	if air < 55*sim.Millisecond || air > 70*sim.Millisecond {
		t.Errorf("vpkt airtime = %v, want ≈62ms", air)
	}
	tauMin, tauMax := cfg.tauBounds()
	if tauMax != sim.Time(cfg.Nwindow)*air {
		t.Errorf("tauMax = %v, want window airtime %v", tauMax, sim.Time(cfg.Nwindow)*air)
	}
	if tauMin != tauMax/2 {
		t.Errorf("tauMin = %v, want tauMax/2", tauMin)
	}
	if cfg.windowPackets() != 256 {
		t.Errorf("window = %d data packets, want 256", cfg.windowPackets())
	}
	// Explicit overrides are respected.
	cfg.TauMin, cfg.TauMax = sim.Millisecond, 2*sim.Millisecond
	a, b := cfg.tauBounds()
	if a != sim.Millisecond || b != 2*sim.Millisecond {
		t.Error("explicit tau bounds ignored")
	}
}
