package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/frame"
	"repro/internal/sim"
)

// Checkpoint surface of the CMAP node. The structural half (config,
// radio wiring, airtime tables) is rebuilt by New on resume; this file
// captures the mutable half: sender flows and the staged virtual
// packet, receiver flows and the in-progress inbound virtual packet,
// the observation table, the defer table, interference statistics, the
// timers and the RNG stream. Struct-keyed maps (obsKey, deferKey,
// pairKey) cannot be JSON object keys, so each exports as a slice of
// entries in a canonical sort order — which also makes the checkpoint
// bytes themselves deterministic, independent of Go map layout.
//
// Pointer aliasing invariants the restore path must re-establish:
// n.cur is nil or &n.curBuf with cur.seqs aliasing n.seqBuf; each
// rxFlow's cur is nil or &f.curBuf with cur.got aliasing f.gotBuf; and
// agenda events carrying a *rxFlow must resolve to the same object the
// rx map holds, which is why DecodeEventArg goes through flowFor.

// addrLess orders link-layer addresses bytewise, giving every exported
// entry slice a canonical order.
func addrLess(a, b frame.Addr) bool { return bytes.Compare(a[:], b[:]) < 0 }

// txFlowState is one sender flow in checkpoint form. Slice positions in
// NodeState.Flows preserve n.flows order — the round-robin cursor
// rrNext indexes it.
type txFlowState struct {
	Dst          frame.Addr   `json:"dst"`
	DstID        int          `json:"dst_id"`
	Bcast        bool         `json:"bcast,omitempty"`
	BcastTargets []frame.Addr `json:"bcast_targets,omitempty"`
	Saturated    bool         `json:"saturated,omitempty"`
	Backlog      int          `json:"backlog,omitempty"`
	NextPktSeq   uint32       `json:"next_pkt_seq,omitempty"`
	Unacked      []uint32     `json:"unacked,omitempty"` // sorted
	Retx         []uint32     `json:"retx,omitempty"`    // consumption order
}

// rxVpktState is an in-progress inbound virtual packet.
type rxVpktState struct {
	VSeq        uint32   `json:"vseq"`
	Start       sim.Time `json:"start"`
	Expected    int      `json:"expected"`
	Got         []bool   `json:"got"`
	HeaderSeen  bool     `json:"header_seen,omitempty"`
	TrailerSeen bool     `json:"trailer_seen,omitempty"`
	Rate        uint8    `json:"rate"`
	Bcast       bool     `json:"bcast,omitempty"`
}

// rxFlowState is one receiver flow in checkpoint form.
type rxFlowState struct {
	SrcID         int            `json:"src_id"`
	SrcAddr       frame.Addr     `json:"src_addr"`
	Cum           uint32         `json:"cum,omitempty"`
	Sack          []uint32       `json:"sack,omitempty"` // sorted
	Cur           *rxVpktState   `json:"cur,omitempty"`
	FinTimer      sim.TimerState `json:"fin_timer,omitempty"`
	FinVseq       uint32         `json:"fin_vseq,omitempty"`
	PendExpected  int            `json:"pend_expected,omitempty"`
	PendLost      int            `json:"pend_lost,omitempty"`
	VpktsSeen     uint64         `json:"vpkts_seen,omitempty"`
	VpktsHeader   uint64         `json:"vpkts_header,omitempty"`
	VpktsHdrOrTrl uint64         `json:"vpkts_hdr_or_trl,omitempty"`
}

// obsEntryState is one observation-table entry (key fields inlined).
type obsEntryState struct {
	Src       frame.Addr `json:"src"`
	VSeq      uint32     `json:"vseq"`
	Dst       frame.Addr `json:"dst"`
	Rate      uint8      `json:"rate"`
	EstStart  sim.Time   `json:"est_start"`
	EstEnd    sim.Time   `json:"est_end"`
	VisibleAt sim.Time   `json:"visible_at"`
}

// deferEntryState is one defer-table entry.
type deferEntryState struct {
	OurDst   frame.Addr `json:"our_dst"`
	Src      frame.Addr `json:"src"`
	TheirDst frame.Addr `json:"their_dst"`
	Rate     uint8      `json:"rate"`
	Expiry   sim.Time   `json:"expiry"`
}

// interfStatState is one (source, interferer) loss-statistic entry.
type interfStatState struct {
	Source     frame.Addr `json:"source"`
	Interferer frame.Addr `json:"interferer"`
	Rate       uint8      `json:"rate"`
	Expected   float64    `json:"expected"`
	Lost       float64    `json:"lost"`
	LastDecay  sim.Time   `json:"last_decay"`
}

// interfererState is one live interferer-list entry.
type interfererState struct {
	Source     frame.Addr `json:"source"`
	Interferer frame.Addr `json:"interferer"`
	Rate       uint8      `json:"rate"`
	Expiry     sim.Time   `json:"expiry"`
}

// addrTimeState is one relay rate-limit entry.
type addrTimeState struct {
	Addr frame.Addr `json:"addr"`
	At   sim.Time   `json:"at"`
}

// vpktTxState is the staged outbound virtual packet. The flow it sends
// on is named by destination address and resolved through flowByDst.
type vpktTxState struct {
	FlowDst     frame.Addr `json:"flow_dst"`
	VSeq        uint32     `json:"vseq"`
	Seqs        []uint32   `json:"seqs"`
	Next        int        `json:"next"`
	TrailerSent bool       `json:"trailer_sent,omitempty"`
	IsRetx      bool       `json:"is_retx,omitempty"`
}

// ackAttemptState is a pending or in-flight cumulative-ACK attempt.
type ackAttemptState struct {
	Ack  json.RawMessage `json:"ack"`
	Left int             `json:"left"`
}

func exportAckAttempt(aa *ackAttempt) (*ackAttemptState, error) {
	enc, err := frame.MarshalState(&aa.ack)
	if err != nil {
		return nil, err
	}
	return &ackAttemptState{Ack: enc, Left: aa.left}, nil
}

func restoreAckAttempt(st *ackAttemptState, aa *ackAttempt) error {
	f, err := frame.UnmarshalState(st.Ack)
	if err != nil {
		return err
	}
	a, ok := f.(*frame.Ack)
	if !ok {
		return fmt.Errorf("core: ack attempt holds a %v frame", f.Kind())
	}
	aa.ack = *a
	aa.left = st.Left
	return nil
}

// nodeState is a core.Node in checkpoint form.
type nodeState struct {
	Obs         []obsEntryState   `json:"obs,omitempty"`
	DeferTab    []deferEntryState `json:"defer_tab,omitempty"`
	InterfStats []interfStatState `json:"interf_stats,omitempty"`
	Interferers []interfererState `json:"interferers,omitempty"`
	Rx          []rxFlowState     `json:"rx,omitempty"`
	Flows       []txFlowState     `json:"flows,omitempty"`
	RRNext      int               `json:"rr_next,omitempty"`
	NextVSeq    uint32            `json:"next_vseq,omitempty"`
	CW          sim.Time          `json:"cw,omitempty"`
	Cur         *vpktTxState      `json:"cur,omitempty"`
	WaitAck     bool              `json:"wait_ack,omitempty"`

	AckTimer     sim.TimerState `json:"ack_timer,omitempty"`
	BackoffTimer sim.TimerState `json:"backoff_timer,omitempty"`
	DeferTimer   sim.TimerState `json:"defer_timer,omitempty"`
	RetxTimer    sim.TimerState `json:"retx_timer,omitempty"`
	RetryTimer   sim.TimerState `json:"retry_timer,omitempty"`

	LastRelay   []addrTimeState  `json:"last_relay,omitempty"`
	InflightAck *ackAttemptState `json:"inflight_ack,omitempty"`
	Stat        Stats            `json:"stat"`
	RNG         uint64           `json:"rng"`
}

// sortedSeqs flattens a sequence set into sorted order.
func sortedSeqs(m map[uint32]struct{}) []uint32 {
	if len(m) == 0 {
		return nil
	}
	out := make([]uint32, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ExportState implements mac.Checkpointer.
func (n *Node) ExportState() (json.RawMessage, error) {
	st := nodeState{
		RRNext:       n.rrNext,
		NextVSeq:     n.nextVSeq,
		CW:           n.cw,
		WaitAck:      n.waitAck,
		AckTimer:     n.ackTimer.State(),
		BackoffTimer: n.backoffTimer.State(),
		DeferTimer:   n.deferTimer.State(),
		RetxTimer:    n.retxTimer.State(),
		RetryTimer:   n.retryTimer.State(),
		Stat:         n.stat,
		RNG:          n.rng.State(),
	}
	for k, e := range n.obs.entries {
		st.Obs = append(st.Obs, obsEntryState{Src: k.Src, VSeq: k.VSeq, Dst: e.Dst,
			Rate: e.Rate, EstStart: e.EstStart, EstEnd: e.EstEnd, VisibleAt: e.VisibleAt})
	}
	sort.Slice(st.Obs, func(i, j int) bool {
		a, b := &st.Obs[i], &st.Obs[j]
		if a.Src != b.Src {
			return addrLess(a.Src, b.Src)
		}
		return a.VSeq < b.VSeq
	})
	for k, exp := range n.deferTab.entries {
		st.DeferTab = append(st.DeferTab, deferEntryState{OurDst: k.OurDst, Src: k.Src,
			TheirDst: k.TheirDst, Rate: k.Rate, Expiry: exp})
	}
	sort.Slice(st.DeferTab, func(i, j int) bool {
		a, b := &st.DeferTab[i], &st.DeferTab[j]
		if a.OurDst != b.OurDst {
			return addrLess(a.OurDst, b.OurDst)
		}
		if a.Src != b.Src {
			return addrLess(a.Src, b.Src)
		}
		if a.TheirDst != b.TheirDst {
			return addrLess(a.TheirDst, b.TheirDst)
		}
		return a.Rate < b.Rate
	})
	for k, s := range n.interfStats {
		st.InterfStats = append(st.InterfStats, interfStatState{Source: k.Source,
			Interferer: k.Interferer, Rate: k.Rate,
			Expected: s.Expected, Lost: s.Lost, LastDecay: s.lastDecay})
	}
	sort.Slice(st.InterfStats, func(i, j int) bool {
		a, b := &st.InterfStats[i], &st.InterfStats[j]
		if a.Source != b.Source {
			return addrLess(a.Source, b.Source)
		}
		if a.Interferer != b.Interferer {
			return addrLess(a.Interferer, b.Interferer)
		}
		return a.Rate < b.Rate
	})
	for k, exp := range n.interferers {
		st.Interferers = append(st.Interferers, interfererState{Source: k.Source,
			Interferer: k.Interferer, Rate: k.Rate, Expiry: exp})
	}
	sort.Slice(st.Interferers, func(i, j int) bool {
		a, b := &st.Interferers[i], &st.Interferers[j]
		if a.Source != b.Source {
			return addrLess(a.Source, b.Source)
		}
		if a.Interferer != b.Interferer {
			return addrLess(a.Interferer, b.Interferer)
		}
		return a.Rate < b.Rate
	})
	for _, f := range n.rx {
		fs := rxFlowState{
			SrcID: f.srcID, SrcAddr: f.srcAddr, Cum: f.cum,
			Sack:     sortedSeqs(f.sack),
			FinTimer: f.finTimer.State(), FinVseq: f.finVseq,
			PendExpected: f.pendExpected, PendLost: f.pendLost,
			VpktsSeen: f.VpktsSeen, VpktsHeader: f.VpktsHeader, VpktsHdrOrTrl: f.VpktsHdrOrTrl,
		}
		if f.cur != nil {
			fs.Cur = &rxVpktState{VSeq: f.cur.vseq, Start: f.cur.start,
				Expected: f.cur.expected, Got: append([]bool(nil), f.cur.got...),
				HeaderSeen: f.cur.headerSeen, TrailerSeen: f.cur.trailerSeen,
				Rate: f.cur.rate, Bcast: f.cur.bcast}
		}
		st.Rx = append(st.Rx, fs)
	}
	sort.Slice(st.Rx, func(i, j int) bool { return addrLess(st.Rx[i].SrcAddr, st.Rx[j].SrcAddr) })
	for _, f := range n.flows {
		st.Flows = append(st.Flows, txFlowState{
			Dst: f.dst, DstID: f.dstID, Bcast: f.bcast,
			BcastTargets: append([]frame.Addr(nil), f.bcastTargets...),
			Saturated:    f.saturated, Backlog: f.backlog,
			NextPktSeq: f.nextPktSeq,
			Unacked:    sortedSeqs(f.unacked),
			Retx:       append([]uint32(nil), f.retx...),
		})
	}
	if n.cur != nil {
		st.Cur = &vpktTxState{FlowDst: n.cur.flow.dst, VSeq: n.cur.vseq,
			Seqs: append([]uint32(nil), n.cur.seqs...), Next: n.cur.next,
			TrailerSent: n.cur.trailerSent, IsRetx: n.cur.isRetx}
	}
	for a, t := range n.lastRelay {
		st.LastRelay = append(st.LastRelay, addrTimeState{Addr: a, At: t})
	}
	sort.Slice(st.LastRelay, func(i, j int) bool { return addrLess(st.LastRelay[i].Addr, st.LastRelay[j].Addr) })
	if n.inflightAck != nil {
		aa, err := exportAckAttempt(n.inflightAck)
		if err != nil {
			return nil, fmt.Errorf("core: node %d inflight ack: %w", n.id, err)
		}
		st.InflightAck = aa
	}
	return json.Marshal(st)
}

// RestoreState implements mac.Checkpointer. It must run after the
// scheduler's RestoreState: the timer handles re-point against the
// restored slot generations, and any rxFlow objects materialised while
// decoding agenda events (DecodeEventArg goes through flowFor) are
// reused here so pointer identity between the agenda and the rx map
// holds.
func (n *Node) RestoreState(enc json.RawMessage) error {
	var st nodeState
	if err := json.Unmarshal(enc, &st); err != nil {
		return fmt.Errorf("core: node %d state: %w", n.id, err)
	}

	n.obs.entries = make(map[obsKey]*obsEntry, len(st.Obs))
	n.obs.free = n.obs.free[:0]
	for _, e := range st.Obs {
		n.obs.entries[obsKey{Src: e.Src, VSeq: e.VSeq}] = &obsEntry{
			Src: e.Src, Dst: e.Dst, Rate: e.Rate, VSeq: e.VSeq,
			EstStart: e.EstStart, EstEnd: e.EstEnd, VisibleAt: e.VisibleAt}
	}
	n.deferTab.entries = make(map[deferKey]sim.Time, len(st.DeferTab))
	for _, e := range st.DeferTab {
		n.deferTab.entries[deferKey{OurDst: e.OurDst, Src: e.Src, TheirDst: e.TheirDst, Rate: e.Rate}] = e.Expiry
	}
	n.interfStats = make(map[pairKey]*interfStat, len(st.InterfStats))
	for _, e := range st.InterfStats {
		n.interfStats[pairKey{Source: e.Source, Interferer: e.Interferer, Rate: e.Rate}] =
			&interfStat{Expected: e.Expected, Lost: e.Lost, lastDecay: e.LastDecay}
	}
	n.interferers = make(map[pairKey]sim.Time, len(st.Interferers))
	for _, e := range st.Interferers {
		n.interferers[pairKey{Source: e.Source, Interferer: e.Interferer, Rate: e.Rate}] = e.Expiry
	}

	// Receiver flows: reuse any object event decoding already created so
	// the agenda's *rxFlow arguments and the rx map stay one object.
	for _, fs := range st.Rx {
		f := n.flowFor(fs.SrcAddr, fs.SrcID)
		f.srcID = fs.SrcID
		f.cum = fs.Cum
		f.sack = make(map[uint32]struct{}, len(fs.Sack))
		for _, s := range fs.Sack {
			f.sack[s] = struct{}{}
		}
		f.cur = nil
		if fs.Cur != nil {
			f.gotBuf = append(f.gotBuf[:0], fs.Cur.Got...)
			f.curBuf = rxVpkt{vseq: fs.Cur.VSeq, start: fs.Cur.Start,
				expected: fs.Cur.Expected, got: f.gotBuf,
				headerSeen: fs.Cur.HeaderSeen, trailerSeen: fs.Cur.TrailerSeen,
				rate: fs.Cur.Rate, bcast: fs.Cur.Bcast}
			f.cur = &f.curBuf
		}
		n.sched.RestoreTimer(&f.finTimer, fs.FinTimer)
		f.finVseq = fs.FinVseq
		f.pendExpected, f.pendLost = fs.PendExpected, fs.PendLost
		f.VpktsSeen, f.VpktsHeader, f.VpktsHdrOrTrl = fs.VpktsSeen, fs.VpktsHeader, fs.VpktsHdrOrTrl
	}

	// Sender flows: rebuilt in serialized slice order (rrNext indexes
	// it). Skeleton-constructed flow objects are discarded — nothing else
	// holds a *txFlow; the staged virtual packet resolves through
	// flowByDst below.
	n.flows = n.flows[:0]
	n.flowByDst = make(map[frame.Addr]*txFlow, len(st.Flows))
	for _, fs := range st.Flows {
		f := &txFlow{dst: fs.Dst, dstID: fs.DstID, bcast: fs.Bcast,
			bcastTargets: append([]frame.Addr(nil), fs.BcastTargets...),
			saturated:    fs.Saturated, backlog: fs.Backlog,
			nextPktSeq: fs.NextPktSeq,
			unacked:    make(map[uint32]struct{}, len(fs.Unacked)),
			retx:       append([]uint32(nil), fs.Retx...)}
		for _, s := range fs.Unacked {
			f.unacked[s] = struct{}{}
		}
		n.flows = append(n.flows, f)
		n.flowByDst[f.dst] = f
	}
	n.rrNext = st.RRNext
	n.nextVSeq = st.NextVSeq
	n.cw = st.CW
	n.waitAck = st.WaitAck

	n.cur = nil
	if st.Cur != nil {
		f := n.flowByDst[st.Cur.FlowDst]
		if f == nil {
			return fmt.Errorf("core: node %d staged virtual packet names unknown flow %v", n.id, st.Cur.FlowDst)
		}
		n.seqBuf = append(n.seqBuf[:0], st.Cur.Seqs...)
		n.curBuf = vpktTx{flow: f, vseq: st.Cur.VSeq, seqs: n.seqBuf,
			next: st.Cur.Next, trailerSent: st.Cur.TrailerSent, isRetx: st.Cur.IsRetx}
		n.cur = &n.curBuf
	}

	n.sched.RestoreTimer(&n.ackTimer, st.AckTimer)
	n.sched.RestoreTimer(&n.backoffTimer, st.BackoffTimer)
	n.sched.RestoreTimer(&n.deferTimer, st.DeferTimer)
	n.sched.RestoreTimer(&n.retxTimer, st.RetxTimer)
	n.sched.RestoreTimer(&n.retryTimer, st.RetryTimer)

	n.lastRelay = nil
	if len(st.LastRelay) > 0 {
		n.lastRelay = make(map[frame.Addr]sim.Time, len(st.LastRelay))
		for _, e := range st.LastRelay {
			n.lastRelay[e.Addr] = e.At
		}
	}
	n.ackFree = n.ackFree[:0]
	n.inflightAck = nil
	if st.InflightAck != nil {
		aa := &ackAttempt{}
		if err := restoreAckAttempt(st.InflightAck, aa); err != nil {
			return fmt.Errorf("core: node %d inflight ack: %w", n.id, err)
		}
		n.inflightAck = aa
	}
	n.stat = st.Stat
	n.rng.SetState(st.RNG)
	return nil
}

// coreArg is the encoded form of one agenda event argument owned by
// this node: exactly one field group is set.
type coreArg struct {
	Ev      *int             `json:"ev,omitempty"`
	RxSrc   *frame.Addr      `json:"rx_src,omitempty"`
	RxSrcID *int             `json:"rx_src_id,omitempty"`
	Ack     *ackAttemptState `json:"ack,omitempty"`
	List    json.RawMessage  `json:"list,omitempty"`
	Budget  *int             `json:"budget,omitempty"`
}

// EncodeEventArg implements mac.Checkpointer.
func (n *Node) EncodeEventArg(arg any) (json.RawMessage, error) {
	switch v := arg.(type) {
	case macEvent:
		ev := int(v)
		return json.Marshal(coreArg{Ev: &ev})
	case *rxFlow:
		src, id := v.srcAddr, v.srcID
		return json.Marshal(coreArg{RxSrc: &src, RxSrcID: &id})
	case *ackAttempt:
		st, err := exportAckAttempt(v)
		if err != nil {
			return nil, fmt.Errorf("core: node %d pending ack: %w", n.id, err)
		}
		return json.Marshal(coreArg{Ack: st})
	case *listSend:
		enc, err := frame.MarshalState(v.list)
		if err != nil {
			return nil, fmt.Errorf("core: node %d pending list: %w", n.id, err)
		}
		budget := v.budget
		return json.Marshal(coreArg{List: enc, Budget: &budget})
	default:
		return nil, fmt.Errorf("core: node %d holds unencodable event arg %T", n.id, arg)
	}
}

// DecodeEventArg implements mac.Checkpointer. It runs during scheduler
// restore, before the node's own RestoreState: rxFlow arguments are
// materialised through flowFor so the later state restore reuses the
// same objects, and ACK/list arguments decode to fresh objects (their
// dispatch reads content, never pointer identity).
func (n *Node) DecodeEventArg(enc json.RawMessage) (any, error) {
	var a coreArg
	if err := json.Unmarshal(enc, &a); err != nil {
		return nil, fmt.Errorf("core: node %d event arg: %w", n.id, err)
	}
	switch {
	case a.Ev != nil:
		return macEvent(*a.Ev), nil
	case a.RxSrc != nil && a.RxSrcID != nil:
		return n.flowFor(*a.RxSrc, *a.RxSrcID), nil
	case a.Ack != nil:
		aa := &ackAttempt{}
		if err := restoreAckAttempt(a.Ack, aa); err != nil {
			return nil, fmt.Errorf("core: node %d pending ack: %w", n.id, err)
		}
		return aa, nil
	case a.List != nil && a.Budget != nil:
		f, err := frame.UnmarshalState(a.List)
		if err != nil {
			return nil, fmt.Errorf("core: node %d pending list: %w", n.id, err)
		}
		l, ok := f.(*frame.InterfererList)
		if !ok {
			return nil, fmt.Errorf("core: node %d pending list holds a %v frame", n.id, f.Kind())
		}
		return &listSend{list: l, budget: *a.Budget}, nil
	default:
		return nil, fmt.Errorf("core: node %d event arg matches no known shape", n.id)
	}
}
