package phy

import (
	"fmt"
	"math"

	"repro/internal/frame"
	"repro/internal/radio"
	"repro/internal/sim"
)

// Transmission is one frame on the air: the shared, per-transmission
// half of what a receiver perceives. The medium creates exactly one per
// transmitted frame (recycling them through a free list) and every
// audible receiver shares the pointer; the per-receiver half — the
// power the signal arrives with — travels alongside it as a plain
// float, so fanning a frame out to k receivers allocates nothing.
type Transmission struct {
	// TxID identifies the transmission network-wide (all receivers of
	// one transmission share it). IDs are assigned in increasing order.
	TxID uint64
	// From is the transmitting node ID.
	From int
	// Frame is the frame being carried.
	Frame frame.Frame
	// Rate is the transmission bit-rate.
	Rate Rate
	// Start and End bound the on-air interval.
	Start, End sim.Time
	// Deliveries is the sender's delivery list captured at transmit
	// time. The end-of-signal fan-out walks this snapshot rather than
	// the medium's live list, so SignalStart and SignalEnd reach exactly
	// the same receiver set even if node movement patches the live lists
	// while the frame is on the air. Under static scenarios it aliases
	// the live list and behaviour is unchanged.
	Deliveries []Delivery
}

// Delivery is one audible receiver of a node's transmissions: the
// receiver index and the power it hears, in mW, at the common transmit
// power. The medium builds and patches delivery lists (see
// internal/medium); the type lives here so an in-flight Transmission
// can carry its snapshot without an import cycle.
type Delivery struct {
	Dst    int
	GainMW float64
}

// activeSignal is one transmission currently audible at a radio,
// paired with the power it arrives with there.
type activeSignal struct {
	tx      *Transmission
	powerMW float64
}

// RxInfo describes a reception outcome delivered to the MAC.
type RxInfo struct {
	From     int     // transmitting node ID
	PowerDBm float64 // received power
	Rate     Rate
	Start    sim.Time // when the frame hit the antenna
	End      sim.Time // when it ended
}

// Handler is the MAC-facing upcall interface of a radio. Radios are
// promiscuous: every decodable frame is delivered regardless of its
// destination address, as CMAP requires (§3).
type Handler interface {
	// OnFrame delivers a successfully decoded frame.
	OnFrame(f frame.Frame, info RxInfo)
	// OnCorrupt reports a frame the radio locked onto but failed to
	// decode (a collision or noise loss).
	OnCorrupt(info RxInfo)
	// OnTxDone reports the end of this radio's own transmission.
	OnTxDone(f frame.Frame)
	// OnCarrier reports carrier-sense transitions (busy=true on the
	// idle→busy edge, busy=false on busy→idle).
	OnCarrier(busy bool)
}

// Channel is the medium-facing downcall interface of a radio; the medium
// package implements it.
type Channel interface {
	// Transmit puts a frame on the air from the given radio at the given
	// rate and returns the transmission end time.
	Transmit(from *Radio, f frame.Frame, r Rate) sim.Time
}

// Radio is a half-duplex 802.11a transceiver. It tracks all signals
// currently on the air at its antenna, attempts preamble lock on new
// frames when idle, integrates SINR across interference segments while
// receiving, and answers carrier-sense queries.
type Radio struct {
	id      int
	params  Params
	sched   *sim.Scheduler
	rng     *sim.RNG
	channel Channel
	handler Handler

	noiseMW float64
	csMW    float64

	// Linear-domain reception constants, folded once at construction so
	// the per-segment hot path is a multiply-divide plus a table lookup
	// with no dB round trip (see tables.go). sensitivityMW mirrors
	// SensitivityDBm; ebn0K[rate] converts the locked frame's linear
	// SINR to the rate's effective Eb/N0 (bandwidth-per-bit-rate ×
	// coding gain ÷ implementation loss); lockK does the same for the
	// BPSK preamble block with the preamble offset folded in, and
	// captureK additionally derates by the capture margin.
	sensitivityMW float64
	ebn0K         [len(rateTable)]float64
	lockK         float64
	captureK      float64
	exact         bool

	transmitting bool
	txFrame      frame.Frame

	// active holds the audible transmissions in ascending TxID order.
	// TxIDs are issued monotonically, so arrivals append and removals
	// binary-search — and any iteration is deterministic by
	// construction, unlike the map this slice replaced.
	active []activeSignal
	// totalMW is the sum of active signal powers (incrementally maintained).
	totalMW float64

	locked      *Transmission
	lockedMW    float64 // received power of the locked transmission here
	lockLogSucc float64
	segStart    sim.Time

	carrierBusy bool

	stats RadioStats
}

// RadioStats counts reception outcomes for diagnostics and the
// header/trailer delivery figures.
type RadioStats struct {
	Decoded     uint64 // frames decoded successfully
	Corrupted   uint64 // locked but failed decode (or truncated by capture)
	Missed      uint64 // signals that never achieved lock
	AbortedRx   uint64 // receptions abandoned because the MAC transmitted
	Captures    uint64 // locks stolen by a much stronger arrival
	Transmitted uint64
}

// NewRadio creates a radio for node id. handler must be set with
// SetHandler before any traffic flows; channel is the medium.
func NewRadio(id int, params Params, sched *sim.Scheduler, rng *sim.RNG, channel Channel) *Radio {
	r := &Radio{
		id:      id,
		params:  params,
		sched:   sched,
		rng:     rng,
		channel: channel,
		noiseMW: radio.DBmToMW(params.NoiseFloorDBm),
		csMW:    radio.DBmToMW(params.CSThresholdDBm),
	}
	r.deriveLinear()
	return r
}

// SetCSThresholdDBm overrides this radio's carrier-sense threshold,
// leaving the rest of the network at the medium-wide default. The
// CS-threshold MAC arms use it to sweep sensing aggressiveness per
// node; it only affects CarrierBusy, never reception outcomes.
func (r *Radio) SetCSThresholdDBm(dbm float64) {
	r.csMW = radio.DBmToMW(dbm)
}

// deriveLinear folds every dB-domain reception constant into the linear
// multipliers the hot path uses. The algebra: with SINR already linear,
//
//	Eb/N0 = SINR · (BW/bitrate) · 10^((codingGain − implLoss)/10)
//
// so the whole chain MWToDBm → +offsets → FromDB that the exact path
// performs per segment collapses to one constant per (radio, rate).
func (r *Radio) deriveLinear() {
	p := r.params
	r.sensitivityMW = radio.DBmToMW(p.SensitivityDBm)
	for _, rt := range rateTable {
		r.ebn0K[rt.ID] = channelBandwidthMHz / rt.Mbps *
			radio.FromDB(rt.codingGainDB-p.ImplementationLossDB)
	}
	pre := rateTable[Rate6Mbps]
	r.lockK = channelBandwidthMHz / pre.Mbps *
		radio.FromDB(pre.codingGainDB-p.ImplementationLossDB-p.PreambleOffsetDB)
	r.captureK = r.lockK * radio.FromDB(-p.CaptureMarginDB)
	r.exact = p.ExactReceptionMath
}

// ID returns the node ID this radio belongs to.
func (r *Radio) ID() int { return r.id }

// SetHandler installs the MAC upcall target.
func (r *Radio) SetHandler(h Handler) { r.handler = h }

// Stats returns a copy of the radio's counters.
func (r *Radio) Stats() RadioStats { return r.stats }

// Params returns the transceiver constants.
func (r *Radio) Params() Params { return r.params }

// Transmitting reports whether the radio is currently sending.
func (r *Radio) Transmitting() bool { return r.transmitting }

// ActiveSignals returns the number of transmissions currently audible
// at this radio's antenna.
func (r *Radio) ActiveSignals() int { return len(r.active) }

// CarrierBusy reports the carrier-sense state: busy while transmitting,
// while locked onto an incoming frame, or while total in-air power at the
// antenna exceeds the carrier-sense threshold.
func (r *Radio) CarrierBusy() bool {
	return r.transmitting || r.locked != nil || r.totalMW >= r.csMW
}

// Transmit starts sending f at rate rate. The radio is half-duplex: any
// reception in progress is abandoned. Transmitting while already
// transmitting is a MAC bug and panics. Returns the transmission end time.
func (r *Radio) Transmit(f frame.Frame, rate Rate) sim.Time {
	if r.transmitting {
		panic(fmt.Sprintf("phy: node %d transmit while transmitting", r.id))
	}
	if r.locked != nil {
		// Abandon the reception; the frame is lost to us.
		r.stats.AbortedRx++
		r.locked = nil
		r.lockedMW = 0
		r.lockLogSucc = 0
	}
	r.transmitting = true
	r.txFrame = f
	r.stats.Transmitted++
	end := r.channel.Transmit(r, f, rate)
	r.updateCarrier()
	return end
}

// TxDone is called by the medium when this radio's transmission ends.
// MACs never call it.
func (r *Radio) TxDone() {
	r.transmitting = false
	f := r.txFrame
	r.txFrame = nil
	r.updateCarrier()
	if r.handler != nil {
		r.handler.OnTxDone(f)
	}
}

// findActive returns the index of txID in the active list.
func (r *Radio) findActive(txID uint64) (int, bool) {
	lo, hi := 0, len(r.active)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.active[mid].tx.TxID < txID {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(r.active) && r.active[lo].tx.TxID == txID {
		return lo, true
	}
	return lo, false
}

// SignalStart is called by the medium when a transmission begins to be
// heard at this radio, with the power it arrives with here.
func (r *Radio) SignalStart(tx *Transmission, powerMW float64) {
	now := r.sched.Now()
	// Close the running interference segment of a locked reception before
	// the interference set changes.
	if r.locked != nil {
		r.closeSegment(now)
	}
	// TxIDs are monotone, so new arrivals belong at the tail; the
	// general insert is kept for robustness against future reordering.
	if n := len(r.active); n == 0 || r.active[n-1].tx.TxID < tx.TxID {
		r.active = append(r.active, activeSignal{tx: tx, powerMW: powerMW})
	} else {
		i, _ := r.findActive(tx.TxID)
		r.active = append(r.active, activeSignal{})
		copy(r.active[i+1:], r.active[i:])
		r.active[i] = activeSignal{tx: tx, powerMW: powerMW}
	}
	r.totalMW += powerMW
	switch {
	case r.transmitting:
		r.stats.Missed++
	case r.locked == nil:
		r.tryLock(tx, powerMW, now)
	default:
		r.tryCapture(tx, powerMW, now)
	}
	r.updateCarrier()
}

// tryCapture models OFDM sync restart: a frame arriving far above the
// currently locked (weaker) frame captures the receiver. The old frame is
// abandoned and reported corrupted.
func (r *Radio) tryCapture(tx *Transmission, powerMW float64, now sim.Time) {
	if r.params.CaptureMarginDB <= 0 {
		return // capture disabled
	}
	if powerMW < r.sensitivityMW {
		return
	}
	interf := r.totalMW - powerMW
	if interf < 0 {
		interf = 0
	}
	var pCapture float64
	if r.exact {
		sinr := radio.SINR(powerMW, r.noiseMW, interf) - r.params.ImplementationLossDB
		pCapture = LockProbability(sinr-r.params.CaptureMarginDB, r.params.PreambleOffsetDB)
	} else {
		pCapture = lockProbLinear(powerMW / (r.noiseMW + interf) * r.captureK)
	}
	if r.rng.Float64() >= pCapture {
		return
	}
	old, oldMW := r.locked, r.lockedMW
	r.locked = tx
	r.lockedMW = powerMW
	r.lockLogSucc = 0
	r.segStart = now
	r.stats.Captures++
	r.stats.Corrupted++
	if r.handler != nil {
		r.handler.OnCorrupt(RxInfo{
			From:     old.From,
			PowerDBm: radio.MWToDBm(oldMW),
			Rate:     old.Rate,
			Start:    old.Start,
			End:      now,
		})
	}
}

// SignalEnd is called by the medium when a transmission stops being heard
// at this radio.
func (r *Radio) SignalEnd(tx *Transmission) {
	now := r.sched.Now()
	if r.locked != nil {
		r.closeSegment(now)
	}
	if i, ok := r.findActive(tx.TxID); ok {
		powerMW := r.active[i].powerMW
		copy(r.active[i:], r.active[i+1:])
		r.active[len(r.active)-1] = activeSignal{} // drop the Transmission reference
		r.active = r.active[:len(r.active)-1]
		r.totalMW -= powerMW
	}
	if len(r.active) == 0 {
		// An empty active set means exactly zero in-air power: reset the
		// incremental accumulator so add/subtract float drift cannot
		// survive a quiet period and grow without bound.
		r.totalMW = 0
	} else if r.totalMW < 0 {
		r.totalMW = 0
	}
	if r.locked == tx {
		r.finishReception(tx, now)
	}
	r.updateCarrier()
}

// tryLock attempts preamble acquisition on tx. Acquisition is
// probabilistic: a short BPSK block must decode at the instantaneous SINR.
func (r *Radio) tryLock(tx *Transmission, powerMW float64, now sim.Time) {
	if powerMW < r.sensitivityMW {
		r.stats.Missed++
		return
	}
	interf := r.totalMW - powerMW
	if interf < 0 {
		interf = 0
	}
	var pLock float64
	if r.exact {
		sinr := radio.SINR(powerMW, r.noiseMW, interf) - r.params.ImplementationLossDB
		pLock = LockProbability(sinr, r.params.PreambleOffsetDB)
	} else {
		pLock = lockProbLinear(powerMW / (r.noiseMW + interf) * r.lockK)
	}
	if r.rng.Float64() >= pLock {
		r.stats.Missed++
		return
	}
	r.locked = tx
	r.lockedMW = powerMW
	r.lockLogSucc = 0
	r.segStart = now
}

// closeSegment integrates the bit-success probability of the locked frame
// over [segStart, now) at the current interference level. On the table
// path this is one divide, one multiply and a table interpolation — no
// transcendental, no dB round trip.
func (r *Radio) closeSegment(now sim.Time) {
	dur := now - r.segStart
	r.segStart = now
	if dur <= 0 {
		return
	}
	interf := r.totalMW - r.lockedMW
	if interf < 0 {
		interf = 0
	}
	bits := float64(dur) * r.locked.Rate.Mbps / 1000 // ns × Mb/s = 1e-3 bits
	if r.exact {
		sinr := radio.SINR(r.lockedMW, r.noiseMW, interf) - r.params.ImplementationLossDB
		r.lockLogSucc += logSuccess(BitErrorRate(r.locked.Rate, sinr), bits)
		return
	}
	g := r.lockedMW / (r.noiseMW + interf) * r.ebn0K[r.locked.Rate.ID]
	r.lockLogSucc += bits * lnBitSuccess(r.locked.Rate.Mod, g)
}

// finishReception resolves the decode of a completed locked frame.
func (r *Radio) finishReception(tx *Transmission, now sim.Time) {
	r.locked = nil
	info := RxInfo{
		From:     tx.From,
		PowerDBm: radio.MWToDBm(r.lockedMW),
		Rate:     tx.Rate,
		Start:    tx.Start,
		End:      now,
	}
	r.lockedMW = 0
	pSuccess := math.Exp(r.lockLogSucc)
	r.lockLogSucc = 0
	if r.handler == nil {
		return
	}
	if r.rng.Float64() < pSuccess {
		r.stats.Decoded++
		r.handler.OnFrame(tx.Frame, info)
	} else {
		r.stats.Corrupted++
		r.handler.OnCorrupt(info)
	}
}

// updateCarrier delivers carrier-sense edges to the MAC.
func (r *Radio) updateCarrier() {
	busy := r.CarrierBusy()
	if busy == r.carrierBusy {
		return
	}
	r.carrierBusy = busy
	if r.handler != nil {
		r.handler.OnCarrier(busy)
	}
}
