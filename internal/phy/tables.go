package phy

import "math"

// The reception hot path — closeSegment, tryLock, tryCapture — runs
// once per SINR segment at every locked receiver, which at 1000-node
// saturation makes it one of the hottest loops in the simulator. The
// exact formulas (per.go) cost an Erfc, a Sqrt and a Log1p per call,
// plus the Pow/Log10 round trip of the dB conversions. This file
// replaces them with monotone piecewise-linear tables over quantized
// *linear* effective Eb/N0, built once at package init from the exact
// formulas:
//
//   - berTables[mod] holds ln P(bit survives) = log1p(-BER) per
//     modulation; segment accounting multiplies it by the segment's bit
//     count, so no per-segment transcendental remains.
//   - lockTable holds the preamble acquisition probability (the BPSK
//     32-byte-block decode probability LockProbability computes), so a
//     lock attempt is a table lookup compared against one RNG draw.
//
// Quantization reads the float64 bit pattern directly: the exponent
// field selects the octave, the top mantissa bits the sub-bin, and the
// remaining mantissa bits the interpolation fraction — no Log, no
// branch mispredictions, and (being piecewise-linear in the mantissa)
// linear interpolation in g itself, which is the axis along which
// log-BER flattens to a straight line in the high-SNR tail.
//
// Tables are indexed by effective Eb/N0 with every dB-domain constant
// (implementation loss, bandwidth-per-bit-rate conversion, coding gain,
// preamble offset, capture margin) folded into per-radio linear
// multipliers at construction; see Radio.deriveLinear.

const (
	// tableMinExp/tableMaxExp bound the tables' linear Eb/N0 domain at
	// 2^-14 (≈ -42 dB, far below any decodable signal: BER is within
	// 0.005 of its g→0 limit) and 2^12 (≈ +36 dB, where even the QAM-64
	// BER underflows any per-frame effect). Outside the range the
	// lookups clamp.
	tableMinExp = -14
	tableMaxExp = 12
	// tableSubBits gives 2^6 = 64 sub-bins per octave (≈ 0.05 dB node
	// spacing), which bounds the interpolation error of the property
	// test (relative BER error well under 1% anywhere the BER is large
	// enough to matter) with a ~66 KB total footprint.
	tableSubBits = 6
	tableBins    = (tableMaxExp - tableMinExp) << tableSubBits
)

var (
	tableGMin = math.Ldexp(1, tableMinExp)
	tableGMax = math.Ldexp(1, tableMaxExp)
)

// berTables[mod][i] is log1p(-berLinear(mod, tableNode(i))): the
// natural-log per-bit survival probability at the bin's node point.
// Rates share tables per modulation because the coding gain is folded
// into the caller's multiplier, not the table axis.
var berTables [4][tableBins + 1]float64

// lockTable[i] is the preamble acquisition probability at the bin's
// node point: exp(preambleBits · log1p(-berLinear(BPSK, g))), exactly
// what LockProbability computes after its dB conversions.
var lockTable [tableBins + 1]float64

// tableNode returns the linear Eb/N0 at bin boundary i.
func tableNode(i int) float64 {
	exp := tableMinExp + i>>tableSubBits
	sub := i & (1<<tableSubBits - 1)
	return math.Ldexp(1+float64(sub)/(1<<tableSubBits), exp)
}

func init() {
	preambleBits := float64(PayloadBits(preambleEquivalentBytes))
	for i := 0; i <= tableBins; i++ {
		g := tableNode(i)
		for mod := BPSK; mod <= QAM64; mod++ {
			berTables[mod][i] = math.Log1p(-berLinear(mod, g))
		}
		lockTable[i] = math.Exp(preambleBits * berTables[BPSK][i])
	}
}

// tableIndex splits g ∈ [tableGMin, tableGMax) into a bin index and the
// linear interpolation fraction within the bin, straight from the IEEE
// 754 bit pattern. Within one sub-bin the mantissa fraction IS the
// position in g, so interpolating on it is linear interpolation in g.
func tableIndex(g float64) (int, float64) {
	const (
		fracBits = 52 - tableSubBits
		fracMask = 1<<fracBits - 1
		idxBias  = (1023 + tableMinExp) << tableSubBits
	)
	bits := math.Float64bits(g)
	idx := int(bits>>fracBits) - idxBias
	frac := float64(bits&fracMask) * (1.0 / (1 << fracBits))
	return idx, frac
}

// lnBitSuccess returns log1p(-BER) at linear effective Eb/N0 g for the
// given modulation, by table interpolation. Transcendental-free.
func lnBitSuccess(mod Modulation, g float64) float64 {
	if g >= tableGMax {
		return 0 // BER underflows any per-frame effect
	}
	t := &berTables[mod]
	if g <= tableGMin {
		return t[0]
	}
	i, frac := tableIndex(g)
	a := t[i]
	return a + (t[i+1]-a)*frac
}

// lockProbLinear returns the preamble acquisition probability at linear
// preamble Eb/N0 g, by table interpolation. Transcendental-free.
func lockProbLinear(g float64) float64 {
	if g >= tableGMax {
		return 1
	}
	if g <= tableGMin {
		return lockTable[0]
	}
	i, frac := tableIndex(g)
	a := lockTable[i]
	return a + (lockTable[i+1]-a)*frac
}
