package phy

import (
	"math"

	"repro/internal/radio"
)

// channelBandwidthMHz is the 802.11a channel bandwidth used to convert
// SINR to per-bit Eb/N0.
const channelBandwidthMHz = 20.0

// qfunc is the Gaussian tail probability Q(x).
func qfunc(x float64) float64 { return 0.5 * math.Erfc(x/math.Sqrt2) }

// BitErrorRate returns the post-decoding bit error probability at the
// given SINR (dB) for rate r. The model is the textbook AWGN chain:
// SINR → Eb/N0 (bandwidth/bit-rate conversion), an effective Viterbi
// coding gain per code rate, and the Gray-coded modulation BER formula.
// Implementation loss is applied by the caller via Params.
//
// This is the exact (Erfc-based) reference path. Radios on the hot path
// use the precomputed tables of tables.go instead, which are built from
// this function and validated against it by a bounded-error property
// test.
func BitErrorRate(r Rate, sinrDB float64) float64 {
	if math.IsInf(sinrDB, -1) {
		return 0.5
	}
	ebn0DB := sinrDB + 10*math.Log10(channelBandwidthMHz/r.Mbps) + r.codingGainDB
	return berLinear(r.Mod, radio.FromDB(ebn0DB))
}

// berLinear is the Gray-coded modulation BER formula over linear
// effective Eb/N0 (bandwidth conversion, coding gain and implementation
// loss already applied by the caller).
func berLinear(mod Modulation, g float64) float64 {
	var ber float64
	switch mod {
	case BPSK, QPSK:
		ber = qfunc(math.Sqrt(2 * g))
	case QAM16:
		// (4/k)(1-1/sqrt(M)) Q(sqrt(3k/(M-1) Eb/N0)), k=4, M=16.
		ber = 0.75 * qfunc(math.Sqrt(0.8*g))
	case QAM64:
		// k=6, M=64.
		ber = (7.0 / 12.0) * qfunc(math.Sqrt((18.0/63.0)*g))
	default:
		ber = 0.5
	}
	if ber > 0.5 {
		ber = 0.5
	}
	return ber
}

// PacketErrorRate returns the probability that a frame of wireBytes at
// rate r is corrupted at constant SINR (dB).
func PacketErrorRate(r Rate, sinrDB float64, wireBytes int) float64 {
	ber := BitErrorRate(r, sinrDB)
	if ber <= 0 {
		return 0
	}
	if ber >= 0.5 {
		return 1
	}
	bits := float64(PayloadBits(wireBytes))
	return 1 - math.Exp(bits*math.Log1p(-ber))
}

// logSuccess returns ln P(all bits survive) for bits at the given BER.
// It is the accumulator used by segment-wise reception.
func logSuccess(ber float64, bits float64) float64 {
	if ber <= 0 {
		return 0
	}
	if ber >= 0.5 {
		return math.Inf(-1)
	}
	return bits * math.Log1p(-ber)
}

// preambleEquivalentBytes sizes the BPSK block whose decode probability
// models PLCP preamble+SIGNAL acquisition. The preamble correlator is
// more robust than long data frames, so its waterfall sits a few dB below
// the 6 Mb/s data curve.
const preambleEquivalentBytes = 32

// LockProbability returns the probability that the preamble correlator
// acquires a frame arriving at the given effective SINR in dB
// (implementation loss already applied, offsetDB from Params added).
// The preamble is always BPSK-coded regardless of the data rate.
func LockProbability(sinrDB, offsetDB float64) float64 {
	return 1 - PacketErrorRate(rateTable[Rate6Mbps], sinrDB-offsetDB, preambleEquivalentBytes)
}
