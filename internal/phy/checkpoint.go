package phy

import (
	"encoding/json"
	"fmt"

	"repro/internal/frame"
	"repro/internal/sim"
)

// Checkpoint surface of the radio. The split follows the codebase-wide
// rule: everything derivable from Params (noise floor, the linear
// reception multipliers) is rebuilt by NewRadio on resume; everything
// mutable — reception state, the active signal set, counters, the RNG
// stream — is captured here. Active transmissions are referenced by
// TxID and resolved against the medium's reconstructed transmission
// set, so the pointer identities the reception path compares (locked ==
// tx in SignalEnd) hold again after a resume.

// TxState is one in-flight Transmission in checkpoint form. The medium
// and the shard engine both materialise their active transmissions from
// the end-fanout events held in the checkpointed agenda, so the full
// record travels with that event rather than in a separate table.
type TxState struct {
	TxID  uint64          `json:"tx_id"`
	From  int             `json:"from"`
	Frame json.RawMessage `json:"frame"`
	Rate  RateID          `json:"rate"`
	Start sim.Time        `json:"start"`
	End   sim.Time        `json:"end"`
	// Deliveries is the transmit-time delivery snapshot. It travels in
	// the checkpoint so a resume under mobility fans SignalEnd out to
	// the same receiver set the interrupted run's SignalStart reached,
	// even if delivery lists were patched after the frame went on air.
	Deliveries []Delivery `json:"deliveries,omitempty"`
}

// ExportTransmission captures one in-flight transmission.
func ExportTransmission(tx *Transmission) (TxState, error) {
	enc, err := frame.MarshalState(tx.Frame)
	if err != nil {
		return TxState{}, fmt.Errorf("phy: transmission %d from %d: %w", tx.TxID, tx.From, err)
	}
	return TxState{TxID: tx.TxID, From: tx.From, Frame: enc, Rate: tx.Rate.ID, Start: tx.Start, End: tx.End, Deliveries: tx.Deliveries}, nil
}

// Restore fills tx from the checkpointed record.
func (st TxState) Restore(tx *Transmission) error {
	f, err := frame.UnmarshalState(st.Frame)
	if err != nil {
		return fmt.Errorf("phy: transmission %d from %d: %w", st.TxID, st.From, err)
	}
	if int(st.Rate) >= len(rateTable) {
		return fmt.Errorf("phy: transmission %d names invalid rate id %d", st.TxID, st.Rate)
	}
	*tx = Transmission{TxID: st.TxID, From: st.From, Frame: f, Rate: rateTable[st.Rate], Start: st.Start, End: st.End, Deliveries: st.Deliveries}
	return nil
}

// SignalState is one audible transmission in checkpoint form.
type SignalState struct {
	TxID    uint64  `json:"tx_id"`
	PowerMW float64 `json:"power_mw"`
}

// RadioState is the mutable half of a Radio.
type RadioState struct {
	Transmitting bool            `json:"transmitting,omitempty"`
	TxFrame      json.RawMessage `json:"tx_frame,omitempty"`
	Active       []SignalState   `json:"active,omitempty"`
	TotalMW      float64         `json:"total_mw"`
	LockedTxID   uint64          `json:"locked_tx_id,omitempty"`
	LockedMW     float64         `json:"locked_mw,omitempty"`
	LockLogSucc  float64         `json:"lock_log_succ,omitempty"`
	SegStart     sim.Time        `json:"seg_start,omitempty"`
	CarrierBusy  bool            `json:"carrier_busy,omitempty"`
	// CSMW is stored rather than re-derived: the cs@<dBm> arms override
	// it per node after construction.
	CSMW  float64    `json:"cs_mw"`
	RNG   uint64     `json:"rng"`
	Stats RadioStats `json:"stats"`
}

// ExportState captures the radio's mutable state.
func (r *Radio) ExportState() (RadioState, error) {
	st := RadioState{
		Transmitting: r.transmitting,
		TotalMW:      r.totalMW,
		LockedMW:     r.lockedMW,
		LockLogSucc:  r.lockLogSucc,
		SegStart:     r.segStart,
		CarrierBusy:  r.carrierBusy,
		CSMW:         r.csMW,
		RNG:          r.rng.State(),
		Stats:        r.stats,
	}
	if r.txFrame != nil {
		enc, err := frame.MarshalState(r.txFrame)
		if err != nil {
			return RadioState{}, fmt.Errorf("phy: radio %d tx frame: %w", r.id, err)
		}
		st.TxFrame = enc
	}
	for _, a := range r.active {
		st.Active = append(st.Active, SignalState{TxID: a.tx.TxID, PowerMW: a.powerMW})
	}
	if r.locked != nil {
		st.LockedTxID = r.locked.TxID
	}
	return st, nil
}

// RestoreState overwrites the radio's mutable state from a checkpoint.
// resolve maps a TxID back to the live *Transmission reconstructed by
// the medium (or shard) restore pass; it must return the same pointer
// for the same ID so in-set identity comparisons keep working.
func (r *Radio) RestoreState(st RadioState, resolve func(txID uint64) (*Transmission, error)) error {
	r.transmitting = st.Transmitting
	r.txFrame = nil
	if st.TxFrame != nil {
		f, err := frame.UnmarshalState(st.TxFrame)
		if err != nil {
			return fmt.Errorf("phy: radio %d tx frame: %w", r.id, err)
		}
		r.txFrame = f
	}
	r.active = r.active[:0]
	for _, s := range st.Active {
		tx, err := resolve(s.TxID)
		if err != nil {
			return fmt.Errorf("phy: radio %d active signal: %w", r.id, err)
		}
		r.active = append(r.active, activeSignal{tx: tx, powerMW: s.PowerMW})
	}
	r.totalMW = st.TotalMW
	r.locked = nil
	if st.LockedTxID != 0 {
		tx, err := resolve(st.LockedTxID)
		if err != nil {
			return fmt.Errorf("phy: radio %d locked signal: %w", r.id, err)
		}
		r.locked = tx
	}
	r.lockedMW = st.LockedMW
	r.lockLogSucc = st.LockLogSucc
	r.segStart = st.SegStart
	r.carrierBusy = st.CarrierBusy
	r.csMW = st.CSMW
	r.rng.SetState(st.RNG)
	r.stats = st.Stats
	return nil
}
