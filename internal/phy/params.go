package phy

// Params collects the transceiver constants shared by every radio in a
// simulation. DefaultParams matches a commodity 5 GHz 802.11a card of the
// testbed era (Atheros AR5212 class).
type Params struct {
	// TxPowerDBm is the common transmit power (the paper assumes one
	// power level network-wide, footnote 2).
	TxPowerDBm float64
	// NoiseFloorDBm is thermal noise plus receiver noise figure over the
	// 20 MHz channel.
	NoiseFloorDBm float64
	// SensitivityDBm is the minimum received power at which a preamble
	// can be detected at all.
	SensitivityDBm float64
	// PreambleOffsetDB shifts the preamble-acquisition waterfall relative
	// to its default position (a short BPSK block a few dB more robust
	// than 6 Mb/s data). Positive values make locking harder.
	PreambleOffsetDB float64
	// CSThresholdDBm is the carrier-sense threshold: the channel appears
	// busy when total received power exceeds it. Most 802.11 chipsets use
	// preamble detection for carrier sense (the paper's footnote 1),
	// which tracks receiver sensitivity — any decodable same-technology
	// signal shows the channel busy.
	CSThresholdDBm float64
	// ImplementationLossDB derates the analytic BER curves to hardware
	// reality (filter mismatch, phase noise, channel estimation error).
	ImplementationLossDB float64
	// CaptureMarginDB is the extra SINR a newly arriving frame needs —
	// beyond ordinary preamble acquisition — to capture the receiver away
	// from an already-locked weaker frame (OFDM sync restart, the
	// "capture effect" of the paper's refs [18, 20]). Commodity
	// Atheros-class hardware restarts around 10 dB.
	CaptureMarginDB float64
	// DeliveryFloorDBm bounds medium fan-out: signals arriving below this
	// power are ignored entirely (they are far below noise).
	DeliveryFloorDBm float64
	// ExactReceptionMath routes the per-segment reception math through
	// the exact transcendental formulas (Erfc-based BER, dB-domain SINR)
	// instead of the precomputed linear-domain tables. Decode outcomes
	// are statistically indistinguishable either way (the tables carry a
	// bounded-error guarantee); the exact path is retained as the
	// reference implementation and for A/B validation, and is several
	// times slower per segment.
	ExactReceptionMath bool
}

// DefaultParams returns the calibrated transceiver constants used for the
// reproduction testbed.
func DefaultParams() Params {
	return Params{
		TxPowerDBm:           10,
		NoiseFloorDBm:        -94,
		SensitivityDBm:       -92,
		PreambleOffsetDB:     0,
		CSThresholdDBm:       -90,
		ImplementationLossDB: 5,
		CaptureMarginDB:      10,
		DeliveryFloorDBm:     -108,
	}
}

// IsolationPRR returns the analytic packet reception ratio of a frame of
// wireBytes at rate r received at rxPowerDBm with no interference. It is
// the quantity the paper measures "transmitting in isolation" (§5.1) to
// classify links.
func IsolationPRR(p Params, r Rate, rxPowerDBm float64, wireBytes int) float64 {
	if rxPowerDBm < p.SensitivityDBm {
		return 0
	}
	sinr := rxPowerDBm - p.NoiseFloorDBm - p.ImplementationLossDB
	return LockProbability(sinr, p.PreambleOffsetDB) * (1 - PacketErrorRate(r, sinr, wireBytes))
}
