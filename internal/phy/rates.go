package phy

import (
	"fmt"

	"repro/internal/sim"
)

// Modulation enumerates the OFDM subcarrier modulations of 802.11a.
type Modulation uint8

// Modulations.
const (
	BPSK Modulation = iota
	QPSK
	QAM16
	QAM64
)

// String returns the modulation mnemonic.
func (m Modulation) String() string {
	switch m {
	case BPSK:
		return "BPSK"
	case QPSK:
		return "QPSK"
	case QAM16:
		return "16-QAM"
	case QAM64:
		return "64-QAM"
	default:
		return fmt.Sprintf("mod(%d)", uint8(m))
	}
}

// RateID indexes the 802.11a rate table.
type RateID uint8

// The 802.11a rates.
const (
	Rate6Mbps RateID = iota
	Rate9Mbps
	Rate12Mbps
	Rate18Mbps
	Rate24Mbps
	Rate36Mbps
	Rate48Mbps
	Rate54Mbps
)

// Rate describes one entry of the 802.11a rate table.
type Rate struct {
	ID            RateID
	Mbps          float64
	Mod           Modulation
	CodeRate      float64 // convolutional code rate
	BitsPerSymbol int     // data bits per 4 µs OFDM symbol
	// codingGainDB is the effective soft-decision Viterbi coding gain used
	// by the analytic BER model.
	codingGainDB float64
}

// String formats the rate as e.g. "6 Mb/s (BPSK 1/2)".
func (r Rate) String() string {
	return fmt.Sprintf("%g Mb/s (%s %.2g)", r.Mbps, r.Mod, r.CodeRate)
}

var rateTable = [...]Rate{
	{Rate6Mbps, 6, BPSK, 0.5, 24, 5.0},
	{Rate9Mbps, 9, BPSK, 0.75, 36, 3.8},
	{Rate12Mbps, 12, QPSK, 0.5, 48, 5.0},
	{Rate18Mbps, 18, QPSK, 0.75, 72, 3.8},
	{Rate24Mbps, 24, QAM16, 0.5, 96, 5.0},
	{Rate36Mbps, 36, QAM16, 0.75, 144, 3.8},
	{Rate48Mbps, 48, QAM64, 2.0 / 3.0, 192, 4.3},
	{Rate54Mbps, 54, QAM64, 0.75, 216, 3.8},
}

// Rates returns the full 802.11a rate table in ascending order.
func Rates() []Rate {
	out := make([]Rate, len(rateTable))
	copy(out, rateTable[:])
	return out
}

// RateByID returns the rate table entry for id. It panics on an invalid ID.
func RateByID(id RateID) Rate {
	if int(id) >= len(rateTable) {
		panic(fmt.Sprintf("phy: invalid rate id %d", id))
	}
	return rateTable[id]
}

// 802.11a OFDM timing constants.
const (
	// PreambleTime covers the PLCP preamble (16 µs) and SIGNAL field (4 µs).
	PreambleTime = 20 * sim.Microsecond
	// SymbolTime is one OFDM symbol.
	SymbolTime = 4 * sim.Microsecond
	// SlotTime is the 802.11a slot.
	SlotTime = 9 * sim.Microsecond
	// SIFS is the short interframe space.
	SIFS = 16 * sim.Microsecond
	// DIFS = SIFS + 2 slots.
	DIFS = SIFS + 2*SlotTime
	// serviceAndTailBits is the PLCP SERVICE field (16) plus tail bits (6)
	// prepended/appended to the PSDU.
	serviceAndTailBits = 22
)

// Airtime returns the on-air duration of a frame of the given wire size at
// rate r: preamble plus the OFDM symbols covering service, payload and
// tail bits.
func Airtime(r Rate, wireBytes int) sim.Time {
	bits := serviceAndTailBits + 8*wireBytes
	symbols := (bits + r.BitsPerSymbol - 1) / r.BitsPerSymbol
	return PreambleTime + sim.Time(symbols)*SymbolTime
}

// PayloadBits returns the coded-payload bit count the PER model integrates
// over for a frame of wireBytes.
func PayloadBits(wireBytes int) int { return serviceAndTailBits + 8*wireBytes }
