package phy

import (
	"testing"

	"repro/internal/frame"
	"repro/internal/radio"
	"repro/internal/sim"
)

// stubChannel is a phy.Channel that records transmissions and returns a
// fixed end time.
type stubChannel struct {
	end   sim.Time
	calls int
	last  frame.Frame
}

func (c *stubChannel) Transmit(from *Radio, f frame.Frame, r Rate) sim.Time {
	c.calls++
	c.last = f
	return c.end
}

// recHandler records upcalls.
type recHandler struct {
	frames  []frame.Frame
	infos   []RxInfo
	corrupt []RxInfo
}

func (h *recHandler) OnFrame(f frame.Frame, info RxInfo) {
	h.frames = append(h.frames, f)
	h.infos = append(h.infos, info)
}
func (h *recHandler) OnCorrupt(info RxInfo) { h.corrupt = append(h.corrupt, info) }
func (h *recHandler) OnTxDone(frame.Frame)  {}
func (h *recHandler) OnCarrier(bool)        {}

func testRadio(t *testing.T, params Params) (*Radio, *recHandler, *stubChannel, *sim.Scheduler) {
	t.Helper()
	sched := sim.NewScheduler()
	ch := &stubChannel{end: 1234 * sim.Microsecond}
	r := NewRadio(0, params, sched, sim.NewRNG(1), ch)
	h := &recHandler{}
	r.SetHandler(h)
	return r, h, ch, sched
}

func testFrame(src int) *frame.Dot11Data {
	return &frame.Dot11Data{Src: frame.AddrFromID(src), Dst: frame.Broadcast, PayloadLen: 1400}
}

func testTx(id uint64, from int) *Transmission {
	return &Transmission{TxID: id, From: from, Frame: testFrame(from), Rate: RateByID(Rate6Mbps)}
}

// TestTransmitReturnsChannelEndTime is the regression test for
// Radio.Transmit returning 0 instead of the end time the channel
// reported, contradicting its own doc comment.
func TestTransmitReturnsChannelEndTime(t *testing.T) {
	r, _, ch, _ := testRadio(t, DefaultParams())
	got := r.Transmit(testFrame(0), RateByID(Rate6Mbps))
	if got != ch.end {
		t.Fatalf("Transmit returned %v, want the channel's end time %v", got, ch.end)
	}
	if ch.calls != 1 {
		t.Fatalf("channel saw %d transmissions, want 1", ch.calls)
	}
}

// TestCaptureStatAccounting pins the tryCapture bookkeeping: a stolen
// lock increments Captures AND Corrupted (the truncated frame), reports
// the old frame via OnCorrupt, and the capturing frame then decodes.
func TestCaptureStatAccounting(t *testing.T) {
	r, h, _, sched := testRadio(t, DefaultParams())
	weak, strong := testTx(1, 1), testTx(2, 2)
	weakMW := radio.DBmToMW(-70)   // SINR 19 dB alone: certain lock
	strongMW := radio.DBmToMW(-40) // 30 dB above weak: certain capture

	sched.At(0, func() { r.SignalStart(weak, weakMW) })
	sched.At(100*sim.Microsecond, func() { r.SignalStart(strong, strongMW) })
	sched.At(2000*sim.Microsecond, func() { r.SignalEnd(weak) })
	sched.At(2100*sim.Microsecond, func() { r.SignalEnd(strong) })
	sched.Run(150 * sim.Microsecond)

	st := r.Stats()
	if st.Missed != 0 {
		t.Fatal("clean -70 dBm arrival did not lock")
	}
	if st.Captures != 1 {
		t.Errorf("Captures = %d, want 1", st.Captures)
	}
	if st.Corrupted != 1 {
		t.Errorf("Corrupted = %d, want 1 (the truncated weak frame)", st.Corrupted)
	}
	if len(h.corrupt) != 1 || h.corrupt[0].From != 1 {
		t.Fatalf("OnCorrupt = %+v, want one event from node 1", h.corrupt)
	}
	if got := h.corrupt[0].End; got != 100*sim.Microsecond {
		t.Errorf("truncated frame reported end %v, want the capture instant 100µs", got)
	}

	sched.RunAll()
	st = r.Stats()
	if st.Decoded != 1 || len(h.frames) != 1 || h.infos[0].From != 2 {
		t.Errorf("capturing frame not decoded: stats %+v, frames %d", st, len(h.frames))
	}
	if st.Corrupted != 1 || st.Captures != 1 {
		t.Errorf("end-of-air changed capture counters: %+v", st)
	}
	if r.ActiveSignals() != 0 {
		t.Errorf("%d active signals after both ended, want 0", r.ActiveSignals())
	}
}

// TestCaptureDisabled pins the CaptureMarginDB <= 0 switch: even a
// 30 dB stronger late arrival must not steal the lock — the locked
// frame keeps the receiver and is destroyed by the interference instead.
func TestCaptureDisabled(t *testing.T) {
	p := DefaultParams()
	p.CaptureMarginDB = 0
	r, h, _, sched := testRadio(t, p)
	weak, strong := testTx(1, 1), testTx(2, 2)

	sched.At(0, func() { r.SignalStart(weak, radio.DBmToMW(-70)) })
	sched.At(100*sim.Microsecond, func() { r.SignalStart(strong, radio.DBmToMW(-40)) })
	sched.Run(150 * sim.Microsecond)
	if st := r.Stats(); st.Captures != 0 || st.Corrupted != 0 {
		t.Fatalf("capture-disabled radio captured: %+v", st)
	}
	if len(h.corrupt) != 0 {
		t.Fatalf("OnCorrupt fired with capture disabled: %+v", h.corrupt)
	}

	// The weak frame stays locked; with -40 dBm interference over most
	// of its airtime its decode must fail, not be silently dropped.
	sched.At(2000*sim.Microsecond, func() { r.SignalEnd(strong) })
	sched.At(2100*sim.Microsecond, func() { r.SignalEnd(weak) })
	sched.RunAll()
	if st := r.Stats(); st.Decoded != 0 || st.Corrupted != 1 {
		t.Errorf("overpowered locked frame: stats %+v, want 0 decoded / 1 corrupted", st)
	}
	if len(h.corrupt) != 1 || h.corrupt[0].From != 1 {
		t.Errorf("OnCorrupt = %+v, want the jammed frame from node 1", h.corrupt)
	}
}

// TestBelowSensitivityArrivals pins the sensitivity gate on both lock
// paths: an idle radio counts the arrival as missed; a locked radio
// ignores it entirely (no capture attempt, no corruption).
func TestBelowSensitivityArrivals(t *testing.T) {
	r, h, _, sched := testRadio(t, DefaultParams())
	faint := testTx(1, 1)
	r.SignalStart(faint, radio.DBmToMW(-100)) // below -92 dBm sensitivity
	if st := r.Stats(); st.Missed != 1 {
		t.Fatalf("idle radio below-sensitivity arrival: Missed = %d, want 1", st.Missed)
	}
	if r.CarrierBusy() {
		t.Error("carrier busy on a -100 dBm signal")
	}
	r.SignalEnd(faint)

	// Now while locked: the faint arrival must not perturb the lock.
	good, faint2 := testTx(2, 2), testTx(3, 3)
	sched.At(0, func() {
		r.SignalStart(good, radio.DBmToMW(-70))
		r.SignalStart(faint2, radio.DBmToMW(-100))
	})
	sched.At(1000*sim.Microsecond, func() { r.SignalEnd(faint2) })
	sched.At(1100*sim.Microsecond, func() { r.SignalEnd(good) })
	sched.Run(10 * sim.Microsecond)
	if st := r.Stats(); st.Captures != 0 || st.Corrupted != 0 || st.Missed != 1 {
		t.Fatalf("locked radio below-sensitivity arrival changed stats: %+v", st)
	}
	sched.RunAll()
	if st := r.Stats(); st.Decoded != 1 || len(h.frames) != 1 {
		t.Errorf("locked frame lost after faint interferer: %+v", st)
	}
}
