// Package phy models the 802.11a OFDM physical layer: the eight
// bit-rates with their modulation and coding, frame airtime, analytic
// BER→PER curves as a function of SINR, and a half-duplex transceiver
// state machine with preamble locking, segment-wise interference
// accounting, and capture.
//
// # Relation to the paper
//
// CMAP's premise is that reception is probabilistic and
// interference-dependent, not binary (§2): whether a concurrent
// transmission destroys a packet depends on SINR at the receiver, and
// headers/trailers survive collisions their data packets do not
// (Figure 3, §3.5). The Radio reproduces exactly that: each incoming
// frame is split into segments by the set of overlapping interferers,
// each segment contributes a bit-error probability from the
// modulation's BER curve at its SINR, and preamble capture lets a
// sufficiently stronger late arrival steal the receiver (§4.2's
// prototype behaviour). The §5.8 variable-bit-rate results fall out of
// the per-modulation curves.
//
// # The fast reception path
//
// The hot path never touches the dB domain or a transcendental: all
// per-(radio, rate) constants are folded into linear multipliers at
// construction (deriveLinear), and the Erfc-based BER/lock curves are
// replaced by monotone piecewise-linear tables over bit-pattern
// quantized linear Eb/N0 (tables.go). The exact formulas remain
// exported as the reference; Params.ExactReceptionMath routes radios
// through them for A/B validation, and property tests bound the table
// error. See ARCHITECTURE.md, "The reception compute path".
package phy
