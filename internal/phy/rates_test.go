package phy

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestRateTableComplete(t *testing.T) {
	rates := Rates()
	if len(rates) != 8 {
		t.Fatalf("rate table has %d entries, want 8", len(rates))
	}
	wantMbps := []float64{6, 9, 12, 18, 24, 36, 48, 54}
	for i, r := range rates {
		if r.Mbps != wantMbps[i] {
			t.Errorf("rate %d Mbps = %v, want %v", i, r.Mbps, wantMbps[i])
		}
		if r.ID != RateID(i) {
			t.Errorf("rate %d ID = %v", i, r.ID)
		}
		// BitsPerSymbol must equal Mbps × 4 µs symbol.
		if got := float64(r.BitsPerSymbol); got != r.Mbps*4 {
			t.Errorf("rate %v bits/symbol = %v, want %v", r.Mbps, got, r.Mbps*4)
		}
	}
}

func TestRateByIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RateByID(99) did not panic")
		}
	}()
	RateByID(99)
}

func TestAirtime(t *testing.T) {
	r6 := RateByID(Rate6Mbps)
	// 1424-byte frame at 6 Mb/s: 22 + 11392 bits = 11414 bits → 476 symbols
	// → 20 µs + 1904 µs.
	got := Airtime(r6, 1424)
	want := 20*sim.Microsecond + 476*4*sim.Microsecond
	if got != want {
		t.Errorf("Airtime(6Mbps, 1424B) = %v, want %v", got, want)
	}
	// 54 Mb/s is much faster but has the same preamble.
	r54 := RateByID(Rate54Mbps)
	if a54 := Airtime(r54, 1424); a54 >= got || a54 <= PreambleTime {
		t.Errorf("Airtime(54Mbps) = %v out of expected range", a54)
	}
}

func TestAirtimeMonotonicInSize(t *testing.T) {
	r := RateByID(Rate12Mbps)
	prev := sim.Time(0)
	for bytes := 0; bytes < 3000; bytes += 100 {
		a := Airtime(r, bytes)
		if a < prev {
			t.Fatalf("airtime decreased at %d bytes", bytes)
		}
		prev = a
	}
}

func TestTimingConstants(t *testing.T) {
	if SlotTime != 9*sim.Microsecond || SIFS != 16*sim.Microsecond {
		t.Error("802.11a slot/SIFS constants wrong")
	}
	if DIFS != 34*sim.Microsecond {
		t.Errorf("DIFS = %v, want 34µs", DIFS)
	}
}

func TestBERDecreasingInSINR(t *testing.T) {
	for _, r := range Rates() {
		prev := 1.0
		for sinr := -10.0; sinr <= 40; sinr += 1 {
			ber := BitErrorRate(r, sinr)
			if ber > prev+1e-15 {
				t.Fatalf("%v: BER increased at %v dB", r, sinr)
			}
			if ber < 0 || ber > 0.5 {
				t.Fatalf("%v: BER %v out of range at %v dB", r, ber, sinr)
			}
			prev = ber
		}
	}
}

func TestPERThresholdOrdering(t *testing.T) {
	// The SINR needed for PER=0.5 on a 1424-byte frame must increase with
	// bit-rate (§5.8: higher rates need higher SINR).
	prev := math.Inf(-1)
	for _, r := range []RateID{Rate6Mbps, Rate12Mbps, Rate18Mbps, Rate24Mbps, Rate36Mbps, Rate54Mbps} {
		th := perThreshold(RateByID(r), 1424)
		if th <= prev {
			t.Errorf("PER threshold for %v = %v dB, not above previous %v", RateByID(r), th, prev)
		}
		prev = th
	}
}

// perThreshold finds the SINR where PER crosses 0.5 by bisection.
func perThreshold(r Rate, bytes int) float64 {
	lo, hi := -20.0, 60.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if PacketErrorRate(r, mid, bytes) > 0.5 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

func TestPERTransitionSharp(t *testing.T) {
	// The waterfall region (PER 0.9 → 0.1) should span only a few dB.
	for _, id := range []RateID{Rate6Mbps, Rate18Mbps, Rate54Mbps} {
		r := RateByID(id)
		th := perThreshold(r, 1424)
		if p := PacketErrorRate(r, th-2, 1424); p < 0.9 {
			t.Errorf("%v: PER at threshold-2dB = %v, want >0.9", r, p)
		}
		if p := PacketErrorRate(r, th+2, 1424); p > 0.1 {
			t.Errorf("%v: PER at threshold+2dB = %v, want <0.1", r, p)
		}
	}
}

func TestPERRealisticThresholds(t *testing.T) {
	// Calibration: with the default implementation loss applied (as radios
	// apply it), 6 Mb/s should decode long frames around 2–8 dB SINR
	// (commodity hardware needs ≈4–6 dB), and 54 Mb/s around 18–28 dB.
	loss := DefaultParams().ImplementationLossDB
	th6 := perThreshold(RateByID(Rate6Mbps), 1424) + loss
	if th6 < 2 || th6 > 8 {
		t.Errorf("6 Mb/s effective PER threshold = %v dB, want in [2,8]", th6)
	}
	th54 := perThreshold(RateByID(Rate54Mbps), 1424) + loss
	if th54 < 18 || th54 > 28 {
		t.Errorf("54 Mb/s effective PER threshold = %v dB, want in [18,28]", th54)
	}
}

func TestPERSmallFramesMoreRobust(t *testing.T) {
	r := RateByID(Rate6Mbps)
	th := perThreshold(r, 1424)
	// A 26-byte header packet survives at SINR where a 1424-byte frame is even.
	big := PacketErrorRate(r, th, 1424)
	small := PacketErrorRate(r, th, 26)
	if small >= big {
		t.Errorf("small frame PER %v not below large frame PER %v", small, big)
	}
}

func TestPEREdgeCases(t *testing.T) {
	r := RateByID(Rate6Mbps)
	if p := PacketErrorRate(r, 60, 1424); p > 1e-9 {
		t.Errorf("PER at 60 dB = %v, want ≈0", p)
	}
	if p := PacketErrorRate(r, -20, 1424); p < 0.999999 {
		t.Errorf("PER at -20 dB = %v, want ≈1", p)
	}
	if p := PacketErrorRate(r, math.Inf(-1), 1424); p != 1 {
		t.Errorf("PER at -inf dB = %v, want 1", p)
	}
}

func TestIsolationPRR(t *testing.T) {
	p := DefaultParams()
	r := RateByID(Rate6Mbps)
	// Strong link: PRR ≈ 1.
	if prr := IsolationPRR(p, r, -60, 1424); prr < 0.999 {
		t.Errorf("PRR at -60 dBm = %v, want ≈1", prr)
	}
	// Below sensitivity: 0.
	if prr := IsolationPRR(p, r, -93, 1424); prr != 0 {
		t.Errorf("PRR below sensitivity = %v, want 0", prr)
	}
	// Monotone in power.
	prev := -1.0
	for dbm := -95.0; dbm <= -50; dbm += 0.5 {
		prr := IsolationPRR(p, r, dbm, 1424)
		if prr < prev-1e-12 {
			t.Fatalf("PRR not monotone at %v dBm", dbm)
		}
		prev = prr
	}
}

func TestModulationString(t *testing.T) {
	if BPSK.String() != "BPSK" || QAM64.String() != "64-QAM" {
		t.Error("modulation names wrong")
	}
	if Modulation(9).String() != "mod(9)" {
		t.Error("unknown modulation name wrong")
	}
}
