package phy

import (
	"math"
	"testing"

	"repro/internal/radio"
	"repro/internal/sim"
)

// lnBitSuccessExact is the quantity the tables approximate, computed
// through the exact Erfc-based formula.
func lnBitSuccessExact(mod Modulation, g float64) float64 {
	return math.Log1p(-berLinear(mod, g))
}

// TestTableBERMatchesExact is the bounded-error contract of the fast
// path: across every rate and the full operating range — from far below
// sensitivity to beyond the capture margin — the table's per-bit
// log-survival probability must track the exact Erfc-based value.
//
// The tolerances are tiered by where error can matter. Where the BER is
// large enough to influence a frame (≥ 1e-6), the relative error must
// be under 1%. In the deep tail the interpolation error grows relative
// to the (vanishing) exact value, so down to 1e-15 we allow 10% — at
// which point the absolute effect on even a 100 kb frame is < 1e-10.
// Below that only the packet-level bound applies: the implied
// 1424-byte-frame PER must agree within 1e-3 everywhere.
func TestTableBERMatchesExact(t *testing.T) {
	bits := float64(PayloadBits(1424))
	for _, r := range Rates() {
		for ebn0DB := -45.0; ebn0DB <= 40.0; ebn0DB += 0.05 {
			g := radio.FromDB(ebn0DB)
			exact := lnBitSuccessExact(r.Mod, g)
			got := lnBitSuccess(r.Mod, g)
			berExact := -math.Expm1(exact)
			err := math.Abs(got - exact)
			switch {
			case berExact >= 1e-6:
				if err > 0.01*math.Abs(exact) {
					t.Fatalf("%v: lnP1 at %.2f dB (ber %.3g) = %g, exact %g (rel err %.3g > 1%%)",
						r, ebn0DB, berExact, got, exact, err/math.Abs(exact))
				}
			case berExact >= 1e-15:
				if err > 0.10*math.Abs(exact) {
					t.Fatalf("%v: lnP1 at %.2f dB (ber %.3g) = %g, exact %g (rel err %.3g > 10%%)",
						r, ebn0DB, berExact, got, exact, err/math.Abs(exact))
				}
			}
			perExact := -math.Expm1(bits * exact)
			perGot := -math.Expm1(bits * got)
			if d := math.Abs(perGot - perExact); d > 1e-3 {
				t.Fatalf("%v: 1424B PER at %.2f dB = %g, exact %g (Δ %.3g > 1e-3)",
					r, ebn0DB, perGot, perExact, d)
			}
		}
	}
}

// TestTableLockProbMatchesExact validates the preamble-acquisition
// table against LockProbability across the same sweep, including the
// multiplier folding a radio performs (bandwidth conversion and coding
// gain moved from the dB domain into a linear factor).
func TestTableLockProbMatchesExact(t *testing.T) {
	pre := RateByID(Rate6Mbps)
	k := channelBandwidthMHz / pre.Mbps * radio.FromDB(pre.codingGainDB)
	for sinrDB := -45.0; sinrDB <= 40.0; sinrDB += 0.05 {
		exact := LockProbability(sinrDB, 0)
		got := lockProbLinear(radio.FromDB(sinrDB) * k)
		if d := math.Abs(got - exact); d > 1e-3 {
			t.Fatalf("lock probability at %.2f dB = %g, exact %g (Δ %.3g > 1e-3)",
				sinrDB, got, exact, d)
		}
	}
}

// TestTableMonotoneAndClamped pins the structural properties the radio
// relies on: per-bit survival and lock probability never decrease with
// Eb/N0, and the out-of-range clamps hold (flat below the table floor,
// exact zero-error/certain-lock above the ceiling).
func TestTableMonotoneAndClamped(t *testing.T) {
	for mod := BPSK; mod <= QAM64; mod++ {
		prev := math.Inf(-1)
		for ebn0DB := -50.0; ebn0DB <= 45.0; ebn0DB += 0.01 {
			v := lnBitSuccess(mod, radio.FromDB(ebn0DB))
			if v < prev-1e-18 {
				t.Fatalf("mod %v: lnBitSuccess decreased at %v dB", mod, ebn0DB)
			}
			if v > 0 {
				t.Fatalf("mod %v: positive log-probability %v at %v dB", mod, v, ebn0DB)
			}
			prev = v
		}
	}
	if v := lnBitSuccess(BPSK, tableGMin/2); v != berTables[BPSK][0] {
		t.Errorf("below-floor lookup = %v, want the floor value %v", v, berTables[BPSK][0])
	}
	if v := lnBitSuccess(BPSK, tableGMax*2); v != 0 {
		t.Errorf("above-ceiling lookup = %v, want 0", v)
	}
	prev := -1.0
	for ebn0DB := -50.0; ebn0DB <= 45.0; ebn0DB += 0.01 {
		p := lockProbLinear(radio.FromDB(ebn0DB))
		if p < prev-1e-18 {
			t.Fatalf("lock probability decreased at %v dB", ebn0DB)
		}
		if p < 0 || p > 1 {
			t.Fatalf("lock probability %v out of [0,1] at %v dB", p, ebn0DB)
		}
		prev = p
	}
	if p := lockProbLinear(tableGMax * 2); p != 1 {
		t.Errorf("above-ceiling lock probability = %v, want 1", p)
	}
}

// TestTotalMWResetsWhenQuiet pins the drift fix: after every signal
// ends, the incremental power accumulator must be exactly zero — not
// merely small — even when the add/subtract order is chosen to leave
// floating-point residue.
func TestTotalMWResetsWhenQuiet(t *testing.T) {
	r, _, _, sched := testRadio(t, DefaultParams())
	// 0.1 + 0.2 - 0.1 - 0.2 != 0 in float64; three overlapping signals
	// removed in arrival order leave classic residue without the reset.
	powers := []float64{1e-7, 2e-7, 3e-7}
	txs := make([]*Transmission, len(powers))
	for i, p := range powers {
		txs[i] = testTx(uint64(i+1), i+1)
		r.SignalStart(txs[i], p)
	}
	sched.Run(10 * sim.Microsecond)
	for _, tx := range txs {
		r.SignalEnd(tx)
	}
	if r.ActiveSignals() != 0 {
		t.Fatalf("%d active signals left", r.ActiveSignals())
	}
	if r.totalMW != 0 {
		t.Errorf("totalMW = %g after all signals ended, want exactly 0", r.totalMW)
	}
}

// TestExactMathModeMatchesTables is the radio-level spot check of the
// two code paths: at SINRs where the decision is not borderline, the
// exact and table radios must agree on every decode outcome when driven
// with identical RNG streams. (Figure-level statistical equivalence
// lives in internal/experiments.)
func TestExactMathModeMatchesTables(t *testing.T) {
	run := func(exact bool) RadioStats {
		p := DefaultParams()
		p.ExactReceptionMath = exact
		r, _, _, sched := testRadio(t, p)
		for i := 1; i <= 40; i++ {
			tx := testTx(uint64(i), i)
			powDBm := -90.0 + 2*float64(i%20) // sweep -90..-52 dBm
			r.SignalStart(tx, radio.DBmToMW(powDBm))
			sched.Run(sched.Now() + 500*sim.Microsecond)
			r.SignalEnd(tx)
		}
		return r.Stats()
	}
	if fast, slow := run(false), run(true); fast != slow {
		t.Errorf("stats diverged between table and exact math:\n  table %+v\n  exact %+v", fast, slow)
	}
}

// BenchmarkBitErrorRate guards the per-segment win at its source: the
// exact Erfc/dB chain versus the table interpolation.
func BenchmarkBitErrorRate(b *testing.B) {
	r := RateByID(Rate54Mbps)
	k := channelBandwidthMHz / r.Mbps * radio.FromDB(r.codingGainDB)
	b.Run("exact", func(b *testing.B) {
		sink := 0.0
		for i := 0; i < b.N; i++ {
			sink += BitErrorRate(r, float64(i%40))
		}
		benchSink = sink
	})
	b.Run("table", func(b *testing.B) {
		sink := 0.0
		for i := 0; i < b.N; i++ {
			sink += lnBitSuccess(r.Mod, radio.FromDB(float64(i%40))*k)
		}
		benchSink = sink
	})
}

// BenchmarkLockProbability compares preamble acquisition the same way.
func BenchmarkLockProbability(b *testing.B) {
	pre := RateByID(Rate6Mbps)
	k := channelBandwidthMHz / pre.Mbps * radio.FromDB(pre.codingGainDB)
	b.Run("exact", func(b *testing.B) {
		sink := 0.0
		for i := 0; i < b.N; i++ {
			sink += LockProbability(float64(i%40), 0)
		}
		benchSink = sink
	})
	b.Run("table", func(b *testing.B) {
		sink := 0.0
		for i := 0; i < b.N; i++ {
			sink += lockProbLinear(radio.FromDB(float64(i%40)) * k)
		}
		benchSink = sink
	})
}

var benchSink float64

// BenchmarkCloseSegment measures the full per-segment accounting a
// locked radio performs per interference edge, on both math paths.
func BenchmarkCloseSegment(b *testing.B) {
	bench := func(exact bool) func(b *testing.B) {
		return func(b *testing.B) {
			p := DefaultParams()
			p.ExactReceptionMath = exact
			sched := sim.NewScheduler()
			r := NewRadio(0, p, sched, sim.NewRNG(1), &stubChannel{})
			tx := testTx(1, 1)
			r.SignalStart(tx, radio.DBmToMW(-70))
			if r.locked != tx {
				b.Fatal("radio did not lock the benchmark frame")
			}
			r.totalMW += radio.DBmToMW(-80) // a steady interferer
			b.ReportAllocs()
			b.ResetTimer()
			now := sim.Time(0)
			for i := 0; i < b.N; i++ {
				now += sim.Microsecond
				r.closeSegment(now)
			}
		}
	}
	b.Run("exact", bench(true))
	b.Run("table", bench(false))
}
