package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Kind identifies a frame type on the wire.
type Kind uint8

// Frame kinds.
const (
	KindInvalid        Kind = iota
	KindHeader              // CMAP virtual-packet header (Figure 3)
	KindTrailer             // CMAP virtual-packet trailer (Figure 3)
	KindData                // CMAP data packet inside a virtual packet
	KindAck                 // CMAP cumulative windowed ACK
	KindInterfererList      // periodic interferer-list broadcast (§3.1)
	KindDot11Data           // 802.11 baseline data frame
	KindDot11Ack            // 802.11 baseline ACK
	KindDot11RTS            // 802.11 request-to-send (virtual carrier sense)
	KindDot11CTS            // 802.11 clear-to-send
)

// String returns the frame kind mnemonic.
func (k Kind) String() string {
	switch k {
	case KindHeader:
		return "header"
	case KindTrailer:
		return "trailer"
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	case KindInterfererList:
		return "interferer-list"
	case KindDot11Data:
		return "dot11-data"
	case KindDot11Ack:
		return "dot11-ack"
	case KindDot11RTS:
		return "dot11-rts"
	case KindDot11CTS:
		return "dot11-cts"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Decode errors.
var (
	ErrShortFrame  = errors.New("frame: truncated frame")
	ErrBadCRC      = errors.New("frame: CRC mismatch")
	ErrUnknownKind = errors.New("frame: unknown kind")
	ErrBadLength   = errors.New("frame: inconsistent length field")
)

// Addr is a 6-byte link-layer address, as in 802.11.
type Addr [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = Addr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// AddrFromID maps a small integer node ID onto a locally administered
// unicast address. IDs below zero panic.
func AddrFromID(id int) Addr {
	if id < 0 {
		panic("frame: negative node id")
	}
	var a Addr
	a[0] = 0x02 // locally administered, unicast
	binary.BigEndian.PutUint32(a[2:6], uint32(id))
	return a
}

// ID recovers the node ID from an address produced by AddrFromID.
// The result is meaningless for other addresses.
func (a Addr) ID() int { return int(binary.BigEndian.Uint32(a[2:6])) }

// IsBroadcast reports whether a is the broadcast address.
func (a Addr) IsBroadcast() bool { return a == Broadcast }

// String formats the address in colon-separated hex.
func (a Addr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// Frame is a marshalable link-layer frame.
type Frame interface {
	// Kind identifies the frame type.
	Kind() Kind
	// WireSize returns the exact length of the marshalled frame in bytes;
	// the PHY uses it to compute airtime.
	WireSize() int
	// appendBody appends everything after the kind byte and before the CRC.
	appendBody(dst []byte) []byte
}

// Marshal encodes f with its kind byte and trailing CRC-32.
func Marshal(f Frame) []byte {
	b := make([]byte, 0, f.WireSize())
	b = append(b, byte(f.Kind()))
	b = f.appendBody(b)
	b = binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return b
}

// Unmarshal decodes a frame, verifying its CRC.
func Unmarshal(b []byte) (Frame, error) {
	if len(b) < 5 {
		return nil, ErrShortFrame
	}
	body, sum := b[:len(b)-4], binary.BigEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, ErrBadCRC
	}
	payload := body[1:]
	switch Kind(b[0]) {
	case KindHeader, KindTrailer:
		return unmarshalControl(Kind(b[0]), payload)
	case KindData:
		return unmarshalData(payload)
	case KindAck:
		return unmarshalAck(payload)
	case KindInterfererList:
		return unmarshalInterfererList(payload)
	case KindDot11Data:
		return unmarshalDot11Data(payload)
	case KindDot11Ack:
		return unmarshalDot11Ack(payload)
	case KindDot11RTS:
		return unmarshalDot11RTS(payload)
	case KindDot11CTS:
		return unmarshalDot11CTS(payload)
	default:
		return nil, ErrUnknownKind
	}
}

// ---------------------------------------------------------------------------
// CMAP header/trailer (Figure 3): Src 6 + Dst 6 + TxTime 4 + Seq 4 (+ CRC 4).

// Control is a CMAP header or trailer packet. Headers announce a virtual
// packet: deferring nodes read Src, Dst and the estimated transmission
// time to decide how long to wait. Trailers close it, so that a receiver
// whose header was destroyed by a collision can still identify the
// transmission (Figure 5).
type Control struct {
	Trailer bool // false: header, true: trailer
	Src     Addr
	Dst     Addr
	// TxTimeMicros is the estimated transmission time of the whole virtual
	// packet, in microseconds.
	TxTimeMicros uint32
	// Seq is the link-layer sequence number of the virtual packet.
	Seq uint32
	// Rate annotates the bit-rate index of the data packets (§3.5 multi
	// bit-rate extension); it rides in the top byte of spare TxTime bits
	// on the wire. 0 means the common base rate.
	Rate uint8
}

// controlBodyLen is Figure 3's 6+6+4+4 plus the one-byte rate annotation.
const controlBodyLen = 6 + 6 + 4 + 4 + 1

// Kind implements Frame.
func (c *Control) Kind() Kind {
	if c.Trailer {
		return KindTrailer
	}
	return KindHeader
}

// WireSize implements Frame.
func (c *Control) WireSize() int { return 1 + controlBodyLen + 4 }

func (c *Control) appendBody(dst []byte) []byte {
	dst = append(dst, c.Src[:]...)
	dst = append(dst, c.Dst[:]...)
	dst = binary.BigEndian.AppendUint32(dst, c.TxTimeMicros)
	dst = binary.BigEndian.AppendUint32(dst, c.Seq)
	dst = append(dst, c.Rate)
	return dst
}

func unmarshalControl(k Kind, b []byte) (*Control, error) {
	if len(b) != controlBodyLen {
		return nil, ErrShortFrame
	}
	c := &Control{Trailer: k == KindTrailer}
	copy(c.Src[:], b[0:6])
	copy(c.Dst[:], b[6:12])
	c.TxTimeMicros = binary.BigEndian.Uint32(b[12:16])
	c.Seq = binary.BigEndian.Uint32(b[16:20])
	c.Rate = b[20]
	return c, nil
}

// ---------------------------------------------------------------------------
// CMAP data packet.

// Data is one data packet inside a CMAP virtual packet. PktSeq is the
// stable link-layer sequence number of the packet (it survives
// retransmission, so receivers deduplicate on it); VSeq names the virtual
// packet currently carrying it and Index the packet's position within
// that virtual packet, which receivers use for loss accounting.
type Data struct {
	Src, Dst   Addr
	PktSeq     uint32 // stable per-packet sequence number
	VSeq       uint32 // virtual packet sequence number
	Index      uint16 // position within the virtual packet
	PayloadLen uint16 // application payload bytes carried (not materialised)
}

const dataBodyLen = 6 + 6 + 4 + 4 + 2 + 2

// Kind implements Frame.
func (d *Data) Kind() Kind { return KindData }

// WireSize implements Frame. The payload itself is accounted by length
// only: simulated applications send opaque bytes.
func (d *Data) WireSize() int { return 1 + dataBodyLen + int(d.PayloadLen) + 4 }

func (d *Data) appendBody(dst []byte) []byte {
	dst = append(dst, d.Src[:]...)
	dst = append(dst, d.Dst[:]...)
	dst = binary.BigEndian.AppendUint32(dst, d.PktSeq)
	dst = binary.BigEndian.AppendUint32(dst, d.VSeq)
	dst = binary.BigEndian.AppendUint16(dst, d.Index)
	dst = binary.BigEndian.AppendUint16(dst, d.PayloadLen)
	// The payload is zeros: simulated traffic has no content.
	return append(dst, make([]byte, d.PayloadLen)...)
}

func unmarshalData(b []byte) (*Data, error) {
	if len(b) < dataBodyLen {
		return nil, ErrShortFrame
	}
	d := &Data{}
	copy(d.Src[:], b[0:6])
	copy(d.Dst[:], b[6:12])
	d.PktSeq = binary.BigEndian.Uint32(b[12:16])
	d.VSeq = binary.BigEndian.Uint32(b[16:20])
	d.Index = binary.BigEndian.Uint16(b[20:22])
	d.PayloadLen = binary.BigEndian.Uint16(b[22:24])
	if len(b) != dataBodyLen+int(d.PayloadLen) {
		return nil, ErrBadLength
	}
	return d, nil
}

// ---------------------------------------------------------------------------
// CMAP cumulative windowed ACK (§3.3).

// Ack is the CMAP cumulative windowed ACK. All data packets with
// PktSeq < CumSeq have been received; Bitmap selectively acknowledges the
// window above that (bit i set = packet CumSeq+i received). LossRate is
// the receiver's packet loss estimate over the previous window of
// packets, quantised to 1/65535. VSeq names the virtual packet whose
// trailer triggered this ACK.
type Ack struct {
	Src, Dst Addr
	CumSeq   uint32
	VSeq     uint32
	Bitmap   []byte
	LossRate float64
}

// Kind implements Frame.
func (a *Ack) Kind() Kind { return KindAck }

// WireSize implements Frame.
func (a *Ack) WireSize() int {
	return 1 + 6 + 6 + 4 + 4 + 2 + 2 + len(a.Bitmap) + 4
}

func (a *Ack) appendBody(dst []byte) []byte {
	dst = append(dst, a.Src[:]...)
	dst = append(dst, a.Dst[:]...)
	dst = binary.BigEndian.AppendUint32(dst, a.CumSeq)
	dst = binary.BigEndian.AppendUint32(dst, a.VSeq)
	loss := a.LossRate
	if loss < 0 {
		loss = 0
	}
	if loss > 1 {
		loss = 1
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(loss*65535+0.5))
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(a.Bitmap)))
	return append(dst, a.Bitmap...)
}

func unmarshalAck(b []byte) (*Ack, error) {
	const fixed = 6 + 6 + 4 + 4 + 2 + 2
	if len(b) < fixed {
		return nil, ErrShortFrame
	}
	a := &Ack{}
	copy(a.Src[:], b[0:6])
	copy(a.Dst[:], b[6:12])
	a.CumSeq = binary.BigEndian.Uint32(b[12:16])
	a.VSeq = binary.BigEndian.Uint32(b[16:20])
	a.LossRate = float64(binary.BigEndian.Uint16(b[20:22])) / 65535
	n := int(binary.BigEndian.Uint16(b[22:24]))
	rest := b[24:]
	if len(rest) != n {
		return nil, ErrBadLength
	}
	if n > 0 {
		a.Bitmap = make([]byte, n)
		copy(a.Bitmap, rest)
	}
	return a, nil
}

// BitmapGet reports whether bit i of the ACK bitmap is set (packet
// CumSeq+i received). Out-of-range indices return false.
func (a *Ack) BitmapGet(i int) bool {
	if i < 0 || i/8 >= len(a.Bitmap) {
		return false
	}
	return a.Bitmap[i/8]&(1<<uint(i%8)) != 0
}

// BitmapSet sets bit i, growing the bitmap as needed.
func (a *Ack) BitmapSet(i int) {
	if i < 0 {
		return
	}
	for i/8 >= len(a.Bitmap) {
		a.Bitmap = append(a.Bitmap, 0)
	}
	a.Bitmap[i/8] |= 1 << uint(i%8)
}

// ---------------------------------------------------------------------------
// Interferer-list broadcast (§3.1).

// InterferenceEntry is one (source, interferer) pair from a receiver's
// interferer list: transmissions from Interferer conflict with
// Source → (the broadcasting receiver). Rate annotates the bit-rate index
// the conflict was observed at (§3.5); 0 is the common base rate.
type InterferenceEntry struct {
	Source     Addr
	Interferer Addr
	Rate       uint8
}

// InterfererList is the periodic broadcast each receiver sends to its
// one-hop neighbours so senders can populate their defer tables. Relayed
// marks a copy re-broadcast by a neighbour (the §3.1 two-hop option for
// asymmetric links); relayed copies are never relayed again.
type InterfererList struct {
	Src     Addr // the receiver whose list this is (preserved when relayed)
	Relayed bool
	Entries []InterferenceEntry
}

const interferenceEntryLen = 6 + 6 + 1

// Kind implements Frame.
func (l *InterfererList) Kind() Kind { return KindInterfererList }

// WireSize implements Frame.
func (l *InterfererList) WireSize() int {
	return 1 + 6 + 1 + 2 + len(l.Entries)*interferenceEntryLen + 4
}

func (l *InterfererList) appendBody(dst []byte) []byte {
	dst = append(dst, l.Src[:]...)
	if l.Relayed {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(l.Entries)))
	for _, e := range l.Entries {
		dst = append(dst, e.Source[:]...)
		dst = append(dst, e.Interferer[:]...)
		dst = append(dst, e.Rate)
	}
	return dst
}

func unmarshalInterfererList(b []byte) (*InterfererList, error) {
	if len(b) < 9 {
		return nil, ErrShortFrame
	}
	l := &InterfererList{}
	copy(l.Src[:], b[0:6])
	l.Relayed = b[6] != 0
	count := int(binary.BigEndian.Uint16(b[7:9]))
	rest := b[9:]
	if len(rest) != count*interferenceEntryLen {
		return nil, ErrBadLength
	}
	l.Entries = make([]InterferenceEntry, count)
	for i := 0; i < count; i++ {
		e := &l.Entries[i]
		copy(e.Source[:], rest[0:6])
		copy(e.Interferer[:], rest[6:12])
		e.Rate = rest[12]
		rest = rest[interferenceEntryLen:]
	}
	return l, nil
}

// ---------------------------------------------------------------------------
// 802.11 baseline frames.

// Dot11Data is a plain 802.11 data frame for the CSMA baseline. WireSize
// matches the 802.11 data MAC overhead (24-byte header + 4-byte FCS) plus
// payload, so baseline airtime is faithful.
type Dot11Data struct {
	Src, Dst   Addr
	Seq        uint16
	Retry      bool
	PayloadLen uint16
}

const dot11DataBodyLen = 1 + 2 + 6 + 6 + 2 + 2 // fc + dur + src + dst + seq + paylen

// Kind implements Frame.
func (d *Dot11Data) Kind() Kind { return KindDot11Data }

// WireSize implements Frame. 1 kind + 19 body + payload + 4 CRC = 24 + payload,
// 802.11's data-frame overhead with a three-address header.
func (d *Dot11Data) WireSize() int { return 1 + dot11DataBodyLen + int(d.PayloadLen) + 4 }

func (d *Dot11Data) appendBody(dst []byte) []byte {
	fc := byte(0)
	if d.Retry {
		fc |= 0x08
	}
	dst = append(dst, fc, 0, 0) // frame control + duration placeholder
	dst = append(dst, d.Src[:]...)
	dst = append(dst, d.Dst[:]...)
	dst = binary.BigEndian.AppendUint16(dst, d.Seq)
	dst = binary.BigEndian.AppendUint16(dst, d.PayloadLen)
	return append(dst, make([]byte, d.PayloadLen)...)
}

func unmarshalDot11Data(b []byte) (*Dot11Data, error) {
	if len(b) < dot11DataBodyLen {
		return nil, ErrShortFrame
	}
	d := &Dot11Data{Retry: b[0]&0x08 != 0}
	copy(d.Src[:], b[3:9])
	copy(d.Dst[:], b[9:15])
	d.Seq = binary.BigEndian.Uint16(b[15:17])
	d.PayloadLen = binary.BigEndian.Uint16(b[17:19])
	if len(b) != dot11DataBodyLen+int(d.PayloadLen) {
		return nil, ErrBadLength
	}
	return d, nil
}

// Dot11Ack is the 802.11 stop-and-wait ACK (14 bytes on air, as in the
// standard: FC 2 + duration 2 + RA 6 + FCS 4).
type Dot11Ack struct {
	Dst Addr // receiver address (the data sender)
	Seq uint16
}

const dot11AckBodyLen = 1 + 6 + 2 // dur/pad + ra + seq

// Kind implements Frame.
func (a *Dot11Ack) Kind() Kind { return KindDot11Ack }

// WireSize implements Frame: 1 + 9 + 4 = 14 bytes, the standard ACK length.
func (a *Dot11Ack) WireSize() int { return 1 + dot11AckBodyLen + 4 }

func (a *Dot11Ack) appendBody(dst []byte) []byte {
	dst = append(dst, 0)
	dst = append(dst, a.Dst[:]...)
	return binary.BigEndian.AppendUint16(dst, a.Seq)
}

func unmarshalDot11Ack(b []byte) (*Dot11Ack, error) {
	if len(b) != dot11AckBodyLen {
		return nil, ErrShortFrame
	}
	a := &Dot11Ack{}
	copy(a.Dst[:], b[1:7])
	a.Seq = binary.BigEndian.Uint16(b[7:9])
	return a, nil
}

// Dot11RTS is the 802.11 request-to-send (20 bytes on air: FC 2 +
// duration 2 + RA 6 + TA 6 + FCS 4). DurationUS is the NAV reservation
// in microseconds: everything from the end of this frame through the
// end of the protected CTS/data/ACK exchange.
type Dot11RTS struct {
	Src, Dst   Addr
	DurationUS uint16
}

const dot11RTSBodyLen = 1 + 2 + 6 + 6 // fc pad + duration + ra + ta

// Kind implements Frame.
func (r *Dot11RTS) Kind() Kind { return KindDot11RTS }

// WireSize implements Frame: 1 + 15 + 4 = 20 bytes, the standard RTS length.
func (r *Dot11RTS) WireSize() int { return 1 + dot11RTSBodyLen + 4 }

func (r *Dot11RTS) appendBody(dst []byte) []byte {
	dst = append(dst, 0)
	dst = binary.BigEndian.AppendUint16(dst, r.DurationUS)
	dst = append(dst, r.Dst[:]...)
	return append(dst, r.Src[:]...)
}

func unmarshalDot11RTS(b []byte) (*Dot11RTS, error) {
	if len(b) != dot11RTSBodyLen {
		return nil, ErrShortFrame
	}
	r := &Dot11RTS{DurationUS: binary.BigEndian.Uint16(b[1:3])}
	copy(r.Dst[:], b[3:9])
	copy(r.Src[:], b[9:15])
	return r, nil
}

// Dot11CTS is the 802.11 clear-to-send (14 bytes on air, like the ACK:
// FC 2 + duration 2 + RA 6 + FCS 4). DurationUS carries the remaining
// NAV reservation copied down from the answered RTS.
type Dot11CTS struct {
	Dst        Addr // receiver address (the RTS sender)
	DurationUS uint16
}

const dot11CTSBodyLen = 1 + 2 + 6 // fc pad + duration + ra

// Kind implements Frame.
func (c *Dot11CTS) Kind() Kind { return KindDot11CTS }

// WireSize implements Frame: 1 + 9 + 4 = 14 bytes, the standard CTS length.
func (c *Dot11CTS) WireSize() int { return 1 + dot11CTSBodyLen + 4 }

func (c *Dot11CTS) appendBody(dst []byte) []byte {
	dst = append(dst, 0)
	dst = binary.BigEndian.AppendUint16(dst, c.DurationUS)
	return append(dst, c.Dst[:]...)
}

func unmarshalDot11CTS(b []byte) (*Dot11CTS, error) {
	if len(b) != dot11CTSBodyLen {
		return nil, ErrShortFrame
	}
	c := &Dot11CTS{DurationUS: binary.BigEndian.Uint16(b[1:3])}
	copy(c.Dst[:], b[3:9])
	return c, nil
}
