// Package frame defines the wire formats exchanged by the simulated
// link layers.
//
// # Relation to the paper
//
// The CMAP frames are those of Figure 3 and §3: header and trailer
// control packets bracketing each virtual packet (carrying source,
// destination, transmission time and bit-rate — the fields neighbours
// need to defer correctly), data packets, cumulative bitmap ACKs that
// also report the receiver's observed loss rate (§3.3–§3.4), and the
// periodic interferer-list broadcasts receivers use to disseminate
// their slice of the conflict map (§3.1). Plain 802.11 data/ACK frames
// serve the DCF baseline of §5.
//
// # Encoding
//
// Every frame marshals to a self-describing byte string: a one-byte
// kind, the fields of Figure 3 (or the 802.11 equivalents), and a
// trailing CRC-32 (IEEE). The simulator carries typed frames between
// MAC state machines for speed, but airtime is always computed from
// WireSize so protocol overhead is accounted exactly, and the
// encode/decode path is tested and available to embedders who want
// byte-level traces.
package frame
