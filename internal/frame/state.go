package frame

import (
	"encoding/json"
	"fmt"
)

// Checkpoint codec: a lossless JSON encoding of every frame kind, used
// when an in-flight frame must survive a checkpoint/resume cycle
// bit-exactly. The wire codec (Marshal/Unmarshal) is NOT suitable for
// that — it quantises Ack.LossRate to 1/65535 on the air, which is
// faithful physics but would make a resumed simulation diverge from the
// uninterrupted one. JSON round-trips float64 exactly.

// stateEnvelope tags the concrete frame type so UnmarshalState can pick
// the right struct back out.
type stateEnvelope struct {
	Kind Kind            `json:"kind"`
	Body json.RawMessage `json:"body"`
}

// MarshalState encodes f losslessly for a checkpoint.
func MarshalState(f Frame) (json.RawMessage, error) {
	if f == nil {
		return nil, fmt.Errorf("frame: cannot checkpoint a nil frame")
	}
	body, err := json.Marshal(f)
	if err != nil {
		return nil, err
	}
	return json.Marshal(stateEnvelope{Kind: f.Kind(), Body: body})
}

// UnmarshalState decodes a frame written by MarshalState. The result is
// a freshly allocated frame with field-identical content; pointer
// identity is not preserved (no component in this codebase compares
// frames by pointer).
func UnmarshalState(b json.RawMessage) (Frame, error) {
	var env stateEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("frame: bad state envelope: %w", err)
	}
	var f Frame
	switch env.Kind {
	case KindHeader, KindTrailer:
		f = &Control{}
	case KindData:
		f = &Data{}
	case KindAck:
		f = &Ack{}
	case KindInterfererList:
		f = &InterfererList{}
	case KindDot11Data:
		f = &Dot11Data{}
	case KindDot11Ack:
		f = &Dot11Ack{}
	case KindDot11RTS:
		f = &Dot11RTS{}
	case KindDot11CTS:
		f = &Dot11CTS{}
	default:
		return nil, fmt.Errorf("frame: state envelope names unknown kind %d", env.Kind)
	}
	if err := json.Unmarshal(env.Body, f); err != nil {
		return nil, fmt.Errorf("frame: bad %v state body: %w", env.Kind, err)
	}
	return f, nil
}
