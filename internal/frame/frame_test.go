package frame

import (
	"bytes"
	"hash/crc32"
	"reflect"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, f Frame) Frame {
	t.Helper()
	b := Marshal(f)
	if len(b) != f.WireSize() {
		t.Fatalf("%s: marshalled %d bytes, WireSize says %d", f.Kind(), len(b), f.WireSize())
	}
	g, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("%s: Unmarshal: %v", f.Kind(), err)
	}
	return g
}

func TestAddrFromID(t *testing.T) {
	for _, id := range []int{0, 1, 42, 1 << 20} {
		a := AddrFromID(id)
		if a.ID() != id {
			t.Errorf("AddrFromID(%d).ID() = %d", id, a.ID())
		}
		if a.IsBroadcast() {
			t.Errorf("AddrFromID(%d) is broadcast", id)
		}
	}
	if !Broadcast.IsBroadcast() {
		t.Error("Broadcast.IsBroadcast() = false")
	}
	if AddrFromID(1) == AddrFromID(2) {
		t.Error("distinct IDs map to same address")
	}
}

func TestAddrString(t *testing.T) {
	if got := AddrFromID(0x0a0b).String(); got != "02:00:00:00:0a:0b" {
		t.Errorf("String() = %q", got)
	}
}

func TestControlRoundTrip(t *testing.T) {
	for _, trailer := range []bool{false, true} {
		c := &Control{
			Trailer:      trailer,
			Src:          AddrFromID(3),
			Dst:          AddrFromID(9),
			TxTimeMicros: 61423,
			Seq:          0xDEADBEEF,
			Rate:         2,
		}
		got := roundTrip(t, c).(*Control)
		if !reflect.DeepEqual(c, got) {
			t.Errorf("round trip mismatch: sent %+v, got %+v", c, got)
		}
	}
}

func TestControlWireSizeMatchesFigure3(t *testing.T) {
	// Figure 3: 6+6+4+4 fields + 4 CRC = 24 bytes. We add 1 kind byte and
	// 1 rate annotation byte (the §3.5 extension) = 26.
	c := &Control{}
	if c.WireSize() != 26 {
		t.Errorf("control wire size = %d, want 26 (Fig. 3's 24 + kind + rate)", c.WireSize())
	}
}

func TestDataRoundTrip(t *testing.T) {
	d := &Data{
		Src:        AddrFromID(1),
		Dst:        AddrFromID(2),
		PktSeq:     90210,
		VSeq:       77,
		Index:      31,
		PayloadLen: 1400,
	}
	got := roundTrip(t, d).(*Data)
	if !reflect.DeepEqual(d, got) {
		t.Errorf("round trip mismatch: %+v vs %+v", d, got)
	}
}

func TestDataQuickRoundTrip(t *testing.T) {
	f := func(src, dst uint16, pseq, vseq uint32, idx uint16, plen uint16) bool {
		plen %= 2000
		d := &Data{Src: AddrFromID(int(src)), Dst: AddrFromID(int(dst)),
			PktSeq: pseq, VSeq: vseq, Index: idx, PayloadLen: plen}
		g, err := Unmarshal(Marshal(d))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(d, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAckRoundTrip(t *testing.T) {
	a := &Ack{
		Src:      AddrFromID(5),
		Dst:      AddrFromID(6),
		CumSeq:   1234,
		VSeq:     42,
		Bitmap:   []byte{0xff, 0x01, 0x00, 0x80},
		LossRate: 0.25,
	}
	got := roundTrip(t, a).(*Ack)
	if got.CumSeq != a.CumSeq || got.VSeq != a.VSeq {
		t.Errorf("ack header mismatch: %+v", got)
	}
	if !bytes.Equal(got.Bitmap, a.Bitmap) {
		t.Errorf("ack bitmap mismatch: %v", got.Bitmap)
	}
	if diff := got.LossRate - a.LossRate; diff < -1e-4 || diff > 1e-4 {
		t.Errorf("loss rate = %v, want ≈0.25", got.LossRate)
	}
}

func TestAckLossRateClamped(t *testing.T) {
	for _, loss := range []float64{-0.5, 1.5} {
		a := &Ack{LossRate: loss}
		got := roundTrip(t, a).(*Ack)
		if got.LossRate < 0 || got.LossRate > 1 {
			t.Errorf("loss rate %v decoded to %v, want clamped to [0,1]", loss, got.LossRate)
		}
	}
}

func TestAckEmptyBitmap(t *testing.T) {
	a := &Ack{Src: AddrFromID(1), Dst: AddrFromID(2)}
	got := roundTrip(t, a).(*Ack)
	if len(got.Bitmap) != 0 {
		t.Errorf("expected no bitmap, got %v", got.Bitmap)
	}
}

func TestAckBitmapOps(t *testing.T) {
	a := &Ack{}
	a.BitmapSet(0)
	a.BitmapSet(9)
	a.BitmapSet(255)
	if !a.BitmapGet(0) || !a.BitmapGet(9) || !a.BitmapGet(255) {
		t.Error("set bits not readable")
	}
	if a.BitmapGet(1) || a.BitmapGet(8) || a.BitmapGet(256) || a.BitmapGet(-1) {
		t.Error("unset/out-of-range bits read as set")
	}
	if len(a.Bitmap) != 32 {
		t.Errorf("bitmap grew to %d bytes, want 32", len(a.Bitmap))
	}
	a.BitmapSet(-3) // must not panic or grow
	if len(a.Bitmap) != 32 {
		t.Error("negative set changed bitmap")
	}
	// Round trip preserves bits.
	got := roundTrip(t, a).(*Ack)
	if !got.BitmapGet(9) || got.BitmapGet(10) {
		t.Error("bitmap bits lost in round trip")
	}
}

func TestInterfererListRoundTrip(t *testing.T) {
	l := &InterfererList{
		Src: AddrFromID(7),
		Entries: []InterferenceEntry{
			{Source: AddrFromID(1), Interferer: AddrFromID(2), Rate: 0},
			{Source: AddrFromID(3), Interferer: AddrFromID(4), Rate: 1},
		},
	}
	got := roundTrip(t, l).(*InterfererList)
	if !reflect.DeepEqual(l, got) {
		t.Errorf("round trip mismatch: %+v vs %+v", l, got)
	}
}

func TestInterfererListEmpty(t *testing.T) {
	l := &InterfererList{Src: AddrFromID(7)}
	got := roundTrip(t, l).(*InterfererList)
	if len(got.Entries) != 0 {
		t.Errorf("expected empty list, got %v", got.Entries)
	}
}

func TestDot11DataRoundTrip(t *testing.T) {
	d := &Dot11Data{Src: AddrFromID(1), Dst: AddrFromID(2), Seq: 4000, Retry: true, PayloadLen: 1400}
	got := roundTrip(t, d).(*Dot11Data)
	if !reflect.DeepEqual(d, got) {
		t.Errorf("round trip mismatch: %+v vs %+v", d, got)
	}
}

func TestDot11DataOverhead(t *testing.T) {
	// 802.11 data frame overhead is 24 header + 4 FCS = 28 bytes; our
	// encoding is 24 bytes of overhead (3-address header folded).
	d := &Dot11Data{PayloadLen: 1400}
	if got := d.WireSize() - 1400; got != 24 {
		t.Errorf("dot11 data overhead = %d bytes, want 24", got)
	}
}

func TestDot11AckSize(t *testing.T) {
	a := &Dot11Ack{Dst: AddrFromID(1), Seq: 7}
	if a.WireSize() != 14 {
		t.Errorf("802.11 ACK wire size = %d, want 14", a.WireSize())
	}
	got := roundTrip(t, a).(*Dot11Ack)
	if !reflect.DeepEqual(a, got) {
		t.Errorf("round trip mismatch: %+v vs %+v", a, got)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal(nil); err != ErrShortFrame {
		t.Errorf("nil: err = %v, want ErrShortFrame", err)
	}
	if _, err := Unmarshal([]byte{1, 2, 3}); err != ErrShortFrame {
		t.Errorf("3 bytes: err = %v, want ErrShortFrame", err)
	}
	b := Marshal(&Control{Src: AddrFromID(1)})
	b[5] ^= 0xff
	if _, err := Unmarshal(b); err != ErrBadCRC {
		t.Errorf("corrupted: err = %v, want ErrBadCRC", err)
	}
	// Unknown kind with valid CRC.
	raw := []byte{0x7f, 1, 2, 3}
	raw = append(raw, Marshal(&Dot11Ack{})[:0]...)
	full := appendCRC(raw)
	if _, err := Unmarshal(full); err != ErrUnknownKind {
		t.Errorf("unknown kind: err = %v, want ErrUnknownKind", err)
	}
	// Truncated control body with valid CRC.
	full = appendCRC([]byte{byte(KindHeader), 1, 2, 3})
	if _, err := Unmarshal(full); err != ErrShortFrame {
		t.Errorf("short control: err = %v, want ErrShortFrame", err)
	}
}

// appendCRC mirrors Marshal's trailing checksum for hand-built test frames.
func appendCRC(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	sum := crc32.ChecksumIEEE(out)
	return append(out, byte(sum>>24), byte(sum>>16), byte(sum>>8), byte(sum))
}

func TestBadLengthData(t *testing.T) {
	d := &Data{PayloadLen: 100}
	b := Marshal(d)
	// Truncate payload but fix up the CRC so length validation is what fails.
	body := b[:len(b)-4-50]
	full := appendCRC(body)
	if _, err := Unmarshal(full); err != ErrBadLength {
		t.Errorf("err = %v, want ErrBadLength", err)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindHeader: "header", KindTrailer: "trailer", KindData: "data",
		KindAck: "ack", KindInterfererList: "interferer-list",
		KindDot11Data: "dot11-data", KindDot11Ack: "dot11-ack",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
	if Kind(200).String() != "kind(200)" {
		t.Errorf("unknown kind string = %q", Kind(200).String())
	}
}

func BenchmarkMarshalData(b *testing.B) {
	d := &Data{Src: AddrFromID(1), Dst: AddrFromID(2), VSeq: 1, Index: 0, PayloadLen: 1400}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Marshal(d)
	}
}

func BenchmarkUnmarshalData(b *testing.B) {
	raw := Marshal(&Data{Src: AddrFromID(1), Dst: AddrFromID(2), VSeq: 1, PayloadLen: 1400})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func TestUnmarshalNeverPanicsOnGarbage(t *testing.T) {
	// Decoding arbitrary bytes must fail cleanly, never panic.
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Unmarshal panicked on %x: %v", raw, r)
			}
		}()
		g, err := Unmarshal(raw)
		return (g == nil) == (err != nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalGarbageWithValidCRC(t *testing.T) {
	// Even with a valid checksum, malformed bodies must fail cleanly for
	// every kind byte.
	f := func(kind uint8, body []byte) bool {
		if len(body) > 64 {
			body = body[:64]
		}
		raw := append([]byte{kind}, body...)
		full := appendCRC(raw)
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panicked on kind %d body %x: %v", kind, body, r)
			}
		}()
		_, err := Unmarshal(full)
		_ = err // any outcome is fine as long as it does not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAllKindsRoundTripThroughDispatch(t *testing.T) {
	frames := []Frame{
		&Control{Src: AddrFromID(1), Dst: AddrFromID(2), Seq: 9},
		&Control{Trailer: true, Src: AddrFromID(1), Dst: AddrFromID(2), Seq: 9},
		&Data{Src: AddrFromID(1), Dst: AddrFromID(2), PktSeq: 5, PayloadLen: 3},
		&Ack{Src: AddrFromID(2), Dst: AddrFromID(1), CumSeq: 6},
		&InterfererList{Src: AddrFromID(3), Relayed: true,
			Entries: []InterferenceEntry{{Source: AddrFromID(1), Interferer: AddrFromID(4)}}},
		&Dot11Data{Src: AddrFromID(1), Dst: AddrFromID(2), PayloadLen: 10},
		&Dot11Ack{Dst: AddrFromID(1)},
	}
	for _, f := range frames {
		g := roundTrip(t, f)
		if g.Kind() != f.Kind() {
			t.Errorf("kind changed: sent %v, got %v", f.Kind(), g.Kind())
		}
		if !reflect.DeepEqual(f, g) {
			t.Errorf("%v round trip mismatch:\n sent %+v\n got  %+v", f.Kind(), f, g)
		}
	}
}

func TestInterfererListRelayedFlag(t *testing.T) {
	l := &InterfererList{Src: AddrFromID(7), Relayed: true,
		Entries: []InterferenceEntry{{Source: AddrFromID(1), Interferer: AddrFromID(2)}}}
	got := roundTrip(t, l).(*InterfererList)
	if !got.Relayed {
		t.Error("Relayed flag lost in round trip")
	}
	l.Relayed = false
	if roundTrip(t, l).(*InterfererList).Relayed {
		t.Error("Relayed flag invented in round trip")
	}
}
