// Package trace records structured per-node link-layer events — frame
// receptions, corruptions, transmissions, carrier edges — into a
// bounded ring buffer and renders them as a readable timeline.
//
// # Relation to the paper
//
// Debugging a reactive MAC means reconstructing who heard what, when —
// the §4 prototype work the paper describes doing with packet captures.
// The tracer is this reproduction's equivalent: it decorates any
// phy.Handler, so CMAP nodes, DCF nodes, and bare radios can all be
// traced without touching their code:
//
//	tracer := trace.New(512)
//	node := core.New(3, cfg, m, rng)
//	m.Radio(3).SetHandler(tracer.Wrap(3, node, m.Scheduler()))
//
// cmd/cmapsim's -trace flag wires this up for one flow's endpoints. The
// tracer is simulation-grade (no locking): the kernel is single
// threaded by design.
package trace
