package trace

import (
	"fmt"
	"strings"

	"repro/internal/frame"
	"repro/internal/phy"
	"repro/internal/sim"
)

// Op is the kind of a traced event.
type Op uint8

// Event kinds.
const (
	OpRx      Op = iota // frame decoded
	OpCorrupt           // frame locked but not decoded
	OpTxDone            // own transmission completed
	OpCarrier           // carrier-sense edge
)

// String returns the op mnemonic.
func (o Op) String() string {
	switch o {
	case OpRx:
		return "rx"
	case OpCorrupt:
		return "corrupt"
	case OpTxDone:
		return "tx-done"
	case OpCarrier:
		return "carrier"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Event is one recorded link-layer event.
type Event struct {
	At   sim.Time
	Node int
	Op   Op
	// Kind is the frame kind for rx/tx events.
	Kind frame.Kind
	// From is the transmitter for rx/corrupt events.
	From int
	// PowerDBm is the received power for rx/corrupt events.
	PowerDBm float64
	// Busy is the new carrier state for carrier events.
	Busy bool
	// Detail carries frame-specific fields (sequence numbers etc.).
	Detail string
}

// String renders the event as one timeline line.
func (e Event) String() string {
	switch e.Op {
	case OpRx, OpCorrupt:
		return fmt.Sprintf("%12v node%-3d %-8s %-15s from=%d %5.1fdBm %s",
			e.At, e.Node, e.Op, e.Kind, e.From, e.PowerDBm, e.Detail)
	case OpTxDone:
		return fmt.Sprintf("%12v node%-3d %-8s %-15s %s", e.At, e.Node, e.Op, e.Kind, e.Detail)
	default:
		return fmt.Sprintf("%12v node%-3d %-8s busy=%v", e.At, e.Node, e.Op, e.Busy)
	}
}

// Tracer is a bounded ring of events shared by any number of wrapped
// nodes.
type Tracer struct {
	events []Event
	next   int
	full   bool
	// Filter, when set, drops events for which it returns false.
	Filter func(Event) bool
}

// New creates a tracer holding the most recent capacity events.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1
	}
	return &Tracer{events: make([]Event, 0, capacity)}
}

// add appends an event, evicting the oldest when full.
func (t *Tracer) add(e Event) {
	if t.Filter != nil && !t.Filter(e) {
		return
	}
	if len(t.events) < cap(t.events) {
		t.events = append(t.events, e)
		return
	}
	t.full = true
	t.events[t.next] = e
	t.next = (t.next + 1) % cap(t.events)
}

// Len returns the number of retained events.
func (t *Tracer) Len() int { return len(t.events) }

// Events returns the retained events oldest-first.
func (t *Tracer) Events() []Event {
	if !t.full {
		return append([]Event(nil), t.events...)
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// Dump renders the whole timeline.
func (t *Tracer) Dump() string {
	var b strings.Builder
	for _, e := range t.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Count returns how many retained events match op (and node, unless
// node < 0).
func (t *Tracer) Count(op Op, node int) int {
	c := 0
	for _, e := range t.Events() {
		if e.Op == op && (node < 0 || e.Node == node) {
			c++
		}
	}
	return c
}

// detail extracts the interesting fields of a frame for the timeline.
func detail(f frame.Frame) string {
	switch ff := f.(type) {
	case *frame.Control:
		return fmt.Sprintf("vseq=%d txtime=%dµs", ff.Seq, ff.TxTimeMicros)
	case *frame.Data:
		return fmt.Sprintf("seq=%d vseq=%d idx=%d", ff.PktSeq, ff.VSeq, ff.Index)
	case *frame.Ack:
		return fmt.Sprintf("cum=%d loss=%.2f", ff.CumSeq, ff.LossRate)
	case *frame.InterfererList:
		return fmt.Sprintf("entries=%d relayed=%v", len(ff.Entries), ff.Relayed)
	case *frame.Dot11Data:
		return fmt.Sprintf("seq=%d retry=%v", ff.Seq, ff.Retry)
	case *frame.Dot11Ack:
		return fmt.Sprintf("seq=%d", ff.Seq)
	default:
		return ""
	}
}

// handler decorates an inner phy.Handler with event recording.
type handler struct {
	t     *Tracer
	node  int
	inner phy.Handler
	sched *sim.Scheduler
}

// Wrap returns a phy.Handler that records every upcall for node before
// forwarding it to inner. Install it with radio.SetHandler AFTER creating
// the MAC node (which installs itself).
func (t *Tracer) Wrap(node int, inner phy.Handler, sched *sim.Scheduler) phy.Handler {
	return &handler{t: t, node: node, inner: inner, sched: sched}
}

func (h *handler) OnFrame(f frame.Frame, info phy.RxInfo) {
	h.t.add(Event{
		At: h.sched.Now(), Node: h.node, Op: OpRx, Kind: f.Kind(),
		From: info.From, PowerDBm: info.PowerDBm, Detail: detail(f),
	})
	h.inner.OnFrame(f, info)
}

func (h *handler) OnCorrupt(info phy.RxInfo) {
	h.t.add(Event{
		At: h.sched.Now(), Node: h.node, Op: OpCorrupt,
		From: info.From, PowerDBm: info.PowerDBm,
	})
	h.inner.OnCorrupt(info)
}

func (h *handler) OnTxDone(f frame.Frame) {
	h.t.add(Event{
		At: h.sched.Now(), Node: h.node, Op: OpTxDone, Kind: f.Kind(), Detail: detail(f),
	})
	h.inner.OnTxDone(f)
}

func (h *handler) OnCarrier(busy bool) {
	h.t.add(Event{At: h.sched.Now(), Node: h.node, Op: OpCarrier, Busy: busy})
	h.inner.OnCarrier(busy)
}
