package trace

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/geo"
	"repro/internal/medium"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
)

func TestRingBufferEviction(t *testing.T) {
	tr := New(3)
	for i := 0; i < 5; i++ {
		tr.add(Event{At: sim.Time(i), Node: i})
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	// Oldest-first: nodes 2, 3, 4.
	for i, e := range evs {
		if e.Node != i+2 {
			t.Errorf("event %d node = %d, want %d", i, e.Node, i+2)
		}
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestZeroCapacityClamps(t *testing.T) {
	tr := New(0)
	tr.add(Event{Node: 1})
	tr.add(Event{Node: 2})
	if tr.Len() != 1 || tr.Events()[0].Node != 2 {
		t.Error("capacity clamp broken")
	}
}

func TestFilter(t *testing.T) {
	tr := New(10)
	tr.Filter = func(e Event) bool { return e.Op == OpRx }
	tr.add(Event{Op: OpRx})
	tr.add(Event{Op: OpCarrier})
	if tr.Len() != 1 {
		t.Errorf("filter retained %d events, want 1", tr.Len())
	}
}

func TestWrappedCMAPNodeTimeline(t *testing.T) {
	// Trace a clean CMAP link end to end and check the timeline contains
	// the protocol's fingerprints: headers, data, trailers, ACKs.
	sched := sim.NewScheduler()
	rng := sim.NewRNG(5)
	m := medium.New(sched, phy.DefaultParams(), &radio.Matrix{LossDB: [][]float64{
		{0, 70},
		{70, 0},
	}}, make([]geo.Point, 2), rng.Stream(1))
	cfg := core.DefaultConfig()
	tx := core.New(0, cfg, m, rng.Stream(10))
	rx := core.New(1, cfg, m, rng.Stream(11))

	tr := New(4096)
	m.Radio(0).SetHandler(tr.Wrap(0, tx, sched))
	m.Radio(1).SetHandler(tr.Wrap(1, rx, sched))

	tx.SetSaturated(1)
	sched.Run(sim.Second)

	if tr.Count(OpRx, 1) == 0 {
		t.Fatal("receiver decoded nothing in the trace")
	}
	dump := tr.Dump()
	for _, want := range []string{"header", "trailer", "data", "ack", "vseq=", "cum="} {
		if !strings.Contains(dump, want) {
			t.Errorf("timeline missing %q", want)
		}
	}
	// The wrapped handler must not change protocol behaviour: goodput
	// flows (receiver delivered packets).
	if rx.Stats().Delivered == 0 {
		t.Error("wrapping the handler broke delivery")
	}
	// Events are time-ordered.
	evs := tr.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatal("trace events out of order")
		}
	}
}

func TestEventStrings(t *testing.T) {
	cases := []Event{
		{At: sim.Millisecond, Node: 1, Op: OpRx, Kind: frame.KindData, From: 2, PowerDBm: -60, Detail: "seq=1"},
		{At: sim.Millisecond, Node: 1, Op: OpCorrupt, From: 3, PowerDBm: -80},
		{At: sim.Millisecond, Node: 1, Op: OpTxDone, Kind: frame.KindAck, Detail: "cum=5"},
		{At: sim.Millisecond, Node: 1, Op: OpCarrier, Busy: true},
	}
	for _, e := range cases {
		if e.String() == "" {
			t.Errorf("empty String for op %v", e.Op)
		}
	}
	if OpRx.String() != "rx" || OpCarrier.String() != "carrier" || Op(99).String() != "op(99)" {
		t.Error("op mnemonics wrong")
	}
}

func TestDetailCoversAllFrames(t *testing.T) {
	frames := []frame.Frame{
		&frame.Control{Seq: 1},
		&frame.Data{PktSeq: 2},
		&frame.Ack{CumSeq: 3},
		&frame.InterfererList{},
		&frame.Dot11Data{Seq: 4},
		&frame.Dot11Ack{Seq: 5},
	}
	for _, f := range frames {
		if detail(f) == "" {
			t.Errorf("no detail for %v", f.Kind())
		}
	}
}
