package mac

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/sim"
)

// fakeArm is a registry-only stand-in; its New is never called in these
// tests (construction is covered end to end by the conformance suite,
// which registers the real protocol packages).
type fakeArm struct {
	name string
	salt uint64
}

func (a fakeArm) Name() string     { return a.name }
func (a fakeArm) Label() string    { return "fake " + a.name }
func (a fakeArm) SeedSalt() uint64 { return a.salt }
func (a fakeArm) New(id int, net Network, rng *sim.RNG, opt Options) Node {
	panic("fakeArm.New should not be called")
}

// The mac package itself imports no protocol package, so the registry
// seen by these tests contains exactly what they put in it.

func TestRegisterAndLookup(t *testing.T) {
	Register(fakeArm{name: "zz-test-a", salt: 101})
	Register(fakeArm{name: "zz-test-b", salt: 102})
	a, err := Lookup("zz-test-a")
	if err != nil {
		t.Fatalf("Lookup(zz-test-a): %v", err)
	}
	if a.Name() != "zz-test-a" || a.SeedSalt() != 101 || a.Label() != "fake zz-test-a" {
		t.Fatalf("Lookup returned wrong arm: %+v", a)
	}
	if m := MustLookup("zz-test-b"); m.SeedSalt() != 102 {
		t.Fatalf("MustLookup(zz-test-b).SeedSalt() = %d, want 102", m.SeedSalt())
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register(fakeArm{name: "zz-dup"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register(fakeArm{name: "zz-dup"})
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty-name Register did not panic")
		}
	}()
	Register(fakeArm{name: ""})
}

func TestLookupUnknownListsChoices(t *testing.T) {
	Register(fakeArm{name: "zz-known"})
	_, err := Lookup("zz-definitely-not-registered")
	if err == nil {
		t.Fatal("Lookup of unknown arm succeeded")
	}
	if !strings.Contains(err.Error(), "zz-definitely-not-registered") {
		t.Errorf("error %q does not name the unknown arm", err)
	}
	if !strings.Contains(err.Error(), "zz-known") {
		t.Errorf("error %q does not list the known arms", err)
	}
}

func TestMustLookupUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustLookup of unknown arm did not panic")
		}
	}()
	MustLookup("zz-missing")
}

func TestFamilyLookupParsesAndCaches(t *testing.T) {
	parses := 0
	RegisterFamily("zzfam@", "zzfam@<n>", func(name string) (Arm, error) {
		parses++
		spec := strings.TrimPrefix(name, "zzfam@")
		n, err := strconv.Atoi(spec)
		if err != nil {
			return nil, fmt.Errorf("zzfam arm %q: %v", name, err)
		}
		return fakeArm{name: name, salt: uint64(1000 + n)}, nil
	})

	a, err := Lookup("zzfam@7")
	if err != nil {
		t.Fatalf("family Lookup: %v", err)
	}
	if a.SeedSalt() != 1007 {
		t.Fatalf("family arm salt = %d, want 1007", a.SeedSalt())
	}
	b, err := Lookup("zzfam@7")
	if err != nil {
		t.Fatalf("second family Lookup: %v", err)
	}
	if parses != 1 {
		t.Errorf("parse ran %d times for the same name, want 1 (memoized)", parses)
	}
	if a != b {
		t.Error("family lookups of the same name returned different instances")
	}

	if _, err := Lookup("zzfam@notanumber"); err == nil {
		t.Error("malformed family member did not error")
	} else if !strings.Contains(err.Error(), "zzfam@notanumber") {
		t.Errorf("family parse error %q does not name the bad member", err)
	}
}

func TestRegisterFamilyDuplicatePrefixPanics(t *testing.T) {
	RegisterFamily("zzdupfam@", "zzdupfam@<n>", func(name string) (Arm, error) {
		return fakeArm{name: name}, nil
	})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate RegisterFamily did not panic")
		}
	}()
	RegisterFamily("zzdupfam@", "zzdupfam@<n>", func(name string) (Arm, error) {
		return fakeArm{name: name}, nil
	})
}

func TestRegisterFamilyEmptyPrefixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty-prefix RegisterFamily did not panic")
		}
	}()
	RegisterFamily("", "", nil)
}

func TestNamesSortedWithFamilyHints(t *testing.T) {
	Register(fakeArm{name: "zz-names-b"})
	Register(fakeArm{name: "zz-names-a"})
	RegisterFamily("zznames@", "zznames@<n>", func(name string) (Arm, error) {
		return fakeArm{name: name}, nil
	})
	names := Names()

	ia, ib := -1, -1
	hint := -1
	fixedEnd := 0
	for i, n := range names {
		switch n {
		case "zz-names-a":
			ia = i
		case "zz-names-b":
			ib = i
		case "zznames@<n>":
			hint = i
		}
		if !strings.Contains(n, "<") {
			fixedEnd = i
		}
	}
	if ia == -1 || ib == -1 {
		t.Fatalf("Names() = %v missing registered arms", names)
	}
	if ia > ib {
		t.Errorf("Names() not sorted: zz-names-a at %d after zz-names-b at %d", ia, ib)
	}
	if hint == -1 {
		t.Fatalf("Names() = %v missing family hint", names)
	}
	if hint < fixedEnd {
		t.Errorf("family hint at %d precedes fixed name at %d; hints must trail", hint, fixedEnd)
	}
}
