package conformance

import (
	"repro/internal/geo"
	"repro/internal/mac"
	"repro/internal/medium"
	"repro/internal/mobility"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/stats"
)

// MobileArena is the geometric fixture mobility conformance runs on.
// The Matrix-backed Pair fixtures carry meaningless positions, so a
// moving-node suite needs real geometry: a log-distance channel over a
// small arena, flows placed on short links, and every node roaming a
// disk around its start under a mobility.Manager.
type MobileArena struct {
	Name  string
	Rect  geo.Rect
	Pos   []geo.Point
	Flows [][2]int
	Spec  mobility.Spec
}

// MobileCleanLink is a single flow over a 10 m link, both endpoints
// wandering a 5 m roam disk — the link stays comfortably decodable at
// every reachable geometry, so backlog accounting is meaningful.
func MobileCleanLink(spec mobility.Spec) MobileArena {
	spec.RangeM = 5
	return MobileArena{
		Name: "mobile-clean",
		Rect: geo.Rect{MinX: 0, MinY: 0, MaxX: 60, MaxY: 40},
		Pos: []geo.Point{
			{X: 25, Y: 20},
			{X: 35, Y: 20},
		},
		Flows: [][2]int{{0, 1}},
		Spec:  spec,
	}
}

// MobileExposedPair is two short parallel flows far enough apart that
// their receivers are safe but close enough that the senders interact
// through carrier sense — the exposed geometry, now time-varying as all
// four nodes roam.
func MobileExposedPair(spec mobility.Spec) MobileArena {
	spec.RangeM = 6
	return MobileArena{
		Name: "mobile-exposed",
		Rect: geo.Rect{MinX: 0, MinY: 0, MaxX: 120, MaxY: 60},
		Pos: []geo.Point{
			{X: 40, Y: 20},
			{X: 32, Y: 20},
			{X: 70, Y: 40},
			{X: 78, Y: 40},
		},
		Flows: [][2]int{{0, 1}, {2, 3}},
		Spec:  spec,
	}
}

// MobileFixture is a built mobile arena under one arm: medium, manager,
// stations, and a goodput meter per flow. Seed derivation mirrors the
// experiment harness (medium stream 1, node id stream 1000+id, manager
// stream mobility.StreamLabel), so fixture runs are bit-comparable with
// experiments runs of the same geometry.
type MobileFixture struct {
	Arena   MobileArena
	Sched   *sim.Scheduler
	M       *medium.Medium
	Manager *mobility.Manager
	Nodes   []mac.Node
	Meters  []*stats.Meter
}

// mobileModel is the fixture channel: log-distance with mild shadowing,
// so the mobility.Channel's per-epoch re-draws get exercised whenever
// the spec sets a decorrelation distance.
func mobileModel(seed uint64) *radio.LogDistance {
	return &radio.LogDistance{
		RefLossDB:     50,
		Exponent:      3.0,
		ShadowSigmaDB: 3,
		Seed:          seed ^ 0x40b11e,
	}
}

// NewMobileFixture builds the arena's medium, manager and one station
// per node through the registry.
func NewMobileFixture(armName string, a MobileArena, seed uint64, warmup, dur sim.Time) *MobileFixture {
	arm := mac.MustLookup(armName)
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	var model radio.Model = mobileModel(seed)
	var ch *mobility.Channel
	if a.Spec.DecorrM > 0 {
		ch = mobility.NewChannel(model, len(a.Pos))
		model = ch
	}
	m := medium.New(sched, phy.DefaultParams(), model, a.Pos, rng.Stream(1))
	mg := mobility.New(a.Spec, a.Rect, m, rng.Stream(mobility.StreamLabel), ch)
	mg.Start()
	f := &MobileFixture{Arena: a, Sched: sched, M: m, Manager: mg}
	f.Nodes = make([]mac.Node, len(a.Pos))
	for id := range a.Pos {
		f.Nodes[id] = arm.New(id, m, rng.Stream(uint64(1000+id)), mac.Options{Rate: phy.Rate6Mbps})
	}
	for _, fl := range a.Flows {
		mt := &stats.Meter{Start: warmup, End: dur}
		f.Nodes[fl[1]].SetMeter(mt)
		f.Meters = append(f.Meters, mt)
	}
	return f
}

// Saturate makes every flow's sender fully backlogged.
func (f *MobileFixture) Saturate() {
	for _, fl := range f.Arena.Flows {
		f.Nodes[fl[0]].SetSaturated(fl[1])
	}
}

// Run advances the fixture's virtual clock to the absolute time until.
func (f *MobileFixture) Run(until sim.Time) { f.Sched.Run(until) }

// Goodputs returns each flow's measured goodput in Mb/s.
func (f *MobileFixture) Goodputs() []float64 {
	out := make([]float64, len(f.Meters))
	for i, m := range f.Meters {
		out[i] = m.Mbps()
	}
	return out
}

// RunMobileSaturated is the one-call happy path: build, saturate, run,
// return per-flow goodputs.
func RunMobileSaturated(armName string, a MobileArena, seed uint64, warmup, dur sim.Time) []float64 {
	f := NewMobileFixture(armName, a, seed, warmup, dur)
	f.Saturate()
	f.Run(dur)
	return f.Goodputs()
}
