//go:build !race

package conformance

// raceEnabled reports whether the race detector instruments this build;
// allocation-count assertions are skipped under it.
const raceEnabled = false
