package conformance

import (
	"math"
	"testing"

	"repro/internal/experiments"
	"repro/internal/mac"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topo"
)

// conformanceArms is every arm kind the suite certifies: the four
// carrier-sense/ACK baselines, both CMAP window settings, the RTS/CTS
// handshake, and one cs@<dBm> family member. CI runs each as its own
// matrix entry via -run 'TestConformance/<arm>$'.
var conformanceArms = []string{
	"csma",
	"csma-noack",
	"csma-nocs",
	"csma-nocs-noack",
	"cmap",
	"cmap1",
	"rtscts",
	"cs@-82",
}

// TestConformance is the shared MAC conformance suite: every registered
// arm kind must hold the same steady-state allocation, determinism,
// worker-equivalence and backlog-conservation contracts.
func TestConformance(t *testing.T) {
	for _, armName := range conformanceArms {
		armName := armName
		t.Run(armName, func(t *testing.T) {
			t.Run("ZeroAllocs", func(t *testing.T) { testZeroAllocs(t, armName) })
			t.Run("Determinism", func(t *testing.T) { testDeterminism(t, armName) })
			t.Run("WorkerEquivalence", func(t *testing.T) { testWorkerEquivalence(t, armName) })
			t.Run("Conservation", func(t *testing.T) { testConservation(t, armName) })
			t.Run("MobileDeterminism", func(t *testing.T) { testMobileDeterminism(t, armName) })
			t.Run("MobileWorkerEquivalence", func(t *testing.T) { testMobileWorkerEquivalence(t, armName) })
			t.Run("MobileConservation", func(t *testing.T) { testMobileConservation(t, armName) })
		})
	}
}

// testZeroAllocs drives a saturated clean link to steady state and then
// requires that advancing the simulation allocates nothing: every
// per-frame object (frames, timers, ACK attempts, receive state) must
// come from a pool or an embedded buffer.
func testZeroAllocs(t *testing.T, armName string) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs allocation counts")
	}
	f := NewFixture(armName, CleanLink(), 1, 0, 1<<62)
	f.Saturate()
	deadline := sim.Time(0)
	cycle := func() {
		deadline += 20 * sim.Millisecond
		f.Run(deadline)
	}
	for i := 0; i < 64; i++ {
		cycle() // warm up every pool and reusable buffer
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("steady state allocates %.2f objects per 20ms slice, want 0", allocs)
	}
	if got := f.Goodputs()[0]; got <= 0 {
		t.Fatalf("allocation fixture moved no traffic (%.2f Mb/s) — the gate tested nothing", got)
	}
}

// testDeterminism runs the same seed twice on the interference-rich
// topologies and requires bit-identical goodput — the golden-trace
// property every experiment's reproducibility rests on.
func testDeterminism(t *testing.T, armName string) {
	for _, p := range []Pair{ExposedPair(), HiddenPair()} {
		a := RunSaturated(armName, p, 7, 500*sim.Millisecond, 1500*sim.Millisecond)
		b := RunSaturated(armName, p, 7, 500*sim.Millisecond, 1500*sim.Millisecond)
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s flow %d: same seed diverged: %x vs %x (%.4f vs %.4f)",
					p.Name, i, math.Float64bits(a[i]), math.Float64bits(b[i]), a[i], b[i])
			}
		}
		// The hidden pair legitimately delivers nothing under the no-ACK
		// arms (every frame collides and is never retried), so only the
		// exposed fixture must demonstrably move traffic.
		if p.Name == "exposed" && SumMbps(a) <= 0 {
			t.Fatalf("%s: determinism fixture moved no traffic", p.Name)
		}
	}
}

// testWorkerEquivalence runs the exposed-terminal experiment at 1, 4 and
// 16 workers and requires bit-identical per-flow results: trial seeds
// are fixed before dispatch, so parallelism must never leak into
// outcomes.
func testWorkerEquivalence(t *testing.T, armName string) {
	tb := topo.NewTestbed(50, 11)
	run := func(workers int) [][]experiments.FlowResult {
		opt := experiments.Options{
			Seed:     11,
			Nodes:    50,
			Duration: 2 * sim.Second,
			Warmup:   1 * sim.Second,
			Pairs:    4,
			Rate:     phy.Rate6Mbps,
			Workers:  workers,
			Arms:     []experiments.Protocol{experiments.Protocol(armName)},
		}
		ex := experiments.ExposedTerminals(tb, opt)
		return ex.Flows[experiments.Protocol(armName)]
	}
	serial := run(1)
	for _, workers := range []int{4, 16} {
		parallel := run(workers)
		if len(parallel) != len(serial) {
			t.Fatalf("%d workers returned %d runs, serial %d", workers, len(parallel), len(serial))
		}
		for ri := range serial {
			for fi := range serial[ri] {
				a, b := serial[ri][fi], parallel[ri][fi]
				if math.Float64bits(a.Mbps) != math.Float64bits(b.Mbps) ||
					a.VpktsSent != b.VpktsSent || a.VpktsHeader != b.VpktsHeader {
					t.Fatalf("run %d flow %d: serial %v vs %d workers %v", ri, fi, a.Mbps, workers, b.Mbps)
				}
			}
		}
	}
}

// testConservation enqueues a pre-drawn Poisson arrival pattern on a
// clean link, drains the sender, and requires exact backlog accounting:
// every accepted packet is delivered, abandoned by the MAC, or still
// queued.
func testConservation(t *testing.T, armName string) {
	const horizon = 2 * sim.Second
	f := NewFixture(armName, CleanLink(), 3, 0, 1<<62)
	src, dst := f.Pair.Flows[0][0], f.Pair.Flows[0][1]
	sender, receiver := f.Nodes[src], f.Nodes[dst]

	var delivered uint64
	receiver.SetOnDeliver(func(from int, seq uint32, now sim.Time) {
		if from == src {
			delivered++
		}
	})
	arrivals := PoissonArrivals(3, 150, horizon)
	if len(arrivals) < 100 {
		t.Fatalf("only %d Poisson arrivals drawn — fixture too sparse to mean anything", len(arrivals))
	}
	for _, at := range arrivals {
		f.Sched.At(at, func() { sender.Enqueue(dst, 1) })
	}
	enqueued := uint64(len(arrivals))

	f.Run(horizon)
	deadline := horizon
	for i := 0; i < 400 && !sender.Idle(); i++ {
		deadline += 50 * sim.Millisecond
		f.Run(deadline)
	}
	if !sender.Idle() {
		t.Fatalf("sender failed to drain %d arrivals within %v", enqueued, deadline)
	}
	got := delivered + sender.MacDropped() + uint64(sender.Backlog(dst))
	if got != enqueued {
		t.Fatalf("conservation violated: enqueued %d != delivered %d + dropped %d + queued %d",
			enqueued, delivered, sender.MacDropped(), sender.Backlog(dst))
	}
	if delivered == 0 {
		t.Fatal("nothing delivered — conservation held vacuously")
	}
}

// TestRegistryRoundTrip certifies the registry seam end to end: every
// listed fixed arm name (and a family instance) constructs through
// Lookup and moves traffic on a clean link.
func TestRegistryRoundTrip(t *testing.T) {
	names := mac.Names()
	if len(names) == 0 {
		t.Fatal("registry is empty")
	}
	tried := 0
	for _, name := range append(names, "cs@-82") {
		if name == "cs@<dBm>" {
			continue // family syntax hint, not a constructible name
		}
		if _, err := mac.Lookup(name); err != nil {
			t.Fatalf("listed arm %q does not resolve: %v", name, err)
		}
		g := RunSaturated(name, CleanLink(), 5, 100*sim.Millisecond, 600*sim.Millisecond)
		if g[0] <= 0 {
			t.Errorf("arm %q moved no traffic on a clean link", name)
		}
		tried++
	}
	if tried < 8 {
		t.Fatalf("only %d arms exercised, expected at least the 7 fixed arms + cs@-82", tried)
	}
}

// TestSanityBoundRTSCTS pins the textbook hidden-terminal story: on a
// pair whose senders cannot hear each other but whose receivers are
// exposed to both, the RTS/CTS handshake must clearly beat plain CSMA,
// and on the exposed pair it must not beat it (the handshake only adds
// overhead there).
func TestSanityBoundRTSCTS(t *testing.T) {
	warm, dur := 1*sim.Second, 3*sim.Second
	hidden := HiddenPair()
	csma := SumMbps(RunSaturated("csma", hidden, 1, warm, dur))
	rts := SumMbps(RunSaturated("rtscts", hidden, 1, warm, dur))
	if rts < csma {
		t.Errorf("hidden pair: RTS/CTS %.2f Mb/s < plain CSMA %.2f Mb/s", rts, csma)
	}
	if rts < 2*csma {
		t.Errorf("hidden pair: RTS/CTS %.2f Mb/s should clearly beat CSMA %.2f Mb/s (want ≥2×)", rts, csma)
	}
}

// TestSanityBoundCSThreshold pins the carrier-sense threshold tradeoff
// the cs@<dBm> sweep exists to show, at its two crisp endpoints. On the
// exposed pair, a blinder threshold unlocks free concurrency: goodput
// must rise. On the protected pair, sensing is the victim flow's only
// shield: its goodput must fall.
func TestSanityBoundCSThreshold(t *testing.T) {
	warm, dur := 1*sim.Second, 3*sim.Second
	sensitive, blind := "cs@-95", "cs@-85"

	exSens := SumMbps(RunSaturated(sensitive, ExposedPair(), 1, warm, dur))
	exBlind := SumMbps(RunSaturated(blind, ExposedPair(), 1, warm, dur))
	if exBlind < 1.5*exSens {
		t.Errorf("exposed pair: blind %s %.2f Mb/s should clearly beat sensitive %s %.2f Mb/s (want ≥1.5×)",
			blind, exBlind, sensitive, exSens)
	}

	prSens := RunSaturated(sensitive, ProtectedPair(), 1, warm, dur)[0]
	prBlind := RunSaturated(blind, ProtectedPair(), 1, warm, dur)[0]
	if prSens < 1.5*prBlind {
		t.Errorf("protected pair victim flow: sensitive %s %.2f Mb/s should clearly beat blind %s %.2f Mb/s (want ≥1.5×)",
			sensitive, prSens, blind, prBlind)
	}
}
