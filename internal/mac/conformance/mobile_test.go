package conformance

import (
	"math"
	"testing"

	"repro/internal/experiments"
	"repro/internal/mobility"
	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/topo"
)

// mobileSpecs is the movement matrix mobility conformance runs each arm
// through: one spec per model, pedestrian-to-vehicular speeds, all with
// shadowing re-draws so the mobility.Channel seam is on the hook too.
var mobileSpecs = []mobility.Spec{
	{Kind: mobility.Waypoint, SpeedMps: 3, DecorrM: 8},
	{Kind: mobility.RandomWalk, SpeedMps: 1.5, DecorrM: 8},
	{Kind: mobility.Vehicular, SpeedMps: 15, DecorrM: 8},
}

// testMobileDeterminism replays the mobile exposed geometry under every
// movement model with the same seed and requires bit-identical goodput
// — trajectories, shadowing re-draws and incremental medium patches
// must all derive from the seed alone.
func testMobileDeterminism(t *testing.T, armName string) {
	for _, spec := range mobileSpecs {
		a := MobileExposedPair(spec)
		fa := NewMobileFixture(armName, a, 7, 500*sim.Millisecond, 1500*sim.Millisecond)
		fa.Saturate()
		fa.Run(1500 * sim.Millisecond)
		ga := fa.Goodputs()
		if fa.Manager.Epochs == 0 {
			t.Fatalf("%s/%s: manager applied no position epochs — the fixture tested a static run", a.Name, spec)
		}
		gb := RunMobileSaturated(armName, a, 7, 500*sim.Millisecond, 1500*sim.Millisecond)
		for i := range ga {
			if math.Float64bits(ga[i]) != math.Float64bits(gb[i]) {
				t.Fatalf("%s/%s flow %d: same seed diverged: %.4f vs %.4f", a.Name, spec, i, ga[i], gb[i])
			}
		}
		if SumMbps(ga) <= 0 {
			t.Fatalf("%s/%s: determinism fixture moved no traffic", a.Name, spec)
		}
	}
}

// testMobileWorkerEquivalence runs the exposed-terminal experiment on a
// mobile testbed at 1 and 8 workers and requires bit-identical per-flow
// results — mobility state is per-trial, so parallel dispatch must not
// leak into trajectories.
func testMobileWorkerEquivalence(t *testing.T, armName string) {
	tb := topo.NewTestbed(50, 11)
	run := func(workers int) [][]experiments.FlowResult {
		opt := experiments.Options{
			Seed:     11,
			Nodes:    50,
			Duration: 2 * sim.Second,
			Warmup:   1 * sim.Second,
			Pairs:    3,
			Rate:     phy.Rate6Mbps,
			Workers:  workers,
			Arms:     []experiments.Protocol{experiments.Protocol(armName)},
			Mobility: mobility.Spec{Kind: mobility.Waypoint, SpeedMps: 4, RangeM: 10, DecorrM: 10},
		}
		ex := experiments.ExposedTerminals(tb, opt)
		return ex.Flows[experiments.Protocol(armName)]
	}
	serial := run(1)
	parallel := run(8)
	if len(parallel) != len(serial) {
		t.Fatalf("8 workers returned %d runs, serial %d", len(parallel), len(serial))
	}
	for ri := range serial {
		for fi := range serial[ri] {
			a, b := serial[ri][fi], parallel[ri][fi]
			if math.Float64bits(a.Mbps) != math.Float64bits(b.Mbps) || a.VpktsSent != b.VpktsSent {
				t.Fatalf("run %d flow %d: serial %v vs 8 workers %v", ri, fi, a.Mbps, b.Mbps)
			}
		}
	}
}

// testMobileConservation enqueues a pre-drawn Poisson arrival pattern on
// the mobile clean link and requires exact backlog accounting while the
// endpoints wander: every accepted packet is delivered, abandoned, or
// still queued — motion may cost retries but never packets.
func testMobileConservation(t *testing.T, armName string) {
	const horizon = 2 * sim.Second
	f := NewMobileFixture(armName, MobileCleanLink(mobileSpecs[0]), 3, 0, 1<<62)
	src, dst := f.Arena.Flows[0][0], f.Arena.Flows[0][1]
	sender, receiver := f.Nodes[src], f.Nodes[dst]

	var delivered uint64
	receiver.SetOnDeliver(func(from int, seq uint32, now sim.Time) {
		if from == src {
			delivered++
		}
	})
	arrivals := PoissonArrivals(3, 150, horizon)
	if len(arrivals) < 100 {
		t.Fatalf("only %d Poisson arrivals drawn — fixture too sparse to mean anything", len(arrivals))
	}
	for _, at := range arrivals {
		f.Sched.At(at, func() { sender.Enqueue(dst, 1) })
	}
	enqueued := uint64(len(arrivals))

	f.Run(horizon)
	deadline := horizon
	for i := 0; i < 400 && !sender.Idle(); i++ {
		deadline += 50 * sim.Millisecond
		f.Run(deadline)
	}
	if !sender.Idle() {
		t.Fatalf("sender failed to drain %d arrivals within %v", enqueued, deadline)
	}
	got := delivered + sender.MacDropped() + uint64(sender.Backlog(dst))
	if got != enqueued {
		t.Fatalf("conservation violated: enqueued %d != delivered %d + dropped %d + queued %d",
			enqueued, delivered, sender.MacDropped(), sender.Backlog(dst))
	}
	if delivered == 0 {
		t.Fatal("nothing delivered — conservation held vacuously")
	}
	if f.Manager.Epochs == 0 {
		t.Fatal("manager applied no position epochs — conservation ran statically")
	}
}
