// Package conformance is the shared MAC test harness every registered
// arm must pass. It builds small hand-crafted topologies (a clean link,
// an exposed pair, a hidden pair, and a carrier-sense-protective pair)
// directly from loss matrices, constructs stations through the
// internal/mac registry by name only, and exposes fixtures the
// conformance suite drives each arm through: steady-state allocation
// gates, determinism and worker-equivalence checks, backlog
// conservation under Poisson arrivals, and topology sanity bounds
// (RTS/CTS rescuing hidden terminals, carrier-sense thresholds trading
// exposed concurrency against hidden-style collisions).
package conformance

import (
	"math"

	"repro/internal/geo"
	"repro/internal/mac"
	"repro/internal/medium"
	"repro/internal/phy"
	"repro/internal/radio"
	"repro/internal/sim"
	"repro/internal/stats"

	// The protocol packages register their arms from init.
	_ "repro/internal/core"
	_ "repro/internal/csma"
)

// Pair is a fixed-topology fixture: up to two unicast flows over a loss
// matrix. With TxPower 10 dBm and zero fading, received signal strength
// on a path is 10 − LossDB. The matrices place links at −55 dBm (clean
// decode), cross-interference either at −95 dBm (below the noise floor,
// harmless) or −45 dBm (10 dB over the link signal, so overlaps
// corrupt), and sender↔sender coupling at −91 dBm: 3 dB under the
// −92 dBm preamble sensitivity, so the coupled sender can never lock
// onto (and be captured by) the other's frames — whether it defers is
// decided purely by the energy threshold, i.e. by which cs@<dBm> arm
// is running. A cs@-95 station senses −91 dBm and serialises; a
// cs@-85 station is blind to it and transmits concurrently.
type Pair struct {
	Name   string
	LossDB [][]float64
	Flows  [][2]int // {src, dst} per flow
}

// CleanLink is a single isolated flow 0→1: the fixture for allocation
// gates, determinism and conservation checks, where nothing is lost on
// air.
func CleanLink() Pair {
	return Pair{
		Name: "clean",
		LossDB: [][]float64{
			{0, 65},
			{65, 0},
		},
		Flows: [][2]int{{0, 1}},
	}
}

// ExposedPair is the paper's exposed-terminal geometry: senders 0 and 2
// register −91 dBm at each other, but each signal is harmless (−95 dBm)
// at the other receiver. A sensitive carrier-sense threshold (cs@-95)
// serialises the two flows needlessly; concurrency is free.
func ExposedPair() Pair {
	return Pair{
		Name: "exposed",
		LossDB: [][]float64{
			{0, 65, 101, 105},
			{65, 0, 105, 105},
			{101, 105, 0, 65},
			{105, 105, 65, 0},
		},
		Flows: [][2]int{{0, 1}, {2, 3}},
	}
}

// HiddenPair is the hidden-terminal geometry: senders 0 and 2 cannot
// hear each other (−105 dBm), yet each lands at −45 dBm on the other's
// receiver, so concurrent transmissions collide. Carrier sense cannot
// help; RTS/CTS can, because each receiver's CTS reaches the other
// sender over the same strong cross path.
func HiddenPair() Pair {
	return Pair{
		Name: "hidden",
		LossDB: [][]float64{
			{0, 65, 115, 55},
			{65, 0, 55, 105},
			{115, 55, 0, 65},
			{55, 105, 65, 0},
		},
		Flows: [][2]int{{0, 1}, {2, 3}},
	}
}

// ProtectedPair is the geometry where carrier sense is load-bearing,
// asymmetrically: sender 2's signal lands at −45 dBm on receiver 1, so
// concurrent transmissions destroy flow 0→1, while flow 2→3 never sees
// interference (and, via the one asymmetric path, sender 2 never hears
// receiver 1's ACKs either — energy sensing of sender 0's −91 dBm
// signal is its only protection). A sensitive threshold (cs@-95)
// serialises the senders and the victim flow gets its fair share; a
// blind one (cs@-85) lets sender 2 transmit straight through flow
// 0→1's receptions and starve it.
func ProtectedPair() Pair {
	return Pair{
		Name: "protected",
		LossDB: [][]float64{
			{0, 65, 101, 105},
			{65, 0, 105, 105},
			{101, 55, 0, 65},
			{105, 105, 65, 0},
		},
		Flows: [][2]int{{0, 1}, {2, 3}},
	}
}

// Fixture is one built instance of a Pair under one arm: a scheduler,
// a medium, a station per node and a goodput meter per flow.
type Fixture struct {
	Pair   Pair
	Sched  *sim.Scheduler
	M      *medium.Medium
	Nodes  []mac.Node     // indexed by medium node id
	Meters []*stats.Meter // indexed by flow
	rng    *sim.RNG
}

// NewFixture builds the pair's medium and one station per node through
// the registry. Seed derivation mirrors the experiment harness: the
// medium draws from stream 1 and node id from stream 1000+id, so a
// fixture run is bit-comparable with an experiments run of the same
// topology. Meters measure [warmup, dur].
func NewFixture(armName string, p Pair, seed uint64, warmup, dur sim.Time) *Fixture {
	arm := mac.MustLookup(armName)
	sched := sim.NewScheduler()
	rng := sim.NewRNG(seed)
	positions := make([]geo.Point, len(p.LossDB))
	m := medium.New(sched, phy.DefaultParams(), &radio.Matrix{LossDB: p.LossDB}, positions, rng.Stream(1))
	f := &Fixture{Pair: p, Sched: sched, M: m, rng: rng}
	f.Nodes = make([]mac.Node, len(p.LossDB))
	for id := range p.LossDB {
		f.Nodes[id] = arm.New(id, m, rng.Stream(uint64(1000+id)), mac.Options{Rate: phy.Rate6Mbps})
	}
	for _, fl := range p.Flows {
		mt := &stats.Meter{Start: warmup, End: dur}
		f.Nodes[fl[1]].SetMeter(mt)
		f.Meters = append(f.Meters, mt)
	}
	return f
}

// Saturate makes every flow's sender fully backlogged.
func (f *Fixture) Saturate() {
	for _, fl := range f.Pair.Flows {
		f.Nodes[fl[0]].SetSaturated(fl[1])
	}
}

// Run advances the fixture's virtual clock to the absolute time until.
func (f *Fixture) Run(until sim.Time) { f.Sched.Run(until) }

// Goodputs returns each flow's measured goodput in Mb/s.
func (f *Fixture) Goodputs() []float64 {
	out := make([]float64, len(f.Meters))
	for i, m := range f.Meters {
		out[i] = m.Mbps()
	}
	return out
}

// RunSaturated is the one-call happy path: build, saturate, run, and
// return per-flow goodputs.
func RunSaturated(armName string, p Pair, seed uint64, warmup, dur sim.Time) []float64 {
	f := NewFixture(armName, p, seed, warmup, dur)
	f.Saturate()
	f.Run(dur)
	return f.Goodputs()
}

// SumMbps totals a goodput slice.
func SumMbps(g []float64) float64 {
	s := 0.0
	for _, v := range g {
		s += v
	}
	return s
}

// PoissonArrivals pre-draws packetsPerSec exponential inter-arrival
// times on [0, horizon) from its own RNG stream — decoupled from the
// stations' randomness so the arrival pattern is identical across arms.
func PoissonArrivals(seed uint64, packetsPerSec float64, horizon sim.Time) []sim.Time {
	rng := sim.NewRNG(seed ^ 0xa441)
	var out []sim.Time
	t := sim.Time(0)
	for {
		u := rng.Float64()
		if u <= 0 {
			u = math.SmallestNonzeroFloat64
		}
		gap := sim.Time(-math.Log(u) / packetsPerSec * float64(sim.Second))
		t += gap
		if t >= horizon {
			return out
		}
		out = append(out, t)
	}
}
