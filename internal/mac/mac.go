package mac

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/phy"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Network is the node-construction surface a MAC arm needs from the
// engine hosting it: the node's transceiver and the event loop driving
// it. *medium.Medium satisfies it (the serial reference engine), as
// does each shard of the parallel engine in internal/shard — a MAC
// state machine never knows which one it runs on, which is what lets
// one arm implementation serve both.
type Network interface {
	// Radio returns node id's transceiver. Arms only ever ask for the id
	// they were constructed with.
	Radio(id int) *phy.Radio
	// Scheduler returns the virtual clock that drives node id's events.
	Scheduler() *sim.Scheduler
}

// DeliverFunc observes each non-duplicate payload delivery at a
// receiver: the sending node, the packet's link-layer sequence number
// and the delivery time.
type DeliverFunc func(src int, seq uint32, now sim.Time)

// Options carries the cross-arm knobs an experiment hands to Arm.New.
// Arm-specific configuration (window sizes, thresholds, RTS policy)
// lives in the arm's registered identity instead, so a registry name
// fully determines behaviour.
type Options struct {
	// Rate is the data bit-rate every arm must honour. Callers set it
	// explicitly; there is no usable zero value.
	Rate phy.RateID
}

// Node is the station-side contract every registered MAC arm satisfies.
// It is the exact surface the experiment harness, the traffic subsystem
// (Enqueue/Backlog form traffic.Enqueuer) and the conformance suite
// drive an arm through.
type Node interface {
	// ID returns the node's medium index.
	ID() int
	// SetSaturated makes the node an always-backlogged source towards
	// dst, the paper's saturated traffic model.
	SetSaturated(dst int)
	// Enqueue adds count packets destined to dst; Backlog reports how
	// many enqueued-but-unattempted packets remain for dst. Together
	// they satisfy traffic.Enqueuer.
	Enqueue(dst int, count int)
	Backlog(dst int) int
	// Idle reports whether the sender has fully drained: no staged or
	// queued packets and no in-flight window. Saturated senders are
	// never idle.
	Idle() bool
	// SetMeter points the node's receiver at a goodput meter.
	SetMeter(m *stats.Meter)
	// SetOnDeliver registers a non-duplicate delivery observer.
	SetOnDeliver(fn DeliverFunc)
	// LatencyWindow returns how many in-flight packets a traffic source
	// must remember to map deliveries back to arrival times (the arm's
	// maximum send window in packets).
	LatencyWindow() int
	// MacDropped counts packets the MAC abandoned (e.g. after a retry
	// limit); the backlog-conservation invariant is
	// accepted = delivered + MacDropped + Backlog once the node drains.
	MacDropped() uint64
}

// Checkpointer is the checkpoint surface of a MAC station. Every arm
// this repository registers implements it (the checkpoint conformance
// matrix in CI runs every registered arm through a save/resume cycle);
// it is a separate interface rather than part of Node so an
// experimental arm can still register before growing checkpoint
// support — it then fails checkpointing with a typed error instead of
// failing registration.
//
// ExportState/RestoreState carry the station's full mutable state
// (sequence counters, backoff countdowns, windows, timers via
// sim.TimerState, RNG stream) in a format the station owns.
// EncodeEventArg/DecodeEventArg translate the arguments of agenda
// events targeted at this station, so the scheduler checkpoint can
// round-trip them without knowing MAC-internal types.
type Checkpointer interface {
	ExportState() (json.RawMessage, error)
	RestoreState(enc json.RawMessage) error
	EncodeEventArg(arg any) (json.RawMessage, error)
	DecodeEventArg(enc json.RawMessage) (any, error)
}

// Visibility is the optional per-flow visibility-counter surface that
// CMAP-family receivers expose (Figures 16 and 19). Arms without
// virtual-packet structure simply do not implement it.
type Visibility interface {
	// VpktsSent is the sender-side count of virtual packets put on air.
	VpktsSent() uint64
	// FlowCounters reports, for the flow from src, how many virtual
	// packets the receiver saw at all, saw a header for, and saw a
	// header or trailer for.
	FlowCounters(src int) (seen, header, headerOrTrailer uint64)
}

// Arm is one registered MAC protocol variant. Its Name is the registry
// key (what -arm= flags accept), Label the paper-figure legend string,
// and SeedSalt the per-arm term mixed into every trial seed — pinned
// per arm so golden traces survive registry refactors.
type Arm interface {
	Name() string
	Label() string
	SeedSalt() uint64
	// New constructs the arm's station on network node id. The node's
	// randomness must come only from rng; construction must not touch
	// any other stream so trials stay bit-reproducible.
	New(id int, net Network, rng *sim.RNG, opt Options) Node
}

// family is a parameterized arm namespace such as "cs@<dBm>": any name
// beginning with the prefix is constructed on first lookup.
type family struct {
	prefix string
	hint   string // e.g. "cs@<dBm>", for error messages and listings
	parse  func(name string) (Arm, error)
}

var (
	regMu    sync.RWMutex
	concrete = map[string]Arm{}
	cache    = map[string]Arm{} // memoized family instances
	families []family
)

// Register adds a fixed-name arm. Registering a duplicate or empty name
// panics: arm names are program identity, not runtime data.
func Register(a Arm) {
	regMu.Lock()
	defer regMu.Unlock()
	name := a.Name()
	if name == "" {
		panic("mac: Register with empty arm name")
	}
	if _, dup := concrete[name]; dup {
		panic("mac: duplicate arm " + name)
	}
	concrete[name] = a
}

// RegisterFamily adds a parameterized arm namespace: every name
// starting with prefix resolves through parse, and hint ("cs@<dBm>")
// documents the syntax in listings and errors.
func RegisterFamily(prefix, hint string, parse func(name string) (Arm, error)) {
	regMu.Lock()
	defer regMu.Unlock()
	if prefix == "" {
		panic("mac: RegisterFamily with empty prefix")
	}
	for _, f := range families {
		if f.prefix == prefix {
			panic("mac: duplicate arm family " + prefix)
		}
	}
	families = append(families, family{prefix: prefix, hint: hint, parse: parse})
}

// Lookup resolves an arm name — a fixed name or a family instance like
// "cs@-82" — or returns an error naming every registered choice.
func Lookup(name string) (Arm, error) {
	regMu.RLock()
	if a, ok := concrete[name]; ok {
		regMu.RUnlock()
		return a, nil
	}
	if a, ok := cache[name]; ok {
		regMu.RUnlock()
		return a, nil
	}
	fams := families
	regMu.RUnlock()
	for _, f := range fams {
		if !strings.HasPrefix(name, f.prefix) {
			continue
		}
		a, err := f.parse(name)
		if err != nil {
			return nil, err
		}
		regMu.Lock()
		cache[name] = a
		regMu.Unlock()
		return a, nil
	}
	return nil, fmt.Errorf("mac: unknown arm %q (known: %s)", name, strings.Join(Names(), ", "))
}

// MustLookup is Lookup for names already validated upstream.
func MustLookup(name string) Arm {
	a, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return a
}

// Names returns every registered fixed arm name in sorted order,
// followed by the family syntaxes (e.g. "cs@<dBm>").
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(concrete)+len(families))
	for name := range concrete {
		out = append(out, name)
	}
	sort.Strings(out)
	for _, f := range families {
		out = append(out, f.hint)
	}
	return out
}
