// Package mac is the registration seam between MAC protocol arms and
// everything that runs them. An arm (CSMA, CMAP, RTS/CTS, the
// carrier-sense-threshold family) registers an Arm — a name, a paper
// label, a pinned seed salt and a constructor — from its package's
// init; experiments, the command-line tools and the conformance suite
// resolve arms by name through Lookup and drive the resulting stations
// through the Node interface. The seam is what lets every pair figure,
// the offered-load sweep and the analytic screen take an arbitrary
// -arms= subset, and what the internal/mac/conformance harness
// enumerates so each new arm inherits the full verification story
// (allocation gate, worker-count determinism, backlog conservation)
// instead of re-deriving it.
package mac
