package shard

import (
	"encoding/json"
	"fmt"

	"repro/internal/phy"
	"repro/internal/sim"
)

// Checkpoint surface of the sharded engine: one sub-checkpoint per
// shard (agenda, transmission counters) stitched together with the
// engine clock and every radio's state. A multi-shard engine can only
// be cut at a window edge — that is the one point where every outbox
// parity is drained and every cross-shard signal already lives in the
// receiving shard's agenda as a remoteTx event, so the per-shard
// agendas plus radio states are the complete picture.
//
// Transmission identity is resolved per shard: every in-flight signal
// a shard's radios can reference appears in that shard's agenda —
// local fan-outs as *phy.Transmission end events, cross-shard signals
// as *remoteTx edge events — and the same TxID deliberately
// materialises as distinct objects in distinct shards (the receiving
// shard owns an independent copy), so each shard decodes its own
// TxID → object registry and its radios resolve against only that.

// remoteState is a cross-shard signal in checkpoint form. Tx carries
// the receiver-frame (already W-shifted) interval; the walk list is
// structural (inFrom[From]) and rebuilt on decode.
type remoteState struct {
	Tx      phy.TxState `json:"tx"`
	Started bool        `json:"started,omitempty"`
}

// shardArg is the encoded form of a shard-owned agenda event argument:
// exactly one field is set.
type shardArg struct {
	Tx     *phy.TxState `json:"tx,omitempty"`
	Radio  *int         `json:"radio,omitempty"`
	Remote *remoteState `json:"remote,omitempty"`
}

// ShardState is one shard's sub-checkpoint.
type ShardState struct {
	Sched         sim.SchedulerState `json:"sched"`
	CurWin        int64              `json:"cur_win,omitempty"`
	TxSeq         uint64             `json:"tx_seq,omitempty"`
	Transmissions uint64             `json:"transmissions,omitempty"`
}

// EngineState is the complete engine in checkpoint form. Window and
// Assign are structural but recorded for validation: restoring into an
// engine with a different window or partition would silently misplace
// every event.
type EngineState struct {
	Seg    int64            `json:"seg"`
	Clock  sim.Time         `json:"clock"`
	Window sim.Time         `json:"window"`
	Assign []int            `json:"assign"`
	Shards []ShardState     `json:"shards"`
	Radios []phy.RadioState `json:"radios"`
}

// encodeShardArg encodes the three shard-owned event shapes.
func (s *Shard) encodeShardArg(arg any) (json.RawMessage, error) {
	switch v := arg.(type) {
	case *phy.Transmission:
		ts, err := phy.ExportTransmission(v)
		if err != nil {
			return nil, err
		}
		return json.Marshal(shardArg{Tx: &ts})
	case *phy.Radio:
		id := v.ID()
		return json.Marshal(shardArg{Radio: &id})
	case *remoteTx:
		ts, err := phy.ExportTransmission(&v.tx)
		if err != nil {
			return nil, err
		}
		return json.Marshal(shardArg{Remote: &remoteState{Tx: ts, Started: v.started}})
	default:
		return nil, fmt.Errorf("shard %d: unencodable event arg %T", s.idx, arg)
	}
}

// decodeShardArg inverts encodeShardArg, registering every
// materialised transmission object in txs under its TxID so this
// shard's radios can resolve their active/locked pointers.
func (s *Shard) decodeShardArg(enc json.RawMessage, txs map[uint64]*phy.Transmission) (any, error) {
	var a shardArg
	if err := json.Unmarshal(enc, &a); err != nil {
		return nil, fmt.Errorf("shard %d: bad event arg: %w", s.idx, err)
	}
	switch {
	case a.Tx != nil:
		tx := new(phy.Transmission)
		if err := a.Tx.Restore(tx); err != nil {
			return nil, err
		}
		txs[tx.TxID] = tx
		return tx, nil
	case a.Radio != nil:
		if *a.Radio < 0 || *a.Radio >= len(s.eng.radios) {
			return nil, fmt.Errorf("shard %d: event names unknown radio %d", s.idx, *a.Radio)
		}
		return s.eng.radios[*a.Radio], nil
	case a.Remote != nil:
		rt := new(remoteTx)
		if err := a.Remote.Tx.Restore(&rt.tx); err != nil {
			return nil, err
		}
		if rt.tx.From < 0 || rt.tx.From >= len(s.inFrom) {
			return nil, fmt.Errorf("shard %d: remote signal from unknown node %d", s.idx, rt.tx.From)
		}
		rt.list = s.inFrom[rt.tx.From]
		rt.started = a.Remote.Started
		txs[rt.tx.TxID] = &rt.tx
		return rt, nil
	default:
		return nil, fmt.Errorf("shard %d: event arg encodes no known shape", s.idx)
	}
}

// ExportState captures the engine. encode translates agenda events NOT
// owned by a shard itself — MAC stations, traffic sources — exactly as
// sim.EncodeFunc does for the serial engine; shard-owned events are
// encoded internally under the reserved owner key "shard".
//
// A multi-shard engine must be cut at a window edge: that is the only
// point where the outboxes are provably drained. Any other clock is a
// caller bug and errors out.
func (e *Engine) ExportState(encode sim.EncodeFunc) (EngineState, error) {
	if len(e.shards) > 1 && e.clock%e.window != 0 {
		return EngineState{}, fmt.Errorf("shard: checkpoint at t=%v is not on a window edge (W=%v); advance Run to a multiple of the window first", e.clock, e.window)
	}
	st := EngineState{
		Seg:    e.seg,
		Clock:  e.clock,
		Window: e.window,
		Assign: append([]int(nil), e.assign...),
		Shards: make([]ShardState, len(e.shards)),
		Radios: make([]phy.RadioState, len(e.radios)),
	}
	for i, sh := range e.shards {
		for p := 0; p < 2; p++ {
			for d, box := range sh.outbox[p] {
				if len(box) > 0 {
					return EngineState{}, fmt.Errorf("shard %d: outbox for shard %d not drained at t=%v; checkpoint cut outside the parity protocol", sh.idx, d, e.clock)
				}
			}
		}
		sched, err := sh.sched.ExportState(func(target sim.EventHandler, arg any) (string, json.RawMessage, error) {
			if target == sim.EventHandler(sh) {
				enc, err := sh.encodeShardArg(arg)
				return "shard", enc, err
			}
			return encode(target, arg)
		})
		if err != nil {
			return EngineState{}, fmt.Errorf("shard %d: %w", sh.idx, err)
		}
		st.Shards[i] = ShardState{Sched: sched, CurWin: sh.curWin, TxSeq: sh.txSeq, Transmissions: sh.Transmissions}
	}
	for i, r := range e.radios {
		rs, err := r.ExportState()
		if err != nil {
			return EngineState{}, err
		}
		st.Radios[i] = rs
	}
	return st, nil
}

// RestoreState overwrites the engine with a captured state. decode
// translates non-shard-owned events back to live handlers, mirroring
// ExportState's encode. Radio states are restored after every shard's
// agenda has been decoded, resolving transmission pointers against the
// owning shard's freshly materialised registry. Component timers (MACs,
// sources) must be re-pointed by their owners afterwards, per shard.
func (e *Engine) RestoreState(st EngineState, decode sim.DecodeFunc) error {
	if st.Window != e.window {
		return fmt.Errorf("shard: checkpoint window %v does not match engine window %v", st.Window, e.window)
	}
	if len(st.Shards) != len(e.shards) {
		return fmt.Errorf("shard: checkpoint has %d shards, engine has %d", len(st.Shards), len(e.shards))
	}
	if len(st.Radios) != len(e.radios) {
		return fmt.Errorf("shard: checkpoint has %d radios, engine has %d", len(st.Radios), len(e.radios))
	}
	if len(st.Assign) != len(e.assign) {
		return fmt.Errorf("shard: checkpoint partitions %d nodes, engine %d", len(st.Assign), len(e.assign))
	}
	for i, a := range st.Assign {
		if a != e.assign[i] {
			return fmt.Errorf("shard: checkpoint assigns node %d to shard %d, engine to %d; topology or flow set differs", i, a, e.assign[i])
		}
	}
	registries := make([]map[uint64]*phy.Transmission, len(e.shards))
	for i, sh := range e.shards {
		txs := make(map[uint64]*phy.Transmission)
		registries[i] = txs
		ss := &st.Shards[i]
		err := sh.sched.RestoreState(ss.Sched, func(owner string, enc json.RawMessage) (sim.EventHandler, any, error) {
			if owner == "shard" {
				arg, err := sh.decodeShardArg(enc, txs)
				return sh, arg, err
			}
			return decode(owner, enc)
		})
		if err != nil {
			return fmt.Errorf("shard %d: %w", sh.idx, err)
		}
		sh.curWin = ss.CurWin
		sh.txSeq = ss.TxSeq
		sh.Transmissions = ss.Transmissions
		sh.txFree = sh.txFree[:0]
		sh.rtFree = sh.rtFree[:0]
		for p := 0; p < 2; p++ {
			for d := range sh.outbox[p] {
				sh.outbox[p][d] = sh.outbox[p][d][:0]
			}
		}
	}
	for i, r := range e.radios {
		txs := registries[e.assign[i]]
		err := r.RestoreState(st.Radios[i], func(txID uint64) (*phy.Transmission, error) {
			tx, ok := txs[txID]
			if !ok {
				return nil, fmt.Errorf("shard %d: radio %d references transmission %d with no agenda event", e.assign[i], i, txID)
			}
			return tx, nil
		})
		if err != nil {
			return err
		}
	}
	e.seg = st.Seg
	e.clock = st.Clock
	return nil
}
