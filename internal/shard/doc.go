// Package shard is the conservative parallel discrete-event engine: it
// partitions one large simulation spatially across shards, each with
// its own event loop, scheduler and RNG streams, running on its own
// goroutine.
//
// The serial engine (internal/medium driving one sim.Scheduler) stays
// untouched as the reference, the same pattern as NewDense versus the
// grid-pruned construction. The sharded engine reproduces it exactly at
// Shards=1 — bit-identical event sequences, proven by test — and at
// Shards>1 trades bit-level for figure-level equivalence: cross-shard
// signals arrive one lookahead window late, which perturbs interference
// overlap at shard borders but preserves every per-frame airtime and
// decode computation.
//
// # Why a synthetic lookahead window
//
// Classic conservative PDES advances a partition while its clock is
// below the earliest time a neighbour could affect it. This simulation
// has zero propagation delay — a transmission is audible everywhere on
// its delivery list in the same instant — so the natural lookahead is
// zero and a pure conservative engine deadlocks. The engine therefore
// introduces a cross-shard latency W (Config.Lookahead, default DIFS):
// a transmission starting at t reaches remote shards at t+W and ends at
// end+W. Signal duration — and with it airtime, the SINR integration
// and the decode probability of every frame — is preserved exactly;
// only the relative phase of border interference shifts, which is the
// deviation the figure-level equivalence test bounds.
//
// # Synchronization
//
// Time is cut into windows of width W aligned to absolute multiples of
// W. Within window k every shard runs its own agenda freely, appending
// cross-shard handoffs (marshalled frame plus on-air interval) to
// double-buffered per-destination outboxes under parity k mod 2. One
// barrier per window separates execution from exchange: after it, every
// shard drains the opposite-parity outboxes of all peers in ascending
// shard order and posts the arrivals into its own agenda at t+W — never
// in its past, because t > (k-1)·W implies t+W > k·W, the drain time.
// The barrier order also makes the parity buffers race-free: a buffer
// is only written again two windows after it was last read.
//
// # Determinism and flow placement
//
// For a fixed shard count the engine is deterministic: every shard's
// agenda is single-threaded, drains happen in a canonical order, and
// TxIDs interleave by shard (local sequence × S + shard index), which
// collapses to the serial assignment at S=1. Node RNG streams are the
// serial engine's streams verbatim, so no randomness moves when the
// shard count changes.
//
// Flows must be co-sharded: the DCF ACK timeout has only a couple of
// slot times of slack, so a stop-and-wait exchange crossing a border
// would pay 2W of synthetic latency and time out. Partition therefore
// unions flow endpoints (union-find, group takes the shard of its
// lowest-numbered member) on top of the population-balanced strip
// partition from geo.PartitionStrips; only interference crosses shard
// boundaries, never a data/ACK exchange.
package shard
